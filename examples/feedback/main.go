// Feedback: demonstrates the relevance-feedback loop the paper's
// conclusion proposes — "incorporate the user's relevance feedback in the
// query relaxation method, and ... progressively improve the relaxed
// results".
//
// A clinician repeatedly asks about the same colloquial term; every time
// they reject the top suggestion and pick a lower one, the feedback store
// shifts the ranking until the system leads with what this user base
// actually wants.
package main

import (
	"fmt"
	"log"

	"medrelax"
	"medrelax/internal/core"
	"medrelax/internal/eks"
	"medrelax/internal/match"
	"medrelax/internal/ontology"
)

func main() {
	fmt.Println("== relevance feedback loop (paper Section 9) ==")
	sys, err := medrelax.Build(medrelax.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	combined := match.NewCombined(sys.Mappers["EXACT"], sys.Mappers["EDIT"], sys.Mappers["EMBEDDING"])
	base := sys.Engine.NewRelaxer(combined, sys.Config.Relax)
	relaxer := core.NewFeedbackRelaxer(base, nil)
	ctx := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}

	// Pick a term with several candidates.
	term := pickTerm(sys)
	fmt.Printf("\nquery term: %q\n", term)

	show := func(round int) []core.Result {
		results, err := relaxer.RelaxTerm(term, ctx, 0)
		if err != nil {
			log.Fatal(err)
		}
		n := 5
		if len(results) < n {
			n = len(results)
		}
		fmt.Printf("\nround %d ranking:\n", round)
		for i, r := range results[:n] {
			c, _ := sys.World.Graph.Concept(r.Concept)
			fmt.Printf("  %d. %-45s score=%.4f\n", i+1, c.Name, r.Score)
		}
		return results
	}

	before := show(0)
	if len(before) < 3 {
		log.Fatal("not enough candidates to demonstrate feedback")
	}
	q, _ := combined.Map(term)
	target := before[2].Concept // the users consistently want #3

	fmt.Println("\n... ten sessions in which users skip the top suggestions and pick #3 ...")
	for i := 0; i < 10; i++ {
		relaxer.Feedback.Reject(q, before[0].Concept, ctx)
		relaxer.Feedback.Reject(q, before[1].Concept, ctx)
		relaxer.Feedback.Accept(q, target, ctx)
	}

	after := show(1)
	cTarget, _ := sys.World.Graph.Concept(target)
	fmt.Printf("\nusers' preferred concept %q moved from rank 3 to rank %d\n",
		cTarget.Name, rankOf(after, target))
}

func pickTerm(sys *medrelax.System) string {
	best, bestPop := "", -1.0
	for cid := range sys.Med.Treated {
		if p := sys.Med.Popularity[cid]; p > bestPop {
			c, _ := sys.World.Graph.Concept(cid)
			best, bestPop = c.Name, p
		}
	}
	return best
}

func rankOf(results []core.Result, target eks.ConceptID) int {
	for i, r := range results {
		if r.Concept == target {
			return i + 1
		}
	}
	return -1
}
