// Quickstart: build the synthetic medical world, run the offline knowledge
// source ingestion (Algorithm 1), and relax a few query terms online
// (Algorithm 2), printing the ranked results.
package main

import (
	"fmt"
	"log"

	"medrelax"
)

func main() {
	fmt.Println("== medrelax quickstart ==")
	fmt.Println("building the synthetic world (external knowledge source, MED, corpus) ...")
	sys, err := medrelax.Build(medrelax.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("external knowledge source: %d concepts, %d edges (%d shortcut edges added by ingestion)\n",
		sys.World.Graph.Len(), sys.World.Graph.EdgeCount(), sys.Ingestion.ShortcutsAdded)
	fmt.Printf("MED knowledge base: %d instances over %d ontology concepts / %d relationships\n",
		sys.Med.Store.Len(), sys.Med.Ontology.ConceptCount(), sys.Med.Ontology.RelationshipCount())
	fmt.Printf("flagged external concepts (have KB data): %d\n\n", len(sys.Ingestion.Flagged))

	// The paper's running example: "pyelectasia" has no direct drug
	// information; relaxation finds related conditions that do.
	for _, q := range []struct{ term, ctx string }{
		{"pyelectasia", medrelax.ContextIndication},
		{"headache", medrelax.ContextIndication},
		{"fever", medrelax.ContextRisk},
	} {
		results, err := sys.Relax(q.term, q.ctx, 5)
		if err != nil {
			fmt.Printf("relax %q: %v\n\n", q.term, err)
			continue
		}
		fmt.Printf("top relaxations of %q in context %s:\n", q.term, q.ctx)
		for i, r := range results {
			fmt.Printf("  %d. %-45s score=%.4f hops=%d (%d KB instances)\n",
				i+1, r.ConceptName, r.Score, r.Hops, len(r.Instances))
		}
		fmt.Println()
	}
}
