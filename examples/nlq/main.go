// NLQ: reproduces the paper's Section 6.2 running example against the
// synthetic MED — the ATHENA-style natural language query pipeline with
// query relaxation plugged into evidence generation (Figure 9).
//
// The pipeline turns "what are the risks caused by using <drug> with
// <unknown condition>" into evidence sets, enumerates interpretations as
// Steiner trees over the semantic graph, ranks them by compactness with
// the relaxation score as tie-breaker, compiles the winner to a SQL-like
// structured query, and executes it over the instance store.
package main

import (
	"fmt"
	"log"
	"strings"

	"medrelax"
	"medrelax/internal/match"
	"medrelax/internal/nlq"
	"medrelax/internal/synthkb"
)

func main() {
	fmt.Println("== natural language query integration (Section 6.2) ==")
	sys, err := medrelax.Build(medrelax.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	combined := match.NewCombined(sys.Mappers["EXACT"], sys.Mappers["EDIT"], sys.Mappers["EMBEDDING"])
	opts := sys.Config.Relax
	opts.IncludeSelf = true
	relaxer := sys.Engine.NewRelaxer(combined, opts)
	system := nlq.NewSystem(sys.Med.Ontology, sys.Med.Store, relaxer, sys.Ingestion)

	// Assemble the Figure 9 style query from the synthetic world: a drug,
	// one of its caused findings, and an unknown term near that finding.
	drug, unknown := figure9Pair(sys)
	query := fmt.Sprintf("what are the risks caused by using %s with %s", drug, unknown)
	fmt.Printf("\nquery: %s\n\n", query)

	// Show the evidence sets first (Figure 9's annotation step).
	for _, te := range system.Evidence.Generate(query) {
		kinds := make([]string, 0, len(te.Evidences))
		for _, ev := range te.Evidences {
			kind := "metadata"
			if ev.Kind == nlq.DataValue {
				kind = "data-value"
			}
			if ev.Relaxed {
				kind += fmt.Sprintf("(relaxed, score %.3f)", ev.Score)
			}
			kinds = append(kinds, fmt.Sprintf("%s:%s", kind, ev.Concept))
		}
		fmt.Printf("  evidence %-28q -> %s\n", te.Span, strings.Join(kinds, ", "))
	}

	ans, err := system.Answer(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest interpretation (compactness %d, relaxation score %.3f):\n  %s\n",
		ans.Interpretation.Compactness, ans.Interpretation.RelaxScore, ans.Interpretation)
	if n := len(ans.Alternatives); n > 0 {
		fmt.Printf("(%d lower-ranked interpretations discarded)\n", n)
	}
	fmt.Printf("\nstructured query:\n  %s\n", ans.SQL)
	fmt.Printf("\nanswers (%d):\n", len(ans.Results))
	for _, r := range ans.Results {
		fmt.Printf("  - %s\n", r)
	}

	// A simpler drug-focused query for contrast.
	query2 := "which drugs treat " + someTreated(sys)
	fmt.Printf("\nquery: %s\n", query2)
	ans2, err := system.Answer(query2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answers: %s\n", strings.Join(ans2.Results, ", "))
}

// figure9Pair picks a drug with a caused finding, and an unknown (not in
// the KB) term whose relaxation neighbourhood includes that finding — the
// shape of the paper's "risks caused by using Aspirin with pyelectasia".
func figure9Pair(sys *medrelax.System) (drug, unknown string) {
	for _, drugID := range sys.Med.Store.InstancesOf("Drug") {
		for _, riskID := range sys.Med.Store.Objects("cause", drugID) {
			for _, findID := range sys.Med.Store.Objects("hasFinding", riskID) {
				caused := sys.Med.Gold[findID]
				// An unflagged neighbour of the caused finding.
				for _, nb := range sys.World.Graph.NeighborsWithinHops(caused, 2) {
					if sys.Ingestion.Flagged[nb.ID] || sys.World.Attrs[nb.ID].Kind != synthkb.KindFinding {
						continue
					}
					c, _ := sys.World.Graph.Concept(nb.ID)
					results, err := sys.Relax(c.Name, "", 5)
					if err != nil {
						continue
					}
					for _, r := range results {
						if r.ConceptID == caused {
							d, _ := sys.Med.Store.Instance(drugID)
							return d.Name, c.Name
						}
					}
				}
			}
		}
	}
	// Fallback: any drug and term.
	d, _ := sys.Med.Store.Instance(sys.Med.Store.InstancesOf("Drug")[0])
	return d.Name, "pyelectasia"
}

func someTreated(sys *medrelax.System) string {
	best, bestPop := "", -1.0
	for cid := range sys.Med.Treated {
		if p := sys.Med.Popularity[cid]; p > bestPop {
			c, _ := sys.World.Graph.Concept(cid)
			best, bestPop = c.Name, p
		}
	}
	return best
}
