// Custom EKS: shows the library's composable API on a hand-built world —
// your own domain ontology, knowledge base, external knowledge source and
// document corpus, without the synthetic generators. This is the workflow a
// downstream adopter follows to point the relaxation method at their own
// data, and it rebuilds the paper's Figures 1 and 3 in miniature.
package main

import (
	"fmt"
	"log"

	"medrelax/internal/core"
	"medrelax/internal/corpus"
	"medrelax/internal/eks"
	"medrelax/internal/engine"
	"medrelax/internal/kb"
	"medrelax/internal/match"
	"medrelax/internal/ontology"
)

func main() {
	fmt.Println("== custom external knowledge source ==")

	// 1. Domain ontology (TBox) — the Figure 1 fragment.
	onto := ontology.New()
	for _, c := range []ontology.Concept{
		{Name: "Drug"}, {Name: "Indication"}, {Name: "Risk"}, {Name: "Finding"},
		{Name: "BlackBoxWarning", Parent: "Risk"},
		{Name: "AdverseEffect", Parent: "Risk"},
		{Name: "ContraIndication", Parent: "Risk"},
	} {
		must(onto.AddConcept(c))
	}
	for _, r := range []ontology.Relationship{
		{Name: "treat", Domain: "Drug", Range: "Indication"},
		{Name: "cause", Domain: "Drug", Range: "Risk"},
		{Name: "hasFinding", Domain: "Indication", Range: "Finding"},
		{Name: "hasFinding", Domain: "Risk", Range: "Finding"},
	} {
		must(onto.AddRelationship(r))
	}

	// 2. Instances (ABox) — a small Figure 3 style KB.
	store := kb.NewStore(onto)
	for _, inst := range []kb.Instance{
		{ID: 1, Concept: "Drug", Name: "amoxicillin"},
		{ID: 2, Concept: "Drug", Name: "lisinopril"},
		{ID: 10, Concept: "Indication", Name: "amoxicillin for bronchitis"},
		{ID: 11, Concept: "Indication", Name: "lisinopril for kidney disease"},
		{ID: 20, Concept: "Finding", Name: "bronchitis"},
		{ID: 21, Concept: "Finding", Name: "kidney disease"},
		{ID: 22, Concept: "Finding", Name: "fever"},
	} {
		must(store.AddInstance(inst))
	}
	for _, a := range []kb.Assertion{
		{Subject: 1, Relationship: "treat", Object: 10},
		{Subject: 10, Relationship: "hasFinding", Object: 20},
		{Subject: 2, Relationship: "treat", Object: 11},
		{Subject: 11, Relationship: "hasFinding", Object: 21},
	} {
		must(store.AddAssertion(a))
	}

	// 3. External knowledge source — a SNOMED-like fragment with the
	// pertussis/bronchitis neighbourhood from the paper's introduction.
	g := eks.New()
	for _, c := range []eks.Concept{
		{ID: 1, Name: "clinical finding"},
		{ID: 2, Name: "respiratory disorder"},
		{ID: 3, Name: "bronchitis"},
		{ID: 4, Name: "pertussis", Synonyms: []string{"whooping cough"}},
		{ID: 5, Name: "kidney disease", Synonyms: []string{"nephropathy"}},
		{ID: 6, Name: "pyelectasia"},
		{ID: 7, Name: "fever", Synonyms: []string{"pyrexia"}},
	} {
		must(g.AddConcept(c))
	}
	for _, e := range [][2]eks.ConceptID{{2, 1}, {3, 2}, {4, 2}, {5, 1}, {6, 5}, {7, 1}} {
		must(g.AddSubsumption(e[0], e[1]))
	}
	must(g.SetRoot(1))

	// 4. The document corpus the KB was curated from, with context-labeled
	// sections.
	corp := corpus.New([]corpus.Document{{
		ID: "monographs",
		Sections: []corpus.Section{
			{Label: "Indication-hasFinding-Finding",
				Text: "amoxicillin treats bronchitis. bronchitis and whooping cough respond. lisinopril protects against kidney disease. fever is treated symptomatically."},
			{Label: "Risk-hasFinding-Finding",
				Text: "rare reports of fever under treatment."},
		},
	}})

	// 5. Offline phase: Algorithm 1.
	mapper := match.NewEdit(g, 0) // exact + typo tolerance
	ing, err := core.Ingest(onto, store, g, corp, mapper, core.IngestOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingestion: %d contexts, %d mappings, %d flagged concepts, %d shortcut edges\n\n",
		len(ing.Contexts), len(ing.Mappings), len(ing.Flagged), ing.ShortcutsAdded)

	// 6. Online phase: Algorithm 2 — "what drugs treat pertussis" has no
	// direct KB answer; relaxation reaches bronchitis (the paper's
	// introduction example), and "pyelectasia" reaches kidney disease.
	// Hand the ingestion to the engine layer: it freezes the graph and
	// assembles the relaxer, same as every serving entry point.
	snap := engine.New(ing, engine.Config{Mapper: mapper, Relax: core.RelaxOptions{Radius: 3, DynamicRadius: true}})
	relaxer := snap.Relaxer()
	ctx := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}

	for _, term := range []string{"pertussis", "pyelectasia", "pertusis" /* typo */} {
		results, err := relaxer.RelaxTerm(term, ctx, 0)
		if err != nil {
			fmt.Printf("%q: %v\n", term, err)
			continue
		}
		fmt.Printf("relaxations of %q:\n", term)
		for _, r := range results {
			c, _ := g.Concept(r.Concept)
			var names []string
			for _, iid := range r.Instances {
				inst, _ := store.Instance(iid)
				names = append(names, inst.Name)
			}
			fmt.Printf("  %-16s score=%.4f -> drugs: %v\n", c.Name, r.Score, drugsFor(store, r.Instances))
			_ = names
		}
	}
}

func drugsFor(store *kb.Store, findings []kb.InstanceID) []string {
	var out []string
	for _, f := range findings {
		for _, d := range store.PathQuery([]string{"treat", "hasFinding"}, f) {
			inst, _ := store.Instance(d)
			out = append(out, inst.Name)
		}
	}
	return out
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
