// Conversation: reproduces the two Watson Assistant integration scenarios
// of the paper's Section 6.1 against the synthetic MED.
//
// Scenario 1 (Figure 7): the query term is unknown to the KB; relaxation
// repairs the conversation by offering semantically related conditions the
// KB does know, and the dialogue continues from the user's pick.
//
// Scenario 2 (Figure 8): the query term is known; relaxation expands the
// answer with related conditions before the direct information.
package main

import (
	"fmt"
	"log"
	"strings"

	"medrelax"
	"medrelax/internal/dialog"
	"medrelax/internal/eks"
)

func main() {
	fmt.Println("== conversational integration (Section 6.1) ==")
	sys, err := medrelax.Build(medrelax.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	conv, err := sys.NewConversation(true)
	if err != nil {
		log.Fatal(err)
	}

	// Scenario 1: pick an EKS finding with no KB instance — the
	// "pyelectasia" situation.
	unknown := findUncovered(sys)
	fmt.Printf("\n-- scenario 1: unknown term %q --\n", unknown)
	turn(conv, "what drugs treat "+unknown)
	// Accept the first suggestion, as the user in Figure 7 does.
	turn(conv, "1")

	// Scenario 2: a term the KB knows.
	conv.Reset()
	known := findTreated(sys)
	fmt.Printf("\n-- scenario 2: known term %q with answer expansion --\n", known)
	turn(conv, "what drugs treat "+known)

	// Context carry-over (Section 4): elliptical follow-up.
	fmt.Println("\n-- context carry-over --")
	turn(conv, "what about "+findTreated2(sys))

	// Without relaxation, scenario 1 dead-ends.
	fmt.Println("\n-- the same unknown term without query relaxation --")
	noQR, err := sys.NewConversation(false)
	if err != nil {
		log.Fatal(err)
	}
	turn(noQR, "what drugs treat "+unknown)
}

func turn(conv *dialog.Conversation, text string) {
	fmt.Printf("user:   %s\n", text)
	resp := conv.Ask(text)
	fmt.Printf("system: %s\n", resp.Text)
	if len(resp.Answers) > 0 {
		fmt.Printf("        answers: %s\n", strings.Join(trim(resp.Answers, 5), ", "))
	}
	if len(resp.Related) > 0 {
		fmt.Printf("        related: %s\n", strings.Join(trim(resp.Related, 7), ", "))
	}
}

func trim(xs []string, n int) []string {
	if len(xs) > n {
		return append(append([]string{}, xs[:n]...), "…")
	}
	return xs
}

// findUncovered returns a finding known to the external knowledge source
// but absent from the KB, whose neighbourhood has KB data.
func findUncovered(sys *medrelax.System) string {
	for _, cid := range sys.World.Findings {
		if sys.Ingestion.Flagged[cid] {
			continue
		}
		if _, err := sys.Relax(nameOf(sys, cid), medrelax.ContextIndication, 1); err == nil {
			return nameOf(sys, cid)
		}
	}
	return "pyelectasia"
}

func findTreated(sys *medrelax.System) string {
	best, bestPop := "", -1.0
	for cid := range sys.Med.Treated {
		if p := sys.Med.Popularity[cid]; p > bestPop {
			best, bestPop = nameOf(sys, cid), p
		}
	}
	return best
}

func findTreated2(sys *medrelax.System) string {
	first := findTreated(sys)
	best, bestPop := "", -1.0
	for cid := range sys.Med.Treated {
		name := nameOf(sys, cid)
		if name == first {
			continue
		}
		if p := sys.Med.Popularity[cid]; p > bestPop {
			best, bestPop = name, p
		}
	}
	return best
}

func nameOf(sys *medrelax.System, cid eks.ConceptID) string {
	c, _ := sys.World.Graph.Concept(cid)
	return c.Name
}
