package medrelax

import (
	"encoding/json"
	"os"
	"testing"

	"medrelax/internal/eval"
)

// TestRelaxMatchesGolden asserts that the online phase's ranked output —
// concept order, score bits, hop counts, instance lists — is identical to
// the pinned output in testdata/relax_golden.json, which was generated with
// the original map-based graph kernel and serialized similarity evaluator.
// Any optimization that changes results fails here. Regenerate (only after
// an intentional semantic change) with:
//
//	go run ./cmd/relaxgolden -out testdata/relax_golden.json
func TestRelaxMatchesGolden(t *testing.T) {
	data, err := os.ReadFile("testdata/relax_golden.json")
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	var want []GoldenSummary
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing golden file: %v", err)
	}

	sys := sharedSystem(t)
	entries := GoldenEntries(sys, eval.SelectQueries(sys.Med, sys.Oracle, len(want)))
	got, err := Summarize(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d summaries, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Term != w.Term || g.Concept != w.Concept || g.Context != w.Context {
			t.Errorf("query %d: identity mismatch: got (%q, %d, %q), want (%q, %d, %q)",
				i, g.Term, g.Concept, g.Context, w.Term, w.Concept, w.Context)
			continue
		}
		if g.RankedLen != w.RankedLen || g.TopKLen != w.TopKLen {
			t.Errorf("query %d (%q): result counts changed: ranked %d->%d, topk %d->%d",
				i, w.Term, w.RankedLen, g.RankedLen, w.TopKLen, g.TopKLen)
		}
		if g.Hash != w.Hash {
			t.Errorf("query %d (%q): ranked output diverged from the pinned seed implementation", i, w.Term)
		}
	}
}
