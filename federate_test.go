package medrelax

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"reflect"
	"slices"
	"sync"
	"testing"

	"medrelax/internal/core"
	"medrelax/internal/engine"
	"medrelax/internal/eval"
	"medrelax/internal/server"
	"medrelax/internal/serving"
)

// The federated build is expensive (full world + a second ingestion), so
// every two-source test shares one, mirroring sharedSystem.
var (
	twoSrcOnce sync.Once
	twoSrcSys  *System
	twoSrcErr  error
)

func twoSourceSystem(tb testing.TB) *System {
	tb.Helper()
	twoSrcOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.SecondSource = true
		twoSrcSys, twoSrcErr = Build(cfg)
	})
	if twoSrcErr != nil {
		tb.Fatalf("Build(SecondSource): %v", twoSrcErr)
	}
	return twoSrcSys
}

// oovLatentTerms returns latent surface variants the primary's own mapper
// cannot place — out-of-vocabulary for the primary source by construction
// (they were withheld from its synonym index and fall below the embedding
// acceptance threshold).
func oovLatentTerms(sys *System) []string {
	var oov []string
	for _, variants := range sys.World.Latent {
		for _, term := range variants {
			if _, ok := sys.Mapper.Map(term); !ok {
				oov = append(oov, term)
			}
		}
	}
	slices.Sort(oov)
	return oov
}

func TestTwoSourceStats(t *testing.T) {
	sys := twoSourceSystem(t)
	stats := sys.Engine.Stats()
	if got := stats["sourceCount"]; got != 2 {
		t.Fatalf("sourceCount = %v, want 2", got)
	}
	sources, ok := stats["sources"].(map[string]any)
	if !ok {
		t.Fatalf("stats lacks per-source map: %T", stats["sources"])
	}
	for _, name := range []string{core.PrimarySourceName, "variant"} {
		arm, ok := sources[name].(map[string]any)
		if !ok {
			t.Fatalf("stats.sources lacks %q", name)
		}
		if n := arm["flaggedConcepts"].(int); n <= 0 {
			t.Errorf("source %q has %d flagged concepts; it cannot answer anything", name, n)
		}
	}
}

// TestTwoSourceResolvesOOV is the federation coverage scenario: query terms
// the primary source alone cannot map (latent paraphrases) must be answered
// by the two-source snapshot through the variant vocabulary, with the
// results attributed to it.
func TestTwoSourceResolvesOOV(t *testing.T) {
	sys := twoSourceSystem(t)
	oov := oovLatentTerms(sys)
	if len(oov) == 0 {
		t.Fatal("no latent variant is OOV for the primary; the coverage scenario has nothing to show")
	}
	t.Logf("%d latent variants are OOV for the primary mapper", len(oov))

	answered := 0
	for _, term := range oov {
		results, err := sys.Engine.Relax(context.Background(), term, "", 5)
		if err != nil {
			// Not every paraphrase made it into the variant vocabulary
			// (collisions are skipped); what matters is that some do.
			continue
		}
		if len(results) == 0 {
			t.Errorf("term %q: mapped but zero results", term)
			continue
		}
		answered++
		instances := 0
		for _, r := range results {
			if !slices.Contains(r.Sources, "variant") {
				t.Errorf("term %q: result %q sources = %v, want variant attribution", term, r.Concept, r.Sources)
			}
			if slices.Contains(r.Sources, core.PrimarySourceName) {
				t.Errorf("term %q: result %q claims primary attribution, but the primary cannot map the term", term, r.Concept)
			}
			instances += len(r.Instances)
		}
		if instances == 0 {
			t.Errorf("term %q: results carry no KB instances", term)
		}
		// Determinism: the fused rule must reproduce byte-for-byte.
		again, err := sys.Engine.Relax(context.Background(), term, "", 5)
		if err != nil || !reflect.DeepEqual(results, again) {
			t.Errorf("term %q: fused answer not deterministic (err %v)", term, err)
		}
	}
	if answered == 0 {
		t.Fatalf("none of %d OOV terms was answered by the variant source", len(oov))
	}
	t.Logf("%d/%d OOV terms answered via the variant source", answered, len(oov))
}

// TestTwoSourcePrimaryCoverageKept pins the other direction of fusion:
// mounting a secondary must not lose the primary's coverage, and answers the
// primary contributes carry its attribution.
func TestTwoSourcePrimaryCoverageKept(t *testing.T) {
	sys := twoSourceSystem(t)
	queries := eval.SelectQueries(sys.Med, sys.Oracle, 10)
	if len(queries) == 0 {
		t.Fatal("no queries selected")
	}
	for _, q := range queries {
		qctx := ""
		if q.Ctx != nil {
			qctx = q.Ctx.String()
		}
		results, err := sys.Engine.Relax(context.Background(), q.Term, qctx, 10)
		if err != nil {
			t.Fatalf("term %q: %v", q.Term, err)
		}
		if len(results) == 0 {
			t.Fatalf("term %q: no results from the fused path", q.Term)
		}
		fromPrimary := false
		for _, r := range results {
			if len(r.Sources) == 0 {
				t.Fatalf("term %q: result %q has no source attribution on a multi-source snapshot", q.Term, r.Concept)
			}
			if slices.Contains(r.Sources, core.PrimarySourceName) {
				fromPrimary = true
			}
		}
		if !fromPrimary {
			t.Errorf("term %q: no result attributes the primary source", q.Term)
		}
	}
}

// TestTwoSourceExplain exercises explain mode on the fused path: the
// relaxation path must run in the source that won the result.
func TestTwoSourceExplain(t *testing.T) {
	sys := twoSourceSystem(t)
	oov := oovLatentTerms(sys)
	ctx := core.WithExplain(context.Background())

	var explained *engine.Explain
	for _, term := range oov {
		results, err := sys.Engine.Relax(ctx, term, "", 5)
		if err != nil || len(results) == 0 {
			continue
		}
		for _, r := range results {
			if r.Explain == nil {
				continue
			}
			explained = r.Explain
			if r.Explain.Source != "variant" {
				t.Errorf("term %q: explain source %q, want variant", term, r.Explain.Source)
			}
			if r.Explain.PathWeight <= 0 || r.Explain.PathWeight > 1 {
				t.Errorf("term %q: path weight %v out of (0, 1]", term, r.Explain.PathWeight)
			}
			if len(r.Explain.Edges) == 0 {
				t.Errorf("term %q: explained result %q has an empty path but is not the query itself", term, r.Concept)
			}
			for _, e := range r.Explain.Edges {
				if e.Direction != "generalization" && e.Direction != "specialization" {
					t.Errorf("edge %v has direction %q", e, e.Direction)
				}
				if e.Dist < 1 {
					t.Errorf("edge %v has distance %d < 1", e, e.Dist)
				}
			}
		}
		if explained != nil {
			break
		}
	}
	if explained == nil {
		t.Fatal("no OOV answer carried an explanation")
	}

	// Explain off → the new fields stay absent even on the fused path's
	// multi-source results (attribution yes, path no).
	for _, term := range oov {
		results, err := sys.Engine.Relax(context.Background(), term, "", 5)
		if err != nil {
			continue
		}
		for _, r := range results {
			if r.Explain != nil {
				t.Fatalf("term %q: explain attached without being requested", term)
			}
		}
		break
	}
}

// TestExplainHTTPByteIdentity pins the defining constraint at the HTTP
// layer over the full serving stack (cache, admission control): explain=true
// enriches the response, and explain=false responses — before, after, and
// interleaved with explain traffic — stay byte-identical, i.e. the explain
// variant neither changes the classic wire shape nor poisons the cache.
func TestExplainHTTPByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("boots an HTTP stack")
	}
	sys := sharedSystem(t)
	eng := serving.NewEngine(sys.Engine, serving.DefaultOptions())
	srv := httptest.NewServer(eng.Handler(server.New(eng).Handler()))
	defer srv.Close()

	queries := eval.SelectQueries(sys.Med, sys.Oracle, 5)
	if len(queries) == 0 {
		t.Fatal("no queries selected")
	}
	type relaxResponse struct {
		Term    string               `json:"term"`
		Context string               `json:"context"`
		Results []engine.RelaxResult `json:"results"`
	}
	for _, q := range queries {
		v := url.Values{"term": {q.Term}, "k": {"10"}}
		if q.Ctx != nil {
			v.Set("context", q.Ctx.String())
		}
		plainPath := "/relax?" + v.Encode()
		v.Set("explain", "true")
		explainPath := "/relax?" + v.Encode()

		status, before := httpGet(t, srv.URL, plainPath)
		if status != 200 {
			t.Fatalf("term %q: status %d: %s", q.Term, status, before)
		}
		var plain relaxResponse
		if err := json.Unmarshal(before, &plain); err != nil {
			t.Fatal(err)
		}
		for _, r := range plain.Results {
			if r.Sources != nil || r.Explain != nil {
				t.Fatalf("term %q: explain=false response carries attribution fields: %s", q.Term, before)
			}
		}

		status, exBody := httpGet(t, srv.URL, explainPath)
		if status != 200 {
			t.Fatalf("term %q explain: status %d: %s", q.Term, status, exBody)
		}
		var ex relaxResponse
		if err := json.Unmarshal(exBody, &ex); err != nil {
			t.Fatal(err)
		}
		if len(ex.Results) != len(plain.Results) {
			t.Fatalf("term %q: explain changed the result set: %d vs %d", q.Term, len(ex.Results), len(plain.Results))
		}
		sawPath := false
		for i, r := range ex.Results {
			if !slices.Equal(r.Sources, []string{core.PrimarySourceName}) {
				t.Fatalf("term %q: explain result sources = %v, want [primary]", q.Term, r.Sources)
			}
			if r.Explain != nil {
				sawPath = true
				if r.Explain.Source != core.PrimarySourceName {
					t.Fatalf("term %q: explain path source %q", q.Term, r.Explain.Source)
				}
			}
			// Ranked surface stays identical; explain only annotates.
			if r.Concept != plain.Results[i].Concept || r.Score != plain.Results[i].Score {
				t.Fatalf("term %q: explain reordered results", q.Term)
			}
		}
		if !sawPath {
			t.Fatalf("term %q: no explained result carries a relaxation path", q.Term)
		}

		// Cached explain variant answers identically.
		_, exAgain := httpGet(t, srv.URL, explainPath)
		if !bytes.Equal(exBody, exAgain) {
			t.Fatalf("term %q: explain=true response unstable across cache hit", q.Term)
		}

		// And the classic response is still byte-identical — the explain
		// variant lives under its own cache key.
		status, after := httpGet(t, srv.URL, plainPath)
		if status != 200 || !bytes.Equal(before, after) {
			t.Fatalf("term %q: explain traffic changed the explain=false bytes:\n before: %s\n after:  %s",
				q.Term, before, after)
		}
	}

	// Batch path: same contract through POST /relax/batch?explain=true.
	items := make([]map[string]any, 0, len(queries))
	for _, q := range queries {
		it := map[string]any{"term": q.Term, "k": 10}
		if q.Ctx != nil {
			it["context"] = q.Ctx.String()
		}
		items = append(items, it)
	}
	body, err := json.Marshal(map[string]any{"queries": items})
	if err != nil {
		t.Fatal(err)
	}
	status, plainBatch := httpPost(t, srv.URL, "/relax/batch", body)
	if status != 200 {
		t.Fatalf("batch status %d: %s", status, plainBatch)
	}
	status, exBatch := httpPost(t, srv.URL, "/relax/batch?explain=true", body)
	if status != 200 {
		t.Fatalf("explain batch status %d: %s", status, exBatch)
	}
	if !bytes.Contains(exBatch, []byte(`"explain"`)) {
		t.Fatalf("explain batch carries no explain fields: %s", exBatch)
	}
	status, plainBatchAfter := httpPost(t, srv.URL, "/relax/batch", body)
	if status != 200 || !bytes.Equal(plainBatch, plainBatchAfter) {
		t.Fatalf("batch explain traffic changed the explain=false bytes:\n before: %s\n after:  %s",
			plainBatch, plainBatchAfter)
	}
}

// TestRouterExplainPassthrough pins explain mode across the distributed
// tier: explain responses answered through kbrouter are byte-identical to a
// direct replica, for both the proxy and the scatter-gather path, and
// explain=false byte-identity survives interleaved explain traffic.
func TestRouterExplainPassthrough(t *testing.T) {
	if testing.Short() {
		t.Skip("boots four HTTP stacks")
	}
	sys := sharedSystem(t)
	replicas := bootReplicas(t, sys, 3)
	rt := bootRouter(t, replicas)
	routerSrv := httptest.NewServer(rt.Handler())
	defer routerSrv.Close()
	direct := "http://" + replicas[0]

	queries := eval.SelectQueries(sys.Med, sys.Oracle, 10)
	if len(queries) == 0 {
		t.Fatal("no queries selected")
	}
	for _, q := range queries {
		v := url.Values{"term": {q.Term}, "k": {"10"}, "explain": {"true"}}
		if q.Ctx != nil {
			v.Set("context", q.Ctx.String())
		}
		path := "/relax?" + v.Encode()
		dStatus, dBody := httpGet(t, direct, path)
		rStatus, rBody := httpGet(t, routerSrv.URL, path)
		if dStatus != rStatus || !bytes.Equal(dBody, rBody) {
			t.Fatalf("term %q: routed explain response diverged (status %d vs %d):\n direct: %s\n router: %s",
				q.Term, dStatus, rStatus, dBody, rBody)
		}
		if !bytes.Contains(rBody, []byte(`"explain"`)) || !bytes.Contains(rBody, []byte(`"sources"`)) {
			t.Fatalf("term %q: routed explain response lacks path or attribution: %s", q.Term, rBody)
		}

		v.Del("explain")
		plainPath := "/relax?" + v.Encode()
		dStatus, dBody = httpGet(t, direct, plainPath)
		rStatus, rBody = httpGet(t, routerSrv.URL, plainPath)
		if dStatus != rStatus || !bytes.Equal(dBody, rBody) {
			t.Fatalf("term %q: explain=false diverged through the router after explain traffic", q.Term)
		}
		if bytes.Contains(rBody, []byte(`"explain"`)) {
			t.Fatalf("term %q: explain=false routed response leaks explain fields: %s", q.Term, rBody)
		}
	}

	// Scatter-gather: explain survives the batch split/merge verbatim.
	type item struct {
		Term    string `json:"term"`
		Context string `json:"context,omitempty"`
		K       int    `json:"k,omitempty"`
	}
	items := make([]item, 0, len(queries))
	for _, q := range queries {
		it := item{Term: q.Term, K: 10}
		if q.Ctx != nil {
			it.Context = q.Ctx.String()
		}
		items = append(items, it)
	}
	body, err := json.Marshal(map[string]any{"queries": items})
	if err != nil {
		t.Fatal(err)
	}
	dStatus, dBody := httpPost(t, direct, "/relax/batch?explain=true", body)
	rStatus, rBody := httpPost(t, routerSrv.URL, "/relax/batch?explain=true", body)
	if dStatus != 200 || rStatus != 200 || !bytes.Equal(dBody, rBody) {
		t.Fatalf("scatter-gather explain batch diverged (status %d vs %d):\n direct: %s\n router: %s",
			dStatus, rStatus, dBody, rBody)
	}
	if !bytes.Contains(rBody, []byte(`"explain"`)) {
		t.Fatalf("routed explain batch carries no explain fields: %s", rBody)
	}
}
