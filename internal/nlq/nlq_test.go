package nlq

import (
	"strings"
	"testing"

	"medrelax/internal/core"
	"medrelax/internal/corpus"
	"medrelax/internal/eks"
	"medrelax/internal/kb"
	"medrelax/internal/ontology"
)

// The test world reproduces the Section 6.2 running example: aspirin, a
// Risk/Indication structure, "pyelectasia" present only in the external
// knowledge source, and "kidney disease" as its closest KB concept.
func testWorld(t *testing.T) (*ontology.Ontology, *kb.Store, *core.Relaxer, *core.Ingestion) {
	t.Helper()
	o := ontology.New()
	for _, c := range []ontology.Concept{
		{Name: "Drug"}, {Name: "Indication"}, {Name: "Risk"}, {Name: "Finding"},
		{Name: "AdverseEffect", Parent: "Risk"},
	} {
		if err := o.AddConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []ontology.Relationship{
		{Name: "treat", Domain: "Drug", Range: "Indication"},
		{Name: "cause", Domain: "Drug", Range: "Risk"},
		{Name: "hasFinding", Domain: "Indication", Range: "Finding"},
		{Name: "hasFinding", Domain: "Risk", Range: "Finding"},
	} {
		if err := o.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}

	g := eks.New()
	for _, c := range []eks.Concept{
		{ID: 1, Name: "clinical finding"},
		{ID: 2, Name: "kidney disease", Synonyms: []string{"nephropathy"}},
		{ID: 3, Name: "pyelectasia"},
		{ID: 4, Name: "renal cyst"},
		{ID: 5, Name: "fever"},
	} {
		if err := g.AddConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]eks.ConceptID{{2, 1}, {3, 2}, {4, 2}, {5, 1}} {
		if err := g.AddSubsumption(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetRoot(1); err != nil {
		t.Fatal(err)
	}

	store := kb.NewStore(o)
	for _, inst := range []kb.Instance{
		{ID: 1, Concept: "Drug", Name: "aspirin"},
		{ID: 2, Concept: "Drug", Name: "lisinopril"},
		{ID: 10, Concept: "AdverseEffect", Name: "aspirin nephrotoxicity risk"},
		{ID: 11, Concept: "Indication", Name: "lisinopril kidney indication"},
		{ID: 12, Concept: "Indication", Name: "aspirin fever indication"},
		{ID: 20, Concept: "Finding", Name: "kidney disease"},
		{ID: 21, Concept: "Finding", Name: "renal cyst"},
		{ID: 22, Concept: "Finding", Name: "fever"},
	} {
		if err := store.AddInstance(inst); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range []kb.Assertion{
		{Subject: 1, Relationship: "cause", Object: 10},
		{Subject: 10, Relationship: "hasFinding", Object: 20},
		{Subject: 2, Relationship: "treat", Object: 11},
		{Subject: 11, Relationship: "hasFinding", Object: 20},
		{Subject: 1, Relationship: "treat", Object: 12},
		{Subject: 12, Relationship: "hasFinding", Object: 22},
	} {
		if err := store.AddAssertion(a); err != nil {
			t.Fatal(err)
		}
	}

	corp := corpus.New([]corpus.Document{{
		ID: "d",
		Sections: []corpus.Section{
			{Label: "Risk-hasFinding-Finding", Text: "kidney disease kidney disease renal cyst"},
			{Label: "Indication-hasFinding-Finding", Text: "kidney disease fever fever"},
		},
	}})
	ing, err := core.Ingest(o, store, g, corp, exactMapper{g}, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sim := core.NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	relaxer := core.NewRelaxer(ing, sim, exactMapper{g}, core.RelaxOptions{Radius: 3, DynamicRadius: true})
	return o, store, relaxer, ing
}

type exactMapper struct{ g *eks.Graph }

func (m exactMapper) Name() string { return "EXACT" }
func (m exactMapper) Map(name string) (eks.ConceptID, bool) {
	ids := m.g.LookupName(name)
	if len(ids) == 0 {
		return 0, false
	}
	return ids[0], true
}

func newSystem(t *testing.T) *System {
	t.Helper()
	o, store, relaxer, ing := testWorld(t)
	return NewSystem(o, store, relaxer, ing)
}

func TestEvidenceGeneration(t *testing.T) {
	sys := newSystem(t)
	tes := sys.Evidence.Generate("what are the risks caused by using aspirin with pyelectasia")
	spans := map[string][]Evidence{}
	for _, te := range tes {
		spans[te.Span] = te.Evidences
	}
	// "risks" is metadata for the Risk concept.
	if evs := spans["risks"]; len(evs) == 0 || evs[0].Kind != Metadata || evs[0].Concept != "Risk" {
		t.Errorf("risks evidence = %+v", evs)
	}
	// "caused by" maps to the cause relationship.
	if evs := spans["caused by"]; len(evs) == 0 || evs[0].Relationship != "cause" {
		t.Errorf("caused-by evidence = %+v", evs)
	}
	// "aspirin" is a data value of Drug.
	if evs := spans["aspirin"]; len(evs) != 1 || evs[0].Kind != DataValue || evs[0].Concept != "Drug" {
		t.Errorf("aspirin evidence = %+v", evs)
	}
	// "pyelectasia" is unknown and produces relaxed data-value evidence.
	evs := spans["pyelectasia"]
	if len(evs) == 0 {
		t.Fatal("pyelectasia produced no evidence")
	}
	foundKidney := false
	for _, ev := range evs {
		if !ev.Relaxed || ev.Kind != DataValue {
			t.Errorf("pyelectasia evidence not relaxed data-value: %+v", ev)
		}
		for _, id := range ev.Instances {
			inst, _ := sys.store.Instance(id)
			if inst.Name == "kidney disease" {
				foundKidney = true
			}
		}
	}
	if !foundKidney {
		t.Error("relaxation did not surface kidney disease")
	}
}

func TestEvidenceWithoutRelaxer(t *testing.T) {
	o, store, _, _ := testWorld(t)
	sys := NewSystem(o, store, nil, nil)
	tes := sys.Evidence.Generate("risks of pyelectasia")
	for _, te := range tes {
		if te.Span == "pyelectasia" {
			t.Errorf("without relaxation pyelectasia must yield nothing, got %+v", te)
		}
	}
}

func TestInterpretationRanking(t *testing.T) {
	sys := newSystem(t)
	tes := sys.Evidence.Generate("what are the risks caused by using aspirin with pyelectasia")
	its := sys.Interpreter.Interpret(tes)
	if len(its) == 0 {
		t.Fatal("no interpretations")
	}
	// Ranked by compactness then relaxation score.
	for i := 1; i < len(its); i++ {
		if its[i-1].Compactness > its[i].Compactness {
			t.Fatal("interpretations not sorted by compactness")
		}
		if its[i-1].Compactness == its[i].Compactness && its[i-1].RelaxScore < its[i].RelaxScore {
			t.Fatal("ties not broken by relaxation score")
		}
	}
	// Among equal-compactness interpretations, the top one must use the
	// best-scoring relaxed value (kidney disease, the most similar concept
	// to pyelectasia).
	best := its[0]
	usesKidney := false
	for _, ev := range best.Selection {
		for _, id := range ev.Instances {
			if inst, _ := sys.store.Instance(id); inst.Name == "kidney disease" {
				usesKidney = true
			}
		}
	}
	if !usesKidney {
		t.Errorf("top interpretation does not ground pyelectasia to kidney disease: %+v", best)
	}
	if best.String() == "" {
		t.Error("empty rendering")
	}
}

func TestAnswerFigure9(t *testing.T) {
	sys := newSystem(t)
	ans, err := sys.Answer("what are the risks caused by using aspirin with pyelectasia")
	if err != nil {
		t.Fatal(err)
	}
	// The answer is aspirin's adverse effect on kidney disease.
	if len(ans.Results) != 1 || ans.Results[0] != "aspirin nephrotoxicity risk" {
		t.Errorf("results = %v", ans.Results)
	}
	if ans.Query.Focus != "Risk" {
		t.Errorf("focus = %s", ans.Query.Focus)
	}
	if !strings.Contains(ans.SQL, "SELECT") || !strings.Contains(ans.SQL, "hasFinding") {
		t.Errorf("SQL = %s", ans.SQL)
	}
}

func TestAnswerDrugFocus(t *testing.T) {
	sys := newSystem(t)
	ans, err := sys.Answer("which drugs treat fever")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Results) != 1 || ans.Results[0] != "aspirin" {
		t.Errorf("results = %v", ans.Results)
	}
	if ans.Query.Focus != "Drug" {
		t.Errorf("focus = %s", ans.Query.Focus)
	}
}

func TestAnswerDrugFocusRelaxed(t *testing.T) {
	sys := newSystem(t)
	// pyelectasia is unknown; relaxation grounds it to kidney disease, and
	// lisinopril treats kidney disease.
	ans, err := sys.Answer("which drugs treat pyelectasia")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range ans.Results {
		if r == "lisinopril" {
			found = true
		}
	}
	if !found {
		t.Errorf("results = %v, want lisinopril", ans.Results)
	}
}

func TestAnswerErrors(t *testing.T) {
	sys := newSystem(t)
	if _, err := sys.Answer("hello beautiful world"); err == nil {
		t.Error("evidence-free query must fail")
	}
}

func TestSemanticGraphShortestPath(t *testing.T) {
	o, _, _, _ := testWorld(t)
	g := NewSemanticGraph(o)
	p := g.shortestPath("Drug", "Finding")
	if len(p) != 2 {
		t.Fatalf("Drug->Finding path = %+v, want 2 edges", p)
	}
	if p := g.shortestPath("Drug", "Drug"); len(p) != 0 {
		t.Error("self path must be empty")
	}
	// Subconcept edges connect AdverseEffect to Risk.
	p = g.shortestPath("AdverseEffect", "Risk")
	if len(p) != 1 || p[0].Relationship != "isA" {
		t.Errorf("AdverseEffect->Risk = %+v", p)
	}
}

func TestCompileUnsupported(t *testing.T) {
	o, _, _, _ := testWorld(t)
	// No metadata evidence: not compilable.
	it := Interpretation{Selection: []Evidence{{Kind: DataValue, Concept: "Finding"}}}
	if _, ok := Compile(it, o); ok {
		t.Error("metadata-free interpretation must not compile")
	}
	// No data value: not compilable.
	it = Interpretation{Selection: []Evidence{{Kind: Metadata, Concept: "Risk"}}}
	if _, ok := Compile(it, o); ok {
		t.Error("value-free interpretation must not compile")
	}
}

func TestStructuredQuerySQLRendering(t *testing.T) {
	q := StructuredQuery{
		Focus:            "Risk",
		Chain:            []string{"hasFinding"},
		Terminal:         []kb.InstanceID{20},
		DrugFilter:       []kb.InstanceID{1},
		DrugRelationship: "cause",
	}
	sql := q.SQL()
	for _, want := range []string{"SELECT", "Risk", "hasFinding", "cause", "20", "EXISTS"} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q: %s", want, sql)
		}
	}
}
