// Package nlq implements the natural language query system of the paper's
// Section 6.2, modeled after the ATHENA ontology-driven NLQ architecture
// (the paper's reference [35]) that the relaxation method is integrated
// into: evidence generation over the domain ontology and the KB, Steiner-
// tree-based interpretation generation over the semantic graph, ranking by
// compactness with relaxation scores as the tie-breaker, and emission of an
// executable structured query.
package nlq

import (
	"fmt"
	"sort"
	"strings"

	"medrelax/internal/core"
	"medrelax/internal/kb"
	"medrelax/internal/ontology"
	"medrelax/internal/stringutil"
)

// EvidenceKind distinguishes the paper's two evidence types.
type EvidenceKind int

// Evidence kinds: metadata evidence matches ontology elements, data-value
// evidence matches KB instances (directly or through relaxation).
const (
	Metadata EvidenceKind = iota
	DataValue
)

// Evidence is one candidate grounding of a query token span.
type Evidence struct {
	Kind EvidenceKind
	// Span is the normalized token span that produced the evidence.
	Span string
	// Concept is the ontology concept the evidence grounds to: for
	// metadata evidence the matched concept (or the relationship's
	// implied concept), for data-value evidence the instance's concept.
	Concept string
	// Relationship is set for metadata evidence that matched a
	// relationship name.
	Relationship string
	// Instances are the KB instances for data-value evidence.
	Instances []kb.InstanceID
	// Score is 1 for direct matches and the relaxation similarity for
	// relaxed data values.
	Score float64
	// Relaxed marks evidence produced by query relaxation.
	Relaxed bool
}

// EvidenceGenerator finds all evidences for an input query.
type EvidenceGenerator struct {
	onto  *ontology.Ontology
	store *kb.Store
	// relaxer is optional; with it, tokens unknown to both the ontology
	// and the KB are relaxed into data-value evidence.
	relaxer *core.Relaxer
	ing     *core.Ingestion

	// conceptLex and relLex map normalized names to ontology elements.
	conceptLex map[string]string
	relLex     map[string][]ontology.Relationship
	// relPhrases maps colloquial phrasings to relationship names.
	relPhrases map[string]string
	// stop tokens never begin an evidence span; they are question filler.
	stop map[string]bool
}

// NewEvidenceGenerator indexes the ontology and KB lexicons. relaxer and
// ing may be nil to disable relaxation.
func NewEvidenceGenerator(onto *ontology.Ontology, store *kb.Store, relaxer *core.Relaxer, ing *core.Ingestion) *EvidenceGenerator {
	g := &EvidenceGenerator{
		onto:       onto,
		store:      store,
		relaxer:    relaxer,
		ing:        ing,
		conceptLex: map[string]string{},
		relLex:     map[string][]ontology.Relationship{},
		relPhrases: map[string]string{
			"caused by": "cause", "causes": "cause", "causing": "cause",
			"treats": "treat", "treating": "treat", "treated by": "treat",
			"risks": "Risk", "risk": "Risk",
		},
		stop: map[string]bool{
			"what": true, "which": true, "are": true, "is": true, "the": true,
			"of": true, "for": true, "using": true, "with": true, "a": true,
			"an": true, "do": true, "does": true, "can": true, "to": true,
			"by": true, "and": true, "in": true, "when": true, "how": true,
		},
	}
	for _, name := range onto.ConceptNames() {
		g.conceptLex[stringutil.Normalize(name)] = name
		// Plural form.
		g.conceptLex[stringutil.Normalize(name)+"s"] = name
	}
	for _, r := range onto.Relationships() {
		key := stringutil.Normalize(r.Name)
		g.relLex[key] = append(g.relLex[key], r)
	}
	return g
}

// TokenEvidence is the evidence set of one token span.
type TokenEvidence struct {
	Span      string
	Evidences []Evidence
}

// Generate scans the query and returns the evidence set per matched span,
// in reading order. Spans that match nothing are dropped (they are
// connective tissue like "what" or "using").
func (g *EvidenceGenerator) Generate(query string) []TokenEvidence {
	toks := stringutil.Tokenize(query)
	var out []TokenEvidence
	for i := 0; i < len(toks); {
		te, n := g.matchAt(toks, i)
		if n == 0 {
			i++
			continue
		}
		out = append(out, te)
		i += n
	}
	return out
}

// matchAt finds the longest span starting at i with any evidence. Spans
// starting on question filler are skipped, and direct matches are
// preferred over relaxed ones at every length.
func (g *EvidenceGenerator) matchAt(toks []string, i int) (TokenEvidence, int) {
	if g.stop[toks[i]] {
		// "caused by"/"treated by" start with verbs, never with filler, so
		// skipping here is safe for the phrase lexicon too.
		return TokenEvidence{}, 0
	}
	// Try spans longest-first, up to 5 tokens, direct evidence only.
	max := 5
	if i+max > len(toks) {
		max = len(toks) - i
	}
	for n := max; n >= 1; n-- {
		span := g.spanAt(toks, i, n)
		if span == "" {
			continue
		}
		evs := g.directEvidencesFor(span)
		if len(evs) > 0 {
			return TokenEvidence{Span: span, Evidences: evs}, n
		}
	}
	// Relaxation fallback for short unknown spans: take the longest span
	// (up to 3 tokens) that ends before a stopword.
	for n := min(3, max); n >= 1; n-- {
		span := g.spanAt(toks, i, n)
		if span == "" {
			continue
		}
		evs := g.relaxedEvidencesFor(span)
		if len(evs) > 0 {
			return TokenEvidence{Span: span, Evidences: evs}, n
		}
	}
	return TokenEvidence{}, 0
}

// spanAt joins n tokens starting at i, rejecting spans that contain a
// stopword (mentions do not straddle question filler).
func (g *EvidenceGenerator) spanAt(toks []string, i, n int) string {
	for j := i; j < i+n; j++ {
		// The first token was already checked; "by" inside "caused by" is
		// allowed through the phrase lexicon check below.
		if j > i && g.stop[toks[j]] && !g.knownPhrase(strings.Join(toks[i:i+n], " ")) {
			return ""
		}
	}
	return strings.Join(toks[i:i+n], " ")
}

func (g *EvidenceGenerator) knownPhrase(span string) bool {
	if _, ok := g.relPhrases[span]; ok {
		return true
	}
	if _, ok := g.conceptLex[span]; ok {
		return true
	}
	_, ok := g.relLex[span]
	return ok
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// directEvidencesFor collects every direct evidence for a span: metadata
// (concepts, relationships, colloquial relationship phrasings) and exact KB
// data values. Per the paper, a token's evidence is metadata or data-value
// but never both, with metadata taking precedence; duplicates are removed.
func (g *EvidenceGenerator) directEvidencesFor(span string) []Evidence {
	var out []Evidence
	seen := map[string]bool{}
	add := func(e Evidence) {
		key := fmt.Sprintf("%d|%s|%s", e.Kind, e.Concept, e.Relationship)
		if !seen[key] {
			seen[key] = true
			out = append(out, e)
		}
	}
	if concept, ok := g.conceptLex[span]; ok {
		add(Evidence{Kind: Metadata, Span: span, Concept: concept, Score: 1})
	}
	if rels, ok := g.relLex[span]; ok {
		for _, r := range rels {
			add(Evidence{Kind: Metadata, Span: span, Concept: r.Domain, Relationship: r.Name, Score: 1})
		}
	}
	if target, ok := g.relPhrases[span]; ok {
		if g.onto.HasConcept(target) {
			add(Evidence{Kind: Metadata, Span: span, Concept: target, Score: 1})
		} else {
			for _, r := range g.onto.Relationships() {
				if r.Name == target {
					add(Evidence{Kind: Metadata, Span: span, Concept: r.Domain, Relationship: r.Name, Score: 1})
				}
			}
		}
	}
	if len(out) > 0 {
		return out
	}
	// Data values.
	if ids := g.store.LookupName(span); len(ids) > 0 {
		byConcept := map[string][]kb.InstanceID{}
		for _, id := range ids {
			inst, _ := g.store.Instance(id)
			byConcept[inst.Concept] = append(byConcept[inst.Concept], id)
		}
		var concepts []string
		for c := range byConcept {
			concepts = append(concepts, c)
		}
		sort.Strings(concepts)
		for _, c := range concepts {
			out = append(out, Evidence{Kind: DataValue, Span: span, Concept: c, Instances: byConcept[c], Score: 1})
		}
	}
	return out
}

// relaxedEvidencesFor asks the relaxer for semantically related KB
// instances of an unknown span (the "pyelectasia" path of Figure 9).
func (g *EvidenceGenerator) relaxedEvidencesFor(span string) []Evidence {
	if g.relaxer == nil || g.ing == nil {
		return nil
	}
	results, err := g.relaxer.RelaxTerm(span, nil, 0)
	if err != nil {
		return nil
	}
	var out []Evidence
	for _, r := range results {
		if len(out) >= 5 {
			break
		}
		for _, iid := range r.Instances {
			inst, ok := g.store.Instance(iid)
			if !ok {
				continue
			}
			out = append(out, Evidence{
				Kind: DataValue, Span: span, Concept: inst.Concept,
				Instances: []kb.InstanceID{iid}, Score: r.Score, Relaxed: true,
			})
		}
	}
	return out
}
