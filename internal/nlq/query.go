package nlq

import (
	"fmt"
	"sort"
	"strings"

	"medrelax/internal/core"
	"medrelax/internal/kb"
	"medrelax/internal/ontology"
)

// StructuredQuery is the executable form of an interpretation, together
// with a SQL-like rendering for inspection — the paper's NLQ system
// "interprets [the query] over the domain ontology to produce a structured
// query such as SQL".
type StructuredQuery struct {
	// Focus is the concept whose instances the query returns.
	Focus string
	// Chain is the relationship path from the focus toward the bound data
	// value.
	Chain []string
	// Terminal instances bind the end of the chain (e.g. the finding).
	Terminal []kb.InstanceID
	// DrugFilter optionally restricts answers to those connected to these
	// drug instances.
	DrugFilter []kb.InstanceID
	// DrugRelationship is the relationship linking drugs to the focus
	// concept when DrugFilter is set.
	DrugRelationship string
}

// SQL renders the query as SQL over the (subject, relationship, object)
// assertion table, for display.
func (q StructuredQuery) SQL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SELECT i0.name FROM instances i0")
	for i := range q.Chain {
		fmt.Fprintf(&b, " JOIN assertions a%d ON a%d.subject = i%d.id AND a%d.relationship = '%s'", i, i, i, i, q.Chain[i])
		if i < len(q.Chain)-1 {
			fmt.Fprintf(&b, " JOIN instances i%d ON i%d.id = a%d.object", i+1, i+1, i)
		}
	}
	terms := make([]string, 0, len(q.Terminal))
	for _, t := range q.Terminal {
		terms = append(terms, fmt.Sprintf("%d", t))
	}
	fmt.Fprintf(&b, " WHERE i0.concept = '%s'", q.Focus)
	if len(q.Chain) > 0 {
		fmt.Fprintf(&b, " AND a%d.object IN (%s)", len(q.Chain)-1, strings.Join(terms, ", "))
	}
	if len(q.DrugFilter) > 0 {
		drugs := make([]string, 0, len(q.DrugFilter))
		for _, d := range q.DrugFilter {
			drugs = append(drugs, fmt.Sprintf("%d", d))
		}
		fmt.Fprintf(&b, " AND EXISTS (SELECT 1 FROM assertions ad WHERE ad.relationship = '%s' AND ad.object = i0.id AND ad.subject IN (%s))",
			q.DrugRelationship, strings.Join(drugs, ", "))
	}
	return b.String()
}

// Execute runs the query against the store and returns the answer instance
// IDs, sorted.
func (q StructuredQuery) Execute(store *kb.Store) []kb.InstanceID {
	// Answers: instances of Focus connected to a Terminal through Chain.
	candidates := map[kb.InstanceID]bool{}
	for _, t := range q.Terminal {
		for _, id := range store.PathQuery(q.Chain, t) {
			inst, ok := store.Instance(id)
			if !ok {
				continue
			}
			if !store.Ontology().IsSubConceptOf(inst.Concept, q.Focus) {
				continue
			}
			candidates[id] = true
		}
	}
	if len(q.DrugFilter) > 0 {
		filtered := map[kb.InstanceID]bool{}
		for id := range candidates {
			for _, drug := range q.DrugFilter {
				for _, obj := range store.Objects(q.DrugRelationship, drug) {
					if obj == id {
						filtered[id] = true
					}
				}
			}
		}
		candidates = filtered
	}
	out := make([]kb.InstanceID, 0, len(candidates))
	for id := range candidates {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Compile turns an interpretation into a structured query. It supports the
// MED query family the paper's examples exercise: a focus concept (the
// first metadata evidence) reached from a finding data value through a
// hasFinding edge, optionally restricted by drug data values. ok is false
// for interpretations outside that family.
func Compile(it Interpretation, onto *ontology.Ontology) (StructuredQuery, bool) {
	var q StructuredQuery
	// Focus: first metadata evidence.
	for _, ev := range it.Selection {
		if ev.Kind == Metadata {
			q.Focus = ev.Concept
			break
		}
	}
	if q.Focus == "" {
		return q, false
	}
	// Terminal finding values and drug filters.
	for _, ev := range it.Selection {
		if ev.Kind != DataValue {
			continue
		}
		switch {
		case onto.IsSubConceptOf(ev.Concept, "Finding"):
			q.Terminal = append(q.Terminal, ev.Instances...)
		case ev.Concept == "Drug":
			q.DrugFilter = append(q.DrugFilter, ev.Instances...)
		}
	}
	if len(q.Terminal) == 0 {
		return q, false
	}
	// Chain: the relationship path from focus to Finding along the tree.
	if q.Focus == "Drug" {
		// Find the intermediate concept (Risk/Indication family) in the
		// tree between Drug and Finding.
		for _, e := range it.Tree {
			if e.A == "Drug" && e.Relationship != "isA" {
				q.Chain = []string{e.Relationship, "hasFinding"}
				break
			}
			if e.B == "Drug" && e.Relationship != "isA" {
				q.Chain = []string{e.Relationship, "hasFinding"}
				break
			}
		}
		if len(q.Chain) == 0 {
			return q, false
		}
		return q, true
	}
	// Focus is a mid concept (Risk, Indication, ...): one hasFinding hop.
	q.Chain = []string{"hasFinding"}
	// Drug filter uses the tree edge between Drug and the focus.
	if len(q.DrugFilter) > 0 {
		for _, e := range it.Tree {
			if (e.A == "Drug" && sameFamily(onto, e.B, q.Focus)) ||
				(e.B == "Drug" && sameFamily(onto, e.A, q.Focus)) {
				q.DrugRelationship = e.Relationship
				break
			}
		}
		if q.DrugRelationship == "" {
			// No usable drug edge: drop the filter rather than fail.
			q.DrugFilter = nil
		}
	}
	return q, true
}

func sameFamily(onto *ontology.Ontology, a, b string) bool {
	return onto.IsSubConceptOf(a, b) || onto.IsSubConceptOf(b, a)
}

// System bundles the full NLQ pipeline.
type System struct {
	Evidence    *EvidenceGenerator
	Interpreter *Interpreter
	store       *kb.Store
	onto        *ontology.Ontology
}

// NewSystem assembles the pipeline; relaxer/ing may be nil to disable
// relaxation.
func NewSystem(onto *ontology.Ontology, store *kb.Store, relaxer *core.Relaxer, ing *core.Ingestion) *System {
	return &System{
		Evidence:    NewEvidenceGenerator(onto, store, relaxer, ing),
		Interpreter: NewInterpreter(onto, store),
		store:       store,
		onto:        onto,
	}
}

// Answer is the result of answering one natural language query.
type Answer struct {
	Interpretation Interpretation
	Query          StructuredQuery
	SQL            string
	// Results are the answer instances, resolved to names.
	Results []string
	// Alternatives are lower-ranked interpretations, for inspection.
	Alternatives []Interpretation
}

// Answer interprets and executes a natural language query end to end. It
// returns the best compilable interpretation's answer.
func (s *System) Answer(query string) (Answer, error) {
	tes := s.Evidence.Generate(query)
	if len(tes) == 0 {
		return Answer{}, fmt.Errorf("nlq: no evidence found in %q", query)
	}
	interpretations := s.Interpreter.Interpret(tes)
	if len(interpretations) == 0 {
		return Answer{}, fmt.Errorf("nlq: no interpretation for %q", query)
	}
	for i, it := range interpretations {
		q, ok := Compile(it, s.onto)
		if !ok {
			continue
		}
		ans := Answer{Interpretation: it, Query: q, SQL: q.SQL()}
		if i+1 < len(interpretations) {
			ans.Alternatives = interpretations[i+1:]
		}
		for _, id := range q.Execute(s.store) {
			if inst, ok := s.store.Instance(id); ok {
				ans.Results = append(ans.Results, inst.Name)
			}
		}
		return ans, nil
	}
	return Answer{}, fmt.Errorf("nlq: no executable interpretation for %q", query)
}
