package nlq

import (
	"fmt"
	"sort"
	"strings"

	"medrelax/internal/kb"
	"medrelax/internal/ontology"
)

// semEdge is an edge of the semantic graph: a relationship between two
// ontology concepts, or a subconcept link (Relationship == "isA").
type semEdge struct {
	A, B         string
	Relationship string
}

// SemanticGraph is the ontology viewed as an undirected graph for
// interpretation generation.
type SemanticGraph struct {
	adj map[string][]semEdge
}

// NewSemanticGraph builds the graph from the ontology's relationships and
// concept hierarchy.
func NewSemanticGraph(o *ontology.Ontology) *SemanticGraph {
	g := &SemanticGraph{adj: map[string][]semEdge{}}
	add := func(e semEdge) {
		g.adj[e.A] = append(g.adj[e.A], e)
		g.adj[e.B] = append(g.adj[e.B], semEdge{A: e.B, B: e.A, Relationship: e.Relationship})
	}
	for _, r := range o.Relationships() {
		add(semEdge{A: r.Domain, B: r.Range, Relationship: r.Name})
	}
	for _, name := range o.ConceptNames() {
		c, _ := o.Concept(name)
		if c.Parent != "" {
			add(semEdge{A: name, B: c.Parent, Relationship: "isA"})
		}
	}
	return g
}

// shortestPath returns the edges of a shortest path between two concepts,
// or nil when disconnected. Deterministic via sorted neighbour expansion.
func (g *SemanticGraph) shortestPath(from, to string) []semEdge {
	if from == to {
		return []semEdge{}
	}
	type prev struct {
		edge semEdge
		node string
	}
	visited := map[string]bool{from: true}
	parent := map[string]prev{}
	frontier := []string{from}
	for len(frontier) > 0 {
		var next []string
		for _, cur := range frontier {
			edges := append([]semEdge{}, g.adj[cur]...)
			sort.Slice(edges, func(i, j int) bool {
				if edges[i].B != edges[j].B {
					return edges[i].B < edges[j].B
				}
				return edges[i].Relationship < edges[j].Relationship
			})
			for _, e := range edges {
				if visited[e.B] {
					continue
				}
				visited[e.B] = true
				parent[e.B] = prev{edge: e, node: cur}
				if e.B == to {
					var path []semEdge
					for n := to; n != from; n = parent[n].node {
						path = append([]semEdge{parent[n].edge}, path...)
					}
					return path
				}
				next = append(next, e.B)
			}
		}
		frontier = next
	}
	return nil
}

// Interpretation is one grounded reading of the query: a selection of one
// evidence per token, connected by a Steiner tree in the semantic graph.
type Interpretation struct {
	Selection []Evidence
	// Tree is the edge set connecting the selection's concepts.
	Tree []semEdge
	// Compactness is the tree size (number of edges); smaller is better.
	Compactness int
	// RelaxScore is the summed evidence score; it breaks compactness ties,
	// preferring interpretations grounded in more similar relaxed values.
	RelaxScore float64
}

// String renders the interpretation tree in the paper's arrow notation.
func (it Interpretation) String() string {
	if len(it.Tree) == 0 {
		if len(it.Selection) > 0 {
			return it.Selection[0].Concept
		}
		return "(empty)"
	}
	parts := make([]string, 0, len(it.Tree))
	for _, e := range it.Tree {
		parts = append(parts, fmt.Sprintf("%s→%s→%s", e.A, e.Relationship, e.B))
	}
	return strings.Join(parts, ", ")
}

// Interpreter generates and ranks interpretations.
type Interpreter struct {
	graph *SemanticGraph
	onto  *ontology.Ontology
	store *kb.Store
	// MaxSelections caps the evidence combinations explored.
	MaxSelections int
}

// NewInterpreter builds an interpreter over the ontology and store.
func NewInterpreter(o *ontology.Ontology, store *kb.Store) *Interpreter {
	return &Interpreter{graph: NewSemanticGraph(o), onto: o, store: store, MaxSelections: 256}
}

// Interpret enumerates selection sets (one evidence per token), computes a
// Steiner tree for each, and returns interpretations ranked by compactness
// ascending, then relaxation score descending — the paper's ranking with
// the relaxation-aware extension of Section 6.2.
func (ip *Interpreter) Interpret(tokenEvidence []TokenEvidence) []Interpretation {
	if len(tokenEvidence) == 0 {
		return nil
	}
	selections := ip.enumerate(tokenEvidence)
	var out []Interpretation
	for _, sel := range selections {
		tree, ok := ip.steiner(sel)
		if !ok {
			continue
		}
		score := 0.0
		for _, ev := range sel {
			score += ev.Score
		}
		out = append(out, Interpretation{
			Selection:   sel,
			Tree:        tree,
			Compactness: len(tree),
			RelaxScore:  score,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Compactness != out[j].Compactness {
			return out[i].Compactness < out[j].Compactness
		}
		return out[i].RelaxScore > out[j].RelaxScore
	})
	return out
}

// enumerate builds the cartesian product of evidence sets, capped at
// MaxSelections.
func (ip *Interpreter) enumerate(tes []TokenEvidence) [][]Evidence {
	out := [][]Evidence{{}}
	for _, te := range tes {
		var next [][]Evidence
		for _, prefix := range out {
			for _, ev := range te.Evidences {
				sel := append(append([]Evidence{}, prefix...), ev)
				next = append(next, sel)
				if len(next) >= ip.MaxSelections {
					break
				}
			}
			if len(next) >= ip.MaxSelections {
				break
			}
		}
		out = next
	}
	return out
}

// steiner connects the selection's concepts with a small tree: starting
// from the first terminal, it repeatedly merges the shortest path from the
// connected component to the nearest unconnected terminal (the classic
// 2-approximation on the metric closure, which the ATHENA-style systems
// use). ok is false when some terminal is disconnected.
func (ip *Interpreter) steiner(sel []Evidence) ([]semEdge, bool) {
	terminals := map[string]bool{}
	for _, ev := range sel {
		if ev.Concept != "" {
			terminals[ev.Concept] = true
		}
	}
	if len(terminals) == 0 {
		return nil, false
	}
	var terms []string
	for t := range terminals {
		terms = append(terms, t)
	}
	sort.Strings(terms)

	connected := map[string]bool{}
	var tree []semEdge
	edgeKey := func(e semEdge) string {
		a, b := e.A, e.B
		if a > b {
			a, b = b, a
		}
		return a + "|" + e.Relationship + "|" + b
	}
	inTree := map[string]bool{}

	// Relationship evidence pins its edge into the tree: when the user said
	// "caused by", the interpretation must use the cause edge, not whatever
	// shortest path the graph happens to offer.
	for _, ev := range sel {
		if ev.Kind != Metadata || ev.Relationship == "" {
			continue
		}
		for _, r := range ip.onto.Relationships() {
			if r.Name != ev.Relationship || r.Domain != ev.Concept {
				continue
			}
			e := semEdge{A: r.Domain, B: r.Range, Relationship: r.Name}
			if k := edgeKey(e); !inTree[k] {
				inTree[k] = true
				tree = append(tree, e)
			}
			connected[r.Domain] = true
			connected[r.Range] = true
		}
	}
	if len(connected) == 0 {
		connected[terms[0]] = true
	}
	for _, target := range terms {
		if connected[target] {
			continue
		}
		// Shortest path from any connected node to the target.
		var best []semEdge
		var nodes []string
		for n := range connected {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
		for _, n := range nodes {
			p := ip.graph.shortestPath(n, target)
			if p == nil {
				continue
			}
			if best == nil || len(p) < len(best) {
				best = p
			}
		}
		if best == nil {
			return nil, false
		}
		for _, e := range best {
			connected[e.A] = true
			connected[e.B] = true
			if k := edgeKey(e); !inTree[k] {
				inTree[k] = true
				tree = append(tree, e)
			}
		}
	}
	return tree, true
}
