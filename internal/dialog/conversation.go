package dialog

import (
	"fmt"
	"strconv"
	"strings"

	"medrelax/internal/core"
	"medrelax/internal/eks"
	"medrelax/internal/kb"
	"medrelax/internal/ontology"
	"medrelax/internal/stringutil"
)

// Response is one system turn.
type Response struct {
	// Text is the natural-language reply.
	Text string
	// Answers are the retrieved KB answers (e.g. drug names).
	Answers []string
	// Suggestions are relaxed alternatives offered when the query term was
	// unknown (scenario 1, Figure 7). The user can pick one by name or by
	// 1-based number in the next turn.
	Suggestions []string
	// Related are additional related concepts offered alongside a direct
	// answer (scenario 2, Figure 8).
	Related []string
	// Context is the recognized query context.
	Context ontology.Context
	// Understood is false when the system could not make sense of the turn.
	Understood bool
	// UsedRelaxation reports whether query relaxation produced this turn's
	// suggestions or related concepts.
	UsedRelaxation bool
}

// Conversation is a stateful dialogue over the medical KB. A nil Relaxer
// disables query relaxation, which is the "without QR" arm of the paper's
// user study.
type Conversation struct {
	store      *kb.Store
	onto       *ontology.Ontology
	classifier *IntentClassifier
	extractor  *MentionExtractor
	relaxer    *core.Relaxer
	ing        *core.Ingestion
	topK       int

	// feedback, when set, records which relaxed suggestions users accept
	// (picking one) or implicitly reject (rephrasing instead) and reranks
	// future relaxations accordingly — the progressive-improvement loop the
	// paper's conclusion proposes.
	feedback *core.FeedbackStore

	lastCtx   *ontology.Context
	lastQuery eks.ConceptID
	pending   []pendingSuggestion
}

type pendingSuggestion struct {
	name      string
	concept   eks.ConceptID
	instances []kb.InstanceID
}

// NewConversation assembles a dialogue. relaxer and ing may both be nil to
// run without query relaxation.
func NewConversation(store *kb.Store, onto *ontology.Ontology, classifier *IntentClassifier, extractor *MentionExtractor, relaxer *core.Relaxer, ing *core.Ingestion) *Conversation {
	return &Conversation{
		store:      store,
		onto:       onto,
		classifier: classifier,
		extractor:  extractor,
		relaxer:    relaxer,
		ing:        ing,
		topK:       7,
	}
}

// SetFeedback attaches a feedback store: suggestion picks become positive
// feedback and abandoning a suggestion list becomes mild negative feedback
// on its top entry, so repeated conversations progressively sharpen the
// relaxation ranking.
func (c *Conversation) SetFeedback(store *core.FeedbackStore) { c.feedback = store }

// Reset clears the dialogue state.
func (c *Conversation) Reset() {
	c.lastCtx = nil
	c.pending = nil
}

// carryOverPrefixes signal an elliptical follow-up whose context is
// inherited from the previous turn ("what about fever?" — Section 4,
// context management).
var carryOverPrefixes = []string{"what about", "how about", "and "}

// Ask processes one user turn.
func (c *Conversation) Ask(text string) Response {
	norm := stringutil.Normalize(text)

	// A pending suggestion pick?
	if len(c.pending) > 0 {
		if resp, ok := c.resolvePending(norm); ok {
			return resp
		}
		// The user moved on without picking: mild negative signal on the
		// top suggestion.
		if c.feedback != nil && c.lastQuery != 0 {
			c.feedback.Reject(c.lastQuery, c.pending[0].concept, c.lastCtx)
		}
		c.pending = nil
	}

	// Context: carry over for elliptical follow-ups, classify otherwise.
	ctx := c.classifyContext(norm)

	// Entity mention.
	mentions := c.extractor.Extract(norm)
	if len(mentions) == 0 {
		return Response{Text: "I don't understand. Could you rephrase?", Context: ctx}
	}
	m := mentions[0]
	// Reconcile the intent with the mention's semantic type: a Finding
	// mention can only fill a Finding-ranged context.
	if types := c.mentionConcepts(m); len(types) > 0 && !c.compatibleRange(ctx, types) {
		ctx, _ = c.classifier.ClassifyAmong(norm, func(cand ontology.Context) bool {
			return c.compatibleRange(cand, types)
		})
	}
	c.lastCtx = &ctx

	if m.Known() {
		return c.answerKnown(ctx, m)
	}
	return c.repairUnknown(ctx, m)
}

// mentionConcepts collects the ontology concepts of a mention's instances;
// a mention known only to the external knowledge source counts as a
// Finding, since the EKS vocabulary indexed for extraction is the
// clinical-finding terminology.
func (c *Conversation) mentionConcepts(m Mention) map[string]bool {
	out := map[string]bool{}
	for _, id := range m.Instances {
		if inst, ok := c.store.Instance(id); ok {
			out[inst.Concept] = true
		}
	}
	if len(out) == 0 && !m.Known() {
		out["Finding"] = true
	}
	return out
}

// compatibleRange reports whether any of the mention's concepts fits the
// context's range.
func (c *Conversation) compatibleRange(ctx ontology.Context, types map[string]bool) bool {
	for t := range types {
		if c.onto.IsSubConceptOf(t, ctx.Range) {
			return true
		}
	}
	return false
}

func (c *Conversation) classifyContext(norm string) ontology.Context {
	if c.lastCtx != nil {
		for _, p := range carryOverPrefixes {
			if strings.HasPrefix(norm, p) {
				return *c.lastCtx
			}
		}
	}
	ctx, _ := c.classifier.Classify(norm)
	return ctx
}

// resolvePending interprets the turn as a pick among pending suggestions,
// by 1-based index or by name.
func (c *Conversation) resolvePending(norm string) (Response, bool) {
	pick := -1
	if n, err := strconv.Atoi(strings.TrimSpace(norm)); err == nil && n >= 1 && n <= len(c.pending) {
		pick = n - 1
	} else {
		for i, s := range c.pending {
			if norm == s.name || strings.Contains(norm, s.name) {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		return Response{}, false
	}
	s := c.pending[pick]
	if c.feedback != nil && c.lastQuery != 0 {
		c.feedback.Accept(c.lastQuery, s.concept, c.lastCtx)
	}
	c.pending = nil
	ctx := ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	if c.lastCtx != nil {
		ctx = *c.lastCtx
	}
	answers := c.answersFor(ctx, s.instances)
	return Response{
		Text:           fmt.Sprintf("Here is what I know about %s:", s.name),
		Answers:        answers,
		Context:        ctx,
		Understood:     true,
		UsedRelaxation: true,
	}, true
}

// answerKnown handles a term the KB knows: retrieve answers, and — with
// relaxation enabled — expand with related concepts (scenario 2).
func (c *Conversation) answerKnown(ctx ontology.Context, m Mention) Response {
	resp := Response{
		Context:    ctx,
		Understood: true,
		Answers:    c.answersFor(ctx, m.Instances),
	}
	if len(resp.Answers) == 0 {
		resp.Text = fmt.Sprintf("I know %s but have no %s information about it.", m.Text, strings.ToLower(ctx.Domain))
	} else {
		resp.Text = fmt.Sprintf("Here is what I found for %s:", m.Text)
	}
	if c.relaxer != nil && c.ing != nil {
		if results, err := c.relaxer.RelaxTerm(m.Text, &ctx, 0); err == nil {
			// The expansion lists related conditions, not the query itself.
			self := map[string]bool{}
			for _, id := range c.ing.Graph.LookupName(m.Text) {
				if concept, ok := c.ing.Graph.Concept(id); ok {
					self[concept.Name] = true
				}
			}
			for _, r := range results {
				if len(resp.Related) == c.topK {
					break
				}
				if name := c.conceptName(r); name != "" && !self[name] {
					resp.Related = append(resp.Related, name)
				}
			}
			if len(resp.Related) > 0 {
				resp.UsedRelaxation = true
				resp.Text += fmt.Sprintf(" You may also be interested in %d related conditions.", len(resp.Related))
			}
		}
	}
	return resp
}

// repairUnknown handles a term absent from the KB: with relaxation, offer
// semantically related alternatives the KB does know (scenario 1); without
// it, admit defeat — the paper's "I don't understand".
func (c *Conversation) repairUnknown(ctx ontology.Context, m Mention) Response {
	resp := Response{Context: ctx}
	if c.relaxer == nil {
		resp.Text = fmt.Sprintf("I don't understand %q.", m.Text)
		return resp
	}
	var results []core.Result
	var err error
	q, mapped := eks.ConceptID(0), false
	if fr := c.feedbackRelaxer(); fr != nil {
		results, err = fr.RelaxTerm(m.Text, &ctx, 0)
	} else {
		results, err = c.relaxer.RelaxTerm(m.Text, &ctx, 0)
	}
	if err != nil || len(results) == 0 {
		resp.Text = fmt.Sprintf("I don't understand %q.", m.Text)
		return resp
	}
	if ids := c.ing.Graph.LookupName(m.Text); len(ids) > 0 {
		q, mapped = ids[0], true
	}
	if mapped {
		c.lastQuery = q
	} else {
		c.lastQuery = 0
	}
	c.pending = nil
	for _, r := range results {
		if len(c.pending) == c.topK {
			break
		}
		name := c.conceptName(r)
		if name == "" || len(r.Instances) == 0 {
			continue
		}
		c.pending = append(c.pending, pendingSuggestion{name: name, concept: r.Concept, instances: r.Instances})
		resp.Suggestions = append(resp.Suggestions, name)
	}
	if len(resp.Suggestions) == 0 {
		resp.Text = fmt.Sprintf("I don't understand %q.", m.Text)
		return resp
	}
	resp.Understood = true
	resp.UsedRelaxation = true
	resp.Text = fmt.Sprintf("I don't have information about %q, but I know these related conditions: %s. Which one would you like?",
		m.Text, strings.Join(resp.Suggestions, ", "))
	return resp
}

// answersFor retrieves answers for instances under a context, walking the
// relationship chain appropriate to the context family.
func (c *Conversation) answersFor(ctx ontology.Context, instances []kb.InstanceID) []string {
	var chain []string
	switch {
	case ctx.Relationship == "hasFinding" && c.onto.IsSubConceptOf(ctx.Domain, "Indication"):
		chain = []string{"treat", "hasFinding"}
	case ctx.Relationship == "hasFinding" && c.onto.IsSubConceptOf(ctx.Domain, "Risk"):
		chain = []string{"cause", "hasFinding"}
	case ctx.Domain == "Drug":
		// Forward query from a drug: list the findings of its
		// indications/risks.
		return c.drugForward(ctx, instances)
	default:
		chain = []string{ctx.Relationship}
	}
	seen := map[string]bool{}
	var out []string
	for _, inst := range instances {
		for _, ans := range c.store.PathQuery(chain, inst) {
			if a, ok := c.store.Instance(ans); ok && !seen[a.Name] {
				seen[a.Name] = true
				out = append(out, a.Name)
			}
		}
	}
	return out
}

func (c *Conversation) drugForward(ctx ontology.Context, instances []kb.InstanceID) []string {
	seen := map[string]bool{}
	var out []string
	for _, inst := range instances {
		for _, mid := range c.store.Objects(ctx.Relationship, inst) {
			for _, fid := range c.store.Objects("hasFinding", mid) {
				if f, ok := c.store.Instance(fid); ok && !seen[f.Name] {
					seen[f.Name] = true
					out = append(out, f.Name)
				}
			}
		}
	}
	return out
}

// feedbackRelaxer wraps the relaxer with the feedback store when one is
// attached.
func (c *Conversation) feedbackRelaxer() *core.FeedbackRelaxer {
	if c.feedback == nil || c.relaxer == nil {
		return nil
	}
	return core.NewFeedbackRelaxer(c.relaxer, c.feedback)
}

func (c *Conversation) conceptName(r core.Result) string {
	concept, ok := c.ing.Graph.Concept(r.Concept)
	if !ok {
		return ""
	}
	return concept.Name
}
