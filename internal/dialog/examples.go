// Package dialog implements the conversational system of the paper's
// Sections 4 and 6.1: an ontology-bootstrapped intent (context) classifier,
// entity mention extraction over the KB lexicon, and a stateful dialogue
// manager that integrates query relaxation for the paper's two scenarios —
// repairing a conversation when a query term is unknown (Figure 7) and
// expanding answers beyond the exact match (Figure 8).
//
// It stands in for the IBM Watson Assistant integration the paper built:
// the contract is identical — the NLI layer turns a natural language
// utterance into a [query term, context] pair and hands it to the
// relaxation method.
package dialog

import (
	"fmt"
	"math/rand"
	"sort"

	"medrelax/internal/kb"
	"medrelax/internal/ontology"
)

// Example is one labeled training utterance for the intent classifier.
type Example struct {
	Text    string
	Context ontology.Context
}

// contextTemplates phrase questions for the finding-centric contexts of the
// MED ontology. The %s slot takes an instance name.
var contextTemplates = map[string][]string{
	"Indication-hasFinding-Finding": {
		"what drugs treat %s",
		"which drugs are used to treat %s",
		"what is the treatment for %s",
		"how do i treat %s",
		"what medication helps with %s",
		"give me drugs for %s",
	},
	"Risk-hasFinding-Finding": {
		"what drugs cause %s",
		"which drugs have the risk of causing %s",
		"what medication can lead to %s",
		"can any drug cause %s",
		"which drugs list %s as a side effect",
	},
	"Drug-treat-Indication": {
		"what does %s treat",
		"what is %s used for",
		"what are the indications of %s",
	},
	"Drug-cause-Risk": {
		"what are the risks of using %s",
		"what side effects does %s have",
		"what are the adverse effects of %s",
	},
}

// genericTemplates cover every other context so the classifier sees the
// whole context space, as Algorithm 1's context generation intends.
var genericTemplates = []string{
	"what is the %[1]s of %[2]s",
	"show the %[1]s for %[2]s",
	"tell me about the %[1]s of %[2]s",
}

// GenerateTrainingExamples bootstraps the conversation space from the
// domain ontology (Section 4): it enumerates every context, phrases it with
// templates, and enriches the workload by substituting instances of the
// context's relevant concept — the paper's "replace identified instances
// with other instances of the same concept".
func GenerateTrainingExamples(o *ontology.Ontology, store *kb.Store, seed int64, perContext int) []Example {
	if perContext <= 0 {
		perContext = 12
	}
	rng := rand.New(rand.NewSource(seed))
	var out []Example
	for _, ctx := range o.Contexts() {
		templates := contextTemplates[ctx.String()]
		slotConcept := ctx.Range
		if len(templates) == 0 {
			templates = nil
			for _, g := range genericTemplates {
				templates = append(templates, fmt.Sprintf(g, ctx.Relationship, "%s"))
			}
			slotConcept = ctx.Domain
		}
		slots := instanceNames(o, store, slotConcept)
		if len(slots) == 0 {
			slots = []string{slotConcept}
		}
		for i := 0; i < perContext; i++ {
			tmpl := templates[i%len(templates)]
			slot := slots[rng.Intn(len(slots))]
			out = append(out, Example{Text: fmt.Sprintf(tmpl, slot), Context: ctx})
		}
	}
	return out
}

// instanceNames returns names of instances typed by the concept or any of
// its subconcepts, sorted for determinism.
func instanceNames(o *ontology.Ontology, store *kb.Store, concept string) []string {
	concepts := append([]string{concept}, o.Descendants(concept)...)
	var names []string
	for _, c := range concepts {
		for _, id := range store.InstancesOf(c) {
			if inst, ok := store.Instance(id); ok {
				names = append(names, inst.Name)
			}
		}
	}
	sort.Strings(names)
	return names
}
