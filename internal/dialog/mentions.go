package dialog

import (
	"sort"
	"strings"

	"medrelax/internal/kb"
	"medrelax/internal/stringutil"
)

// Mention is an entity mention extracted from an utterance.
type Mention struct {
	// Text is the normalized surface form as matched.
	Text string
	// Instances are the KB instances whose name matches exactly, empty when
	// the mention is unknown to the KB.
	Instances []kb.InstanceID
}

// Known reports whether the mention resolved to KB instances.
func (m Mention) Known() bool { return len(m.Instances) > 0 }

// MentionExtractor finds entity mentions by greedy longest-match over a
// lexicon assembled from the KB instance names plus any extra vocabulary
// (typically the external knowledge source's concept names, so that terms
// absent from the KB are still recognized as mentions and can be relaxed —
// the "pyelectasia" case of Figure 7).
type MentionExtractor struct {
	store    *kb.Store
	phrases  map[string]bool
	prefixes map[string]bool
	maxLen   int
	// stop contains tokens that never begin a mention, keeping template
	// words like "drugs" from being swallowed.
	stop map[string]bool
}

// NewMentionExtractor indexes the store's lexicon together with the extra
// vocabulary terms.
func NewMentionExtractor(store *kb.Store, extraVocabulary []string) *MentionExtractor {
	e := &MentionExtractor{
		store:    store,
		phrases:  map[string]bool{},
		prefixes: map[string]bool{},
		stop: map[string]bool{
			"drug": true, "drugs": true, "medication": true, "treatment": true,
			"what": true, "which": true, "the": true, "of": true, "for": true,
			"risk": true, "risks": true, "side": true, "effect": true, "effects": true,
		},
	}
	add := func(name string) {
		toks := stringutil.Tokenize(name)
		if len(toks) == 0 || e.stop[toks[0]] {
			return
		}
		e.phrases[strings.Join(toks, " ")] = true
		if len(toks) > e.maxLen {
			e.maxLen = len(toks)
		}
		for i := 1; i < len(toks); i++ {
			e.prefixes[strings.Join(toks[:i], " ")] = true
		}
	}
	for _, key := range store.LexiconKeys() {
		add(key)
	}
	for _, v := range extraVocabulary {
		add(v)
	}
	return e
}

// Extract returns the mentions of the utterance in reading order. When the
// lexicon yields nothing, a pattern fallback takes the trailing phrase
// after a question frame ("what drugs treat X" → X) as an unknown mention,
// the way an NLU entity extractor surfaces novel entity spans — this is
// what lets truly unknown terminology reach the relaxation method at all.
func (e *MentionExtractor) Extract(text string) []Mention {
	toks := stringutil.Tokenize(text)
	var out []Mention
	for i := 0; i < len(toks); {
		match, n := e.longestMatchAt(toks, i)
		if n == 0 {
			i++
			continue
		}
		m := Mention{Text: match}
		ids := e.store.LookupName(match)
		m.Instances = append(m.Instances, ids...)
		sort.Slice(m.Instances, func(a, b int) bool { return m.Instances[a] < m.Instances[b] })
		out = append(out, m)
		i += n
	}
	if len(out) == 0 {
		if tail, ok := e.questionTail(toks); ok {
			out = append(out, Mention{Text: tail})
		}
	}
	return out
}

// questionFrames are verbs that introduce the entity span of a question.
var questionFrames = map[string]bool{
	"treat": true, "treats": true, "cause": true, "causes": true,
	"causing": true, "about": true, "with": true, "against": true, "cure": true,
}

// questionTail returns the phrase after the last question-frame token,
// stripped of stopwords, or ok=false when no frame is present or the tail
// is empty.
func (e *MentionExtractor) questionTail(toks []string) (string, bool) {
	last := -1
	for i, tok := range toks {
		if questionFrames[tok] {
			last = i
		}
	}
	if last < 0 || last+1 >= len(toks) {
		return "", false
	}
	var tail []string
	for _, tok := range toks[last+1:] {
		if e.stop[tok] {
			continue
		}
		tail = append(tail, tok)
	}
	if len(tail) == 0 {
		return "", false
	}
	return strings.Join(tail, " "), true
}

func (e *MentionExtractor) longestMatchAt(toks []string, i int) (string, int) {
	if e.stop[toks[i]] {
		return "", 0
	}
	var b strings.Builder
	best, bestLen := "", 0
	limit := i + e.maxLen
	if limit > len(toks) {
		limit = len(toks)
	}
	for j := i; j < limit; j++ {
		if j > i {
			b.WriteByte(' ')
		}
		b.WriteString(toks[j])
		cur := b.String()
		if e.phrases[cur] {
			best, bestLen = cur, j-i+1
		}
		if !e.prefixes[cur] && !e.phrases[cur] {
			break
		}
	}
	return best, bestLen
}
