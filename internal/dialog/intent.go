package dialog

import (
	"fmt"
	"math"
	"sort"

	"medrelax/internal/ontology"
	"medrelax/internal/stringutil"
)

// IntentClassifier recognizes the query context of an utterance. It is a
// multinomial naive Bayes model over bag-of-words features with Laplace
// smoothing — the same learning-based contract as the commercial NLI the
// paper integrates with, trained from the ontology-bootstrapped examples.
type IntentClassifier struct {
	contexts []ontology.Context
	// logPrior[c] and logLik[c][w] in log space.
	logPrior []float64
	wordLik  []map[string]float64
	// defaultLik[c] is the smoothed likelihood of an unseen word.
	defaultLik []float64
	vocab      map[string]bool
}

// TrainIntentClassifier fits the model. It returns an error when examples
// are empty.
func TrainIntentClassifier(examples []Example) (*IntentClassifier, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("dialog: no training examples")
	}
	// Index contexts.
	ctxIdx := map[string]int{}
	var contexts []ontology.Context
	for _, ex := range examples {
		key := ex.Context.String()
		if _, ok := ctxIdx[key]; !ok {
			ctxIdx[key] = len(contexts)
			contexts = append(contexts, ex.Context)
		}
	}
	counts := make([]map[string]int, len(contexts))
	totals := make([]int, len(contexts))
	docs := make([]int, len(contexts))
	vocab := map[string]bool{}
	for i := range counts {
		counts[i] = map[string]int{}
	}
	for _, ex := range examples {
		ci := ctxIdx[ex.Context.String()]
		docs[ci]++
		for _, tok := range stringutil.Tokenize(ex.Text) {
			counts[ci][tok]++
			totals[ci]++
			vocab[tok] = true
		}
	}
	v := float64(len(vocab))
	c := &IntentClassifier{
		contexts:   contexts,
		logPrior:   make([]float64, len(contexts)),
		wordLik:    make([]map[string]float64, len(contexts)),
		defaultLik: make([]float64, len(contexts)),
		vocab:      vocab,
	}
	n := float64(len(examples))
	for i := range contexts {
		c.logPrior[i] = math.Log(float64(docs[i]) / n)
		c.wordLik[i] = make(map[string]float64, len(counts[i]))
		denom := float64(totals[i]) + v
		for w, cnt := range counts[i] {
			c.wordLik[i][w] = math.Log((float64(cnt) + 1) / denom)
		}
		c.defaultLik[i] = math.Log(1 / denom)
	}
	return c, nil
}

// Contexts returns the label set, in first-seen order.
func (c *IntentClassifier) Contexts() []ontology.Context {
	out := make([]ontology.Context, len(c.contexts))
	copy(out, c.contexts)
	return out
}

// ClassifyAmong is Classify restricted to contexts accepted by the filter,
// used to reconcile the intent with the semantic type of the extracted
// entity (a Finding mention can only fill a Finding-ranged context). It
// falls back to the unrestricted classification when the filter rejects
// every context.
func (c *IntentClassifier) ClassifyAmong(text string, filter func(ontology.Context) bool) (ontology.Context, float64) {
	var best *ontology.Context
	bestScore := 0.0
	for _, ctx := range c.contexts {
		if !filter(ctx) {
			continue
		}
		score := c.score(text, ctx)
		if best == nil || score > bestScore || (score == bestScore && ctx.String() < best.String()) {
			cc := ctx
			best = &cc
			bestScore = score
		}
	}
	if best == nil {
		return c.Classify(text)
	}
	return *best, 1
}

// score computes the unnormalized log posterior of one context.
func (c *IntentClassifier) score(text string, target ontology.Context) float64 {
	for i, ctx := range c.contexts {
		if ctx == target {
			s := c.logPrior[i]
			for _, tok := range stringutil.Tokenize(text) {
				if !c.vocab[tok] {
					continue
				}
				if lik, ok := c.wordLik[i][tok]; ok {
					s += lik
				} else {
					s += c.defaultLik[i]
				}
			}
			return s
		}
	}
	return 0
}

// Classify returns the most probable context for the utterance, with its
// posterior probability. Ties break toward the lexicographically smaller
// context string for determinism.
func (c *IntentClassifier) Classify(text string) (ontology.Context, float64) {
	tokens := stringutil.Tokenize(text)
	scores := make([]float64, len(c.contexts))
	for i := range c.contexts {
		s := c.logPrior[i]
		for _, tok := range tokens {
			if !c.vocab[tok] {
				continue // unseen everywhere: uninformative
			}
			if lik, ok := c.wordLik[i][tok]; ok {
				s += lik
			} else {
				s += c.defaultLik[i]
			}
		}
		scores[i] = s
	}
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] > scores[order[b]]
		}
		return c.contexts[order[a]].String() < c.contexts[order[b]].String()
	})
	best := order[0]
	// Softmax over log scores for a calibrated-ish confidence.
	maxS := scores[best]
	var z float64
	for _, s := range scores {
		z += math.Exp(s - maxS)
	}
	return c.contexts[best], 1 / z
}
