package dialog

import (
	"strings"
	"testing"

	"medrelax/internal/core"
	"medrelax/internal/corpus"
	"medrelax/internal/eks"
	"medrelax/internal/kb"
	"medrelax/internal/ontology"
)

// The test world mirrors the paper's Figures 7 and 8: "pyelectasia" exists
// in the external knowledge source but not in the KB; "kidney disease" is a
// nearby flagged concept with drug information; "fever" has both direct
// answers and related conditions.
func testWorld(t *testing.T) (*ontology.Ontology, *kb.Store, *core.Ingestion, *core.Relaxer) {
	t.Helper()
	o := ontology.New()
	for _, c := range []ontology.Concept{
		{Name: "Drug"}, {Name: "Indication"}, {Name: "Risk"}, {Name: "Finding"},
	} {
		if err := o.AddConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []ontology.Relationship{
		{Name: "treat", Domain: "Drug", Range: "Indication"},
		{Name: "cause", Domain: "Drug", Range: "Risk"},
		{Name: "hasFinding", Domain: "Indication", Range: "Finding"},
		{Name: "hasFinding", Domain: "Risk", Range: "Finding"},
	} {
		if err := o.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}

	g := eks.New()
	concepts := []eks.Concept{
		{ID: 1, Name: "clinical finding"},
		{ID: 2, Name: "kidney disease", Synonyms: []string{"nephropathy"}},
		{ID: 3, Name: "pyelectasia"},
		{ID: 4, Name: "chronic kidney disease"},
		{ID: 5, Name: "fever", Synonyms: []string{"pyrexia"}},
		{ID: 6, Name: "psychogenic fever"},
		{ID: 7, Name: "headache"},
		{ID: 8, Name: "bronchitis"},
	}
	for _, c := range concepts {
		if err := g.AddConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]eks.ConceptID{{2, 1}, {3, 2}, {4, 2}, {5, 1}, {6, 5}, {7, 1}, {8, 1}} {
		if err := g.AddSubsumption(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetRoot(1); err != nil {
		t.Fatal(err)
	}

	store := kb.NewStore(o)
	instances := []kb.Instance{
		{ID: 1, Concept: "Drug", Name: "amoxicillin"},
		{ID: 2, Concept: "Drug", Name: "ibuprofen"},
		{ID: 3, Concept: "Drug", Name: "lisinopril"},
		{ID: 10, Concept: "Indication", Name: "ind-amoxi-bronchitis"},
		{ID: 11, Concept: "Indication", Name: "ind-ibu-fever"},
		{ID: 12, Concept: "Indication", Name: "ind-lis-kidney"},
		{ID: 13, Concept: "Indication", Name: "ind-ibu-headache"},
		{ID: 14, Concept: "Risk", Name: "risk-ibu-kidney"},
		{ID: 20, Concept: "Finding", Name: "kidney disease"},
		{ID: 21, Concept: "Finding", Name: "fever"},
		{ID: 22, Concept: "Finding", Name: "headache"},
		{ID: 23, Concept: "Finding", Name: "bronchitis"},
	}
	for _, inst := range instances {
		if err := store.AddInstance(inst); err != nil {
			t.Fatal(err)
		}
	}
	assertions := []kb.Assertion{
		{Subject: 1, Relationship: "treat", Object: 10},
		{Subject: 2, Relationship: "treat", Object: 11},
		{Subject: 3, Relationship: "treat", Object: 12},
		{Subject: 2, Relationship: "treat", Object: 13},
		{Subject: 2, Relationship: "cause", Object: 14},
		{Subject: 10, Relationship: "hasFinding", Object: 23},
		{Subject: 11, Relationship: "hasFinding", Object: 21},
		{Subject: 12, Relationship: "hasFinding", Object: 20},
		{Subject: 13, Relationship: "hasFinding", Object: 22},
		{Subject: 14, Relationship: "hasFinding", Object: 20},
	}
	for _, a := range assertions {
		if err := store.AddAssertion(a); err != nil {
			t.Fatal(err)
		}
	}

	corp := corpus.New([]corpus.Document{{
		ID: "d1",
		Sections: []corpus.Section{
			{Label: "Indication-hasFinding-Finding",
				Text: "treats kidney disease and fever and headache and bronchitis often"},
			{Label: "Risk-hasFinding-Finding", Text: "may cause kidney disease"},
		},
	}})

	ing, err := core.Ingest(o, store, g, corp, exactMapper{g}, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sim := core.NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	relaxer := core.NewRelaxer(ing, sim, exactMapper{g}, core.RelaxOptions{Radius: 3, DynamicRadius: true})
	return o, store, ing, relaxer
}

type exactMapper struct{ g *eks.Graph }

func (m exactMapper) Name() string { return "EXACT" }
func (m exactMapper) Map(name string) (eks.ConceptID, bool) {
	ids := m.g.LookupName(name)
	if len(ids) == 0 {
		return 0, false
	}
	return ids[0], true
}

func newConversation(t *testing.T, withQR bool) *Conversation {
	t.Helper()
	o, store, ing, relaxer := testWorld(t)
	examples := GenerateTrainingExamples(o, store, 1, 12)
	classifier, err := TrainIntentClassifier(examples)
	if err != nil {
		t.Fatal(err)
	}
	extractor := NewMentionExtractor(store, ing.Graph.NameKeys())
	if !withQR {
		return NewConversation(store, o, classifier, extractor, nil, nil)
	}
	return NewConversation(store, o, classifier, extractor, relaxer, ing)
}

func TestGenerateTrainingExamples(t *testing.T) {
	o, store, _, _ := testWorld(t)
	examples := GenerateTrainingExamples(o, store, 1, 10)
	if len(examples) != 4*10 {
		t.Fatalf("examples = %d, want 40", len(examples))
	}
	byCtx := map[string]int{}
	for _, ex := range examples {
		byCtx[ex.Context.String()]++
		if ex.Text == "" {
			t.Fatal("empty example text")
		}
	}
	if len(byCtx) != 4 {
		t.Errorf("contexts covered = %v", byCtx)
	}
	// Enrichment: different finding instances appear in the workload.
	distinct := map[string]bool{}
	for _, ex := range examples {
		if ex.Context.String() == "Indication-hasFinding-Finding" {
			distinct[ex.Text] = true
		}
	}
	if len(distinct) < 4 {
		t.Errorf("workload not enriched: %v", distinct)
	}
}

func TestIntentClassifier(t *testing.T) {
	o, store, _, _ := testWorld(t)
	examples := GenerateTrainingExamples(o, store, 1, 12)
	c, err := TrainIntentClassifier(examples)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Contexts()) != 4 {
		t.Fatalf("contexts = %v", c.Contexts())
	}
	cases := []struct {
		text string
		want string
	}{
		{"what drugs treat kidney disease", "Indication-hasFinding-Finding"},
		{"which drugs are used to treat fever", "Indication-hasFinding-Finding"},
		{"what drugs cause kidney disease", "Risk-hasFinding-Finding"},
		{"which drugs list headache as a side effect", "Risk-hasFinding-Finding"},
	}
	for _, cse := range cases {
		got, conf := c.Classify(cse.text)
		if got.String() != cse.want {
			t.Errorf("Classify(%q) = %s (conf %.2f), want %s", cse.text, got, conf, cse.want)
		}
		if conf <= 0 || conf > 1 {
			t.Errorf("confidence %v out of range", conf)
		}
	}
}

func TestIntentClassifierEmpty(t *testing.T) {
	if _, err := TrainIntentClassifier(nil); err == nil {
		t.Error("empty training set must fail")
	}
}

func TestMentionExtractor(t *testing.T) {
	_, store, ing, _ := testWorld(t)
	e := NewMentionExtractor(store, ing.Graph.NameKeys())
	ms := e.Extract("what drugs treat kidney disease")
	if len(ms) != 1 || ms[0].Text != "kidney disease" || !ms[0].Known() {
		t.Fatalf("mentions = %+v", ms)
	}
	// EKS-only vocabulary is recognized but unknown to the KB.
	ms = e.Extract("what drugs treat pyelectasia")
	if len(ms) != 1 || ms[0].Text != "pyelectasia" || ms[0].Known() {
		t.Fatalf("mentions = %+v", ms)
	}
	// No mention at all.
	if got := e.Extract("hello there friend"); len(got) != 0 {
		t.Fatalf("mentions = %+v", got)
	}
	// Longest match wins over a prefix word.
	ms = e.Extract("tell me about chronic kidney disease please")
	if len(ms) != 1 || ms[0].Text != "chronic kidney disease" {
		t.Fatalf("mentions = %+v", ms)
	}
}

func TestScenario1RepairUnknownTerm(t *testing.T) {
	c := newConversation(t, true)
	resp := c.Ask("what drugs treat pyelectasia")
	if !resp.Understood || !resp.UsedRelaxation {
		t.Fatalf("repair failed: %+v", resp)
	}
	if len(resp.Suggestions) == 0 {
		t.Fatal("no suggestions offered")
	}
	found := false
	for _, s := range resp.Suggestions {
		if s == "kidney disease" {
			found = true
		}
	}
	if !found {
		t.Fatalf("kidney disease not among suggestions %v", resp.Suggestions)
	}
	// Pick by number.
	follow := c.Ask("1")
	if !follow.Understood || len(follow.Answers) == 0 {
		t.Fatalf("follow-up gave no answers: %+v", follow)
	}
	// The drug treating kidney disease is lisinopril.
	hasDrug := false
	for _, a := range follow.Answers {
		if a == "lisinopril" {
			hasDrug = true
		}
	}
	if !hasDrug {
		t.Errorf("answers = %v, want lisinopril", follow.Answers)
	}
}

func TestScenario1PickByName(t *testing.T) {
	c := newConversation(t, true)
	resp := c.Ask("what drugs treat pyelectasia")
	if len(resp.Suggestions) == 0 {
		t.Fatal("no suggestions")
	}
	follow := c.Ask("kidney disease")
	if !follow.Understood || len(follow.Answers) == 0 {
		t.Fatalf("pick by name failed: %+v", follow)
	}
}

func TestScenario2AnswerExpansion(t *testing.T) {
	c := newConversation(t, true)
	resp := c.Ask("what drugs treat fever")
	if !resp.Understood {
		t.Fatalf("not understood: %+v", resp)
	}
	if len(resp.Answers) == 0 || resp.Answers[0] != "ibuprofen" {
		t.Errorf("answers = %v, want ibuprofen", resp.Answers)
	}
	if !resp.UsedRelaxation || len(resp.Related) == 0 {
		t.Errorf("no expansion offered: %+v", resp)
	}
	// fever itself must not be among the related concepts.
	for _, r := range resp.Related {
		if r == "fever" {
			t.Error("query concept leaked into related list")
		}
	}
}

func TestWithoutQRFailsOnUnknown(t *testing.T) {
	c := newConversation(t, false)
	resp := c.Ask("what drugs treat pyelectasia")
	if resp.Understood || len(resp.Suggestions) != 0 {
		t.Fatalf("no-QR arm must fail on unknown terms: %+v", resp)
	}
	if !strings.Contains(resp.Text, "don't understand") {
		t.Errorf("text = %q", resp.Text)
	}
	// Known terms still work without relaxation, but without expansion.
	resp = c.Ask("what drugs treat fever")
	if !resp.Understood || len(resp.Answers) == 0 {
		t.Fatalf("known term must still answer: %+v", resp)
	}
	if resp.UsedRelaxation || len(resp.Related) != 0 {
		t.Error("no-QR arm must not expand")
	}
}

func TestContextCarryOver(t *testing.T) {
	c := newConversation(t, true)
	first := c.Ask("which drugs have the risk of causing kidney disease")
	if first.Context.String() != "Risk-hasFinding-Finding" {
		t.Fatalf("first context = %s", first.Context)
	}
	if len(first.Answers) == 0 || first.Answers[0] != "ibuprofen" {
		t.Errorf("first answers = %v", first.Answers)
	}
	// Elliptical follow-up inherits the Risk context.
	follow := c.Ask("what about fever")
	if follow.Context.String() != "Risk-hasFinding-Finding" {
		t.Errorf("carried context = %s, want Risk-hasFinding-Finding", follow.Context)
	}
}

func TestReset(t *testing.T) {
	c := newConversation(t, true)
	c.Ask("what drugs treat pyelectasia")
	c.Reset()
	// After reset the pick must not resolve.
	resp := c.Ask("1")
	if resp.Understood {
		t.Error("reset must clear pending suggestions")
	}
}

func TestNoMention(t *testing.T) {
	c := newConversation(t, true)
	resp := c.Ask("tell me something nice")
	if resp.Understood {
		t.Errorf("mention-free input must not be understood: %+v", resp)
	}
}

func TestFeedbackLearningAcrossConversations(t *testing.T) {
	o, store, ing, relaxer := testWorld(t)
	examples := GenerateTrainingExamples(o, store, 1, 12)
	classifier, err := TrainIntentClassifier(examples)
	if err != nil {
		t.Fatal(err)
	}
	extractor := NewMentionExtractor(store, ing.Graph.NameKeys())
	feedback := core.NewFeedbackStore()

	conv := NewConversation(store, o, classifier, extractor, relaxer, ing)
	conv.SetFeedback(feedback)

	// Session 1: ask about pyelectasia, pick "kidney disease".
	resp := conv.Ask("what drugs treat pyelectasia")
	if len(resp.Suggestions) == 0 {
		t.Fatal("no suggestions")
	}
	follow := conv.Ask("kidney disease")
	if !follow.Understood {
		t.Fatal("pick failed")
	}
	if feedback.Len() == 0 {
		t.Fatal("pick did not record feedback")
	}
	// The accepted (query, suggestion) pair carries positive net feedback,
	// keyed by the context's relationship.
	q := ing.Graph.LookupName("pyelectasia")[0]
	kd := ing.Graph.LookupName("kidney disease")[0]
	ctx := follow.Context
	if feedback.Net(q, kd, &ctx) <= 0 {
		t.Errorf("net feedback = %d, want positive", feedback.Net(q, kd, &ctx))
	}
}

func TestFeedbackAbandonmentRecordsReject(t *testing.T) {
	o, store, ing, relaxer := testWorld(t)
	examples := GenerateTrainingExamples(o, store, 1, 12)
	classifier, err := TrainIntentClassifier(examples)
	if err != nil {
		t.Fatal(err)
	}
	extractor := NewMentionExtractor(store, ing.Graph.NameKeys())
	feedback := core.NewFeedbackStore()
	conv := NewConversation(store, o, classifier, extractor, relaxer, ing)
	conv.SetFeedback(feedback)

	resp := conv.Ask("what drugs treat pyelectasia")
	if len(resp.Suggestions) == 0 {
		t.Fatal("no suggestions")
	}
	// Ask something else instead of picking: the top suggestion takes a
	// mild negative signal.
	conv.Ask("what drugs treat fever")
	if feedback.Len() == 0 {
		t.Error("abandonment did not record feedback")
	}
}

func TestDrugForwardQuery(t *testing.T) {
	c := newConversation(t, true)
	// Asking about a drug lists the findings of its indications.
	resp := c.Ask("what does ibuprofen treat")
	if !resp.Understood {
		t.Fatalf("drug question not understood: %+v", resp)
	}
	found := map[string]bool{}
	for _, a := range resp.Answers {
		found[a] = true
	}
	if !found["fever"] || !found["headache"] {
		t.Errorf("answers = %v, want fever and headache", resp.Answers)
	}
	// Risk direction: what side effects does ibuprofen have.
	resp = c.Ask("what are the risks of using ibuprofen")
	if !resp.Understood || len(resp.Answers) == 0 {
		t.Fatalf("risk question failed: %+v", resp)
	}
	if resp.Answers[0] != "kidney disease" {
		t.Errorf("risk answers = %v", resp.Answers)
	}
}

func TestClassifyAmong(t *testing.T) {
	o, store, _, _ := testWorld(t)
	examples := GenerateTrainingExamples(o, store, 1, 12)
	c, err := TrainIntentClassifier(examples)
	if err != nil {
		t.Fatal(err)
	}
	// Restricted to Finding-ranged contexts, a treat question lands on the
	// indication context even though drug-focused contexts would fit the
	// words too.
	ctx, conf := c.ClassifyAmong("what drugs treat kidney disease", func(cand ontology.Context) bool {
		return cand.Range == "Finding"
	})
	if ctx.Range != "Finding" {
		t.Errorf("ClassifyAmong escaped the filter: %s", ctx)
	}
	if conf <= 0 {
		t.Errorf("confidence = %v", conf)
	}
	// A filter rejecting everything falls back to unrestricted
	// classification.
	ctx, _ = c.ClassifyAmong("what drugs treat fever", func(ontology.Context) bool { return false })
	if ctx.String() == "" {
		t.Error("fallback classification empty")
	}
}

func TestQuestionTailFallback(t *testing.T) {
	_, store, ing, _ := testWorld(t)
	e := NewMentionExtractor(store, ing.Graph.NameKeys())
	// A completely novel term after a question frame becomes a mention.
	ms := e.Extract("what drugs treat glomerulomegaly")
	if len(ms) != 1 || ms[0].Text != "glomerulomegaly" || ms[0].Known() {
		t.Fatalf("mentions = %+v", ms)
	}
	// Stopwords are stripped from the tail.
	ms = e.Extract("what drugs can cure the glomerulomegaly")
	if len(ms) != 1 || ms[0].Text != "glomerulomegaly" {
		t.Fatalf("mentions = %+v", ms)
	}
	// A frame with nothing after it yields no mention.
	if got := e.Extract("what does it treat"); len(got) != 0 {
		t.Fatalf("mentions = %+v", got)
	}
	// No frame at all yields no mention.
	if got := e.Extract("blorp fizzle glomerulomegaly"); len(got) != 0 {
		t.Fatalf("mentions = %+v", got)
	}
}
