// Package engine is the one immutable serving layer between the offline
// phase and everything that answers queries. Its central type is Snapshot:
// the frozen output of ingestion (customized EKS dense graph, mappings,
// frequencies, shortcuts, relaxer, term index) behind a read-only,
// concurrency-safe API. Every consumer — the medrelax facade, the HTTP
// server, the production serving stack, the chaos harness, the CLIs —
// constructs or loads exactly this type, so there is a single assembly of
// "EKS + ingest artifacts + relaxer" in the whole program, and hot reload
// is an atomic swap of whole Snapshots (see Registry).
package engine

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"time"

	"medrelax/internal/core"
	"medrelax/internal/dialog"
	"medrelax/internal/match"
	"medrelax/internal/ontology"
	"medrelax/internal/persist"
	"medrelax/internal/trace"
)

// RelaxResult is one JSON-ready relaxed answer, with concepts and
// instances resolved to surface names. The HTTP layer re-exports it as
// server.RelaxResult.
//
// Sources and Explain are attribution extensions: Sources lists the named
// external knowledge sources that contributed the result (multi-source
// snapshots always, single-source snapshots only under explain mode), and
// Explain carries the relaxation path when the request asked for it. Both
// are omitted when unset, so classic single-source explain=false responses
// serialize byte-identically to earlier versions.
type RelaxResult struct {
	Concept   string   `json:"concept"`
	Score     float64  `json:"score"`
	Hops      int      `json:"hops"`
	Instances []string `json:"instances"`
	Sources   []string `json:"sources,omitempty"`
	Explain   *Explain `json:"explain,omitempty"`
}

// ExplainEdge is one traversed edge of an explained relaxation path:
// concept names, the hop direction relative to the query endpoint, and the
// original (pre-customization) semantic distance the edge carries — 1 for a
// native subsumption, the attached distance for a shortcut.
type ExplainEdge struct {
	From      string `json:"from"`
	To        string `json:"to"`
	Direction string `json:"direction"` // "generalization" or "specialization"
	Dist      int    `json:"dist"`
}

// Explain is the relaxation-path explanation attached to a result under
// explain mode: the canonical up-then-down path from the query concept
// through the deterministic least-common-subsumer representative to the
// candidate, its Eq. 4 path weight (bit-identical to the weight the ranked
// score used), and the name of the source EKS the path runs in.
type Explain struct {
	Source          string        `json:"source"`
	Query           string        `json:"query"`
	Subsumer        string        `json:"subsumer"`
	Subsumers       []string      `json:"subsumers,omitempty"`
	Generalizations int           `json:"generalizations"`
	Specializations int           `json:"specializations"`
	PathWeight      float64       `json:"pathWeight"`
	Edges           []ExplainEdge `json:"edges"`
}

// BatchItem is one query of a batch relaxation request.
type BatchItem struct {
	Term    string `json:"term"`
	Context string `json:"context"`
	K       int    `json:"k"`
}

// BatchOutcome is one item's answer: Results on success, Err otherwise.
// Outcomes are positional — outcome i always answers item i. Path reports
// which compute path answered (meaningful only when Err is nil).
type BatchOutcome struct {
	Results []RelaxResult
	Path    core.ServePath
	Err     error
}

// Config tunes Snapshot assembly. The zero value serves a loaded bundle:
// combined exact/edit/lookup term mapping, default relaxation radius, no
// conversations.
type Config struct {
	// Relax configures the online phase; zero values pick the defaults of
	// core.RelaxOptions plus DynamicRadius (the serving shape).
	Relax core.RelaxOptions
	// Mapper resolves query terms; nil builds the bundle mapper (exact
	// match, then edit distance, then the lookup service) over the graph.
	Mapper match.Mapper
	// Conversation opens a relaxation-backed dialogue; nil disables /chat.
	Conversation func() (*dialog.Conversation, error)
	// ExtraStats is merged over the base Stats map (world metadata only a
	// richer builder knows, e.g. corpus and embedding sizes).
	ExtraStats func() map[string]any
	// Source names where the snapshot came from (bundle path, or "" for an
	// in-process build); reported in Stats.
	Source string
}

// Snapshot is a frozen, servable relaxation world. All fields are set at
// construction and never mutated, so every method is safe for unbounded
// concurrent use; replacing a world means building a new Snapshot and
// swapping the pointer (Registry, internal/serving).
type Snapshot struct {
	ing     *core.Ingestion
	relaxer *core.Relaxer
	cfg     Config
	// terms is the precomputed term index: flagged-concept names in
	// deterministic (ID) order, the realistic query mix GET /terms serves.
	terms []string
	// arms are the mounted sources in mount order; arms[0] is always the
	// primary (the ingestion itself). A single-source snapshot has exactly
	// one arm and serves through the classic relaxer path untouched; with
	// secondaries present the relax entry points fuse per-arm answers
	// (see federate.go).
	arms []sourceArm
	// matActive / idxActive record whether the ingestion's offline
	// accelerations were attached to the relaxer (they are refused when
	// their build options cannot reproduce the serving configuration).
	matActive, idxActive bool
}

// New assembles a Snapshot over an ingestion: freezes the dense graph
// index, builds the similarity evaluator and relaxer, and precomputes the
// term index. The ingestion must not be mutated afterwards — the Snapshot
// owns it.
func New(ing *core.Ingestion, cfg Config) *Snapshot {
	if cfg.Relax.Radius == 0 {
		// A bundle that carries a materialized store records the exact
		// serving shape it was built for; adopting it keeps a CLI-built
		// accelerated bundle servable after a plain -load, instead of the
		// store being refused over a defaults mismatch. An explicit
		// cfg.Relax always wins — the store is then attached only if it
		// matches, as below.
		if ing.Materialized != nil {
			cfg.Relax = ing.Materialized.Options()
		} else {
			cfg.Relax = core.RelaxOptions{Radius: 3, DynamicRadius: true}
		}
	}
	if cfg.Mapper == nil {
		cfg.Mapper = match.NewCombined(
			match.NewExact(ing.Graph), match.NewEdit(ing.Graph, 0), match.NewLookupService(ing.Graph))
	}
	ing.Graph.Freeze()
	sim := core.NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	s := &Snapshot{
		ing:     ing,
		relaxer: core.NewRelaxer(ing, sim, cfg.Mapper, cfg.Relax),
		cfg:     cfg,
		terms:   flaggedTerms(ing),
	}
	// Mount the source arms: the primary first, then each secondary with its
	// own combined mapper, similarity evaluator and relaxer over its graph.
	// Secondaries always serve the live path (their worlds are small; the
	// offline accelerations remain a primary-only optimization).
	s.arms = []sourceArm{{name: core.PrimarySourceName, ing: ing, sim: sim, relaxer: s.relaxer, mapper: cfg.Mapper}}
	for _, src := range ing.Sources {
		src.Ing.Graph.Freeze()
		m := match.NewCombined(
			match.NewExact(src.Ing.Graph), match.NewEdit(src.Ing.Graph, 0), match.NewLookupService(src.Ing.Graph))
		ssim := core.NewSimilarity(src.Ing.Graph, src.Ing.Frequencies, src.Ing.Ontology)
		s.arms = append(s.arms, sourceArm{
			name:    src.Name,
			ing:     src.Ing,
			sim:     ssim,
			relaxer: core.NewRelaxer(src.Ing, ssim, m, cfg.Relax),
			mapper:  m,
		})
	}
	// Attach the ingestion's offline accelerations when their build options
	// match the serving configuration; a mismatched store is left unused
	// (the relaxer refuses it) and every query takes the live path.
	if ing.Materialized != nil {
		s.matActive = s.relaxer.SetMaterialized(ing.Materialized)
		if !s.matActive {
			log.Printf("engine: materialized store built under %+v does not match serving options %+v; ignoring",
				ing.Materialized.Options(), s.relaxer.Options())
		}
	}
	if ing.Candidates != nil {
		s.idxActive = s.relaxer.SetCandidateIndex(ing.Candidates)
		if !s.idxActive {
			log.Printf("engine: candidate index radius %d does not cover serving radius %d; ignoring",
				ing.Candidates.Radius(), s.relaxer.Options().Radius)
		}
	}
	return s
}

// flaggedTerms resolves the flagged concepts to names in ID order — the
// deterministic term index Terms slices from. FlaggedIDs is already
// ascending under both map and flat-mapped backings. With secondary sources
// mounted, their flagged names follow the primary's in mount order (each
// source's names in its own ID order, duplicates dropped), so load
// generators exercise terms only a secondary can answer.
func flaggedTerms(ing *core.Ingestion) []string {
	ids := ing.FlaggedIDs()
	out := make([]string, 0, len(ids))
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		if c, ok := ing.Graph.Concept(id); ok {
			out = append(out, c.Name)
			seen[c.Name] = true
		}
	}
	for _, src := range ing.Sources {
		for _, id := range src.Ing.FlaggedIDs() {
			if c, ok := src.Ing.Graph.Concept(id); ok && !seen[c.Name] {
				out = append(out, c.Name)
				seen[c.Name] = true
			}
		}
	}
	return out
}

// LoadSnapshot builds a Snapshot from a persisted ingestion bundle: no
// world regeneration, no embedding training. This is the one cold-start
// path — kbserver startup, hot reload, the chaos harness, and the CLI all
// come through here, fault sites and CRC checks included. Conversations
// are unavailable because the bundle deliberately omits the synthetic
// world. Errors keep persist's typing: a corrupt file wraps
// persist.ErrCorruptBundle, a missing one fs.ErrNotExist.
func LoadSnapshot(path string) (*Snapshot, error) {
	loadStart := time.Now()
	ing, err := persist.LoadFile(path)
	if err != nil {
		return nil, err
	}
	if err := persist.ValidateForServing(ing); err != nil {
		return nil, err
	}
	loadDur := time.Since(loadStart)
	freezeStart := time.Now()
	snap := New(ing, Config{Source: path})
	residency := "heap"
	if ing.Backing != nil && ing.Backing.Mapped() {
		residency = "mapped"
	}
	log.Printf("bundle loaded: %d EKS concepts, %d instances, %s (decode+restore %s, freeze %s)",
		ing.Graph.Len(), ing.Store.Len(), residency,
		loadDur.Round(time.Millisecond), time.Since(freezeStart).Round(time.Millisecond))
	// Probe one flagged term end to end so a structurally valid bundle
	// that cannot actually answer fails here, not in production traffic.
	if terms := snap.Terms(1); len(terms) > 0 {
		if _, err := snap.Relax(context.Background(), terms[0], "", 1); err != nil {
			return nil, fmt.Errorf("engine: bundle %q failed serving probe: %w", path, err)
		}
	}
	return snap, nil
}

// Relaxer exposes the assembled online phase for harnesses that drive it
// directly (golden pinning, benchmarks, the evaluation suite).
func (s *Snapshot) Relaxer() *core.Relaxer { return s.relaxer }

// AccelActive reports whether the ingestion's offline accelerations were
// attached to the serving relaxer (false also when the bundle simply does
// not carry them).
func (s *Snapshot) AccelActive() (materialized, indexed bool) {
	return s.matActive, s.idxActive
}

// NewRelaxer derives an alternative online phase over the same frozen
// ingestion — different mapper or options (e.g. dialogue repair wants
// IncludeSelf and the combined mapper) — keeping relaxer assembly inside
// the engine. A nil mapper reuses the snapshot's.
func (s *Snapshot) NewRelaxer(mapper match.Mapper, opts core.RelaxOptions) *core.Relaxer {
	if mapper == nil {
		mapper = s.cfg.Mapper
	}
	sim := core.NewSimilarity(s.ing.Graph, s.ing.Frequencies, s.ing.Ontology)
	return core.NewRelaxer(s.ing, sim, mapper, opts)
}

// Close releases the snapshot's backing resources — for an mmap-backed
// flat bundle, the file mapping, released deterministically instead of at
// GC time (replica restarts in the chaos harness must not depend on the
// collector running). The snapshot must be fully drained first: no
// in-flight Relax may touch a closed mapping. No-op for heap snapshots.
func (s *Snapshot) Close() error { return s.ing.Close() }

// Ingestion exposes the underlying frozen ingestion (read-only).
func (s *Snapshot) Ingestion() *core.Ingestion { return s.ing }

// Source reports where the snapshot was loaded from ("" if built in
// process).
func (s *Snapshot) Source() string { return s.cfg.Source }

// parseContext turns the wire context string into the typed form; parse
// failures wrap core.ErrBadContext so servers can map them to 400.
func parseContext(qctx string) (*ontology.Context, error) {
	if qctx == "" {
		return nil, nil
	}
	parsed, err := ontology.ParseContext(qctx)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrBadContext, err)
	}
	return &parsed, nil
}

// RelaxIDs answers a [term, context] pair with the raw concept/instance
// IDs of the online phase — the form the richer medrelax facade resolves
// itself. ctx carries the request deadline.
func (s *Snapshot) RelaxIDs(ctx context.Context, term, qctx string, k int) ([]core.Result, error) {
	ctxPtr, err := parseContext(qctx)
	if err != nil {
		return nil, err
	}
	return s.relaxer.RelaxTermContext(ctx, term, ctxPtr, k)
}

// Relax answers a [term, context] pair with up to k ranked, name-resolved
// results. It implements the HTTP server's Backend contract. Multi-source
// snapshots answer through the fused path; single-source snapshots through
// the classic relaxer, byte-identical to earlier versions unless the
// context requests explain mode.
func (s *Snapshot) Relax(ctx context.Context, term, qctx string, k int) ([]RelaxResult, error) {
	if s.multiSource() {
		out, _, err := s.relaxFused(ctx, term, qctx, k)
		return out, err
	}
	results, err := s.RelaxIDs(ctx, term, qctx, k)
	if err != nil {
		return nil, err
	}
	out := s.resolve(results)
	s.attachExplain(ctx, term, results, out)
	return out, nil
}

// RelaxTraced is Relax plus the compute path that answered — the HTTP
// server's TracedBackend contract, feeding the materialized/index/live
// serving metrics.
func (s *Snapshot) RelaxTraced(ctx context.Context, term, qctx string, k int) ([]RelaxResult, core.ServePath, error) {
	if s.multiSource() {
		return s.relaxFused(ctx, term, qctx, k)
	}
	ctxPtr, err := parseContext(qctx)
	if err != nil {
		return nil, core.PathLive, err
	}
	results, path, err := s.relaxer.RelaxTermContextTraced(ctx, term, ctxPtr, k)
	if err != nil {
		return nil, path, err
	}
	// Name resolution is the non-kernel half of a relax answer; on traced
	// requests it gets its own span so the kernel/resolve split is visible.
	if parent := trace.FromContext(ctx); parent != nil {
		sp := parent.StartChild("engine.resolve")
		sp.SetTag("results", strconv.Itoa(len(results)))
		out := s.resolve(results)
		sp.End()
		s.attachExplain(ctx, term, results, out)
		return out, path, nil
	}
	out := s.resolve(results)
	s.attachExplain(ctx, term, results, out)
	return out, path, nil
}

// resolve maps core results to surface names.
func (s *Snapshot) resolve(results []core.Result) []RelaxResult {
	out := make([]RelaxResult, 0, len(results))
	for _, r := range results {
		concept, _ := s.ing.Graph.Concept(r.Concept)
		rr := RelaxResult{Concept: concept.Name, Score: r.Score, Hops: r.Hops}
		for _, iid := range r.Instances {
			if inst, ok := s.ing.Store.Instance(iid); ok {
				rr.Instances = append(rr.Instances, inst.Name)
			}
		}
		out = append(out, rr)
	}
	return out
}

// RelaxBatch answers a batch of queries through core's shared-scratch
// batch path. Outcomes are positional and deterministic; per-item failures
// (unknown term, bad context) land in that item's Err while the rest of
// the batch still answers. The deadline in ctx bounds the whole batch.
func (s *Snapshot) RelaxBatch(ctx context.Context, items []BatchItem) []BatchOutcome {
	if s.multiSource() {
		// The fused path has no shared-scratch batch kernel: each item fuses
		// its per-source answers independently, positions preserved.
		out := make([]BatchOutcome, len(items))
		for i, it := range items {
			out[i].Results, out[i].Path, out[i].Err = s.relaxFused(ctx, it.Term, it.Context, it.K)
		}
		return out
	}
	out := make([]BatchOutcome, len(items))
	queries := make([]core.BatchQuery, len(items))
	for i, it := range items {
		ctxPtr, err := parseContext(it.Context)
		if err != nil {
			out[i].Err = err
			continue
		}
		queries[i] = core.BatchQuery{Term: it.Term, Ctx: ctxPtr, K: it.K}
	}
	// Items with a bad context are skipped by marking them as already
	// answered; core still sees a dense slice to keep positions aligned.
	for i := range items {
		if out[i].Err != nil {
			queries[i] = core.BatchQuery{UseConcept: true, K: -1} // placeholder, never used
		}
	}
	results, paths, errs := s.relaxer.RelaxBatchContextTraced(ctx, queries)
	var resolveSpan *trace.Span
	if parent := trace.FromContext(ctx); parent != nil {
		resolveSpan = parent.StartChild("engine.resolve")
		resolveSpan.SetTag("items", strconv.Itoa(len(items)))
	}
	for i := range items {
		if out[i].Err != nil {
			continue
		}
		if errs[i] != nil {
			out[i].Err = errs[i]
			continue
		}
		out[i].Results = s.resolve(results[i])
		out[i].Path = paths[i]
		s.attachExplain(ctx, items[i].Term, results[i], out[i].Results)
	}
	resolveSpan.End()
	return out
}

// NewConversation opens a relaxation-backed dialogue when the snapshot's
// builder provided one (bundles cannot: the synthetic world is absent).
func (s *Snapshot) NewConversation() (*dialog.Conversation, error) {
	if s.cfg.Conversation == nil {
		return nil, fmt.Errorf("engine: snapshot has no conversation factory (serving from a bundle?)")
	}
	return s.cfg.Conversation()
}

// Terms returns up to n query terms known to map to flagged concepts, in
// deterministic order — the realistic query mix load generators build on.
func (s *Snapshot) Terms(n int) []string {
	if n > len(s.terms) {
		n = len(s.terms)
	}
	return s.terms[:n:n]
}

// Stats describes the frozen world.
func (s *Snapshot) Stats() map[string]any {
	stats := map[string]any{
		"eksConcepts":     s.ing.Graph.Len(),
		"eksEdges":        s.ing.Graph.EdgeCount(),
		"shortcutsAdded":  s.ing.ShortcutsAdded,
		"kbInstances":     s.ing.Store.Len(),
		"flaggedConcepts": s.ing.FlaggedCount(),
		"contexts":        len(s.ing.Contexts),
	}
	// Residency: a flat bundle reports whether its columns live in a file
	// mapping or on the heap, and how many bytes the backing pins. Heap
	// worlds built in process have no backing and report "built".
	if b := s.ing.Backing; b != nil {
		if b.Mapped() {
			stats["snapshotResidency"] = "mapped"
		} else {
			stats["snapshotResidency"] = "heap"
		}
		stats["snapshotBytes"] = b.SizeBytes()
	} else {
		stats["snapshotResidency"] = "built"
	}
	live, mat, idx := s.relaxer.PathCounts()
	stats["relaxPaths"] = map[string]uint64{"live": live, "materialized": mat, "indexed": idx}
	// Multi-source snapshots report each mounted arm; single-source stats
	// keep the classic shape with no extra keys.
	if s.multiSource() {
		stats["sourceCount"] = len(s.arms)
		sources := make(map[string]any, len(s.arms))
		for i := range s.arms {
			arm := &s.arms[i]
			sources[arm.name] = map[string]any{
				"eksConcepts":     arm.ing.Graph.Len(),
				"eksEdges":        arm.ing.Graph.EdgeCount(),
				"shortcutsAdded":  arm.ing.ShortcutsAdded,
				"flaggedConcepts": arm.ing.FlaggedCount(),
			}
		}
		stats["sources"] = sources
	}
	if s.matActive {
		stats["materializedEntries"] = s.ing.Materialized.Entries()
		stats["materializedConcepts"] = s.ing.Materialized.Concepts()
	}
	if s.idxActive {
		stats["candidateIndexConcepts"] = s.ing.Candidates.Concepts()
		stats["candidateIndexPostings"] = s.ing.Candidates.Postings()
		stats["candidateIndexSkipped"] = s.ing.Candidates.Skipped()
	}
	if s.cfg.Source != "" {
		stats["source"] = s.cfg.Source
	}
	if s.cfg.ExtraStats != nil {
		for k, v := range s.cfg.ExtraStats() {
			stats[k] = v
		}
	}
	return stats
}
