package engine

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"medrelax/internal/core"
	"medrelax/internal/corpus"
	"medrelax/internal/eks"
	"medrelax/internal/kb"
	"medrelax/internal/ontology"
	"medrelax/internal/persist"
)

// testIngestion builds the small Figure 7/8-shaped world the server tests
// use: a four-concept EKS over a Drug/Indication/Risk/Finding ontology
// with two flagged findings.
func testIngestion(t *testing.T) *core.Ingestion {
	t.Helper()
	o := ontology.New()
	for _, c := range []ontology.Concept{
		{Name: "Drug"}, {Name: "Indication"}, {Name: "Risk"}, {Name: "Finding"},
	} {
		if err := o.AddConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []ontology.Relationship{
		{Name: "treat", Domain: "Drug", Range: "Indication"},
		{Name: "cause", Domain: "Drug", Range: "Risk"},
		{Name: "hasFinding", Domain: "Indication", Range: "Finding"},
		{Name: "hasFinding", Domain: "Risk", Range: "Finding"},
	} {
		if err := o.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	g := eks.New()
	for _, c := range []eks.Concept{
		{ID: 1, Name: "clinical finding"},
		{ID: 2, Name: "kidney disease"},
		{ID: 3, Name: "pyelectasia"},
		{ID: 4, Name: "fever"},
	} {
		if err := g.AddConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]eks.ConceptID{{2, 1}, {3, 2}, {4, 1}} {
		if err := g.AddSubsumption(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetRoot(1); err != nil {
		t.Fatal(err)
	}
	store := kb.NewStore(o)
	for _, inst := range []kb.Instance{
		{ID: 1, Concept: "Drug", Name: "lisinopril"},
		{ID: 10, Concept: "Indication", Name: "ind-kidney"},
		{ID: 20, Concept: "Finding", Name: "kidney disease"},
		{ID: 21, Concept: "Finding", Name: "fever"},
	} {
		if err := store.AddInstance(inst); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range []kb.Assertion{
		{Subject: 1, Relationship: "treat", Object: 10},
		{Subject: 10, Relationship: "hasFinding", Object: 20},
	} {
		if err := store.AddAssertion(a); err != nil {
			t.Fatal(err)
		}
	}
	corp := corpus.New([]corpus.Document{{ID: "d", Sections: []corpus.Section{
		{Label: "Indication-hasFinding-Finding", Text: "kidney disease kidney disease fever"},
	}}})
	ing, err := core.Ingest(o, store, g, corp, exactMapper{g}, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ing
}

type exactMapper struct{ g *eks.Graph }

func (m exactMapper) Name() string { return "EXACT" }
func (m exactMapper) Map(name string) (eks.ConceptID, bool) {
	ids := m.g.LookupName(name)
	if len(ids) == 0 {
		return 0, false
	}
	return ids[0], true
}

func TestSnapshotServesAndReports(t *testing.T) {
	snap := New(testIngestion(t), Config{})

	results, err := snap.Relax(context.Background(), "pyelectasia", "", 5)
	if err != nil {
		t.Fatalf("Relax: %v", err)
	}
	if len(results) == 0 {
		t.Fatal("Relax returned no results for a relaxable term")
	}
	for _, r := range results {
		if r.Concept == "" {
			t.Errorf("result with unresolved concept name: %+v", r)
		}
	}

	if _, err := snap.Relax(context.Background(), "no such term", "", 5); !errors.Is(err, core.ErrUnknownTerm) {
		t.Errorf("unknown term: err = %v, want ErrUnknownTerm", err)
	}
	if _, err := snap.Relax(context.Background(), "pyelectasia", "totally-bogus", 5); !errors.Is(err, core.ErrBadContext) {
		t.Errorf("bad context: err = %v, want ErrBadContext", err)
	}

	terms := snap.Terms(100)
	if len(terms) == 0 {
		t.Fatal("Terms returned no flagged terms")
	}
	if again := snap.Terms(100); !reflect.DeepEqual(terms, again) {
		t.Error("Terms is not deterministic")
	}
	if short := snap.Terms(1); len(short) != 1 || short[0] != terms[0] {
		t.Errorf("Terms(1) = %v, want prefix of %v", short, terms)
	}

	stats := snap.Stats()
	for _, key := range []string{"eksConcepts", "eksEdges", "kbInstances", "flaggedConcepts"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("Stats missing %q: %v", key, stats)
		}
	}
	if _, err := snap.NewConversation(); err == nil {
		t.Error("NewConversation without a factory should fail")
	}
}

func TestSnapshotBatchMatchesSequential(t *testing.T) {
	snap := New(testIngestion(t), Config{})
	items := []BatchItem{
		{Term: "pyelectasia", K: 5},
		{Term: "kidney disease", K: 3},
		{Term: "no such term", K: 5},
		{Term: "fever", Context: "not a context", K: 2},
		{Term: "pyelectasia", K: 5},
	}
	outcomes := snap.RelaxBatch(context.Background(), items)
	if len(outcomes) != len(items) {
		t.Fatalf("got %d outcomes for %d items", len(outcomes), len(items))
	}
	for i, it := range items {
		want, wantErr := snap.Relax(context.Background(), it.Term, it.Context, it.K)
		if (wantErr == nil) != (outcomes[i].Err == nil) {
			t.Fatalf("item %d: batch err %v, sequential err %v", i, outcomes[i].Err, wantErr)
		}
		if wantErr != nil {
			if !errors.Is(outcomes[i].Err, wantErr) && outcomes[i].Err.Error() != wantErr.Error() {
				// Same error class is enough; exact wrapping may differ.
				if !(errors.Is(outcomes[i].Err, core.ErrUnknownTerm) && errors.Is(wantErr, core.ErrUnknownTerm)) &&
					!(errors.Is(outcomes[i].Err, core.ErrBadContext) && errors.Is(wantErr, core.ErrBadContext)) {
					t.Errorf("item %d: batch err %v, sequential err %v", i, outcomes[i].Err, wantErr)
				}
			}
			continue
		}
		if !reflect.DeepEqual(outcomes[i].Results, want) {
			t.Errorf("item %d: batch %v != sequential %v", i, outcomes[i].Results, want)
		}
	}
}

func TestLoadSnapshotRoundTrip(t *testing.T) {
	ing := testIngestion(t)
	path := filepath.Join(t.TempDir(), "bundle.bin")
	if err := persist.SaveFileAtomic(path, ing, persist.FormatBinary); err != nil {
		t.Fatal(err)
	}
	built := New(testIngestion(t), Config{})
	loaded, err := LoadSnapshot(path)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if loaded.Source() != path {
		t.Errorf("Source = %q, want %q", loaded.Source(), path)
	}
	if got, want := loaded.Terms(100), built.Terms(100); !reflect.DeepEqual(got, want) {
		t.Errorf("loaded Terms %v != built Terms %v", got, want)
	}
	for _, term := range loaded.Terms(100) {
		got, err := loaded.Relax(context.Background(), term, "", 5)
		if err != nil {
			t.Fatalf("loaded Relax(%q): %v", term, err)
		}
		want, err := built.Relax(context.Background(), term, "", 5)
		if err != nil {
			t.Fatalf("built Relax(%q): %v", term, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Relax(%q): loaded %v != built %v", term, got, want)
		}
	}
	if _, err := LoadSnapshot(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Error("LoadSnapshot of a missing file should fail")
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	ing := testIngestion(t)
	path := filepath.Join(t.TempDir(), "alpha.bin")
	if err := persist.SaveFileAtomic(path, ing, persist.FormatBinary); err != nil {
		t.Fatal(err)
	}
	alpha, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	beta := New(testIngestion(t), Config{})

	ha, err := reg.Add("alpha", path, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("beta", "", beta); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("alpha", path, alpha); err == nil {
		t.Error("duplicate tenant registration should fail")
	}
	if _, err := reg.Add("", path, alpha); err == nil {
		t.Error("empty tenant name should fail")
	}

	if reg.Default() != "alpha" {
		t.Errorf("Default = %q, want first-added tenant", reg.Default())
	}
	if got := reg.Names(); !reflect.DeepEqual(got, []string{"alpha", "beta"}) {
		t.Errorf("Names = %v", got)
	}
	if h, ok := reg.Get(""); !ok || h != ha {
		t.Error("empty name should resolve to the default tenant")
	}
	if h, ok := reg.Get("beta"); !ok || h.Load() != beta {
		t.Error("Get(beta) should return the registered snapshot")
	}
	if _, ok := reg.Get("gamma"); ok {
		t.Error("unknown tenant should not resolve")
	}

	// Reload swaps in a fresh snapshot; the old pointer is untouched.
	before := ha.Load()
	fresh, err := ha.Reload()
	if err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if fresh == before || ha.Load() != fresh {
		t.Error("Reload did not swap in a new snapshot")
	}
	hb, _ := reg.Get("beta")
	if _, err := hb.Reload(); err == nil {
		t.Error("Reload of a source-less tenant should fail")
	}
}

func TestSnapshotConcurrent(t *testing.T) {
	snap := New(testIngestion(t), Config{})
	term := snap.Terms(1)[0]
	want, err := snap.Relax(context.Background(), term, "", 5)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := snap.Relax(context.Background(), term, "", 5)
				if err != nil || !reflect.DeepEqual(got, want) {
					t.Errorf("concurrent Relax diverged: %v %v", got, err)
					return
				}
				snap.Terms(10)
				snap.Stats()
			}
		}()
	}
	wg.Wait()
}

// TestSnapshotAdoptsMaterializedOptions covers the defaults handshake
// between an accelerated bundle and snapshot assembly: a store built under
// explicit (non-default) RelaxOptions must make a zero-Config snapshot
// serve under exactly those options — otherwise a CLI-built accelerated
// bundle would have its store refused over a defaults mismatch after a
// plain -load. An explicit Config.Relax still wins, refusing the store.
func TestSnapshotAdoptsMaterializedOptions(t *testing.T) {
	ing := testIngestion(t)
	ing.Graph.Freeze()
	sim := core.NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	ropts := core.RelaxOptions{Radius: 3, DynamicRadius: true, MaxRadius: 6}
	ing.Materialized = core.MaterializeTopK(ing, sim, core.MaterializeOptions{
		Enabled: true, Relax: ropts, HeadFraction: 1, HeadMax: -1, Contexts: ing.Contexts,
	})

	snap := New(ing, Config{})
	if got := snap.Relaxer().Options(); got != ropts {
		t.Fatalf("zero-Config snapshot serves under %+v, want the store's %+v", got, ropts)
	}
	if mat, _ := snap.AccelActive(); !mat {
		t.Fatal("store built under its own options was not attached")
	}

	explicit := core.RelaxOptions{Radius: 2, DynamicRadius: true, MaxRadius: 8}
	snap = New(ing, Config{Relax: explicit})
	if got := snap.Relaxer().Options(); got != explicit {
		t.Fatalf("explicit options overridden: got %+v, want %+v", got, explicit)
	}
	if mat, _ := snap.AccelActive(); mat {
		t.Fatal("mismatched store must be refused under explicit options")
	}
}
