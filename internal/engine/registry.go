package engine

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Handle is one named, reloadable snapshot slot: a bundle path plus the
// atomically swappable Snapshot currently serving it. Readers call Load;
// Reload rebuilds from the source and swaps, leaving in-flight readers on
// the old snapshot until they finish.
type Handle struct {
	name   string
	source string
	cur    atomic.Pointer[Snapshot]
}

// Name returns the tenant name the handle is registered under.
func (h *Handle) Name() string { return h.name }

// Source returns the bundle path the handle reloads from ("" for an
// in-process snapshot, which cannot Reload).
func (h *Handle) Source() string { return h.source }

// Load returns the current snapshot. Never nil for a registered handle.
func (h *Handle) Load() *Snapshot { return h.cur.Load() }

// Reload rebuilds the snapshot from the handle's source bundle and swaps
// it in atomically, returning the fresh snapshot. On error the previous
// snapshot keeps serving untouched.
func (h *Handle) Reload() (*Snapshot, error) {
	if h.source == "" {
		return nil, fmt.Errorf("engine: tenant %q was built in process and has no bundle to reload", h.name)
	}
	snap, err := LoadSnapshot(h.source)
	if err != nil {
		return nil, fmt.Errorf("engine: reload tenant %q: %w", h.name, err)
	}
	h.cur.Store(snap)
	return snap, nil
}

// Registry maps tenant names to snapshot handles — several independently
// built knowledge bundles served side by side from one process. The set
// of tenants is fixed after construction (Add happens at startup);
// snapshots within each handle stay swappable forever, so the map needs
// no lock on the read path.
type Registry struct {
	tenants map[string]*Handle
	def     string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tenants: make(map[string]*Handle)}
}

// Add registers a snapshot under name. The first tenant added becomes the
// default (the one bare, un-prefixed routes resolve to). source is the
// bundle path reloads pull from; "" disables reload for this tenant.
func (r *Registry) Add(name, source string, snap *Snapshot) (*Handle, error) {
	if name == "" {
		return nil, fmt.Errorf("engine: tenant name must be non-empty")
	}
	if _, dup := r.tenants[name]; dup {
		return nil, fmt.Errorf("engine: duplicate tenant %q", name)
	}
	h := &Handle{name: name, source: source}
	h.cur.Store(snap)
	r.tenants[name] = h
	if r.def == "" {
		r.def = name
	}
	return h, nil
}

// Get returns the handle for a tenant name, or ok=false if unknown. An
// empty name resolves to the default tenant.
func (r *Registry) Get(name string) (*Handle, bool) {
	if name == "" {
		name = r.def
	}
	h, ok := r.tenants[name]
	return h, ok
}

// Default returns the default tenant's name ("" when the registry is
// empty).
func (r *Registry) Default() string { return r.def }

// Names lists the registered tenants in sorted order.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len reports how many tenants are registered.
func (r *Registry) Len() int { return len(r.tenants) }
