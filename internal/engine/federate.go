// Federated multi-source relaxation: a Snapshot with secondary external
// knowledge sources mounted answers every relax entry point by fusing
// per-source ranked lists under a deterministic rule, and attaches
// per-source attribution (and, under explain mode, the relaxation path) to
// every result. Single-source snapshots never enter this file's fused path —
// their output stays byte-identical to earlier versions.
package engine

import (
	"context"
	"fmt"
	"slices"
	"sort"

	"medrelax/internal/core"
	"medrelax/internal/eks"
	"medrelax/internal/kb"
	"medrelax/internal/match"
)

// sourceArm is one mounted source ready to answer queries: its ingestion
// plus the per-source mapper, similarity evaluator and relaxer built over
// its graph. arms[0] of a Snapshot is always the primary.
type sourceArm struct {
	name    string
	ing     *core.Ingestion
	sim     *core.Similarity
	relaxer *core.Relaxer
	mapper  match.Mapper
}

// multiSource reports whether secondary sources are mounted.
func (s *Snapshot) multiSource() bool { return len(s.arms) > 1 }

// fusedEntry accumulates one concept name's evidence across sources while
// fusing. The winner fields record the source whose score the entry keeps —
// the arm the explanation path runs in.
type fusedEntry struct {
	name          string
	score         float64
	hops          int
	instSet       map[kb.InstanceID]bool
	sources       []string
	winnerArm     int
	winnerQuery   eks.ConceptID
	winnerConcept eks.ConceptID
}

// relaxFused answers a [term, context] pair by relaxing in every mounted
// source that can map the term and fusing the per-source ranked lists.
//
// The fusion rule is deterministic: candidates join on concept NAME (the
// sources are distinct vocabularies over the same KB, so names are the only
// shared key); a joined candidate keeps the maximum per-source score, ties
// broken toward the earlier mount position; its instance set is the union
// across sources and its attribution lists every contributing source in
// mount order. The fused list ranks by score descending, then name
// ascending, and k truncates by distinct KB instances exactly as the
// single-source path does (a result whose instances were all already
// produced still rides along; truncation fires when k is reached BEFORE a
// result that would add new instances).
//
// The reported serve path is core.PathLive: fusion always re-ranks the full
// per-source candidate lists, so per-arm acceleration hits are not
// meaningful as a whole-answer label.
func (s *Snapshot) relaxFused(ctx context.Context, term, qctx string, k int) ([]RelaxResult, core.ServePath, error) {
	ctxPtr, err := parseContext(qctx)
	if err != nil {
		return nil, core.PathLive, err
	}
	entries := make(map[string]*fusedEntry)
	var order []string // first-seen order, only for map iteration stability before sorting
	mappedAny := false
	for ai := range s.arms {
		arm := &s.arms[ai]
		q, ok := arm.mapper.Map(term)
		if !ok {
			continue
		}
		mappedAny = true
		// Full ranked list (k<=0): truncation must happen once, globally,
		// after fusion — a per-source cut could starve a concept that only
		// wins after its scores merge.
		results, err := arm.relaxer.RelaxConceptContext(ctx, q, ctxPtr, 0)
		if err != nil {
			return nil, core.PathLive, err
		}
		for _, r := range results {
			c, ok := arm.ing.Graph.Concept(r.Concept)
			if !ok {
				continue
			}
			e := entries[c.Name]
			if e == nil {
				e = &fusedEntry{
					name:          c.Name,
					score:         r.Score,
					hops:          r.Hops,
					instSet:       make(map[kb.InstanceID]bool),
					winnerArm:     ai,
					winnerQuery:   q,
					winnerConcept: r.Concept,
				}
				entries[c.Name] = e
				order = append(order, c.Name)
			} else if r.Score > e.score {
				// Strictly greater only: score ties keep the earlier mount.
				e.score, e.hops = r.Score, r.Hops
				e.winnerArm, e.winnerQuery, e.winnerConcept = ai, q, r.Concept
			}
			// A source contributes at most one entry per concept name (its
			// ranked list is concept-unique), so appending here cannot
			// duplicate an attribution.
			e.sources = append(e.sources, arm.name)
			for _, iid := range r.Instances {
				e.instSet[iid] = true
			}
		}
	}
	if !mappedAny {
		return nil, core.PathLive, fmt.Errorf("engine: query term %q: %w", term, core.ErrUnknownTerm)
	}
	fused := make([]*fusedEntry, 0, len(entries))
	for _, name := range order {
		fused = append(fused, entries[name])
	}
	sort.Slice(fused, func(i, j int) bool {
		if fused[i].score != fused[j].score {
			return fused[i].score > fused[j].score
		}
		return fused[i].name < fused[j].name
	})
	explain := core.ExplainRequested(ctx)
	out := make([]RelaxResult, 0, len(fused))
	seen := make(map[kb.InstanceID]bool)
	for _, e := range fused {
		// Distinct-instance truncation, matching core's takeForKInstances:
		// stop once k distinct instances exist before this entry.
		if k > 0 && len(seen) >= k {
			break
		}
		ids := make([]kb.InstanceID, 0, len(e.instSet))
		for iid := range e.instSet {
			ids = append(ids, iid)
		}
		slices.Sort(ids)
		rr := RelaxResult{Concept: e.name, Score: e.score, Hops: e.hops, Sources: e.sources}
		for _, iid := range ids {
			seen[iid] = true
			if inst, ok := s.ing.Store.Instance(iid); ok {
				rr.Instances = append(rr.Instances, inst.Name)
			}
		}
		if explain {
			rr.Explain = s.explainFor(&s.arms[e.winnerArm], e.winnerQuery, e.winnerConcept)
		}
		out = append(out, rr)
	}
	return out, core.PathLive, nil
}

// attachExplain decorates an already-resolved single-source answer with
// source attribution and relaxation paths when the request context asked
// for explain mode. It is a strict no-op otherwise, which is what keeps
// explain=false responses byte-identical: the resolve path never touches
// the new fields. ids and out are positionally aligned (out = resolve(ids)).
func (s *Snapshot) attachExplain(ctx context.Context, term string, ids []core.Result, out []RelaxResult) {
	if !core.ExplainRequested(ctx) || len(out) == 0 {
		return
	}
	arm := &s.arms[0]
	// Re-map the term through the arm's mapper; Map is deterministic, so
	// this resolves to the same query concept the relaxer used.
	q, ok := arm.mapper.Map(term)
	if !ok {
		return
	}
	for i := range out {
		if i >= len(ids) {
			break
		}
		out[i].Sources = []string{arm.name}
		out[i].Explain = s.explainFor(arm, q, ids[i].Concept)
	}
}

// explainFor reconstructs the canonical relaxation path from query concept
// q to candidate c inside one source: up from q to the deterministic LCS
// representative (minimal up-hops, then minimal ID — exactly the subsumer
// the scored path weight ran through), then down to c. Edge distances are
// the original semantic distances (1 for native subsumptions, the attached
// distance for shortcut edges). Returns nil when the pair shares no
// subsumer or a path leg cannot be reconstructed — the result then carries
// attribution but no path, rather than a fabricated one.
func (s *Snapshot) explainFor(arm *sourceArm, q, c eks.ConceptID) *Explain {
	name := func(id eks.ConceptID) string {
		cc, _ := arm.ing.Graph.Concept(id)
		return cc.Name
	}
	if q == c {
		// IncludeSelf answers: the query concept itself, an empty path.
		return &Explain{
			Source:     arm.name,
			Query:      name(q),
			Subsumer:   name(q),
			PathWeight: 1,
			Edges:      []ExplainEdge{},
		}
	}
	rep, lcs, gen, spec, ok := arm.sim.CanonicalMeet(q, c)
	if !ok {
		return nil
	}
	upQ, ok1 := arm.ing.Graph.UpPathTo(q, rep)
	upC, ok2 := arm.ing.Graph.UpPathTo(c, rep)
	if !ok1 || !ok2 {
		return nil
	}
	edges := make([]ExplainEdge, 0, len(upQ)+len(upC))
	for _, e := range upQ {
		edges = append(edges, ExplainEdge{
			From: name(e.From), To: name(e.To), Direction: "generalization", Dist: e.Dist,
		})
	}
	// The candidate leg runs down from the subsumer, so its upward edges
	// reverse into specializations.
	for i := len(upC) - 1; i >= 0; i-- {
		e := upC[i]
		edges = append(edges, ExplainEdge{
			From: name(e.To), To: name(e.From), Direction: "specialization", Dist: e.Dist,
		})
	}
	ex := &Explain{
		Source:          arm.name,
		Query:           name(q),
		Subsumer:        name(rep),
		Generalizations: gen,
		Specializations: spec,
		PathWeight:      arm.sim.CanonicalPathWeight(gen, spec),
		Edges:           edges,
	}
	for _, id := range lcs {
		ex.Subsumers = append(ex.Subsumers, name(id))
	}
	return ex
}
