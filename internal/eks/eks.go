// Package eks models an external knowledge source (EKS) such as SNOMED CT:
// a rooted directed acyclic graph of concepts connected by subsumption
// relationships A ⊑ B ("A specializes B", "B generalizes A").
//
// The package distinguishes two metrics over the graph, following the
// paper's offline customization step (Section 5.1):
//
//   - the application (hop) metric, in which every edge — including the
//     shortcut edges added during ingestion — counts as one hop; this is the
//     metric used to gather candidates within radius r online, and
//   - the semantic (original) metric, in which an edge contributes its
//     attached original distance (1 for native subsumption edges, the
//     pre-customization path length for shortcut edges); this is the metric
//     used by the similarity measure, so that adding shortcut edges never
//     changes similarity scores.
package eks

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"medrelax/internal/stringutil"
)

// ConceptID identifies a concept in the external knowledge source. IDs are
// SCTID-style opaque integers; they carry no structural meaning.
type ConceptID int64

// Concept is a node of the external knowledge source: a preferred name plus
// zero or more synonyms.
type Concept struct {
	ID       ConceptID
	Name     string
	Synonyms []string
}

// Edge is a subsumption edge From ⊑ To: traversing it From→To is a
// generalization, To→From a specialization. Dist is the number of original
// subsumption hops the edge stands for: 1 for native edges, the length of
// the replaced path for shortcut edges added during ingestion.
type Edge struct {
	From, To ConceptID
	Dist     int
	Shortcut bool
}

// Graph is a mutable external knowledge source. The zero value is not
// usable; call New.
type Graph struct {
	concepts map[ConceptID]*Concept
	// up[c] holds edges c ⊑ parent (native and shortcut);
	// down[c] holds the reverse adjacency.
	up, down map[ConceptID][]Edge
	root     ConceptID
	hasRoot  bool
	nameIdx  map[string][]ConceptID

	// flat, when set, backs the graph with read-only flat-bundle sections
	// (usually a memory mapping) instead of the maps above; see
	// NewFlatGraph. Mutating methods fail on a flat graph.
	flat *flatGraph

	// dense is the frozen CSR traversal index, built lazily on first use
	// and dropped by structural mutations. denseMu serializes the build.
	denseMu sync.Mutex
	dense   atomic.Pointer[denseIndex]
}

// errFlatMutate is returned by every mutating method on a flat-backed graph.
var errFlatMutate = fmt.Errorf("eks: graph is a read-only flat snapshot view")

// New returns an empty graph.
func New() *Graph {
	return NewSized(0)
}

// NewSized returns an empty graph with capacity hints for n concepts, so
// bulk loads (persist restore, generators) avoid rehashing while they
// insert.
func NewSized(n int) *Graph {
	return &Graph{
		concepts: make(map[ConceptID]*Concept, n),
		up:       make(map[ConceptID][]Edge, n),
		down:     make(map[ConceptID][]Edge, n),
		nameIdx:  make(map[string][]ConceptID, n),
	}
}

// AddConcept inserts a concept. It returns an error if the ID is already
// present or the name is empty.
func (g *Graph) AddConcept(c Concept) error {
	if g.flat != nil {
		return errFlatMutate
	}
	if c.Name == "" {
		return fmt.Errorf("eks: concept %d has empty name", c.ID)
	}
	if _, ok := g.concepts[c.ID]; ok {
		return fmt.Errorf("eks: duplicate concept id %d", c.ID)
	}
	cc := c
	g.concepts[c.ID] = &cc
	g.invalidateDense()
	g.indexName(c.Name, c.ID)
	for _, s := range c.Synonyms {
		g.indexName(s, c.ID)
	}
	return nil
}

func (g *Graph) indexName(name string, id ConceptID) {
	key := stringutil.Normalize(name)
	if key == "" {
		return
	}
	for _, existing := range g.nameIdx[key] {
		if existing == id {
			return
		}
	}
	g.nameIdx[key] = append(g.nameIdx[key], id)
}

// AddSynonym attaches an additional surface form to an existing concept and
// indexes it for LookupName. Unknown concepts and blank synonyms are
// ignored.
func (g *Graph) AddSynonym(id ConceptID, synonym string) {
	if g.flat != nil {
		return
	}
	c, ok := g.concepts[id]
	if !ok || stringutil.Normalize(synonym) == "" {
		return
	}
	c.Synonyms = append(c.Synonyms, synonym)
	g.indexName(synonym, id)
}

// SetRoot declares the top concept (owl:Thing). Validate checks that every
// concept is a descendant of the root.
func (g *Graph) SetRoot(id ConceptID) error {
	if g.flat != nil {
		return errFlatMutate
	}
	if _, ok := g.concepts[id]; !ok {
		return fmt.Errorf("eks: root %d not a concept", id)
	}
	g.root = id
	g.hasRoot = true
	return nil
}

// Root returns the top concept ID. ok is false if SetRoot was never called.
func (g *Graph) Root() (id ConceptID, ok bool) { return g.root, g.hasRoot }

// AddSubsumption records child ⊑ parent as a native one-hop edge.
func (g *Graph) AddSubsumption(child, parent ConceptID) error {
	return g.addEdge(Edge{From: child, To: parent, Dist: 1})
}

// AddShortcutEdge records an application-specific edge child ⊑ parent that
// stands for dist original hops (Algorithm 1, line 21).
func (g *Graph) AddShortcutEdge(child, parent ConceptID, dist int) error {
	if dist < 2 {
		return fmt.Errorf("eks: shortcut edge %d->%d must span at least 2 hops, got %d", child, parent, dist)
	}
	return g.addEdge(Edge{From: child, To: parent, Dist: dist, Shortcut: true})
}

func (g *Graph) addEdge(e Edge) error {
	if g.flat != nil {
		return errFlatMutate
	}
	if e.From == e.To {
		return fmt.Errorf("eks: self edge on %d", e.From)
	}
	if _, ok := g.concepts[e.From]; !ok {
		return fmt.Errorf("eks: edge source %d not a concept", e.From)
	}
	if _, ok := g.concepts[e.To]; !ok {
		return fmt.Errorf("eks: edge target %d not a concept", e.To)
	}
	for _, ex := range g.up[e.From] {
		if ex.To == e.To {
			return fmt.Errorf("eks: duplicate edge %d->%d", e.From, e.To)
		}
	}
	g.up[e.From] = append(g.up[e.From], e)
	g.down[e.To] = append(g.down[e.To], e)
	g.invalidateDense()
	return nil
}

// Concept returns the concept with the given ID.
func (g *Graph) Concept(id ConceptID) (Concept, bool) {
	if g.flat != nil {
		return g.flat.concept(id)
	}
	c, ok := g.concepts[id]
	if !ok {
		return Concept{}, false
	}
	return *c, true
}

// Len returns the number of concepts.
func (g *Graph) Len() int {
	if g.flat != nil {
		return len(g.flat.ids)
	}
	return len(g.concepts)
}

// EdgeCount returns the number of edges, counting shortcuts.
func (g *Graph) EdgeCount() int {
	if g.flat != nil {
		return g.flat.edgeCount()
	}
	n := 0
	for _, es := range g.up {
		n += len(es)
	}
	return n
}

// ShortcutCount returns the number of shortcut edges.
func (g *Graph) ShortcutCount() int {
	if g.flat != nil {
		return g.flat.shortcutCount()
	}
	n := 0
	for _, es := range g.up {
		for _, e := range es {
			if e.Shortcut {
				n++
			}
		}
	}
	return n
}

// ConceptIDs returns all concept IDs in ascending order.
func (g *Graph) ConceptIDs() []ConceptID {
	if g.flat != nil {
		ids := make([]ConceptID, len(g.flat.ids))
		copy(ids, g.flat.ids)
		return ids
	}
	ids := make([]ConceptID, 0, len(g.concepts))
	for id := range g.concepts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// LookupName returns the concepts whose preferred name or any synonym
// normalizes to the same form as name, in ascending ID order.
func (g *Graph) LookupName(name string) []ConceptID {
	if g.flat != nil {
		return g.flat.lookupName(name)
	}
	ids := g.nameIdx[stringutil.Normalize(name)]
	out := make([]ConceptID, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NameKeys returns every normalized name key in the index. The order is
// unspecified. It is intended for matchers that scan the lexicon.
func (g *Graph) NameKeys() []string {
	if g.flat != nil {
		keys := make([]string, len(g.flat.nameKeys))
		copy(keys, g.flat.nameKeys)
		return keys
	}
	keys := make([]string, 0, len(g.nameIdx))
	for k := range g.nameIdx {
		keys = append(keys, k)
	}
	return keys
}

// IDsForNameKey returns the concept IDs indexed under an already-normalized
// key, or nil.
func (g *Graph) IDsForNameKey(key string) []ConceptID {
	if g.flat != nil {
		return g.flat.idsForNameKey(key)
	}
	ids := g.nameIdx[key]
	out := make([]ConceptID, len(ids))
	copy(out, ids)
	return out
}

// Parents returns the native (non-shortcut) direct parents of id.
func (g *Graph) Parents(id ConceptID) []ConceptID {
	if g.flat != nil {
		return g.flat.nativeNeighbors(id, true)
	}
	var out []ConceptID
	for _, e := range g.up[id] {
		if !e.Shortcut {
			out = append(out, e.To)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Children returns the native (non-shortcut) direct children of id.
func (g *Graph) Children(id ConceptID) []ConceptID {
	if g.flat != nil {
		return g.flat.nativeNeighbors(id, false)
	}
	var out []ConceptID
	for _, e := range g.down[id] {
		if !e.Shortcut {
			out = append(out, e.From)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UpEdges returns all edges (native and shortcut) from id toward its
// generalizations.
func (g *Graph) UpEdges(id ConceptID) []Edge {
	if g.flat != nil {
		return g.flat.edges(id, true)
	}
	es := g.up[id]
	out := make([]Edge, len(es))
	copy(out, es)
	return out
}

// DownEdges returns all edges (native and shortcut) from id toward its
// specializations.
func (g *Graph) DownEdges(id ConceptID) []Edge {
	if g.flat != nil {
		return g.flat.edges(id, false)
	}
	es := g.down[id]
	out := make([]Edge, len(es))
	copy(out, es)
	return out
}

// Ancestors returns the set of all concepts reachable from id by following
// native subsumption edges upward, excluding id itself.
func (g *Graph) Ancestors(id ConceptID) map[ConceptID]bool {
	if g.flat != nil {
		return g.flat.reachNative(id, true)
	}
	out := make(map[ConceptID]bool)
	stack := []ConceptID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.up[cur] {
			if e.Shortcut {
				continue
			}
			if !out[e.To] {
				out[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return out
}

// Descendants returns the set of all concepts reachable from id by
// following native subsumption edges downward, excluding id itself.
func (g *Graph) Descendants(id ConceptID) map[ConceptID]bool {
	if g.flat != nil {
		return g.flat.reachNative(id, false)
	}
	out := make(map[ConceptID]bool)
	stack := []ConceptID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.down[cur] {
			if e.Shortcut {
				continue
			}
			if !out[e.From] {
				out[e.From] = true
				stack = append(stack, e.From)
			}
		}
	}
	return out
}

// DescendantCount returns |Descendants(id)|. Used by the intrinsic
// (corpus-free) information-content measure. It runs on the dense traversal
// index, so counting does not materialize the descendant set.
func (g *Graph) DescendantCount(id ConceptID) int {
	d := g.denseIdx()
	src, ok := d.lookup(id)
	if !ok {
		return 0
	}
	s := d.getScratch()
	n := d.countDescendants(src, s)
	d.putScratch(s)
	return n
}

// TopologicalOrder returns every concept with children before parents
// (Algorithm 1, line 12), considering native edges only. It returns an
// error if the native subsumption graph has a cycle.
func (g *Graph) TopologicalOrder() ([]ConceptID, error) {
	if g.flat != nil {
		return g.flat.topologicalOrder()
	}
	// Kahn's algorithm over the child→parent direction: indegree counts
	// native down-edges (children not yet emitted). Always popping the
	// smallest ready ID keeps the order deterministic; a binary min-heap
	// makes each pop O(log V) where the previous sorted-queue merge was
	// O(V) per step.
	indeg := make(map[ConceptID]int, len(g.concepts))
	heap := make(idHeap, 0, len(g.concepts))
	for id := range g.concepts {
		n := 0
		for _, e := range g.down[id] {
			if !e.Shortcut {
				n++
			}
		}
		indeg[id] = n
		if n == 0 {
			heap = append(heap, id)
		}
	}
	heap.init()
	order := make([]ConceptID, 0, len(g.concepts))
	for len(heap) > 0 {
		id := heap.pop()
		order = append(order, id)
		for _, e := range g.up[id] {
			if e.Shortcut {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				heap.push(e.To)
			}
		}
	}
	if len(order) != len(g.concepts) {
		return nil, fmt.Errorf("eks: subsumption graph has a cycle (%d of %d concepts ordered)", len(order), len(g.concepts))
	}
	return order, nil
}

// idHeap is a binary min-heap of concept IDs, inlined to avoid the
// interface indirection of container/heap on this hot path.
type idHeap []ConceptID

func (h idHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *idHeap) push(v ConceptID) {
	*h = append(*h, v)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent] <= (*h)[i] {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *idHeap) pop() ConceptID {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	(*h).down(0)
	return top
}

func (h idHeap) down(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h[right] < h[left] {
			smallest = right
		}
		if h[i] <= h[smallest] {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// Validate checks structural invariants: the graph is a DAG over native
// edges, a root is set, and every concept other than the root reaches the
// root by following native subsumption upward.
func (g *Graph) Validate() error {
	if !g.hasRoot {
		return fmt.Errorf("eks: no root set")
	}
	if g.flat != nil {
		return g.flat.validate(g.root)
	}
	if _, err := g.TopologicalOrder(); err != nil {
		return err
	}
	// Upward reachability of the root is equivalent to downward
	// reachability from it: one BFS over native down-edges replaces the
	// per-concept ancestor walk.
	reached := make(map[ConceptID]bool, len(g.concepts))
	reached[g.root] = true
	stack := []ConceptID{g.root}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.down[cur] {
			if e.Shortcut {
				continue
			}
			if !reached[e.From] {
				reached[e.From] = true
				stack = append(stack, e.From)
			}
		}
	}
	if len(reached) != len(g.concepts) {
		// Report the smallest unreached ID so the error is deterministic.
		var worst ConceptID
		for id := range g.concepts {
			if !reached[id] && (worst == 0 || id < worst) {
				worst = id
			}
		}
		c := g.concepts[worst]
		return fmt.Errorf("eks: concept %d (%q) does not reach root", worst, c.Name)
	}
	return nil
}
