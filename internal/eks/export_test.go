package eks

// Hooks exposing the retained legacy (map-based) traversals to the external
// eks_test package, which cross-checks them against the dense kernel on
// synthkb worlds (synthkb imports eks, so those tests cannot live in this
// package).

// LegacyNeighborsWithinHops runs the original map-based BFS.
func (g *Graph) LegacyNeighborsWithinHops(from ConceptID, radius int) []Neighbor {
	return g.legacyNeighborsWithinHops(from, radius)
}

// LegacyUpDistances runs the original map-and-heap Dijkstra.
func (g *Graph) LegacyUpDistances(id ConceptID) map[ConceptID]int {
	return g.legacyUpDistances(id)
}
