package eks

import (
	"fmt"
	"sort"

	"medrelax/internal/stringutil"
)

// flatGraph is a read-only graph backing built from the flat (v4) bundle
// sections: the CSR adjacency and the ascending concept-ID slice are used
// directly as stored — typically aliasing a memory-mapped file — so opening
// a snapshot materializes no per-concept structs or maps. Lookups that the
// map-backed graph answers by hashing are answered here by binary search
// over the ascending slices.
type flatGraph struct {
	ids    []ConceptID // ascending, one per concept
	names  []string    // preferred name per concept
	synOff []int32     // len n+1; concept i's synonyms are syns[synOff[i]:synOff[i+1]]
	syns   []string

	// CSR adjacency over dense node indexes (position in ids), same layout
	// as denseIndex: native edges precede shortcut edges within each node's
	// range, with the boundary at upNativeEnd/downNativeEnd.
	upOff, downOff             []int32 // len n+1
	upTo, downTo               []int32
	upDist, downDist           []int32
	upNativeEnd, downNativeEnd []int32 // absolute positions, len n

	// Normalized-name index: sorted unique keys with CSR spans into keyIDs.
	// Per-key ID order is the insertion order the writer recorded.
	nameKeys []string
	keyOff   []int32 // len(nameKeys)+1
	keyIDs   []ConceptID
}

// FlatGraphData carries the decoded flat-bundle sections into NewFlatGraph.
// Slices may alias a memory mapping; the graph never mutates them.
type FlatGraphData struct {
	IDs    []ConceptID // ascending
	Names  []string    // one per concept, non-empty
	SynOff []int32     // len(IDs)+1, CSR into Syns
	Syns   []string
	Root   ConceptID

	UpOff, DownOff             []int32 // len(IDs)+1
	UpTo, DownTo               []int32 // dense node targets
	UpDist, DownDist           []int32
	UpNativeEnd, DownNativeEnd []int32 // len(IDs), absolute positions

	NameKeys []string // sorted ascending, unique, normalized
	KeyOff   []int32  // len(NameKeys)+1, CSR into KeyIDs
	KeyIDs   []ConceptID
}

// NewFlatGraph wraps flat-bundle sections in a read-only *Graph. It
// validates the structural invariants the mutating API enforces piecewise —
// ascending IDs, monotonic in-bounds CSR offsets, native/shortcut distance
// floors — so traversals over a hostile bundle stay memory-safe. Mutating
// methods on the returned graph fail.
func NewFlatGraph(d FlatGraphData) (*Graph, error) {
	n := len(d.IDs)
	if len(d.Names) != n {
		return nil, fmt.Errorf("eks: flat graph: %d names for %d concepts", len(d.Names), n)
	}
	for i := 1; i < n; i++ {
		if d.IDs[i] <= d.IDs[i-1] {
			return nil, fmt.Errorf("eks: flat graph: concept ids not strictly ascending at %d", i)
		}
	}
	for i, name := range d.Names {
		if name == "" {
			return nil, fmt.Errorf("eks: flat graph: concept %d has empty name", d.IDs[i])
		}
	}
	if err := checkCSR("synonyms", n, d.SynOff, len(d.Syns)); err != nil {
		return nil, err
	}
	if err := checkAdjacency("up", n, d.UpOff, d.UpTo, d.UpDist, d.UpNativeEnd); err != nil {
		return nil, err
	}
	if err := checkAdjacency("down", n, d.DownOff, d.DownTo, d.DownDist, d.DownNativeEnd); err != nil {
		return nil, err
	}
	if err := checkCSR("name index", len(d.NameKeys), d.KeyOff, len(d.KeyIDs)); err != nil {
		return nil, err
	}
	for i := 1; i < len(d.NameKeys); i++ {
		if d.NameKeys[i] <= d.NameKeys[i-1] {
			return nil, fmt.Errorf("eks: flat graph: name keys not strictly ascending at %d", i)
		}
	}
	f := &flatGraph{
		ids: d.IDs, names: d.Names, synOff: d.SynOff, syns: d.Syns,
		upOff: d.UpOff, downOff: d.DownOff,
		upTo: d.UpTo, downTo: d.DownTo,
		upDist: d.UpDist, downDist: d.DownDist,
		upNativeEnd: d.UpNativeEnd, downNativeEnd: d.DownNativeEnd,
		nameKeys: d.NameKeys, keyOff: d.KeyOff, keyIDs: d.KeyIDs,
	}
	for _, id := range d.KeyIDs {
		if _, ok := f.node(id); !ok {
			return nil, fmt.Errorf("eks: flat graph: name index references unknown concept %d", id)
		}
	}
	if _, ok := f.node(d.Root); !ok {
		return nil, fmt.Errorf("eks: flat graph: root %d not a concept", d.Root)
	}
	return &Graph{flat: f, root: d.Root, hasRoot: true}, nil
}

// checkCSR validates a CSR offset slice: length n+1, starts at 0, ends at
// the pool length, and never decreases.
func checkCSR(what string, n int, off []int32, pool int) error {
	if len(off) != n+1 {
		return fmt.Errorf("eks: flat graph: %s offsets have length %d, want %d", what, len(off), n+1)
	}
	if n >= 0 && len(off) > 0 {
		if off[0] != 0 {
			return fmt.Errorf("eks: flat graph: %s offsets start at %d", what, off[0])
		}
		if int(off[n]) != pool {
			return fmt.Errorf("eks: flat graph: %s offsets end at %d, pool has %d", what, off[n], pool)
		}
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("eks: flat graph: %s offsets decrease at %d", what, i)
		}
	}
	return nil
}

// checkAdjacency validates one CSR direction: offsets, in-range targets, no
// self edges, distance floors (1 native, 2 shortcut), and a native/shortcut
// boundary inside each node's range.
func checkAdjacency(dir string, n int, off, to, dist, nativeEnd []int32) error {
	if len(to) != len(dist) {
		return fmt.Errorf("eks: flat graph: %s edges have %d targets, %d distances", dir, len(to), len(dist))
	}
	if err := checkCSR(dir+" edges", n, off, len(to)); err != nil {
		return err
	}
	if len(nativeEnd) != n {
		return fmt.Errorf("eks: flat graph: %s native boundaries have length %d, want %d", dir, len(nativeEnd), n)
	}
	for i := 0; i < n; i++ {
		lo, hi, ne := off[i], off[i+1], nativeEnd[i]
		if ne < lo || ne > hi {
			return fmt.Errorf("eks: flat graph: %s native boundary %d outside [%d,%d] for node %d", dir, ne, lo, hi, i)
		}
		for k := lo; k < hi; k++ {
			if to[k] < 0 || int(to[k]) >= n {
				return fmt.Errorf("eks: flat graph: %s edge target %d out of range for node %d", dir, to[k], i)
			}
			if int(to[k]) == i {
				return fmt.Errorf("eks: flat graph: self edge on node %d", i)
			}
			floor := int32(1)
			if k >= ne {
				floor = 2 // shortcut edges stand for at least two hops
			}
			if dist[k] < floor {
				return fmt.Errorf("eks: flat graph: %s edge %d->%d has distance %d, floor %d", dir, i, to[k], dist[k], floor)
			}
		}
	}
	return nil
}

// node maps a ConceptID to its dense index by binary search.
func (f *flatGraph) node(id ConceptID) (int32, bool) {
	lo, hi := 0, len(f.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(f.ids) && f.ids[lo] == id {
		return int32(lo), true
	}
	return 0, false
}

func (f *flatGraph) concept(id ConceptID) (Concept, bool) {
	i, ok := f.node(id)
	if !ok {
		return Concept{}, false
	}
	c := Concept{ID: id, Name: f.names[i]}
	if s := f.syns[f.synOff[i]:f.synOff[i+1]]; len(s) > 0 {
		c.Synonyms = s
	}
	return c, true
}

// edges reconstructs one node's []Edge view from the CSR arrays. Shortcut
// status is positional: entries at or past the native boundary.
func (f *flatGraph) edges(id ConceptID, up bool) []Edge {
	i, ok := f.node(id)
	if !ok {
		return nil
	}
	off, to, dist, nativeEnd := f.downOff, f.downTo, f.downDist, f.downNativeEnd
	if up {
		off, to, dist, nativeEnd = f.upOff, f.upTo, f.upDist, f.upNativeEnd
	}
	lo, hi := off[i], off[i+1]
	if lo == hi {
		return nil
	}
	out := make([]Edge, 0, hi-lo)
	for k := lo; k < hi; k++ {
		e := Edge{Dist: int(dist[k]), Shortcut: k >= nativeEnd[i]}
		if up {
			e.From, e.To = id, f.ids[to[k]]
		} else {
			e.From, e.To = f.ids[to[k]], id
		}
		out = append(out, e)
	}
	return out
}

// nativeNeighbors returns the sorted concept IDs across one node's native
// edge segment (Parents/Children).
func (f *flatGraph) nativeNeighbors(id ConceptID, up bool) []ConceptID {
	i, ok := f.node(id)
	if !ok {
		return nil
	}
	off, to, nativeEnd := f.downOff, f.downTo, f.downNativeEnd
	if up {
		off, to, nativeEnd = f.upOff, f.upTo, f.upNativeEnd
	}
	lo, hi := off[i], nativeEnd[i]
	if lo == hi {
		return nil
	}
	out := make([]ConceptID, 0, hi-lo)
	for k := lo; k < hi; k++ {
		out = append(out, f.ids[to[k]])
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// reachNative collects the native-edge closure of id in one direction,
// excluding id, as a ConceptID set (Ancestors/Descendants).
func (f *flatGraph) reachNative(id ConceptID, up bool) map[ConceptID]bool {
	i, ok := f.node(id)
	if !ok {
		return map[ConceptID]bool{}
	}
	off, to, nativeEnd := f.downOff, f.downTo, f.downNativeEnd
	if up {
		off, to, nativeEnd = f.upOff, f.upTo, f.upNativeEnd
	}
	out := make(map[ConceptID]bool)
	stack := []int32{i}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for k := off[cur]; k < nativeEnd[cur]; k++ {
			nb := to[k]
			if !out[f.ids[nb]] {
				out[f.ids[nb]] = true
				stack = append(stack, nb)
			}
		}
	}
	return out
}

func (f *flatGraph) edgeCount() int { return len(f.upTo) }

func (f *flatGraph) shortcutCount() int {
	n := 0
	for i := range f.upNativeEnd {
		n += int(f.upOff[i+1] - f.upNativeEnd[i])
	}
	return n
}

func (f *flatGraph) lookupName(name string) []ConceptID {
	out := f.idsForNameKey(stringutil.Normalize(name))
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (f *flatGraph) idsForNameKey(key string) []ConceptID {
	lo, hi := 0, len(f.nameKeys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.nameKeys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(f.nameKeys) || f.nameKeys[lo] != key {
		return []ConceptID{}
	}
	span := f.keyIDs[f.keyOff[lo]:f.keyOff[lo+1]]
	out := make([]ConceptID, len(span))
	copy(out, span)
	return out
}

// topologicalOrder is the flat counterpart of Graph.TopologicalOrder: Kahn
// over native down-edge indegrees. Dense node order coincides with
// ascending ConceptID order, so a min-heap of node indexes reproduces the
// map-backed deterministic order exactly.
func (f *flatGraph) topologicalOrder() ([]ConceptID, error) {
	n := len(f.ids)
	indeg := make([]int32, n)
	heap := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		indeg[i] = f.downNativeEnd[i] - f.downOff[i]
		if indeg[i] == 0 {
			heap = append(heap, int32(i))
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		nodeHeapDown(heap, i)
	}
	order := make([]ConceptID, 0, n)
	for len(heap) > 0 {
		node := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		nodeHeapDown(heap, 0)
		order = append(order, f.ids[node])
		for k := f.upOff[node]; k < f.upNativeEnd[node]; k++ {
			parent := f.upTo[k]
			indeg[parent]--
			if indeg[parent] == 0 {
				heap = append(heap, parent)
				nodeHeapUp(heap)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("eks: subsumption graph has a cycle (%d of %d concepts ordered)", len(order), n)
	}
	return order, nil
}

func nodeHeapUp(h []int32) {
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func nodeHeapDown(h []int32, i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h[right] < h[left] {
			smallest = right
		}
		if h[i] <= h[smallest] {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// validate mirrors Graph.Validate on the CSR arrays: native DAG plus
// root-reachability by one BFS over native down edges.
func (f *flatGraph) validate(root ConceptID) error {
	if _, err := f.topologicalOrder(); err != nil {
		return err
	}
	src, ok := f.node(root)
	if !ok {
		return fmt.Errorf("eks: root %d not a concept", root)
	}
	n := len(f.ids)
	reached := make([]bool, n)
	reached[src] = true
	count := 1
	stack := []int32{src}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for k := f.downOff[cur]; k < f.downNativeEnd[cur]; k++ {
			nb := f.downTo[k]
			if !reached[nb] {
				reached[nb] = true
				count++
				stack = append(stack, nb)
			}
		}
	}
	if count != n {
		for i, r := range reached {
			if !r {
				return fmt.Errorf("eks: concept %d (%q) does not reach root", f.ids[i], f.names[i])
			}
		}
	}
	return nil
}

// denseIndex adapts the flat CSR arrays into the traversal index the online
// hot paths run on. Nothing is copied: the index aliases the mapped
// sections, and ID lookups go through denseIndex.lookup's binary-search
// branch (idx stays nil).
func (f *flatGraph) denseIndex() *denseIndex {
	n := len(f.ids)
	d := &denseIndex{
		ids:           f.ids,
		upOff:         f.upOff,
		downOff:       f.downOff,
		upTo:          f.upTo,
		downTo:        f.downTo,
		upDist:        f.upDist,
		downDist:      f.downDist,
		upNativeEnd:   f.upNativeEnd,
		downNativeEnd: f.downNativeEnd,
	}
	d.scratch.New = func() any {
		return &denseScratch{
			stamp: make([]uint32, n),
			dist:  make([]int32, n),
		}
	}
	return d
}
