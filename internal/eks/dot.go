package eks

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the neighbourhood of a concept (or the whole graph when
// center is 0) in Graphviz DOT format: native subsumption edges solid,
// shortcut edges dashed with their attached distance — matching how the
// paper draws its Figure 5. Intended for debugging and documentation.
func (g *Graph) WriteDOT(w io.Writer, center ConceptID, radius int, highlight map[ConceptID]bool) error {
	include := map[ConceptID]bool{}
	if center == 0 {
		for _, id := range g.ConceptIDs() {
			include[id] = true
		}
	} else {
		if _, ok := g.Concept(center); !ok {
			return fmt.Errorf("eks: unknown center concept %d", center)
		}
		include[center] = true
		for _, nb := range g.NeighborsWithinHops(center, radius) {
			include[nb.ID] = true
		}
	}

	var b strings.Builder
	b.WriteString("digraph eks {\n")
	b.WriteString("  rankdir=BT;\n")
	b.WriteString("  node [shape=box, fontsize=10];\n")
	for _, id := range g.ConceptIDs() {
		if !include[id] {
			continue
		}
		c, _ := g.Concept(id)
		attrs := ""
		if highlight[id] {
			attrs = ", style=filled, fillcolor=lightyellow"
		}
		if id == center {
			attrs = ", style=filled, fillcolor=lightblue"
		}
		fmt.Fprintf(&b, "  n%d [label=%q%s];\n", id, c.Name, attrs)
	}
	for _, id := range g.ConceptIDs() {
		if !include[id] {
			continue
		}
		for _, e := range g.UpEdges(id) {
			if !include[e.To] {
				continue
			}
			if e.Shortcut {
				fmt.Fprintf(&b, "  n%d -> n%d [style=dashed, label=\"%d\"];\n", e.From, e.To, e.Dist)
			} else {
				fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
			}
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
