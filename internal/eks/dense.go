package eks

import (
	"sort"
	"sync"
)

// denseIndex is a frozen, allocation-lean view of the graph: concepts are
// renumbered into the dense range [0, n) in ascending ConceptID order, and
// both adjacency directions are flattened into CSR-style offset/target
// slices. Traversals run over int32 node indices with epoch-stamped
// visited/distance arrays drawn from a sync.Pool, so the online hot path
// (candidate BFS, subsumer-distance Dijkstra) neither allocates per query
// nor clears O(n) state between queries.
//
// The index is built lazily on first use after the graph stops mutating
// (Freeze builds it eagerly) and is dropped by any structural mutation.
// Once built it is immutable and safe for concurrent use.
type denseIndex struct {
	ids []ConceptID         // dense node -> ConceptID, ascending
	idx map[ConceptID]int32 // ConceptID -> dense node

	// CSR adjacency: node i's up edges are upTo[upOff[i]:upOff[i+1]] with
	// semantic distances upDist[...]; native edges precede shortcut edges
	// within a node's range so native-only scans can stop early at
	// upNativeEnd[i] (and likewise downward).
	upOff, downOff             []int32
	upTo, downTo               []int32
	upDist, downDist           []int32
	upNativeEnd, downNativeEnd []int32

	scratch sync.Pool // *denseScratch
}

// denseScratch is the reusable per-traversal state. stamp[i] == epoch marks
// node i as visited by the current traversal; bumping the epoch invalidates
// every mark in O(1). The slices are sized to the node count at build time.
type denseScratch struct {
	epoch   uint32
	stamp   []uint32
	dist    []int32
	queue   []int32 // BFS frontier / scratch node list
	touched []int32 // nodes reached by the current traversal
	heap    []heapNode
}

// heapNode is a binary-heap entry for the dense Dijkstra.
type heapNode struct {
	dist int32
	node int32
}

// next prepares the scratch for a new traversal.
func (s *denseScratch) next() {
	s.epoch++
	if s.epoch == 0 { // wrapped: clear stamps once every 2^32 traversals
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	s.queue = s.queue[:0]
	s.touched = s.touched[:0]
	s.heap = s.heap[:0]
}

// denseIdx returns the built index, building it under the mutex when
// missing. Concurrent readers share one index; any mutation drops it.
func (g *Graph) denseIdx() *denseIndex {
	if d := g.dense.Load(); d != nil {
		return d
	}
	g.denseMu.Lock()
	defer g.denseMu.Unlock()
	if d := g.dense.Load(); d != nil {
		return d
	}
	var d *denseIndex
	if g.flat != nil {
		d = g.flat.denseIndex()
	} else {
		d = buildDenseIndex(g)
	}
	g.dense.Store(d)
	return d
}

// invalidateDense drops the frozen view after a structural mutation.
func (g *Graph) invalidateDense() { g.dense.Store(nil) }

// Freeze eagerly builds the dense traversal index. Calling it is optional —
// the index is built lazily on first use — but building it at a known point
// (e.g. right after offline customization) keeps first-query latency flat.
func (g *Graph) Freeze() { g.denseIdx() }

func buildDenseIndex(g *Graph) *denseIndex {
	n := len(g.concepts)
	d := &denseIndex{
		ids:           g.ConceptIDs(),
		idx:           make(map[ConceptID]int32, n),
		upOff:         make([]int32, n+1),
		downOff:       make([]int32, n+1),
		upNativeEnd:   make([]int32, n),
		downNativeEnd: make([]int32, n),
	}
	for i, id := range d.ids {
		d.idx[id] = int32(i)
	}
	upCount, downCount := 0, 0
	for i, id := range d.ids {
		d.upOff[i+1] = d.upOff[i] + int32(len(g.up[id]))
		d.downOff[i+1] = d.downOff[i] + int32(len(g.down[id]))
		upCount += len(g.up[id])
		downCount += len(g.down[id])
	}
	d.upTo = make([]int32, upCount)
	d.upDist = make([]int32, upCount)
	d.downTo = make([]int32, downCount)
	d.downDist = make([]int32, downCount)
	fill := func(i int, edges []Edge, off []int32, to, dist []int32, other func(Edge) ConceptID) int32 {
		pos := off[i]
		for _, e := range edges { // native edges first
			if !e.Shortcut {
				to[pos] = d.idx[other(e)]
				dist[pos] = int32(e.Dist)
				pos++
			}
		}
		nativeEnd := pos
		for _, e := range edges {
			if e.Shortcut {
				to[pos] = d.idx[other(e)]
				dist[pos] = int32(e.Dist)
				pos++
			}
		}
		return nativeEnd
	}
	for i, id := range d.ids {
		d.upNativeEnd[i] = fill(i, g.up[id], d.upOff, d.upTo, d.upDist, func(e Edge) ConceptID { return e.To })
		d.downNativeEnd[i] = fill(i, g.down[id], d.downOff, d.downTo, d.downDist, func(e Edge) ConceptID { return e.From })
	}
	d.scratch.New = func() any {
		return &denseScratch{
			stamp: make([]uint32, n),
			dist:  make([]int32, n),
		}
	}
	return d
}

// lookup maps a ConceptID to its dense node index. Map-built indexes use
// the hash; flat-mapped indexes carry no map and binary-search the
// ascending ID slice instead, so opening a flat bundle never materializes
// a per-concept map.
func (d *denseIndex) lookup(id ConceptID) (int32, bool) {
	if d.idx != nil {
		i, ok := d.idx[id]
		return i, ok
	}
	lo, hi := 0, len(d.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if d.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(d.ids) && d.ids[lo] == id {
		return int32(lo), true
	}
	return 0, false
}

func (d *denseIndex) getScratch() *denseScratch {
	s := d.scratch.Get().(*denseScratch)
	s.next()
	return s
}

func (d *denseIndex) putScratch(s *denseScratch) { d.scratch.Put(s) }

// bfsWithin visits every node within radius hops of src (excluding src),
// treating every edge — native or shortcut, either direction — as one hop,
// appending the reached nodes to s.touched and recording hop counts in
// s.dist. This is the candidate-gathering metric of Algorithm 2.
func (d *denseIndex) bfsWithin(src int32, radius int, s *denseScratch) {
	s.stamp[src] = s.epoch
	s.dist[src] = 0
	s.queue = append(s.queue, src)
	head := 0
	for head < len(s.queue) {
		cur := s.queue[head]
		head++
		hops := s.dist[cur] + 1
		if hops > int32(radius) {
			break
		}
		visit := func(nb int32) {
			if s.stamp[nb] != s.epoch {
				s.stamp[nb] = s.epoch
				s.dist[nb] = hops
				s.queue = append(s.queue, nb)
				s.touched = append(s.touched, nb)
			}
		}
		for _, nb := range d.upTo[d.upOff[cur]:d.upOff[cur+1]] {
			visit(nb)
		}
		for _, nb := range d.downTo[d.downOff[cur]:d.downOff[cur+1]] {
			visit(nb)
		}
	}
}

// dijkstraUp computes the minimal upward semantic distance from src to
// every subsumer of src (src itself at 0), following native and shortcut
// edges upward with their attached distances. Reached nodes (including src)
// land in s.touched with distances in s.dist.
func (d *denseIndex) dijkstraUp(src int32, s *denseScratch) {
	s.stamp[src] = s.epoch
	s.dist[src] = 0
	s.touched = append(s.touched, src)
	s.heap = append(s.heap, heapNode{dist: 0, node: src})
	for len(s.heap) > 0 {
		top := s.heap[0]
		last := len(s.heap) - 1
		s.heap[0] = s.heap[last]
		s.heap = s.heap[:last]
		if len(s.heap) > 0 {
			siftDown(s.heap)
		}
		if top.dist > s.dist[top.node] {
			continue // stale entry
		}
		for k := d.upOff[top.node]; k < d.upOff[top.node+1]; k++ {
			nb := d.upTo[k]
			nd := top.dist + d.upDist[k]
			if s.stamp[nb] != s.epoch {
				s.stamp[nb] = s.epoch
				s.dist[nb] = nd
				s.touched = append(s.touched, nb)
				s.heap = append(s.heap, heapNode{dist: nd, node: nb})
				siftUp(s.heap)
			} else if nd < s.dist[nb] {
				s.dist[nb] = nd
				s.heap = append(s.heap, heapNode{dist: nd, node: nb})
				siftUp(s.heap)
			}
		}
	}
}

func siftUp(h []heapNode) {
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].dist <= h[i].dist {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func siftDown(h []heapNode) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && h[l].dist < h[min].dist {
			min = l
		}
		if r < len(h) && h[r].dist < h[min].dist {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// countDescendants walks native down edges from src and counts the distinct
// nodes reached, excluding src.
func (d *denseIndex) countDescendants(src int32, s *denseScratch) int {
	s.stamp[src] = s.epoch
	s.queue = append(s.queue, src)
	count := 0
	for len(s.queue) > 0 {
		cur := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		for k := d.downOff[cur]; k < d.downNativeEnd[cur]; k++ {
			nb := d.downTo[k]
			if s.stamp[nb] != s.epoch {
				s.stamp[nb] = s.epoch
				s.queue = append(s.queue, nb)
				count++
			}
		}
	}
	return count
}

// SubsumerVec is an immutable vector of upward semantic distances from one
// concept to each of its subsumers (the concept itself at distance 0),
// sorted by ascending ConceptID. It is the flat counterpart of
// SubsumerDistances, shareable across goroutines and cacheable without
// copying; callers must not mutate it.
type SubsumerVec struct {
	ids  []ConceptID
	dist []int32
}

// Len returns the number of subsumers (including the concept itself).
func (v SubsumerVec) Len() int { return len(v.ids) }

// At returns the i-th (ConceptID, distance) pair in ascending ID order.
func (v SubsumerVec) At(i int) (ConceptID, int) { return v.ids[i], int(v.dist[i]) }

// SubsumerVec computes the subsumer-distance vector of id. ok is false for
// an unknown concept.
func (g *Graph) SubsumerVec(id ConceptID) (SubsumerVec, bool) {
	d := g.denseIdx()
	src, ok := d.lookup(id)
	if !ok {
		return SubsumerVec{}, false
	}
	s := d.getScratch()
	d.dijkstraUp(src, s)
	sort.Slice(s.touched, func(i, j int) bool { return s.touched[i] < s.touched[j] })
	v := SubsumerVec{
		ids:  make([]ConceptID, len(s.touched)),
		dist: make([]int32, len(s.touched)),
	}
	for i, node := range s.touched {
		v.ids[i] = d.ids[node]
		v.dist[i] = s.dist[node]
	}
	d.putScratch(s)
	return v, true
}

// CommonSubsumers merge-joins two subsumer vectors, calling visit for every
// concept present in both with the respective distances. Both vectors are
// ID-ascending, so the join is a linear merge with no allocation.
func CommonSubsumers(a, b SubsumerVec, visit func(c ConceptID, da, db int)) {
	i, j := 0, 0
	for i < len(a.ids) && j < len(b.ids) {
		switch {
		case a.ids[i] < b.ids[j]:
			i++
		case a.ids[i] > b.ids[j]:
			j++
		default:
			visit(a.ids[i], int(a.dist[i]), int(b.dist[j]))
			i++
			j++
		}
	}
}
