package eks

import (
	"container/heap"
	"sort"
)

// Neighbor is a concept found within some radius of a source concept,
// together with its hop distance (application metric: every edge counts 1).
type Neighbor struct {
	ID   ConceptID
	Hops int
}

// NeighborsWithinHops returns every concept, excluding from itself, whose
// hop distance from `from` is at most radius, treating every edge — native
// or shortcut, in either direction — as one hop. This is the candidate
// gathering step of Algorithm 2 (line 2). Results are ordered by increasing
// hop count, then by ID. The traversal runs on the dense index: the only
// allocation is the result slice.
func (g *Graph) NeighborsWithinHops(from ConceptID, radius int) []Neighbor {
	if radius < 0 {
		return nil
	}
	d := g.denseIdx()
	src, ok := d.lookup(from)
	if !ok {
		return nil
	}
	s := d.getScratch()
	d.bfsWithin(src, radius, s)
	out := make([]Neighbor, len(s.touched))
	for i, node := range s.touched {
		out[i] = Neighbor{ID: d.ids[node], Hops: int(s.dist[node])}
	}
	d.putScratch(s)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hops != out[j].Hops {
			return out[i].Hops < out[j].Hops
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// legacyNeighborsWithinHops is the original map-based BFS, retained as the
// reference implementation for the dense-kernel equivalence tests.
func (g *Graph) legacyNeighborsWithinHops(from ConceptID, radius int) []Neighbor {
	if _, ok := g.concepts[from]; !ok || radius < 0 {
		return nil
	}
	dist := map[ConceptID]int{from: 0}
	frontier := []ConceptID{from}
	var out []Neighbor
	for hops := 1; hops <= radius && len(frontier) > 0; hops++ {
		var next []ConceptID
		for _, cur := range frontier {
			for _, e := range g.up[cur] {
				if _, seen := dist[e.To]; !seen {
					dist[e.To] = hops
					next = append(next, e.To)
					out = append(out, Neighbor{ID: e.To, Hops: hops})
				}
			}
			for _, e := range g.down[cur] {
				if _, seen := dist[e.From]; !seen {
					dist[e.From] = hops
					next = append(next, e.From)
					out = append(out, Neighbor{ID: e.From, Hops: hops})
				}
			}
		}
		frontier = next
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hops != out[j].Hops {
			return out[i].Hops < out[j].Hops
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// has reports whether id is a concept under either backing.
func (g *Graph) has(id ConceptID) bool {
	if g.flat != nil {
		_, ok := g.flat.node(id)
		return ok
	}
	_, ok := g.concepts[id]
	return ok
}

// upEdgesRef returns id's upward edges without copying on the map backing;
// the flat backing synthesizes the slice from its CSR sections.
func (g *Graph) upEdgesRef(id ConceptID) []Edge {
	if g.flat != nil {
		return g.flat.edges(id, true)
	}
	return g.up[id]
}

// downEdgesRef is the downward counterpart of upEdgesRef.
func (g *Graph) downEdgesRef(id ConceptID) []Edge {
	if g.flat != nil {
		return g.flat.edges(id, false)
	}
	return g.down[id]
}

// Step is one original subsumption hop along a path between two concepts.
// Generalization is true when the hop follows the subsumption direction
// (child to parent); false when it moves against it (specialization).
type Step struct {
	Generalization bool
}

// Path is a sequence of original hops from a source concept to a target
// concept. Its length is the semantic distance |D| of Equation 4; traversing
// a shortcut edge of attached distance d contributes d identical hops, so
// paths are invariant under the offline customization.
type Path struct {
	Steps []Step
}

// Len returns the semantic distance |D|.
func (p Path) Len() int { return len(p.Steps) }

// Generalizations returns how many hops of the path are generalizations.
func (p Path) Generalizations() int {
	n := 0
	for _, s := range p.Steps {
		if s.Generalization {
			n++
		}
	}
	return n
}

// pqItem is a priority-queue entry for Dijkstra over the semantic metric.
type pqItem struct {
	id   ConceptID
	dist int
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].id < q[j].id
}
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestSemanticPath returns a minimum-semantic-distance path from `from`
// to `to`, expanding shortcut edges into their attached number of hops. The
// boolean result is false when the concepts are disconnected or unknown.
//
// Among equal-length paths the one that is lexicographically smallest by
// (predecessor ID) is returned, making the result deterministic.
func (g *Graph) ShortestSemanticPath(from, to ConceptID) (Path, bool) {
	if !g.has(from) || !g.has(to) {
		return Path{}, false
	}
	if from == to {
		return Path{}, true
	}
	type prevEdge struct {
		prev ConceptID
		gen  bool // direction of the hops contributed by this edge
		dist int  // hops contributed
	}
	distTo := map[ConceptID]int{from: 0}
	prev := map[ConceptID]prevEdge{}
	h := &pq{{id: from, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.dist > distTo[it.id] {
			continue
		}
		if it.id == to {
			break
		}
		relax := func(nb ConceptID, gen bool, w int) {
			nd := it.dist + w
			old, seen := distTo[nb]
			if !seen || nd < old || (nd == old && it.id < prev[nb].prev) {
				distTo[nb] = nd
				prev[nb] = prevEdge{prev: it.id, gen: gen, dist: w}
				heap.Push(h, pqItem{id: nb, dist: nd})
			}
		}
		for _, e := range g.upEdgesRef(it.id) {
			relax(e.To, true, e.Dist)
		}
		for _, e := range g.downEdgesRef(it.id) {
			relax(e.From, false, e.Dist)
		}
	}
	if _, ok := distTo[to]; !ok {
		return Path{}, false
	}
	// Reconstruct, expanding each edge into its attached number of hops.
	var rev []Step
	cur := to
	for cur != from {
		pe := prev[cur]
		for i := 0; i < pe.dist; i++ {
			rev = append(rev, Step{Generalization: pe.gen})
		}
		cur = pe.prev
	}
	steps := make([]Step, len(rev))
	for i := range rev {
		steps[i] = rev[len(rev)-1-i]
	}
	return Path{Steps: steps}, true
}

// PathEdge is one traversed edge of an explained relaxation path: the
// concepts it connects and the original (pre-customization) semantic
// distance it carries — 1 for a native subsumption, the attached distance
// for a shortcut.
type PathEdge struct {
	From ConceptID
	To   ConceptID
	Dist int
}

// UpPathTo returns the minimum-semantic-distance upward path from `from` to
// one of its subsumers `to`, as the sequence of edges traversed (native or
// shortcut, each carrying its original distance). Only upward edges are
// followed, so the result is the generalization half of the canonical
// up-then-down path the similarity measure scores. ok is false when `to` is
// not an upward-reachable subsumer of `from`.
//
// Among equal-length paths the one that is lexicographically smallest by
// predecessor ID is returned, the same tie-break ShortestSemanticPath uses,
// making the result deterministic across backings and runs.
func (g *Graph) UpPathTo(from, to ConceptID) ([]PathEdge, bool) {
	if !g.has(from) || !g.has(to) {
		return nil, false
	}
	if from == to {
		return nil, true
	}
	type prevEdge struct {
		prev ConceptID
		dist int
	}
	distTo := map[ConceptID]int{from: 0}
	prev := map[ConceptID]prevEdge{}
	h := &pq{{id: from, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.dist > distTo[it.id] {
			continue
		}
		if it.id == to {
			break
		}
		for _, e := range g.upEdgesRef(it.id) {
			nd := it.dist + e.Dist
			old, seen := distTo[e.To]
			if !seen || nd < old || (nd == old && it.id < prev[e.To].prev) {
				distTo[e.To] = nd
				prev[e.To] = prevEdge{prev: it.id, dist: e.Dist}
				heap.Push(h, pqItem{id: e.To, dist: nd})
			}
		}
	}
	if _, ok := distTo[to]; !ok {
		return nil, false
	}
	var rev []PathEdge
	cur := to
	for cur != from {
		pe := prev[cur]
		rev = append(rev, PathEdge{From: pe.prev, To: cur, Dist: pe.dist})
		cur = pe.prev
	}
	out := make([]PathEdge, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out, true
}

// SemanticDistance returns the length of the shortest semantic path between
// a and b, and false when disconnected.
func (g *Graph) SemanticDistance(a, b ConceptID) (int, bool) {
	p, ok := g.ShortestSemanticPath(a, b)
	if !ok {
		return 0, false
	}
	return p.Len(), true
}

// LCSResult is the outcome of a least-common-subsumer computation: the set
// of minimal common subsumers (more than one only on ties) and the combined
// semantic distance from the pair to each of them.
type LCSResult struct {
	IDs      []ConceptID
	Combined int // distUp(a, lcs) + distUp(b, lcs)
}

// LCS returns the least common subsumer(s) of a and b per the paper's
// footnote 1: among all common subsumers (a concept C with a ⊑* C and
// b ⊑* C, where a concept subsumes itself), choose those with the shortest
// combined upward path to the pair; all ties are returned so the caller can
// average their information content. ok is false when a and b share no
// subsumer (cannot happen on a validated rooted graph).
func (g *Graph) LCS(a, b ConceptID) (LCSResult, bool) {
	da := g.upDistances(a)
	db := g.upDistances(b)
	if da == nil || db == nil {
		return LCSResult{}, false
	}
	best := -1
	var ids []ConceptID
	for id, x := range da {
		y, ok := db[id]
		if !ok {
			continue
		}
		sum := x + y
		switch {
		case best == -1 || sum < best:
			best = sum
			ids = ids[:0]
			ids = append(ids, id)
		case sum == best:
			ids = append(ids, id)
		}
	}
	if best == -1 {
		return LCSResult{}, false
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return LCSResult{IDs: ids, Combined: best}, true
}

// upDistances returns the minimal upward semantic distance from id to every
// subsumer of id (including id itself at distance 0), following native and
// shortcut edges upward only. The Dijkstra runs on the dense index; only
// the result map is allocated.
func (g *Graph) upDistances(id ConceptID) map[ConceptID]int {
	d := g.denseIdx()
	src, ok := d.lookup(id)
	if !ok {
		return nil
	}
	s := d.getScratch()
	d.dijkstraUp(src, s)
	dist := make(map[ConceptID]int, len(s.touched))
	for _, node := range s.touched {
		dist[d.ids[node]] = int(s.dist[node])
	}
	d.putScratch(s)
	return dist
}

// legacyUpDistances is the original map-and-heap Dijkstra, retained as the
// reference implementation for the dense-kernel equivalence tests.
func (g *Graph) legacyUpDistances(id ConceptID) map[ConceptID]int {
	if _, ok := g.concepts[id]; !ok {
		return nil
	}
	dist := map[ConceptID]int{id: 0}
	h := &pq{{id: id, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.dist > dist[it.id] {
			continue
		}
		for _, e := range g.up[it.id] {
			nd := it.dist + e.Dist
			if old, seen := dist[e.To]; !seen || nd < old {
				dist[e.To] = nd
				heap.Push(h, pqItem{id: e.To, dist: nd})
			}
		}
	}
	return dist
}

// SubsumerDistances returns the minimal upward semantic distance from id to
// every subsumer of id, including id itself at distance 0. Shortcut edges
// participate with their attached distances. It returns nil for an unknown
// concept. This is the workhorse of canonical-path similarity: the shortest
// up-then-down path between a and b runs through the common subsumer
// minimizing SubsumerDistances(a)[c] + SubsumerDistances(b)[c].
func (g *Graph) SubsumerDistances(id ConceptID) map[ConceptID]int {
	return g.upDistances(id)
}

// UpDistances returns the minimal upward semantic distance from id to every
// subsumer of id, excluding id itself. Shortcut edges participate with
// their attached distances, so results are invariant under customization.
// It returns nil for an unknown concept.
func (g *Graph) UpDistances(id ConceptID) map[ConceptID]int {
	d := g.upDistances(id)
	if d == nil {
		return nil
	}
	delete(d, id)
	return d
}

// HasEdge reports whether any edge (native or shortcut) runs from child to
// parent.
func (g *Graph) HasEdge(child, parent ConceptID) bool {
	for _, e := range g.upEdgesRef(child) {
		if e.To == parent {
			return true
		}
	}
	return false
}

// DepthFromRoot returns the minimal semantic distance from the root down to
// id (equivalently, from id up to the root). ok is false when no root is
// set or id does not reach it.
func (g *Graph) DepthFromRoot(id ConceptID) (int, bool) {
	if !g.hasRoot {
		return 0, false
	}
	d, ok := g.upDistances(id)[g.root]
	return d, ok
}
