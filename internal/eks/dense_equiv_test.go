package eks_test

// Equivalence tests: the dense CSR kernel must return exactly the same
// neighbor sets, subsumer distances, and descendant counts as the retained
// legacy map-based traversals — on the paper-figure fixtures and on seeded
// synthetic worlds up to ~10^4 concepts.

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"medrelax/internal/eks"
	"medrelax/internal/synthkb"
)

// figure5Chain builds the paper's Figure 5 CKD chain plus the customization
// shortcut, the canonical mixed native/shortcut fixture.
func figure5Chain(t *testing.T) *eks.Graph {
	t.Helper()
	g := eks.New()
	for _, c := range []eks.Concept{
		{ID: 1, Name: "clinical finding"},
		{ID: 2, Name: "kidney disease"},
		{ID: 3, Name: "chronic kidney disease"},
		{ID: 4, Name: "chronic kidney disease stage 1"},
		{ID: 5, Name: "chronic kidney disease stage 1 due to hypertension"},
	} {
		if err := g.AddConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]eks.ConceptID{{2, 1}, {3, 2}, {4, 3}, {5, 4}} {
		if err := g.AddSubsumption(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetRoot(1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddShortcutEdge(5, 2, 3); err != nil {
		t.Fatal(err)
	}
	return g
}

// figure4Diamond builds a multi-parent DAG in the shape of the paper's
// Figure 4 neighborhood: two upward paths of different lengths plus a
// shortcut, so minimal distances disagree with naive path counting.
func figure4Diamond(t *testing.T) *eks.Graph {
	t.Helper()
	g := eks.New()
	names := map[eks.ConceptID]string{
		1: "root", 2: "disorder", 3: "finding by site",
		4: "kidney disorder", 5: "hypertension", 6: "hypertensive kidney disease",
		7: "ckd due to hypertension",
	}
	for id, n := range names {
		if err := g.AddConcept(eks.Concept{ID: id, Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]eks.ConceptID{
		{2, 1}, {3, 1}, {4, 2}, {4, 3}, {5, 2}, {6, 4}, {6, 5}, {7, 6},
	} {
		if err := g.AddSubsumption(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetRoot(1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddShortcutEdge(7, 4, 2); err != nil {
		t.Fatal(err)
	}
	return g
}

func synthWorld(t *testing.T, seed int64, conditionsPerPair int) *eks.Graph {
	t.Helper()
	w, err := synthkb.Generate(synthkb.Config{Seed: seed, ConditionsPerPair: conditionsPerPair})
	if err != nil {
		t.Fatal(err)
	}
	return w.Graph
}

func neighborKey(nbs []eks.Neighbor) map[eks.ConceptID]int {
	m := make(map[eks.ConceptID]int, len(nbs))
	for _, nb := range nbs {
		m[nb.ID] = nb.Hops
	}
	return m
}

// checkGraphEquivalence cross-checks every dense-kernel entry point against
// its legacy counterpart for the given source concepts.
func checkGraphEquivalence(t *testing.T, g *eks.Graph, ids []eks.ConceptID, radii []int) {
	t.Helper()
	for _, id := range ids {
		for _, r := range radii {
			got := g.NeighborsWithinHops(id, r)
			want := g.LegacyNeighborsWithinHops(id, r)
			if len(got) != len(want) || !reflect.DeepEqual(neighborKey(got), neighborKey(want)) {
				t.Fatalf("NeighborsWithinHops(%d, %d): dense %v != legacy %v", id, r, got, want)
			}
			if !sort.SliceIsSorted(got, func(i, j int) bool {
				if got[i].Hops != got[j].Hops {
					return got[i].Hops < got[j].Hops
				}
				return got[i].ID < got[j].ID
			}) {
				t.Fatalf("NeighborsWithinHops(%d, %d): dense result not sorted: %v", id, r, got)
			}
		}

		gotUp := g.SubsumerDistances(id)
		wantUp := g.LegacyUpDistances(id)
		if !reflect.DeepEqual(gotUp, wantUp) {
			t.Fatalf("SubsumerDistances(%d): dense %v != legacy %v", id, gotUp, wantUp)
		}

		vec, ok := g.SubsumerVec(id)
		if !ok {
			t.Fatalf("SubsumerVec(%d): missing", id)
		}
		if vec.Len() != len(wantUp) {
			t.Fatalf("SubsumerVec(%d): %d entries, legacy has %d", id, vec.Len(), len(wantUp))
		}
		prev := eks.ConceptID(-1 << 62)
		for i := 0; i < vec.Len(); i++ {
			c, d := vec.At(i)
			if c <= prev {
				t.Fatalf("SubsumerVec(%d): ids not strictly ascending at %d", id, i)
			}
			prev = c
			if wd, ok := wantUp[c]; !ok || wd != d {
				t.Fatalf("SubsumerVec(%d): entry (%d,%d) disagrees with legacy %v", id, c, d, wantUp)
			}
		}

		if got, want := g.DescendantCount(id), len(g.Descendants(id)); got != want {
			t.Fatalf("DescendantCount(%d): dense %d != legacy %d", id, got, want)
		}
	}

	// CommonSubsumers must visit exactly the intersection of the legacy maps.
	for i := 0; i+1 < len(ids) && i < 8; i += 2 {
		a, b := ids[i], ids[i+1]
		va, _ := g.SubsumerVec(a)
		vb, _ := g.SubsumerVec(b)
		ma, mb := g.LegacyUpDistances(a), g.LegacyUpDistances(b)
		visited := map[eks.ConceptID][2]int{}
		eks.CommonSubsumers(va, vb, func(c eks.ConceptID, da, db int) {
			visited[c] = [2]int{da, db}
		})
		for c, da := range ma {
			db, shared := mb[c]
			got, hit := visited[c]
			if shared != hit {
				t.Fatalf("CommonSubsumers(%d,%d): concept %d shared=%v visited=%v", a, b, c, shared, hit)
			}
			if shared && (got[0] != da || got[1] != db) {
				t.Fatalf("CommonSubsumers(%d,%d): concept %d dists %v, legacy (%d,%d)", a, b, c, got, da, db)
			}
		}
		for c := range visited {
			if _, ok := ma[c]; !ok {
				t.Fatalf("CommonSubsumers(%d,%d): visited %d not a subsumer of %d", a, b, c, a)
			}
		}
	}
}

func TestDenseEquivalenceFigureFixtures(t *testing.T) {
	for name, build := range map[string]func(*testing.T) *eks.Graph{
		"figure5chain":   figure5Chain,
		"figure4diamond": figure4Diamond,
	} {
		t.Run(name, func(t *testing.T) {
			g := build(t)
			checkGraphEquivalence(t, g, g.ConceptIDs(), []int{0, 1, 2, 3, 10})
		})
	}
}

func TestDenseEquivalenceSmallSynthWorld(t *testing.T) {
	g := synthWorld(t, 11, 2)
	checkGraphEquivalence(t, g, g.ConceptIDs(), []int{1, 2, 3})
}

// growToConcepts deterministically appends leaf variants under existing
// finding concepts until the graph holds at least n concepts; the generator
// itself saturates near 6k (its organ vocabulary is finite), so the 10^4
// scale point is reached by this extension layer.
func growToConcepts(t *testing.T, g *eks.Graph, w *synthkb.World, n int) {
	t.Helper()
	next := eks.ConceptID(1)
	for _, id := range g.ConceptIDs() {
		if id >= next {
			next = id + 1
		}
	}
	for i := 0; g.Len() < n; i++ {
		parent := w.Findings[i%len(w.Findings)]
		if err := g.AddConcept(eks.Concept{ID: next, Name: fmt.Sprintf("variant %d of concept %d", i, parent)}); err != nil {
			t.Fatal(err)
		}
		if err := g.AddSubsumption(next, parent); err != nil {
			t.Fatal(err)
		}
		next++
	}
}

// TestDenseEquivalenceLargeSynthWorld cross-checks on a seeded world grown
// to 10^4 concepts, sampling sources to keep the legacy side tractable.
func TestDenseEquivalenceLargeSynthWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("large synthetic world skipped in -short mode")
	}
	w, err := synthkb.Generate(synthkb.Config{Seed: 42, ConditionsPerPair: 20})
	if err != nil {
		t.Fatal(err)
	}
	g := w.Graph
	growToConcepts(t, g, w, 10000)
	n := g.Len()
	if n < 10000 {
		t.Fatalf("world too small for the scale test: %d concepts", n)
	}
	t.Logf("world: %d concepts, %d edges", n, g.EdgeCount())
	ids := g.ConceptIDs()
	var sample []eks.ConceptID
	for i := 0; i < len(ids); i += 37 {
		sample = append(sample, ids[i])
	}
	checkGraphEquivalence(t, g, sample, []int{1, 3})
}

// TestDenseInvalidationOnMutation guards the cache-invalidation path: a
// graph mutation after the dense index was built must be reflected in
// subsequent queries.
func TestDenseInvalidationOnMutation(t *testing.T) {
	g := figure5Chain(t)
	g.Freeze()
	before := len(g.NeighborsWithinHops(5, 1))
	if err := g.AddConcept(eks.Concept{ID: 6, Name: "ckd stage 1 variant"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddSubsumption(6, 4); err != nil {
		t.Fatal(err)
	}
	after := g.NeighborsWithinHops(5, 1)
	if len(after) != before {
		// 6 is two hops from 5 (via 4), so radius-1 counts must not change…
		t.Fatalf("radius-1 neighbors changed: %d -> %d", before, len(after))
	}
	// …but radius-2 must now see it.
	found := false
	for _, nb := range g.NeighborsWithinHops(5, 2) {
		if nb.ID == 6 {
			found = true
		}
	}
	if !found {
		t.Fatal("dense index not invalidated: new concept invisible at radius 2")
	}
	checkGraphEquivalence(t, g, g.ConceptIDs(), []int{1, 2, 3})
}
