package eks_test

import (
	"fmt"

	"medrelax/internal/eks"
)

// Example builds the paper's Figure 5 chain, customizes it with a shortcut
// edge, and shows that hop distance shrinks while semantic distance is
// preserved.
func Example() {
	g := eks.New()
	concepts := []eks.Concept{
		{ID: 1, Name: "clinical finding"},
		{ID: 2, Name: "kidney disease"},
		{ID: 3, Name: "chronic kidney disease"},
		{ID: 4, Name: "chronic kidney disease stage 1"},
		{ID: 5, Name: "chronic kidney disease stage 1 due to hypertension"},
	}
	for _, c := range concepts {
		if err := g.AddConcept(c); err != nil {
			panic(err)
		}
	}
	for _, e := range [][2]eks.ConceptID{{2, 1}, {3, 2}, {4, 3}, {5, 4}} {
		if err := g.AddSubsumption(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	if err := g.SetRoot(1); err != nil {
		panic(err)
	}

	before, _ := g.SemanticDistance(5, 2)
	if err := g.AddShortcutEdge(5, 2, before); err != nil {
		panic(err)
	}
	hops := 0
	for _, nb := range g.NeighborsWithinHops(5, 1) {
		if nb.ID == 2 {
			hops = nb.Hops
		}
	}
	after, _ := g.SemanticDistance(5, 2)
	fmt.Printf("hops after customization: %d, semantic distance: %d -> %d\n", hops, before, after)
	// Output: hops after customization: 1, semantic distance: 3 -> 3
}

// ExampleGraph_LCS shows the least-common-subsumer lookup the similarity
// measure is built on.
func ExampleGraph_LCS() {
	g := eks.New()
	for _, c := range []eks.Concept{
		{ID: 1, Name: "finding"}, {ID: 2, Name: "pain"},
		{ID: 3, Name: "headache"}, {ID: 4, Name: "back pain"},
	} {
		if err := g.AddConcept(c); err != nil {
			panic(err)
		}
	}
	for _, e := range [][2]eks.ConceptID{{2, 1}, {3, 2}, {4, 2}} {
		if err := g.AddSubsumption(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	if err := g.SetRoot(1); err != nil {
		panic(err)
	}
	res, _ := g.LCS(3, 4)
	c, _ := g.Concept(res.IDs[0])
	fmt.Printf("lcs(headache, back pain) = %s at combined distance %d\n", c.Name, res.Combined)
	// Output: lcs(headache, back pain) = pain at combined distance 2
}
