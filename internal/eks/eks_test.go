package eks

import (
	"math/rand"
	"strings"
	"testing"
)

// buildDiamond returns a small diamond-shaped DAG:
//
//	  1 (root)
//	 / \
//	2   3
//	 \ / \
//	  4   5
//	  |
//	  6
func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	names := map[ConceptID]string{
		1: "thing", 2: "left", 3: "right", 4: "join", 5: "leaf-right", 6: "deep",
	}
	for id, n := range names {
		if err := g.AddConcept(Concept{ID: id, Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	edges := [][2]ConceptID{{2, 1}, {3, 1}, {4, 2}, {4, 3}, {5, 3}, {6, 4}}
	for _, e := range edges {
		if err := g.AddSubsumption(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetRoot(1); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAddConceptErrors(t *testing.T) {
	g := New()
	if err := g.AddConcept(Concept{ID: 1, Name: ""}); err == nil {
		t.Error("empty name must be rejected")
	}
	if err := g.AddConcept(Concept{ID: 1, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddConcept(Concept{ID: 1, Name: "b"}); err == nil {
		t.Error("duplicate id must be rejected")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New()
	if err := g.AddConcept(Concept{ID: 1, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddConcept(Concept{ID: 2, Name: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddSubsumption(1, 1); err == nil {
		t.Error("self edge must be rejected")
	}
	if err := g.AddSubsumption(1, 3); err == nil {
		t.Error("unknown target must be rejected")
	}
	if err := g.AddSubsumption(3, 1); err == nil {
		t.Error("unknown source must be rejected")
	}
	if err := g.AddSubsumption(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddSubsumption(1, 2); err == nil {
		t.Error("duplicate edge must be rejected")
	}
	if err := g.AddShortcutEdge(1, 2, 1); err == nil {
		t.Error("shortcut with dist<2 must be rejected")
	}
}

func TestLookupName(t *testing.T) {
	g := New()
	if err := g.AddConcept(Concept{ID: 10, Name: "Myocardial Infarction", Synonyms: []string{"heart attack", "MI"}}); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"myocardial infarction", "Heart Attack", "  mi "} {
		ids := g.LookupName(q)
		if len(ids) != 1 || ids[0] != 10 {
			t.Errorf("LookupName(%q) = %v, want [10]", q, ids)
		}
	}
	if got := g.LookupName("stroke"); len(got) != 0 {
		t.Errorf("LookupName(stroke) = %v, want empty", got)
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := buildDiamond(t)
	anc := g.Ancestors(6)
	for _, want := range []ConceptID{4, 2, 3, 1} {
		if !anc[want] {
			t.Errorf("Ancestors(6) missing %d", want)
		}
	}
	if anc[6] || anc[5] {
		t.Error("Ancestors(6) must exclude self and non-ancestors")
	}
	desc := g.Descendants(3)
	for _, want := range []ConceptID{4, 5, 6} {
		if !desc[want] {
			t.Errorf("Descendants(3) missing %d", want)
		}
	}
	if desc[2] || desc[3] {
		t.Error("Descendants(3) must exclude self and siblings")
	}
	if got := g.DescendantCount(1); got != 5 {
		t.Errorf("DescendantCount(root) = %d, want 5", got)
	}
}

func TestTopologicalOrder(t *testing.T) {
	g := buildDiamond(t)
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != g.Len() {
		t.Fatalf("order has %d concepts, want %d", len(order), g.Len())
	}
	pos := make(map[ConceptID]int)
	for i, id := range order {
		pos[id] = i
	}
	// children before parents
	for _, e := range [][2]ConceptID{{2, 1}, {3, 1}, {4, 2}, {4, 3}, {5, 3}, {6, 4}} {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("child %d not before parent %d in %v", e[0], e[1], order)
		}
	}
}

func TestTopologicalOrderCycle(t *testing.T) {
	g := New()
	for id := ConceptID(1); id <= 3; id++ {
		if err := g.AddConcept(Concept{ID: id, Name: string(rune('a' + id))}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]ConceptID{{1, 2}, {2, 3}, {3, 1}} {
		if err := g.AddSubsumption(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.TopologicalOrder(); err == nil {
		t.Error("cycle must be reported")
	}
}

func TestValidate(t *testing.T) {
	g := buildDiamond(t)
	if err := g.Validate(); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
	// Orphan concept cannot reach root.
	if err := g.AddConcept(Concept{ID: 99, Name: "orphan"}); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Error("orphan must fail validation")
	}
}

func TestValidateNoRoot(t *testing.T) {
	g := New()
	if err := g.AddConcept(Concept{ID: 1, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Error("missing root must fail validation")
	}
}

func TestNeighborsWithinHops(t *testing.T) {
	g := buildDiamond(t)
	nbs := g.NeighborsWithinHops(6, 2)
	got := map[ConceptID]int{}
	for _, n := range nbs {
		got[n.ID] = n.Hops
	}
	want := map[ConceptID]int{4: 1, 2: 2, 3: 2}
	if len(got) != len(want) {
		t.Fatalf("NeighborsWithinHops(6,2) = %v, want %v", got, want)
	}
	for id, h := range want {
		if got[id] != h {
			t.Errorf("neighbor %d at %d hops, want %d", id, got[id], h)
		}
	}
	if len(g.NeighborsWithinHops(6, 0)) != 0 {
		t.Error("radius 0 must return nothing")
	}
	if g.NeighborsWithinHops(404, 3) != nil {
		t.Error("unknown source must return nil")
	}
}

func TestShortcutEdgeChangesHopsNotSemantics(t *testing.T) {
	g := buildDiamond(t)
	// 6 -> 1 is 3 native hops.
	d, ok := g.SemanticDistance(6, 1)
	if !ok || d != 3 {
		t.Fatalf("SemanticDistance(6,1) = %d,%v, want 3,true", d, ok)
	}
	// Before the shortcut, 1 is not within 2 hops of 6.
	for _, n := range g.NeighborsWithinHops(6, 2) {
		if n.ID == 1 {
			t.Fatal("root already within 2 hops before shortcut")
		}
	}
	if err := g.AddShortcutEdge(6, 1, 3); err != nil {
		t.Fatal(err)
	}
	// Now 1 is a 1-hop neighbor...
	found := false
	for _, n := range g.NeighborsWithinHops(6, 1) {
		if n.ID == 1 && n.Hops == 1 {
			found = true
		}
	}
	if !found {
		t.Error("shortcut must make the ancestor a 1-hop neighbor")
	}
	// ...but the semantic distance is unchanged.
	d, ok = g.SemanticDistance(6, 1)
	if !ok || d != 3 {
		t.Errorf("SemanticDistance after shortcut = %d, want 3", d)
	}
	// And the expanded path is 3 generalizations.
	p, ok := g.ShortestSemanticPath(6, 1)
	if !ok || p.Len() != 3 || p.Generalizations() != 3 {
		t.Errorf("path = %+v, want 3 generalization hops", p)
	}
	if g.ShortcutCount() != 1 {
		t.Errorf("ShortcutCount = %d, want 1", g.ShortcutCount())
	}
}

func TestShortestSemanticPathDirections(t *testing.T) {
	g := buildDiamond(t)
	// 6 -> 5: up 6->4->3 then down 3->5 (2 gen + 1 spec, via 3) OR
	// 6->4->2->1->3->5 (longer). Shortest is 6-4-3-5? 4's parents are 2 and 3.
	p, ok := g.ShortestSemanticPath(6, 5)
	if !ok {
		t.Fatal("no path 6->5")
	}
	if p.Len() != 3 {
		t.Fatalf("path length = %d, want 3", p.Len())
	}
	if p.Generalizations() != 2 {
		t.Errorf("generalizations = %d, want 2", p.Generalizations())
	}
	// Reverse direction flips the direction counts.
	q, ok := g.ShortestSemanticPath(5, 6)
	if !ok || q.Len() != 3 || q.Generalizations() != 1 {
		t.Errorf("reverse path = %+v, want len 3 with 1 generalization", q)
	}
	// Self path is empty.
	s, ok := g.ShortestSemanticPath(4, 4)
	if !ok || s.Len() != 0 {
		t.Errorf("self path = %+v, want empty", s)
	}
}

func TestShortestSemanticPathDisconnected(t *testing.T) {
	g := New()
	if err := g.AddConcept(Concept{ID: 1, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddConcept(Concept{ID: 2, Name: "b"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.ShortestSemanticPath(1, 2); ok {
		t.Error("disconnected concepts must report no path")
	}
	if _, ok := g.ShortestSemanticPath(1, 404); ok {
		t.Error("unknown concept must report no path")
	}
}

func TestLCS(t *testing.T) {
	g := buildDiamond(t)
	// LCS(6, 5): common subsumers are 3 (dist 2+1=3) and 1 (3+2=5): choose 3.
	res, ok := g.LCS(6, 5)
	if !ok {
		t.Fatal("LCS(6,5) not found")
	}
	if len(res.IDs) != 1 || res.IDs[0] != 3 || res.Combined != 3 {
		t.Errorf("LCS(6,5) = %+v, want {[3] 3}", res)
	}
	// LCS of a concept with its ancestor is the ancestor itself.
	res, ok = g.LCS(6, 2)
	if !ok || len(res.IDs) != 1 || res.IDs[0] != 2 {
		t.Errorf("LCS(6,2) = %+v, want [2]", res)
	}
	// LCS with itself is itself at distance 0.
	res, ok = g.LCS(4, 4)
	if !ok || len(res.IDs) != 1 || res.IDs[0] != 4 || res.Combined != 0 {
		t.Errorf("LCS(4,4) = %+v, want {[4] 0}", res)
	}
}

func TestLCSTies(t *testing.T) {
	// Two parents at equal distance: both are returned.
	g := New()
	for id := ConceptID(1); id <= 4; id++ {
		if err := g.AddConcept(Concept{ID: id, Name: string(rune('a' + id))}); err != nil {
			t.Fatal(err)
		}
	}
	// 3 and 4 are both children of both 1 and 2.
	for _, e := range [][2]ConceptID{{3, 1}, {3, 2}, {4, 1}, {4, 2}} {
		if err := g.AddSubsumption(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	res, ok := g.LCS(3, 4)
	if !ok {
		t.Fatal("no LCS")
	}
	if len(res.IDs) != 2 || res.IDs[0] != 1 || res.IDs[1] != 2 || res.Combined != 2 {
		t.Errorf("LCS(3,4) = %+v, want tie {[1 2] 2}", res)
	}
}

func TestDepthFromRoot(t *testing.T) {
	g := buildDiamond(t)
	for id, want := range map[ConceptID]int{1: 0, 2: 1, 3: 1, 4: 2, 5: 2, 6: 3} {
		d, ok := g.DepthFromRoot(id)
		if !ok || d != want {
			t.Errorf("DepthFromRoot(%d) = %d,%v want %d,true", id, d, ok, want)
		}
	}
}

// randomDAG builds a random layered DAG for property checks.
func randomDAG(rng *rand.Rand, n int) *Graph {
	g := New()
	_ = g.AddConcept(Concept{ID: 1, Name: "root"})
	_ = g.SetRoot(1)
	for id := ConceptID(2); id <= ConceptID(n); id++ {
		_ = g.AddConcept(Concept{ID: id, Name: "c" + string(rune('a'+id%26)) + string(rune('0'+id%10)) + "x" + itoa(int(id))})
		// Each concept gets 1-2 parents among lower IDs (guarantees DAG + rooted).
		parents := 1 + rng.Intn(2)
		used := map[ConceptID]bool{}
		for p := 0; p < parents; p++ {
			par := ConceptID(1 + rng.Intn(int(id)-1))
			if used[par] {
				continue
			}
			used[par] = true
			_ = g.AddSubsumption(id, par)
		}
	}
	return g
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestRandomDAGProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(60)
		g := randomDAG(rng, n)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		order, err := g.TopologicalOrder()
		if err != nil {
			t.Fatal(err)
		}
		pos := map[ConceptID]int{}
		for i, id := range order {
			pos[id] = i
		}
		for _, id := range g.ConceptIDs() {
			for _, par := range g.Parents(id) {
				if pos[id] >= pos[par] {
					t.Fatalf("trial %d: topological violation %d vs %d", trial, id, par)
				}
			}
		}
		// Path symmetry of distance, asymmetry of direction counts.
		ids := g.ConceptIDs()
		for i := 0; i < 30; i++ {
			a := ids[rng.Intn(len(ids))]
			b := ids[rng.Intn(len(ids))]
			pa, oka := g.ShortestSemanticPath(a, b)
			pb, okb := g.ShortestSemanticPath(b, a)
			if oka != okb {
				t.Fatalf("path existence not symmetric for %d,%d", a, b)
			}
			if !oka {
				continue
			}
			if pa.Len() != pb.Len() {
				t.Fatalf("path length not symmetric: %d vs %d", pa.Len(), pb.Len())
			}
			if g := pa.Generalizations(); g < 0 || g > pa.Len() {
				t.Fatalf("generalization count %d out of range for path of length %d", g, pa.Len())
			}
			// LCS must exist on a rooted DAG.
			if _, ok := g.LCS(a, b); !ok {
				t.Fatalf("LCS(%d,%d) missing on rooted DAG", a, b)
			}
		}
	}
}

func TestNeighborsMonotoneInRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomDAG(rng, 50)
	ids := g.ConceptIDs()
	for i := 0; i < 10; i++ {
		src := ids[rng.Intn(len(ids))]
		prev := 0
		for r := 0; r <= 6; r++ {
			n := len(g.NeighborsWithinHops(src, r))
			if n < prev {
				t.Fatalf("neighbor count decreased with radius: r=%d n=%d prev=%d", r, n, prev)
			}
			prev = n
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := buildDiamond(t)
	if err := g.AddShortcutEdge(6, 1, 3); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := g.WriteDOT(&buf, 0, 0, map[ConceptID]bool{4: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph eks", `label="thing"`, "style=dashed", `label="3"`, "fillcolor=lightyellow"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Neighbourhood view includes only nearby nodes.
	buf.Reset()
	if err := g.WriteDOT(&buf, 6, 1, nil); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, `label="deep"`) || !strings.Contains(out, `label="join"`) {
		t.Error("neighbourhood view missing center or neighbour")
	}
	if strings.Contains(out, `label="leaf-right"`) {
		t.Error("neighbourhood view leaked a distant node")
	}
	// Unknown center fails.
	if err := g.WriteDOT(&buf, 404, 1, nil); err == nil {
		t.Error("unknown center must fail")
	}
}

// TestConcurrentReads documents that a fully built Graph is safe for
// concurrent readers (the HTTP server relies on this); mutation is not.
func TestConcurrentReads(t *testing.T) {
	g := buildDiamond(t)
	done := make(chan bool)
	for w := 0; w < 8; w++ {
		go func() {
			defer func() { done <- true }()
			for i := 0; i < 500; i++ {
				g.NeighborsWithinHops(6, 3)
				g.ShortestSemanticPath(6, 5)
				g.LCS(6, 5)
				g.LookupName("deep")
				g.Ancestors(6)
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}
