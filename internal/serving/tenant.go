package serving

import (
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// TenantHeader selects a tenant when the request path carries no /t/
// prefix. The path prefix wins when both are present.
const TenantHeader = "X-Medrelax-Tenant"

// tenant is one named serving stack: its engine (cache partition,
// admission state, reload) and the fully wrapped handler.
type tenant struct {
	engine  *Engine
	handler http.Handler
}

// TenantServer routes requests across several independent serving stacks
// — one engine, cache partition, and API handler per named knowledge
// bundle — from a single listener. Resolution order: an explicit
// /t/{tenant}/... path prefix, then the X-Medrelax-Tenant header, then
// the default tenant (the first one added). An unknown tenant is the
// caller's 404. The tenant set is fixed after setup, so routing takes no
// lock.
type TenantServer struct {
	tenants map[string]*tenant
	def     string
}

// NewTenantServer returns an empty tenant router.
func NewTenantServer() *TenantServer {
	return &TenantServer{tenants: make(map[string]*tenant)}
}

// Add mounts a tenant: api is the tenant's server handler, which gets
// wrapped with the engine's instrumentation exactly like a single-tenant
// deployment. The first tenant added becomes the default.
func (t *TenantServer) Add(name string, e *Engine, api http.Handler) {
	t.tenants[name] = &tenant{engine: e, handler: e.Handler(api)}
	if t.def == "" {
		t.def = name
	}
}

// Engine returns a tenant's engine (for SIGHUP reload fan-out and tests).
func (t *TenantServer) Engine(name string) (*Engine, bool) {
	tn, ok := t.tenants[name]
	if !ok {
		return nil, false
	}
	return tn.engine, true
}

// Names lists the mounted tenants in sorted order.
func (t *TenantServer) Names() []string {
	out := make([]string, 0, len(t.tenants))
	for name := range t.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Default returns the default tenant's name.
func (t *TenantServer) Default() string { return t.def }

// Handler returns the routing handler. A /t/{tenant} prefix is stripped
// before the request reaches the tenant's stack, so per-tenant paths look
// exactly like single-tenant ones to everything downstream (instrument's
// endpoint labels included).
func (t *TenantServer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name := ""
		if rest, ok := strings.CutPrefix(r.URL.Path, "/t/"); ok {
			var sub string
			name, sub, _ = strings.Cut(rest, "/")
			if name == "" {
				writeJSON(w, http.StatusNotFound, map[string]string{"error": "missing tenant in path"})
				return
			}
			r2 := new(http.Request)
			*r2 = *r
			u := *r.URL
			u.Path = "/" + sub
			r2.URL = &u
			r = r2
		} else if h := r.Header.Get(TenantHeader); h != "" {
			name = h
		}
		if name == "" {
			name = t.def
		}
		tn, ok := t.tenants[name]
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown tenant " + strconv.Quote(name)})
			return
		}
		tn.handler.ServeHTTP(w, r)
	})
}
