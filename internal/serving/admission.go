package serving

import (
	"sync"
	"time"
)

// limiter is a non-queueing concurrency cap: a request either gets a slot
// immediately or is shed. Queueing under overload only converts an
// explicit 429 into unbounded memory growth and a timeout later — the
// client can back off, the queue cannot.
type limiter struct {
	slots chan struct{}
}

// newLimiter builds a limiter admitting up to n concurrent requests;
// n <= 0 returns nil (unlimited).
func newLimiter(n int) *limiter {
	if n <= 0 {
		return nil
	}
	return &limiter{slots: make(chan struct{}, n)}
}

// tryAcquire takes a slot without blocking; false means shed.
func (l *limiter) tryAcquire() bool {
	if l == nil {
		return true
	}
	select {
	case l.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (l *limiter) release() {
	if l != nil {
		<-l.slots
	}
}

// inUse reports the currently held slots.
func (l *limiter) inUse() int {
	if l == nil {
		return 0
	}
	return len(l.slots)
}

// tokenBucket is a classic rate guard: tokens refill at rate per second up
// to burst; each admitted request spends one. It protects the expensive
// stateful /chat path, where every request may train per-session state.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
	rate   float64
	burst  float64
}

// newTokenBucket allows rate requests/second with the given burst;
// rate <= 0 returns nil (unlimited). burst < 1 is raised to 1.
func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{tokens: float64(burst), last: time.Now(), rate: rate, burst: float64(burst)}
}

// allow spends a token if one is available.
func (b *tokenBucket) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
