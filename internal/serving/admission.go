package serving

import (
	"sync"
	"time"
)

// Limiter is a non-queueing concurrency cap: a request either gets a slot
// immediately or is shed. Queueing under overload only converts an
// explicit 429 into unbounded memory growth and a timeout later — the
// client can back off, the queue cannot. Exported so the router tier can
// apply the same admission discipline before burning a replica slot.
type Limiter struct {
	slots chan struct{}
}

// NewLimiter builds a Limiter admitting up to n concurrent requests;
// n <= 0 returns nil (unlimited — every method on a nil Limiter admits).
func NewLimiter(n int) *Limiter {
	if n <= 0 {
		return nil
	}
	return &Limiter{slots: make(chan struct{}, n)}
}

// TryAcquire takes a slot without blocking; false means shed.
func (l *Limiter) TryAcquire() bool {
	if l == nil {
		return true
	}
	select {
	case l.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot taken by TryAcquire.
func (l *Limiter) Release() {
	if l != nil {
		<-l.slots
	}
}

// InUse reports the currently held slots.
func (l *Limiter) InUse() int {
	if l == nil {
		return 0
	}
	return len(l.slots)
}

// tokenBucket is a classic rate guard: tokens refill at rate per second up
// to burst; each admitted request spends one. It protects the expensive
// stateful /chat path, where every request may train per-session state.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
	rate   float64
	burst  float64
}

// newTokenBucket allows rate requests/second with the given burst;
// rate <= 0 returns nil (unlimited). burst < 1 is raised to 1.
func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{tokens: float64(burst), last: time.Now(), rate: rate, burst: float64(burst)}
}

// allow spends a token if one is available.
func (b *tokenBucket) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
