package serving

import (
	"context"
	"encoding/json"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"medrelax/internal/serving/metrics"
	"medrelax/internal/trace"
)

// trackedEndpoints get per-endpoint latency histograms and request
// counters; anything else is folded into "other" to keep label
// cardinality bounded.
var trackedEndpoints = []string{"/relax", "/relax/batch", "/chat", "/stats", "/healthz", "/terms"}

const httpLatencyHelp = "HTTP request latency by endpoint"

// Handler mounts the serving endpoints (GET /metrics, POST /admin/reload)
// and wraps the API handler with admission control and instrumentation.
func (e *Engine) Handler(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", e.handleMetrics)
	mux.HandleFunc("POST /admin/reload", e.handleReload)
	mux.Handle("GET /debug/traces", e.opts.Tracer.Recorder())
	mux.Handle("/", e.instrument(api))
	return mux
}

func (e *Engine) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := e.reg.WritePrometheus(w); err != nil {
		log.Printf("serving: writing metrics: %v", err)
	}
}

func (e *Engine) handleReload(w http.ResponseWriter, _ *http.Request) {
	if err := e.Reload(); err != nil {
		status := http.StatusInternalServerError
		if e.opts.Loader == nil {
			status = http.StatusNotImplemented
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "reloaded",
		"generation": e.cur.Load().gen,
	})
}

// statusRecorder captures the response code for metrics and logging. On
// traced requests it also attaches the spans finished so far as a
// response header just before the headers flush, so an upstream router
// can merge replica-side timing into its own trace.
type statusRecorder struct {
	http.ResponseWriter
	status int
	span   *trace.Span
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.wrote = true
		if enc := r.span.EncodeFinished(); enc != "" {
			r.Header().Set(trace.SpansHeader, enc)
		}
	}
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wrote {
		r.WriteHeader(http.StatusOK)
	}
	return r.ResponseWriter.Write(b)
}

// instrument applies, per request: inflight accounting, the concurrency
// cap (shed with 429 + Retry-After), per-endpoint deadlines, chat
// body-size and rate guards, latency histograms, and the slow-query log.
func (e *Engine) instrument(next http.Handler) http.Handler {
	inflight := e.reg.Gauge("medrelax_http_inflight", "requests currently being served", e.labels(""))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		endpoint := r.URL.Path
		if !tracked(endpoint) {
			endpoint = "other"
		}
		epLabel := e.labels(metrics.Label("endpoint", endpoint))
		inflight.Inc()
		defer inflight.Dec()

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		tctx, root := e.opts.Tracer.StartRequest(r.Context(), r.Header, "server "+endpoint)
		if root != nil {
			if e.opts.Tenant != "" {
				root.SetTag("tenant", e.opts.Tenant)
			}
			rec.span = root
			r = r.WithContext(tctx)
			defer func() {
				root.SetTag("status", strconv.Itoa(rec.status))
				root.End()
			}()
		}

		limited := endpoint == "/relax" || endpoint == "/relax/batch" || endpoint == "/chat"
		if limited {
			adm := root.StartChild("serving.admission")
			if !e.limiter.TryAcquire() {
				adm.SetTag("outcome", "shed")
				adm.End()
				e.shed(rec, endpoint, "over concurrency limit")
				return
			}
			adm.SetTag("outcome", "admitted")
			adm.End()
			defer e.limiter.Release()
		}
		var timeout time.Duration
		switch endpoint {
		case "/relax", "/relax/batch":
			timeout = e.opts.RelaxTimeout
			// A client sending `Cache-Control: no-store` opts out of the
			// result cache for this request — no read, no write. Benchmark
			// harnesses use it to measure the uncached path on a warm
			// server without evicting real entries.
			if cc := r.Header.Get("Cache-Control"); cc != "" && strings.Contains(strings.ToLower(cc), "no-store") {
				r = r.WithContext(WithCacheBypass(r.Context()))
			}
		case "/chat":
			timeout = e.opts.ChatTimeout
			if !e.chatRate.allow() {
				e.shed(rec, endpoint, "over rate limit")
				return
			}
			maxBody := e.opts.MaxChatBody
			if maxBody <= 0 {
				maxBody = 1 << 20
			}
			r.Body = http.MaxBytesReader(w, r.Body, maxBody)
		}
		if timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}

		start := time.Now()
		next.ServeHTTP(rec, r)
		dur := time.Since(start)

		e.reg.Histogram("medrelax_http_request_seconds", httpLatencyHelp, epLabel).Observe(dur.Seconds())
		e.reg.Counter("medrelax_http_requests_total", "HTTP requests by endpoint and status code",
			epLabel+",code=\""+strconv.Itoa(rec.status)+"\"").Inc()
		if e.opts.SlowQuery > 0 && dur >= e.opts.SlowQuery {
			e.logSlow(r, endpoint, rec.status, dur)
		}
	})
}

func tracked(path string) bool {
	for _, ep := range trackedEndpoints {
		if path == ep {
			return true
		}
	}
	return false
}

// shed rejects with 429 + Retry-After: the one response shape that tells
// a well-behaved client exactly what to do, at near-zero server cost.
func (e *Engine) shed(w http.ResponseWriter, endpoint, reason string) {
	retry := e.opts.RetryAfter
	if retry <= 0 {
		retry = time.Second
	}
	w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
	writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "server overloaded: " + reason})
	e.reg.Counter("medrelax_http_shed_total", "requests shed by admission control",
		e.labels(metrics.Label("endpoint", endpoint))).Inc()
}

// logSlow emits one structured line per slow request so tail-latency
// offenders can be grepped out of production logs.
func (e *Engine) logSlow(r *http.Request, endpoint string, status int, dur time.Duration) {
	fields := map[string]any{
		"slow_query": true,
		"endpoint":   endpoint,
		"query":      r.URL.RawQuery,
		"status":     status,
		"ms":         dur.Milliseconds(),
	}
	// A traced slow request carries its trace id, linking the log line to
	// the exemplar retained at /debug/traces?slow=1.
	if sp := trace.FromContext(r.Context()); sp != nil {
		fields["trace"] = sp.TraceID
	}
	line, err := json.Marshal(fields)
	if err != nil {
		return
	}
	e.reg.Counter("medrelax_http_slow_total", "requests over the slow-query threshold",
		e.labels(metrics.Label("endpoint", endpoint))).Inc()
	if logger := e.opts.SlowLog; logger != nil {
		logger.Print(string(line))
	} else {
		log.Print(string(line))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("serving: encoding response: %v", err)
	}
}
