// Package metrics is a dependency-free observability layer for the serving
// subsystem: lock-cheap counters, gauges, and fixed-bucket latency
// histograms, exposed in the Prometheus text format. Everything on the
// request path is a single atomic op (plus one bucket search for
// histograms); the only mutexes guard family/series registration, which
// happens once per distinct label set and then is a lock-free read.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (e.g. inflight requests).
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets covers 100µs..10s exponentially — wide enough for
// a cache hit (tens of µs) and a cold dynamic-radius relaxation (tens of
// ms) on the same histogram.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// CountBuckets covers count-valued histograms (spans per trace, items
// per batch) with power-of-two bounds: the interesting questions are
// "mostly small?" and "how heavy is the tail?", which doubling answers
// in eleven buckets.
var CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Histogram is a fixed-bucket latency histogram. Observations are seconds.
// Each Observe is one bucket search plus three atomic adds; no locks.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf bucket is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumNano atomic.Uint64 // sum in integer nanoseconds so it can be atomic
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (seconds). Nil bounds use DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value in seconds.
func (h *Histogram) Observe(seconds float64) {
	i := sort.SearchFloat64s(h.bounds, seconds)
	h.buckets[i].Add(1)
	h.count.Add(1)
	if seconds > 0 {
		h.sumNano.Add(uint64(seconds * 1e9))
	}
}

// Count is the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum is the total observed seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNano.Load()) / 1e9 }

// Quantile estimates the p-quantile (p in [0,1]) by linear interpolation
// inside the containing bucket — the same estimate PromQL's
// histogram_quantile computes. Returns 0 with no observations.
func (h *Histogram) Quantile(p float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	var cum uint64
	for i := range h.buckets {
		prev := cum
		cum += h.buckets[i].Load()
		if float64(cum) < rank {
			continue
		}
		lo, hi := 0.0, math.Inf(1)
		if i > 0 {
			lo = h.bounds[i-1]
		}
		if i < len(h.bounds) {
			hi = h.bounds[i]
		} else {
			// +Inf bucket: report its lower bound rather than infinity.
			return lo
		}
		inBucket := float64(cum - prev)
		if inBucket == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/inBucket
	}
	return h.bounds[len(h.bounds)-1]
}

// metricType tags a family for the # TYPE line.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// family is one metric name with its typed series, keyed by rendered label
// string.
type family struct {
	name string
	help string
	typ  metricType

	mu     sync.RWMutex
	order  []string // label strings in first-registration order
	series map[string]any
}

// get returns the series for labels, creating it via make on first use.
func (f *family) get(labels string, make func() any) any {
	f.mu.RLock()
	s, ok := f.series[labels]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[labels]; ok {
		return s
	}
	s = make()
	f.series[labels] = s
	f.order = append(f.order, labels)
	return s
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Families render in registration order; series within
// a family render in first-use order, so output is deterministic for a
// deterministic workload and stable across scrapes regardless.
type Registry struct {
	mu       sync.RWMutex
	order    []*family
	families map[string]*family

	histBounds []float64
}

// NewRegistry builds an empty registry using DefaultLatencyBuckets for
// histograms.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}, histBounds: DefaultLatencyBuckets}
}

func (r *Registry) family(name, help string, typ metricType) *family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if ok {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		return f
	}
	f = &family{name: name, help: help, typ: typ, series: map[string]any{}}
	r.families[name] = f
	r.order = append(r.order, f)
	return f
}

// Counter returns the counter for name+labels, registering on first use.
// labels is a rendered Prometheus label set like `endpoint="/relax"` or ""
// for none.
func (r *Registry) Counter(name, help, labels string) *Counter {
	f := r.family(name, help, typeCounter)
	return f.get(labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge for name+labels, registering on first use.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	f := r.family(name, help, typeGauge)
	return f.get(labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram for name+labels, registering on first
// use.
func (r *Registry) Histogram(name, help, labels string) *Histogram {
	f := r.family(name, help, typeHistogram)
	bounds := r.histBounds
	return f.get(labels, func() any { return NewHistogram(bounds) }).(*Histogram)
}

// HistogramWith is Histogram with explicit bucket bounds, for families
// whose domain is not latency (e.g. scatter fan-out widths). Bounds apply
// on first registration of each series; nil falls back to the registry's
// latency buckets.
func (r *Registry) HistogramWith(name, help, labels string, bounds []float64) *Histogram {
	f := r.family(name, help, typeHistogram)
	if bounds == nil {
		bounds = r.histBounds
	}
	return f.get(labels, func() any { return NewHistogram(bounds) }).(*Histogram)
}

// Label renders one key="value" pair, escaping the value per the text
// format. Join multiple with commas in a fixed order at the call site.
func Label(key, value string) string {
	var b strings.Builder
	b.WriteString(key)
	b.WriteString(`="`)
	for _, c := range value {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	b.WriteString(`"`)
	return b.String()
}

// WritePrometheus renders every family in the text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := append([]*family(nil), r.order...)
	r.mu.RUnlock()
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		f.mu.RLock()
		series := make([]struct {
			labels string
			v      any
		}, 0, len(f.order))
		for _, ls := range f.order {
			series = append(series, struct {
				labels string
				v      any
			}{ls, f.series[ls]})
		}
		f.mu.RUnlock()
		for _, s := range series {
			if err := writeSeries(w, f, s.labels, s.v); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, labels string, v any) error {
	braced := ""
	if labels != "" {
		braced = "{" + labels + "}"
	}
	switch m := v.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, braced, m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, braced, m.Value())
		return err
	case *Histogram:
		var cum uint64
		for i, ub := range m.bounds {
			cum += m.buckets[i].Load()
			le := Label("le", formatBound(ub))
			sep := le
			if labels != "" {
				sep = labels + "," + le
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", f.name, sep, cum); err != nil {
				return err
			}
		}
		cum += m.buckets[len(m.bounds)].Load()
		inf := Label("le", "+Inf")
		sep := inf
		if labels != "" {
			sep = labels + "," + inf
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", f.name, sep, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", f.name, braced, m.Sum()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, braced, m.Count())
		return err
	}
	return fmt.Errorf("metrics: unknown series type %T", v)
}

func formatBound(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
