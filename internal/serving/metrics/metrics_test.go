package metrics

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %d, want 1", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	// 90 fast observations, 10 slow: p50 lands in the first bucket, p95+
	// in the second-to-last populated one.
	for i := 0; i < 90; i++ {
		h.Observe(0.0005)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.05)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if got := h.Quantile(0.5); got > 0.001 {
		t.Errorf("p50 = %g, want <= 0.001", got)
	}
	p95 := h.Quantile(0.95)
	if p95 < 0.01 || p95 > 0.1 {
		t.Errorf("p95 = %g, want in (0.01, 0.1]", p95)
	}
	if sum := h.Sum(); math.Abs(sum-(90*0.0005+10*0.05)) > 1e-6 {
		t.Errorf("sum = %g, want %g", sum, 90*0.0005+10*0.05)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(nil)
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
}

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("medrelax_requests_total", "requests", Label("endpoint", "/relax")).Add(7)
	r.Counter("medrelax_requests_total", "requests", Label("endpoint", "/chat")).Add(2)
	r.Gauge("medrelax_inflight", "inflight", "").Set(3)
	h := r.Histogram("medrelax_latency_seconds", "latency", Label("endpoint", "/relax"))
	h.Observe(0.002)
	h.Observe(0.002)
	h.Observe(4)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE medrelax_requests_total counter",
		`medrelax_requests_total{endpoint="/relax"} 7`,
		`medrelax_requests_total{endpoint="/chat"} 2`,
		"# TYPE medrelax_inflight gauge",
		"medrelax_inflight 3",
		"# TYPE medrelax_latency_seconds histogram",
		`medrelax_latency_seconds_bucket{endpoint="/relax",le="+Inf"} 3`,
		`medrelax_latency_seconds_count{endpoint="/relax"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// Every non-comment line must parse as "name{labels} value" with a
	// numeric value — the contract a Prometheus scraper relies on.
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed line %q", line)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("non-numeric value in line %q: %v", line, err)
		}
	}
	// Histogram buckets must be cumulative (monotone non-decreasing).
	var last int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "medrelax_latency_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseInt(strings.Fields(line)[1], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = v
	}
}

func TestLabelEscaping(t *testing.T) {
	got := Label("q", `he said "hi"`+"\n"+`\end`)
	want := `q="he said \"hi\"\n\\end"`
	if got != want {
		t.Fatalf("Label = %s, want %s", got, want)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c_total", "", Label("worker", fmt.Sprint(g%4))).Inc()
				r.Histogram("h_seconds", "", "").Observe(float64(i%10) / 1000)
				r.Gauge("g", "", "").Inc()
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for g := 0; g < 4; g++ {
		total += r.Counter("c_total", "", Label("worker", fmt.Sprint(g))).Value()
	}
	if total != 8*500 {
		t.Fatalf("counter total = %d, want %d", total, 8*500)
	}
	if got := r.Histogram("h_seconds", "", "").Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}
