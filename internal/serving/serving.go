// Package serving wraps a server.Backend with production semantics: a
// sharded LRU result cache with singleflight collapse, admission control
// (per-request deadlines, a concurrency cap that sheds instead of queues,
// chat size/rate guards), hot bundle reload behind an atomic pointer swap,
// and a hand-rolled Prometheus-format metrics layer. The paper's system
// ran as a cloud service behind a conversational frontend; this package is
// the part of that deployment the algorithm papers leave out.
package serving

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"medrelax/internal/core"
	"medrelax/internal/dialog"
	"medrelax/internal/fault"
	"medrelax/internal/persist"
	"medrelax/internal/server"
	"medrelax/internal/serving/metrics"
	"medrelax/internal/stringutil"
	"medrelax/internal/trace"
	"runtime/pprof"
)

// Options tunes the serving layer. The zero value disables the cache and
// every guard; DefaultOptions returns production defaults.
type Options struct {
	// CacheCapacity bounds the result cache in entries (0 disables it).
	CacheCapacity int
	// CacheTTL expires entries; 0 means LRU/purge only.
	CacheTTL time.Duration
	// CacheShards spreads the cache over this many locks (0 picks 16).
	CacheShards int
	// CacheStaleWindow bounds stale-on-error serving: when the backend
	// fails a recomputation, a cache entry that expired less than this
	// long ago is served instead of the error (0 disables degraded mode).
	CacheStaleWindow time.Duration

	// MaxConcurrent caps simultaneously admitted /relax + /chat requests;
	// excess load is shed with 429. 0 means unlimited.
	MaxConcurrent int
	// RetryAfter is the backoff hint sent with 429 responses.
	RetryAfter time.Duration

	// RelaxTimeout bounds one relaxation computation (and a caller's wait
	// on a collapsed flight). 0 means no deadline.
	RelaxTimeout time.Duration
	// ChatTimeout bounds one conversation turn. 0 means no deadline.
	ChatTimeout time.Duration

	// MaxChatBody caps the /chat request body in bytes (0: 1 MiB).
	MaxChatBody int64
	// ChatRPS rate-limits /chat requests per second (0: unlimited).
	ChatRPS float64
	// ChatBurst is the token-bucket burst for ChatRPS.
	ChatBurst int

	// SlowQuery logs requests slower than this threshold (0 disables).
	SlowQuery time.Duration
	// SlowLog receives the structured slow-query lines (nil: std logger).
	SlowLog *log.Logger

	// Loader builds a fresh backend for POST /admin/reload and SIGHUP;
	// reload is disabled when nil.
	Loader func() (server.Backend, error)

	// Metrics is the registry series are written to. nil builds a private
	// one; multi-tenant deployments pass one shared registry so a single
	// /metrics scrape covers every tenant.
	Metrics *metrics.Registry
	// BaseLabels is prepended to every series this engine emits (e.g.
	// `tenant="alpha"`); empty keeps the single-tenant series names
	// unchanged.
	BaseLabels string

	// Tracer samples and records distributed traces; nil disables tracing.
	// Multi-tenant deployments share one tracer (the ring buffer is
	// per-process), with Tenant distinguishing the traces.
	Tracer *trace.Tracer
	// Tenant names this engine's partition on trace spans and pprof
	// labels; empty for single-tenant deployments.
	Tenant string
}

// DefaultOptions are sane production defaults for a medium instance.
func DefaultOptions() Options {
	return Options{
		CacheCapacity:    16384,
		CacheTTL:         5 * time.Minute,
		CacheShards:      16,
		CacheStaleWindow: time.Minute,
		MaxConcurrent:    256,
		RetryAfter:       time.Second,
		RelaxTimeout:     2 * time.Second,
		ChatTimeout:      5 * time.Second,
		MaxChatBody:      1 << 20,
		ChatRPS:          200,
		ChatBurst:        400,
		SlowQuery:        500 * time.Millisecond,
	}
}

// holder pairs a backend with its inflight refcount so a swapped-out
// bundle can be drained: the pointer swap is atomic, and the old holder is
// observed until its last admitted request finishes.
type holder struct {
	b        server.Backend
	gen      uint64
	inflight atomic.Int64
}

// Engine implements server.Backend over a swappable inner backend, adding
// the cache, admission bookkeeping, and metrics. Wire it as the backend of
// a server.Server, then wrap the server's handler with Engine.Handler.
type Engine struct {
	opts  Options
	cur   atomic.Pointer[holder]
	cache *Cache

	limiter  *Limiter
	chatRate *tokenBucket

	reg *metrics.Registry

	reloadMu sync.Mutex
	gen      atomic.Uint64

	// metric handles on the hot path, resolved once.
	mCacheHits      *metrics.Counter
	mCacheMisses    *metrics.Counter
	mCacheCollapsed *metrics.Counter
	mCacheStale     *metrics.Counter
	mCacheBypass    *metrics.Counter
	mBackendRelax   *metrics.Histogram
	mPathLive       *metrics.Counter
	mPathMat        *metrics.Counter
	mPathIdx        *metrics.Counter
}

// NewEngine wraps backend with the serving layer.
func NewEngine(backend server.Backend, opts Options) *Engine {
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	opts.Tracer.BindMetrics(reg, "medrelax")
	e := &Engine{
		opts:     opts,
		cache:    NewCache(opts.CacheCapacity, opts.CacheTTL, opts.CacheShards),
		limiter:  NewLimiter(opts.MaxConcurrent),
		chatRate: newTokenBucket(opts.ChatRPS, opts.ChatBurst),
		reg:      reg,
	}
	e.cache.SetStaleWindow(opts.CacheStaleWindow)
	e.cur.Store(&holder{b: backend, gen: e.gen.Add(1)})
	e.mCacheHits = e.reg.Counter("medrelax_relax_cache_hits_total", "relax results served from cache", e.labels(""))
	e.mCacheMisses = e.reg.Counter("medrelax_relax_cache_misses_total", "relax results computed by the backend", e.labels(""))
	e.mCacheCollapsed = e.reg.Counter("medrelax_relax_cache_collapsed_total", "concurrent identical misses collapsed onto one computation", e.labels(""))
	e.mCacheStale = e.reg.Counter("medrelax_relax_cache_stale_total", "expired entries served because recomputation failed (degraded mode)", e.labels(""))
	e.mCacheBypass = e.reg.Counter("medrelax_relax_cache_bypass_total", "requests that skipped the result cache (Cache-Control: no-store)", e.labels(""))
	e.mBackendRelax = e.reg.Histogram("medrelax_backend_relax_seconds", "uncached relaxation compute latency", e.labels(""))
	e.mPathLive = e.reg.Counter("medrelax_relax_live_path_total", "uncached relaxations answered by live graph traversal", e.labels(""))
	e.mPathMat = e.reg.Counter("medrelax_relax_materialized_hit_total", "uncached relaxations answered from the materialized top-k store", e.labels(""))
	e.mPathIdx = e.reg.Counter("medrelax_relax_index_path_total", "uncached relaxations answered via the posting-list candidate index", e.labels(""))
	e.reg.Gauge("medrelax_bundle_generation", "monotonic bundle generation, bumped per reload", e.labels("")).Set(1)
	// Register the failure counter up front so a scrape before the first
	// failed reload still shows the series at 0.
	e.reg.Counter("medrelax_reload_failures_total", "bundle reloads rejected (old generation kept serving)", e.labels(""))
	return e
}

// joinLabels composes two rendered label lists; either may be empty.
func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "," + b
	}
}

// labels prepends the engine's base labels (the tenant partition) to a
// series' own labels. With no base labels the single-tenant series names
// come out unchanged.
func (e *Engine) labels(extra string) string { return joinLabels(e.opts.BaseLabels, extra) }

// Metrics exposes the registry (for tests and the /metrics handler).
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// CacheStats returns (hits, misses, collapsed, entries); zeros when the
// cache is disabled.
func (e *Engine) CacheStats() (hits, misses, collapsed uint64, entries int) {
	if e.cache == nil {
		return 0, 0, 0, 0
	}
	return e.cache.Hits(), e.cache.Misses(), e.cache.Collapsed(), e.cache.Len()
}

// acquire pins the current holder for the duration of one request.
func (e *Engine) acquire() *holder {
	h := e.cur.Load()
	h.inflight.Add(1)
	return h
}

func (h *holder) release() { h.inflight.Add(-1) }

// cacheKey normalizes the request so trivially different spellings of the
// same query share an entry. k participates because it changes the
// consumed candidate list, not just its length. explain participates
// because explained results carry extra fields: caching them under the
// plain key would leak explain payloads into explain=false responses (and
// vice versa, strip them from explain=true ones).
func cacheKey(term, qctx string, k int, explain bool) string {
	key := stringutil.Normalize(term) + "\x1f" + qctx + "\x1f" + strconv.Itoa(k)
	if explain {
		key += "\x1fx"
	}
	return key
}

// cacheBypassKey marks a request context as cache-exempt.
type cacheBypassKey struct{}

// WithCacheBypass marks ctx so Relax and RelaxBatch skip the result cache
// entirely — no read AND no write — computing fresh against the backend.
// The HTTP layer sets it for requests carrying `Cache-Control: no-store`,
// which is how benchmark harnesses measure the uncached path on a warm
// server without polluting the cache.
func WithCacheBypass(ctx context.Context) context.Context {
	return context.WithValue(ctx, cacheBypassKey{}, true)
}

// cacheBypassed reports whether WithCacheBypass marked this context.
func cacheBypassed(ctx context.Context) bool {
	v, _ := ctx.Value(cacheBypassKey{}).(bool)
	return v
}

// countPath attributes one uncached relaxation to the serving path that
// answered it. Live is the default: a backend that doesn't trace (or an
// accelerator-free bundle) is indistinguishable from pure traversal.
func (e *Engine) countPath(p core.ServePath) {
	switch p {
	case core.PathMaterialized:
		e.mPathMat.Inc()
	case core.PathIndexed:
		e.mPathIdx.Inc()
	default:
		e.mPathLive.Inc()
	}
}

// Relax implements server.Backend with caching and singleflight. Cached
// responses are the same slice the backend returned, so an encoded cached
// response is byte-identical to the uncached one.
func (e *Engine) Relax(ctx context.Context, term, qctx string, k int) ([]server.RelaxResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	h := e.acquire()
	defer h.release()
	sp := trace.FromContext(ctx)
	if e.cache == nil {
		sp.SetTag("cache", "disabled")
		return e.computeRelax(ctx, h, term, qctx, k)
	}
	if cacheBypassed(ctx) {
		e.mCacheBypass.Inc()
		sp.SetTag("cache", "bypass")
		return e.computeRelax(ctx, h, term, qctx, k)
	}
	var cspan *trace.Span
	if sp != nil {
		cspan = sp.StartChild("serving.cache")
		cspan.SetTag("term", term)
	}
	explain := core.ExplainRequested(ctx)
	results, status, err := e.cache.GetOrCompute(ctx, cacheKey(term, qctx, k, explain), func() ([]server.RelaxResult, error) {
		// The flight owns its deadline: a collapsed waiter's short
		// deadline bounds only its wait, never the shared computation.
		fctx := context.Background()
		if e.opts.RelaxTimeout > 0 {
			var cancel context.CancelFunc
			fctx, cancel = context.WithTimeout(fctx, e.opts.RelaxTimeout)
			defer cancel()
			// Detaching sheds the caller's cancellation, not its trace:
			// the computing request's trace keeps the kernel spans.
			if sp != nil {
				fctx = trace.ContextWithSpan(fctx, sp)
			}
			// Nor its explain flag — the detached flight must compute the
			// variant its cache key promises.
			if explain {
				fctx = core.WithExplain(fctx)
			}
		} else {
			fctx = ctx
		}
		return e.computeRelax(fctx, h, term, qctx, k)
	})
	switch status {
	case CacheHit:
		e.mCacheHits.Inc()
	case CacheMiss:
		e.mCacheMisses.Inc()
	case CacheCollapsed:
		e.mCacheCollapsed.Inc()
	case CacheStale:
		e.mCacheStale.Inc()
	}
	if cspan != nil {
		cspan.SetTag("outcome", cacheStatusName(status))
		cspan.End()
	}
	return results, err
}

// cacheStatusName renders a cache outcome for trace tags.
func cacheStatusName(s CacheStatus) string {
	switch s {
	case CacheHit:
		return "hit"
	case CacheMiss:
		return "miss"
	case CacheCollapsed:
		return "collapsed"
	case CacheStale:
		return "stale"
	default:
		return "unknown"
	}
}

// computeRelax runs the backend computation. The "backend.relax" fault
// site injects latency or errors here — after admission, before the
// backend — so chaos runs exercise the degradation paths (503 mapping,
// stale-on-error) without a special backend. When the backend traces its
// serving path the per-path counters attribute the computation.
func (e *Engine) computeRelax(ctx context.Context, h *holder, term, qctx string, k int) ([]server.RelaxResult, error) {
	if err := fault.At("backend.relax").Inject(); err != nil {
		return nil, err
	}
	// Traced requests run under pprof labels so a CPU profile attributes
	// relax samples to tenant+endpoint; the untraced path skips the label
	// machinery (and its allocations) entirely.
	if trace.FromContext(ctx) != nil {
		var (
			results []server.RelaxResult
			err     error
		)
		pprof.Do(ctx, pprof.Labels("tenant", e.pprofTenant(), "endpoint", "relax"), func(ctx context.Context) {
			results, err = e.relaxBackend(ctx, h, term, qctx, k)
		})
		return results, err
	}
	return e.relaxBackend(ctx, h, term, qctx, k)
}

// pprofTenant names this engine on profile labels; single-tenant
// deployments show up as "default".
func (e *Engine) pprofTenant() string {
	if e.opts.Tenant != "" {
		return e.opts.Tenant
	}
	return "default"
}

// relaxBackend is the backend dispatch shared by the traced and untraced
// compute paths.
func (e *Engine) relaxBackend(ctx context.Context, h *holder, term, qctx string, k int) ([]server.RelaxResult, error) {
	start := time.Now()
	var (
		results []server.RelaxResult
		err     error
	)
	if tb, ok := h.b.(server.TracedBackend); ok {
		var path core.ServePath
		results, path, err = tb.RelaxTraced(ctx, term, qctx, k)
		if err == nil {
			e.countPath(path)
		}
	} else {
		results, err = h.b.Relax(ctx, term, qctx, k)
	}
	if err == nil {
		e.mBackendRelax.Observe(time.Since(start).Seconds())
	}
	return results, err
}

// RelaxBatch implements server.BatchBackend: each item is first probed
// against the result cache (counted as a hit exactly like a single
// /relax), and only the misses travel to the backend — in one
// shared-scratch batch call when the backend supports it, sequentially
// otherwise. Successful miss results are inserted back unless a reload
// purged the cache mid-batch (the epoch guard), so a batch never
// repopulates the cache with a swapped-out bundle's answers. Batch misses
// skip singleflight: the batch itself is already the collapse.
func (e *Engine) RelaxBatch(ctx context.Context, items []server.BatchItem) []server.BatchOutcome {
	out := make([]server.BatchOutcome, len(items))
	if err := ctx.Err(); err != nil {
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	h := e.acquire()
	defer h.release()
	sp := trace.FromContext(ctx)
	if e.cache == nil {
		sp.SetTag("cache", "disabled")
		return e.computeBatch(ctx, h, items)
	}
	if cacheBypassed(ctx) {
		e.mCacheBypass.Inc()
		sp.SetTag("cache", "bypass")
		return e.computeBatch(ctx, h, items)
	}
	var cspan *trace.Span
	if sp != nil {
		cspan = sp.StartChild("serving.cache")
	}
	epoch := e.cache.Epoch()
	explain := core.ExplainRequested(ctx)
	miss := make([]server.BatchItem, 0, len(items))
	missIdx := make([]int, 0, len(items))
	for i, it := range items {
		if results, ok := e.cache.Get(cacheKey(it.Term, it.Context, it.K, explain)); ok {
			out[i].Results = results
			e.mCacheHits.Inc()
			continue
		}
		miss = append(miss, it)
		missIdx = append(missIdx, i)
	}
	if cspan != nil {
		cspan.SetTag("hits", strconv.Itoa(len(items)-len(miss)))
		cspan.SetTag("misses", strconv.Itoa(len(miss)))
		cspan.SetTag("outcome", "probed")
		cspan.End()
	}
	if len(miss) == 0 {
		return out
	}
	outcomes := e.computeBatch(ctx, h, miss)
	for j, o := range outcomes {
		out[missIdx[j]] = o
		e.mCacheMisses.Inc()
		if o.Err == nil {
			e.cache.Put(cacheKey(miss[j].Term, miss[j].Context, miss[j].K, explain), o.Results, epoch)
		}
	}
	return out
}

// computeBatch runs the uncached part of a batch against the backend,
// through the same "backend.relax" fault site as single queries.
func (e *Engine) computeBatch(ctx context.Context, h *holder, items []server.BatchItem) []server.BatchOutcome {
	if err := fault.At("backend.relax").Inject(); err != nil {
		out := make([]server.BatchOutcome, len(items))
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	if trace.FromContext(ctx) != nil {
		var out []server.BatchOutcome
		pprof.Do(ctx, pprof.Labels("tenant", e.pprofTenant(), "endpoint", "relax_batch"), func(ctx context.Context) {
			out = e.batchBackend(ctx, h, items)
		})
		return out
	}
	return e.batchBackend(ctx, h, items)
}

// batchBackend is the backend dispatch shared by the traced and untraced
// batch compute paths.
func (e *Engine) batchBackend(ctx context.Context, h *holder, items []server.BatchItem) []server.BatchOutcome {
	out := make([]server.BatchOutcome, len(items))
	start := time.Now()
	if bb, ok := h.b.(server.BatchBackend); ok {
		out = bb.RelaxBatch(ctx, items)
	} else {
		for i, it := range items {
			out[i].Results, out[i].Err = h.b.Relax(ctx, it.Term, it.Context, it.K)
		}
	}
	for i := range out {
		if out[i].Err == nil {
			e.countPath(out[i].Path)
		}
	}
	e.mBackendRelax.Observe(time.Since(start).Seconds())
	return out
}

// NewConversation implements server.Backend.
func (e *Engine) NewConversation() (*dialog.Conversation, error) {
	h := e.acquire()
	defer h.release()
	return h.b.NewConversation()
}

// Terms implements server.TermSampler when the inner backend does.
func (e *Engine) Terms(n int) []string {
	h := e.acquire()
	defer h.release()
	if ts, ok := h.b.(server.TermSampler); ok {
		return ts.Terms(n)
	}
	return nil
}

// Stats implements server.Backend: the inner stats plus a "serving"
// section with cache and admission state and per-endpoint tail latencies.
func (e *Engine) Stats() map[string]any {
	h := e.acquire()
	defer h.release()
	stats := h.b.Stats()
	hits, misses, collapsed, entries := e.CacheStats()
	serving := map[string]any{
		"bundleGeneration": h.gen,
		"cacheEntries":     entries,
		"cacheHits":        hits,
		"cacheMisses":      misses,
		"cacheCollapsed":   collapsed,
		"inflightLimited":  e.limiter.InUse(),
		"reloadFailures":   e.ReloadFailures(),
		"cacheBypassed":    e.mCacheBypass.Value(),
		"servePaths": map[string]uint64{
			"live":         e.mPathLive.Value(),
			"materialized": e.mPathMat.Value(),
			"indexed":      e.mPathIdx.Value(),
		},
	}
	if e.cache != nil {
		serving["cacheStaleServed"] = e.cache.StaleServed()
	}
	for _, ep := range trackedEndpoints {
		hist := e.reg.Histogram("medrelax_http_request_seconds", httpLatencyHelp, e.labels(metrics.Label("endpoint", ep)))
		if hist.Count() == 0 {
			continue
		}
		serving[ep] = map[string]any{
			"requests": hist.Count(),
			"p50ms":    hist.Quantile(0.50) * 1000,
			"p95ms":    hist.Quantile(0.95) * 1000,
			"p99ms":    hist.Quantile(0.99) * 1000,
		}
	}
	stats["serving"] = serving
	return stats
}

// Swap atomically replaces the backend, purges the cache, and drains the
// old holder in the background. In-flight requests finish against
// whichever backend they started on — every response is coherently old or
// coherently new, never mixed.
func (e *Engine) Swap(b server.Backend) {
	gen := e.gen.Add(1)
	old := e.cur.Swap(&holder{b: b, gen: gen})
	if e.cache != nil {
		e.cache.Purge()
	}
	e.reg.Gauge("medrelax_bundle_generation", "monotonic bundle generation, bumped per reload", e.labels("")).Set(int64(gen))
	go func() {
		for old.inflight.Load() > 0 {
			time.Sleep(5 * time.Millisecond)
		}
		log.Printf("serving: bundle generation %d drained, generation %d live", old.gen, gen)
	}()
}

// Reload builds a fresh backend via Options.Loader and swaps it in. Safe
// for concurrent callers (reloads serialize); the request path never
// blocks on a reload.
//
// A failed reload is the degraded-mode contract in one sentence: the old
// generation keeps serving, untouched — the swap happens only after the
// loader fully validated the new bundle. Failures increment
// medrelax_reload_failures_total plus a reason-labelled
// medrelax_reloads_total series ("corrupt" for a bundle that exists but
// fails its checksums or validation, "missing" for a vanished file,
// "error" otherwise), so a bad push is visible on the dashboard while
// traffic sees no change.
func (e *Engine) Reload() error {
	if e.opts.Loader == nil {
		return fmt.Errorf("serving: no reload loader configured")
	}
	e.reloadMu.Lock()
	defer e.reloadMu.Unlock()
	start := time.Now()
	b, err := e.opts.Loader()
	if err != nil {
		e.reg.Counter("medrelax_reload_failures_total", "bundle reloads rejected (old generation kept serving)", e.labels("")).Inc()
		e.reg.Counter("medrelax_reloads_total", "bundle reloads by result", e.labels(metrics.Label("result", reloadFailureReason(err)))).Inc()
		return fmt.Errorf("serving: reload: %w", err)
	}
	e.Swap(b)
	e.reg.Counter("medrelax_reloads_total", "bundle reloads by result", e.labels(metrics.Label("result", "ok"))).Inc()
	log.Printf("serving: reload complete in %s", time.Since(start).Round(time.Millisecond))
	return nil
}

// ReloadFailures reports how many reloads were rejected since start.
func (e *Engine) ReloadFailures() uint64 {
	return e.reg.Counter("medrelax_reload_failures_total", "bundle reloads rejected (old generation kept serving)", e.labels("")).Value()
}

// reloadFailureReason buckets a loader error for the reloads_total label:
// a corrupt bundle (checksum, truncation, structural damage) is the
// operationally interesting case and gets its own series, as does a
// missing file.
func reloadFailureReason(err error) string {
	switch {
	case errors.Is(err, persist.ErrCorruptBundle):
		return "corrupt"
	case errors.Is(err, fs.ErrNotExist):
		return "missing"
	default:
		return "error"
	}
}
