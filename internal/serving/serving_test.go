package serving

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"medrelax/internal/core"
	"medrelax/internal/dialog"
	"medrelax/internal/server"
)

// fakeBackend is a controllable server.Backend: per-call delay, call
// counting, a concurrency high-water mark, and a label baked into results
// so tests can tell which backend generation answered.
type fakeBackend struct {
	label string
	delay time.Duration

	calls    atomic.Int64
	inflight atomic.Int64
	maxSeen  atomic.Int64
}

func (f *fakeBackend) Relax(ctx context.Context, term, qctx string, k int) ([]server.RelaxResult, error) {
	f.calls.Add(1)
	cur := f.inflight.Add(1)
	defer f.inflight.Add(-1)
	for {
		prev := f.maxSeen.Load()
		if cur <= prev || f.maxSeen.CompareAndSwap(prev, cur) {
			break
		}
	}
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if term == "missing" {
		return nil, fmt.Errorf("fake: %q: %w", term, core.ErrUnknownTerm)
	}
	return []server.RelaxResult{
		{Concept: f.label + ":" + term, Score: 1.0, Hops: k, Instances: []string{f.label + "-inst"}},
	}, nil
}

func (f *fakeBackend) NewConversation() (*dialog.Conversation, error) {
	return nil, fmt.Errorf("fake backend has no conversations")
}

func (f *fakeBackend) Stats() map[string]any { return map[string]any{"label": f.label} }

func (f *fakeBackend) Terms(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, "term"+strconv.Itoa(i))
	}
	return out
}

// newStack wires fakeBackend -> Engine -> server -> Engine.Handler, the
// exact production composition in cmd/kbserver.
func newStack(t *testing.T, b server.Backend, opts Options) (*Engine, *httptest.Server) {
	t.Helper()
	e := NewEngine(b, opts)
	ts := httptest.NewServer(e.Handler(server.New(e).Handler()))
	t.Cleanup(ts.Close)
	return e, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestCacheHitServesWithoutBackend(t *testing.T) {
	fb := &fakeBackend{label: "A"}
	e := NewEngine(fb, Options{CacheCapacity: 128, CacheTTL: time.Minute})
	ctx := context.Background()
	r1, err := e.Relax(ctx, "fever", "c", 5)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Relax(ctx, "fever", "c", 5)
	if err != nil {
		t.Fatal(err)
	}
	if fb.calls.Load() != 1 {
		t.Fatalf("backend calls = %d, want 1 (second served from cache)", fb.calls.Load())
	}
	if r1[0].Concept != r2[0].Concept {
		t.Fatalf("cached result diverged: %v vs %v", r1, r2)
	}
	// Different k is a different key: the consumed candidate list differs.
	if _, err := e.Relax(ctx, "fever", "c", 6); err != nil {
		t.Fatal(err)
	}
	if fb.calls.Load() != 2 {
		t.Fatalf("backend calls = %d, want 2 after distinct k", fb.calls.Load())
	}
	// Normalized spellings share an entry.
	if _, err := e.Relax(ctx, "  FEVER ", "c", 5); err != nil {
		t.Fatal(err)
	}
	if fb.calls.Load() != 2 {
		t.Fatalf("backend calls = %d, want 2 after renormalized spelling", fb.calls.Load())
	}
	hits, misses, _, entries := e.CacheStats()
	if hits != 2 || misses != 2 || entries != 2 {
		t.Fatalf("cache stats = hits %d misses %d entries %d", hits, misses, entries)
	}
}

func TestCachedResponseByteIdentical(t *testing.T) {
	_, ts := newStack(t, &fakeBackend{label: "A"}, Options{CacheCapacity: 128, CacheTTL: time.Minute})
	code1, body1 := get(t, ts.URL+"/relax?term=fever&context=&k=3")
	code2, body2 := get(t, ts.URL+"/relax?term=fever&context=&k=3")
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("status = %d, %d", code1, code2)
	}
	if body1 != body2 {
		t.Fatalf("cached response differs from uncached:\n%s\n%s", body1, body2)
	}
}

func TestSingleflightStorm(t *testing.T) {
	fb := &fakeBackend{label: "A", delay: 50 * time.Millisecond}
	e := NewEngine(fb, Options{CacheCapacity: 128, CacheTTL: time.Minute})
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := e.Relax(context.Background(), "storm", "", 3)
			if err == nil && (len(res) != 1 || res[0].Concept != "A:storm") {
				err = fmt.Errorf("bad result %v", res)
			}
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := fb.calls.Load(); got != 1 {
		t.Fatalf("backend computed %d times for one key under storm, want 1", got)
	}
	hits, _, collapsed, _ := e.CacheStats()
	if hits+collapsed != n-1 {
		t.Fatalf("hits %d + collapsed %d = %d, want %d", hits, collapsed, hits+collapsed, n-1)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	fb := &fakeBackend{label: "A"}
	e := NewEngine(fb, Options{CacheCapacity: 128, CacheTTL: 20 * time.Millisecond})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := e.Relax(ctx, "fever", "", 3); err != nil {
			t.Fatal(err)
		}
	}
	if fb.calls.Load() != 1 {
		t.Fatalf("calls = %d before expiry, want 1", fb.calls.Load())
	}
	time.Sleep(30 * time.Millisecond)
	if _, err := e.Relax(ctx, "fever", "", 3); err != nil {
		t.Fatal(err)
	}
	if fb.calls.Load() != 2 {
		t.Fatalf("calls = %d after TTL, want 2 (entry expired)", fb.calls.Load())
	}
}

func TestCacheLRUBound(t *testing.T) {
	c := NewCache(8, 0, 1)
	for i := 0; i < 50; i++ {
		key := "k" + strconv.Itoa(i)
		_, _, err := c.GetOrCompute(context.Background(), key, func() ([]server.RelaxResult, error) {
			return []server.RelaxResult{{Concept: key}}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > 8 {
		t.Fatalf("cache grew to %d entries, cap 8", n)
	}
	if c.Evictions() == 0 {
		t.Fatal("no evictions recorded despite overflow")
	}
	// Most recent key survives, the first key does not.
	if _, st, _ := c.GetOrCompute(context.Background(), "k49", func() ([]server.RelaxResult, error) {
		return nil, nil
	}); st != CacheHit {
		t.Error("most recent key evicted")
	}
	if _, st, _ := c.GetOrCompute(context.Background(), "k0", func() ([]server.RelaxResult, error) {
		return nil, nil
	}); st == CacheHit {
		t.Error("oldest key survived LRU pressure")
	}
}

func TestErrorsNotCached(t *testing.T) {
	fb := &fakeBackend{label: "A"}
	e := NewEngine(fb, Options{CacheCapacity: 128, CacheTTL: time.Minute})
	for i := 0; i < 3; i++ {
		if _, err := e.Relax(context.Background(), "missing", "", 3); err == nil {
			t.Fatal("expected error")
		}
	}
	if fb.calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3 (errors must not be cached)", fb.calls.Load())
	}
}

func TestDeadlineMapsTo504(t *testing.T) {
	_, ts := newStack(t, &fakeBackend{label: "A", delay: 300 * time.Millisecond}, Options{
		CacheCapacity: 128, CacheTTL: time.Minute, RelaxTimeout: 25 * time.Millisecond,
	})
	code, body := get(t, ts.URL+"/relax?term=slow&k=3")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("slow relax = %d (%s), want 504", code, body)
	}
}

func TestDeadlineWithoutCache(t *testing.T) {
	_, ts := newStack(t, &fakeBackend{label: "A", delay: 300 * time.Millisecond}, Options{
		RelaxTimeout: 25 * time.Millisecond,
	})
	code, body := get(t, ts.URL+"/relax?term=slow&k=3")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("slow uncached relax = %d (%s), want 504", code, body)
	}
}

func TestErrorMapping(t *testing.T) {
	_, ts := newStack(t, &fakeBackend{label: "A"}, Options{})
	if code, _ := get(t, ts.URL+"/relax?term=missing"); code != http.StatusNotFound {
		t.Errorf("unknown term = %d, want 404", code)
	}
}

func TestSheddingAtConcurrencyLimit(t *testing.T) {
	fb := &fakeBackend{label: "A", delay: 80 * time.Millisecond}
	e, ts := newStack(t, fb, Options{
		MaxConcurrent: 2,
		RetryAfter:    2 * time.Second,
	})
	const n = 16
	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct terms so nothing is served by a cache (disabled
			// anyway) and every admitted request occupies the backend.
			resp, err := http.Get(ts.URL + "/relax?term=t" + strconv.Itoa(i) + "&k=3")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				shed.Add(1)
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	if shed.Load() == 0 {
		t.Fatalf("no requests shed at limit 2 with %d concurrent", n)
	}
	if ok.Load() == 0 {
		t.Fatal("every request shed — limiter admitted nothing")
	}
	if max := fb.maxSeen.Load(); max > 2 {
		t.Fatalf("backend saw %d concurrent requests, limit 2", max)
	}
	if v := e.Metrics().Counter("medrelax_http_shed_total", "", `endpoint="/relax"`).Value(); v != uint64(shed.Load()) {
		t.Errorf("shed metric = %d, client saw %d", v, shed.Load())
	}
}

func TestChatGuards(t *testing.T) {
	_, ts := newStack(t, &fakeBackend{label: "A"}, Options{
		MaxChatBody: 64,
		ChatRPS:     0.001, // effectively: only the initial burst token
		ChatBurst:   1,
	})
	// First chat passes the guards (conversation creation then fails 503,
	// which is fine — the guard is what's under test).
	resp, err := http.Post(ts.URL+"/chat", "application/json",
		strings.NewReader(`{"session":"s","text":"hi"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		t.Fatalf("first chat rate-limited, burst 1 should admit it")
	}
	// Second chat exceeds the rate.
	resp, err = http.Post(ts.URL+"/chat", "application/json",
		strings.NewReader(`{"session":"s","text":"hi"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second chat = %d, want 429", resp.StatusCode)
	}
	// Oversized bodies are cut off by MaxBytesReader before JSON decode.
	big := `{"session":"s","text":"` + strings.Repeat("x", 4096) + `"}`
	_, ts2 := newStack(t, &fakeBackend{label: "A"}, Options{MaxChatBody: 64})
	resp, err = http.Post(ts2.URL+"/chat", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized chat body = %d, want 400", resp.StatusCode)
	}
}

func TestReloadDuringTraffic(t *testing.T) {
	// Loader alternates generations; every in-flight response must be
	// coherently from one generation, and no request may fail.
	fb2 := &fakeBackend{label: "B"}
	opts := Options{
		CacheCapacity: 1024,
		CacheTTL:      time.Minute,
		Loader:        func() (server.Backend, error) { return fb2, nil },
	}
	_, ts := newStack(t, &fakeBackend{label: "A"}, opts)

	const workers = 8
	stop := make(chan struct{})
	var failures atomic.Int64
	var sawA, sawB atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				code, body := get(t, ts.URL+"/relax?term=t"+strconv.Itoa(i%20)+"&k=3")
				if code != http.StatusOK {
					failures.Add(1)
					continue
				}
				switch {
				case strings.Contains(body, `"A:`):
					sawA.Add(1)
				case strings.Contains(body, `"B:`):
					sawB.Add(1)
				default:
					failures.Add(1)
				}
				if strings.Contains(body, `"A:`) && strings.Contains(body, `"B:`) {
					t.Error("mixed-generation response")
				}
			}
		}(w)
	}
	time.Sleep(30 * time.Millisecond)
	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload = %d (%s)", resp.StatusCode, body)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed across the reload, want 0", n)
	}
	if sawA.Load() == 0 || sawB.Load() == 0 {
		t.Fatalf("traffic did not span the reload: A=%d B=%d", sawA.Load(), sawB.Load())
	}
	// After the swap and cache purge, fresh keys answer from B only.
	_, after := get(t, ts.URL+"/relax?term=fresh&k=3")
	if !strings.Contains(after, `"B:`) {
		t.Fatalf("post-reload response still from old bundle: %s", after)
	}
}

func TestReloadWithoutLoader(t *testing.T) {
	_, ts := newStack(t, &fakeBackend{label: "A"}, Options{})
	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("reload without loader = %d, want 501", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newStack(t, &fakeBackend{label: "A"}, Options{CacheCapacity: 128, CacheTTL: time.Minute})
	for i := 0; i < 5; i++ {
		get(t, ts.URL+"/relax?term=fever&k=3")
	}
	get(t, ts.URL+"/relax?term=missing")
	get(t, ts.URL+"/healthz")

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	// Parse into name{labels} -> value and assert the layer's vital signs.
	values := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed metrics line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		values[fields[0]] = v
	}
	checks := []struct {
		series string
		min    float64
	}{
		{`medrelax_relax_cache_hits_total`, 4},
		{`medrelax_relax_cache_misses_total`, 1},
		{`medrelax_http_requests_total{endpoint="/relax",code="200"}`, 5},
		{`medrelax_http_requests_total{endpoint="/relax",code="404"}`, 1},
		{`medrelax_http_requests_total{endpoint="/healthz",code="200"}`, 1},
		{`medrelax_http_request_seconds_count{endpoint="/relax"}`, 6},
		{`medrelax_bundle_generation`, 1},
	}
	for _, c := range checks {
		if got, ok := values[c.series]; !ok || got < c.min {
			t.Errorf("%s = %v (present %v), want >= %v", c.series, got, ok, c.min)
		}
	}
}

func TestStatsServingSection(t *testing.T) {
	e, ts := newStack(t, &fakeBackend{label: "A"}, Options{CacheCapacity: 128, CacheTTL: time.Minute})
	get(t, ts.URL+"/relax?term=fever&k=3")
	get(t, ts.URL+"/relax?term=fever&k=3")
	stats := e.Stats()
	serving, ok := stats["serving"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing serving section: %v", stats)
	}
	if serving["cacheHits"].(uint64) < 1 {
		t.Errorf("serving stats cacheHits = %v", serving["cacheHits"])
	}
	if stats["label"] != "A" {
		t.Errorf("inner stats not merged: %v", stats)
	}
}

func TestConcurrentMixedTraffic(t *testing.T) {
	// A -race smoke over every moving part at once: storms, TTLs, sheds,
	// reloads, metrics scrapes.
	fb2 := &fakeBackend{label: "B"}
	opts := Options{
		CacheCapacity: 64,
		CacheTTL:      10 * time.Millisecond,
		MaxConcurrent: 8,
		RelaxTimeout:  time.Second,
		Loader:        func() (server.Backend, error) { return fb2, nil },
	}
	e, ts := newStack(t, &fakeBackend{label: "A", delay: time.Millisecond}, opts)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				switch w % 4 {
				case 0, 1:
					get(t, ts.URL+"/relax?term=t"+strconv.Itoa(i%10)+"&k=3")
				case 2:
					get(t, ts.URL+"/metrics")
				case 3:
					if i%10 == 0 {
						_ = e.Reload()
					} else {
						get(t, ts.URL+"/stats")
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	var buf bytes.Buffer
	if err := e.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}

// tracedBackend is fakeBackend plus path tracing: every relaxation
// reports whichever ServePath the test pinned, exercising the engine's
// per-path attribution without a real accelerated bundle.
type tracedBackend struct {
	fakeBackend
	path core.ServePath
}

func (tb *tracedBackend) RelaxTraced(ctx context.Context, term, qctx string, k int) ([]server.RelaxResult, core.ServePath, error) {
	results, err := tb.Relax(ctx, term, qctx, k)
	return results, tb.path, err
}

func (tb *tracedBackend) RelaxBatch(ctx context.Context, items []server.BatchItem) []server.BatchOutcome {
	out := make([]server.BatchOutcome, len(items))
	for i, it := range items {
		out[i].Results, out[i].Err = tb.Relax(ctx, it.Term, it.Context, it.K)
		out[i].Path = tb.path
	}
	return out
}

func TestCacheBypassHeader(t *testing.T) {
	fb := &fakeBackend{label: "A"}
	e, ts := newStack(t, fb, Options{CacheCapacity: 128, CacheTTL: time.Minute})

	// Prime the cache, then bypass: the backend must answer again.
	get(t, ts.URL+"/relax?term=fever&k=3")
	if fb.calls.Load() != 1 {
		t.Fatalf("backend calls = %d, want 1", fb.calls.Load())
	}
	req, err := http.NewRequest("GET", ts.URL+"/relax?term=fever&k=3", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Cache-Control", "no-store")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bypassed request status = %d", resp.StatusCode)
	}
	if fb.calls.Load() != 2 {
		t.Fatalf("backend calls = %d after no-store, want 2 (cache skipped)", fb.calls.Load())
	}

	// The entry primed before the bypass still serves plain requests.
	get(t, ts.URL+"/relax?term=fever&k=3")
	if fb.calls.Load() != 2 {
		t.Fatalf("backend calls = %d, want 2 (cached entry survived the bypass)", fb.calls.Load())
	}

	// A bypassed computation must not populate the cache either: a fresh
	// term queried with no-store stays a miss for the next plain request.
	req2, err := http.NewRequest("GET", ts.URL+"/relax?term=cough&k=3", nil)
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("Cache-Control", "no-store")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	get(t, ts.URL+"/relax?term=cough&k=3")
	if fb.calls.Load() != 4 {
		t.Fatalf("backend calls = %d, want 4 (no-store must not write the cache)", fb.calls.Load())
	}
	if got := e.mCacheBypass.Value(); got != 2 {
		t.Errorf("cache bypass counter = %d, want 2", got)
	}
}

func TestServePathCounters(t *testing.T) {
	tb := &tracedBackend{fakeBackend: fakeBackend{label: "A"}, path: core.PathMaterialized}
	e := NewEngine(tb, Options{CacheCapacity: 128, CacheTTL: time.Minute})
	ctx := context.Background()

	// Miss computes and attributes; the following hit attributes nothing.
	if _, err := e.Relax(ctx, "fever", "c", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Relax(ctx, "fever", "c", 3); err != nil {
		t.Fatal(err)
	}
	if got := e.mPathMat.Value(); got != 1 {
		t.Fatalf("materialized hit counter = %d, want 1 (hits must not re-count)", got)
	}

	// Batch outcomes attribute per successful item; errors are not counted.
	tb.path = core.PathIndexed
	out := e.RelaxBatch(WithCacheBypass(ctx), []server.BatchItem{
		{Term: "a", K: 3}, {Term: "b", K: 3}, {Term: "missing", K: 3},
	})
	if out[2].Err == nil {
		t.Fatal("expected the missing term to fail")
	}
	if got := e.mPathIdx.Value(); got != 2 {
		t.Fatalf("index path counter = %d, want 2", got)
	}
	if got := e.mPathLive.Value(); got != 0 {
		t.Fatalf("live path counter = %d, want 0", got)
	}
	if got := e.mCacheBypass.Value(); got != 1 {
		t.Fatalf("cache bypass counter = %d, want 1", got)
	}

	serving, ok := e.Stats()["serving"].(map[string]any)
	if !ok {
		t.Fatal("stats missing serving section")
	}
	paths, ok := serving["servePaths"].(map[string]uint64)
	if !ok {
		t.Fatalf("serving stats missing servePaths: %v", serving)
	}
	if paths["materialized"] != 1 || paths["indexed"] != 2 || paths["live"] != 0 {
		t.Fatalf("servePaths = %v", paths)
	}
	if serving["cacheBypassed"].(uint64) != 1 {
		t.Fatalf("cacheBypassed = %v", serving["cacheBypassed"])
	}
}
