package serving

import (
	"container/list"
	"context"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"medrelax/internal/server"
)

// CacheStatus says how a lookup was satisfied.
type CacheStatus int

const (
	// CacheMiss: this call ran the backend computation itself.
	CacheMiss CacheStatus = iota
	// CacheHit: served from a stored entry.
	CacheHit
	// CacheCollapsed: a concurrent identical miss was already computing;
	// this call waited for its result instead of recomputing.
	CacheCollapsed
	// CacheStale: the computation failed, but an expired entry within the
	// stale window was served instead — degraded mode, not an error.
	CacheStale
)

// Cache is a sharded LRU over relaxation results with TTL expiry and
// singleflight collapse of concurrent misses. Query-expansion traffic is
// dominated by repeated head terms, so the same handful of keys is hit
// from many goroutines at once: sharding keeps lock hold times short, and
// the per-key flight ensures a cold head term is computed once, not once
// per concurrent requester.
type Cache struct {
	shards []cacheShard
	ttl    time.Duration
	// staleFor is the bounded stale-on-error window: an entry that has
	// expired less than staleFor ago is kept as a fallback and served —
	// clearly counted as stale — when recomputation fails. 0 disables
	// degraded serving; entries older than expiry+staleFor are gone for
	// good.
	staleFor time.Duration
	// gen is the purge epoch: computations started before a Purge must
	// not insert their (old-backend) results afterwards.
	gen atomic.Uint64

	hits      atomic.Uint64
	misses    atomic.Uint64
	collapsed atomic.Uint64
	evictions atomic.Uint64
	stale     atomic.Uint64
}

type cacheShard struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recently used
	entries map[string]*list.Element
	flights map[string]*flight
}

type cacheEntry struct {
	key     string
	results []server.RelaxResult
	expires int64 // unix nanos; 0 = no TTL
}

// flight is one in-progress computation other callers can wait on. stale
// carries the expired-but-within-window entry found at flight start, so
// every collapsed waiter degrades to the same stale answer if the
// computation fails.
type flight struct {
	done     chan struct{}
	results  []server.RelaxResult
	err      error
	stale    []server.RelaxResult
	hasStale bool
}

// NewCache builds a cache holding up to capacity entries across shards
// (capacity <= 0 returns nil: caching disabled). ttl <= 0 means entries
// only leave by LRU pressure or purge. shards <= 0 picks 16. staleFor is
// set separately with SetStaleWindow.
func NewCache(capacity int, ttl time.Duration, shards int) *Cache {
	if capacity <= 0 {
		return nil
	}
	if shards <= 0 {
		shards = 16
	}
	if shards > capacity {
		shards = 1
	}
	c := &Cache{shards: make([]cacheShard, shards), ttl: ttl}
	per := (capacity + shards - 1) / shards
	for i := range c.shards {
		c.shards[i] = cacheShard{
			cap:     per,
			lru:     list.New(),
			entries: map[string]*list.Element{},
			flights: map[string]*flight{},
		}
	}
	return c
}

// SetStaleWindow enables stale-on-error serving: when a recomputation
// fails, an entry that expired less than d ago is returned (with
// CacheStale status) instead of the error. Call before serving traffic.
// Nil-safe so a disabled cache stays disabled.
func (c *Cache) SetStaleWindow(d time.Duration) {
	if c == nil || d < 0 {
		return
	}
	c.staleFor = d
}

func (c *Cache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%uint32(len(c.shards))]
}

// GetOrCompute returns the cached results for key, or runs compute —
// collapsing concurrent identical misses onto one computation. ctx bounds
// only this caller's wait on a collapsed flight; compute is responsible
// for its own deadline so one caller's short deadline cannot poison the
// result every collapsed waiter receives. Errors are never cached — but
// when compute fails and an entry expired less than the stale window ago
// exists, that entry is served (CacheStale, nil error) instead: bounded
// degraded mode for a flaky backend.
func (c *Cache) GetOrCompute(ctx context.Context, key string, compute func() ([]server.RelaxResult, error)) ([]server.RelaxResult, CacheStatus, error) {
	sh := c.shard(key)
	now := time.Now().UnixNano()

	sh.mu.Lock()
	var stale []server.RelaxResult
	hasStale := false
	if el, ok := sh.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		if ent.expires == 0 || now < ent.expires {
			sh.lru.MoveToFront(el)
			sh.mu.Unlock()
			c.hits.Add(1)
			return ent.results, CacheHit, nil
		}
		if c.staleFor > 0 && now < ent.expires+int64(c.staleFor) {
			// Expired but inside the stale window: treat as a miss (force
			// recomputation) while keeping the entry as a degraded-mode
			// fallback should the computation fail.
			stale, hasStale = ent.results, true
		} else {
			sh.lru.Remove(el)
			delete(sh.entries, key)
		}
	}
	if fl, ok := sh.flights[key]; ok {
		sh.mu.Unlock()
		c.collapsed.Add(1)
		select {
		case <-fl.done:
			if fl.err != nil && fl.hasStale {
				c.stale.Add(1)
				return fl.stale, CacheStale, nil
			}
			return fl.results, CacheCollapsed, fl.err
		case <-ctx.Done():
			return nil, CacheCollapsed, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{}), stale: stale, hasStale: hasStale}
	sh.flights[key] = fl
	startGen := c.gen.Load()
	sh.mu.Unlock()

	c.misses.Add(1)
	results, err := compute()
	fl.results, fl.err = results, err

	sh.mu.Lock()
	delete(sh.flights, key)
	// Insert only on success and only if no purge happened while
	// computing — a result computed against a swapped-out bundle must not
	// outlive the swap.
	if err == nil && c.gen.Load() == startGen {
		if el, ok := sh.entries[key]; ok {
			// Replace the stale fallback kept above.
			sh.lru.Remove(el)
			delete(sh.entries, key)
		}
		ent := &cacheEntry{key: key, results: results}
		if c.ttl > 0 {
			ent.expires = time.Now().Add(c.ttl).UnixNano()
		}
		sh.entries[key] = sh.lru.PushFront(ent)
		for sh.lru.Len() > sh.cap {
			old := sh.lru.Back()
			sh.lru.Remove(old)
			delete(sh.entries, old.Value.(*cacheEntry).key)
			c.evictions.Add(1)
		}
	}
	sh.mu.Unlock()
	close(fl.done)
	if err != nil && hasStale {
		c.stale.Add(1)
		return stale, CacheStale, nil
	}
	return results, CacheMiss, err
}

// Epoch returns the current purge epoch, to be passed to Put by callers
// that looked up before computing (the batch path).
func (c *Cache) Epoch() uint64 { return c.gen.Load() }

// Get probes the cache without computing: a live entry is returned (and
// counted as a hit), anything else is a miss. Expired entries inside the
// stale window are left in place as degraded-mode fallbacks but are not
// returned — the caller is expected to recompute.
func (c *Cache) Get(key string) ([]server.RelaxResult, bool) {
	sh := c.shard(key)
	now := time.Now().UnixNano()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		if ent.expires == 0 || now < ent.expires {
			sh.lru.MoveToFront(el)
			c.hits.Add(1)
			return ent.results, true
		}
		if c.staleFor == 0 || now >= ent.expires+int64(c.staleFor) {
			sh.lru.Remove(el)
			delete(sh.entries, key)
		}
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores a computed result, but only if no purge happened since the
// caller read epoch (Epoch) — the same swapped-bundle guard GetOrCompute
// applies to its own insertions.
func (c *Cache) Put(key string, results []server.RelaxResult, epoch uint64) {
	if c.gen.Load() != epoch {
		return
	}
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[key]; ok {
		sh.lru.Remove(el)
		delete(sh.entries, key)
	}
	ent := &cacheEntry{key: key, results: results}
	if c.ttl > 0 {
		ent.expires = time.Now().Add(c.ttl).UnixNano()
	}
	sh.entries[key] = sh.lru.PushFront(ent)
	for sh.lru.Len() > sh.cap {
		old := sh.lru.Back()
		sh.lru.Remove(old)
		delete(sh.entries, old.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// Purge empties every shard and advances the epoch so in-progress
// computations do not re-populate the cache with pre-purge results.
// In-progress flights are left to finish — their waiters get a coherent
// (old) answer — but their results are not stored.
func (c *Cache) Purge() {
	c.gen.Add(1)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.lru.Init()
		clear(sh.entries)
		sh.mu.Unlock()
	}
}

// Len is the current number of cached entries across shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Hits, Misses, Collapsed, Evictions, StaleServed expose lifetime counters.
func (c *Cache) Hits() uint64        { return c.hits.Load() }
func (c *Cache) Misses() uint64      { return c.misses.Load() }
func (c *Cache) Collapsed() uint64   { return c.collapsed.Load() }
func (c *Cache) Evictions() uint64   { return c.evictions.Load() }
func (c *Cache) StaleServed() uint64 { return c.stale.Load() }
