package serving

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"medrelax/internal/server"
	"medrelax/internal/trace"
)

const testTraceparent = "00-1af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
const testTraceID = "1af7651916cd43dd8448eb211c80319c"

// tracedGet issues a GET carrying a sampled traceparent and returns the
// response (including the span backhaul header).
func tracedGet(t *testing.T, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(trace.TraceparentHeader, testTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// spanProbeBackend is a fakeBackend that records whether the request's
// trace span survived all the way into the backend call — including
// across the singleflight's detached flight context.
type spanProbeBackend struct {
	fakeBackend
	sawSpan atomic.Bool
}

func (b *spanProbeBackend) Relax(ctx context.Context, term, qctx string, k int) ([]server.RelaxResult, error) {
	if trace.FromContext(ctx) != nil {
		b.sawSpan.Store(true)
	}
	return b.fakeBackend.Relax(ctx, term, qctx, k)
}

// TestTracedRequestRecordsServingSpans drives one miss and one hit
// through a traced engine and checks the recorded traces: request root,
// admission span, cache span with the right outcome, and the backhaul
// header a fronting router would merge. RelaxTimeout is set so the miss
// computes on the singleflight's detached context — the span must ride
// along anyway.
func TestTracedRequestRecordsServingSpans(t *testing.T) {
	rec := trace.NewRecorder(16, 4)
	opts := Options{
		CacheCapacity: 128,
		CacheTTL:      time.Minute,
		MaxConcurrent: 8,
		RelaxTimeout:  5 * time.Second,
		Tracer:        trace.NewTracer("kbserver", 0, rec),
		Tenant:        "acme",
	}
	backend := &spanProbeBackend{fakeBackend: fakeBackend{label: "A"}}
	_, ts := newStack(t, backend, opts)

	for i := 0; i < 2; i++ { // first is a miss, second a hit
		resp := tracedGet(t, ts.URL+"/relax?term=fever&k=3")
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		if resp.Header.Get(trace.SpansHeader) == "" {
			t.Fatalf("request %d: no span backhaul header on a traced response", i)
		}
	}

	if !backend.sawSpan.Load() {
		t.Fatal("trace span did not reach the backend through the singleflight's detached flight context")
	}

	traces, total := rec.Snapshot(false)
	if total != 2 || len(traces) != 2 {
		t.Fatalf("recorded %d traces (total %d), want 2", len(traces), total)
	}
	// Snapshot is newest-first: traces[1] is the miss, traces[0] the hit.
	wantOutcome := []string{"hit", "miss"}
	for i, tr := range traces {
		if tr.TraceID != testTraceID {
			t.Fatalf("trace %d id %s, want %s", i, tr.TraceID, testTraceID)
		}
		if tr.Tenant != "acme" || tr.Root != "server /relax" {
			t.Fatalf("trace %d metadata wrong: tenant=%q root=%q", i, tr.Tenant, tr.Root)
		}
		var admission, cache string
		for _, s := range tr.Spans {
			switch s.Name {
			case "serving.admission":
				admission = s.Tag("outcome")
			case "serving.cache":
				cache = s.Tag("outcome")
			}
		}
		if admission != "admitted" {
			t.Errorf("trace %d admission outcome %q, want admitted", i, admission)
		}
		if cache != wantOutcome[i] {
			t.Errorf("trace %d cache outcome %q, want %q", i, cache, wantOutcome[i])
		}
	}
}

// TestTracedBatchSpans checks the batch path: one serving.cache span
// carrying hit/miss counts per batch request.
func TestTracedBatchSpans(t *testing.T) {
	rec := trace.NewRecorder(16, 4)
	opts := Options{
		CacheCapacity: 128,
		CacheTTL:      time.Minute,
		Tracer:        trace.NewTracer("kbserver", 0, rec),
	}
	_, ts := newStack(t, &fakeBackend{label: "A"}, opts)

	// Warm one term, then batch it with a cold one.
	if status, _ := get(t, ts.URL+"/relax?term=fever&k=3"); status != 200 {
		t.Fatalf("warmup status %d", status)
	}
	body := `{"queries":[{"term":"fever","k":3},{"term":"cough","k":3}]}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/relax/batch", http.NoBody)
	if err != nil {
		t.Fatal(err)
	}
	req.Body = io.NopCloser(strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.TraceparentHeader, testTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Items []json.RawMessage `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || len(out.Items) != 2 {
		t.Fatalf("batch decode (%v): %d items", err, len(out.Items))
	}
	resp.Body.Close()

	traces, _ := rec.Snapshot(false)
	if len(traces) != 1 {
		t.Fatalf("recorded %d traces, want 1 (warmup was untraced)", len(traces))
	}
	var found bool
	for _, s := range traces[0].Spans {
		if s.Name == "serving.cache" {
			found = true
			if s.Tag("hits") != "1" || s.Tag("misses") != "1" {
				t.Errorf("batch cache span hits=%q misses=%q, want 1/1", s.Tag("hits"), s.Tag("misses"))
			}
		}
	}
	if !found {
		t.Fatal("batch trace has no serving.cache span")
	}
}
