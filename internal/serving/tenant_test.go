package serving

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"medrelax/internal/server"
	"medrelax/internal/serving/metrics"
)

// newTenantStack mounts two tenants, "alpha" (default) and "beta", over
// one shared metrics registry — the production two-bundle composition in
// cmd/kbserver.
func newTenantStack(t *testing.T, opts Options) (*TenantServer, *httptest.Server, *fakeBackend, *fakeBackend) {
	t.Helper()
	shared := metrics.NewRegistry()
	ts := NewTenantServer()
	fa := &fakeBackend{label: "alpha"}
	fb := &fakeBackend{label: "beta"}
	for name, b := range map[string]*fakeBackend{"alpha": fa, "beta": fb} {
		o := opts
		o.Metrics = shared
		o.BaseLabels = metrics.Label("tenant", name)
		e := NewEngine(b, o)
		ts.Add(name, e, server.New(e).Handler())
	}
	// Map iteration above makes Add order random; pin the default.
	ts.def = "alpha"
	hs := httptest.NewServer(ts.Handler())
	t.Cleanup(hs.Close)
	return ts, hs, fa, fb
}

func TestTenantRouting(t *testing.T) {
	_, hs, _, _ := newTenantStack(t, Options{CacheCapacity: 128, CacheTTL: time.Minute})
	cases := []struct {
		name        string
		path        string
		header      string
		wantStatus  int
		wantConcept string // label baked into the fake backend's results
	}{
		{"bare path hits default tenant", "/relax?term=x&k=1", "", 200, "alpha:x"},
		{"path prefix selects tenant", "/t/beta/relax?term=x&k=1", "", 200, "beta:x"},
		{"header selects tenant", "/relax?term=x&k=1", "beta", 200, "beta:x"},
		{"path wins over header", "/t/alpha/relax?term=x&k=1", "beta", 200, "alpha:x"},
		{"unknown tenant in path", "/t/gamma/relax?term=x&k=1", "", 404, ""},
		{"unknown tenant in header", "/relax?term=x&k=1", "gamma", 404, ""},
		{"empty tenant segment", "/t//relax?term=x", "", 404, ""},
		{"tenant healthz", "/t/beta/healthz", "", 200, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, _ := http.NewRequest("GET", hs.URL+tc.path, nil)
			if tc.header != "" {
				req.Header.Set(TenantHeader, tc.header)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if tc.wantConcept == "" {
				return
			}
			var out struct {
				Results []server.RelaxResult `json:"results"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			if len(out.Results) == 0 || out.Results[0].Concept != tc.wantConcept {
				t.Errorf("results = %+v, want concept %q", out.Results, tc.wantConcept)
			}
		})
	}
}

// TestTenantCacheIsolation drives the same query into both tenants
// concurrently and checks each tenant's cache answers only with its own
// backend's results, with hits accounted per tenant.
func TestTenantCacheIsolation(t *testing.T) {
	ts, hs, fa, fb := newTenantStack(t, Options{CacheCapacity: 128, CacheTTL: time.Minute})
	var wg sync.WaitGroup
	for _, tenant := range []string{"alpha", "beta"} {
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				code, body := get(t, hs.URL+"/t/"+tenant+"/relax?term=shared&k=2")
				if code != 200 || !strings.Contains(body, tenant+":shared") {
					t.Errorf("tenant %s got %d %q", tenant, code, body)
				}
			}(tenant)
		}
	}
	wg.Wait()
	// Each backend computed the query at least once but far fewer times
	// than it was asked: the rest came from that tenant's own partition.
	if fa.calls.Load() < 1 || fb.calls.Load() < 1 {
		t.Fatalf("backends not both exercised: alpha=%d beta=%d", fa.calls.Load(), fb.calls.Load())
	}
	ea, _ := ts.Engine("alpha")
	eb, _ := ts.Engine("beta")
	ha, _, _, _ := ea.CacheStats()
	hb, _, _, _ := eb.CacheStats()
	if ha+uint64(fa.calls.Load()) < 8 || hb+uint64(fb.calls.Load()) < 8 {
		t.Errorf("per-tenant accounting incomplete: alpha hits=%d calls=%d, beta hits=%d calls=%d",
			ha, fa.calls.Load(), hb, fb.calls.Load())
	}
}

// TestTenantMetricsLabels checks the shared /metrics surface carries one
// series per tenant, distinguished by the tenant label.
func TestTenantMetricsLabels(t *testing.T) {
	_, hs, _, _ := newTenantStack(t, Options{CacheCapacity: 128, CacheTTL: time.Minute})
	get(t, hs.URL+"/t/alpha/relax?term=x&k=1")
	get(t, hs.URL+"/t/beta/relax?term=x&k=1")
	code, body := get(t, hs.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`medrelax_http_requests_total{tenant="alpha",endpoint="/relax",code="200"}`,
		`medrelax_http_requests_total{tenant="beta",endpoint="/relax",code="200"}`,
		`medrelax_bundle_generation{tenant="alpha"}`,
		`medrelax_bundle_generation{tenant="beta"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestTenantReloadIndependence reloads one tenant and checks the other's
// generation and cache are untouched.
func TestTenantReloadIndependence(t *testing.T) {
	shared := metrics.NewRegistry()
	ts := NewTenantServer()
	engines := map[string]*Engine{}
	for _, name := range []string{"alpha", "beta"} {
		name := name
		o := Options{
			CacheCapacity: 128, CacheTTL: time.Minute,
			Metrics:    shared,
			BaseLabels: metrics.Label("tenant", name),
			Loader: func() (server.Backend, error) {
				return &fakeBackend{label: name + "-v2"}, nil
			},
		}
		e := NewEngine(&fakeBackend{label: name}, o)
		engines[name] = e
		ts.Add(name, e, server.New(e).Handler())
	}
	ts.def = "alpha"
	hs := httptest.NewServer(ts.Handler())
	defer hs.Close()

	// Warm both caches, then reload only beta.
	get(t, hs.URL+"/t/alpha/relax?term=x&k=1")
	get(t, hs.URL+"/t/beta/relax?term=x&k=1")
	req, _ := http.NewRequest("POST", hs.URL+"/t/beta/admin/reload", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("beta reload = %d", resp.StatusCode)
	}

	// Beta's answers now come from its v2 backend; alpha still serves v1
	// from its untouched cache.
	if _, body := get(t, hs.URL+"/t/beta/relax?term=x&k=1"); !strings.Contains(body, "beta-v2:x") {
		t.Errorf("beta not reloaded: %s", body)
	}
	if _, body := get(t, hs.URL+"/t/alpha/relax?term=x&k=1"); !strings.Contains(body, "alpha:x") {
		t.Errorf("alpha affected by beta reload: %s", body)
	}
	if _, _, _, entries := engines["alpha"].CacheStats(); entries == 0 {
		t.Error("alpha cache was purged by beta's reload")
	}
	if got := engines["beta"].cur.Load().gen; got != 2 {
		t.Errorf("beta generation = %d, want 2", got)
	}
	if got := engines["alpha"].cur.Load().gen; got != 1 {
		t.Errorf("alpha generation = %d, want 1", got)
	}
}

// TestBatchThroughCache drives /relax/batch and checks per-item hit/miss
// accounting: a second identical batch is served fully from cache.
func TestBatchThroughCache(t *testing.T) {
	fb := &fakeBackend{label: "A"}
	e, hs := newStack(t, fb, Options{CacheCapacity: 128, CacheTTL: time.Minute})
	body := `{"queries":[{"term":"a","k":1},{"term":"b","k":1},{"term":"a","k":2}]}`
	for round := 1; round <= 2; round++ {
		resp, err := http.Post(hs.URL+"/relax/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Items []struct {
				Status int `json:"status"`
			} `json:"items"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(out.Items) != 3 {
			t.Fatalf("round %d: %d items", round, len(out.Items))
		}
		for i, it := range out.Items {
			if it.Status != 200 {
				t.Fatalf("round %d item %d: status %d", round, i, it.Status)
			}
		}
	}
	if got := fb.calls.Load(); got != 3 {
		t.Errorf("backend calls = %d, want 3 (second batch fully cached)", got)
	}
	hits, misses, _, _ := e.CacheStats()
	if hits != 3 || misses != 3 {
		t.Errorf("cache hits=%d misses=%d, want 3/3", hits, misses)
	}
}

// TestBatchMixedHitMiss warms one key via single /relax, then batches it
// with a cold key: exactly the cold one reaches the backend.
func TestBatchMixedHitMiss(t *testing.T) {
	fb := &fakeBackend{label: "A"}
	e := NewEngine(fb, Options{CacheCapacity: 128, CacheTTL: time.Minute})
	if _, err := e.Relax(context.Background(), "warm", "", 1); err != nil {
		t.Fatal(err)
	}
	out := e.RelaxBatch(context.Background(), []server.BatchItem{
		{Term: "warm", K: 1},
		{Term: "cold", K: 1},
		{Term: "missing", K: 1},
	})
	if fb.calls.Load() != 3 { // warm once (single), cold + missing (batch)
		t.Errorf("backend calls = %d, want 3", fb.calls.Load())
	}
	if out[0].Err != nil || out[0].Results[0].Concept != "A:warm" {
		t.Errorf("warm item = %+v", out[0])
	}
	if out[1].Err != nil || out[1].Results[0].Concept != "A:cold" {
		t.Errorf("cold item = %+v", out[1])
	}
	if out[2].Err == nil {
		t.Error("missing item should fail")
	}
	// Failed items are not cached: the next batch recomputes only them.
	_ = e.RelaxBatch(context.Background(), []server.BatchItem{
		{Term: "cold", K: 1},
		{Term: "missing", K: 1},
	})
	if fb.calls.Load() != 4 {
		t.Errorf("backend calls = %d, want 4 (cold cached, missing retried)", fb.calls.Load())
	}
}
