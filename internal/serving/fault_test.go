package serving

import (
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"medrelax/internal/fault"
	"medrelax/internal/persist"
	"medrelax/internal/server"
)

// armFaults installs a fault registry for the duration of one test.
func armFaults(t *testing.T, spec string) {
	t.Helper()
	reg, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	fault.SetDefault(reg)
	t.Cleanup(func() { fault.SetDefault(nil) })
}

// getFull is like get but also returns the response headers.
func getFull(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestInjectedBackendFaultMapsTo503 pins the degradation contract for a
// transient backend failure: the client sees a retryable 503 with a
// Retry-After hint — never a 500 — and recovery is immediate once the
// fault clears.
func TestInjectedBackendFaultMapsTo503(t *testing.T) {
	_, ts := newStack(t, &fakeBackend{label: "A"}, Options{CacheCapacity: 64, CacheTTL: time.Minute})

	armFaults(t, "backend.relax:error,rate=1,count=1,msg=injected test fault")
	code, body, hdr := getFull(t, ts.URL+"/relax?term=fever&k=3")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("injected fault = %d (%s), want 503", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 from injected fault missing Retry-After")
	}

	// The count is exhausted: the retry the header asked for succeeds.
	code, body, _ = getFull(t, ts.URL+"/relax?term=fever&k=3")
	if code != http.StatusOK || !strings.Contains(body, "A:fever") {
		t.Fatalf("after fault cleared = %d (%s), want 200 from backend", code, body)
	}
}

// TestCacheStaleOnError proves bounded stale-on-error serving: when
// recomputation fails, an entry expired less than CacheStaleWindow ago
// answers instead of the error; a term with no cached history still
// fails with 503.
func TestCacheStaleOnError(t *testing.T) {
	e, ts := newStack(t, &fakeBackend{label: "A"}, Options{
		CacheCapacity:    64,
		CacheTTL:         30 * time.Millisecond,
		CacheStaleWindow: 5 * time.Second,
	})

	code, fresh, _ := getFull(t, ts.URL+"/relax?term=fever&k=3")
	if code != http.StatusOK {
		t.Fatalf("prime = %d", code)
	}
	time.Sleep(60 * time.Millisecond) // entry expires, stays within the stale window

	armFaults(t, "backend.relax:error,rate=1")
	code, stale, _ := getFull(t, ts.URL+"/relax?term=fever&k=3")
	if code != http.StatusOK {
		t.Fatalf("stale-on-error = %d, want 200", code)
	}
	if stale != fresh {
		t.Errorf("stale response differs from original:\n%s\nvs\n%s", stale, fresh)
	}
	serving := e.Stats()["serving"].(map[string]any)
	if n := serving["cacheStaleServed"].(uint64); n == 0 {
		t.Error("cacheStaleServed not incremented")
	}

	// No cached history for this term: the error must surface.
	code, _, _ = getFull(t, ts.URL+"/relax?term=cough&k=3")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("uncached term under fault = %d, want 503", code)
	}
}

// TestCorruptReloadKeepsServing is the hot-reload half of the crash
// -safety story: a reload that fails with a corrupt bundle must leave the
// live generation untouched and visible, and account for itself in the
// reload-failure metrics with the "corrupt" reason.
func TestCorruptReloadKeepsServing(t *testing.T) {
	loaderErr := fmt.Errorf("bundle %q: %w", "x.bin", persist.ErrCorruptBundle)
	e, ts := newStack(t, &fakeBackend{label: "A"}, Options{
		CacheCapacity: 64,
		CacheTTL:      time.Minute,
		Loader:        func() (server.Backend, error) { return nil, loaderErr },
	})

	code, body, _ := getFull(t, ts.URL+"/relax?term=fever&k=3")
	if code != http.StatusOK || !strings.Contains(body, "A:fever") {
		t.Fatalf("pre-reload = %d (%s)", code, body)
	}

	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	reloadBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupt reload = %d (%s), want 500", resp.StatusCode, reloadBody)
	}

	// A fresh key (not served from cache) must still answer from the old
	// generation.
	code, body, _ = getFull(t, ts.URL+"/relax?term=chills&k=3")
	if code != http.StatusOK || !strings.Contains(body, "A:chills") {
		t.Fatalf("post-failed-reload = %d (%s), want old generation", code, body)
	}

	if n := e.ReloadFailures(); n != 1 {
		t.Errorf("ReloadFailures() = %d, want 1", n)
	}
	_, metricsBody, _ := getFull(t, ts.URL+"/metrics")
	for _, want := range []string{
		`medrelax_reload_failures_total 1`,
		`medrelax_reloads_total{result="corrupt"} 1`,
		`medrelax_bundle_generation 1`,
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestMissingBundleReloadReason checks the other loader-failure bucket:
// a vanished bundle file lands in the "missing" series, still without
// touching the serving generation.
func TestMissingBundleReloadReason(t *testing.T) {
	e, ts := newStack(t, &fakeBackend{label: "A"}, Options{
		Loader: func() (server.Backend, error) {
			_, err := persist.LoadFile(filepath.Join(t.TempDir(), "gone.bin"))
			return nil, err
		},
	})
	if err := e.Reload(); err == nil {
		t.Fatal("reload of missing bundle succeeded")
	}
	_, metricsBody, _ := getFull(t, ts.URL+"/metrics")
	if !strings.Contains(metricsBody, `medrelax_reloads_total{result="missing"} 1`) {
		t.Errorf("metrics missing the missing-file series:\n%s", metricsBody)
	}
}
