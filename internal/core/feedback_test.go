package core

import (
	"math"
	"sync"
	"testing"

	"medrelax/internal/eks"
	"medrelax/internal/kb"
	"medrelax/internal/ontology"
)

func TestFeedbackMultiplierShape(t *testing.T) {
	f := NewFeedbackStore()
	ctx := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	// No feedback: neutral.
	if got := f.Multiplier(1, 2, ctx); got != 1 {
		t.Errorf("neutral multiplier = %v", got)
	}
	// Accepts raise, rejects lower, monotonically.
	prev := 1.0
	for i := 0; i < 10; i++ {
		f.Accept(1, 2, ctx)
		m := f.Multiplier(1, 2, ctx)
		if m < prev {
			t.Fatalf("multiplier not monotone in accepts: %v then %v", prev, m)
		}
		prev = m
	}
	if prev > f.MaxBoost {
		t.Errorf("multiplier %v exceeds MaxBoost %v", prev, f.MaxBoost)
	}
	prev = 1.0
	for i := 0; i < 10; i++ {
		f.Reject(3, 4, ctx)
		m := f.Multiplier(3, 4, ctx)
		if m > prev {
			t.Fatalf("multiplier not monotone in rejects: %v then %v", prev, m)
		}
		prev = m
	}
	if prev < f.MinBoost {
		t.Errorf("multiplier %v below MinBoost %v", prev, f.MinBoost)
	}
	// Accept then reject cancels back to neutral.
	f.Accept(5, 6, ctx)
	f.Reject(5, 6, ctx)
	if got := f.Multiplier(5, 6, ctx); math.Abs(got-1) > 1e-9 {
		t.Errorf("cancelled feedback multiplier = %v", got)
	}
}

func TestFeedbackContextIsolation(t *testing.T) {
	f := NewFeedbackStore()
	ind := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	risk := &ontology.Context{Domain: "Risk", Relationship: "raisesRisk", Range: "Finding"}
	f.Reject(1, 2, ind)
	f.Reject(1, 2, ind)
	if f.Multiplier(1, 2, risk) != 1 {
		t.Error("feedback leaked across contexts with different relationships")
	}
	if f.Multiplier(1, 2, ind) >= 1 {
		t.Error("rejected pair not demoted in its own context")
	}
	// Nil context is its own bucket.
	if f.Multiplier(1, 2, nil) != 1 {
		t.Error("feedback leaked into the context-free bucket")
	}
}

func TestFeedbackRerank(t *testing.T) {
	f := NewFeedbackStore()
	ctx := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	results := []Result{
		{Concept: 10, Score: 0.9},
		{Concept: 20, Score: 0.8},
		{Concept: 30, Score: 0.7},
	}
	// Heavy rejection of the top result and acceptance of the last flips
	// the order.
	for i := 0; i < 8; i++ {
		f.Reject(1, 10, ctx)
		f.Accept(1, 30, ctx)
	}
	f.Rerank(1, ctx, results)
	if results[0].Concept != 30 || results[2].Concept != 10 {
		t.Errorf("rerank order = %v, %v, %v", results[0].Concept, results[1].Concept, results[2].Concept)
	}
}

func TestFeedbackRelaxerEndToEnd(t *testing.T) {
	ing := ingestWorld(t, IngestOptions{})
	sim := NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	base := NewRelaxer(ing, sim, exactMapper{ing.Graph}, RelaxOptions{Radius: 4})
	fr := NewFeedbackRelaxer(base, nil)
	ctx := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}

	before, err := fr.RelaxTerm("headache", ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) < 2 {
		t.Skipf("not enough candidates to exercise reranking: %d", len(before))
	}
	top := before[0].Concept
	// The user keeps rejecting the top result...
	q, _ := exactMapper{ing.Graph}.Map("headache")
	for i := 0; i < 12; i++ {
		fr.Feedback.Reject(q, top, ctx)
	}
	after, err := fr.RelaxTerm("headache", ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The rejected concept's score must be heavily discounted (down to the
	// MinBoost floor) — whether it loses the top spot depends on how far
	// ahead it was, which the floor intentionally bounds.
	var demoted float64
	for _, r := range after {
		if r.Concept == top {
			demoted = r.Score
		}
	}
	if demoted > 0.3*before[0].Score {
		t.Errorf("rejected concept score %v not demoted from %v", demoted, before[0].Score)
	}
	// ...and the unwrapped relaxer is unaffected.
	raw, err := base.RelaxTerm("headache", ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if raw[0].Concept != top {
		t.Error("feedback leaked into the base relaxer")
	}
	// Unknown terms surface the underlying error.
	if _, err := fr.RelaxTerm("zzqx", ctx, 0); err == nil {
		t.Error("unmappable term must fail")
	}
	// k counts instances, as in the base relaxer.
	limited, err := fr.RelaxTerm("headache", ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) == 0 || len(limited) > len(after) {
		t.Errorf("k-limited results = %d", len(limited))
	}
}

func TestFeedbackConcurrency(t *testing.T) {
	f := NewFeedbackStore()
	ctx := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Accept(eks.ConceptID(w), 99, ctx)
				f.Multiplier(eks.ConceptID(w), 99, ctx)
				f.Reject(99, eks.ConceptID(w), ctx)
			}
		}(w)
	}
	wg.Wait()
	if f.Len() != 16 {
		t.Errorf("tuples = %d, want 16", f.Len())
	}
	if f.Net(0, 99, ctx) != 200 {
		t.Errorf("net = %d, want 200", f.Net(0, 99, ctx))
	}
}

func TestSortResultsDeterministicTies(t *testing.T) {
	rs := []Result{{Concept: 5, Score: 0.5}, {Concept: 2, Score: 0.5}, {Concept: 9, Score: 0.9}}
	sortResults(rs)
	if rs[0].Concept != 9 || rs[1].Concept != 2 || rs[2].Concept != 5 {
		t.Errorf("sorted = %v", rs)
	}
	_ = kb.InstanceID(0)
}
