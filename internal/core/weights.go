package core

import (
	"fmt"
	"math"

	"medrelax/internal/eks"
)

// WeightExample is one labeled training pair for the path-weight learner: a
// path between a query concept and a candidate, and whether a domain expert
// judged the candidate semantically related.
type WeightExample struct {
	Path     eks.Path
	Relevant bool
}

// LearnPathWeights fits the generalization/specialization hop weights of
// Equation 4 from labeled examples with logistic regression, the "simple
// statistical regression analysis" the paper uses (Section 5.2).
//
// The model is log-linear in the log-weights: with G = Σ(D−i) over the
// generalization hops of a path and S the same sum over specialization
// hops, log p_{A,B} = G·log(w_gen) + S·log(w_spec). We fit
// P(relevant) = σ(b + βg·G + βs·S) by gradient descent and read the hop
// weights off as w = e^β, clamped to (0, 1] — a hop can only ever discount.
//
// It returns an error when the examples are degenerate (all one label, or
// empty).
func LearnPathWeights(examples []WeightExample, iterations int, learningRate float64) (PathWeights, error) {
	if iterations <= 0 {
		iterations = 2000
	}
	if learningRate <= 0 {
		learningRate = 0.05
	}
	pos, neg := 0, 0
	for _, ex := range examples {
		if ex.Relevant {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return PathWeights{}, fmt.Errorf("core: weight learning needs both labels (got %d relevant, %d irrelevant)", pos, neg)
	}

	// Featurize: exponent-weighted hop counts.
	type feat struct {
		g, s float64
		y    float64
	}
	feats := make([]feat, 0, len(examples))
	for _, ex := range examples {
		d := ex.Path.Len()
		var g, s float64
		for i, step := range ex.Path.Steps {
			e := float64(d - (i + 1))
			if step.Generalization {
				g += e
			} else {
				s += e
			}
		}
		y := 0.0
		if ex.Relevant {
			y = 1
		}
		feats = append(feats, feat{g: g, s: s, y: y})
	}

	// L2 regularization keeps the slope coefficients bounded on separable
	// data, where unregularized logistic regression would diverge and read
	// off as a degenerate hop weight near zero.
	const lambda = 0.05
	b, bg, bs := 0.0, 0.0, 0.0
	n := float64(len(feats))
	for it := 0; it < iterations; it++ {
		var db, dbg, dbs float64
		for _, f := range feats {
			p := sigmoid(b + bg*f.g + bs*f.s)
			err := p - f.y
			db += err
			dbg += err * f.g
			dbs += err * f.s
		}
		b -= learningRate * db / n
		bg -= learningRate * (dbg/n + lambda*bg)
		bs -= learningRate * (dbs/n + lambda*bs)
	}
	return PathWeights{
		Generalization: clampWeight(math.Exp(bg)),
		Specialization: clampWeight(math.Exp(bs)),
	}, nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// clampWeight keeps a learned hop weight in (0, 1]: weights above 1 would
// reward distance, and non-positive weights are meaningless in Equation 4.
func clampWeight(w float64) float64 {
	if w > 1 {
		return 1
	}
	if w < 0.01 {
		return 0.01
	}
	return w
}
