package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"medrelax/internal/eks"
	"medrelax/internal/ontology"
)

// Materialized holds offline-computed relaxation answers for the head of
// the (query concept, context) distribution — the zipfian head the corpus
// frequency tables identify. Each entry stores the scored candidate set at
// the maximum reachable radius, sorted by the final ranking order, plus the
// per-radius distinct-instance counts that drive dynamic radius growth; at
// query time the stopping radius is derived from the counts exactly as the
// live traversal derives it, the stored order is filtered to that radius
// (the comparator ignores hops, so a filtered sorted list is the sorted
// filtered list), and candidates are consumed until k distinct instances —
// byte-identical output with no traversal, no scoring, and no sort.
//
// Entries are valid only under the RelaxOptions they were built with;
// SetMaterialized refuses a store whose options differ from the relaxer's.
type Materialized struct {
	opts    RelaxOptions
	entries map[matKey]*matEntry

	// flat, when set, backs the store with sorted flat-bundle sections
	// (usually a memory mapping) instead of the entries map; see
	// OpenFlatMaterialized.
	flat *flatMaterialized
}

type matKey struct {
	concept eks.ConceptID
	ctx     string
}

type matEntry struct {
	// complete is true when the full candidate set fit under MaxPerQuery;
	// an incomplete entry can only serve queries whose k is satisfied
	// within the stored prefix.
	complete bool
	// counts[i] is the number of distinct KB instances reachable through
	// candidates within radius opts.Radius+i, computed over the full
	// (untruncated) candidate set — the exact quantity the live traversal's
	// instanceCount derives per growth round.
	counts []int32
	// cands is the candidate set at the maximum radius, sorted by
	// (score descending, concept ascending) — the final ranking order.
	cands []matCand
}

// matCand aliases the exported fixed-layout record so map-built and
// flat-mapped stores share one candidate representation.
type matCand = MatCand

// MaterializeOptions tunes the offline top-k materialization.
type MaterializeOptions struct {
	// Enabled turns the build on inside Ingest.
	Enabled bool
	// Relax must mirror the serving relaxer's options — radius growth and
	// self-inclusion are baked into the stored entries. Zero values default
	// like engine serving does (radius 3, dynamic growth to 8).
	Relax RelaxOptions
	// HeadFraction selects the top fraction of flagged concepts by
	// aggregate corpus frequency (ties by ID). Default 0.25.
	HeadFraction float64
	// HeadMax caps the head size regardless of fraction. Default 1024;
	// negative means unlimited.
	HeadMax int
	// MaxPerQuery caps each entry's stored candidate list; a truncated
	// entry still serves any k it can prove satisfied and falls back to
	// the index/live path otherwise. Default 256; negative means unlimited.
	MaxPerQuery int
	// Contexts are the query contexts materialized besides the
	// context-free (nil) entry every head concept gets.
	Contexts []ontology.Context
	// Workers is the build parallelism; 0 follows GOMAXPROCS. Deterministic
	// for every value.
	Workers int
}

func (o MaterializeOptions) withDefaults() MaterializeOptions {
	o.Relax = o.Relax.withDefaults()
	if o.HeadFraction <= 0 {
		o.HeadFraction = 0.25
	}
	if o.HeadFraction > 1 {
		o.HeadFraction = 1
	}
	if o.HeadMax == 0 {
		o.HeadMax = 1024
	}
	if o.MaxPerQuery == 0 {
		o.MaxPerQuery = 256
	}
	return o
}

// headConcepts ranks the flagged concepts by aggregate corpus frequency
// (descending, ties by ascending ID) and takes the configured head.
func headConcepts(ing *Ingestion, opts MaterializeOptions) []eks.ConceptID {
	ids := ing.FlaggedIDs()
	sort.Slice(ids, func(i, j int) bool {
		var fi, fj float64
		if ing.Frequencies != nil {
			fi, fj = ing.Frequencies.RawAggregate(ids[i]), ing.Frequencies.RawAggregate(ids[j])
		}
		if fi != fj {
			return fi > fj
		}
		return ids[i] < ids[j]
	})
	n := int(math.Ceil(opts.HeadFraction * float64(len(ids))))
	if opts.HeadMax > 0 && n > opts.HeadMax {
		n = opts.HeadMax
	}
	if n > len(ids) {
		n = len(ids)
	}
	return ids[:n]
}

// MaterializeTopK builds the store over the frequency head of the flagged
// concepts. It runs once, offline, after Ingest; sim must evaluate over the
// same frozen graph and frequency table the online phase will use.
func MaterializeTopK(ing *Ingestion, sim *Similarity, opts MaterializeOptions) *Materialized {
	opts = opts.withDefaults()
	ropts := opts.Relax
	head := headConcepts(ing, opts)

	ctxs := make([]*ontology.Context, 0, len(opts.Contexts)+1)
	ctxs = append(ctxs, nil)
	for i := range opts.Contexts {
		ctxs = append(ctxs, &opts.Contexts[i])
	}

	m := &Materialized{opts: ropts, entries: make(map[matKey]*matEntry, len(head)*len(ctxs))}
	built := make([]map[string]*matEntry, len(head))

	workers := resolveParallelism(opts.Workers)
	if workers > len(head) {
		workers = len(head)
	}
	if workers < 1 {
		workers = 1
	}
	relaxer := NewRelaxer(ing, sim, nil, ropts)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := &relaxScratch{}
			for i := range next {
				built[i] = materializeConcept(relaxer, head[i], ctxs, opts, sc)
			}
		}()
	}
	for i := range head {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, q := range head {
		for ctx, e := range built[i] {
			m.entries[matKey{concept: q, ctx: ctx}] = e
		}
	}
	return m
}

// materializeConcept builds one head concept's entries for every context:
// the full candidate set at the maximum radius, per-radius instance counts,
// and the per-context scored rankings.
func materializeConcept(r *Relaxer, q eks.ConceptID, ctxs []*ontology.Context, opts MaterializeOptions, sc *relaxScratch) map[string]*matEntry {
	ropts := opts.Relax
	maxR := ropts.MaxRadius
	if !ropts.DynamicRadius {
		maxR = ropts.Radius
	}
	cands := r.flaggedWithin(q, maxR, sc)

	// Per-radius distinct-instance counts over the full candidate set.
	// flaggedWithin returns hop-ascending order (self first under
	// IncludeSelf), so one sweep with a single dedup set suffices.
	counts := make([]int32, maxR-ropts.Radius+1)
	instSeen := sc.resetSeen()
	ci := 0
	for radius := ropts.Radius; radius <= maxR; radius++ {
		for ci < len(cands) && cands[ci].Hops <= radius {
			for _, iid := range r.ing.InstancesForConcept(cands[ci].ID) {
				instSeen[iid] = true
			}
			ci++
		}
		counts[radius-ropts.Radius] = int32(len(instSeen))
	}

	out := make(map[string]*matEntry, len(ctxs))
	for _, ctx := range ctxs {
		e := &matEntry{complete: true, counts: counts, cands: make([]matCand, 0, len(cands))}
		for _, nb := range cands {
			e.cands = append(e.cands, matCand{
				Concept: nb.ID,
				Score:   r.sim.Sim(q, nb.ID, ctx),
				Hops:    int32(nb.Hops),
			})
		}
		sort.Slice(e.cands, func(i, j int) bool {
			if e.cands[i].Score != e.cands[j].Score {
				return e.cands[i].Score > e.cands[j].Score
			}
			return e.cands[i].Concept < e.cands[j].Concept
		})
		if opts.MaxPerQuery > 0 && len(e.cands) > opts.MaxPerQuery {
			e.cands = e.cands[:opts.MaxPerQuery]
			e.complete = false
		}
		out[ctxKey(ctx)] = e
	}
	return out
}

// materializedServe answers from the store when it can prove the answer
// identical to the live traversal; ok=false declines (no entry, or a
// truncated entry that cannot satisfy this k) and the caller falls through.
// The stopping radius is derived from the stored per-radius instance counts
// exactly as the live traversal's growth loop derives it; the stored
// max-radius ranking filtered to that radius is the radius ranking because
// the comparator ignores hops.
func (r *Relaxer) materializedServe(ctx context.Context, q eks.ConceptID, qctx *ontology.Context, k, target int, sc *relaxScratch) ([]Result, bool, error) {
	e, found := r.mat.get(q, ctxKey(qctx))
	if !found {
		return nil, false, nil
	}
	radius := r.opts.Radius
	if r.opts.DynamicRadius {
		for radius < r.opts.MaxRadius && int(e.counts[radius-r.opts.Radius]) < target {
			radius++
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, false, fmt.Errorf("core: relaxation aborted at radius %d: %w", radius, err)
	}
	if k <= 0 {
		// Full ranked list requested: only a complete entry holds it.
		if !e.complete {
			return nil, false, nil
		}
		out := make([]Result, 0, len(e.cands))
		for i := range e.cands {
			c := &e.cands[i]
			if int(c.Hops) > radius {
				continue
			}
			out = append(out, Result{Concept: c.Concept, Score: c.Score, Hops: int(c.Hops), Instances: r.ing.InstancesForConcept(c.Concept)})
		}
		return out, true, nil
	}
	seen := sc.resetSeen()
	var out []Result
	for i := range e.cands {
		c := &e.cands[i]
		if int(c.Hops) > radius {
			continue
		}
		if len(seen) >= k {
			return out, true, nil
		}
		instances := r.ing.InstancesForConcept(c.Concept)
		out = append(out, Result{Concept: c.Concept, Score: c.Score, Hops: int(c.Hops), Instances: instances})
		for _, iid := range instances {
			seen[iid] = true
		}
	}
	if len(seen) < k && !e.complete {
		// The stored prefix ran out before k was satisfied and truncation
		// hides whether more candidates exist — only a traversal can answer.
		return nil, false, nil
	}
	return out, true, nil
}

// get returns one entry as a value view under either backing; the slices of
// the returned entry are shared with the store and must not be mutated.
func (m *Materialized) get(concept eks.ConceptID, ctx string) (matEntry, bool) {
	if m.flat != nil {
		return m.flat.get(concept, ctx)
	}
	e, ok := m.entries[matKey{concept: concept, ctx: ctx}]
	if !ok {
		return matEntry{}, false
	}
	return *e, true
}

// Options reports the RelaxOptions the store was built under.
func (m *Materialized) Options() RelaxOptions { return m.opts }

// Entries reports the number of (concept, context) entries.
func (m *Materialized) Entries() int {
	if m.flat != nil {
		return len(m.flat.concepts)
	}
	return len(m.entries)
}

// Concepts reports the number of distinct materialized query concepts.
func (m *Materialized) Concepts() int {
	if m.flat != nil {
		return m.flat.distinctConcepts()
	}
	seen := map[eks.ConceptID]bool{}
	for k := range m.entries {
		seen[k.concept] = true
	}
	return len(seen)
}

// MaterializedSnapshot is the serializable form of a Materialized store.
type MaterializedSnapshot struct {
	Relax   RelaxOptions                `json:"relax"`
	Entries []MaterializedEntrySnapshot `json:"entries"`
}

// MaterializedEntrySnapshot is one (concept, context) entry.
type MaterializedEntrySnapshot struct {
	Concept  eks.ConceptID           `json:"concept"`
	Ctx      string                  `json:"ctx,omitempty"`
	Complete bool                    `json:"complete"`
	Counts   []int32                 `json:"counts"`
	Cands    []MaterializedCandidate `json:"cands"`
}

// MaterializedCandidate is one stored ranked candidate.
type MaterializedCandidate struct {
	Concept eks.ConceptID `json:"concept"`
	Score   float64       `json:"score"`
	Hops    int           `json:"hops"`
}

// Snapshot extracts the serializable form, entries sorted by (concept,
// context) so bundle bytes are deterministic.
func (m *Materialized) Snapshot() *MaterializedSnapshot {
	keys := make([]matKey, 0, m.Entries())
	if m.flat != nil {
		// Flat entries are stored in (concept, ctx) order already.
		for i := range m.flat.concepts {
			keys = append(keys, matKey{concept: m.flat.concepts[i], ctx: m.flat.ctxs[i]})
		}
	} else {
		for k := range m.entries {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].concept != keys[j].concept {
				return keys[i].concept < keys[j].concept
			}
			return keys[i].ctx < keys[j].ctx
		})
	}
	snap := &MaterializedSnapshot{Relax: m.opts, Entries: make([]MaterializedEntrySnapshot, 0, len(keys))}
	for _, k := range keys {
		e, _ := m.get(k.concept, k.ctx)
		es := MaterializedEntrySnapshot{
			Concept:  k.concept,
			Ctx:      k.ctx,
			Complete: e.complete,
			Counts:   append([]int32(nil), e.counts...),
			Cands:    make([]MaterializedCandidate, 0, len(e.cands)),
		}
		for _, c := range e.cands {
			es.Cands = append(es.Cands, MaterializedCandidate{Concept: c.Concept, Score: c.Score, Hops: int(c.Hops)})
		}
		snap.Entries = append(snap.Entries, es)
	}
	return snap
}

// RestoreMaterialized rebuilds a store from its snapshot, validating the
// invariants serving relies on: counts span the dynamic radius range,
// candidates are in final ranking order within the max radius.
func RestoreMaterialized(snap *MaterializedSnapshot) (*Materialized, error) {
	opts := snap.Relax.withDefaults()
	if snap.Relax != opts {
		return nil, fmt.Errorf("core: materialized store has non-normalized relax options %+v", snap.Relax)
	}
	wantCounts := opts.MaxRadius - opts.Radius + 1
	if !opts.DynamicRadius {
		wantCounts = 1
	}
	m := &Materialized{opts: opts, entries: make(map[matKey]*matEntry, len(snap.Entries))}
	for _, es := range snap.Entries {
		k := matKey{concept: es.Concept, ctx: es.Ctx}
		if _, dup := m.entries[k]; dup {
			return nil, fmt.Errorf("core: materialized entry (%d, %q) appears twice", es.Concept, es.Ctx)
		}
		if len(es.Counts) != wantCounts {
			return nil, fmt.Errorf("core: materialized entry (%d, %q) has %d radius counts, want %d", es.Concept, es.Ctx, len(es.Counts), wantCounts)
		}
		e := &matEntry{complete: es.Complete, counts: append([]int32(nil), es.Counts...), cands: make([]matCand, 0, len(es.Cands))}
		for i, c := range es.Cands {
			if c.Hops < 0 || c.Hops > opts.MaxRadius {
				return nil, fmt.Errorf("core: materialized candidate %d of (%d, %q) at %d hops exceeds max radius %d", c.Concept, es.Concept, es.Ctx, c.Hops, opts.MaxRadius)
			}
			if i > 0 {
				prev := es.Cands[i-1]
				if c.Score > prev.Score || (c.Score == prev.Score && c.Concept <= prev.Concept) {
					return nil, fmt.Errorf("core: materialized entry (%d, %q) not in ranking order at %d", es.Concept, es.Ctx, i)
				}
			}
			e.cands = append(e.cands, matCand{Concept: c.Concept, Score: c.Score, Hops: int32(c.Hops)})
		}
		m.entries[k] = e
	}
	return m, nil
}
