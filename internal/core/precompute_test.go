package core

import (
	"testing"

	"medrelax/internal/ontology"
)

func precomputeWorld(t *testing.T) (*Ingestion, *Similarity, *PrecomputedSimilarity) {
	t.Helper()
	ing := ingestWorld(t, IngestOptions{})
	sim := NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	store := Precompute(ing, sim, PrecomputeOptions{
		Radius: 4,
		Contexts: []ontology.Context{
			{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"},
			{Domain: "Risk", Relationship: "hasFinding", Range: "Finding"},
		},
	})
	return ing, sim, store
}

func TestPrecomputeCoverage(t *testing.T) {
	ing, _, store := precomputeWorld(t)
	if store.Queries() != len(ing.Flagged) {
		t.Errorf("precomputed %d queries, want %d flagged", store.Queries(), len(ing.Flagged))
	}
	// One entry per (query, context) including the context-free slot.
	if store.Entries() != 3*store.Queries() {
		t.Errorf("entries = %d, want %d", store.Entries(), 3*store.Queries())
	}
}

func TestPrecomputeMatchesLive(t *testing.T) {
	ing, sim, store := precomputeWorld(t)
	live := NewRelaxer(ing, sim, exactMapper{ing.Graph}, RelaxOptions{Radius: 4})
	ctx := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	for q := range ing.Flagged {
		cached, ok := store.Lookup(q, ctx)
		if !ok {
			t.Fatalf("no cache entry for %d", q)
		}
		liveRanked := live.RankedCandidates(q, ctx)
		if len(cached) != len(liveRanked) {
			t.Fatalf("query %d: %d cached vs %d live", q, len(cached), len(liveRanked))
		}
		for i := range cached {
			if cached[i].Concept != liveRanked[i].Concept || cached[i].Score != liveRanked[i].Score {
				t.Fatalf("query %d rank %d: cached %+v vs live %+v", q, i, cached[i], liveRanked[i])
			}
		}
	}
}

func TestPrecomputeLookupMisses(t *testing.T) {
	_, _, store := precomputeWorld(t)
	if _, ok := store.Lookup(999999, nil); ok {
		t.Error("unknown concept must miss")
	}
	ctx := &ontology.Context{Domain: "Drug", Relationship: "treat", Range: "Indication"}
	for q := range store.entries {
		if _, ok := store.Lookup(q, ctx); ok {
			t.Error("unprecomputed context must miss")
		}
		break
	}
}

func TestPrecomputeMaxPerQuery(t *testing.T) {
	ing := ingestWorld(t, IngestOptions{})
	sim := NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	store := Precompute(ing, sim, PrecomputeOptions{Radius: 6, MaxPerQuery: 1})
	for q := range ing.Flagged {
		ranked, ok := store.Lookup(q, nil)
		if !ok {
			t.Fatalf("no entry for %d", q)
		}
		if len(ranked) > 1 {
			t.Fatalf("entry for %d exceeds cap: %d", q, len(ranked))
		}
	}
}

func TestCachedRelaxer(t *testing.T) {
	ing, sim, store := precomputeWorld(t)
	live := NewRelaxer(ing, sim, exactMapper{ing.Graph}, RelaxOptions{Radius: 4})
	cached := NewCachedRelaxer(live, store)
	ctx := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}

	// Flagged query: served from the store, identical to live.
	a, err := cached.RelaxTerm("headache", ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := live.RelaxTerm("headache", ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("cached %d vs live %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Concept != b[i].Concept {
			t.Fatalf("rank %d differs", i)
		}
	}
	// Unflagged query concept (pertussis, 11): cache misses, live fallback
	// still answers.
	res, err := cached.RelaxTerm("pertussis", ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Error("fallback produced nothing")
	}
	// Unmappable term: error surfaces.
	if _, err := cached.RelaxTerm("zzqx", ctx, 0); err == nil {
		t.Error("unmappable term must fail")
	}
	// k semantics preserved.
	limited := cached.RelaxConcept(5, ctx, 1)
	if len(limited) == 0 {
		t.Error("k-limited lookup empty")
	}
}
