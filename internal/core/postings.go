package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"medrelax/internal/eks"
	"medrelax/internal/ontology"
)

// CandidateIndex is the posting-list side of the offline acceleration pair
// (the other being Materialized): for every eligible query concept it keeps
// the flagged candidates within a fixed hop radius together with the
// canonical-meet geometry Equation 5 needs — the generalization and
// specialization hop counts and the tied least-common-subsumer set. The
// online phase then scores a bounded, pre-gathered posting list instead of
// traversing flaggedWithin neighborhoods and re-deriving each candidate's
// subsumer meet per query. Scores come out bit-identical to the live
// traversal because the stored geometry feeds the exact same arithmetic
// (canonicalPathWeight × simICFromLCS, LCS set iterated in the same
// ascending order) and the final ranking comparator is a total order, so
// gathering order cannot leak into the output.
//
// Postings are stored in flat shared pools (one postings array, one LCS id
// array) with per-concept spans, sorted by (hops ascending, build-time
// partial similarity descending, id ascending); the hop-major order lets a
// radius-r candidate set be cut out of the list with one binary search, so
// dynamic-radius growth never re-gathers.
type CandidateIndex struct {
	radius int
	lists  map[eks.ConceptID]postingSpan
	posts  []idxPosting
	lcs    []eks.ConceptID
	// skipped counts concepts left out because their neighborhood exceeded
	// MaxPostings; queries anchored there fall back to the live traversal.
	skipped int

	// flatIDs/flatOff, when set, replace lists: the indexed concepts in
	// ascending order with CSR spans into posts (usually aliasing a memory
	// mapping); see OpenFlatCandidateIndex.
	flatIDs []eks.ConceptID
	flatOff []int32
}

// postingSpan is one concept's slice of the shared posting pool.
type postingSpan struct{ lo, hi int32 }

// idxPosting aliases the exported fixed-layout record so map-built and
// flat-mapped indexes share one posting representation; an empty LCS span
// means no common subsumer, score 0.
type idxPosting = Posting

// CandidateIndexOptions tunes the offline build.
type CandidateIndexOptions struct {
	// Enabled turns the build on inside Ingest.
	Enabled bool
	// Radius is the hop radius postings are gathered in. It must cover the
	// serving radius for the index to be used at all, and each extra hop of
	// headroom lets one more dynamic-radius growth step stay on the index
	// before falling back to live traversal. Default 4.
	Radius int
	// MaxPostings skips concepts whose in-radius flagged neighborhood
	// exceeds this bound (they fall back to the live traversal), keeping
	// hub concepts from dominating build time and bundle size. Default
	// 4096; negative means unlimited.
	MaxPostings int
	// Workers is the build parallelism; 0 follows GOMAXPROCS. The index is
	// deterministic for every value: workers own disjoint concepts and the
	// pools are assembled in ascending concept order after the barrier.
	Workers int
}

func (o CandidateIndexOptions) withDefaults() CandidateIndexOptions {
	if o.Radius <= 0 {
		o.Radius = 4
	}
	if o.MaxPostings == 0 {
		o.MaxPostings = 4096
	}
	return o
}

// builtList is one worker's output for a concept before pool assembly.
type builtList struct {
	indexed bool
	posts   []idxPosting
	lcs     []eks.ConceptID
}

// BuildCandidateIndex gathers and precomputes posting lists for every
// concept of the ingestion's graph. It runs once, offline, after the graph
// is frozen; sim must evaluate over the same frozen graph and frequency
// table the online phase will use.
func BuildCandidateIndex(ing *Ingestion, sim *Similarity, opts CandidateIndexOptions) *CandidateIndex {
	opts = opts.withDefaults()
	ids := ing.Graph.ConceptIDs()
	built := make([]builtList, len(ids))

	workers := resolveParallelism(opts.Workers)
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := &meetScratch{}
			for i := range next {
				built[i] = buildPostings(ing, sim, ids[i], opts, scratch)
			}
		}()
	}
	for i := range ids {
		next <- i
	}
	close(next)
	wg.Wait()

	idx := &CandidateIndex{radius: opts.Radius, lists: make(map[eks.ConceptID]postingSpan, len(ids))}
	for i, q := range ids {
		b := &built[i]
		if !b.indexed {
			idx.skipped++
			continue
		}
		lo := int32(len(idx.posts))
		lcsBase := int32(len(idx.lcs))
		for _, p := range b.posts {
			p.LCSLo += lcsBase
			p.LCSHi += lcsBase
			idx.posts = append(idx.posts, p)
		}
		idx.lcs = append(idx.lcs, b.lcs...)
		idx.lists[q] = postingSpan{lo: lo, hi: int32(len(idx.posts))}
	}
	return idx
}

// buildPostings computes one concept's posting list: flagged neighbors
// within the index radius, each with its canonical-meet geometry, ordered
// by (hops, partial similarity under the build weights, id).
func buildPostings(ing *Ingestion, sim *Similarity, q eks.ConceptID, opts CandidateIndexOptions, scratch *meetScratch) builtList {
	nbs := ing.Graph.NeighborsWithinHops(q, opts.Radius)
	flagged := nbs[:0]
	for _, nb := range nbs {
		if ing.IsFlagged(nb.ID) {
			flagged = append(flagged, nb)
		}
	}
	if opts.MaxPostings > 0 && len(flagged) > opts.MaxPostings {
		return builtList{}
	}
	out := builtList{indexed: true, posts: make([]idxPosting, 0, len(flagged))}
	partials := make([]float64, 0, len(flagged))
	for _, nb := range flagged {
		p := idxPosting{Concept: nb.ID, Hops: int32(nb.Hops)}
		partial := 0.0
		if lcs, _, gen, spec, ok := sim.canonicalMeet(q, nb.ID, scratch); ok {
			p.Gen, p.Spec = int32(gen), int32(spec)
			p.LCSLo = int32(len(out.lcs))
			out.lcs = append(out.lcs, lcs...)
			p.LCSHi = int32(len(out.lcs))
			partial = canonicalPathWeight(sim.Weights, gen, spec)
		}
		out.posts = append(out.posts, p)
		partials = append(partials, partial)
	}
	order := make([]int, len(out.posts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := &out.posts[order[a]], &out.posts[order[b]]
		if pa.Hops != pb.Hops {
			return pa.Hops < pb.Hops
		}
		if partials[order[a]] != partials[order[b]] {
			return partials[order[a]] > partials[order[b]]
		}
		return pa.Concept < pb.Concept
	})
	sorted := make([]idxPosting, len(out.posts))
	for i, j := range order {
		sorted[i] = out.posts[j]
	}
	out.posts = sorted
	return out
}

// lookup returns q's posting list; ok is false when q was not indexed
// (skipped hub or unknown concept) and the caller must traverse live.
func (x *CandidateIndex) lookup(q eks.ConceptID) ([]idxPosting, bool) {
	if x.flatIDs != nil {
		i := sort.Search(len(x.flatIDs), func(i int) bool { return x.flatIDs[i] >= q })
		if i >= len(x.flatIDs) || x.flatIDs[i] != q {
			return nil, false
		}
		return x.posts[x.flatOff[i]:x.flatOff[i+1]], true
	}
	s, ok := x.lists[q]
	if !ok {
		return nil, false
	}
	return x.posts[s.lo:s.hi], true
}

// hopCut returns the end of the prefix of posts with hops <= radius; posts
// are hop-major sorted so the radius-r candidate set is posts[:cut].
func hopCut(posts []idxPosting, radius int) int {
	return sort.Search(len(posts), func(i int) bool { return int(posts[i].Hops) > radius })
}

// indexedCandidates is rankedCandidatesTarget over the posting list:
// identical candidate set, identical scores, identical ordering. ok=false
// declines (unindexed concept, or dynamic growth outrunning the index
// radius) and the caller runs the live traversal.
func (r *Relaxer) indexedCandidates(ctx context.Context, q eks.ConceptID, qctx *ontology.Context, target int, sc *relaxScratch) ([]Result, bool, error) {
	idx := r.cidx
	if r.opts.Radius > idx.radius {
		return nil, false, nil
	}
	posts, found := idx.lookup(q)
	if !found {
		return nil, false, nil
	}
	radius := r.opts.Radius
	var cut int
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, fmt.Errorf("core: relaxation aborted at radius %d: %w", radius, err)
		}
		cut = hopCut(posts, radius)
		if !r.opts.DynamicRadius || radius >= r.opts.MaxRadius || r.postingInstanceCount(posts[:cut], q, sc) >= target {
			break
		}
		if radius+1 > idx.radius {
			// The next growth round would look past the indexed horizon;
			// only the live traversal can see further.
			return nil, false, nil
		}
		radius++
	}
	includeSelf := r.opts.IncludeSelf && r.ing.IsFlagged(q)
	total := cut
	if includeSelf {
		total++
	}
	out := make([]Result, 0, total)
	if includeSelf {
		out = append(out, Result{Concept: q, Score: 1, Hops: 0, Instances: r.ing.InstancesForConcept(q)})
	}
	for i := 0; i < cut; i++ {
		if i%scoreCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, false, fmt.Errorf("core: relaxation aborted scoring candidate %d/%d: %w", i, cut, err)
			}
		}
		p := &posts[i]
		score := 0.0
		if p.LCSHi > p.LCSLo {
			ic := r.sim.simICFromLCS(q, p.Concept, idx.lcs[p.LCSLo:p.LCSHi], qctx)
			if r.sim.UsePathWeight {
				score = r.pw[p.Gen][p.Spec] * ic
			} else {
				score = ic
			}
		}
		out = append(out, Result{Concept: p.Concept, Score: score, Hops: int(p.Hops), Instances: r.ing.InstancesForConcept(p.Concept)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Concept < out[j].Concept
	})
	return out, true, nil
}

// postingInstanceCount mirrors instanceCount over a posting prefix,
// including the self instances flaggedWithin would have contributed.
func (r *Relaxer) postingInstanceCount(posts []idxPosting, q eks.ConceptID, sc *relaxScratch) int {
	seen := sc.resetSeen()
	if r.opts.IncludeSelf && r.ing.IsFlagged(q) {
		for _, iid := range r.ing.InstancesForConcept(q) {
			seen[iid] = true
		}
	}
	for i := range posts {
		for _, iid := range r.ing.InstancesForConcept(posts[i].Concept) {
			seen[iid] = true
		}
	}
	return len(seen)
}

// Radius reports the hop radius the index was built with.
func (x *CandidateIndex) Radius() int { return x.radius }

// Concepts reports how many concepts have a posting list.
func (x *CandidateIndex) Concepts() int {
	if x.flatIDs != nil {
		return len(x.flatIDs)
	}
	return len(x.lists)
}

// Postings reports the total posting count across all lists.
func (x *CandidateIndex) Postings() int { return len(x.posts) }

// Skipped reports how many concepts were left unindexed by MaxPostings.
func (x *CandidateIndex) Skipped() int { return x.skipped }

// maxGeometry scans the pool for the largest gen/spec hop counts, sizing
// the path-weight table SetCandidateIndex precomputes.
func (x *CandidateIndex) maxGeometry() (maxGen, maxSpec int) {
	for i := range x.posts {
		if g := int(x.posts[i].Gen); g > maxGen {
			maxGen = g
		}
		if s := int(x.posts[i].Spec); s > maxSpec {
			maxSpec = s
		}
	}
	return maxGen, maxSpec
}

// pathWeightTable precomputes canonicalPathWeight for every (gen, spec)
// pair occurring in the index. Entries are computed by the same function
// the live path multiplies through, so table lookups are bit-identical.
func (x *CandidateIndex) pathWeightTable(w PathWeights) [][]float64 {
	maxGen, maxSpec := x.maxGeometry()
	table := make([][]float64, maxGen+1)
	for g := range table {
		row := make([]float64, maxSpec+1)
		for s := range row {
			row[s] = canonicalPathWeight(w, g, s)
		}
		table[g] = row
	}
	return table
}

// CandidateIndexSnapshot is the serializable form of a CandidateIndex.
type CandidateIndexSnapshot struct {
	Radius int                     `json:"radius"`
	Lists  []CandidateListSnapshot `json:"lists"`
}

// CandidateListSnapshot is one concept's posting list.
type CandidateListSnapshot struct {
	Concept  eks.ConceptID     `json:"concept"`
	Postings []PostingSnapshot `json:"postings"`
}

// PostingSnapshot is one serialized posting.
type PostingSnapshot struct {
	Concept eks.ConceptID   `json:"concept"`
	Hops    int             `json:"hops"`
	Gen     int             `json:"gen"`
	Spec    int             `json:"spec"`
	LCS     []eks.ConceptID `json:"lcs,omitempty"`
}

// Snapshot extracts the serializable form, lists in ascending concept
// order so bundle bytes are deterministic.
func (x *CandidateIndex) Snapshot() *CandidateIndexSnapshot {
	snap := &CandidateIndexSnapshot{Radius: x.radius, Lists: make([]CandidateListSnapshot, 0, x.Concepts())}
	var ids []eks.ConceptID
	if x.flatIDs != nil {
		ids = x.flatIDs // stored ascending already
	} else {
		ids = make([]eks.ConceptID, 0, len(x.lists))
		for id := range x.lists {
			ids = append(ids, id)
		}
		sortConceptIDs(ids)
	}
	for _, id := range ids {
		posts, _ := x.lookup(id)
		ls := CandidateListSnapshot{Concept: id, Postings: make([]PostingSnapshot, 0, len(posts))}
		for i := range posts {
			p := &posts[i]
			ps := PostingSnapshot{Concept: p.Concept, Hops: int(p.Hops), Gen: int(p.Gen), Spec: int(p.Spec)}
			if p.LCSHi > p.LCSLo {
				ps.LCS = append(ps.LCS, x.lcs[p.LCSLo:p.LCSHi]...)
			}
			ls.Postings = append(ls.Postings, ps)
		}
		snap.Lists = append(snap.Lists, ls)
	}
	return snap
}

// RestoreCandidateIndex rebuilds an index from its snapshot, validating
// the structural invariants the online phase relies on (hop-major posting
// order within the radius, ascending LCS sets, non-negative geometry).
func RestoreCandidateIndex(snap *CandidateIndexSnapshot) (*CandidateIndex, error) {
	if snap.Radius < 1 {
		return nil, fmt.Errorf("core: candidate index radius %d < 1", snap.Radius)
	}
	x := &CandidateIndex{radius: snap.Radius, lists: make(map[eks.ConceptID]postingSpan, len(snap.Lists))}
	for _, ls := range snap.Lists {
		if _, dup := x.lists[ls.Concept]; dup {
			return nil, fmt.Errorf("core: candidate index lists concept %d twice", ls.Concept)
		}
		lo := int32(len(x.posts))
		prevHops := 0
		for _, ps := range ls.Postings {
			if ps.Hops < 1 || ps.Hops > snap.Radius {
				return nil, fmt.Errorf("core: posting %d->%d hops %d outside [1,%d]", ls.Concept, ps.Concept, ps.Hops, snap.Radius)
			}
			if ps.Hops < prevHops {
				return nil, fmt.Errorf("core: concept %d posting list not hop-sorted", ls.Concept)
			}
			prevHops = ps.Hops
			if ps.Gen < 0 || ps.Spec < 0 {
				return nil, fmt.Errorf("core: posting %d->%d has negative meet geometry", ls.Concept, ps.Concept)
			}
			p := idxPosting{Concept: ps.Concept, Hops: int32(ps.Hops), Gen: int32(ps.Gen), Spec: int32(ps.Spec)}
			if len(ps.LCS) > 0 {
				for i := 1; i < len(ps.LCS); i++ {
					if ps.LCS[i] <= ps.LCS[i-1] {
						return nil, fmt.Errorf("core: posting %d->%d LCS set not strictly ascending", ls.Concept, ps.Concept)
					}
				}
				p.LCSLo = int32(len(x.lcs))
				x.lcs = append(x.lcs, ps.LCS...)
				p.LCSHi = int32(len(x.lcs))
			}
			x.posts = append(x.posts, p)
		}
		x.lists[ls.Concept] = postingSpan{lo: lo, hi: int32(len(x.posts))}
	}
	return x, nil
}
