package core

import (
	"reflect"
	"sync"
	"testing"

	"medrelax/internal/ontology"
)

// TestConcurrentRelaxation hammers one shared Relaxer (and therefore one
// shared Similarity with its sharded subsumer cache and meet-scratch pool)
// from many goroutines, checking every goroutine sees exactly the results a
// serial run produces. Run under -race this is the concurrency-safety proof
// for the lock-free /relax serving path.
func TestConcurrentRelaxation(t *testing.T) {
	r, _ := newTestRelaxer(t, RelaxOptions{Radius: 4, DynamicRadius: true})
	ctxs := []*ontology.Context{
		nil,
		{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"},
		{Domain: "Risk", Relationship: "hasFinding", Range: "Finding"},
	}
	terms := []string{"headache", "fever", "bronchitis", "sore throat"}

	type key struct {
		term string
		ctx  int
	}
	want := map[key][]Result{}
	for ci, ctx := range ctxs {
		for _, term := range terms {
			res, err := r.RelaxTerm(term, ctx, 0)
			if err != nil {
				t.Fatalf("serial RelaxTerm(%q): %v", term, err)
			}
			want[key{term, ci}] = res
		}
	}

	const goroutines = 32
	const iterations = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				ci := (gi + it) % len(ctxs)
				term := terms[(gi*7+it)%len(terms)]
				got, err := r.RelaxTerm(term, ctxs[ci], 0)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want[key{term, ci}]) {
					t.Errorf("goroutine %d: RelaxTerm(%q, ctx %d) diverged from serial result", gi, term, ci)
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent RelaxTerm: %v", err)
	}
}

// TestConcurrentSimilaritySharedCache drives Sim directly from many
// goroutines over overlapping concept pairs so the sharded LRU exercises
// hits, misses, and evictions concurrently.
func TestConcurrentSimilaritySharedCache(t *testing.T) {
	ing := ingestWorld(t, IngestOptions{})
	sim := NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	ids := ing.Graph.ConceptIDs()

	// Serial reference for a deterministic subset of pairs.
	type pair struct{ a, b int }
	want := map[pair]float64{}
	for i := 0; i < len(ids); i++ {
		for j := 0; j < len(ids); j++ {
			want[pair{i, j}] = sim.Sim(ids[i], ids[j], nil)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < 200; n++ {
				i := (g*13 + n) % len(ids)
				j := (g*5 + n*3) % len(ids)
				if got := sim.Sim(ids[i], ids[j], nil); got != want[pair{i, j}] {
					t.Errorf("Sim(%d,%d) = %v under concurrency, want %v", ids[i], ids[j], got, want[pair{i, j}])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestParallelPrecomputeMatchesSerial asserts the worker-pool Precompute
// yields byte-identical entries to a single-worker build.
func TestParallelPrecomputeMatchesSerial(t *testing.T) {
	ing := ingestWorld(t, IngestOptions{})
	sim := NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	ctxs := []ontology.Context{
		{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"},
	}
	serial := Precompute(ing, sim, PrecomputeOptions{Radius: 4, Contexts: ctxs, Workers: 1})
	parallel := Precompute(ing, sim, PrecomputeOptions{Radius: 4, Contexts: ctxs, Workers: 8})
	if serial.Queries() != parallel.Queries() || serial.Entries() != parallel.Entries() {
		t.Fatalf("shape mismatch: serial (%d q, %d e), parallel (%d q, %d e)",
			serial.Queries(), serial.Entries(), parallel.Queries(), parallel.Entries())
	}
	if !reflect.DeepEqual(serial.entries, parallel.entries) {
		t.Fatal("parallel Precompute entries differ from serial build")
	}
}
