package core

import (
	"medrelax/internal/eks"
	"medrelax/internal/embedding"
	"medrelax/internal/match"
	"medrelax/internal/ontology"
	"medrelax/internal/stringutil"
)

// Method is a query relaxation method under evaluation: given a query term
// and its context, return up to k ranked external concepts judged
// semantically related. The experimental harness (Table 2) runs every
// Method over the same workload.
type Method interface {
	Name() string
	RelaxConcepts(term string, ctx *ontology.Context, k int) []eks.ConceptID
}

// relaxerMethod adapts a Relaxer into a Method.
type relaxerMethod struct {
	name    string
	relaxer *Relaxer
}

// Name implements Method.
func (m *relaxerMethod) Name() string { return m.name }

// RelaxConcepts implements Method.
func (m *relaxerMethod) RelaxConcepts(term string, ctx *ontology.Context, k int) []eks.ConceptID {
	results, err := m.relaxer.RelaxTerm(term, ctx, 0)
	if err != nil {
		return nil
	}
	if k > len(results) {
		k = len(results)
	}
	out := make([]eks.ConceptID, 0, k)
	for _, r := range results[:k] {
		out = append(out, r.Concept)
	}
	return out
}

// NewQR builds the paper's full method: corpus frequencies with contextual
// information plus the directional path weight.
func NewQR(ing *Ingestion, mapper match.Mapper, opts RelaxOptions) Method {
	sim := NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	return &relaxerMethod{name: "QR", relaxer: NewRelaxer(ing, sim, mapper, opts)}
}

// NewQRNoContext builds QR-no-context: corpus frequencies aggregated over
// all contexts, path weight kept.
func NewQRNoContext(ing *Ingestion, mapper match.Mapper, opts RelaxOptions) Method {
	sim := NewSimilarity(ing.Graph, WithoutContext(ing.Frequencies), ing.Ontology)
	return &relaxerMethod{name: "QR-no-context", relaxer: NewRelaxer(ing, sim, mapper, opts)}
}

// NewQRNoCorpus builds QR-no-corpus: intrinsic (structure-only) information
// content with the path weight; contextual frequencies are unavailable
// without a corpus.
func NewQRNoCorpus(ing *Ingestion, mapper match.Mapper, opts RelaxOptions) Method {
	sim := NewSimilarity(ing.Graph, NewIntrinsicIC(ing.Graph), ing.Ontology)
	return &relaxerMethod{name: "QR-no-corpus", relaxer: NewRelaxer(ing, sim, mapper, opts)}
}

// NewICBaseline builds the baseline IC-based semantic measure (the paper's
// reference [2]): plain sim_IC over corpus frequencies, no contextual
// differentiation, no path weight.
func NewICBaseline(ing *Ingestion, mapper match.Mapper, opts RelaxOptions) Method {
	sim := NewSimilarity(ing.Graph, WithoutContext(ing.Frequencies), ing.Ontology)
	sim.UsePathWeight = false
	return &relaxerMethod{name: "IC", relaxer: NewRelaxer(ing, sim, mapper, opts)}
}

// EmbeddingMethod is the deep-learning baseline of Section 7.2: it ranks
// the flagged external concepts by cosine similarity between the query
// term's phrase embedding and each concept name's embedding, with no use of
// the graph structure or the query context.
type EmbeddingMethod struct {
	name    string
	ing     *Ingestion
	encoder *embedding.SIFEncoder
	index   *embedding.Index
	byKey   map[string][]eks.ConceptID
}

// NewEmbeddingMethod indexes the names and synonyms of every flagged
// concept under enc. name distinguishes the pre-trained and the
// corpus-trained baselines.
func NewEmbeddingMethod(name string, ing *Ingestion, enc *embedding.SIFEncoder) *EmbeddingMethod {
	m := &EmbeddingMethod{
		name:    name,
		ing:     ing,
		encoder: enc,
		byKey:   make(map[string][]eks.ConceptID),
	}
	flagged := ing.FlaggedIDs()
	type entry struct {
		key string
		vec embedding.Vector
	}
	var entries []entry
	dim := 0
	for _, id := range flagged {
		concept, ok := ing.Graph.Concept(id)
		if !ok {
			continue
		}
		for _, n := range append([]string{concept.Name}, concept.Synonyms...) {
			key := stringutil.Normalize(n)
			if key == "" {
				continue
			}
			if _, dup := m.byKey[key]; !dup {
				v := enc.Encode(stringutil.Tokenize(key))
				entries = append(entries, entry{key: key, vec: v})
				if dim == 0 && len(v) > 0 {
					dim = len(v)
				}
			}
			m.byKey[key] = appendUnique(m.byKey[key], id)
		}
	}
	m.index = embedding.NewIndex(dim)
	for _, e := range entries {
		m.index.Add(e.key, e.vec)
	}
	return m
}

func appendUnique(ids []eks.ConceptID, id eks.ConceptID) []eks.ConceptID {
	for _, x := range ids {
		if x == id {
			return ids
		}
	}
	return append(ids, id)
}

// Name implements Method.
func (m *EmbeddingMethod) Name() string { return m.name }

// RelaxConcepts implements Method; ctx is ignored — embeddings carry no
// contextual information, which is precisely the weakness the paper's
// experiments expose.
func (m *EmbeddingMethod) RelaxConcepts(term string, _ *ontology.Context, k int) []eks.ConceptID {
	q := m.encoder.Encode(stringutil.Tokenize(term))
	// Over-fetch: several name keys can map to the same concept.
	hits := m.index.Nearest(q, 4*k)
	var out []eks.ConceptID
	// The query concept itself (found by exact name or synonym) is not a
	// relaxation; drop it from the ranking up front.
	seen := map[eks.ConceptID]bool{}
	for _, id := range m.ing.Graph.LookupName(term) {
		seen[id] = true
	}
	for _, h := range hits {
		for _, id := range m.byKey[h.Key] {
			if seen[id] {
				continue
			}
			seen[id] = true
			out = append(out, id)
			if len(out) == k {
				return out
			}
		}
	}
	return out
}
