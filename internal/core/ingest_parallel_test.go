package core

import (
	"fmt"
	"maps"
	"reflect"
	"testing"

	"medrelax/internal/corpus"
	"medrelax/internal/eks"
	"medrelax/internal/medkb"
	"medrelax/internal/synthkb"
)

// assertIngestionsEqual checks the equivalence contract of the parallel
// offline phase: identical mappings, flag set, shortcut edges, and
// frequency table, element for element.
func assertIngestionsEqual(t *testing.T, serial, parallel *Ingestion) {
	t.Helper()
	if !maps.Equal(serial.Mappings, parallel.Mappings) {
		t.Errorf("Mappings differ: %d serial vs %d parallel entries", len(serial.Mappings), len(parallel.Mappings))
	}
	if !reflect.DeepEqual(serial.InstancesFor, parallel.InstancesFor) {
		t.Error("InstancesFor differ")
	}
	if !maps.Equal(serial.Flagged, parallel.Flagged) {
		t.Error("Flagged sets differ")
	}
	if serial.ShortcutsAdded != parallel.ShortcutsAdded {
		t.Errorf("ShortcutsAdded: %d serial vs %d parallel", serial.ShortcutsAdded, parallel.ShortcutsAdded)
	}
	if s, p := serial.Graph.EdgeCount(), parallel.Graph.EdgeCount(); s != p {
		t.Errorf("EdgeCount: %d serial vs %d parallel", s, p)
	}
	if s, p := serial.Graph.ShortcutCount(), parallel.Graph.ShortcutCount(); s != p {
		t.Errorf("ShortcutCount: %d serial vs %d parallel", s, p)
	}
	if !reflect.DeepEqual(serial.Frequencies.Snapshot(), parallel.Frequencies.Snapshot()) {
		t.Error("FrequencySnapshot differs")
	}
}

func TestIngestParallelEquivalenceFixture(t *testing.T) {
	// The paper-figure world, once per worker count: every ingestion must
	// be identical to the serial one, including over-subscribed pools.
	for _, workers := range []int{2, 4, 8, 32} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			serial := ingestWorld(t, IngestOptions{Parallelism: 1})
			parallel := ingestWorld(t, IngestOptions{Parallelism: workers})
			assertIngestionsEqual(t, serial, parallel)
		})
	}
}

// bigWorld builds a deterministic synthkb+medkb world grown to the target
// concept count. Each call regenerates from the seed, so serial and
// parallel runs get independent, identical graphs to mutate.
func bigWorld(t testing.TB, target int) (*medkb.MED, *eks.Graph, *corpus.Corpus) {
	t.Helper()
	w, err := synthkb.Generate(synthkb.Config{Seed: 42, ConditionsPerPair: 20})
	if err != nil {
		t.Fatal(err)
	}
	med, err := medkb.Generate(w, medkb.Config{Seed: 43, Drugs: 40})
	if err != nil {
		t.Fatal(err)
	}
	corp := medkb.BuildCorpus(w, med, medkb.CorpusConfig{Seed: 44})
	g := w.Graph
	next := eks.ConceptID(1)
	for _, id := range g.ConceptIDs() {
		if id >= next {
			next = id + 1
		}
	}
	for i := 0; g.Len() < target; i++ {
		parent := w.Findings[i%len(w.Findings)]
		if err := g.AddConcept(eks.Concept{ID: next, Name: fmt.Sprintf("variant %d of %d", i, parent)}); err != nil {
			t.Fatal(err)
		}
		if err := g.AddSubsumption(next, parent); err != nil {
			t.Fatal(err)
		}
		next++
	}
	return med, g, corp
}

func TestIngestParallelEquivalenceSynthKB(t *testing.T) {
	sizes := []int{10_000}
	if !testing.Short() {
		sizes = append(sizes, 100_000)
	}
	for _, n := range sizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			med1, g1, corp1 := bigWorld(t, n)
			serial, err := Ingest(med1.Ontology, med1.Store, g1, corp1, exactMapper{g1}, IngestOptions{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			med2, g2, corp2 := bigWorld(t, n)
			parallel, err := Ingest(med2.Ontology, med2.Store, g2, corp2, exactMapper{g2}, IngestOptions{Parallelism: 8})
			if err != nil {
				t.Fatal(err)
			}
			if len(serial.Mappings) == 0 {
				t.Fatal("no instances mapped — the equivalence check would be vacuous")
			}
			assertIngestionsEqual(t, serial, parallel)
		})
	}
}

func TestIngestParallelismDefault(t *testing.T) {
	// Parallelism 0 (the default config everywhere) resolves to GOMAXPROCS
	// and must match the serial output too — this is the path the golden
	// test exercises end to end.
	serial := ingestWorld(t, IngestOptions{Parallelism: 1})
	deflt := ingestWorld(t, IngestOptions{})
	assertIngestionsEqual(t, serial, deflt)
}
