package core

import (
	"sync"

	"medrelax/internal/eks"
)

// subsumerCache is a bounded, sharded LRU of subsumer-distance vectors
// keyed by concept. It replaces the Similarity type's old single-entry
// last-query cache: shards keep lock contention low under concurrent
// relaxation, and the LRU bound keeps memory flat no matter how many
// distinct query and candidate concepts a serving process sees.
//
// The zero value is ready to use; vectors are immutable so hits are shared
// between goroutines without copying.
type subsumerCache struct {
	shards [subsumerCacheShards]vecShard
}

const (
	// subsumerCacheShards spreads concepts over independently locked
	// shards; must be a power of two.
	subsumerCacheShards = 16
	// subsumerShardCap bounds each shard's entry count, ~4k vectors in
	// total — enough to hold every flagged concept of the paper-scale
	// worlds while staying bounded on larger ones.
	subsumerShardCap = 256
)

func (c *subsumerCache) shard(id eks.ConceptID) *vecShard {
	return &c.shards[uint64(id)&(subsumerCacheShards-1)]
}

// get returns the cached vector for id, marking it most recently used.
func (c *subsumerCache) get(id eks.ConceptID) (eks.SubsumerVec, bool) {
	return c.shard(id).get(id)
}

// put inserts the vector for id, evicting the shard's least recently used
// entry when full.
func (c *subsumerCache) put(id eks.ConceptID, v eks.SubsumerVec) {
	c.shard(id).put(id, v)
}

// vecShard is one lock's worth of the cache: a map for lookup plus an
// intrusive doubly-linked list in recency order (head = most recent).
type vecShard struct {
	mu         sync.Mutex
	m          map[eks.ConceptID]*vecEntry
	head, tail *vecEntry
}

type vecEntry struct {
	key        eks.ConceptID
	vec        eks.SubsumerVec
	prev, next *vecEntry
}

func (s *vecShard) get(id eks.ConceptID) (eks.SubsumerVec, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[id]
	if !ok {
		return eks.SubsumerVec{}, false
	}
	s.moveToFront(e)
	return e.vec, true
}

func (s *vecShard) put(id eks.ConceptID, v eks.SubsumerVec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[id]; ok {
		e.vec = v
		s.moveToFront(e)
		return
	}
	if s.m == nil {
		s.m = make(map[eks.ConceptID]*vecEntry, subsumerShardCap)
	}
	e := &vecEntry{key: id, vec: v}
	s.m[id] = e
	s.pushFront(e)
	if len(s.m) > subsumerShardCap {
		evict := s.tail
		s.unlink(evict)
		delete(s.m, evict.key)
	}
}

func (s *vecShard) pushFront(e *vecEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *vecShard) unlink(e *vecEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *vecShard) moveToFront(e *vecEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// len reports the total number of cached vectors (for tests).
func (c *subsumerCache) len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}
