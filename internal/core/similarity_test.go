package core

import (
	"math"
	"testing"

	"medrelax/internal/eks"
	"medrelax/internal/ontology"
)

func buildSim(t *testing.T) (*Similarity, *eks.Graph, *ontology.Ontology) {
	t.Helper()
	o := testOntology(t)
	g := testEKS(t)
	ft, err := BuildFrequencyTable(g, testCorpus(), FrequencyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return NewSimilarity(g, ft, o), g, o
}

func TestPathWeightEquation4(t *testing.T) {
	w := DefaultPathWeights()
	gen := eks.Step{Generalization: true}
	spec := eks.Step{Generalization: false}

	// Empty path: weight 1.
	if got := w.PathWeight(eks.Path{}); got != 1 {
		t.Errorf("empty path weight = %v, want 1", got)
	}
	// Example 4, path 1: pneumonia -> LRTI, 4 hops, first 3 generalizations:
	// p = 0.9^3 · 0.9^2 · 0.9^1 · 1^0 = 0.9^6.
	p1 := eks.Path{Steps: []eks.Step{gen, gen, gen, spec}}
	if got, want := w.PathWeight(p1), math.Pow(0.9, 6); math.Abs(got-want) > 1e-12 {
		t.Errorf("path1 weight = %v, want %v", got, want)
	}
	// Example 4, path 2: LRTI -> pneumonia, 1 generalization then 3
	// specializations: p = 0.9^3 · 1^2 · 1^1 · 1^0 = 0.9^3.
	p2 := eks.Path{Steps: []eks.Step{gen, spec, spec, spec}}
	if got, want := w.PathWeight(p2), math.Pow(0.9, 3); math.Abs(got-want) > 1e-12 {
		t.Errorf("path2 weight = %v, want %v", got, want)
	}
	// The asymmetry the paper motivates: starting with generalizations
	// penalizes more.
	if w.PathWeight(p1) >= w.PathWeight(p2) {
		t.Error("early generalizations must be penalized more")
	}
	// All-specialization path has weight 1 under the default weights.
	p3 := eks.Path{Steps: []eks.Step{spec, spec, spec}}
	if got := w.PathWeight(p3); got != 1 {
		t.Errorf("all-spec path weight = %v, want 1", got)
	}
	// The final hop never contributes (exponent 0).
	p4 := eks.Path{Steps: []eks.Step{spec, gen}}
	p5 := eks.Path{Steps: []eks.Step{spec, spec}}
	if w.PathWeight(p4) != w.PathWeight(p5) {
		t.Error("last hop has exponent 0 and must not change the weight")
	}
}

func TestPathWeightRange(t *testing.T) {
	w := DefaultPathWeights()
	// Any path weight lies in (0, 1] for weights in (0, 1].
	for _, n := range []int{1, 2, 5, 10} {
		steps := make([]eks.Step, n)
		for i := range steps {
			steps[i] = eks.Step{Generalization: i%2 == 0}
		}
		p := w.PathWeight(eks.Path{Steps: steps})
		if p <= 0 || p > 1 {
			t.Errorf("path weight %v out of (0,1] for %d hops", p, n)
		}
	}
}

func TestSimICProperties(t *testing.T) {
	sim, g, _ := buildSim(t)
	ids := g.ConceptIDs()
	ctx := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	for _, a := range ids {
		// Identity.
		if got := sim.SimIC(a, a, ctx); got != 1 {
			t.Errorf("SimIC(%d,%d) = %v, want 1", a, a, got)
		}
		for _, b := range ids {
			s := sim.SimIC(a, b, ctx)
			// Range.
			if s < 0 || s > 1 {
				t.Errorf("SimIC(%d,%d) = %v out of [0,1]", a, b, s)
			}
			// Symmetry (Equation 3 is symmetric).
			if got := sim.SimIC(b, a, ctx); math.Abs(got-s) > 1e-12 {
				t.Errorf("SimIC not symmetric for (%d,%d): %v vs %v", a, b, s, got)
			}
		}
	}
}

func TestSimICOrdering(t *testing.T) {
	sim, _, _ := buildSim(t)
	// headache (5) is closer to frequent headache (6) — LCS is headache
	// itself — than to pain in throat (4), whose LCS is the more general
	// pain of head and neck region (2).
	near := sim.SimIC(5, 6, nil)
	far := sim.SimIC(5, 4, nil)
	if near <= far {
		t.Errorf("SimIC(headache, frequent headache)=%v must exceed SimIC(headache, pain in throat)=%v", near, far)
	}
	// Unrelated subtree is even farther: LCS is the root with IC 0.
	if got := sim.SimIC(5, 10, nil); got != 0 {
		t.Errorf("SimIC(headache, bronchitis) = %v, want 0 (root LCS)", got)
	}
}

func TestSimCombined(t *testing.T) {
	sim, _, _ := buildSim(t)
	ctx := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	// Equation 5 is bounded by its factors.
	for _, pair := range [][2]eks.ConceptID{{5, 6}, {5, 4}, {6, 3}, {8, 7}} {
		s := sim.Sim(pair[0], pair[1], ctx)
		ic := sim.SimIC(pair[0], pair[1], ctx)
		if s < 0 || s > ic+1e-12 {
			t.Errorf("Sim(%v) = %v out of [0, SimIC=%v]", pair, s, ic)
		}
	}
	// Asymmetry: from the specific query term the path starts with
	// generalizations and is penalized more (Example 4).
	down := sim.Sim(6, 3, ctx) // frequent headache -> craniofacial pain: 2 gens
	up := sim.Sim(3, 6, ctx)   // craniofacial pain -> frequent headache: 2 specs
	if down >= up {
		t.Errorf("Sim must be asymmetric: specific->general %v, general->specific %v", down, up)
	}
}

func TestSimWithoutPathWeight(t *testing.T) {
	sim, _, _ := buildSim(t)
	sim.UsePathWeight = false
	// Without Equation 4 the measure reduces to SimIC.
	for _, pair := range [][2]eks.ConceptID{{5, 6}, {5, 4}, {6, 3}} {
		if got, want := sim.Sim(pair[0], pair[1], nil), sim.SimIC(pair[0], pair[1], nil); got != want {
			t.Errorf("Sim(%v) = %v, want SimIC %v", pair, got, want)
		}
	}
}

func TestSimDisconnected(t *testing.T) {
	o := testOntology(t)
	g := eks.New()
	if err := g.AddConcept(eks.Concept{ID: 1, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddConcept(eks.Concept{ID: 2, Name: "b"}); err != nil {
		t.Fatal(err)
	}
	sim := NewSimilarity(g, NewIntrinsicIC(g), o)
	if got := sim.Sim(1, 2, nil); got != 0 {
		t.Errorf("disconnected Sim = %v, want 0", got)
	}
	if got := sim.SimIC(1, 2, nil); got != 0 {
		t.Errorf("disconnected SimIC = %v, want 0", got)
	}
}

func TestIntrinsicIC(t *testing.T) {
	g := testEKS(t)
	ic := NewIntrinsicIC(g)
	// Leaves have IC 1.
	for _, leaf := range []eks.ConceptID{4, 6, 8, 10, 11} {
		if got := ic.IC(leaf, nil, nil); math.Abs(got-1) > 1e-12 {
			t.Errorf("IC(leaf %d) = %v, want 1", leaf, got)
		}
	}
	// Root has the lowest IC.
	rootIC := ic.IC(1, nil, nil)
	for _, id := range g.ConceptIDs() {
		if ic.IC(id, nil, nil) < rootIC-1e-12 {
			t.Errorf("IC(%d) below root IC", id)
		}
	}
	// Monotone along subsumption.
	for _, p := range [][2]eks.ConceptID{{6, 5}, {5, 3}, {3, 2}, {2, 1}, {10, 9}} {
		if ic.IC(p[0], nil, nil) < ic.IC(p[1], nil, nil) {
			t.Errorf("intrinsic IC not monotone for %v", p)
		}
	}
}

func TestWithoutContext(t *testing.T) {
	o := testOntology(t)
	g := testEKS(t)
	ft, err := BuildFrequencyTable(g, testCorpus(), FrequencyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nc := WithoutContext(ft)
	ctx := &ontology.Context{Domain: "Risk", Relationship: "hasFinding", Range: "Finding"}
	// The wrapper must ignore the context entirely.
	if nc.IC(5, ctx, o) != ft.IC(5, nil, o) {
		t.Error("WithoutContext must discard the context")
	}
}
