package core_test

import (
	"fmt"
	"math"

	"medrelax/internal/core"
	"medrelax/internal/eks"
)

// ExamplePathWeights_PathWeight reproduces the paper's Example 4: the path
// from pneumonia to lower respiratory tract infection (4 hops, first 3
// generalizations) is penalized to 0.9^6, while the reverse direction only
// pays 0.9^3.
func ExamplePathWeights_PathWeight() {
	w := core.DefaultPathWeights()
	gen := eks.Step{Generalization: true}
	spec := eks.Step{Generalization: false}

	forward := eks.Path{Steps: []eks.Step{gen, gen, gen, spec}}
	backward := eks.Path{Steps: []eks.Step{gen, spec, spec, spec}}

	fmt.Printf("pneumonia -> LRTI: %.4f (0.9^6 = %.4f)\n", w.PathWeight(forward), math.Pow(0.9, 6))
	fmt.Printf("LRTI -> pneumonia: %.4f (0.9^3 = %.4f)\n", w.PathWeight(backward), math.Pow(0.9, 3))
	// Output:
	// pneumonia -> LRTI: 0.5314 (0.9^6 = 0.5314)
	// LRTI -> pneumonia: 0.7290 (0.9^3 = 0.7290)
}
