package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"medrelax/internal/eks"
	"medrelax/internal/kb"
	"medrelax/internal/match"
	"medrelax/internal/ontology"
	"medrelax/internal/trace"
)

// Sentinel errors let serving layers map failures to transport-level
// outcomes (HTTP status codes) without string matching. They are wrapped
// with detail, so test with errors.Is.
var (
	// ErrUnknownTerm marks a query term that maps to no external concept —
	// the caller asked about something the knowledge source does not name.
	ErrUnknownTerm = errors.New("unknown query term")
	// ErrBadContext marks a malformed or unknown query context string.
	ErrBadContext = errors.New("invalid query context")
)

// Result is one relaxed answer: an external concept within the search
// radius of the query concept, its similarity score under Equation 5, its
// hop distance in the customized graph, and the KB instances mapped to it.
type Result struct {
	Concept   eks.ConceptID
	Score     float64
	Hops      int
	Instances []kb.InstanceID
}

// RelaxOptions tunes the online phase.
type RelaxOptions struct {
	// Radius is the hop radius r of Algorithm 2. Defaults to 3: after
	// customization, flagged concepts are one hop from their flagged
	// ancestors/descendants, so a small radius reaches far semantically.
	Radius int
	// DynamicRadius grows the radius (up to MaxRadius) when fewer than k
	// candidates are found — the paper's "dynamically decided" alternative
	// to a fixed r.
	DynamicRadius bool
	// MaxRadius bounds dynamic growth. Defaults to 8.
	MaxRadius int
	// IncludeSelf also returns the query concept itself when flagged;
	// Algorithm 2 returns strict neighbours, but answer expansion
	// (Section 6.1, scenario 2) wants the exact match ranked first.
	IncludeSelf bool
}

func (o RelaxOptions) withDefaults() RelaxOptions {
	if o.Radius <= 0 {
		o.Radius = 3
	}
	if o.MaxRadius <= 0 {
		o.MaxRadius = 8
	}
	if o.MaxRadius < o.Radius {
		o.MaxRadius = o.Radius
	}
	return o
}

// ServePath identifies which compute path produced a relaxation answer.
// All paths are byte-identical in output; the distinction is purely
// observability (metrics, stats) and latency.
type ServePath uint8

const (
	// PathLive is the full Algorithm 2 traversal: gather flaggedWithin,
	// derive each candidate's canonical meet, score, rank.
	PathLive ServePath = iota
	// PathMaterialized served a precomputed offline top-k entry.
	PathMaterialized
	// PathIndexed scored a precomputed posting list instead of traversing.
	PathIndexed
)

// String names the path for metrics labels and stats maps.
func (p ServePath) String() string {
	switch p {
	case PathMaterialized:
		return "materialized"
	case PathIndexed:
		return "indexed"
	default:
		return "live"
	}
}

// MetricName is the long-form path name used on trace span tags and in
// the per-path counter series, matching the serving layer's metric
// suffixes (medrelax_relax_<name>_total).
func (p ServePath) MetricName() string {
	switch p {
	case PathMaterialized:
		return "materialized_hit"
	case PathIndexed:
		return "index_path"
	default:
		return "live_path"
	}
}

// Relaxer executes the online query relaxation (Algorithm 2) over an
// ingestion.
type Relaxer struct {
	ing    *Ingestion
	sim    *Similarity
	mapper match.Mapper
	opts   RelaxOptions

	// Optional offline accelerations (SetMaterialized, SetCandidateIndex);
	// nil keeps the pure live traversal.
	mat  *Materialized
	cidx *CandidateIndex
	// pw caches canonicalPathWeight for every (gen, spec) pair occurring
	// in cidx, so the indexed path skips the per-candidate hop product.
	pw [][]float64

	pathLive, pathMaterialized, pathIndexed atomic.Uint64
}

// SetMaterialized attaches an offline top-k store. It refuses (returning
// false) a store built under different RelaxOptions, whose entries would
// not reproduce this relaxer's answers.
func (r *Relaxer) SetMaterialized(m *Materialized) bool {
	if m == nil || m.opts != r.opts {
		return false
	}
	r.mat = m
	return true
}

// SetCandidateIndex attaches a posting-list candidate index. It refuses
// (returning false) an index whose radius cannot cover the base search
// radius.
func (r *Relaxer) SetCandidateIndex(idx *CandidateIndex) bool {
	if idx == nil || idx.radius < r.opts.Radius {
		return false
	}
	r.cidx = idx
	if r.sim.UsePathWeight {
		r.pw = idx.pathWeightTable(r.sim.Weights)
	}
	return true
}

// PathCounts reports how many queries each compute path has answered since
// the relaxer was built.
func (r *Relaxer) PathCounts() (live, materialized, indexed uint64) {
	return r.pathLive.Load(), r.pathMaterialized.Load(), r.pathIndexed.Load()
}

// NewRelaxer builds the online phase. sim decides which variant runs (full
// QR, no-context, no-corpus, IC baseline); mapper resolves query terms to
// external concepts and is typically the same one used during ingestion.
func NewRelaxer(ing *Ingestion, sim *Similarity, mapper match.Mapper, opts RelaxOptions) *Relaxer {
	return &Relaxer{ing: ing, sim: sim, mapper: mapper, opts: opts.withDefaults()}
}

// RelaxTerm maps a query term to an external concept and relaxes it. It
// fails when the term cannot be mapped to any external concept (the error
// wraps ErrUnknownTerm).
func (r *Relaxer) RelaxTerm(term string, ctx *ontology.Context, k int) ([]Result, error) {
	return r.RelaxTermContext(context.Background(), term, ctx, k)
}

// RelaxTermContext is RelaxTerm with request-scoped cancellation: the
// serving layer threads the HTTP request context here so a deadline set by
// admission control stops the traversal mid-flight instead of burning CPU
// on an answer nobody will receive. The returned error wraps
// context.DeadlineExceeded / context.Canceled when the context fired.
func (r *Relaxer) RelaxTermContext(ctx context.Context, term string, qctx *ontology.Context, k int) ([]Result, error) {
	out, _, err := r.RelaxTermContextTraced(ctx, term, qctx, k)
	return out, err
}

// RelaxTermContextTraced is RelaxTermContext plus the compute path that
// answered, for serving-layer metrics.
func (r *Relaxer) RelaxTermContextTraced(ctx context.Context, term string, qctx *ontology.Context, k int) ([]Result, ServePath, error) {
	q, ok := r.mapper.Map(term)
	if !ok {
		return nil, PathLive, fmt.Errorf("core: query term %q: %w", term, ErrUnknownTerm)
	}
	// A sampled request gets a kernel span tagged with the compute path
	// that answered; untraced requests pay one context lookup and nothing
	// else (the batch and RelaxConcept entry points stay span-free).
	if parent := trace.FromContext(ctx); parent != nil {
		sp := parent.StartChild("relax.kernel")
		sp.SetTag("term", term)
		out, path, err := r.relaxConceptPath(ctx, q, qctx, k, &relaxScratch{})
		sp.SetTag("path", path.MetricName())
		if err != nil {
			sp.SetTag("error", err.Error())
		}
		sp.End()
		return out, path, err
	}
	return r.relaxConceptPath(ctx, q, qctx, k, &relaxScratch{})
}

// Options returns the relaxer's effective (defaulted) options — the
// fingerprint a Materialized store must match to be attachable.
func (r *Relaxer) Options() RelaxOptions {
	return r.opts
}

// RelaxConcept runs Algorithm 2 from an already-mapped query concept:
// gather flagged concepts within the hop radius, rank them by Equation 5
// under the query context, and keep popping candidates until at least k KB
// instances are collected (or candidates run out). The full ranked
// candidate list that was consumed is returned.
func (r *Relaxer) RelaxConcept(q eks.ConceptID, ctx *ontology.Context, k int) []Result {
	// Background never cancels, so the error path is unreachable here.
	out, _ := r.RelaxConceptContext(context.Background(), q, ctx, k)
	return out
}

// RelaxConceptContext is RelaxConcept under request-scoped cancellation.
// Cancellation is checked between radius-growth rounds and periodically
// during candidate scoring; on expiry the partial work is discarded and
// the context's error is returned.
func (r *Relaxer) RelaxConceptContext(ctx context.Context, q eks.ConceptID, qctx *ontology.Context, k int) ([]Result, error) {
	return r.relaxConceptScratch(ctx, q, qctx, k, &relaxScratch{})
}

// relaxScratch holds the per-query working state that batch relaxation
// reuses across items: the instance-dedup set (hit once per radius round
// and once per truncation) and the flagged-neighbour buffer. Returned
// Result slices are always freshly allocated — only the intermediate
// state is shared.
type relaxScratch struct {
	seen map[kb.InstanceID]bool
	nbuf []eks.Neighbor
}

// resetSeen clears (or lazily allocates) the dedup set.
func (s *relaxScratch) resetSeen() map[kb.InstanceID]bool {
	if s.seen == nil {
		s.seen = make(map[kb.InstanceID]bool)
	} else {
		clear(s.seen)
	}
	return s.seen
}

// relaxConceptScratch is the scratch-threaded core of RelaxConceptContext.
func (r *Relaxer) relaxConceptScratch(ctx context.Context, q eks.ConceptID, qctx *ontology.Context, k int, sc *relaxScratch) ([]Result, error) {
	out, _, err := r.relaxConceptPath(ctx, q, qctx, k, sc)
	return out, err
}

// relaxConceptPath dispatches materialized -> indexed -> live and reports
// which path answered. All three paths produce byte-identical results; a
// path that cannot prove identity for this query declines and the next one
// runs.
func (r *Relaxer) relaxConceptPath(ctx context.Context, q eks.ConceptID, qctx *ontology.Context, k int, sc *relaxScratch) ([]Result, ServePath, error) {
	target := k
	if target <= 0 {
		target = defaultCandidateTarget
	}
	if r.mat != nil {
		out, ok, err := r.materializedServe(ctx, q, qctx, k, target, sc)
		if err != nil {
			return nil, PathMaterialized, err
		}
		if ok {
			r.pathMaterialized.Add(1)
			return out, PathMaterialized, nil
		}
	}
	ranked, path, err := r.rankedCandidatesPath(ctx, q, qctx, target, sc)
	if err != nil {
		return nil, path, err
	}
	if path == PathIndexed {
		r.pathIndexed.Add(1)
	} else {
		r.pathLive.Add(1)
	}
	if k <= 0 {
		return ranked, path, nil
	}
	return takeForKInstances(ranked, k, sc), path, nil
}

// rankedCandidatesPath tries the posting-list index before falling back to
// the live traversal.
func (r *Relaxer) rankedCandidatesPath(ctx context.Context, q eks.ConceptID, qctx *ontology.Context, target int, sc *relaxScratch) ([]Result, ServePath, error) {
	if r.cidx != nil {
		out, ok, err := r.indexedCandidates(ctx, q, qctx, target, sc)
		if err != nil {
			return nil, PathIndexed, err
		}
		if ok {
			return out, PathIndexed, nil
		}
	}
	out, err := r.rankedCandidatesTarget(ctx, q, qctx, target, sc)
	return out, PathLive, err
}

// takeForKInstances keeps consuming ranked candidates until at least k
// distinct KB instances are collected (or candidates run out). Instances
// are deduplicated across candidates with the same semantics as
// TopKInstances, so an instance reachable through several candidate
// concepts is counted once.
func takeForKInstances(ranked []Result, k int, sc *relaxScratch) []Result {
	var out []Result
	seen := sc.resetSeen()
	for _, res := range ranked {
		if len(seen) >= k {
			break
		}
		out = append(out, res)
		for _, id := range res.Instances {
			seen[id] = true
		}
	}
	return out
}

// BatchQuery is one item of a RelaxBatchContext call.
type BatchQuery struct {
	// Term is resolved through the relaxer's mapper; an unmappable term
	// yields an error wrapping ErrUnknownTerm for that item.
	Term string
	// Concept short-circuits term mapping when UseConcept is set — the
	// batch relaxes this already-mapped concept directly.
	Concept    eks.ConceptID
	UseConcept bool
	// Ctx is the optional query context (nil: context-free).
	Ctx *ontology.Context
	// K bounds the distinct KB instances consumed; k <= 0 returns the full
	// ranked candidate list, exactly as RelaxConceptContext does.
	K int
}

// RelaxBatchContext answers a batch of queries in one call. Items are
// processed in input order and results[i]/errs[i] always correspond to
// queries[i], so output is deterministic for a deterministic batch. The
// per-query working state (instance-dedup sets, neighbour buffers) is
// allocated once and reused across items, which is what makes a batch
// cheaper than n sequential calls. The deadline is honoured between items
// and inside each item's traversal; once ctx fires, every remaining item
// reports the context error.
func (r *Relaxer) RelaxBatchContext(ctx context.Context, queries []BatchQuery) (results [][]Result, errs []error) {
	results, _, errs = r.RelaxBatchContextTraced(ctx, queries)
	return results, errs
}

// RelaxBatchContextTraced is RelaxBatchContext plus the compute path that
// answered each item, for serving-layer metrics. paths[i] is meaningful
// only when errs[i] is nil.
func (r *Relaxer) RelaxBatchContextTraced(ctx context.Context, queries []BatchQuery) (results [][]Result, paths []ServePath, errs []error) {
	results = make([][]Result, len(queries))
	paths = make([]ServePath, len(queries))
	errs = make([]error, len(queries))
	sc := &relaxScratch{}
	// Resolved once: a sampled batch gets one kernel span per item, each
	// tagged with its term and compute path; an untraced batch skips all
	// span work.
	parent := trace.FromContext(ctx)
	for i, q := range queries {
		if err := ctx.Err(); err != nil {
			for j := i; j < len(queries); j++ {
				errs[j] = fmt.Errorf("core: batch aborted at item %d/%d: %w", j, len(queries), err)
			}
			return results, paths, errs
		}
		concept := q.Concept
		if !q.UseConcept {
			mapped, ok := r.mapper.Map(q.Term)
			if !ok {
				errs[i] = fmt.Errorf("core: query term %q: %w", q.Term, ErrUnknownTerm)
				continue
			}
			concept = mapped
		}
		var sp *trace.Span
		if parent != nil {
			sp = parent.StartChild("relax.kernel")
			sp.SetTag("term", q.Term)
		}
		results[i], paths[i], errs[i] = r.relaxConceptPath(ctx, concept, q.Ctx, q.K, sc)
		if sp != nil {
			sp.SetTag("path", paths[i].MetricName())
			if errs[i] != nil {
				sp.SetTag("error", errs[i].Error())
			}
			sp.End()
		}
	}
	return results, paths, errs
}

// RankedCandidates returns every flagged concept within the (possibly
// dynamically grown) radius of q, ranked by similarity to q, best first.
// Ties break by concept ID for determinism.
func (r *Relaxer) RankedCandidates(q eks.ConceptID, ctx *ontology.Context) []Result {
	out, _, _ := r.rankedCandidatesPath(context.Background(), q, ctx, defaultCandidateTarget, &relaxScratch{})
	return out
}

// scoreCheckInterval is how many candidate scorings happen between context
// checks: similarity scoring dominates online latency, so the deadline is
// polled often enough to stop promptly but not on every candidate.
const scoreCheckInterval = 64

// rankedCandidatesTarget gathers and ranks candidates; with DynamicRadius
// the radius grows until the candidates can supply target KB instances —
// the paper's "dynamically decided if a fixed r cannot provide k results".
func (r *Relaxer) rankedCandidatesTarget(ctx context.Context, q eks.ConceptID, qctx *ontology.Context, target int, sc *relaxScratch) ([]Result, error) {
	radius := r.opts.Radius
	var cands []eks.Neighbor
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: relaxation aborted at radius %d: %w", radius, err)
		}
		cands = r.flaggedWithin(q, radius, sc)
		if !r.opts.DynamicRadius || radius >= r.opts.MaxRadius || r.instanceCount(cands, sc) >= target {
			break
		}
		radius++
	}
	out := make([]Result, 0, len(cands))
	for i, nb := range cands {
		if i%scoreCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: relaxation aborted scoring candidate %d/%d: %w", i, len(cands), err)
			}
		}
		out = append(out, Result{
			Concept:   nb.ID,
			Score:     r.sim.Sim(q, nb.ID, qctx),
			Hops:      nb.Hops,
			Instances: r.ing.InstancesForConcept(nb.ID),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Concept < out[j].Concept
	})
	return out, nil
}

// instanceCount counts the distinct KB instances reachable through the
// candidate set. Deduplication matches TopKInstances: an instance mapped to
// several candidate concepts contributes once, so dynamic-radius growth
// stops exactly when k distinct results are reachable.
func (r *Relaxer) instanceCount(cands []eks.Neighbor, sc *relaxScratch) int {
	seen := sc.resetSeen()
	for _, nb := range cands {
		for _, id := range r.ing.InstancesForConcept(nb.ID) {
			seen[id] = true
		}
	}
	return len(seen)
}

// defaultCandidateTarget is the dynamic-radius growth target when the
// caller did not bound k: keep widening until this many KB instances are
// reachable (or MaxRadius is hit).
const defaultCandidateTarget = 10

func (r *Relaxer) flaggedWithin(q eks.ConceptID, radius int, sc *relaxScratch) []eks.Neighbor {
	nbs := r.ing.Graph.NeighborsWithinHops(q, radius)
	out := sc.nbuf[:0]
	if r.opts.IncludeSelf && r.ing.IsFlagged(q) {
		out = append(out, eks.Neighbor{ID: q, Hops: 0})
	}
	for _, nb := range nbs {
		if r.ing.IsFlagged(nb.ID) {
			out = append(out, nb)
		}
	}
	sc.nbuf = out
	return out
}

// TopKInstances flattens ranked results into at most k distinct KB
// instances, preserving rank order — the Res set of Algorithm 2.
func TopKInstances(results []Result, k int) []kb.InstanceID {
	var out []kb.InstanceID
	seen := map[kb.InstanceID]bool{}
	for _, res := range results {
		for _, id := range res.Instances {
			if seen[id] {
				continue
			}
			seen[id] = true
			out = append(out, id)
			if len(out) == k {
				return out
			}
		}
	}
	return out
}
