package core

import (
	"math"
	"testing"

	"medrelax/internal/corpus"
	"medrelax/internal/eks"
	"medrelax/internal/ontology"
)

func TestFrequencyPropagation(t *testing.T) {
	g := testEKS(t)
	ft, err := BuildFrequencyTable(g, testCorpus(), FrequencyOptions{UseTFIDF: false})
	if err != nil {
		t.Fatal(err)
	}
	// Direct mentions under the Indication label:
	//   bronchitis 2, pertussis 1, pain in throat 1, sore throat(syn of 4) 1,
	//   fever 3 (2 amoxi? check: "Fever may be treated." =1 in amoxi; ibu has
	//   "fever" 2 + "psychogenic fever" 1), headache 2 (ibu), frequent headache 1,
	//   craniofacial pain 1.
	// Propagated:
	//   frequent headache (6) = 1
	//   headache (5) = 2 + 1 = 3
	//   craniofacial pain (3) = 1 + 3 = 4
	//   pain in throat (4) = 1 + 1 = 2 (name + synonym)
	//   pain of head and neck region (2) = 0 + 4 + 2 = 6
	//   psychogenic fever (8) = 1
	//   fever (7) = 3 + 1 = 4
	//   bronchitis (10) = 2, pertussis (11) = 1, respiratory disorder (9) = 3
	//   root (1) = 0 + 6 + 4 + 3 = 13
	want := map[int64]float64{
		6: 1, 5: 3, 3: 4, 4: 2, 2: 6, 8: 1, 7: 4, 10: 2, 11: 1, 9: 3, 1: 13,
	}
	for id, w := range want {
		if got := ft.Raw(eks.ConceptID(id), ctxIndication); got != w {
			t.Errorf("Raw(%d, Indication) = %v, want %v", id, got, w)
		}
	}
	// Risk label: headache 2 (amoxi), fever 1 (ibu).
	if got := ft.Raw(5, ctxRisk); got != 2 {
		t.Errorf("Raw(headache, Risk) = %v, want 2", got)
	}
	if got := ft.Raw(7, ctxRisk); got != 1 {
		t.Errorf("Raw(fever, Risk) = %v, want 1", got)
	}
	// craniofacial pain inherits headache's risk mentions.
	if got := ft.Raw(3, ctxRisk); got != 2 {
		t.Errorf("Raw(craniofacial pain, Risk) = %v, want 2", got)
	}
	// Aggregate includes the unlabeled general section (headache+1, fever+1).
	aggHeadache := ft.RawAggregate(5)
	if aggHeadache != 3+2+1 {
		t.Errorf("RawAggregate(headache) = %v, want 6", aggHeadache)
	}
}

func TestNormalizedForContext(t *testing.T) {
	o := testOntology(t)
	g := testEKS(t)
	ft, err := BuildFrequencyTable(g, testCorpus(), FrequencyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctxInd := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	// Root normalizes to 1 under any context.
	if got := ft.NormalizedForContext(1, ctxInd, o); math.Abs(got-1) > 1e-12 {
		t.Errorf("root normalized = %v, want 1", got)
	}
	// A mentioned concept is in (0, 1).
	f := ft.NormalizedForContext(5, ctxInd, o)
	if f <= 0 || f >= 1 {
		t.Errorf("normalized(headache) = %v, want in (0,1)", f)
	}
	// Never-mentioned concept still positive thanks to smoothing.
	f = ft.NormalizedForContext(2, nil, o)
	if f <= 0 {
		t.Errorf("smoothed frequency must stay positive, got %v", f)
	}
	// Nil context aggregates labels and differs from the Indication-only view
	// for a concept with Risk mentions.
	ind := ft.NormalizedForContext(5, ctxInd, o)
	all := ft.NormalizedForContext(5, nil, o)
	if ind == all {
		t.Error("context must change the frequency of headache")
	}
}

func TestExample3SubcontextAggregation(t *testing.T) {
	// Corpus labels at Risk-subconcept granularity must aggregate under the
	// broader Risk context (the paper's Example 3).
	o := testOntology(t)
	g := testEKS(t)
	docs := testCorpus().Documents()
	// Relabel the risk sections with subconcept contexts.
	docs[0].Sections[1].Label = "AdverseEffect-hasFinding-Finding"
	docs[1].Sections[1].Label = "BlackBoxWarning-hasFinding-Finding"
	ft, err := BuildFrequencyTable(g, corpus.New(docs), FrequencyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctxRiskQ := &ontology.Context{Domain: "Risk", Relationship: "hasFinding", Range: "Finding"}
	// headache appears under AdverseEffect (2 mentions); fever under
	// BlackBoxWarning (1). The Risk-context query must see both.
	fHeadache := ft.NormalizedForContext(5, ctxRiskQ, o)
	fPertussis := ft.NormalizedForContext(11, ctxRiskQ, o)
	if fHeadache <= fPertussis {
		t.Errorf("headache (%v) must outweigh pertussis (%v) under aggregated Risk context", fHeadache, fPertussis)
	}
	// IC ordering is the inverse of frequency.
	if ft.IC(5, ctxRiskQ, o) >= ft.IC(11, ctxRiskQ, o) {
		t.Error("IC(headache) must be below IC(pertussis) under Risk context")
	}
}

func TestICProperties(t *testing.T) {
	o := testOntology(t)
	g := testEKS(t)
	ft, err := BuildFrequencyTable(g, testCorpus(), FrequencyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Root IC is 0.
	if got := ft.IC(1, nil, o); got != 0 {
		t.Errorf("IC(root) = %v, want 0", got)
	}
	// IC is monotone along subsumption: a descendant is at least as
	// informative as its ancestor (frequency only accumulates upward).
	pairs := [][2]int64{{6, 5}, {5, 3}, {3, 2}, {2, 1}, {8, 7}, {10, 9}, {11, 9}, {9, 1}, {7, 1}, {4, 2}}
	for _, p := range pairs {
		icChild := ft.IC(eks.ConceptID(p[0]), nil, o)
		icParent := ft.IC(eks.ConceptID(p[1]), nil, o)
		if icChild < icParent {
			t.Errorf("IC(%d)=%v < IC(parent %d)=%v violates monotonicity", p[0], icChild, p[1], icParent)
		}
	}
	// IC is finite everywhere.
	for _, id := range g.ConceptIDs() {
		ic := ft.IC(id, nil, o)
		if math.IsInf(ic, 0) || math.IsNaN(ic) || ic < 0 {
			t.Errorf("IC(%d) = %v not finite/nonnegative", id, ic)
		}
	}
}

func TestTFIDFChangesWeights(t *testing.T) {
	g := testEKS(t)
	c := testCorpus()
	plain, err := BuildFrequencyTable(g, c, FrequencyOptions{UseTFIDF: false})
	if err != nil {
		t.Fatal(err)
	}
	tfidf, err := BuildFrequencyTable(g, c, FrequencyOptions{UseTFIDF: true})
	if err != nil {
		t.Fatal(err)
	}
	// bronchitis appears only in one document; idf boosts it relative to the
	// plain count more than fever (present in all three documents).
	ratioBronchitis := tfidf.RawAggregate(10) / plain.RawAggregate(10)
	ratioFever := tfidf.RawAggregate(7) / plain.RawAggregate(7)
	if ratioBronchitis <= ratioFever {
		t.Errorf("idf must boost rare bronchitis (%v) over ubiquitous fever (%v)", ratioBronchitis, ratioFever)
	}
}

func TestFrequencyTableErrors(t *testing.T) {
	// No root: building must fail.
	g := eks.New()
	if err := g.AddConcept(eks.Concept{ID: 1, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildFrequencyTable(g, testCorpus(), FrequencyOptions{}); err == nil {
		t.Error("missing root must fail")
	}
}

func TestLabelsCount(t *testing.T) {
	g := testEKS(t)
	ft, err := BuildFrequencyTable(g, testCorpus(), FrequencyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Indication, Risk, and the general "" label.
	if got := ft.Labels(); got != 3 {
		t.Errorf("Labels = %d, want 3", got)
	}
}
