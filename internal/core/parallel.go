package core

import (
	"runtime"
	"sync"
)

// resolveParallelism maps an option value to a worker count: 0 follows
// GOMAXPROCS (the default for Ingest), anything else is taken literally
// with a floor of 1.
func resolveParallelism(p int) int {
	if p == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		return 1
	}
	return p
}

// parallelChunks splits [0, n) into at most workers contiguous ranges and
// runs fn(lo, hi) on each from its own goroutine, waiting for all of them.
// With workers <= 1 (or n <= 1) it calls fn(0, n) inline, so serial and
// parallel callers share one code path. fn must not panic.
func parallelChunks(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	wg.Wait()
}
