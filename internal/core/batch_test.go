package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"medrelax/internal/ontology"
)

// TestRelaxBatchMatchesSequential pins the batch read path to the
// sequential one: for every mix of term/concept items, contexts, and k
// values, RelaxBatchContext must return exactly what per-item calls
// return, in input order.
func TestRelaxBatchMatchesSequential(t *testing.T) {
	r, _ := newTestRelaxer(t, RelaxOptions{Radius: 3, DynamicRadius: true, MaxRadius: 6})
	ctx := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	queries := []BatchQuery{
		{Term: "headache", Ctx: ctx, K: 3},
		{Term: "fever", K: 0}, // full ranked list, context-free
		{Concept: 5, UseConcept: true, Ctx: ctx, K: 2},
		{Term: "headache", Ctx: ctx, K: 3}, // repeated head term, scratch reuse
		{Term: "no such term anywhere", K: 5},
		{Term: "bronchitis", Ctx: ctx, K: 10},
	}
	results, errs := r.RelaxBatchContext(context.Background(), queries)
	if len(results) != len(queries) || len(errs) != len(queries) {
		t.Fatalf("batch returned %d results / %d errs for %d queries", len(results), len(errs), len(queries))
	}
	for i, q := range queries {
		var want []Result
		var wantErr error
		if q.UseConcept {
			want, wantErr = r.RelaxConceptContext(context.Background(), q.Concept, q.Ctx, q.K)
		} else {
			want, wantErr = r.RelaxTermContext(context.Background(), q.Term, q.Ctx, q.K)
		}
		if (wantErr == nil) != (errs[i] == nil) {
			t.Fatalf("item %d: batch err %v, sequential err %v", i, errs[i], wantErr)
		}
		if wantErr != nil {
			if !errors.Is(errs[i], ErrUnknownTerm) {
				t.Errorf("item %d: batch error %v does not wrap ErrUnknownTerm", i, errs[i])
			}
			continue
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Errorf("item %d (%+v): batch diverged from sequential:\nbatch: %v\nseq:   %v", i, q, results[i], want)
		}
	}
}

// TestRelaxBatchDeadline verifies that an expired context fails the
// remaining items with the context error instead of burning CPU on them.
func TestRelaxBatchDeadline(t *testing.T) {
	r, _ := newTestRelaxer(t, RelaxOptions{Radius: 3})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	queries := []BatchQuery{{Term: "headache", K: 3}, {Term: "fever", K: 3}}
	_, errs := r.RelaxBatchContext(ctx, queries)
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("item %d: err = %v, want context.Canceled", i, err)
		}
	}

	// A deadline firing mid-batch fails the tail but keeps the head.
	dctx, dcancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer dcancel()
	head, herrs := r.RelaxBatchContext(dctx, []BatchQuery{{Term: "headache", K: 3}})
	if herrs[0] != nil || len(head[0]) == 0 {
		t.Fatalf("live-context batch item failed: %v", herrs[0])
	}
}

// TestRelaxBatchConcurrent runs concurrent batches against one Relaxer
// under -race: the scratch is per-call, the relaxer itself shared.
func TestRelaxBatchConcurrent(t *testing.T) {
	r, _ := newTestRelaxer(t, RelaxOptions{Radius: 3, DynamicRadius: true, MaxRadius: 6})
	ctx := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	queries := []BatchQuery{
		{Term: "headache", Ctx: ctx, K: 3},
		{Term: "fever", K: 4},
		{Term: "pain in throat", Ctx: ctx, K: 2},
	}
	want, wantErrs := r.RelaxBatchContext(context.Background(), queries)
	for i, err := range wantErrs {
		if err != nil {
			t.Fatalf("baseline item %d: %v", i, err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				got, errs := r.RelaxBatchContext(context.Background(), queries)
				for j := range queries {
					if errs[j] != nil {
						t.Errorf("concurrent batch item %d: %v", j, errs[j])
						return
					}
					if !reflect.DeepEqual(got[j], want[j]) {
						t.Errorf("concurrent batch item %d diverged", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
