package core

import (
	"testing"

	"medrelax/internal/corpus"
	"medrelax/internal/eks"
	"medrelax/internal/kb"
	"medrelax/internal/ontology"
)

// Shared test world, loosely modeled on the paper's Figures 1, 3 and 4.
//
// External knowledge source (IDs in parentheses):
//
//	(1) clinical finding  [root]
//	  (2) pain of head and neck region
//	    (3) craniofacial pain
//	      (5) headache
//	        (6) frequent headache
//	    (4) pain in throat
//	  (7) fever
//	    (8) psychogenic fever
//	  (9) respiratory disorder
//	    (10) bronchitis
//	    (11) pertussis
//
// Domain ontology: Figure 1 (Drug, Indication, Risk+3 children, Finding).
// KB instances of Finding: headache, pain in throat, fever, bronchitis.
func testOntology(t *testing.T) *ontology.Ontology {
	t.Helper()
	o := ontology.New()
	for _, c := range []ontology.Concept{
		{Name: "Drug"}, {Name: "Indication"}, {Name: "Risk"}, {Name: "Finding"},
		{Name: "BlackBoxWarning", Parent: "Risk"},
		{Name: "AdverseEffect", Parent: "Risk"},
		{Name: "ContraIndication", Parent: "Risk"},
	} {
		if err := o.AddConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []ontology.Relationship{
		{Name: "treat", Domain: "Drug", Range: "Indication"},
		{Name: "cause", Domain: "Drug", Range: "Risk"},
		{Name: "hasFinding", Domain: "Indication", Range: "Finding"},
		{Name: "hasFinding", Domain: "Risk", Range: "Finding"},
	} {
		if err := o.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func testEKS(t *testing.T) *eks.Graph {
	t.Helper()
	g := eks.New()
	concepts := []eks.Concept{
		{ID: 1, Name: "clinical finding"},
		{ID: 2, Name: "pain of head and neck region"},
		{ID: 3, Name: "craniofacial pain"},
		{ID: 4, Name: "pain in throat", Synonyms: []string{"sore throat"}},
		{ID: 5, Name: "headache"},
		{ID: 6, Name: "frequent headache"},
		{ID: 7, Name: "fever", Synonyms: []string{"pyrexia"}},
		{ID: 8, Name: "psychogenic fever"},
		{ID: 9, Name: "respiratory disorder"},
		{ID: 10, Name: "bronchitis"},
		{ID: 11, Name: "pertussis", Synonyms: []string{"whooping cough"}},
	}
	for _, c := range concepts {
		if err := g.AddConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]eks.ConceptID{
		{2, 1}, {3, 2}, {4, 2}, {5, 3}, {6, 5},
		{7, 1}, {8, 7}, {9, 1}, {10, 9}, {11, 9},
	} {
		if err := g.AddSubsumption(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetRoot(1); err != nil {
		t.Fatal(err)
	}
	return g
}

func testStore(t *testing.T, o *ontology.Ontology) *kb.Store {
	t.Helper()
	s := kb.NewStore(o)
	instances := []kb.Instance{
		{ID: 100, Concept: "Drug", Name: "amoxicillin"},
		{ID: 101, Concept: "Drug", Name: "ibuprofen"},
		{ID: 110, Concept: "Indication", Name: "indication of amoxicillin"},
		{ID: 111, Concept: "Indication", Name: "indication of ibuprofen"},
		{ID: 120, Concept: "AdverseEffect", Name: "adverse effect of ibuprofen"},
		{ID: 130, Concept: "Finding", Name: "headache"},
		{ID: 131, Concept: "Finding", Name: "pain in throat"},
		{ID: 132, Concept: "Finding", Name: "fever"},
		{ID: 133, Concept: "Finding", Name: "bronchitis"},
	}
	for _, inst := range instances {
		if err := s.AddInstance(inst); err != nil {
			t.Fatal(err)
		}
	}
	assertions := []kb.Assertion{
		{Subject: 100, Relationship: "treat", Object: 110},
		{Subject: 101, Relationship: "treat", Object: 111},
		{Subject: 101, Relationship: "cause", Object: 120},
		{Subject: 110, Relationship: "hasFinding", Object: 133},
		{Subject: 111, Relationship: "hasFinding", Object: 130},
		{Subject: 111, Relationship: "hasFinding", Object: 132},
		{Subject: 120, Relationship: "hasFinding", Object: 130},
	}
	for _, a := range assertions {
		if err := s.AddAssertion(a); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

const (
	ctxIndication = "Indication-hasFinding-Finding"
	ctxRisk       = "Risk-hasFinding-Finding"
)

func testCorpus() *corpus.Corpus {
	docs := []corpus.Document{
		{
			ID: "amoxicillin", Title: "Amoxicillin",
			Sections: []corpus.Section{
				{Label: ctxIndication, Text: "Indicated for bronchitis. Bronchitis and pertussis respond. " +
					"Also for pain in throat and sore throat infections. Fever may be treated."},
				{Label: ctxRisk, Text: "May cause headache. Headache reported rarely."},
			},
		},
		{
			ID: "ibuprofen", Title: "Ibuprofen",
			Sections: []corpus.Section{
				{Label: ctxIndication, Text: "Treats headache, frequent headache, craniofacial pain and fever. " +
					"Headache relief is rapid. Fever reduction within hours. Psychogenic fever may respond."},
				{Label: ctxRisk, Text: "Risk of fever in rare cases."},
			},
		},
		{
			ID: "general", Title: "Clinical overview",
			Sections: []corpus.Section{
				{Label: "", Text: "Clinical finding taxonomy overview mentioning headache and fever."},
			},
		},
	}
	return corpus.New(docs)
}

// ingestWorld runs a full ingestion over the shared world with the exact
// mapper and default options.
func ingestWorld(t *testing.T, opts IngestOptions) *Ingestion {
	t.Helper()
	o := testOntology(t)
	g := testEKS(t)
	store := testStore(t, o)
	ing, err := Ingest(o, store, g, testCorpus(), exactMapper{g}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ing
}

// exactMapper avoids importing match in fixtures (match is tested on its
// own); ingestion only needs the Mapper contract.
type exactMapper struct{ g *eks.Graph }

func (m exactMapper) Name() string { return "EXACT" }

func (m exactMapper) Map(name string) (eks.ConceptID, bool) {
	ids := m.g.LookupName(name)
	if len(ids) == 0 {
		return 0, false
	}
	return ids[0], true
}
