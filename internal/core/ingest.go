package core

import (
	"cmp"
	"fmt"
	"slices"

	"medrelax/internal/corpus"
	"medrelax/internal/eks"
	"medrelax/internal/kb"
	"medrelax/internal/match"
	"medrelax/internal/ontology"
)

// IngestOptions tunes the offline phase.
type IngestOptions struct {
	// Frequency controls the corpus-derived frequency table.
	Frequency FrequencyOptions
	// ShortcutMaxDist caps the original distance of shortcut edges added
	// during customization; 0 means unlimited, exactly as in Algorithm 1.
	// Large graphs can set a cap to bound edge growth.
	ShortcutMaxDist int
	// DisableShortcuts skips the external-knowledge-source customization
	// entirely (ablation: BenchmarkAblationShortcutEdges).
	DisableShortcuts bool
	// Parallelism is the worker count for the three parallelizable stages
	// of Algorithm 1 (instance mapping, shortcut planning, corpus
	// counting). 0 follows GOMAXPROCS; 1 forces the serial path. The output
	// is identical for every value — workers only reorder independent
	// computations whose merges are deterministic.
	Parallelism int
	// Materialize optionally precomputes top-k relaxation answers for the
	// frequency head of the flagged concepts (see MaterializeTopK).
	Materialize MaterializeOptions
	// CandidateIndex optionally precomputes per-concept posting lists for
	// the online phase (see BuildCandidateIndex).
	CandidateIndex CandidateIndexOptions
}

// Ingestion is the output of the offline phase (Algorithm 1): the set of
// possible contexts C, the per-context frequencies F, the instance-concept
// mappings M, and the flagged external concepts FEC. It also retains the
// handles needed by the online phase.
type Ingestion struct {
	// Contexts is the set of possible query contexts, derived from the
	// domain ontology's relationships.
	Contexts []ontology.Context
	// Mappings maps each KB instance to its external concept (instances the
	// mapper could not place are absent).
	Mappings map[kb.InstanceID]eks.ConceptID
	// InstancesFor is the reverse of Mappings: external concept to the KB
	// instances mapped onto it.
	InstancesFor map[eks.ConceptID][]kb.InstanceID
	// Flagged is the FEC set: external concepts with at least one
	// corresponding KB instance. Only flagged concepts are returned by the
	// online phase.
	Flagged map[eks.ConceptID]bool
	// Frequencies is the per-context frequency table.
	Frequencies *FrequencyTable
	// Graph is the customized external knowledge source (shortcut edges
	// added in place).
	Graph *eks.Graph
	// Store and Ontology are the knowledge base this ingestion serves.
	Store    *kb.Store
	Ontology *ontology.Ontology
	// ShortcutsAdded counts the application-specific edges introduced.
	ShortcutsAdded int
	// Materialized is the optional offline top-k store (nil unless
	// IngestOptions.Materialize.Enabled or restored from a bundle).
	Materialized *Materialized
	// Candidates is the optional posting-list candidate index (nil unless
	// IngestOptions.CandidateIndex.Enabled or restored from a bundle).
	Candidates *CandidateIndex
	// Backing describes (and pins through liveness) the memory a flat-mapped
	// ingestion reads from; nil for heap-backed ingestions.
	Backing SnapshotBacking
	// Sources are the optional secondary external knowledge sources mounted
	// next to this (primary) ingestion, in mount order. Empty for the
	// classic single-source deployment, whose behaviour is unchanged.
	Sources []NamedSource

	// flatMap, when set, backs Mappings/InstancesFor/Flagged with flat-bundle
	// sections instead of the maps (which stay nil); use the accessor methods
	// IsFlagged, FlaggedCount, FlaggedIDs, InstancesForConcept, MappingCount,
	// and MappingPairs to stay backing-agnostic. See NewFlatIngestion.
	flatMap *flatMappings
}

// Close releases resources the ingestion's backing pins — for a
// memory-mapped flat bundle, the OS mapping, unmapped now instead of at GC
// time. Safe on heap-backed ingestions (no-op) and idempotent when the
// backing's Close is. The caller must have drained every reader first:
// accessors on a flat ingestion fault after Close.
func (ing *Ingestion) Close() error {
	if c, ok := ing.Backing.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// Ingest runs the offline external knowledge source ingestion (Algorithm 1)
// over the domain ontology o, the instance store, the external knowledge
// source g (mutated in place by customization), the document corpus corp,
// and the chosen instance-to-concept mapper.
//
// The three dominant stages run on opts.Parallelism workers: instance
// mapping fans out over the instances (the mapper must be safe for
// concurrent use — every match.Mapper is, see the Mapper contract),
// shortcut planning computes per-concept subsumer distances across workers
// on the read-only graph, and corpus counting shards the documents. Every
// merge is order-independent, so the result is byte-identical to the
// serial run.
func Ingest(o *ontology.Ontology, store *kb.Store, g *eks.Graph, corp *corpus.Corpus, mapper match.Mapper, opts IngestOptions) (*Ingestion, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid external knowledge source: %w", err)
	}
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid domain ontology: %w", err)
	}
	workers := resolveParallelism(opts.Parallelism)

	ing := &Ingestion{
		Contexts:     o.Contexts(), // Algorithm 1, lines 1–4
		Mappings:     make(map[kb.InstanceID]eks.ConceptID),
		InstancesFor: make(map[eks.ConceptID][]kb.InstanceID),
		Flagged:      make(map[eks.ConceptID]bool),
		Graph:        g,
		Store:        store,
		Ontology:     o,
	}

	// Mappings (lines 5–11): map every instance, flag mapped concepts.
	// Each Map call is independent and O(vocab) for the approximate
	// matchers, so this is the dominant stage; workers fill a results slice
	// indexed by instance position and the maps are assembled in instance
	// order, which is ascending ID order (AllInstances sorts).
	instances := store.AllInstances()
	mapped := make([]eks.ConceptID, len(instances))
	ok := make([]bool, len(instances))
	parallelChunks(len(instances), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			mapped[i], ok[i] = mapper.Map(instances[i].Name)
		}
	})
	for i, inst := range instances {
		if !ok[i] {
			continue
		}
		id := mapped[i]
		ing.Mappings[inst.ID] = id
		ing.InstancesFor[id] = append(ing.InstancesFor[id], inst.ID)
		ing.Flagged[id] = true
	}
	for _, ids := range ing.InstancesFor {
		slices.Sort(ids)
	}

	// Concept frequency (lines 12–18).
	freqOpts := opts.Frequency
	if freqOpts.Parallelism == 0 {
		freqOpts.Parallelism = workers
	}
	ft, err := BuildFrequencyTable(g, corp, freqOpts)
	if err != nil {
		return nil, err
	}
	ing.Frequencies = ft

	// External knowledge source customization (lines 19–23): for each
	// concept A and each non-parent ancestor B, when A or B is flagged, add
	// an application-specific edge carrying the original distance. Planning
	// only reads the pre-customization graph and the flag set, so concepts
	// are planned across workers; the per-worker plans are concatenated and
	// sorted by (from, to) — a total order over the planned set — before
	// the serial insertion, making the edge list independent of scheduling.
	if !opts.DisableShortcuts {
		order, err := g.TopologicalOrder()
		if err != nil {
			return nil, err
		}
		planned := planShortcuts(g, order, ing.Flagged, opts.ShortcutMaxDist, workers)
		for _, e := range planned {
			if err := g.AddShortcutEdge(e.from, e.to, e.dist); err != nil {
				return nil, fmt.Errorf("core: customization: %w", err)
			}
			ing.ShortcutsAdded++
		}
	}
	// The graph's structure is final: freeze the dense traversal index now
	// so the first online query does not pay the build.
	g.Freeze()

	// Optional offline accelerations run against the frozen graph with the
	// same similarity construction the engine serves with (default weights,
	// path weight on, frequencies as the IC source), so stored scores are
	// bit-identical to the live traversal's.
	if opts.Materialize.Enabled || opts.CandidateIndex.Enabled {
		sim := NewSimilarity(g, ft, o)
		if opts.CandidateIndex.Enabled {
			copts := opts.CandidateIndex
			if copts.Workers == 0 {
				copts.Workers = workers
			}
			ing.Candidates = BuildCandidateIndex(ing, sim, copts)
		}
		if opts.Materialize.Enabled {
			mopts := opts.Materialize
			if mopts.Workers == 0 {
				mopts.Workers = workers
			}
			if len(mopts.Contexts) == 0 {
				mopts.Contexts = ing.Contexts
			}
			ing.Materialized = MaterializeTopK(ing, sim, mopts)
		}
	}
	return ing, nil
}

// plannedEdge is one shortcut edge scheduled for insertion.
type plannedEdge struct {
	from, to eks.ConceptID
	dist     int
}

// planShortcuts computes the shortcut edges of Algorithm 1 lines 19–23
// without mutating the graph: per concept, every non-parent ancestor within
// the distance cap with a flagged endpoint and no existing edge. The
// per-concept computation (a semantic-metric Dijkstra on the dense index)
// runs across workers; results merge into (from, to) order.
func planShortcuts(g *eks.Graph, order []eks.ConceptID, flagged map[eks.ConceptID]bool, maxDist, workers int) []plannedEdge {
	plans := make([][]plannedEdge, len(order))
	parallelChunks(len(order), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a := order[i]
			aFlagged := flagged[a]
			var out []plannedEdge
			for b, dist := range g.UpDistances(a) {
				if dist < 2 {
					continue // direct parents stay as they are
				}
				if maxDist > 0 && dist > maxDist {
					continue
				}
				if !aFlagged && !flagged[b] {
					continue
				}
				if g.HasEdge(a, b) {
					continue
				}
				out = append(out, plannedEdge{from: a, to: b, dist: dist})
			}
			plans[i] = out
		}
	})
	var planned []plannedEdge
	for _, p := range plans {
		planned = append(planned, p...)
	}
	// Deterministic insertion order.
	slices.SortFunc(planned, func(a, b plannedEdge) int {
		if a.from != b.from {
			return cmp.Compare(a.from, b.from)
		}
		return cmp.Compare(a.to, b.to)
	})
	return planned
}

// ConceptForTerm maps a query term to an external concept with the given
// mapper — the first step of the online phase (Algorithm 2, line 1).
func (ing *Ingestion) ConceptForTerm(term string, mapper match.Mapper) (eks.ConceptID, bool) {
	return mapper.Map(term)
}

// InstanceResults resolves a ranked list of external concepts into KB
// instances through the mappings (Algorithm 2, line 7).
func (ing *Ingestion) InstanceResults(conceptIDs []eks.ConceptID) []kb.InstanceID {
	var out []kb.InstanceID
	seen := map[kb.InstanceID]bool{}
	for _, cid := range conceptIDs {
		for _, iid := range ing.InstancesForConcept(cid) {
			if !seen[iid] {
				seen[iid] = true
				out = append(out, iid)
			}
		}
	}
	return out
}
