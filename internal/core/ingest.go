package core

import (
	"fmt"
	"sort"

	"medrelax/internal/corpus"
	"medrelax/internal/eks"
	"medrelax/internal/kb"
	"medrelax/internal/match"
	"medrelax/internal/ontology"
)

// IngestOptions tunes the offline phase.
type IngestOptions struct {
	// Frequency controls the corpus-derived frequency table.
	Frequency FrequencyOptions
	// ShortcutMaxDist caps the original distance of shortcut edges added
	// during customization; 0 means unlimited, exactly as in Algorithm 1.
	// Large graphs can set a cap to bound edge growth.
	ShortcutMaxDist int
	// DisableShortcuts skips the external-knowledge-source customization
	// entirely (ablation: BenchmarkAblationShortcutEdges).
	DisableShortcuts bool
}

// Ingestion is the output of the offline phase (Algorithm 1): the set of
// possible contexts C, the per-context frequencies F, the instance-concept
// mappings M, and the flagged external concepts FEC. It also retains the
// handles needed by the online phase.
type Ingestion struct {
	// Contexts is the set of possible query contexts, derived from the
	// domain ontology's relationships.
	Contexts []ontology.Context
	// Mappings maps each KB instance to its external concept (instances the
	// mapper could not place are absent).
	Mappings map[kb.InstanceID]eks.ConceptID
	// InstancesFor is the reverse of Mappings: external concept to the KB
	// instances mapped onto it.
	InstancesFor map[eks.ConceptID][]kb.InstanceID
	// Flagged is the FEC set: external concepts with at least one
	// corresponding KB instance. Only flagged concepts are returned by the
	// online phase.
	Flagged map[eks.ConceptID]bool
	// Frequencies is the per-context frequency table.
	Frequencies *FrequencyTable
	// Graph is the customized external knowledge source (shortcut edges
	// added in place).
	Graph *eks.Graph
	// Store and Ontology are the knowledge base this ingestion serves.
	Store    *kb.Store
	Ontology *ontology.Ontology
	// ShortcutsAdded counts the application-specific edges introduced.
	ShortcutsAdded int
}

// Ingest runs the offline external knowledge source ingestion (Algorithm 1)
// over the domain ontology o, the instance store, the external knowledge
// source g (mutated in place by customization), the document corpus corp,
// and the chosen instance-to-concept mapper.
func Ingest(o *ontology.Ontology, store *kb.Store, g *eks.Graph, corp *corpus.Corpus, mapper match.Mapper, opts IngestOptions) (*Ingestion, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid external knowledge source: %w", err)
	}
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid domain ontology: %w", err)
	}

	ing := &Ingestion{
		Contexts:     o.Contexts(), // Algorithm 1, lines 1–4
		Mappings:     make(map[kb.InstanceID]eks.ConceptID),
		InstancesFor: make(map[eks.ConceptID][]kb.InstanceID),
		Flagged:      make(map[eks.ConceptID]bool),
		Graph:        g,
		Store:        store,
		Ontology:     o,
	}

	// Mappings (lines 5–11): map every instance, flag mapped concepts.
	for _, inst := range store.AllInstances() {
		id, ok := mapper.Map(inst.Name)
		if !ok {
			continue
		}
		ing.Mappings[inst.ID] = id
		ing.InstancesFor[id] = append(ing.InstancesFor[id], inst.ID)
		ing.Flagged[id] = true
	}
	for _, ids := range ing.InstancesFor {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}

	// Concept frequency (lines 12–18).
	ft, err := BuildFrequencyTable(g, corp, opts.Frequency)
	if err != nil {
		return nil, err
	}
	ing.Frequencies = ft

	// External knowledge source customization (lines 19–23): for each
	// concept A and each non-parent ancestor B, when A or B is flagged, add
	// an application-specific edge carrying the original distance.
	if !opts.DisableShortcuts {
		order, err := g.TopologicalOrder()
		if err != nil {
			return nil, err
		}
		type plannedEdge struct {
			from, to eks.ConceptID
			dist     int
		}
		var planned []plannedEdge
		for _, a := range order {
			aFlagged := ing.Flagged[a]
			for b, dist := range g.UpDistances(a) {
				if dist < 2 {
					continue // direct parents stay as they are
				}
				if opts.ShortcutMaxDist > 0 && dist > opts.ShortcutMaxDist {
					continue
				}
				if !aFlagged && !ing.Flagged[b] {
					continue
				}
				if g.HasEdge(a, b) {
					continue
				}
				planned = append(planned, plannedEdge{from: a, to: b, dist: dist})
			}
		}
		// Deterministic insertion order.
		sort.Slice(planned, func(i, j int) bool {
			if planned[i].from != planned[j].from {
				return planned[i].from < planned[j].from
			}
			return planned[i].to < planned[j].to
		})
		for _, e := range planned {
			if err := g.AddShortcutEdge(e.from, e.to, e.dist); err != nil {
				return nil, fmt.Errorf("core: customization: %w", err)
			}
			ing.ShortcutsAdded++
		}
	}
	// The graph's structure is final: freeze the dense traversal index now
	// so the first online query does not pay the build.
	g.Freeze()
	return ing, nil
}

// ConceptForTerm maps a query term to an external concept with the given
// mapper — the first step of the online phase (Algorithm 2, line 1).
func (ing *Ingestion) ConceptForTerm(term string, mapper match.Mapper) (eks.ConceptID, bool) {
	return mapper.Map(term)
}

// InstanceResults resolves a ranked list of external concepts into KB
// instances through the mappings (Algorithm 2, line 7).
func (ing *Ingestion) InstanceResults(conceptIDs []eks.ConceptID) []kb.InstanceID {
	var out []kb.InstanceID
	seen := map[kb.InstanceID]bool{}
	for _, cid := range conceptIDs {
		for _, iid := range ing.InstancesFor[cid] {
			if !seen[iid] {
				seen[iid] = true
				out = append(out, iid)
			}
		}
	}
	return out
}
