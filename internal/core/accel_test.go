package core

import (
	"context"
	"reflect"
	"testing"

	"medrelax/internal/eks"
	"medrelax/internal/ontology"
)

// accelWorld ingests the shared world with both offline accelerations
// enabled under the given relax options and returns the ingestion plus a
// pure-live relaxer and an accelerated relaxer over the same state.
func accelWorld(t *testing.T, ropts RelaxOptions, mopts MaterializeOptions, copts CandidateIndexOptions) (*Ingestion, *Relaxer, *Relaxer) {
	t.Helper()
	mopts.Enabled = true
	mopts.Relax = ropts
	copts.Enabled = true
	ing := ingestWorld(t, IngestOptions{Materialize: mopts, CandidateIndex: copts})
	if ing.Materialized == nil {
		t.Fatal("ingest did not build materialized store")
	}
	if ing.Candidates == nil {
		t.Fatal("ingest did not build candidate index")
	}
	sim := NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	live := NewRelaxer(ing, sim, exactMapper{ing.Graph}, ropts)
	accel := NewRelaxer(ing, NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology), exactMapper{ing.Graph}, ropts)
	if !accel.SetMaterialized(ing.Materialized) {
		t.Fatal("SetMaterialized refused a store built under the same options")
	}
	if !accel.SetCandidateIndex(ing.Candidates) {
		t.Fatalf("SetCandidateIndex refused an index of radius %d for serving radius %d",
			ing.Candidates.Radius(), ropts.Radius)
	}
	return ing, live, accel
}

// queryContexts returns every context the equivalence sweeps cover: the
// context-free query plus each ontology-derived context.
func queryContexts(ing *Ingestion) []*ontology.Context {
	ctxs := []*ontology.Context{nil}
	for i := range ing.Contexts {
		ctxs = append(ctxs, &ing.Contexts[i])
	}
	return ctxs
}

// assertIdentical sweeps every graph concept, context, and a spread of k
// values, requiring the accelerated relaxer's output to be deeply equal to
// the live traversal's.
func assertIdentical(t *testing.T, ing *Ingestion, live, accel *Relaxer) {
	t.Helper()
	ks := []int{0, 1, 2, 3, 5, 100}
	for _, q := range ing.Graph.ConceptIDs() {
		for _, qctx := range queryContexts(ing) {
			for _, k := range ks {
				want := live.RelaxConcept(q, qctx, k)
				got := accel.RelaxConcept(q, qctx, k)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("concept %d ctx %q k %d:\nlive  %+v\naccel %+v",
						q, ctxKey(qctx), k, want, got)
				}
			}
		}
	}
}

func TestAcceleratedPathsByteIdentical(t *testing.T) {
	cases := []struct {
		name  string
		ropts RelaxOptions
		mopts MaterializeOptions
		copts CandidateIndexOptions
	}{
		{
			name:  "default dynamic, full-coverage index",
			ropts: RelaxOptions{Radius: 3, DynamicRadius: true, MaxRadius: 8},
			mopts: MaterializeOptions{HeadFraction: 1},
			copts: CandidateIndexOptions{Radius: 8},
		},
		{
			name:  "dynamic growth outruns narrow index",
			ropts: RelaxOptions{Radius: 2, DynamicRadius: true, MaxRadius: 8},
			mopts: MaterializeOptions{HeadFraction: 1},
			copts: CandidateIndexOptions{Radius: 3},
		},
		{
			name:  "fixed radius",
			ropts: RelaxOptions{Radius: 2, DynamicRadius: false},
			mopts: MaterializeOptions{HeadFraction: 1},
			copts: CandidateIndexOptions{Radius: 4},
		},
		{
			name:  "include self",
			ropts: RelaxOptions{Radius: 3, DynamicRadius: true, MaxRadius: 6, IncludeSelf: true},
			mopts: MaterializeOptions{HeadFraction: 1},
			copts: CandidateIndexOptions{Radius: 6},
		},
		{
			name:  "truncated materialization falls back correctly",
			ropts: RelaxOptions{Radius: 3, DynamicRadius: true, MaxRadius: 8},
			mopts: MaterializeOptions{HeadFraction: 1, MaxPerQuery: 1},
			copts: CandidateIndexOptions{Radius: 8},
		},
		{
			name:  "hub skip forces live fallback",
			ropts: RelaxOptions{Radius: 3, DynamicRadius: true, MaxRadius: 8},
			mopts: MaterializeOptions{HeadFraction: 0.3},
			copts: CandidateIndexOptions{Radius: 8, MaxPostings: 2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ing, live, accel := accelWorld(t, tc.ropts, tc.mopts, tc.copts)
			assertIdentical(t, ing, live, accel)
		})
	}
}

func TestAcceleratedPathsActuallyFire(t *testing.T) {
	ing, live, accel := accelWorld(t,
		RelaxOptions{Radius: 3, DynamicRadius: true, MaxRadius: 8},
		MaterializeOptions{HeadFraction: 1},
		CandidateIndexOptions{Radius: 8})
	assertIdentical(t, ing, live, accel)
	liveN, matN, idxN := accel.PathCounts()
	if matN == 0 {
		t.Error("materialized path never fired despite full-head store")
	}
	// k=0 on truncation-free entries is materialized; the index only
	// catches concepts outside the head. With HeadFraction 1 every flagged
	// concept is materialized, so the index path fires for unflagged query
	// concepts (which still have flagged neighbours).
	if idxN == 0 {
		t.Error("indexed path never fired")
	}
	t.Logf("paths: live=%d materialized=%d indexed=%d", liveN, matN, idxN)
	wl, wm, wi := live.PathCounts()
	if wm != 0 || wi != 0 {
		t.Errorf("live relaxer counted accelerated paths: live=%d mat=%d idx=%d", wl, wm, wi)
	}
}

func TestTracedBatchMatchesSequential(t *testing.T) {
	ing, live, accel := accelWorld(t,
		RelaxOptions{Radius: 3, DynamicRadius: true, MaxRadius: 8},
		MaterializeOptions{HeadFraction: 1},
		CandidateIndexOptions{Radius: 8})
	var queries []BatchQuery
	for _, q := range ing.Graph.ConceptIDs() {
		for _, qctx := range queryContexts(ing) {
			queries = append(queries, BatchQuery{Concept: q, UseConcept: true, Ctx: qctx, K: 3})
		}
	}
	queries = append(queries, BatchQuery{Term: "no such term"})
	wantRes, wantErrs := live.RelaxBatchContext(context.Background(), queries)
	gotRes, paths, gotErrs := accel.RelaxBatchContextTraced(context.Background(), queries)
	for i := range queries {
		if (wantErrs[i] == nil) != (gotErrs[i] == nil) {
			t.Fatalf("item %d: err mismatch: %v vs %v", i, wantErrs[i], gotErrs[i])
		}
		if !reflect.DeepEqual(wantRes[i], gotRes[i]) {
			t.Fatalf("item %d (path %s): results diverge", i, paths[i])
		}
	}
	sawMat := false
	for i, p := range paths {
		if gotErrs[i] == nil && p == PathMaterialized {
			sawMat = true
		}
	}
	if !sawMat {
		t.Error("no batch item was served from the materialized store")
	}
}

func TestSetMaterializedRejectsMismatchedOptions(t *testing.T) {
	ing, _, _ := accelWorld(t,
		RelaxOptions{Radius: 3, DynamicRadius: true, MaxRadius: 8},
		MaterializeOptions{HeadFraction: 1},
		CandidateIndexOptions{Radius: 8})
	sim := NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	other := NewRelaxer(ing, sim, exactMapper{ing.Graph}, RelaxOptions{Radius: 2, DynamicRadius: true, MaxRadius: 8})
	if other.SetMaterialized(ing.Materialized) {
		t.Error("SetMaterialized accepted a store built under different options")
	}
	if other.SetMaterialized(nil) {
		t.Error("SetMaterialized accepted nil")
	}
}

func TestSetCandidateIndexRejectsNarrowIndex(t *testing.T) {
	ing := ingestWorld(t, IngestOptions{CandidateIndex: CandidateIndexOptions{Enabled: true, Radius: 2}})
	if ing.Candidates == nil {
		t.Fatal("ingest did not build candidate index")
	}
	sim := NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	r := NewRelaxer(ing, sim, exactMapper{ing.Graph}, RelaxOptions{Radius: 3, DynamicRadius: true, MaxRadius: 8})
	if r.SetCandidateIndex(ing.Candidates) {
		t.Error("SetCandidateIndex accepted an index narrower than the serving radius")
	}
	if r.SetCandidateIndex(nil) {
		t.Error("SetCandidateIndex accepted nil")
	}
}

func TestMaterializedSnapshotRoundTrip(t *testing.T) {
	ing, live, _ := accelWorld(t,
		RelaxOptions{Radius: 3, DynamicRadius: true, MaxRadius: 8},
		MaterializeOptions{HeadFraction: 1},
		CandidateIndexOptions{Radius: 8})
	snap := ing.Materialized.Snapshot()
	restored, err := RestoreMaterialized(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Entries() != ing.Materialized.Entries() {
		t.Fatalf("restored %d entries, want %d", restored.Entries(), ing.Materialized.Entries())
	}
	accel := NewRelaxer(ing, NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology),
		exactMapper{ing.Graph}, live.Options())
	if !accel.SetMaterialized(restored) {
		t.Fatal("restored store refused by an identically configured relaxer")
	}
	assertIdentical(t, ing, live, accel)
}

func TestCandidateIndexSnapshotRoundTrip(t *testing.T) {
	ing, live, _ := accelWorld(t,
		RelaxOptions{Radius: 3, DynamicRadius: true, MaxRadius: 8},
		MaterializeOptions{HeadFraction: 1},
		CandidateIndexOptions{Radius: 8})
	snap := ing.Candidates.Snapshot()
	restored, err := RestoreCandidateIndex(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Postings() != ing.Candidates.Postings() {
		t.Fatalf("restored %d postings, want %d", restored.Postings(), ing.Candidates.Postings())
	}
	accel := NewRelaxer(ing, NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology),
		exactMapper{ing.Graph}, live.Options())
	if !accel.SetCandidateIndex(restored) {
		t.Fatal("restored index refused by an identically configured relaxer")
	}
	assertIdentical(t, ing, live, accel)
}

func TestRestoreMaterializedRejectsCorruption(t *testing.T) {
	ing, _, _ := accelWorld(t,
		RelaxOptions{Radius: 3, DynamicRadius: true, MaxRadius: 8},
		MaterializeOptions{HeadFraction: 1},
		CandidateIndexOptions{Radius: 8})
	base := ing.Materialized.Snapshot()
	if len(base.Entries) == 0 || len(base.Entries[0].Cands) < 2 {
		t.Fatal("fixture too small to corrupt meaningfully")
	}
	mutate := []struct {
		name string
		fn   func(s *MaterializedSnapshot)
	}{
		{"non-normalized options", func(s *MaterializedSnapshot) { s.Relax.MaxRadius = 0 }},
		{"duplicate entry", func(s *MaterializedSnapshot) { s.Entries = append(s.Entries, s.Entries[0]) }},
		{"wrong counts length", func(s *MaterializedSnapshot) { s.Entries[0].Counts = s.Entries[0].Counts[:1] }},
		{"hops beyond max radius", func(s *MaterializedSnapshot) { s.Entries[0].Cands[0].Hops = 99 }},
		{"ranking order violated", func(s *MaterializedSnapshot) {
			s.Entries[0].Cands[0], s.Entries[0].Cands[1] = s.Entries[0].Cands[1], s.Entries[0].Cands[0]
		}},
	}
	for _, m := range mutate {
		t.Run(m.name, func(t *testing.T) {
			snap := cloneMatSnapshot(base)
			m.fn(snap)
			if _, err := RestoreMaterialized(snap); err == nil {
				t.Error("RestoreMaterialized accepted a corrupt snapshot")
			}
		})
	}
}

func TestRestoreCandidateIndexRejectsCorruption(t *testing.T) {
	ing, _, _ := accelWorld(t,
		RelaxOptions{Radius: 3, DynamicRadius: true, MaxRadius: 8},
		MaterializeOptions{HeadFraction: 1},
		CandidateIndexOptions{Radius: 8})
	base := ing.Candidates.Snapshot()
	var rich int = -1
	for i, ls := range base.Lists {
		if len(ls.Postings) >= 2 {
			rich = i
			break
		}
	}
	if rich < 0 {
		t.Fatal("fixture has no posting list with >= 2 entries")
	}
	mutate := []struct {
		name string
		fn   func(s *CandidateIndexSnapshot)
	}{
		{"zero radius", func(s *CandidateIndexSnapshot) { s.Radius = 0 }},
		{"duplicate list", func(s *CandidateIndexSnapshot) { s.Lists = append(s.Lists, s.Lists[rich]) }},
		{"hops out of range", func(s *CandidateIndexSnapshot) { s.Lists[rich].Postings[0].Hops = s.Radius + 1 }},
		{"hop order violated", func(s *CandidateIndexSnapshot) {
			s.Lists[rich].Postings[0].Hops = s.Radius
			s.Lists[rich].Postings[1].Hops = 1
		}},
		{"negative geometry", func(s *CandidateIndexSnapshot) { s.Lists[rich].Postings[0].Gen = -1 }},
		{"LCS not ascending", func(s *CandidateIndexSnapshot) {
			ps := &s.Lists[rich].Postings[0]
			ps.LCS = []eks.ConceptID{5, 5}
		}},
	}
	for _, m := range mutate {
		t.Run(m.name, func(t *testing.T) {
			snap := cloneIdxSnapshot(base)
			m.fn(snap)
			if _, err := RestoreCandidateIndex(snap); err == nil {
				t.Error("RestoreCandidateIndex accepted a corrupt snapshot")
			}
		})
	}
}

func cloneMatSnapshot(s *MaterializedSnapshot) *MaterializedSnapshot {
	out := &MaterializedSnapshot{Relax: s.Relax, Entries: make([]MaterializedEntrySnapshot, len(s.Entries))}
	for i, e := range s.Entries {
		e.Counts = append([]int32(nil), e.Counts...)
		e.Cands = append([]MaterializedCandidate(nil), e.Cands...)
		out.Entries[i] = e
	}
	return out
}

func cloneIdxSnapshot(s *CandidateIndexSnapshot) *CandidateIndexSnapshot {
	out := &CandidateIndexSnapshot{Radius: s.Radius, Lists: make([]CandidateListSnapshot, len(s.Lists))}
	for i, ls := range s.Lists {
		ls.Postings = append([]PostingSnapshot(nil), ls.Postings...)
		for j := range ls.Postings {
			ls.Postings[j].LCS = append([]eks.ConceptID(nil), ls.Postings[j].LCS...)
		}
		out.Lists[i] = ls
	}
	return out
}

func TestMaterializeHeadSelection(t *testing.T) {
	ing := ingestWorld(t, IngestOptions{})
	opts := MaterializeOptions{HeadFraction: 0.5, HeadMax: 2}.withDefaults()
	head := headConcepts(ing, opts)
	if len(head) != 2 {
		t.Fatalf("head size %d, want 2 (HeadMax cap)", len(head))
	}
	// fever (7) and headache (5) dominate the shared corpus.
	want := map[eks.ConceptID]bool{5: true, 7: true}
	for _, id := range head {
		if !want[id] {
			t.Errorf("unexpected head concept %d", id)
		}
	}
}
