package core

import (
	"math/rand"
	"testing"

	"medrelax/internal/eks"
)

func TestLearnPathWeightsDegenerate(t *testing.T) {
	gen := eks.Step{Generalization: true}
	if _, err := LearnPathWeights(nil, 0, 0); err == nil {
		t.Error("empty examples must fail")
	}
	onlyPos := []WeightExample{{Path: eks.Path{Steps: []eks.Step{gen}}, Relevant: true}}
	if _, err := LearnPathWeights(onlyPos, 0, 0); err == nil {
		t.Error("single-label data must fail")
	}
}

// genExamples draws labeled paths whose relevance probability is the true
// Equation 4 weight under the given generalization hop weight (spec = 1).
func genExamples(seed int64, n int, trueGen float64) []WeightExample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]WeightExample, 0, n)
	for i := 0; i < n; i++ {
		d := 1 + rng.Intn(5)
		steps := make([]eks.Step, d)
		for j := range steps {
			steps[j] = eks.Step{Generalization: rng.Intn(2) == 0}
		}
		p := PathWeights{Generalization: trueGen, Specialization: 1}.PathWeight(eks.Path{Steps: steps})
		out = append(out, WeightExample{
			Path:     eks.Path{Steps: steps},
			Relevant: rng.Float64() < p,
		})
	}
	return out
}

func TestLearnPathWeightsRecoversPenalty(t *testing.T) {
	w, err := LearnPathWeights(genExamples(21, 800, 0.9), 3000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Generalization >= w.Specialization {
		t.Errorf("learner must penalize generalization: got gen=%v spec=%v", w.Generalization, w.Specialization)
	}
	if w.Generalization <= 0 || w.Generalization > 1 || w.Specialization <= 0 || w.Specialization > 1 {
		t.Errorf("weights out of (0,1]: %+v", w)
	}
}

func TestLearnPathWeightsOrdering(t *testing.T) {
	// A harsher true generalization penalty must yield a smaller learned
	// generalization weight.
	mild, err := LearnPathWeights(genExamples(33, 800, 0.95), 3000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	harsh, err := LearnPathWeights(genExamples(33, 800, 0.5), 3000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if harsh.Generalization >= mild.Generalization {
		t.Errorf("harsher penalty must learn a smaller weight: harsh=%v mild=%v",
			harsh.Generalization, mild.Generalization)
	}
}

func TestClampWeight(t *testing.T) {
	if clampWeight(2) != 1 {
		t.Error("weights above 1 must clamp to 1")
	}
	if clampWeight(-3) != 0.01 {
		t.Error("non-positive weights must clamp to 0.01")
	}
	if clampWeight(0.7) != 0.7 {
		t.Error("in-range weights must pass through")
	}
}
