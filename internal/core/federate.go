package core

import (
	"context"
	"fmt"
)

// NamedSource is one secondary external knowledge source mounted next to
// the primary: a full ingestion of its own graph, mappings, flagged set and
// frequencies over the SAME kb.Store and domain ontology. The mounting
// ingestion is always the source named "primary"; secondaries carry their
// mount name here. Sources are fused at serving time (see engine): each
// source relaxes independently and the per-source ranked lists merge under
// a deterministic fusion rule with per-source attribution.
type NamedSource struct {
	// Name identifies the source in attributions, stats, and bundles. Must
	// be non-empty and must not collide with "primary" or another source.
	Name string
	// Ing is the source's own offline-phase output. Its Store and Ontology
	// are shared with the primary ingestion; Graph, Mappings, Flagged and
	// Frequencies are the source's own.
	Ing *Ingestion
}

// PrimarySourceName is the reserved name of the mounting ingestion itself.
// Bundles of formats that predate multi-source sections load as this single
// source.
const PrimarySourceName = "primary"

// ValidateSources checks the multi-source invariants of an ingestion:
// non-empty unique names (none colliding with the reserved primary name),
// each secondary sharing the primary's store, and each being servable on
// its own. A single-source ingestion (no secondaries) always passes.
func (ing *Ingestion) ValidateSources() error {
	seen := map[string]bool{PrimarySourceName: true}
	for i, src := range ing.Sources {
		if src.Name == "" {
			return fmt.Errorf("core: source %d has an empty name", i)
		}
		if seen[src.Name] {
			return fmt.Errorf("core: duplicate source name %q", src.Name)
		}
		seen[src.Name] = true
		if src.Ing == nil {
			return fmt.Errorf("core: source %q has no ingestion", src.Name)
		}
		if src.Ing.Graph == nil || src.Ing.Graph.Len() == 0 {
			return fmt.Errorf("core: source %q has an empty external knowledge source", src.Name)
		}
		if src.Ing.Frequencies == nil {
			return fmt.Errorf("core: source %q has no frequency table", src.Name)
		}
		if src.Ing.FlaggedCount() == 0 {
			return fmt.Errorf("core: source %q has no flagged concepts", src.Name)
		}
	}
	return nil
}

// explainKey marks a request context as wanting explain-mode output.
type explainKey struct{}

// WithExplain marks ctx so the serving layers attach relaxation-path
// explanations (subsumer chain, per-edge original distances, Eq. 4 path
// weight, source attribution) to every result. The HTTP layer sets it for
// requests carrying `explain=true`; the flag travels the same context
// channel the cache-bypass marker does, so the fixed Backend signatures
// stay unchanged.
func WithExplain(ctx context.Context) context.Context {
	return context.WithValue(ctx, explainKey{}, true)
}

// ExplainRequested reports whether WithExplain marked this context.
func ExplainRequested(ctx context.Context) bool {
	v, _ := ctx.Value(explainKey{}).(bool)
	return v
}
