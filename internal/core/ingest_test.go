package core

import (
	"testing"

	"medrelax/internal/eks"
	"medrelax/internal/kb"
)

func TestIngestContexts(t *testing.T) {
	ing := ingestWorld(t, IngestOptions{})
	if len(ing.Contexts) != 4 {
		t.Fatalf("contexts = %v, want 4", ing.Contexts)
	}
	want := map[string]bool{
		"Drug-treat-Indication":         true,
		"Drug-cause-Risk":               true,
		"Indication-hasFinding-Finding": true,
		"Risk-hasFinding-Finding":       true,
	}
	for _, c := range ing.Contexts {
		if !want[c.String()] {
			t.Errorf("unexpected context %s", c)
		}
	}
}

func TestIngestMappingsAndFEC(t *testing.T) {
	ing := ingestWorld(t, IngestOptions{})
	// Findings that exactly match EKS names: headache (5), pain in throat
	// (4), fever (7), bronchitis (10). Drugs and indications have no EKS
	// counterpart under the exact mapper.
	wantMap := map[kb.InstanceID]eks.ConceptID{130: 5, 131: 4, 132: 7, 133: 10}
	if len(ing.Mappings) != len(wantMap) {
		t.Fatalf("mappings = %v", ing.Mappings)
	}
	for iid, cid := range wantMap {
		if ing.Mappings[iid] != cid {
			t.Errorf("Mappings[%d] = %d, want %d", iid, ing.Mappings[iid], cid)
		}
		if !ing.Flagged[cid] {
			t.Errorf("concept %d not flagged", cid)
		}
		found := false
		for _, x := range ing.InstancesFor[cid] {
			if x == iid {
				found = true
			}
		}
		if !found {
			t.Errorf("InstancesFor[%d] missing %d", cid, iid)
		}
	}
	if len(ing.Flagged) != 4 {
		t.Errorf("FEC = %v, want 4 concepts", ing.Flagged)
	}
}

func TestIngestShortcutEdges(t *testing.T) {
	ing := ingestWorld(t, IngestOptions{})
	g := ing.Graph
	// headache (5) is flagged and 3 hops from the root: a shortcut 5->1 with
	// dist 3 must exist, plus 5->2 with dist 2.
	if !g.HasEdge(5, 1) || !g.HasEdge(5, 2) {
		t.Error("missing shortcut edges from headache to non-parent ancestors")
	}
	// Semantic distances are preserved.
	if d, ok := g.SemanticDistance(5, 1); !ok || d != 3 {
		t.Errorf("SemanticDistance(5,1) = %d, want 3", d)
	}
	// Unflagged pair with no flagged endpoint gets no shortcut: psychogenic
	// fever (8, unflagged) to root (1, unflagged): both unflagged... root is
	// not flagged, 8 is not flagged, so no edge 8->1.
	if g.HasEdge(8, 1) {
		t.Error("shortcut added between two unflagged concepts")
	}
	// frequent headache (6, unflagged) to root: no flagged endpoint, no edge.
	if g.HasEdge(6, 1) {
		t.Error("shortcut 6->1 must not exist (neither endpoint flagged)")
	}
	// But 6 -> 3 (craniofacial pain, unflagged): no. 6 -> 2: no. 6's flagged
	// ancestor... none (5 is its direct parent, excluded). Check counting.
	if ing.ShortcutsAdded == 0 {
		t.Error("no shortcuts added")
	}
	// After customization the flagged root-distant concepts are 1 hop away.
	found := false
	for _, nb := range g.NeighborsWithinHops(5, 1) {
		if nb.ID == 1 {
			found = true
		}
	}
	if !found {
		t.Error("headache must be 1 hop from the root after customization")
	}
}

func TestIngestDisableShortcuts(t *testing.T) {
	ing := ingestWorld(t, IngestOptions{DisableShortcuts: true})
	if ing.ShortcutsAdded != 0 || ing.Graph.ShortcutCount() != 0 {
		t.Error("DisableShortcuts must add no edges")
	}
}

func TestIngestShortcutMaxDist(t *testing.T) {
	capped := ingestWorld(t, IngestOptions{ShortcutMaxDist: 2})
	full := ingestWorld(t, IngestOptions{})
	if capped.ShortcutsAdded >= full.ShortcutsAdded {
		t.Errorf("cap must reduce shortcuts: %d vs %d", capped.ShortcutsAdded, full.ShortcutsAdded)
	}
	// No shortcut spans more than the cap: headache (5) -> root (1) is 3.
	if capped.Graph.HasEdge(5, 1) {
		t.Error("capped ingestion must not add the 3-hop shortcut")
	}
	if !capped.Graph.HasEdge(5, 2) {
		t.Error("capped ingestion must keep the 2-hop shortcut")
	}
}

func TestIngestIdempotentOnDoubleCustomization(t *testing.T) {
	// Running Ingest twice over the same graph must not fail on duplicate
	// shortcut edges.
	o := testOntology(t)
	g := testEKS(t)
	store := testStore(t, o)
	if _, err := Ingest(o, store, g, testCorpus(), exactMapper{g}, IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	ing2, err := Ingest(o, store, g, testCorpus(), exactMapper{g}, IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ing2.ShortcutsAdded != 0 {
		t.Errorf("second ingestion added %d duplicate shortcuts", ing2.ShortcutsAdded)
	}
}

func TestIngestInvalidInputs(t *testing.T) {
	o := testOntology(t)
	store := testStore(t, o)
	g := eks.New()
	if err := g.AddConcept(eks.Concept{ID: 1, Name: "x"}); err != nil {
		t.Fatal(err)
	}
	// No root -> invalid EKS.
	if _, err := Ingest(o, store, g, testCorpus(), exactMapper{g}, IngestOptions{}); err == nil {
		t.Error("invalid EKS must fail ingestion")
	}
}

func TestInstanceResults(t *testing.T) {
	ing := ingestWorld(t, IngestOptions{})
	got := ing.InstanceResults([]eks.ConceptID{5, 4, 5})
	if len(got) != 2 || got[0] != 130 || got[1] != 131 {
		t.Errorf("InstanceResults = %v, want [130 131]", got)
	}
	if got := ing.InstanceResults(nil); len(got) != 0 {
		t.Errorf("empty input must give empty output, got %v", got)
	}
}

func TestConceptForTerm(t *testing.T) {
	ing := ingestWorld(t, IngestOptions{})
	id, ok := ing.ConceptForTerm("Fever", exactMapper{ing.Graph})
	if !ok || id != 7 {
		t.Errorf("ConceptForTerm(Fever) = %d,%v", id, ok)
	}
	if _, ok := ing.ConceptForTerm("pyelectasia", exactMapper{ing.Graph}); ok {
		t.Error("unknown term must not map")
	}
}
