package core

import (
	"math"
	"slices"
	"sync"

	"medrelax/internal/eks"
	"medrelax/internal/ontology"
)

// FeedbackStore accumulates user relevance feedback on relaxed results and
// turns it into score adjustments — the improvement path the paper's
// conclusion proposes ("incorporate the user's relevance feedback in the
// query relaxation method, and ... progressively improve the relaxed
// results", citing Su et al., KDD 2015).
//
// Feedback is kept per (query concept, candidate concept, context
// relationship) tuple, so learning that hypothermia is a bad relaxation of
// psychogenic fever *for treatment queries* does not poison other
// contexts. Scores are adjusted multiplicatively by a logistic function of
// the net feedback, bounded to [MinBoost, MaxBoost], so a few clicks nudge
// the ranking and sustained feedback dominates it, but can never resurrect
// a zero-similarity candidate.
//
// FeedbackStore is safe for concurrent use.
type FeedbackStore struct {
	mu sync.RWMutex
	// net[key] is (positive - negative) feedback.
	net map[feedbackKey]int
	// Sharpness controls how fast the multiplier saturates; default 0.5.
	Sharpness float64
	// MinBoost and MaxBoost bound the multiplier; defaults 0.25 and 2.
	MinBoost, MaxBoost float64
}

type feedbackKey struct {
	query, cand  eks.ConceptID
	relationship string
}

// NewFeedbackStore returns an empty store with default parameters.
func NewFeedbackStore() *FeedbackStore {
	return &FeedbackStore{
		net:       map[feedbackKey]int{},
		Sharpness: 0.5,
		MinBoost:  0.25,
		MaxBoost:  2,
	}
}

func key(query, cand eks.ConceptID, ctx *ontology.Context) feedbackKey {
	rel := ""
	if ctx != nil {
		rel = ctx.Relationship
	}
	return feedbackKey{query: query, cand: cand, relationship: rel}
}

// Accept records positive feedback: the user found cand a useful
// relaxation of query in ctx.
func (f *FeedbackStore) Accept(query, cand eks.ConceptID, ctx *ontology.Context) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.net[key(query, cand, ctx)]++
}

// Reject records negative feedback.
func (f *FeedbackStore) Reject(query, cand eks.ConceptID, ctx *ontology.Context) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.net[key(query, cand, ctx)]--
}

// Net returns the net feedback for the tuple.
func (f *FeedbackStore) Net(query, cand eks.ConceptID, ctx *ontology.Context) int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.net[key(query, cand, ctx)]
}

// Len returns the number of tuples with any feedback.
func (f *FeedbackStore) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.net)
}

// Multiplier converts the net feedback into a score multiplier: 1 with no
// feedback, saturating at MaxBoost for strongly accepted pairs and
// MinBoost for strongly rejected ones.
func (f *FeedbackStore) Multiplier(query, cand eks.ConceptID, ctx *ontology.Context) float64 {
	n := f.Net(query, cand, ctx)
	if n == 0 {
		return 1
	}
	f.mu.RLock()
	sharp, lo, hi := f.Sharpness, f.MinBoost, f.MaxBoost
	f.mu.RUnlock()
	if sharp <= 0 {
		sharp = 0.5
	}
	if hi <= 0 {
		hi = 2
	}
	if lo <= 0 || lo > 1 {
		lo = 0.25
	}
	// Logistic in the net count, mapped onto [lo, hi] with 1 at n=0.
	s := 1 / (1 + math.Exp(-sharp*float64(n))) // (0,1), 0.5 at n=0
	if s >= 0.5 {
		return 1 + (hi-1)*(s-0.5)*2
	}
	return lo + (1-lo)*s*2
}

// Rerank applies the feedback multipliers to a ranked result list in place
// and re-sorts it, preserving the deterministic tie-break on concept ID.
// query is the concept the results relax.
func (f *FeedbackStore) Rerank(query eks.ConceptID, ctx *ontology.Context, results []Result) {
	for i := range results {
		results[i].Score *= f.Multiplier(query, results[i].Concept, ctx)
	}
	sortResults(results)
}

func sortResults(results []Result) {
	slices.SortFunc(results, func(a, b Result) int {
		if less(a, b) {
			return -1
		}
		if less(b, a) {
			return 1
		}
		return 0
	})
}

func less(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Concept < b.Concept
}

// FeedbackRelaxer wraps a Relaxer with a FeedbackStore: relaxations are
// reranked by accumulated feedback before being returned.
type FeedbackRelaxer struct {
	*Relaxer
	Feedback *FeedbackStore
}

// NewFeedbackRelaxer wraps relaxer; a nil store gets a fresh one.
func NewFeedbackRelaxer(relaxer *Relaxer, store *FeedbackStore) *FeedbackRelaxer {
	if store == nil {
		store = NewFeedbackStore()
	}
	return &FeedbackRelaxer{Relaxer: relaxer, Feedback: store}
}

// RelaxTerm relaxes the term and reranks by feedback.
func (r *FeedbackRelaxer) RelaxTerm(term string, ctx *ontology.Context, k int) ([]Result, error) {
	q, ok := r.mapper.Map(term)
	if !ok {
		return r.Relaxer.RelaxTerm(term, ctx, k) // surface the same error
	}
	return r.RelaxConceptWithFeedback(q, ctx, k), nil
}

// RelaxConceptWithFeedback relaxes and reranks.
func (r *FeedbackRelaxer) RelaxConceptWithFeedback(q eks.ConceptID, ctx *ontology.Context, k int) []Result {
	results := r.Relaxer.RankedCandidates(q, ctx)
	r.Feedback.Rerank(q, ctx, results)
	if k <= 0 {
		return results
	}
	var out []Result
	instances := 0
	for _, res := range results {
		if instances >= k {
			break
		}
		out = append(out, res)
		instances += len(res.Instances)
	}
	return out
}
