package core

import (
	"runtime"
	"sync"

	"medrelax/internal/eks"
	"medrelax/internal/ontology"
)

// PrecomputedSimilarity materializes, for selected query concepts and
// contexts, the ranked flagged candidates within the search radius — the
// paper's online phase "retrieves the pre-computed similarity between A
// and each external concept in its neighborhood" (Section 5.2), trading
// offline time and memory for constant-time online lookups.
//
// The paper also notes that precomputing *all pairs* "leads to unnecessary
// computations and space consumption"; accordingly the store is scoped to
// the flagged concepts (the only valid query anchors with KB answers), a
// fixed context list, and the top MaxPerQuery candidates per entry.
type PrecomputedSimilarity struct {
	// entries[q][ctxKey] is the ranked candidate list.
	entries map[eks.ConceptID]map[string][]Result
	radius  int
}

// PrecomputeOptions tunes the build.
type PrecomputeOptions struct {
	// Radius is the hop radius candidates are gathered in. Default 3.
	Radius int
	// MaxPerQuery caps each entry's candidate list. Default 50.
	MaxPerQuery int
	// Contexts are the query contexts to precompute for; a nil-context
	// (context-free) entry is always included.
	Contexts []ontology.Context
	// Workers is the number of goroutines ranking query concepts in
	// parallel; 0 means GOMAXPROCS. The build is deterministic regardless:
	// each worker owns disjoint query concepts and the shared similarity
	// evaluator is safe for concurrent use.
	Workers int
}

func (o PrecomputeOptions) withDefaults() PrecomputeOptions {
	if o.Radius <= 0 {
		o.Radius = 3
	}
	if o.MaxPerQuery <= 0 {
		o.MaxPerQuery = 50
	}
	return o
}

func ctxKey(ctx *ontology.Context) string {
	if ctx == nil {
		return ""
	}
	return ctx.String()
}

// Precompute builds the store over every flagged concept of the ingestion,
// using sim for scoring. It runs once, offline, after Ingest.
func Precompute(ing *Ingestion, sim *Similarity, opts PrecomputeOptions) *PrecomputedSimilarity {
	opts = opts.withDefaults()
	p := &PrecomputedSimilarity{
		entries: make(map[eks.ConceptID]map[string][]Result, ing.FlaggedCount()),
		radius:  opts.Radius,
	}
	relaxer := NewRelaxer(ing, sim, nil, RelaxOptions{Radius: opts.Radius})

	queries := ing.FlaggedIDs()

	ctxs := make([]*ontology.Context, 0, len(opts.Contexts)+1)
	ctxs = append(ctxs, nil)
	for i := range opts.Contexts {
		ctxs = append(ctxs, &opts.Contexts[i])
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers < 1 {
		workers = 1
	}
	// Each slot is written by exactly one worker; entries are assembled
	// after the barrier so the map itself is never shared while hot.
	built := make([]map[string][]Result, len(queries))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				q := queries[i]
				byCtx := make(map[string][]Result, len(ctxs))
				for _, ctx := range ctxs {
					ranked := relaxer.RankedCandidates(q, ctx)
					if len(ranked) > opts.MaxPerQuery {
						ranked = ranked[:opts.MaxPerQuery]
					}
					byCtx[ctxKey(ctx)] = ranked
				}
				built[i] = byCtx
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, q := range queries {
		p.entries[q] = built[i]
	}
	return p
}

// Lookup returns the precomputed ranked candidates for a query concept and
// context. ok is false when the concept or context was not precomputed —
// callers fall back to live computation.
func (p *PrecomputedSimilarity) Lookup(q eks.ConceptID, ctx *ontology.Context) ([]Result, bool) {
	byCtx, ok := p.entries[q]
	if !ok {
		return nil, false
	}
	ranked, ok := byCtx[ctxKey(ctx)]
	return ranked, ok
}

// Queries returns the number of precomputed query concepts.
func (p *PrecomputedSimilarity) Queries() int { return len(p.entries) }

// Entries returns the total number of (query, context) entries.
func (p *PrecomputedSimilarity) Entries() int {
	n := 0
	for _, byCtx := range p.entries {
		n += len(byCtx)
	}
	return n
}

// CachedRelaxer serves relaxations from a PrecomputedSimilarity store,
// falling back to a live Relaxer for query concepts or contexts outside
// the store (e.g. a query term that maps to an unflagged concept).
type CachedRelaxer struct {
	live  *Relaxer
	store *PrecomputedSimilarity
}

// NewCachedRelaxer wraps the live relaxer with the store.
func NewCachedRelaxer(live *Relaxer, store *PrecomputedSimilarity) *CachedRelaxer {
	return &CachedRelaxer{live: live, store: store}
}

// RelaxTerm maps the term and relaxes, preferring the precomputed store.
func (r *CachedRelaxer) RelaxTerm(term string, ctx *ontology.Context, k int) ([]Result, error) {
	q, ok := r.live.mapper.Map(term)
	if !ok {
		return r.live.RelaxTerm(term, ctx, k) // surfaces the mapping error
	}
	return r.RelaxConcept(q, ctx, k), nil
}

// RelaxConcept relaxes from an already-mapped concept.
func (r *CachedRelaxer) RelaxConcept(q eks.ConceptID, ctx *ontology.Context, k int) []Result {
	ranked, ok := r.store.Lookup(q, ctx)
	if !ok {
		return r.live.RelaxConcept(q, ctx, k)
	}
	if k <= 0 {
		return ranked
	}
	return takeForKInstances(ranked, k, &relaxScratch{})
}
