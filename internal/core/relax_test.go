package core

import (
	"context"
	"errors"
	"testing"

	"medrelax/internal/eks"
	"medrelax/internal/kb"
	"medrelax/internal/ontology"
)

func newTestRelaxer(t *testing.T, opts RelaxOptions) (*Relaxer, *Ingestion) {
	t.Helper()
	ing := ingestWorld(t, IngestOptions{})
	sim := NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	r := NewRelaxer(ing, sim, exactMapper{ing.Graph}, opts)
	return r, ing
}

func TestRelaxTermUnknown(t *testing.T) {
	r, _ := newTestRelaxer(t, RelaxOptions{})
	if _, err := r.RelaxTerm("pyelectasia", nil, 5); err == nil {
		t.Error("unmappable term must fail")
	}
}

func TestRelaxRankingPrefersSameSubtree(t *testing.T) {
	r, _ := newTestRelaxer(t, RelaxOptions{Radius: 4})
	ctx := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	results, err := r.RelaxTerm("headache", ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	// The best-ranked candidate for headache must come from the pain
	// subtree (pain in throat, 4) rather than fever (7) or bronchitis (10).
	if results[0].Concept != 4 {
		t.Errorf("top candidate = %d, want 4 (pain in throat); results %+v", results[0].Concept, results)
	}
	// Scores are sorted descending.
	for i := 1; i < len(results); i++ {
		if results[i].Score > results[i-1].Score {
			t.Fatal("results not sorted by score")
		}
	}
	// Only flagged concepts are returned.
	for _, res := range results {
		if res.Concept == 2 || res.Concept == 3 || res.Concept == 6 {
			t.Errorf("unflagged concept %d returned", res.Concept)
		}
	}
}

func TestRelaxSelfExcludedByDefault(t *testing.T) {
	r, _ := newTestRelaxer(t, RelaxOptions{})
	results, err := r.RelaxTerm("fever", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Concept == 7 {
			t.Error("query concept itself returned without IncludeSelf")
		}
	}
}

func TestRelaxIncludeSelf(t *testing.T) {
	r, _ := newTestRelaxer(t, RelaxOptions{IncludeSelf: true})
	results, err := r.RelaxTerm("fever", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 || results[0].Concept != 7 || results[0].Score != 1 || results[0].Hops != 0 {
		t.Errorf("self must rank first with score 1: %+v", results)
	}
}

func TestRelaxKCountsInstances(t *testing.T) {
	r, _ := newTestRelaxer(t, RelaxOptions{Radius: 4})
	// k=1: stop after the first candidate contributes an instance.
	results, err := r.RelaxTerm("headache", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Errorf("k=1 must stop at one contributing candidate, got %d", len(results))
	}
	total := 0
	for _, res := range results {
		total += len(res.Instances)
	}
	if total < 1 {
		t.Error("no instances collected")
	}
}

func TestRelaxDynamicRadius(t *testing.T) {
	// With a radius too small to reach anything, dynamic growth must find
	// candidates anyway.
	ing := ingestWorld(t, IngestOptions{DisableShortcuts: true})
	sim := NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	fixed := NewRelaxer(ing, sim, exactMapper{ing.Graph}, RelaxOptions{Radius: 1})
	grown := NewRelaxer(ing, sim, exactMapper{ing.Graph}, RelaxOptions{Radius: 1, DynamicRadius: true, MaxRadius: 6})
	// pertussis (11): nearest flagged concept is bronchitis (10) at 2 hops
	// without shortcuts.
	fres, err := fixed.RelaxTerm("pertussis", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fres) != 0 {
		t.Errorf("radius 1 without shortcuts must find nothing, got %+v", fres)
	}
	gres, err := grown.RelaxTerm("pertussis", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(gres) == 0 {
		t.Fatal("dynamic radius found nothing")
	}
	if gres[0].Concept != 10 {
		t.Errorf("top candidate = %d, want bronchitis (10)", gres[0].Concept)
	}
}

func TestRelaxShortcutsWidenReach(t *testing.T) {
	// The motivating property of customization: with shortcuts, a small
	// fixed radius reaches flagged concepts that are semantically far.
	withS := ingestWorld(t, IngestOptions{})
	withoutS := ingestWorld(t, IngestOptions{DisableShortcuts: true})
	simS := NewSimilarity(withS.Graph, withS.Frequencies, withS.Ontology)
	simN := NewSimilarity(withoutS.Graph, withoutS.Frequencies, withoutS.Ontology)
	rS := NewRelaxer(withS, simS, exactMapper{withS.Graph}, RelaxOptions{Radius: 2})
	rN := NewRelaxer(withoutS, simN, exactMapper{withoutS.Graph}, RelaxOptions{Radius: 2})
	// From headache (5): without shortcuts, fever (7) is 4 hops
	// (5-3-2-1-7); radius 2 misses it. With shortcuts 5->1 it is 2 hops.
	resS, err := rS.RelaxTerm("headache", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	resN, err := rN.RelaxTerm("headache", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	has := func(rs []Result, id eks.ConceptID) bool {
		for _, r := range rs {
			if r.Concept == id {
				return true
			}
		}
		return false
	}
	if !has(resS, 7) {
		t.Error("with shortcuts, fever must be reachable at radius 2")
	}
	if has(resN, 7) {
		t.Error("without shortcuts, fever must be out of radius 2")
	}
	// And the similarity score of a common candidate is identical — the
	// customization preserves semantics.
	for _, res := range resS {
		if res.Concept == 4 {
			for _, resn := range resN {
				if resn.Concept == 4 && resn.Score != res.Score {
					t.Errorf("shortcut changed the score: %v vs %v", res.Score, resn.Score)
				}
			}
		}
	}
}

func TestTopKInstances(t *testing.T) {
	results := []Result{
		{Concept: 4, Score: 0.9, Instances: []kb.InstanceID{131}},
		{Concept: 7, Score: 0.8, Instances: []kb.InstanceID{132, 131}},
		{Concept: 10, Score: 0.7, Instances: []kb.InstanceID{133}},
	}
	got := TopKInstances(results, 2)
	if len(got) != 2 || got[0] != 131 || got[1] != 132 {
		t.Errorf("TopKInstances = %v, want [131 132]", got)
	}
	got = TopKInstances(results, 10)
	if len(got) != 3 {
		t.Errorf("TopKInstances all = %v", got)
	}
	if got := TopKInstances(nil, 3); len(got) != 0 {
		t.Errorf("empty results = %v", got)
	}
}

func TestMethodsRunAndDiffer(t *testing.T) {
	ing := ingestWorld(t, IngestOptions{})
	mapper := exactMapper{ing.Graph}
	opts := RelaxOptions{Radius: 4}
	methods := []Method{
		NewQR(ing, mapper, opts),
		NewQRNoContext(ing, mapper, opts),
		NewQRNoCorpus(ing, mapper, opts),
		NewICBaseline(ing, mapper, opts),
	}
	names := map[string]bool{}
	for _, m := range methods {
		if names[m.Name()] {
			t.Errorf("duplicate method name %s", m.Name())
		}
		names[m.Name()] = true
		got := m.RelaxConcepts("headache", &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}, 3)
		if len(got) == 0 {
			t.Errorf("%s returned nothing", m.Name())
		}
		// Unknown terms yield nil, not panic.
		if res := m.RelaxConcepts("pyelectasia", nil, 3); res != nil {
			t.Errorf("%s must return nil for unmappable terms", m.Name())
		}
	}
	if !names["QR"] || !names["QR-no-context"] || !names["QR-no-corpus"] || !names["IC"] {
		t.Errorf("method names wrong: %v", names)
	}
}

func TestRelaxTermUnknownIsSentinel(t *testing.T) {
	r, _ := newTestRelaxer(t, RelaxOptions{})
	_, err := r.RelaxTerm("pyelectasia", nil, 5)
	if !errors.Is(err, ErrUnknownTerm) {
		t.Errorf("unknown-term error = %v, want errors.Is(_, ErrUnknownTerm)", err)
	}
}

func TestRelaxTermContextCanceled(t *testing.T) {
	r, _ := newTestRelaxer(t, RelaxOptions{DynamicRadius: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.RelaxTermContext(ctx, "headache", nil, 0)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled relaxation error = %v, want context.Canceled", err)
	}
	// A live context relaxes normally through the same path.
	res, err := r.RelaxTermContext(context.Background(), "headache", nil, 0)
	if err != nil || len(res) == 0 {
		t.Errorf("live-context relaxation = %v results, err %v", len(res), err)
	}
}
