// Package core implements the paper's primary contribution: the two-phase
// query relaxation method of Sections 3 and 5.
//
// The offline phase (Algorithm 1, Ingest) customizes an external knowledge
// source to a given KB: it enumerates the possible query contexts from the
// domain ontology, maps KB instances to external concepts, computes
// per-context concept frequencies from the document corpus (Equations 1–2,
// tf-idf adjusted), and adds application-specific shortcut edges that bring
// flagged concepts within a small hop radius while preserving semantic
// distances.
//
// The online phase (Algorithm 2, Relaxer) receives a [query term, context]
// pair, finds the corresponding external concept, gathers flagged concepts
// within a hop radius, and ranks them by the combined similarity measure
// (Equation 5): a directional path weight (Equation 4) times the IC-based
// similarity (Equation 3) under the context-appropriate frequencies.
package core

import (
	"math"
	"slices"

	"medrelax/internal/corpus"
	"medrelax/internal/eks"
	"medrelax/internal/ontology"
)

// FrequencyOptions controls how concept frequencies are derived from the
// corpus.
type FrequencyOptions struct {
	// UseTFIDF applies the paper's tf-idf adjustment: each concept's direct
	// mention count is weighted by its inverse document frequency, damping
	// concepts that are frequent only because they appear in a few very
	// verbose documents.
	UseTFIDF bool
	// Smoothing is the pseudo-count added when normalizing, so that
	// never-mentioned concepts receive a large finite information content
	// rather than an infinite one. Defaults to 0.02 when zero; smaller
	// values make the absence of corpus evidence for a context more
	// damning, which is what lets the contextual IC demote findings the KB
	// holds no data about in that context.
	Smoothing float64
	// Parallelism is the worker count for the corpus scan (sharded per
	// document) and the per-label bottom-up propagation. 0 follows
	// GOMAXPROCS, 1 forces the serial path; Ingest fills it from its own
	// Parallelism option. The table is identical for every value: shard
	// merges are integer sums and each label propagates independently in
	// topological order.
	Parallelism int
}

func (o FrequencyOptions) withDefaults() FrequencyOptions {
	if o.Smoothing <= 0 {
		o.Smoothing = 0.02
	}
	return o
}

// FrequencyTable holds, for every external concept, its propagated
// frequency per context label (Equation 2: direct mentions plus the
// frequencies of its direct descendants), plus an aggregate over all
// labels used when no contextual information is available.
type FrequencyTable struct {
	// raw[label][id] is the propagated (un-normalized) frequency of the
	// concept under the given corpus context label.
	raw map[string]map[eks.ConceptID]float64
	// aggregate[id] is the propagated frequency summed over all labels,
	// including unlabeled (general) text.
	aggregate map[eks.ConceptID]float64
	rootID    eks.ConceptID
	smoothing float64

	// flat, when set, backs the table with sorted flat-bundle sections
	// (usually a memory mapping) instead of the maps above; see
	// OpenFlatFrequencyTable.
	flat *flatFrequency
}

// BuildFrequencyTable computes per-context concept frequencies for every
// concept of g from the corpus c.
//
// Direct mention counts are gathered with the corpus phrase scanner over
// each concept's preferred name and synonyms; a mention inside a section
// labeled with context ℓ counts toward label ℓ. Counts then propagate
// bottom-up over the subsumption hierarchy in topological order (children
// before parents), exactly as in Algorithm 1 lines 12–18: the frequency of
// a concept is its direct count plus the sum of its direct children's
// frequencies.
func BuildFrequencyTable(g *eks.Graph, c *corpus.Corpus, opts FrequencyOptions) (*FrequencyTable, error) {
	opts = opts.withDefaults()
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	root, ok := g.Root()
	if !ok {
		return nil, errNoRoot
	}

	// Gather direct counts for every concept name and synonym.
	var phrases []string
	for _, id := range g.ConceptIDs() {
		concept, _ := g.Concept(id)
		phrases = append(phrases, concept.Name)
		phrases = append(phrases, concept.Synonyms...)
	}
	stats := c.CountPhrasesN(phrases, resolveParallelism(opts.Parallelism))
	n := c.DocCount()

	// direct[label][id]: tf (or tf-idf) of the concept under each label.
	direct := map[string]map[eks.ConceptID]float64{}
	addDirect := func(label string, id eks.ConceptID, v float64) {
		m, ok := direct[label]
		if !ok {
			m = map[eks.ConceptID]float64{}
			direct[label] = m
		}
		m[id] += v
	}
	for _, id := range g.ConceptIDs() {
		concept, _ := g.Concept(id)
		names := append([]string{concept.Name}, concept.Synonyms...)
		for _, name := range names {
			st, ok := lookupStats(stats, name)
			if !ok || st.TotalTF == 0 {
				continue
			}
			weight := 1.0
			if opts.UseTFIDF {
				weight = corpus.IDF(st.DF, n)
			}
			for label, tf := range st.TF {
				addDirect(label, id, float64(tf)*weight)
			}
		}
	}

	return buildFromDirect(g, order, root, direct, opts), nil
}

// BuildFrequencyTableFromDirectCounts builds a frequency table from
// already-gathered direct mention counts per context label, propagating
// them bottom-up exactly like BuildFrequencyTable. It serves callers whose
// counts come from an external pipeline rather than the corpus scanner, and
// the paper-figure fixtures whose counts are given in the paper.
func BuildFrequencyTableFromDirectCounts(g *eks.Graph, direct map[string]map[eks.ConceptID]float64, opts FrequencyOptions) (*FrequencyTable, error) {
	opts = opts.withDefaults()
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	root, ok := g.Root()
	if !ok {
		return nil, errNoRoot
	}
	return buildFromDirect(g, order, root, direct, opts), nil
}

// buildFromDirect propagates direct counts bottom-up per label (Equation 2)
// and assembles the table. Labels are independent — each propagation walks
// the same topological order over its own map — so they distribute across
// workers, with results landing in a slice indexed by label position.
func buildFromDirect(g *eks.Graph, order []eks.ConceptID, root eks.ConceptID, direct map[string]map[eks.ConceptID]float64, opts FrequencyOptions) *FrequencyTable {
	t := &FrequencyTable{
		raw:       map[string]map[eks.ConceptID]float64{},
		aggregate: map[eks.ConceptID]float64{},
		rootID:    root,
		smoothing: opts.Smoothing,
	}
	labels := make([]string, 0, len(direct))
	for label := range direct {
		labels = append(labels, label)
	}
	slices.Sort(labels)
	propagated := make([]map[eks.ConceptID]float64, len(labels))
	parallelChunks(len(labels), resolveParallelism(opts.Parallelism), func(lo, hi int) {
		for li := lo; li < hi; li++ {
			dm := direct[labels[li]]
			freqs := make(map[eks.ConceptID]float64, g.Len())
			for _, id := range order { // children before parents
				f := dm[id]
				for _, child := range g.Children(id) {
					f += freqs[child]
				}
				freqs[id] = f
			}
			propagated[li] = freqs
		}
	})
	for li, label := range labels {
		t.raw[label] = propagated[li]
	}
	// Aggregate in sorted label order so the float sums are reproducible
	// run to run (map iteration order is not).
	for _, label := range labels {
		for id, f := range t.raw[label] {
			t.aggregate[id] += f
		}
	}
	return t
}

func lookupStats(stats map[string]corpus.TermStats, name string) (corpus.TermStats, bool) {
	// corpus.CountPhrases keys by normalized phrase; reuse its convention by
	// looking up both the raw and trimmed forms cheaply via a re-scan-free
	// normalization — the corpus package normalized with the same tokenizer.
	st, ok := stats[normalizeName(name)]
	return st, ok
}

// Raw returns the propagated (un-normalized) frequency of a concept under a
// single corpus context label, 0 when never mentioned.
func (t *FrequencyTable) Raw(id eks.ConceptID, label string) float64 {
	if t.flat != nil {
		return t.flat.raw(id, label)
	}
	return t.raw[label][id]
}

// RawAggregate returns the propagated frequency summed over all labels.
func (t *FrequencyTable) RawAggregate(id eks.ConceptID) float64 {
	if t.flat != nil {
		return t.flat.rawAggregate(id)
	}
	return t.aggregate[id]
}

// Labels returns the number of distinct context labels with any counts.
func (t *FrequencyTable) Labels() int {
	if t.flat != nil {
		return len(t.flat.labels)
	}
	return len(t.raw)
}

// normalized maps a raw frequency to the smoothed probability of the
// concept under the root's total for the same slice of the table; the root
// always normalizes to 1 (Section 5.1).
func (t *FrequencyTable) normalized(f, rootF float64) float64 {
	return (f + t.smoothing) / (rootF + t.smoothing)
}

// NormalizedForContext returns the normalized frequency of the concept for
// a query context, summing the per-label frequencies over every known label
// whose context is subsumed by ctx under the domain ontology o (same
// relationship name, domain and range being subconcepts). This realizes the
// paper's Example 3: a query in context Drug-cause-Risk aggregates the
// frequencies of all three Risk subconcept contexts.
//
// A nil ctx — no contextual information available — aggregates every label,
// which is the paper's stated fallback and the behaviour of QR-no-context.
func (t *FrequencyTable) NormalizedForContext(id eks.ConceptID, ctx *ontology.Context, o *ontology.Ontology) float64 {
	if t.flat != nil {
		return t.flat.normalizedForContext(t, id, ctx, o)
	}
	if ctx == nil || o == nil {
		return t.normalized(t.aggregate[id], t.aggregate[t.rootID])
	}
	f, rootF := 0.0, 0.0
	matched := false
	for label, freqs := range t.raw {
		lc, err := ontology.ParseContext(label)
		if err != nil {
			continue
		}
		if lc.Relationship != ctx.Relationship {
			continue
		}
		if !o.IsSubConceptOf(lc.Domain, ctx.Domain) || !o.IsSubConceptOf(lc.Range, ctx.Range) {
			continue
		}
		matched = true
		f += freqs[id]
		rootF += freqs[t.rootID]
	}
	if !matched {
		// No corpus evidence for this context at all: fall back to the
		// aggregate so IC stays informative rather than uniformly maximal.
		return t.normalized(t.aggregate[id], t.aggregate[t.rootID])
	}
	return t.normalized(f, rootF)
}

// FrequencySnapshot is the serializable state of a FrequencyTable, used by
// the persistence layer to save and restore the offline phase.
type FrequencySnapshot struct {
	// Labels holds, per context label, the propagated frequencies as
	// parallel ID/value slices (JSON-friendly; map keys must be strings).
	Labels []FrequencyLabelSnapshot
	Root   eks.ConceptID
	Smooth float64
}

// FrequencyLabelSnapshot is one label's slice of the table.
type FrequencyLabelSnapshot struct {
	Label  string
	IDs    []eks.ConceptID
	Values []float64
}

// Snapshot exports the table's state deterministically (labels and IDs
// sorted).
func (t *FrequencyTable) Snapshot() FrequencySnapshot {
	if t.flat != nil {
		return t.flat.snapshot(t.rootID, t.smoothing)
	}
	snap := FrequencySnapshot{Root: t.rootID, Smooth: t.smoothing}
	var labels []string
	for l := range t.raw {
		labels = append(labels, l)
	}
	sortStrings(labels)
	for _, l := range labels {
		freqs := t.raw[l]
		var ids []eks.ConceptID
		for id := range freqs {
			ids = append(ids, id)
		}
		sortConceptIDs(ids)
		ls := FrequencyLabelSnapshot{Label: l, IDs: ids, Values: make([]float64, len(ids))}
		for i, id := range ids {
			ls.Values[i] = freqs[id]
		}
		snap.Labels = append(snap.Labels, ls)
	}
	return snap
}

// RestoreFrequencyTable rebuilds a table from a snapshot.
func RestoreFrequencyTable(snap FrequencySnapshot) (*FrequencyTable, error) {
	t := &FrequencyTable{
		raw:       map[string]map[eks.ConceptID]float64{},
		aggregate: map[eks.ConceptID]float64{},
		rootID:    snap.Root,
		smoothing: snap.Smooth,
	}
	if t.smoothing <= 0 {
		t.smoothing = FrequencyOptions{}.withDefaults().Smoothing
	}
	for _, ls := range snap.Labels {
		if len(ls.IDs) != len(ls.Values) {
			return nil, errSnapshotShape
		}
		m := make(map[eks.ConceptID]float64, len(ls.IDs))
		for i, id := range ls.IDs {
			m[id] = ls.Values[i]
			t.aggregate[id] += ls.Values[i]
		}
		t.raw[ls.Label] = m
	}
	return t, nil
}

func sortStrings(xs []string) {
	slices.Sort(xs)
}

// IC returns the information content of the concept under the query
// context: IC(A) = −log(freq(A)) over normalized frequencies (Equation 1).
// The root has IC 0; never-mentioned concepts get a large finite IC thanks
// to smoothing.
func (t *FrequencyTable) IC(id eks.ConceptID, ctx *ontology.Context, o *ontology.Ontology) float64 {
	f := t.NormalizedForContext(id, ctx, o)
	if f >= 1 {
		return 0
	}
	return -math.Log(f)
}
