package core

import (
	"errors"
	"math"
	"slices"
	"sync"

	"medrelax/internal/eks"
	"medrelax/internal/ontology"
	"medrelax/internal/stringutil"
)

var (
	errNoRoot        = errors.New("core: external knowledge source has no root")
	errSnapshotShape = errors.New("core: frequency snapshot has mismatched id/value lengths")
)

func normalizeName(name string) string { return stringutil.Normalize(name) }

// PathWeights are the per-hop edge weights of Equation 4. The paper's
// empirical study sets generalization to 0.9 and specialization to 1.0;
// LearnPathWeights can fit them from labeled data instead.
type PathWeights struct {
	Generalization float64
	Specialization float64
}

// DefaultPathWeights returns the paper's empirical weights.
func DefaultPathWeights() PathWeights {
	return PathWeights{Generalization: 0.9, Specialization: 1.0}
}

// PathWeight computes p_{A,B} of Equation 4 for a directed hop sequence
// from the query concept A to a candidate B:
//
//	p_{A,B} = Π_{i=1..D} w_i^{D−i}
//
// where D is the semantic path length and w_i the weight of the i-th hop.
// The exponent D−i penalizes early hops hardest, so a generalization at the
// start of the path costs more than one near the end — capturing that the
// meaning drifts most when the query term itself is generalized first.
// The empty path has weight 1.
func (w PathWeights) PathWeight(p eks.Path) float64 {
	d := p.Len()
	weight := 1.0
	for i, step := range p.Steps {
		wi := w.Specialization
		if step.Generalization {
			wi = w.Generalization
		}
		weight *= math.Pow(wi, float64(d-(i+1)))
	}
	return weight
}

// ICSource yields the information content of a concept under a query
// context. FrequencyTable (corpus-based) and IntrinsicIC (structure-based)
// both implement it, letting the similarity measure run with or without a
// corpus (the paper's QR vs QR-no-corpus variants).
type ICSource interface {
	IC(id eks.ConceptID, ctx *ontology.Context, o *ontology.Ontology) float64
}

// Similarity evaluates the paper's measures over one external knowledge
// source.
//
// Paths between a query concept A and a candidate B are taken as the
// canonical taxonomy path: up from A to the common subsumer C minimizing
// dist(A,C)+dist(B,C), then down to B — dist(A,C) generalization hops
// followed by dist(B,C) specializations. This is exactly the path shape the
// paper draws in Figure 6, and it lets one query's subsumer-distance map be
// reused across every candidate, which keeps online relaxation at
// Θ(N log N) per query as the paper's complexity analysis assumes.
//
// Similarity is safe for concurrent use once the graph has stopped
// mutating: subsumer-distance vectors are kept in a bounded, sharded LRU
// shared by all goroutines, and per-query scratch state comes from a
// sync.Pool. (Mutating the exported fields while queries run is not safe,
// as usual.)
type Similarity struct {
	Graph    *eks.Graph
	IC       ICSource
	Ontology *ontology.Ontology
	Weights  PathWeights
	// UsePathWeight disables Equation 4 when false, reducing Equation 5 to
	// the plain IC similarity — the paper's IC baseline.
	UsePathWeight bool

	// vecs caches subsumer-distance vectors of recently seen concepts —
	// query concepts and candidates alike, since Equation 5 needs both
	// endpoints' subsumer sets.
	vecs subsumerCache
}

// NewSimilarity returns the full measure (path weight enabled, default
// weights).
func NewSimilarity(g *eks.Graph, ic ICSource, o *ontology.Ontology) *Similarity {
	return &Similarity{Graph: g, IC: ic, Ontology: o, Weights: DefaultPathWeights(), UsePathWeight: true}
}

// subsumerVec returns the subsumer-distance vector of a through the shared
// LRU. ok is false for an unknown concept.
func (s *Similarity) subsumerVec(a eks.ConceptID) (eks.SubsumerVec, bool) {
	if v, ok := s.vecs.get(a); ok {
		return v, true
	}
	v, ok := s.Graph.SubsumerVec(a)
	if !ok {
		return eks.SubsumerVec{}, false
	}
	s.vecs.put(a, v)
	return v, true
}

// meetScratch is the per-query scratch of canonicalMeet, pooled so the hot
// path does not allocate a tied-LCS slice per candidate.
type meetScratch struct {
	ids []eks.ConceptID
}

var meetPool = sync.Pool{New: func() any { return &meetScratch{} }}

// CanonicalMeet is the exported form of canonicalMeet for explain-mode
// consumers: it returns the deterministic representative subsumer the
// canonical path runs through (minimal up-hops, then minimal ID), the full
// tied LCS set (ascending, freshly allocated), and the generalization /
// specialization hop counts of the canonical path. ok is false when a and b
// share no subsumer.
func (s *Similarity) CanonicalMeet(a, b eks.ConceptID) (rep eks.ConceptID, lcs []eks.ConceptID, gen, spec int, ok bool) {
	scratch := meetPool.Get().(*meetScratch)
	defer meetPool.Put(scratch)
	tied, rep, gen, spec, ok := s.canonicalMeet(a, b, scratch)
	if !ok {
		return 0, nil, 0, 0, false
	}
	return rep, append([]eks.ConceptID(nil), tied...), gen, spec, true
}

// CanonicalPathWeight exposes the Eq. 4 weight of the canonical
// up-then-down path (gen generalizations followed by spec specializations)
// under the measure's weights. The multiplication order matches the scoring
// path exactly, so explain-mode output is bit-identical to the weight the
// ranked score used.
func (s *Similarity) CanonicalPathWeight(gen, spec int) float64 {
	return canonicalPathWeight(s.Weights, gen, spec)
}

// canonicalMeet finds the common subsumers of a and b minimizing the
// combined distance, filling scratch.ids with the tied set (ascending), and
// returning the representative the canonical path runs through (minimal
// up-hops, then minimal ID) with its generalization hop count dist(a, c)
// and specialization hop count dist(b, c). ok is false when a and b share
// no subsumer.
func (s *Similarity) canonicalMeet(a, b eks.ConceptID, scratch *meetScratch) (lcs []eks.ConceptID, rep eks.ConceptID, gen, spec int, ok bool) {
	va, oka := s.subsumerVec(a)
	vb, okb := s.subsumerVec(b)
	if !oka || !okb {
		return nil, 0, 0, 0, false
	}
	best := -1
	ids := scratch.ids[:0]
	repGen, repSpec := 0, 0
	eks.CommonSubsumers(va, vb, func(c eks.ConceptID, da, db int) {
		sum := da + db
		switch {
		case best == -1 || sum < best:
			best = sum
			ids = ids[:0]
			ids = append(ids, c)
			rep, repGen, repSpec = c, da, db
		case sum == best:
			ids = append(ids, c)
			if da < repGen || (da == repGen && c < rep) {
				rep, repGen, repSpec = c, da, db
			}
		}
	})
	scratch.ids = ids
	if best == -1 {
		return nil, 0, 0, 0, false
	}
	// The merge join visits concepts in ascending ID order, so the tied set
	// is already sorted.
	return ids, rep, repGen, repSpec, true
}

// SimIC computes the IC-based similarity of Equation 3,
//
//	sim_IC(A,B) = 2·IC(lcs(A,B)) / (IC(A)+IC(B)),
//
// under the query context. Per footnote 1, when several least common
// subsumers tie on distance to the pair, the average of their ICs is used.
// The result is clamped to [0,1]; a pair with no common subsumer has
// similarity 0, and identical concepts have similarity 1.
func (s *Similarity) SimIC(a, b eks.ConceptID, ctx *ontology.Context) float64 {
	if a == b {
		return 1
	}
	scratch := meetPool.Get().(*meetScratch)
	defer meetPool.Put(scratch)
	lcs, _, _, _, ok := s.canonicalMeet(a, b, scratch)
	if !ok {
		return 0
	}
	return s.simICFromLCS(a, b, lcs, ctx)
}

func (s *Similarity) simICFromLCS(a, b eks.ConceptID, lcs []eks.ConceptID, ctx *ontology.Context) float64 {
	lcsIC := 0.0
	for _, id := range lcs {
		lcsIC += s.IC.IC(id, ctx, s.Ontology)
	}
	lcsIC /= float64(len(lcs))
	denom := s.IC.IC(a, ctx, s.Ontology) + s.IC.IC(b, ctx, s.Ontology)
	if denom <= 0 {
		return 0
	}
	sim := 2 * lcsIC / denom
	if sim < 0 {
		return 0
	}
	if sim > 1 {
		return 1
	}
	return sim
}

// Sim computes the combined similarity of Equation 5 from the query concept
// a to the candidate b: sim(A,B) = p_{A,B} × sim_IC(A,B). Unlike sim_IC the
// measure is asymmetric, because the path weight depends on which endpoint
// is the query term (Example 4). Disconnected pairs score 0.
func (s *Similarity) Sim(a, b eks.ConceptID, ctx *ontology.Context) float64 {
	if a == b {
		return 1
	}
	scratch := meetPool.Get().(*meetScratch)
	defer meetPool.Put(scratch)
	lcs, _, gen, spec, ok := s.canonicalMeet(a, b, scratch)
	if !ok {
		return 0
	}
	ic := s.simICFromLCS(a, b, lcs, ctx)
	if !s.UsePathWeight {
		return ic
	}
	return canonicalPathWeight(s.Weights, gen, spec) * ic
}

// canonicalPathWeight computes PathWeight over the canonical up-then-down
// hop sequence (gen generalizations followed by spec specializations)
// without materializing the path. The multiplication order matches
// PathWeight exactly, so results are bit-identical to the materialized
// form.
func canonicalPathWeight(w PathWeights, gen, spec int) float64 {
	d := gen + spec
	weight := 1.0
	for i := 0; i < gen; i++ {
		weight *= math.Pow(w.Generalization, float64(d-(i+1)))
	}
	for i := gen; i < d; i++ {
		weight *= math.Pow(w.Specialization, float64(d-(i+1)))
	}
	return weight
}

func sortConceptIDs(ids []eks.ConceptID) {
	slices.Sort(ids)
}

// IntrinsicIC is the corpus-free information content of Seco, Veale & Hayes
// (ECAI 2004), estimated purely from the taxonomy structure:
//
//	IC(A) = 1 − log(desc(A)+1) / log(|V|)
//
// where desc(A) is the number of descendants of A and |V| the number of
// concepts. Leaves have IC 1 and the root tends toward 0. The query context
// is ignored — there is no corpus to contextualize. This powers the
// QR-no-corpus variant.
type IntrinsicIC struct {
	graph *eks.Graph
	cache map[eks.ConceptID]float64
	logV  float64
}

// NewIntrinsicIC precomputes descendant counts for every concept of g.
func NewIntrinsicIC(g *eks.Graph) *IntrinsicIC {
	ic := &IntrinsicIC{graph: g, cache: make(map[eks.ConceptID]float64, g.Len())}
	v := g.Len()
	if v < 2 {
		v = 2
	}
	ic.logV = math.Log(float64(v))
	for _, id := range g.ConceptIDs() {
		d := g.DescendantCount(id)
		ic.cache[id] = 1 - math.Log(float64(d)+1)/ic.logV
	}
	return ic
}

// IC implements ICSource; ctx and o are ignored.
func (ic *IntrinsicIC) IC(id eks.ConceptID, _ *ontology.Context, _ *ontology.Ontology) float64 {
	return ic.cache[id]
}

// noContextIC wraps an ICSource and discards the query context, giving the
// QR-no-context variant: frequencies aggregate over all contexts.
type noContextIC struct{ src ICSource }

// WithoutContext returns an ICSource that ignores contextual information.
func WithoutContext(src ICSource) ICSource { return noContextIC{src: src} }

// IC implements ICSource.
func (n noContextIC) IC(id eks.ConceptID, _ *ontology.Context, o *ontology.Ontology) float64 {
	return n.src.IC(id, nil, o)
}
