package core

import (
	"testing"

	"medrelax/internal/embedding"
	"medrelax/internal/ontology"
	"medrelax/internal/stringutil"
)

// trainEncoder builds a tiny SIF encoder whose corpus teaches that the
// test world's finding names share contexts.
func trainEncoder(t *testing.T, ing *Ingestion) *embedding.SIFEncoder {
	t.Helper()
	var streams [][]string
	templates := [][]string{
		{"patients", "with", "%s", "respond", "to", "therapy"},
		{"cases", "of", "%s", "were", "reported", "in", "trials"},
		{"management", "of", "%s", "requires", "monitoring"},
	}
	for _, key := range ing.Graph.NameKeys() {
		toks := stringutil.Tokenize(key)
		for _, tmpl := range templates {
			var s []string
			for _, w := range tmpl {
				if w == "%s" {
					s = append(s, toks...)
				} else {
					s = append(s, w)
				}
			}
			for rep := 0; rep < 3; rep++ {
				streams = append(streams, s)
			}
		}
	}
	model, err := embedding.Train(streams, embedding.Config{Dim: 16, Window: 3, MinCount: 2, Iterations: 30, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	var refs [][]string
	for _, key := range ing.Graph.NameKeys() {
		refs = append(refs, stringutil.Tokenize(key))
	}
	return embedding.NewSIFEncoder(model, 0, refs)
}

func TestEmbeddingMethod(t *testing.T) {
	ing := ingestWorld(t, IngestOptions{})
	enc := trainEncoder(t, ing)
	m := NewEmbeddingMethod("Embedding-trained", ing, enc)
	if m.Name() != "Embedding-trained" {
		t.Errorf("name = %s", m.Name())
	}
	ctx := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	got := m.RelaxConcepts("headache", ctx, 3)
	if len(got) == 0 {
		t.Fatal("no results")
	}
	// Only flagged concepts are returned, and never the query itself.
	for _, cid := range got {
		if !ing.Flagged[cid] {
			t.Errorf("unflagged concept %d returned", cid)
		}
		c, _ := ing.Graph.Concept(cid)
		if c.Name == "headache" {
			t.Error("query concept returned as its own relaxation")
		}
	}
	// k bounds the result count.
	if len(got) > 3 {
		t.Errorf("k=3 but %d results", len(got))
	}
	// Fully OOV terms return nothing rather than panicking.
	if res := m.RelaxConcepts("zzqx vlarp glorb", ctx, 3); len(res) != 0 {
		t.Errorf("OOV term returned %v", res)
	}
	// Synonyms of the query concept are also excluded (pain in throat's
	// synonym "sore throat" indexes the same concept).
	got = m.RelaxConcepts("sore throat", ctx, 5)
	for _, cid := range got {
		if cid == 4 {
			t.Error("synonym lookup leaked the query concept")
		}
	}
}

func TestEmbeddingMethodDeduplicatesAcrossKeys(t *testing.T) {
	ing := ingestWorld(t, IngestOptions{})
	enc := trainEncoder(t, ing)
	m := NewEmbeddingMethod("e", ing, enc)
	got := m.RelaxConcepts("fever", nil, 10)
	seen := map[int64]bool{}
	for _, cid := range got {
		if seen[int64(cid)] {
			t.Fatalf("duplicate concept %d in results", cid)
		}
		seen[int64(cid)] = true
	}
}
