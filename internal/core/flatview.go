package core

import (
	"fmt"
	"sort"

	"medrelax/internal/eks"
	"medrelax/internal/kb"
	"medrelax/internal/ontology"
)

// This file holds the read-only flat (v4 bundle) backings for the core
// offline-phase products: the instance-concept mappings, the frequency
// table, the materialized top-k store, and the candidate index. Each backing
// serves the same accessors as its map-built counterpart from sorted slices
// that usually alias a memory mapping, so a snapshot can be queried without
// materializing per-record structs on the heap.

// SnapshotBacking describes (and, through liveness, pins) the memory a
// flat-mapped ingestion reads from. The persistence layer implements it for
// memory-mapped bundles; heap-backed ingestions leave it nil.
type SnapshotBacking interface {
	// Mapped reports whether the snapshot is served from an OS memory
	// mapping rather than heap-resident structures.
	Mapped() bool
	// SizeBytes is the size of the flat snapshot backing in bytes.
	SizeBytes() int64
}

// MatCand is one stored materialized candidate in its fixed 24-byte wire
// layout: concept, final score, minimal hop distance, and explicit padding
// so the in-memory struct has no compiler-inserted holes and a flat bundle
// section can be viewed as []MatCand directly.
type MatCand struct {
	Concept eks.ConceptID
	Score   float64
	Hops    int32
	Rsv     int32
}

// Posting is one precomputed candidate of the candidate index in its fixed
// 32-byte wire layout: identity, minimal hop distance, and the
// canonical-meet geometry (generalization/specialization hop counts plus a
// span into the shared LCS pool; an empty span means no common subsumer).
type Posting struct {
	Concept      eks.ConceptID
	Hops         int32
	Gen, Spec    int32
	LCSLo, LCSHi int32
	Rsv          int32
}

// checkCSR32 validates one CSR offset array: len(off) == rows+1, starting at
// zero, monotonically non-decreasing, and spanning exactly poolLen entries.
func checkCSR32(what string, rows int, off []int32, poolLen int) error {
	if len(off) != rows+1 {
		return fmt.Errorf("core: flat %s offsets have length %d, want %d", what, len(off), rows+1)
	}
	if off[0] != 0 || int(off[rows]) != poolLen {
		return fmt.Errorf("core: flat %s offsets do not span the pool (%d..%d of %d)", what, off[0], off[rows], poolLen)
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("core: flat %s offsets decrease at %d", what, i)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Instance-concept mappings

// flatMappings backs Ingestion's Mappings/InstancesFor/Flagged maps with
// sorted parallel slices: the mapping pairs in ascending instance order, the
// flagged concept set in ascending order, and a CSR index from each flagged
// concept to its instances.
type flatMappings struct {
	instIDs  []kb.InstanceID // ascending; every mapped instance
	concepts []eks.ConceptID // parallel to instIDs
	flagged  []eks.ConceptID // ascending, distinct
	instOff  []int32         // len(flagged)+1, CSR into instPool
	instPool []kb.InstanceID // ascending within each span
}

// FlatMappingsData carries the decoded mapping sections into
// NewFlatIngestion. Slices may alias a memory mapping; they are never
// mutated.
type FlatMappingsData struct {
	Instances []kb.InstanceID // ascending
	Concepts  []eks.ConceptID // parallel: Instances[i] maps to Concepts[i]
	Flagged   []eks.ConceptID // ascending, distinct mapped concepts
	InstOff   []int32         // len(Flagged)+1
	InstPool  []kb.InstanceID // ascending within each flagged concept's span
}

// flaggedPos returns the position of id in the flagged set, or -1.
func (f *flatMappings) flaggedPos(id eks.ConceptID) int {
	lo, hi := 0, len(f.flagged)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.flagged[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(f.flagged) && f.flagged[lo] == id {
		return lo
	}
	return -1
}

// conceptForInstance returns the mapped concept of an instance, if any.
func (f *flatMappings) conceptForInstance(iid kb.InstanceID) (eks.ConceptID, bool) {
	lo, hi := 0, len(f.instIDs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.instIDs[mid] < iid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(f.instIDs) && f.instIDs[lo] == iid {
		return f.concepts[lo], true
	}
	return 0, false
}

// NewFlatIngestion assembles a read-only Ingestion over flat mapping
// sections and already-opened components. It re-validates what Ingest
// guarantees by construction: mapping pairs sorted by instance, a flagged
// set that is exactly the distinct mapped concepts, per-concept instance
// spans that agree with the pairs, and endpoints that exist in the store and
// graph. The caller attaches Materialized/Candidates/Backing afterwards.
func NewFlatIngestion(contexts []ontology.Context, g *eks.Graph, store *kb.Store, o *ontology.Ontology, ft *FrequencyTable, shortcutsAdded int, d FlatMappingsData) (*Ingestion, error) {
	n := len(d.Instances)
	if len(d.Concepts) != n {
		return nil, fmt.Errorf("core: flat mappings: %d instances, %d concepts", n, len(d.Concepts))
	}
	for i := 0; i < n; i++ {
		if i > 0 && d.Instances[i] <= d.Instances[i-1] {
			return nil, fmt.Errorf("core: flat mappings not strictly ascending at %d", i)
		}
		if _, ok := store.Instance(d.Instances[i]); !ok {
			return nil, fmt.Errorf("core: flat mapping references unknown instance %d", d.Instances[i])
		}
	}
	if err := checkCSR32("mapping", len(d.Flagged), d.InstOff, len(d.InstPool)); err != nil {
		return nil, err
	}
	if len(d.InstPool) != n {
		return nil, fmt.Errorf("core: flat mappings: %d pool instances, %d pairs", len(d.InstPool), n)
	}
	f := &flatMappings{
		instIDs: d.Instances, concepts: d.Concepts,
		flagged: d.Flagged, instOff: d.InstOff, instPool: d.InstPool,
	}
	for i, cid := range d.Flagged {
		if i > 0 && cid <= d.Flagged[i-1] {
			return nil, fmt.Errorf("core: flat flagged set not strictly ascending at %d", i)
		}
		if _, ok := g.Concept(cid); !ok {
			return nil, fmt.Errorf("core: flat flagged concept %d not in graph", cid)
		}
		span := d.InstPool[d.InstOff[i]:d.InstOff[i+1]]
		if len(span) == 0 {
			return nil, fmt.Errorf("core: flat flagged concept %d has no instances", cid)
		}
		for j, iid := range span {
			if j > 0 && iid <= span[j-1] {
				return nil, fmt.Errorf("core: flat instances of concept %d not strictly ascending", cid)
			}
			got, ok := f.conceptForInstance(iid)
			if !ok || got != cid {
				return nil, fmt.Errorf("core: flat instance span of concept %d disagrees with mapping pairs at instance %d", cid, iid)
			}
		}
	}
	return &Ingestion{
		Contexts:       contexts,
		Frequencies:    ft,
		Graph:          g,
		Store:          store,
		Ontology:       o,
		ShortcutsAdded: shortcutsAdded,
		flatMap:        f,
	}, nil
}

// IsFlagged reports whether id is in the FEC set under either backing.
func (ing *Ingestion) IsFlagged(id eks.ConceptID) bool {
	if ing.flatMap != nil {
		return ing.flatMap.flaggedPos(id) >= 0
	}
	return ing.Flagged[id]
}

// FlaggedCount returns the size of the FEC set.
func (ing *Ingestion) FlaggedCount() int {
	if ing.flatMap != nil {
		return len(ing.flatMap.flagged)
	}
	return len(ing.Flagged)
}

// FlaggedIDs returns the FEC set as a fresh ascending slice.
func (ing *Ingestion) FlaggedIDs() []eks.ConceptID {
	if ing.flatMap != nil {
		out := make([]eks.ConceptID, len(ing.flatMap.flagged))
		copy(out, ing.flatMap.flagged)
		return out
	}
	out := make([]eks.ConceptID, 0, len(ing.Flagged))
	for id := range ing.Flagged {
		out = append(out, id)
	}
	sortConceptIDs(out)
	return out
}

// InstancesForConcept returns the KB instances mapped to a concept,
// ascending. The slice is a view shared with the ingestion — callers must
// not mutate it (the same contract InstancesFor map access had).
func (ing *Ingestion) InstancesForConcept(id eks.ConceptID) []kb.InstanceID {
	if ing.flatMap != nil {
		i := ing.flatMap.flaggedPos(id)
		if i < 0 {
			return nil
		}
		return ing.flatMap.instPool[ing.flatMap.instOff[i]:ing.flatMap.instOff[i+1]]
	}
	return ing.InstancesFor[id]
}

// MappingCount returns how many instances are mapped to a concept.
func (ing *Ingestion) MappingCount() int {
	if ing.flatMap != nil {
		return len(ing.flatMap.instIDs)
	}
	return len(ing.Mappings)
}

// MappingPairs returns every instance-concept mapping as parallel slices in
// ascending instance order.
func (ing *Ingestion) MappingPairs() ([]kb.InstanceID, []eks.ConceptID) {
	if ing.flatMap != nil {
		inst := make([]kb.InstanceID, len(ing.flatMap.instIDs))
		copy(inst, ing.flatMap.instIDs)
		con := make([]eks.ConceptID, len(ing.flatMap.concepts))
		copy(con, ing.flatMap.concepts)
		return inst, con
	}
	inst := make([]kb.InstanceID, 0, len(ing.Mappings))
	for iid := range ing.Mappings {
		inst = append(inst, iid)
	}
	sort.Slice(inst, func(i, j int) bool { return inst[i] < inst[j] })
	con := make([]eks.ConceptID, len(inst))
	for i, iid := range inst {
		con[i] = ing.Mappings[iid]
	}
	return inst, con
}

// ---------------------------------------------------------------------------
// Frequency table

// flatFrequency backs a FrequencyTable with per-label CSR spans of sorted
// (concept, value) pairs plus the precomputed aggregate. Per-label root
// frequencies and parsed context labels are derived once at open time so
// NormalizedForContext stays allocation-free.
type flatFrequency struct {
	labels []string // ascending
	off    []int32  // len(labels)+1, CSR into ids/vals
	ids    []eks.ConceptID
	vals   []float64

	aggIDs  []eks.ConceptID // ascending
	aggVals []float64

	ctxs    []ontology.Context // parsed label contexts
	ctxOK   []bool             // whether the label parsed as a context
	rootF   []float64          // per-label root frequency
	aggRoot float64
}

// FlatFrequencyData carries the decoded frequency sections into
// OpenFlatFrequencyTable. The aggregate columns must hold the same
// label-order float accumulation RestoreFrequencyTable computes, so flat and
// heap tables produce bit-identical normalized frequencies.
type FlatFrequencyData struct {
	Root      eks.ConceptID
	Smoothing float64
	Labels    []string        // ascending
	Off       []int32         // len(Labels)+1
	IDs       []eks.ConceptID // ascending within each label span
	Vals      []float64
	AggIDs    []eks.ConceptID // ascending
	AggVals   []float64
}

// lookupIn binary-searches one sorted id span for a concept's value.
func lookupIn(ids []eks.ConceptID, vals []float64, id eks.ConceptID) float64 {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ids) && ids[lo] == id {
		return vals[lo]
	}
	return 0
}

func (f *flatFrequency) span(li int) ([]eks.ConceptID, []float64) {
	return f.ids[f.off[li]:f.off[li+1]], f.vals[f.off[li]:f.off[li+1]]
}

func (f *flatFrequency) labelPos(label string) int {
	lo, hi := 0, len(f.labels)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.labels[mid] < label {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(f.labels) && f.labels[lo] == label {
		return lo
	}
	return -1
}

func (f *flatFrequency) raw(id eks.ConceptID, label string) float64 {
	li := f.labelPos(label)
	if li < 0 {
		return 0
	}
	ids, vals := f.span(li)
	return lookupIn(ids, vals, id)
}

func (f *flatFrequency) rawAggregate(id eks.ConceptID) float64 {
	return lookupIn(f.aggIDs, f.aggVals, id)
}

// normalizedForContext mirrors FrequencyTable.NormalizedForContext over the
// flat spans. Labels iterate in ascending order; the map-backed version
// iterates in map order, which is sound for the same reason there: per-label
// contributions are summed with +=, and every label either matches or not
// independent of iteration order.
func (f *flatFrequency) normalizedForContext(t *FrequencyTable, id eks.ConceptID, ctx *ontology.Context, o *ontology.Ontology) float64 {
	if ctx == nil || o == nil {
		return t.normalized(f.rawAggregate(id), f.aggRoot)
	}
	sum, rootF := 0.0, 0.0
	matched := false
	for li := range f.labels {
		if !f.ctxOK[li] {
			continue
		}
		lc := &f.ctxs[li]
		if lc.Relationship != ctx.Relationship {
			continue
		}
		if !o.IsSubConceptOf(lc.Domain, ctx.Domain) || !o.IsSubConceptOf(lc.Range, ctx.Range) {
			continue
		}
		matched = true
		ids, vals := f.span(li)
		sum += lookupIn(ids, vals, id)
		rootF += f.rootF[li]
	}
	if !matched {
		return t.normalized(f.rawAggregate(id), f.aggRoot)
	}
	return t.normalized(sum, rootF)
}

func (f *flatFrequency) snapshot(root eks.ConceptID, smoothing float64) FrequencySnapshot {
	snap := FrequencySnapshot{Root: root, Smooth: smoothing}
	for li, label := range f.labels {
		ids, vals := f.span(li)
		ls := FrequencyLabelSnapshot{
			Label:  label,
			IDs:    append([]eks.ConceptID(nil), ids...),
			Values: append([]float64(nil), vals...),
		}
		snap.Labels = append(snap.Labels, ls)
	}
	return snap
}

// OpenFlatFrequencyTable wraps flat frequency sections in a read-only
// *FrequencyTable. It validates sorted labels and spans, then precomputes
// the per-label root frequencies and parsed contexts. The stored aggregate
// is trusted structurally (sorted, well-shaped) — its values are protected
// by the bundle checksum and pinned to the heap accumulation by the
// conversion round-trip tests.
func OpenFlatFrequencyTable(d FlatFrequencyData) (*FrequencyTable, error) {
	if len(d.IDs) != len(d.Vals) {
		return nil, fmt.Errorf("core: flat frequency: %d ids, %d values", len(d.IDs), len(d.Vals))
	}
	if len(d.AggIDs) != len(d.AggVals) {
		return nil, fmt.Errorf("core: flat frequency aggregate: %d ids, %d values", len(d.AggIDs), len(d.AggVals))
	}
	if err := checkCSR32("frequency", len(d.Labels), d.Off, len(d.IDs)); err != nil {
		return nil, err
	}
	for i := 1; i < len(d.Labels); i++ {
		if d.Labels[i] <= d.Labels[i-1] {
			return nil, fmt.Errorf("core: flat frequency labels not strictly ascending at %d", i)
		}
	}
	for li := range d.Labels {
		ids := d.IDs[d.Off[li]:d.Off[li+1]]
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				return nil, fmt.Errorf("core: flat frequency label %q ids not strictly ascending", d.Labels[li])
			}
		}
	}
	for i := 1; i < len(d.AggIDs); i++ {
		if d.AggIDs[i] <= d.AggIDs[i-1] {
			return nil, fmt.Errorf("core: flat frequency aggregate ids not strictly ascending at %d", i)
		}
	}
	f := &flatFrequency{
		labels: d.Labels, off: d.Off, ids: d.IDs, vals: d.Vals,
		aggIDs: d.AggIDs, aggVals: d.AggVals,
	}
	f.ctxs = make([]ontology.Context, len(d.Labels))
	f.ctxOK = make([]bool, len(d.Labels))
	f.rootF = make([]float64, len(d.Labels))
	for li, label := range d.Labels {
		if lc, err := ontology.ParseContext(label); err == nil {
			f.ctxs[li], f.ctxOK[li] = lc, true
		}
		ids, vals := f.span(li)
		f.rootF[li] = lookupIn(ids, vals, d.Root)
	}
	f.aggRoot = f.rawAggregate(d.Root)
	t := &FrequencyTable{rootID: d.Root, smoothing: d.Smoothing, flat: f}
	if t.smoothing <= 0 {
		t.smoothing = FrequencyOptions{}.withDefaults().Smoothing
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Materialized top-k store

// flatMaterialized backs a Materialized store with entries sorted by
// (concept, context key): per-entry scalar columns plus CSR spans into the
// shared counts and candidate pools.
type flatMaterialized struct {
	concepts []eks.ConceptID // per entry, sorted by (concept, ctx)
	ctxs     []string        // parallel context keys
	complete []int32         // 1 = complete entry
	cntOff   []int32         // len+1, CSR into counts
	counts   []int32
	candOff  []int32 // len+1, CSR into cands
	cands    []MatCand
}

// FlatMaterializedData carries the decoded materialized sections into
// OpenFlatMaterialized.
type FlatMaterializedData struct {
	Relax    RelaxOptions
	Concepts []eks.ConceptID // sorted by (concept, ctx), dup concepts allowed
	Ctxs     []string
	Complete []int32
	CountOff []int32
	Counts   []int32
	CandOff  []int32
	Cands    []MatCand
}

// get binary-searches the sorted (concept, ctx) entries and returns a value
// view whose slices alias the pools.
func (f *flatMaterialized) get(concept eks.ConceptID, ctx string) (matEntry, bool) {
	i := sort.Search(len(f.concepts), func(i int) bool {
		if f.concepts[i] != concept {
			return f.concepts[i] > concept
		}
		return f.ctxs[i] >= ctx
	})
	if i >= len(f.concepts) || f.concepts[i] != concept || f.ctxs[i] != ctx {
		return matEntry{}, false
	}
	return matEntry{
		complete: f.complete[i] != 0,
		counts:   f.counts[f.cntOff[i]:f.cntOff[i+1]],
		cands:    f.cands[f.candOff[i]:f.candOff[i+1]],
	}, true
}

func (f *flatMaterialized) distinctConcepts() int {
	n := 0
	for i := range f.concepts {
		if i == 0 || f.concepts[i] != f.concepts[i-1] {
			n++
		}
	}
	return n
}

// OpenFlatMaterialized wraps flat materialized sections in a read-only
// *Materialized, enforcing the same invariants RestoreMaterialized does:
// normalized options, the per-entry radius-count span, strictly ascending
// (concept, context) keys, in-range hop distances, and final ranking order.
func OpenFlatMaterialized(d FlatMaterializedData) (*Materialized, error) {
	opts := d.Relax.withDefaults()
	if d.Relax != opts {
		return nil, fmt.Errorf("core: materialized store has non-normalized relax options %+v", d.Relax)
	}
	wantCounts := opts.MaxRadius - opts.Radius + 1
	if !opts.DynamicRadius {
		wantCounts = 1
	}
	n := len(d.Concepts)
	if len(d.Ctxs) != n || len(d.Complete) != n {
		return nil, fmt.Errorf("core: flat materialized: %d concepts, %d contexts, %d flags", n, len(d.Ctxs), len(d.Complete))
	}
	if err := checkCSR32("materialized counts", n, d.CountOff, len(d.Counts)); err != nil {
		return nil, err
	}
	if err := checkCSR32("materialized candidates", n, d.CandOff, len(d.Cands)); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			if d.Concepts[i] < d.Concepts[i-1] ||
				(d.Concepts[i] == d.Concepts[i-1] && d.Ctxs[i] <= d.Ctxs[i-1]) {
				return nil, fmt.Errorf("core: flat materialized entries not strictly ascending at %d", i)
			}
		}
		if int(d.CountOff[i+1]-d.CountOff[i]) != wantCounts {
			return nil, fmt.Errorf("core: materialized entry (%d, %q) has %d radius counts, want %d",
				d.Concepts[i], d.Ctxs[i], d.CountOff[i+1]-d.CountOff[i], wantCounts)
		}
		cands := d.Cands[d.CandOff[i]:d.CandOff[i+1]]
		for j := range cands {
			c := &cands[j]
			if c.Hops < 0 || int(c.Hops) > opts.MaxRadius {
				return nil, fmt.Errorf("core: materialized candidate %d of (%d, %q) at %d hops exceeds max radius %d",
					c.Concept, d.Concepts[i], d.Ctxs[i], c.Hops, opts.MaxRadius)
			}
			if j > 0 {
				prev := &cands[j-1]
				if c.Score > prev.Score || (c.Score == prev.Score && c.Concept <= prev.Concept) {
					return nil, fmt.Errorf("core: materialized entry (%d, %q) not in ranking order at %d", d.Concepts[i], d.Ctxs[i], j)
				}
			}
		}
	}
	return &Materialized{
		opts: opts,
		flat: &flatMaterialized{
			concepts: d.Concepts, ctxs: d.Ctxs, complete: d.Complete,
			cntOff: d.CountOff, counts: d.Counts,
			candOff: d.CandOff, cands: d.Cands,
		},
	}, nil
}

// ---------------------------------------------------------------------------
// Candidate index

// FlatCandidateIndexData carries the decoded candidate-index sections into
// OpenFlatCandidateIndex.
type FlatCandidateIndexData struct {
	Radius   int
	Skipped  int
	Concepts []eks.ConceptID // ascending, indexed concepts
	Off      []int32         // len(Concepts)+1, CSR into Posts
	Posts    []Posting
	LCS      []eks.ConceptID
}

// OpenFlatCandidateIndex wraps flat candidate-index sections in a read-only
// *CandidateIndex, enforcing the same invariants RestoreCandidateIndex does:
// hop-major posting order within the radius, non-negative geometry, and
// strictly ascending LCS spans.
func OpenFlatCandidateIndex(d FlatCandidateIndexData) (*CandidateIndex, error) {
	if d.Radius < 1 {
		return nil, fmt.Errorf("core: candidate index radius %d < 1", d.Radius)
	}
	if d.Skipped < 0 {
		return nil, fmt.Errorf("core: candidate index skipped count %d < 0", d.Skipped)
	}
	if err := checkCSR32("candidate index", len(d.Concepts), d.Off, len(d.Posts)); err != nil {
		return nil, err
	}
	for i := 1; i < len(d.Concepts); i++ {
		if d.Concepts[i] <= d.Concepts[i-1] {
			return nil, fmt.Errorf("core: flat candidate index concepts not strictly ascending at %d", i)
		}
	}
	for ci, q := range d.Concepts {
		posts := d.Posts[d.Off[ci]:d.Off[ci+1]]
		prevHops := int32(0)
		for i := range posts {
			p := &posts[i]
			if p.Hops < 1 || int(p.Hops) > d.Radius {
				return nil, fmt.Errorf("core: posting %d->%d hops %d outside [1,%d]", q, p.Concept, p.Hops, d.Radius)
			}
			if p.Hops < prevHops {
				return nil, fmt.Errorf("core: concept %d posting list not hop-sorted", q)
			}
			prevHops = p.Hops
			if p.Gen < 0 || p.Spec < 0 {
				return nil, fmt.Errorf("core: posting %d->%d has negative meet geometry", q, p.Concept)
			}
			if p.LCSLo < 0 || p.LCSLo > p.LCSHi || int(p.LCSHi) > len(d.LCS) {
				return nil, fmt.Errorf("core: posting %d->%d has LCS span [%d,%d) outside pool of %d", q, p.Concept, p.LCSLo, p.LCSHi, len(d.LCS))
			}
			for j := p.LCSLo + 1; j < p.LCSHi; j++ {
				if d.LCS[j] <= d.LCS[j-1] {
					return nil, fmt.Errorf("core: posting %d->%d LCS set not strictly ascending", q, p.Concept)
				}
			}
		}
	}
	return &CandidateIndex{
		radius:  d.Radius,
		skipped: d.Skipped,
		flatIDs: d.Concepts,
		flatOff: d.Off,
		posts:   d.Posts,
		lcs:     d.LCS,
	}, nil
}
