//go:build !linux

package persist

import (
	"errors"
	"os"
)

// errNoMmap routes non-Linux platforms onto the aligned read-file fallback
// in mapBundle; the flat format needs only aligned bytes, not a real
// mapping.
var errNoMmap = errors.New("persist: memory mapping not supported on this platform")

func mmapFile(_ *os.File, _ int) ([]byte, error) { return nil, errNoMmap }

func munmapBytes(_ []byte) error { return nil }
