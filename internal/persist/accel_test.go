package persist

import (
	"bytes"
	"encoding/json"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"

	"medrelax/internal/core"
	"medrelax/internal/ontology"
)

// accelRelax is the serving configuration the acceleration fixtures are
// built under — it must match the relaxer options used when attaching the
// restored stores.
var accelRelax = core.RelaxOptions{Radius: 3, DynamicRadius: true, MaxRadius: 8}

// buildAccelIngestion is buildIngestion with both offline accelerations
// enabled, covering the v3 bundle sections.
func buildAccelIngestion(t testing.TB) *core.Ingestion {
	t.Helper()
	ing := buildIngestion(t)
	sim := core.NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	ing.Materialized = core.MaterializeTopK(ing, sim, core.MaterializeOptions{
		Enabled: true, Relax: accelRelax, HeadFraction: 1,
	})
	ing.Candidates = core.BuildCandidateIndex(ing, sim, core.CandidateIndexOptions{
		Enabled: true, Radius: 8,
	})
	return ing
}

// buildSmallAccelIngestion carries both accelerations but keeps them tiny
// (small materialized head, tight candidate radius and posting cap) so
// fuzz seeds built from it stay well under the fuzzer's shared-memory cap
// even in the fixed-width flat encoding.
func buildSmallAccelIngestion(t testing.TB) *core.Ingestion {
	t.Helper()
	ing := buildIngestion(t)
	sim := core.NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	ing.Materialized = core.MaterializeTopK(ing, sim, core.MaterializeOptions{
		Enabled: true, Relax: accelRelax, HeadFraction: 0.02,
	})
	ing.Candidates = core.BuildCandidateIndex(ing, sim, core.CandidateIndexOptions{
		Enabled: true, Radius: 2, MaxPostings: 8,
	})
	return ing
}

// assertAccelServes attaches the restored stores to a fresh relaxer and
// checks a relaxation spot-sample against the pure-live answers.
func assertAccelServes(t *testing.T, ing, restored *core.Ingestion) {
	t.Helper()
	if restored.Materialized == nil {
		t.Fatal("restored bundle lost the materialized store")
	}
	if restored.Candidates == nil {
		t.Fatal("restored bundle lost the candidate index")
	}
	if got, want := restored.Materialized.Entries(), ing.Materialized.Entries(); got != want {
		t.Fatalf("restored %d materialized entries, want %d", got, want)
	}
	if got, want := restored.Candidates.Postings(), ing.Candidates.Postings(); got != want {
		t.Fatalf("restored %d postings, want %d", got, want)
	}
	live := core.NewRelaxer(restored,
		core.NewSimilarity(restored.Graph, restored.Frequencies, restored.Ontology),
		exactMapper{restored.Graph}, accelRelax)
	accel := core.NewRelaxer(restored,
		core.NewSimilarity(restored.Graph, restored.Frequencies, restored.Ontology),
		exactMapper{restored.Graph}, accelRelax)
	if !accel.SetMaterialized(restored.Materialized) {
		t.Fatal("restored materialized store refused by matching relaxer")
	}
	if !accel.SetCandidateIndex(restored.Candidates) {
		t.Fatal("restored candidate index refused by matching relaxer")
	}
	ctx := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	// FlaggedIDs works under both map and flat backings; ranging the
	// Flagged map directly would silently skip flat-mapped bundles.
	flagged := restored.FlaggedIDs()
	if len(flagged) == 0 {
		t.Fatal("restored bundle has no flagged concepts to probe")
	}
	if len(flagged) > 25 {
		flagged = flagged[:25]
	}
	for _, q := range flagged {
		for _, k := range []int{0, 3, 10} {
			want := live.RelaxConcept(q, ctx, k)
			got := accel.RelaxConcept(q, ctx, k)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("query %d k %d: restored accelerations diverge from live", q, k)
			}
		}
	}
}

func TestAccelRoundTripBinary(t *testing.T) {
	ing := buildAccelIngestion(t)
	var buf bytes.Buffer
	if err := SaveBinary(&buf, ing); err != nil {
		t.Fatal(err)
	}
	if v := buf.Bytes()[len(binaryMagic)]; v != versionBinaryAccel {
		t.Fatalf("bundle with accelerations saved as version %d, want %d", v, versionBinaryAccel)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertAccelServes(t, ing, restored)
}

func TestAccelRoundTripJSON(t *testing.T) {
	ing := buildAccelIngestion(t)
	var buf bytes.Buffer
	if err := Save(&buf, ing); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertAccelServes(t, ing, restored)
}

func TestAccelFreeBundleStaysV2(t *testing.T) {
	ing := buildIngestion(t)
	var buf bytes.Buffer
	if err := SaveBinary(&buf, ing); err != nil {
		t.Fatal(err)
	}
	if v := buf.Bytes()[len(binaryMagic)]; v != VersionBinary {
		t.Fatalf("acceleration-free bundle saved as version %d, want %d", v, VersionBinary)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Materialized != nil || restored.Candidates != nil {
		t.Error("acceleration-free bundle restored phantom accelerations")
	}
}

func TestAccelBinaryDeterministicBytes(t *testing.T) {
	ing := buildAccelIngestion(t)
	var a, b bytes.Buffer
	if err := SaveBinary(&a, ing); err != nil {
		t.Fatal(err)
	}
	if err := SaveBinary(&b, ing); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("v3 serialization is not byte-deterministic")
	}
}

func TestAccelBinarySectionCorruptionFailsLoudly(t *testing.T) {
	ing := buildAccelIngestion(t)
	base, err := buildBundle(ing)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Materialized.Entries) == 0 || len(base.Materialized.Entries[0].Cands) < 2 {
		t.Fatal("fixture too small to corrupt meaningfully")
	}
	// Semantic corruption with a valid CRC: the header checksum passes, so
	// only restore-time validation of the section can catch it.
	mutate := []struct {
		name string
		fn   func(b *Bundle)
	}{
		{"materialized ranking order", func(b *Bundle) {
			cands := b.Materialized.Entries[0].Cands
			cands[0], cands[1] = cands[1], cands[0]
		}},
		{"materialized counts length", func(b *Bundle) {
			b.Materialized.Entries[0].Counts = b.Materialized.Entries[0].Counts[:1]
		}},
		{"candidate index radius", func(b *Bundle) {
			b.Candidates.Radius = 0
		}},
	}
	for _, m := range mutate {
		t.Run(m.name, func(t *testing.T) {
			b, err := buildBundle(ing)
			if err != nil {
				t.Fatal(err)
			}
			m.fn(b)
			_, err = Load(bytes.NewReader(encodeBinaryStream(b)))
			if err == nil {
				t.Fatal("corrupted acceleration section loaded without error")
			}
			if !errors.Is(err, ErrCorruptBundle) {
				t.Errorf("corruption error is not ErrCorruptBundle: %v", err)
			}
		})
	}
	// Bit-flip inside the v3 section area: the CRC catches it.
	var buf bytes.Buffer
	if err := SaveBinary(&buf, ing); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	bad := append([]byte{}, data...)
	bad[len(bad)-3] ^= 0xFF
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("bit-flipped v3 bundle loaded without error")
	} else if !errors.Is(err, ErrCorruptBundle) {
		t.Errorf("bit-flip error is not ErrCorruptBundle: %v", err)
	}
}

func TestAccelJSONSectionCorruptionFailsLoudly(t *testing.T) {
	ing := buildAccelIngestion(t)
	var buf bytes.Buffer
	if err := Save(&buf, ing); err != nil {
		t.Fatal(err)
	}
	var b Bundle
	if err := json.Unmarshal(buf.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if b.Materialized == nil || len(b.Materialized.Entries) == 0 {
		t.Fatal("JSON bundle lost the materialized section")
	}
	b.Materialized.Entries[0].Cands[0].Hops = 99
	b.CRC32 = 0
	raw, err := json.Marshal(&b)
	if err != nil {
		t.Fatal(err)
	}
	b.CRC32 = crc32.ChecksumIEEE(raw)
	raw, err = json.Marshal(&b)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Load(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("corrupted materialized JSON section loaded without error")
	}
	if !errors.Is(err, ErrCorruptBundle) {
		t.Errorf("corruption error is not ErrCorruptBundle: %v", err)
	}
}
