//go:build linux

package persist

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. The mapping is shared — the
// serving layer replaces bundles by atomic rename, so the mapped inode is
// never rewritten in place and the pages stay stable for the mapping's
// lifetime.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapBytes releases a mapping created by mmapFile.
func munmapBytes(b []byte) error { return syscall.Munmap(b) }
