package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"medrelax/internal/core"
	"medrelax/internal/ontology"
)

func saveFlatBytes(t testing.TB, ing *core.Ingestion) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveFlat(&buf, ing); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func writeFlatFile(t testing.TB, ing *core.Ingestion) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bundle.flat")
	if err := os.WriteFile(path, saveFlatBytes(t, ing), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// assertSameRelaxations runs a relaxation spot-sample on both ingestions
// and requires identical ranked answers.
func assertSameRelaxations(t *testing.T, want, got *core.Ingestion) {
	t.Helper()
	ctx := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	relA := core.NewRelaxer(want,
		core.NewSimilarity(want.Graph, want.Frequencies, want.Ontology),
		exactMapper{want.Graph}, core.RelaxOptions{Radius: 3})
	relB := core.NewRelaxer(got,
		core.NewSimilarity(got.Graph, got.Frequencies, got.Ontology),
		exactMapper{got.Graph}, core.RelaxOptions{Radius: 3})
	flagged := want.FlaggedIDs()
	if len(flagged) == 0 {
		t.Fatal("ingestion has no flagged concepts to probe")
	}
	if len(flagged) > 25 {
		flagged = flagged[:25]
	}
	for _, q := range flagged {
		a := relA.RelaxConcept(q, ctx, 0)
		b := relB.RelaxConcept(q, ctx, 0)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("query %d: relaxations diverge:\n  want %+v\n  got  %+v", q, a, b)
		}
	}
}

func TestFlatRoundTrip(t *testing.T) {
	ing := buildIngestion(t)
	restored, err := OpenFlat(writeFlatFile(t, ing))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Backing == nil {
		t.Fatal("flat ingestion has no backing")
	}
	if restored.Graph.Len() != ing.Graph.Len() || restored.Graph.EdgeCount() != ing.Graph.EdgeCount() {
		t.Errorf("graph: %d/%d vs %d/%d", restored.Graph.Len(), restored.Graph.EdgeCount(), ing.Graph.Len(), ing.Graph.EdgeCount())
	}
	if restored.Graph.ShortcutCount() != ing.Graph.ShortcutCount() {
		t.Errorf("shortcuts: %d vs %d", restored.Graph.ShortcutCount(), ing.Graph.ShortcutCount())
	}
	if restored.Store.Len() != ing.Store.Len() {
		t.Errorf("instances: %d vs %d", restored.Store.Len(), ing.Store.Len())
	}
	if restored.MappingCount() != ing.MappingCount() || restored.FlaggedCount() != ing.FlaggedCount() {
		t.Errorf("mappings/flags differ")
	}
	if len(restored.Contexts) != len(ing.Contexts) {
		t.Errorf("contexts: %d vs %d", len(restored.Contexts), len(ing.Contexts))
	}
	if restored.ShortcutsAdded != ing.ShortcutsAdded {
		t.Errorf("shortcutsAdded: %d vs %d", restored.ShortcutsAdded, ing.ShortcutsAdded)
	}
	if err := ValidateForServing(restored); err != nil {
		t.Errorf("ValidateForServing: %v", err)
	}
	assertSameRelaxations(t, ing, restored)
}

func TestFlatAccelRoundTrip(t *testing.T) {
	ing := buildAccelIngestion(t)
	restored, err := OpenFlat(writeFlatFile(t, ing))
	if err != nil {
		t.Fatal(err)
	}
	assertAccelServes(t, ing, restored)
}

func TestFlatAccelFreeOmitsAccelSections(t *testing.T) {
	ing := buildIngestion(t)
	restored, err := OpenFlat(writeFlatFile(t, ing))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Materialized != nil || restored.Candidates != nil {
		t.Error("acceleration-free flat bundle restored phantom accelerations")
	}
}

// TestFlatExplicitClose pins the deterministic release path: a flat
// snapshot can be retired with Close instead of waiting on the garbage
// collector — replica restarts in the chaos harness depend on this —
// and Close is idempotent, through both the Ingestion and the backing.
func TestFlatExplicitClose(t *testing.T) {
	ing := buildIngestion(t)
	restored, err := OpenFlat(writeFlatFile(t, ing))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Backing == nil {
		t.Fatal("flat ingestion has no backing")
	}
	if _, ok := restored.Backing.(interface{ Close() error }); !ok {
		t.Fatalf("flat backing %T does not expose Close", restored.Backing)
	}
	// Use the snapshot before retiring it.
	if restored.FlaggedCount() == 0 {
		t.Fatal("restored ingestion answers nothing")
	}
	size := restored.Backing.SizeBytes()
	if err := restored.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := restored.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	// Residency metadata outlives the mapping (stats pages read it).
	if got := restored.Backing.SizeBytes(); got != size {
		t.Errorf("SizeBytes after Close = %d, want %d", got, size)
	}
	// A heap-built ingestion has no backing; Close must still be a no-op.
	if err := ing.Close(); err != nil {
		t.Fatalf("heap ingestion Close: %v", err)
	}
}

func TestFlatDeterministicBytes(t *testing.T) {
	ing := buildAccelIngestion(t)
	a := saveFlatBytes(t, ing)
	b := saveFlatBytes(t, ing)
	if !bytes.Equal(a, b) {
		t.Error("flat serialization is not byte-deterministic")
	}
}

// Load sniffs the MRXF magic from a plain reader and decodes the flat
// bundle from a heap copy — the streaming API keeps working for v4.
func TestLoadSniffsFlat(t *testing.T) {
	ing := buildAccelIngestion(t)
	restored, err := Load(bytes.NewReader(saveFlatBytes(t, ing)))
	if err != nil {
		t.Fatal(err)
	}
	assertAccelServes(t, ing, restored)
}

func TestLoadFileDispatchesFlat(t *testing.T) {
	ing := buildIngestion(t)
	restored, err := LoadFile(writeFlatFile(t, ing))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Backing == nil {
		t.Fatal("LoadFile on a flat bundle did not take the zero-copy path")
	}
	assertSameRelaxations(t, ing, restored)
}

func TestLoadFileTruncatedHeader(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		path := filepath.Join(t.TempDir(), "short.bundle")
		if err := os.WriteFile(path, []byte("MRXF")[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadFile(path)
		if err == nil {
			t.Fatalf("%d-byte bundle loaded without error", n)
		}
		if !errors.Is(err, ErrCorruptBundle) {
			t.Errorf("%d-byte header error is not ErrCorruptBundle: %v", n, err)
		}
	}
}

// SaveFileAtomic accepts the flat format and publishes an openable bundle.
func TestSaveFileAtomicFlat(t *testing.T) {
	ing := buildIngestion(t)
	path := filepath.Join(t.TempDir(), "bundle.flat")
	if err := SaveFileAtomic(path, ing, FormatFlat); err != nil {
		t.Fatal(err)
	}
	restored, err := OpenFlat(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRelaxations(t, ing, restored)
}

// Conversion round-trips: a bundle saved in every older format, loaded, and
// re-saved flat must answer relaxations identically to the original.
func TestFlatConversionRoundTrip(t *testing.T) {
	ing := buildAccelIngestion(t)
	formats := []struct {
		name string
		save func(*bytes.Buffer) error
	}{
		{"v1-json", func(b *bytes.Buffer) error { return Save(b, ing) }},
		{"v3-binary", func(b *bytes.Buffer) error { return SaveBinary(b, ing) }},
	}
	for _, f := range formats {
		t.Run(f.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := f.save(&buf); err != nil {
				t.Fatal(err)
			}
			old, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			flat, err := OpenFlat(writeFlatFile(t, old))
			if err != nil {
				t.Fatalf("converting %s to flat: %v", f.name, err)
			}
			assertSameRelaxations(t, old, flat)
			assertAccelServes(t, old, flat)
		})
	}
	// v2 (no accelerations) separately: the accel-free ingestion converts too.
	t.Run("v2-binary", func(t *testing.T) {
		plain := buildIngestion(t)
		var buf bytes.Buffer
		if err := SaveBinary(&buf, plain); err != nil {
			t.Fatal(err)
		}
		old, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		flat, err := OpenFlat(writeFlatFile(t, old))
		if err != nil {
			t.Fatal(err)
		}
		assertSameRelaxations(t, old, flat)
	})
}

// patchDirEntry mutates field bytes of directory entry i and re-stamps the
// directory checksum, so the corruption reaches the per-entry validation.
func patchDirEntry(data []byte, i int, fieldOff int, put func([]byte)) {
	dirOff := binary.LittleEndian.Uint64(data[16:])
	e := data[dirOff+uint64(i)*flatDirEntrySize:]
	put(e[fieldOff:])
	nSec := binary.LittleEndian.Uint32(data[8:])
	dir := data[dirOff : dirOff+uint64(nSec)*flatDirEntrySize]
	binary.LittleEndian.PutUint32(data[12:], sectionCRC(dir))
}

func TestFlatCorruptionFailsLoudly(t *testing.T) {
	ing := buildAccelIngestion(t)
	pristine := saveFlatBytes(t, ing)

	cases := []struct {
		name   string
		mutate func(data []byte) []byte
	}{
		{"truncated header", func(d []byte) []byte { return d[:flatHeaderSize-1] }},
		{"bad magic", func(d []byte) []byte { d[0] ^= 0xFF; return d }},
		{"bad version", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[4:], 99)
			return d
		}},
		{"truncated body", func(d []byte) []byte { return d[:len(d)-1] }},
		{"zero sections", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[8:], 0)
			return d
		}},
		{"implausible section count", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[8:], flatMaxSections+1)
			return d
		}},
		{"directory off the end", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[16:], uint64(len(d)))
			return d
		}},
		{"misaligned directory", func(d []byte) []byte {
			off := binary.LittleEndian.Uint64(d[16:])
			binary.LittleEndian.PutUint64(d[16:], off+4)
			return d
		}},
		{"directory bit flip", func(d []byte) []byte {
			off := binary.LittleEndian.Uint64(d[16:])
			d[off+1] ^= 0xFF
			return d
		}},
		{"section bit flip", func(d []byte) []byte {
			d[flatHeaderSize+2] ^= 0xFF
			return d
		}},
		{"misaligned section", func(d []byte) []byte {
			patchDirEntry(d, 0, 8, func(e []byte) {
				off := binary.LittleEndian.Uint64(e)
				binary.LittleEndian.PutUint64(e, off+4)
			})
			return d
		}},
		{"section overlapping directory", func(d []byte) []byte {
			patchDirEntry(d, 0, 16, func(e []byte) {
				binary.LittleEndian.PutUint64(e, uint64(len(d)))
			})
			return d
		}},
		{"duplicate section kind", func(d []byte) []byte {
			dirOff := binary.LittleEndian.Uint64(d[16:])
			first := binary.LittleEndian.Uint32(d[dirOff:])
			patchDirEntry(d, 1, 0, func(e []byte) {
				binary.LittleEndian.PutUint32(e, first)
			})
			return d
		}},
		{"missing meta section", func(d []byte) []byte {
			// Re-kind every section that is secMeta to an unknown id: the
			// directory stays self-consistent but restore cannot find meta.
			nSec := int(binary.LittleEndian.Uint32(d[8:]))
			dirOff := binary.LittleEndian.Uint64(d[16:])
			for i := 0; i < nSec; i++ {
				e := d[dirOff+uint64(i)*flatDirEntrySize:]
				if binary.LittleEndian.Uint32(e) == secMeta {
					patchDirEntry(d, i, 0, func(f []byte) {
						binary.LittleEndian.PutUint32(f, 9999)
					})
				}
			}
			return d
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), pristine...))
			buf := alignedBytes(len(data))
			copy(buf, data)
			_, err := openFlatBytes(buf, &mapRef{size: int64(len(buf))})
			if err == nil {
				t.Fatal("corrupted flat bundle opened without error")
			}
			if !errors.Is(err, ErrCorruptBundle) {
				t.Errorf("corruption error is not ErrCorruptBundle: %v", err)
			}
		})
	}
}

// Flag/section consistency is checked both ways: accel sections without the
// meta flag, and meta flags without the sections.
func TestFlatAccelFlagConsistency(t *testing.T) {
	ing := buildAccelIngestion(t)
	data := saveFlatBytes(t, ing)

	metaFlagOff := func(d []byte) uint64 {
		nSec := int(binary.LittleEndian.Uint32(d[8:]))
		dirOff := binary.LittleEndian.Uint64(d[16:])
		for i := 0; i < nSec; i++ {
			e := d[dirOff+uint64(i)*flatDirEntrySize:]
			if binary.LittleEndian.Uint32(e) == secMeta {
				return binary.LittleEndian.Uint64(e[8:]) + 32
			}
		}
		t.Fatal("no meta section")
		return 0
	}

	t.Run("flags set without sections", func(t *testing.T) {
		d := append([]byte(nil), data...)
		// Clearing the flags while the mat/cidx sections remain must fail.
		off := metaFlagOff(d)
		binary.LittleEndian.PutUint32(d[off:], 0)
		// Re-stamp the meta section CRC so only the semantic check can fire.
		nSec := int(binary.LittleEndian.Uint32(d[8:]))
		dirOff := binary.LittleEndian.Uint64(d[16:])
		for i := 0; i < nSec; i++ {
			e := d[dirOff+uint64(i)*flatDirEntrySize:]
			if binary.LittleEndian.Uint32(e) == secMeta {
				so := binary.LittleEndian.Uint64(e[8:])
				sl := binary.LittleEndian.Uint64(e[16:])
				patchDirEntry(d, i, 24, func(f []byte) {
					binary.LittleEndian.PutUint32(f, sectionCRC(d[so:so+sl]))
				})
			}
		}
		buf := alignedBytes(len(d))
		copy(buf, d)
		_, err := openFlatBytes(buf, &mapRef{size: int64(len(buf))})
		if err == nil {
			t.Fatal("accel sections with cleared meta flags opened without error")
		}
		if !errors.Is(err, ErrCorruptBundle) {
			t.Errorf("error is not ErrCorruptBundle: %v", err)
		}
	})
}

// The empty-frequency and minimal-world edge still round-trips.
func TestFlatRoundTripSmallWorld(t *testing.T) {
	ing := buildIngestion(t)
	// Strip accelerations explicitly (buildIngestion has none) and save the
	// same world twice through flat: open → save → open must be stable.
	first, err := OpenFlat(writeFlatFile(t, ing))
	if err != nil {
		t.Fatal(err)
	}
	second, err := OpenFlat(writeFlatFile(t, first))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveFlatBytes(t, first), saveFlatBytes(t, second)) {
		t.Error("flat re-save of a flat-opened bundle is not byte-stable")
	}
	assertSameRelaxations(t, ing, second)
}
