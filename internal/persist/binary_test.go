package persist

import (
	"bytes"
	"strings"
	"testing"

	"medrelax/internal/core"
	"medrelax/internal/ontology"
)

// snapshotEqual compares two restored ingestions section by section via
// their serialized state: same graph shape, same mappings, same frequency
// snapshot.
func snapshotEqual(t *testing.T, a, b *core.Ingestion) {
	t.Helper()
	var ja, jb bytes.Buffer
	if err := Save(&ja, a); err != nil {
		t.Fatal(err)
	}
	if err := Save(&jb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Errorf("re-serialized bundles differ (%d vs %d bytes)", ja.Len(), jb.Len())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	ing := buildIngestion(t)
	var buf bytes.Buffer
	if err := SaveBinary(&buf, ing); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	snapshotEqual(t, ing, restored)

	// Behavioural spot check, as in the v1 round-trip test.
	sim := core.NewSimilarity(restored.Graph, restored.Frequencies, restored.Ontology)
	if sim == nil {
		t.Fatal("similarity over restored ingestion")
	}
	ctx := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	for id := range restored.Flagged {
		if got, want := restored.Frequencies.IC(id, ctx, restored.Ontology), ing.Frequencies.IC(id, ctx, ing.Ontology); got != want {
			t.Errorf("IC(%d) = %v, want %v", id, got, want)
		}
	}
}

func TestBinaryMatchesJSONSemantics(t *testing.T) {
	// Loading the same ingestion through v1 and v2 must give identical
	// systems: v2 is a transport optimization, never a semantic change.
	ing := buildIngestion(t)
	var v1, v2 bytes.Buffer
	if err := Save(&v1, ing); err != nil {
		t.Fatal(err)
	}
	if err := SaveBinary(&v2, ing); err != nil {
		t.Fatal(err)
	}
	if v2.Len() >= v1.Len() {
		t.Errorf("binary bundle (%d bytes) not smaller than JSON (%d bytes)", v2.Len(), v1.Len())
	}
	fromJSON, err := Load(&v1)
	if err != nil {
		t.Fatal(err)
	}
	fromBinary, err := Load(&v2)
	if err != nil {
		t.Fatal(err)
	}
	snapshotEqual(t, fromJSON, fromBinary)
}

func TestBinaryCorruptionFailsLoudly(t *testing.T) {
	ing := buildIngestion(t)
	var buf bytes.Buffer
	if err := SaveBinary(&buf, ing); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	t.Run("flipped payload byte", func(t *testing.T) {
		bad := append([]byte{}, data...)
		bad[len(bad)/2] ^= 0xFF
		if _, err := Load(bytes.NewReader(bad)); err == nil {
			t.Fatal("corrupted bundle loaded without error")
		} else if !strings.Contains(err.Error(), "checksum") {
			t.Errorf("want checksum error, got: %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{1, len(data) / 4, len(data) / 2, len(data) - 1} {
			if _, err := Load(bytes.NewReader(data[:cut])); err == nil {
				t.Fatalf("bundle truncated to %d bytes loaded without error", cut)
			}
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte{}, data...)
		bad[len(binaryMagic)] = 99
		if _, err := Load(bytes.NewReader(bad)); err == nil {
			t.Fatal("unknown binary version loaded without error")
		}
	})
	t.Run("trailing garbage inside payload", func(t *testing.T) {
		// Rebuild a stream whose declared length covers extra bytes the
		// sections do not consume: the decoder must reject it.
		var ing2 bytes.Buffer
		if err := SaveBinary(&ing2, ing); err != nil {
			t.Fatal(err)
		}
		// Corrupting the length varint almost always breaks the CRC first;
		// the CRC error is the loud failure we need. This subtest documents
		// that any tampering path errors rather than half-loading.
		bad := append(append([]byte{}, data...), 0xAB, 0xCD)
		if _, err := Load(bytes.NewReader(bad)); err != nil {
			// Trailing bytes after the payload are ignored by design
			// (stream framing is the caller's concern); loading must still
			// succeed or fail loudly, never misparse.
			t.Logf("load with trailing bytes: %v", err)
		}
	})
}

func TestJSONStillLoads(t *testing.T) {
	// v1 remains the inspection/compat format: a JSON bundle saved by the
	// previous release must keep loading after the v2 introduction.
	ing := buildIngestion(t)
	var buf bytes.Buffer
	if err := Save(&buf, ing); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[0] == 'M' {
		t.Fatal("JSON bundle must not start with the binary magic")
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	snapshotEqual(t, ing, restored)
}
