// Package persist serializes the output of the offline phase — the domain
// ontology, the instance store, the customized external knowledge source,
// the instance-to-concept mappings, and the per-context frequency table —
// so that Algorithm 1, "an offline process that is executed only once"
// (Section 5.1), really does run only once: production deployments save
// the ingestion after building it and load it at startup.
//
// Three formats coexist:
//
//   - v1 is versioned JSON — human-inspectable, diff-friendly, stable
//     across Go versions; written by Save.
//   - v2 is a compact binary encoding (magic/version header, CRC-32
//     checksum, length-prefixed sections, deduplicated string table,
//     varint ids) — several times smaller and faster to load; written by
//     SaveBinary. See binary.go for the layout. v3 is v2 plus the optional
//     offline acceleration sections.
//   - v4 is the flat zero-copy snapshot — aligned, individually
//     checksummed sections laid out exactly as the read path traverses
//     them, served directly from a memory mapping; written by SaveFlat and
//     opened by OpenFlat. See flat.go for the layout.
//
// Load auto-detects the format from the first bytes of the stream, and
// LoadFile routes flat bundles to the memory-mapping opener. All formats
// are strictly validated on load (a corrupted or truncated bundle fails
// loudly rather than yielding a half-built system): v2 is protected by its
// CRC-32 header, v4 by per-section checksums, and v1 carries a crc32 field
// computed over the rest of the document, so a torn or bit-flipped bundle
// of any format is rejected with an error wrapping ErrCorruptBundle —
// distinguishable from a missing file, which surfaces the fs.ErrNotExist
// open error.
package persist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"medrelax/internal/core"
	"medrelax/internal/eks"
	"medrelax/internal/fault"
	"medrelax/internal/kb"
	"medrelax/internal/ontology"
)

// ErrCorruptBundle marks a bundle that exists but cannot be trusted —
// truncated, bit-flipped, checksum-mismatched, structurally invalid, or
// of an unknown format. The serving layer's reload handler checks
// errors.Is(err, ErrCorruptBundle) to tell "the pushed file is bad, keep
// the old generation" apart from "the file is missing".
var ErrCorruptBundle = errors.New("corrupt bundle")

// corruptf builds an ErrCorruptBundle error tagged with the detected
// format ("json v1", "binary v2", "flat v4", or "unknown").
func corruptf(format, msg string, args ...any) error {
	return fmt.Errorf("persist: %w (%s): %s", ErrCorruptBundle, format, fmt.Sprintf(msg, args...))
}

// Version is the JSON bundle format version.
const Version = 1

// VersionBinary is the binary bundle format version.
const VersionBinary = 2

// Bundle is the on-disk form of an ingestion.
type Bundle struct {
	Version int `json:"version"`
	// CRC32 is the IEEE checksum of the bundle's canonical JSON encoding
	// with this field zeroed (v1 only; v2 checksums its binary payload in
	// the header instead). It makes torn and bit-flipped v1 bundles fail
	// loudly: JSON truncated mid-document already fails to decode, and
	// this catches the remaining cases — a flipped value that still
	// parses, or a tear that lands on a value boundary.
	CRC32 uint32 `json:"crc32,omitempty"`

	OntologyConcepts      []ontology.Concept      `json:"ontologyConcepts"`
	OntologyRelationships []ontology.Relationship `json:"ontologyRelationships"`

	Instances  []kb.Instance  `json:"instances"`
	Assertions []kb.Assertion `json:"assertions"`

	EKSConcepts []eks.Concept `json:"eksConcepts"`
	EKSEdges    []edgeDump    `json:"eksEdges"`
	EKSRoot     eks.ConceptID `json:"eksRoot"`

	Mappings    []mappingDump          `json:"mappings"`
	Frequencies core.FrequencySnapshot `json:"frequencies"`
	Shortcuts   int                    `json:"shortcutsAdded"`

	// Materialized and Candidates carry the optional offline accelerations
	// (omitted when the ingestion was built without them, which keeps the
	// encodings of older bundles byte-stable: a v1/v2 bundle without the
	// sections loads exactly as before).
	Materialized *core.MaterializedSnapshot   `json:"materialized,omitempty"`
	Candidates   *core.CandidateIndexSnapshot `json:"candidateIndex,omitempty"`

	// Sources carries the optional secondary named external knowledge
	// sources of a federated ingestion. Omitted for single-source bundles
	// (keeping their encodings byte-stable); bundles that predate the field
	// load as the single source named "primary".
	Sources []sourceDump `json:"sources,omitempty"`
}

type edgeDump struct {
	From     eks.ConceptID `json:"from"`
	To       eks.ConceptID `json:"to"`
	Dist     int           `json:"dist"`
	Shortcut bool          `json:"shortcut,omitempty"`
}

type mappingDump struct {
	Instance kb.InstanceID `json:"instance"`
	Concept  eks.ConceptID `json:"concept"`
}

// sourceDump is the serialized form of one secondary named source: its own
// customized graph, mappings onto the SHARED instance store, and frequency
// table. The store and ontology are not repeated — restore shares the
// primary's.
type sourceDump struct {
	Name        string                 `json:"name"`
	EKSConcepts []eks.Concept          `json:"eksConcepts"`
	EKSEdges    []edgeDump             `json:"eksEdges"`
	EKSRoot     eks.ConceptID          `json:"eksRoot"`
	Mappings    []mappingDump          `json:"mappings"`
	Frequencies core.FrequencySnapshot `json:"frequencies"`
	Shortcuts   int                    `json:"shortcutsAdded"`
}

// dumpEKSGraph serializes a graph into the concept/edge/root triple shared
// by the primary bundle fields and each sourceDump.
func dumpEKSGraph(g *eks.Graph) (concepts []eks.Concept, edges []edgeDump, root eks.ConceptID, err error) {
	root, ok := g.Root()
	if !ok {
		return nil, nil, 0, fmt.Errorf("persist: graph has no root")
	}
	for _, id := range g.ConceptIDs() {
		c, _ := g.Concept(id)
		concepts = append(concepts, c)
		for _, e := range g.UpEdges(id) {
			edges = append(edges, edgeDump{From: e.From, To: e.To, Dist: e.Dist, Shortcut: e.Shortcut})
		}
	}
	return concepts, edges, root, nil
}

// buildSourceDump serializes one mounted secondary source.
func buildSourceDump(src core.NamedSource) (sourceDump, error) {
	d := sourceDump{Name: src.Name, Shortcuts: src.Ing.ShortcutsAdded}
	var err error
	if d.EKSConcepts, d.EKSEdges, d.EKSRoot, err = dumpEKSGraph(src.Ing.Graph); err != nil {
		return d, fmt.Errorf("persist: source %q: %w", src.Name, err)
	}
	iids, cids := src.Ing.MappingPairs()
	for i, iid := range iids {
		d.Mappings = append(d.Mappings, mappingDump{Instance: iid, Concept: cids[i]})
	}
	d.Frequencies = src.Ing.Frequencies.Snapshot()
	return d, nil
}

// buildBundle assembles the serializable form of an ingestion, shared by
// both formats.
func buildBundle(ing *core.Ingestion) (*Bundle, error) {
	b := &Bundle{Version: Version, Shortcuts: ing.ShortcutsAdded}

	for _, name := range ing.Ontology.ConceptNames() {
		c, _ := ing.Ontology.Concept(name)
		b.OntologyConcepts = append(b.OntologyConcepts, c)
	}
	b.OntologyRelationships = ing.Ontology.Relationships()

	b.Instances = ing.Store.AllInstances()
	b.Assertions = ing.Store.AllAssertions()

	var err error
	if b.EKSConcepts, b.EKSEdges, b.EKSRoot, err = dumpEKSGraph(ing.Graph); err != nil {
		return nil, err
	}

	iids, cids := ing.MappingPairs()
	for i, iid := range iids {
		b.Mappings = append(b.Mappings, mappingDump{Instance: iid, Concept: cids[i]})
	}

	b.Frequencies = ing.Frequencies.Snapshot()
	if ing.Materialized != nil {
		b.Materialized = ing.Materialized.Snapshot()
	}
	if ing.Candidates != nil {
		b.Candidates = ing.Candidates.Snapshot()
	}
	for _, src := range ing.Sources {
		sd, err := buildSourceDump(src)
		if err != nil {
			return nil, err
		}
		b.Sources = append(b.Sources, sd)
	}
	return b, nil
}

// Save writes the ingestion as a JSON (v1) bundle, including the crc32
// integrity field Load verifies.
func Save(w io.Writer, ing *core.Ingestion) error {
	b, err := buildBundle(ing)
	if err != nil {
		return err
	}
	// Marshal once with CRC32 zeroed (omitted by omitempty) to fix the
	// canonical bytes the checksum covers, then again with it set.
	canonical, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("persist: encoding bundle: %w", err)
	}
	b.CRC32 = crc32.ChecksumIEEE(canonical)
	enc := json.NewEncoder(w)
	return enc.Encode(b)
}

// verifyJSONChecksum re-derives the canonical encoding of a decoded v1
// bundle and checks it against the stored crc32 field. Decode→encode is
// canonical here because Bundle holds only slices and scalars (no maps),
// so a mismatch means the file's values are not the ones Save wrote.
func verifyJSONChecksum(b *Bundle) error {
	want := b.CRC32
	b.CRC32 = 0
	canonical, err := json.Marshal(b)
	b.CRC32 = want
	if err != nil {
		return fmt.Errorf("persist: re-encoding bundle for checksum: %w", err)
	}
	if got := crc32.ChecksumIEEE(canonical); got != want {
		return corruptf("json v1", "checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	return nil
}

// Load reads a bundle — JSON v1, binary v2/v3, or flat v4, auto-detected
// from the stream's first bytes — and reconstructs the ingestion. The
// returned ingestion is fully usable for the online phase: build a
// Similarity over ing.Frequencies and a Relaxer over it. A bundle that
// exists but cannot be decoded, fails its checksum, or restores to an
// invalid structure yields an error wrapping ErrCorruptBundle.
//
// A flat bundle read through a stream is copied into one aligned heap
// buffer; LoadFile and OpenFlat serve it zero-copy from a memory mapping
// instead.
func Load(r io.Reader) (*core.Ingestion, error) {
	if err := fault.At("persist.read").Inject(); err != nil {
		return nil, fmt.Errorf("persist: reading bundle: %w", err)
	}
	br := bufio.NewReader(r)
	head, err := br.Peek(len(binaryMagic))
	if err != nil && len(head) == 0 {
		if err == io.EOF {
			return nil, corruptf("unknown", "empty bundle")
		}
		return nil, fmt.Errorf("persist: reading bundle: %w", err)
	}
	if bytes.Equal(head, []byte(flatMagic)) {
		raw, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", corruptf("flat v4", "reading stream"), err)
		}
		buf := alignedBytes(len(raw))
		copy(buf, raw)
		return openFlatBytes(buf, &mapRef{size: int64(len(buf))})
	}
	if bytes.Equal(head, []byte(binaryMagic)) {
		b, err := decodeBinary(br)
		if err != nil {
			return nil, err
		}
		ing, err := restore(b)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", corruptf("binary v2", "restore failed"), err)
		}
		return ing, nil
	}
	if len(head) == 0 || (head[0] != '{' && head[0] != ' ' && head[0] != '\t' && head[0] != '\n' && head[0] != '\r') {
		// Neither the binary magic nor the start of a JSON object: the
		// file is not a bundle in any format we know.
		return nil, corruptf("unknown", "no binary magic and no JSON object at byte 0")
	}
	var b Bundle
	dec := json.NewDecoder(br)
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("%w: %v", corruptf("json v1", "decode failed (truncated or malformed)"), err)
	}
	if b.Version != Version {
		return nil, corruptf("json v1", "bundle version %d, want %d", b.Version, Version)
	}
	if err := verifyJSONChecksum(&b); err != nil {
		return nil, err
	}
	ing, err := restore(&b)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", corruptf("json v1", "restore failed"), err)
	}
	return ing, nil
}

// LoadFile loads a bundle from disk — the hot-reload entry point: the
// serving layer points it at the (possibly replaced) bundle path and swaps
// in the result only when both Load and ValidateForServing pass. The
// format is detected from a small header read: flat (v4) bundles are
// routed to OpenFlat and served zero-copy from a memory mapping, the other
// formats stream through Load. Errors carry the path; a corrupt file —
// including one whose header is too short to classify — wraps
// ErrCorruptBundle while a missing file wraps fs.ErrNotExist, so callers
// can react differently.
func LoadFile(path string) (*core.Ingestion, error) {
	if err := fault.At("persist.open").Inject(); err != nil {
		return nil, fmt.Errorf("persist: opening bundle %q: %w", path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: opening bundle: %w", err)
	}
	// Classify from the first bytes, then hand the still-open handle to the
	// right reader: mmap for flat, a rewound stream for the rest.
	head := make([]byte, len(flatMagic))
	n, rerr := io.ReadFull(f, head)
	if rerr != nil && rerr != io.ErrUnexpectedEOF && rerr != io.EOF {
		f.Close()
		return nil, fmt.Errorf("bundle %q: persist: reading bundle header: %w", path, rerr)
	}
	if bytes.Equal(head[:n], []byte(flatMagic)) {
		f.Close()
		return OpenFlat(path)
	}
	if n < len(flatMagic) && !looksLikeJSONStart(head[:n]) {
		// Too short to be any bundle: empty files and sub-magic fragments
		// are corrupt, not unknown formats.
		f.Close()
		return nil, fmt.Errorf("bundle %q: %w", path, corruptf("unknown", "truncated header (%d bytes)", n))
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("bundle %q: persist: rewinding bundle: %w", path, err)
	}
	ing, err := Load(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("persist: closing bundle: %w", cerr)
	}
	if err != nil {
		return nil, fmt.Errorf("bundle %q: %w", path, err)
	}
	return ing, nil
}

// looksLikeJSONStart reports whether the first bytes could open a v1 JSON
// document (an object brace, possibly after whitespace).
func looksLikeJSONStart(head []byte) bool {
	for _, c := range head {
		switch c {
		case ' ', '\t', '\n', '\r':
			continue
		case '{':
			return true
		default:
			return false
		}
	}
	return false
}

// ValidateForServing checks the invariants a bundle must satisfy before a
// live server swaps to it — beyond the structural validation restore
// already does. Load succeeds on any well-formed bundle; this rejects
// well-formed bundles that would serve nothing (a truncated ingestion, a
// world with no query-answerable concepts), so a bad push fails the reload
// instead of silently emptying production answers.
func ValidateForServing(ing *core.Ingestion) error {
	if ing == nil {
		return fmt.Errorf("persist: nil ingestion")
	}
	if ing.Graph == nil || ing.Graph.Len() == 0 {
		return fmt.Errorf("persist: bundle has an empty external knowledge source")
	}
	if _, ok := ing.Graph.Root(); !ok {
		return fmt.Errorf("persist: bundle graph has no root")
	}
	if ing.Store == nil || ing.Store.Len() == 0 {
		return fmt.Errorf("persist: bundle has no KB instances")
	}
	if ing.FlaggedCount() == 0 {
		return fmt.Errorf("persist: bundle has no flagged concepts — nothing is query-answerable")
	}
	if ing.Frequencies == nil {
		return fmt.Errorf("persist: bundle has no frequency table")
	}
	for _, id := range ing.FlaggedIDs() {
		if len(ing.InstancesForConcept(id)) == 0 {
			return fmt.Errorf("persist: flagged concept %d has no mapped instances", id)
		}
	}
	// Mounted secondary sources must each be servable on their own.
	if err := ing.ValidateSources(); err != nil {
		return err
	}
	return nil
}

// restoreOntology rebuilds a domain ontology from its serialized concepts
// and relationships, shared by the bundle decoders of every format.
func restoreOntology(concepts []ontology.Concept, rels []ontology.Relationship) (*ontology.Ontology, error) {
	onto := ontology.New()
	// Concepts must be added parents-first: iterate until fixpoint (the
	// hierarchy is shallow, so two passes usually suffice).
	pending := append([]ontology.Concept{}, concepts...)
	for len(pending) > 0 {
		progressed := false
		var next []ontology.Concept
		for _, c := range pending {
			if c.Parent == "" || onto.HasConcept(c.Parent) {
				if err := onto.AddConcept(c); err != nil {
					return nil, fmt.Errorf("persist: ontology concept %q: %w", c.Name, err)
				}
				progressed = true
			} else {
				next = append(next, c)
			}
		}
		if !progressed {
			return nil, fmt.Errorf("persist: ontology hierarchy has dangling parents (%d concepts unplaced)", len(next))
		}
		pending = next
	}
	for _, rel := range rels {
		if err := onto.AddRelationship(rel); err != nil {
			return nil, fmt.Errorf("persist: relationship %s: %w", rel.Name, err)
		}
	}
	return onto, nil
}

// restore reconstructs and validates an ingestion from a decoded bundle.
func restore(b *Bundle) (*core.Ingestion, error) {
	onto, err := restoreOntology(b.OntologyConcepts, b.OntologyRelationships)
	if err != nil {
		return nil, err
	}

	store := kb.NewStoreSized(onto, len(b.Instances))
	for _, inst := range b.Instances {
		if err := store.AddInstance(inst); err != nil {
			return nil, fmt.Errorf("persist: instance %d: %w", inst.ID, err)
		}
	}
	for _, a := range b.Assertions {
		if err := store.AddAssertion(a); err != nil {
			return nil, fmt.Errorf("persist: assertion %v: %w", a, err)
		}
	}

	g, err := restoreEKSGraph(b.EKSConcepts, b.EKSEdges, b.EKSRoot)
	if err != nil {
		return nil, err
	}

	freqs, err := core.RestoreFrequencyTable(b.Frequencies)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}

	ing := &core.Ingestion{
		Contexts:       onto.Contexts(),
		Mappings:       map[kb.InstanceID]eks.ConceptID{},
		InstancesFor:   map[eks.ConceptID][]kb.InstanceID{},
		Flagged:        map[eks.ConceptID]bool{},
		Frequencies:    freqs,
		Graph:          g,
		Store:          store,
		Ontology:       onto,
		ShortcutsAdded: b.Shortcuts,
	}
	for _, m := range b.Mappings {
		if _, ok := store.Instance(m.Instance); !ok {
			return nil, fmt.Errorf("persist: mapping references unknown instance %d", m.Instance)
		}
		if _, ok := g.Concept(m.Concept); !ok {
			return nil, fmt.Errorf("persist: mapping references unknown concept %d", m.Concept)
		}
		ing.Mappings[m.Instance] = m.Concept
		ing.InstancesFor[m.Concept] = append(ing.InstancesFor[m.Concept], m.Instance)
		ing.Flagged[m.Concept] = true
	}
	if b.Materialized != nil {
		m, err := core.RestoreMaterialized(b.Materialized)
		if err != nil {
			return nil, fmt.Errorf("persist: materialized section: %w", err)
		}
		ing.Materialized = m
	}
	if b.Candidates != nil {
		idx, err := core.RestoreCandidateIndex(b.Candidates)
		if err != nil {
			return nil, fmt.Errorf("persist: candidate index section: %w", err)
		}
		ing.Candidates = idx
	}
	if err := restoreSources(b.Sources, ing); err != nil {
		return nil, err
	}
	return ing, nil
}

// restoreEKSGraph rebuilds a graph from its serialized concept/edge/root
// triple, shared by the primary restore and each secondary source.
func restoreEKSGraph(concepts []eks.Concept, edges []edgeDump, root eks.ConceptID) (*eks.Graph, error) {
	g := eks.NewSized(len(concepts))
	for _, c := range concepts {
		if err := g.AddConcept(c); err != nil {
			return nil, fmt.Errorf("persist: eks concept %d: %w", c.ID, err)
		}
	}
	for _, e := range edges {
		var err error
		if e.Shortcut {
			err = g.AddShortcutEdge(e.From, e.To, e.Dist)
		} else {
			err = g.AddSubsumption(e.From, e.To)
		}
		if err != nil {
			return nil, fmt.Errorf("persist: eks edge %d->%d: %w", e.From, e.To, err)
		}
	}
	if err := g.SetRoot(root); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("persist: restored graph invalid: %w", err)
	}
	return g, nil
}

// restoreSources rebuilds the serialized secondary sources onto an already
// restored primary ingestion: each gets its own graph, mappings and
// frequency table while sharing the primary's store and ontology. A no-op
// on single-source bundles.
func restoreSources(dumps []sourceDump, ing *core.Ingestion) error {
	for _, d := range dumps {
		src, err := restoreSource(d, ing)
		if err != nil {
			return err
		}
		ing.Sources = append(ing.Sources, src)
	}
	return ing.ValidateSources()
}

// restoreSource rebuilds one secondary source over the primary's shared
// store and ontology, validating its mappings against both.
func restoreSource(d sourceDump, primary *core.Ingestion) (core.NamedSource, error) {
	g, err := restoreEKSGraph(d.EKSConcepts, d.EKSEdges, d.EKSRoot)
	if err != nil {
		return core.NamedSource{}, fmt.Errorf("persist: source %q: %w", d.Name, err)
	}
	freqs, err := core.RestoreFrequencyTable(d.Frequencies)
	if err != nil {
		return core.NamedSource{}, fmt.Errorf("persist: source %q: %w", d.Name, err)
	}
	sing := &core.Ingestion{
		Contexts:       primary.Ontology.Contexts(),
		Mappings:       map[kb.InstanceID]eks.ConceptID{},
		InstancesFor:   map[eks.ConceptID][]kb.InstanceID{},
		Flagged:        map[eks.ConceptID]bool{},
		Frequencies:    freqs,
		Graph:          g,
		Store:          primary.Store,
		Ontology:       primary.Ontology,
		ShortcutsAdded: d.Shortcuts,
	}
	for _, m := range d.Mappings {
		if _, ok := primary.Store.Instance(m.Instance); !ok {
			return core.NamedSource{}, fmt.Errorf("persist: source %q mapping references unknown instance %d", d.Name, m.Instance)
		}
		if _, ok := g.Concept(m.Concept); !ok {
			return core.NamedSource{}, fmt.Errorf("persist: source %q mapping references unknown concept %d", d.Name, m.Concept)
		}
		sing.Mappings[m.Instance] = m.Concept
		sing.InstancesFor[m.Concept] = append(sing.InstancesFor[m.Concept], m.Instance)
		sing.Flagged[m.Concept] = true
	}
	return core.NamedSource{Name: d.Name, Ing: sing}, nil
}
