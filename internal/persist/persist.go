// Package persist serializes the output of the offline phase — the domain
// ontology, the instance store, the customized external knowledge source,
// the instance-to-concept mappings, and the per-context frequency table —
// so that Algorithm 1, "an offline process that is executed only once"
// (Section 5.1), really does run only once: production deployments save
// the ingestion after building it and load it at startup.
//
// Two formats coexist:
//
//   - v1 is versioned JSON — human-inspectable, diff-friendly, stable
//     across Go versions; written by Save.
//   - v2 is a compact binary encoding (magic/version header, CRC-32
//     checksum, length-prefixed sections, deduplicated string table,
//     varint ids) — several times smaller and faster to load; written by
//     SaveBinary. See binary.go for the layout.
//
// Load auto-detects the format from the first bytes of the stream. Both
// formats are strictly validated on load (a corrupted or truncated bundle
// fails loudly rather than yielding a half-built system).
package persist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"slices"

	"medrelax/internal/core"
	"medrelax/internal/eks"
	"medrelax/internal/kb"
	"medrelax/internal/ontology"
)

// Version is the JSON bundle format version.
const Version = 1

// VersionBinary is the binary bundle format version.
const VersionBinary = 2

// Bundle is the on-disk form of an ingestion.
type Bundle struct {
	Version int `json:"version"`

	OntologyConcepts      []ontology.Concept      `json:"ontologyConcepts"`
	OntologyRelationships []ontology.Relationship `json:"ontologyRelationships"`

	Instances  []kb.Instance  `json:"instances"`
	Assertions []kb.Assertion `json:"assertions"`

	EKSConcepts []eks.Concept `json:"eksConcepts"`
	EKSEdges    []edgeDump    `json:"eksEdges"`
	EKSRoot     eks.ConceptID `json:"eksRoot"`

	Mappings    []mappingDump          `json:"mappings"`
	Frequencies core.FrequencySnapshot `json:"frequencies"`
	Shortcuts   int                    `json:"shortcutsAdded"`
}

type edgeDump struct {
	From     eks.ConceptID `json:"from"`
	To       eks.ConceptID `json:"to"`
	Dist     int           `json:"dist"`
	Shortcut bool          `json:"shortcut,omitempty"`
}

type mappingDump struct {
	Instance kb.InstanceID `json:"instance"`
	Concept  eks.ConceptID `json:"concept"`
}

// buildBundle assembles the serializable form of an ingestion, shared by
// both formats.
func buildBundle(ing *core.Ingestion) (*Bundle, error) {
	b := &Bundle{Version: Version, Shortcuts: ing.ShortcutsAdded}

	for _, name := range ing.Ontology.ConceptNames() {
		c, _ := ing.Ontology.Concept(name)
		b.OntologyConcepts = append(b.OntologyConcepts, c)
	}
	b.OntologyRelationships = ing.Ontology.Relationships()

	b.Instances = ing.Store.AllInstances()
	b.Assertions = ing.Store.AllAssertions()

	root, ok := ing.Graph.Root()
	if !ok {
		return nil, fmt.Errorf("persist: graph has no root")
	}
	b.EKSRoot = root
	for _, id := range ing.Graph.ConceptIDs() {
		c, _ := ing.Graph.Concept(id)
		b.EKSConcepts = append(b.EKSConcepts, c)
		for _, e := range ing.Graph.UpEdges(id) {
			b.EKSEdges = append(b.EKSEdges, edgeDump{From: e.From, To: e.To, Dist: e.Dist, Shortcut: e.Shortcut})
		}
	}

	var iids []kb.InstanceID
	for iid := range ing.Mappings {
		iids = append(iids, iid)
	}
	slices.Sort(iids)
	for _, iid := range iids {
		b.Mappings = append(b.Mappings, mappingDump{Instance: iid, Concept: ing.Mappings[iid]})
	}

	b.Frequencies = ing.Frequencies.Snapshot()
	return b, nil
}

// Save writes the ingestion as a JSON (v1) bundle.
func Save(w io.Writer, ing *core.Ingestion) error {
	b, err := buildBundle(ing)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	return enc.Encode(b)
}

// Load reads a bundle — JSON v1 or binary v2, auto-detected from the
// stream's first bytes — and reconstructs the ingestion. The returned
// ingestion is fully usable for the online phase: build a Similarity over
// ing.Frequencies and a Relaxer over it.
func Load(r io.Reader) (*core.Ingestion, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(binaryMagic))
	if err != nil && len(head) == 0 {
		return nil, fmt.Errorf("persist: reading bundle: %w", err)
	}
	if bytes.Equal(head, []byte(binaryMagic)) {
		b, err := decodeBinary(br)
		if err != nil {
			return nil, err
		}
		return restore(b)
	}
	var b Bundle
	dec := json.NewDecoder(br)
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("persist: decoding bundle: %w", err)
	}
	if b.Version != Version {
		return nil, fmt.Errorf("persist: bundle version %d, want %d", b.Version, Version)
	}
	return restore(&b)
}

// LoadFile loads a bundle from disk — the hot-reload entry point: the
// serving layer points it at the (possibly replaced) bundle path and swaps
// in the result only when both Load and ValidateForServing pass.
func LoadFile(path string) (*core.Ingestion, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: opening bundle: %w", err)
	}
	ing, err := Load(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("persist: closing bundle: %w", cerr)
	}
	if err != nil {
		return nil, err
	}
	return ing, nil
}

// ValidateForServing checks the invariants a bundle must satisfy before a
// live server swaps to it — beyond the structural validation restore
// already does. Load succeeds on any well-formed bundle; this rejects
// well-formed bundles that would serve nothing (a truncated ingestion, a
// world with no query-answerable concepts), so a bad push fails the reload
// instead of silently emptying production answers.
func ValidateForServing(ing *core.Ingestion) error {
	if ing == nil {
		return fmt.Errorf("persist: nil ingestion")
	}
	if ing.Graph == nil || ing.Graph.Len() == 0 {
		return fmt.Errorf("persist: bundle has an empty external knowledge source")
	}
	if _, ok := ing.Graph.Root(); !ok {
		return fmt.Errorf("persist: bundle graph has no root")
	}
	if ing.Store == nil || ing.Store.Len() == 0 {
		return fmt.Errorf("persist: bundle has no KB instances")
	}
	if len(ing.Flagged) == 0 {
		return fmt.Errorf("persist: bundle has no flagged concepts — nothing is query-answerable")
	}
	if ing.Frequencies == nil {
		return fmt.Errorf("persist: bundle has no frequency table")
	}
	for id := range ing.Flagged {
		if len(ing.InstancesFor[id]) == 0 {
			return fmt.Errorf("persist: flagged concept %d has no mapped instances", id)
		}
	}
	return nil
}

// restore reconstructs and validates an ingestion from a decoded bundle.
func restore(b *Bundle) (*core.Ingestion, error) {
	onto := ontology.New()
	// Concepts must be added parents-first: iterate until fixpoint (the
	// hierarchy is shallow, so two passes usually suffice).
	pending := append([]ontology.Concept{}, b.OntologyConcepts...)
	for len(pending) > 0 {
		progressed := false
		var next []ontology.Concept
		for _, c := range pending {
			if c.Parent == "" || onto.HasConcept(c.Parent) {
				if err := onto.AddConcept(c); err != nil {
					return nil, fmt.Errorf("persist: ontology concept %q: %w", c.Name, err)
				}
				progressed = true
			} else {
				next = append(next, c)
			}
		}
		if !progressed {
			return nil, fmt.Errorf("persist: ontology hierarchy has dangling parents (%d concepts unplaced)", len(next))
		}
		pending = next
	}
	for _, rel := range b.OntologyRelationships {
		if err := onto.AddRelationship(rel); err != nil {
			return nil, fmt.Errorf("persist: relationship %s: %w", rel.Name, err)
		}
	}

	store := kb.NewStoreSized(onto, len(b.Instances))
	for _, inst := range b.Instances {
		if err := store.AddInstance(inst); err != nil {
			return nil, fmt.Errorf("persist: instance %d: %w", inst.ID, err)
		}
	}
	for _, a := range b.Assertions {
		if err := store.AddAssertion(a); err != nil {
			return nil, fmt.Errorf("persist: assertion %v: %w", a, err)
		}
	}

	g := eks.NewSized(len(b.EKSConcepts))
	for _, c := range b.EKSConcepts {
		if err := g.AddConcept(c); err != nil {
			return nil, fmt.Errorf("persist: eks concept %d: %w", c.ID, err)
		}
	}
	for _, e := range b.EKSEdges {
		var err error
		if e.Shortcut {
			err = g.AddShortcutEdge(e.From, e.To, e.Dist)
		} else {
			err = g.AddSubsumption(e.From, e.To)
		}
		if err != nil {
			return nil, fmt.Errorf("persist: eks edge %d->%d: %w", e.From, e.To, err)
		}
	}
	if err := g.SetRoot(b.EKSRoot); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("persist: restored graph invalid: %w", err)
	}

	freqs, err := core.RestoreFrequencyTable(b.Frequencies)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}

	ing := &core.Ingestion{
		Contexts:       onto.Contexts(),
		Mappings:       map[kb.InstanceID]eks.ConceptID{},
		InstancesFor:   map[eks.ConceptID][]kb.InstanceID{},
		Flagged:        map[eks.ConceptID]bool{},
		Frequencies:    freqs,
		Graph:          g,
		Store:          store,
		Ontology:       onto,
		ShortcutsAdded: b.Shortcuts,
	}
	for _, m := range b.Mappings {
		if _, ok := store.Instance(m.Instance); !ok {
			return nil, fmt.Errorf("persist: mapping references unknown instance %d", m.Instance)
		}
		if _, ok := g.Concept(m.Concept); !ok {
			return nil, fmt.Errorf("persist: mapping references unknown concept %d", m.Concept)
		}
		ing.Mappings[m.Instance] = m.Concept
		ing.InstancesFor[m.Concept] = append(ing.InstancesFor[m.Concept], m.Instance)
		ing.Flagged[m.Concept] = true
	}
	return ing, nil
}
