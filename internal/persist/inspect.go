package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
)

// SectionInfo describes one section of an inspected bundle: its numeric
// kind, human-readable name, placement, and whether its stored checksum
// matches the payload.
type SectionInfo struct {
	Kind   uint32
	Name   string
	Offset uint64
	Length uint64
	CRCOK  bool
}

// BundleInfo is the result of InspectFile: enough to answer "what is this
// file and can I trust it" without restoring the ingestion. CRCOK is the
// whole-bundle verdict (every checksum the format carries); Sections lists
// the per-section breakdown where the format has sections (v4; v2/v3 report
// their single payload, v1 its single document).
type BundleInfo struct {
	Format    string // "json v1", "binary v2", "binary v3", "flat v4"
	Version   int
	SizeBytes int64
	CRCOK     bool
	Sections  []SectionInfo
	// Sources names the secondary sources a federated bundle carries, in
	// mount order; empty for classic single-source bundles.
	Sources []string
}

// flatSectionName renders a v4 section kind for humans; unknown kinds (from
// a future writer) print as kind/<n>.
func flatSectionName(kind uint32) string {
	names := map[uint32]string{
		secMeta: "meta", secStrOff: "strOffsets", secStr: "strBlob",
		secGraphIDs: "graphIDs", secGraphNames: "graphNames",
		secGraphSynOff: "graphSynOffsets", secGraphSyns: "graphSynonyms",
		secGraphUpOff: "graphUpOffsets", secGraphUpTo: "graphUpTargets",
		secGraphUpDist: "graphUpDistances", secGraphUpNEnd: "graphUpNativeEnds",
		secGraphDownOff: "graphDownOffsets", secGraphDownTo: "graphDownTargets",
		secGraphDownDist: "graphDownDistances", secGraphDownNEnd: "graphDownNativeEnds",
		secGraphNameKeys: "graphNameKeys", secGraphKeyOff: "graphKeyOffsets",
		secGraphKeyIDs:  "graphKeyIDs",
		secOntoConcepts: "ontologyConcepts", secOntoRels: "ontologyRelationships",
		secStoreIDs: "storeIDs", secStoreConcepts: "storeConcepts",
		secStoreNames: "storeNames", secStoreLexKeys: "storeLexiconKeys",
		secStoreLexOff: "storeLexiconOffsets", secStoreLexIDs: "storeLexiconIDs",
		secStoreConKeys: "storeConceptKeys", secStoreConOff: "storeConceptOffsets",
		secStoreConIDs: "storeConceptIDs", secStoreRelNames: "storeRelNames",
		secStoreASub: "storeAssertSubjects", secStoreARel: "storeAssertRels",
		secStoreAObj: "storeAssertObjects", secStorePerm: "storeAssertPerm",
		secMapInst: "mappingInstances", secMapCon: "mappingConcepts",
		secMapFlag: "flaggedConcepts", secMapIOff: "mappingInstOffsets",
		secMapIPool:   "mappingInstPool",
		secFreqLabels: "freqLabels", secFreqOff: "freqOffsets",
		secFreqIDs: "freqIDs", secFreqVals: "freqValues",
		secFreqAggIDs: "freqAggIDs", secFreqAggVals: "freqAggValues",
		secMatCon: "matConcepts", secMatCtx: "matContexts", secMatFlags: "matFlags",
		secMatCntOff: "matCountOffsets", secMatCnt: "matCounts",
		secMatCandOff: "matCandOffsets", secMatCands: "matCandidates",
		secCidxCon: "cidxConcepts", secCidxOff: "cidxOffsets",
		secCidxPosts: "cidxPostings", secCidxLCS: "cidxLCSPool",
		secSources: "sources",
	}
	if n, ok := names[kind]; ok {
		return n
	}
	return fmt.Sprintf("kind/%d", kind)
}

// InspectFile reads a bundle of any format and reports its structure and
// checksum status without building an ingestion. Unlike Load, a checksum
// mismatch is NOT an error here — it is the finding (CRCOK false, and per
// section for v4), so operators can inspect a suspect file. Only a file
// whose format cannot be identified at all fails.
func InspectFile(path string) (*BundleInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("persist: reading bundle: %w", err)
	}
	info := &BundleInfo{SizeBytes: int64(len(data))}
	switch {
	case bytes.HasPrefix(data, []byte(flatMagic)):
		return inspectFlat(data, info)
	case bytes.HasPrefix(data, []byte(binaryMagic)):
		return inspectBinary(data, info)
	case looksLikeJSONStart(data):
		return inspectJSON(data, info)
	}
	return nil, corruptf("unknown", "no recognizable bundle header")
}

func inspectJSON(data []byte, info *BundleInfo) (*BundleInfo, error) {
	info.Format = "json v1"
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		// Undecodable JSON: identified as v1 by shape, but nothing inside it
		// can be trusted or reported.
		info.CRCOK = false
		return info, nil
	}
	info.Version = b.Version
	info.CRCOK = verifyJSONChecksum(&b) == nil
	info.Sections = []SectionInfo{{Name: "document", Length: uint64(len(data)), CRCOK: info.CRCOK}}
	for _, s := range b.Sources {
		info.Sources = append(info.Sources, s.Name)
	}
	return info, nil
}

func inspectBinary(data []byte, info *BundleInfo) (*BundleInfo, error) {
	headerLen := len(binaryMagic) + 1 + 4
	if len(data) < headerLen+1 {
		info.Format = "binary v2"
		info.CRCOK = false
		return info, nil
	}
	version := data[len(binaryMagic)]
	info.Version = int(version)
	info.Format = fmt.Sprintf("binary v%d", version)
	wantCRC := binary.LittleEndian.Uint32(data[len(binaryMagic)+1:])
	length, n := binary.Uvarint(data[headerLen:])
	if n <= 0 || uint64(len(data)-headerLen-n) < length {
		info.CRCOK = false
		return info, nil
	}
	payload := data[headerLen+n : headerLen+n+int(length)]
	info.CRCOK = crc32.ChecksumIEEE(payload) == wantCRC
	info.Sections = []SectionInfo{{
		Name: "payload", Offset: uint64(headerLen + n), Length: length, CRCOK: info.CRCOK,
	}}
	return info, nil
}

func inspectFlat(data []byte, info *BundleInfo) (*BundleInfo, error) {
	info.Format = "flat v4"
	if len(data) < flatHeaderSize {
		info.CRCOK = false
		return info, nil
	}
	info.Version = int(binary.LittleEndian.Uint32(data[4:]))
	nSec := binary.LittleEndian.Uint32(data[8:])
	dirCRC := binary.LittleEndian.Uint32(data[12:])
	dirOff := binary.LittleEndian.Uint64(data[16:])
	fileSize := binary.LittleEndian.Uint64(data[24:])
	dirLen := uint64(nSec) * flatDirEntrySize
	if fileSize != uint64(len(data)) || nSec == 0 || nSec > flatMaxSections ||
		dirOff < flatHeaderSize || dirOff > uint64(len(data)) || dirLen > uint64(len(data))-dirOff {
		info.CRCOK = false
		return info, nil
	}
	dir := data[dirOff : dirOff+dirLen]
	ok := sectionCRC(dir) == dirCRC
	for i := uint64(0); i < uint64(nSec); i++ {
		e := dir[i*flatDirEntrySize:]
		s := SectionInfo{
			Kind:   binary.LittleEndian.Uint32(e[0:]),
			Offset: binary.LittleEndian.Uint64(e[8:]),
			Length: binary.LittleEndian.Uint64(e[16:]),
		}
		s.Name = flatSectionName(s.Kind)
		crc := binary.LittleEndian.Uint32(e[24:])
		if s.Offset <= uint64(len(data)) && s.Length <= uint64(len(data))-s.Offset {
			payload := data[s.Offset : s.Offset+s.Length]
			s.CRCOK = sectionCRC(payload) == crc
			if s.Kind == secSources && s.CRCOK {
				var dumps []sourceDump
				if json.Unmarshal(payload, &dumps) == nil {
					for _, d := range dumps {
						info.Sources = append(info.Sources, d.Name)
					}
				}
			}
		}
		ok = ok && s.CRCOK
		info.Sections = append(info.Sections, s)
	}
	info.CRCOK = ok
	return info, nil
}
