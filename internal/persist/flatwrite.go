package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"medrelax/internal/core"
	"medrelax/internal/eks"
	"medrelax/internal/kb"
)

// flatWriter accumulates sections and interns strings for a v4 bundle.
type flatWriter struct {
	sections []flatSection
	strs     []string
	strIdx   map[string]uint32
	strBytes int
}

type flatSection struct {
	kind    uint32
	payload []byte
}

func newFlatWriter() *flatWriter {
	return &flatWriter{strIdx: make(map[string]uint32)}
}

func (w *flatWriter) ref(s string) uint32 {
	if i, ok := w.strIdx[s]; ok {
		return i
	}
	i := uint32(len(w.strs))
	w.strs = append(w.strs, s)
	w.strIdx[s] = i
	w.strBytes += len(s)
	return i
}

func (w *flatWriter) add(kind uint32, payload []byte) {
	w.sections = append(w.sections, flatSection{kind: kind, payload: payload})
}

// Column encoders: everything is little-endian regardless of host, so the
// writer produces identical bytes on any platform.

func leConceptIDs(xs []eks.ConceptID) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(x))
	}
	return b
}

func leInstanceIDs(xs []kb.InstanceID) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(x))
	}
	return b
}

func leInt32s(xs []int32) []byte {
	b := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(x))
	}
	return b
}

func leUint32s(xs []uint32) []byte {
	b := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(b[4*i:], x)
	}
	return b
}

func leFloat64s(xs []float64) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

// leRefs interns every string and encodes the reference column.
func (w *flatWriter) leRefs(ss []string) []byte {
	refs := make([]uint32, len(ss))
	for i, s := range ss {
		refs[i] = w.ref(s)
	}
	return leUint32s(refs)
}

func leMatCands(xs []core.MatCand) []byte {
	b := make([]byte, 24*len(xs))
	for i := range xs {
		r := b[24*i:]
		binary.LittleEndian.PutUint64(r[0:], uint64(xs[i].Concept))
		binary.LittleEndian.PutUint64(r[8:], math.Float64bits(xs[i].Score))
		binary.LittleEndian.PutUint32(r[16:], uint32(xs[i].Hops))
		binary.LittleEndian.PutUint32(r[20:], 0)
	}
	return b
}

func lePostings(xs []core.Posting) []byte {
	b := make([]byte, 32*len(xs))
	for i := range xs {
		r := b[32*i:]
		binary.LittleEndian.PutUint64(r[0:], uint64(xs[i].Concept))
		binary.LittleEndian.PutUint32(r[8:], uint32(xs[i].Hops))
		binary.LittleEndian.PutUint32(r[12:], uint32(xs[i].Gen))
		binary.LittleEndian.PutUint32(r[16:], uint32(xs[i].Spec))
		binary.LittleEndian.PutUint32(r[20:], uint32(xs[i].LCSLo))
		binary.LittleEndian.PutUint32(r[24:], uint32(xs[i].LCSHi))
		binary.LittleEndian.PutUint32(r[28:], 0)
	}
	return b
}

// SaveFlat writes the ingestion as a flat (v4) bundle: the zero-copy format
// OpenFlat serves directly from a memory mapping. The output is
// deterministic — identical ingestions produce identical bytes.
func SaveFlat(w io.Writer, ing *core.Ingestion) error {
	buf, err := encodeFlat(ing)
	if err != nil {
		return err
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("persist: writing flat bundle: %w", err)
	}
	return nil
}

func encodeFlat(ing *core.Ingestion) ([]byte, error) {
	fw := newFlatWriter()
	meta := flatMeta{shortcuts: int64(ing.ShortcutsAdded)}

	if err := flatGraphSections(fw, &meta, ing.Graph); err != nil {
		return nil, err
	}
	flatOntologySections(fw, ing)
	flatStoreSections(fw, ing.Store)
	flatMappingSections(fw, ing)
	flatFrequencySections(fw, &meta, ing.Frequencies)
	if ing.Materialized != nil {
		meta.flags |= metaHasMaterialized
		flatMaterializedSections(fw, &meta, ing.Materialized)
	}
	if ing.Candidates != nil {
		meta.flags |= metaHasCandidates
		flatCandidateSections(fw, &meta, ing.Candidates)
	}
	if len(ing.Sources) > 0 {
		meta.flags |= metaHasSources
		if err := flatSourceSection(fw, ing); err != nil {
			return nil, err
		}
	}

	// The string table is complete only now; emit it with META and sort the
	// sections into ascending kind order for a canonical file.
	strOff := make([]uint32, len(fw.strs)+1)
	blob := make([]byte, 0, fw.strBytes)
	for i, s := range fw.strs {
		strOff[i] = uint32(len(blob))
		blob = append(blob, s...)
	}
	strOff[len(fw.strs)] = uint32(len(blob))
	fw.add(secStrOff, leUint32s(strOff))
	fw.add(secStr, blob)
	fw.add(secMeta, meta.encode())
	sort.Slice(fw.sections, func(i, j int) bool { return fw.sections[i].kind < fw.sections[j].kind })

	return assembleFlat(fw.sections), nil
}

// assembleFlat lays out header, 8-aligned sections, and the directory.
func assembleFlat(sections []flatSection) []byte {
	align := func(n int) int { return (n + 7) &^ 7 }
	size := flatHeaderSize
	for _, s := range sections {
		size = align(size) + len(s.payload)
	}
	dirOff := align(size)
	total := dirOff + flatDirEntrySize*len(sections)

	out := make([]byte, total)
	copy(out, flatMagic)
	binary.LittleEndian.PutUint32(out[4:], VersionFlat)
	binary.LittleEndian.PutUint32(out[8:], uint32(len(sections)))
	binary.LittleEndian.PutUint64(out[16:], uint64(dirOff))
	binary.LittleEndian.PutUint64(out[24:], uint64(total))

	pos := flatHeaderSize
	for i, s := range sections {
		pos = align(pos)
		copy(out[pos:], s.payload)
		e := out[dirOff+flatDirEntrySize*i:]
		binary.LittleEndian.PutUint32(e[0:], s.kind)
		binary.LittleEndian.PutUint64(e[8:], uint64(pos))
		binary.LittleEndian.PutUint64(e[16:], uint64(len(s.payload)))
		binary.LittleEndian.PutUint32(e[24:], sectionCRC(s.payload))
		pos += len(s.payload)
	}
	dirCRC := sectionCRC(out[dirOff : dirOff+flatDirEntrySize*len(sections)])
	binary.LittleEndian.PutUint32(out[12:], dirCRC)
	return out
}

// flatGraphSections lays the graph out in the dense-index CSR form: per
// node, native edges first (insertion order preserved), then shortcuts,
// with the absolute boundary recorded per node.
func flatGraphSections(fw *flatWriter, meta *flatMeta, g *eks.Graph) error {
	root, ok := g.Root()
	if !ok {
		return fmt.Errorf("persist: graph has no root")
	}
	meta.eksRoot = root

	ids := g.ConceptIDs()
	n := len(ids)
	idx := make(map[eks.ConceptID]int32, n)
	for i, id := range ids {
		idx[id] = int32(i)
	}

	names := make([]string, n)
	synOff := make([]int32, n+1)
	var syns []string
	upOff := make([]int32, n+1)
	downOff := make([]int32, n+1)
	var upTo, upDist, upNEnd, downTo, downDist, downNEnd []int32
	upNEnd = make([]int32, n)
	downNEnd = make([]int32, n)

	fill := func(edges []eks.Edge, to, dist []int32, other func(eks.Edge) eks.ConceptID) ([]int32, []int32, int32) {
		for _, e := range edges {
			if !e.Shortcut {
				to = append(to, idx[other(e)])
				dist = append(dist, int32(e.Dist))
			}
		}
		nativeEnd := int32(len(to))
		for _, e := range edges {
			if e.Shortcut {
				to = append(to, idx[other(e)])
				dist = append(dist, int32(e.Dist))
			}
		}
		return to, dist, nativeEnd
	}
	for i, id := range ids {
		c, _ := g.Concept(id)
		names[i] = c.Name
		syns = append(syns, c.Synonyms...)
		synOff[i+1] = int32(len(syns))
		upTo, upDist, upNEnd[i] = fill(g.UpEdges(id), upTo, upDist, func(e eks.Edge) eks.ConceptID { return e.To })
		upOff[i+1] = int32(len(upTo))
		downTo, downDist, downNEnd[i] = fill(g.DownEdges(id), downTo, downDist, func(e eks.Edge) eks.ConceptID { return e.From })
		downOff[i+1] = int32(len(downTo))
	}

	keys := g.NameKeys()
	sort.Strings(keys)
	keyOff := make([]int32, len(keys)+1)
	var keyIDs []eks.ConceptID
	for i, k := range keys {
		keyIDs = append(keyIDs, g.IDsForNameKey(k)...)
		keyOff[i+1] = int32(len(keyIDs))
	}

	fw.add(secGraphIDs, leConceptIDs(ids))
	fw.add(secGraphNames, fw.leRefs(names))
	fw.add(secGraphSynOff, leInt32s(synOff))
	fw.add(secGraphSyns, fw.leRefs(syns))
	fw.add(secGraphUpOff, leInt32s(upOff))
	fw.add(secGraphUpTo, leInt32s(upTo))
	fw.add(secGraphUpDist, leInt32s(upDist))
	fw.add(secGraphUpNEnd, leInt32s(upNEnd))
	fw.add(secGraphDownOff, leInt32s(downOff))
	fw.add(secGraphDownTo, leInt32s(downTo))
	fw.add(secGraphDownDist, leInt32s(downDist))
	fw.add(secGraphDownNEnd, leInt32s(downNEnd))
	fw.add(secGraphNameKeys, fw.leRefs(keys))
	fw.add(secGraphKeyOff, leInt32s(keyOff))
	fw.add(secGraphKeyIDs, leConceptIDs(keyIDs))
	return nil
}

func flatOntologySections(fw *flatWriter, ing *core.Ingestion) {
	o := ing.Ontology
	var conRefs []string
	for _, name := range o.ConceptNames() {
		c, _ := o.Concept(name)
		conRefs = append(conRefs, c.Name, c.Parent)
	}
	var relRefs []string
	for _, r := range o.Relationships() {
		relRefs = append(relRefs, r.Name, r.Domain, r.Range)
	}
	fw.add(secOntoConcepts, fw.leRefs(conRefs))
	fw.add(secOntoRels, fw.leRefs(relRefs))
}

func flatStoreSections(fw *flatWriter, store *kb.Store) {
	insts := store.AllInstances()
	ids := make([]kb.InstanceID, len(insts))
	concepts := make([]string, len(insts))
	names := make([]string, len(insts))
	for i, inst := range insts {
		ids[i] = inst.ID
		concepts[i] = inst.Concept
		names[i] = inst.Name
	}

	lexKeys := store.LexiconKeys()
	sort.Strings(lexKeys)
	lexOff := make([]int32, len(lexKeys)+1)
	var lexIDs []kb.InstanceID
	for i, k := range lexKeys {
		lexIDs = append(lexIDs, store.IDsForLexiconKey(k)...)
		lexOff[i+1] = int32(len(lexIDs))
	}

	conKeys := make([]string, 0)
	seenCon := map[string]bool{}
	for _, c := range concepts {
		if !seenCon[c] {
			seenCon[c] = true
			conKeys = append(conKeys, c)
		}
	}
	sort.Strings(conKeys)
	conOff := make([]int32, len(conKeys)+1)
	var conIDs []kb.InstanceID
	for i, k := range conKeys {
		conIDs = append(conIDs, store.InstancesOf(k)...)
		conOff[i+1] = int32(len(conIDs))
	}

	asserts := store.AllAssertions()
	relSeen := map[string]bool{}
	var relNames []string
	for _, a := range asserts {
		if !relSeen[a.Relationship] {
			relSeen[a.Relationship] = true
			relNames = append(relNames, a.Relationship)
		}
	}
	sort.Strings(relNames)
	relIdx := make(map[string]int32, len(relNames))
	for i, r := range relNames {
		relIdx[r] = int32(i)
	}
	aSub := make([]kb.InstanceID, len(asserts))
	aRel := make([]int32, len(asserts))
	aObj := make([]kb.InstanceID, len(asserts))
	for i, a := range asserts {
		aSub[i], aRel[i], aObj[i] = a.Subject, relIdx[a.Relationship], a.Object
	}
	perm := make([]int32, len(asserts))
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(x, y int) bool {
		i, j := perm[x], perm[y]
		if aObj[i] != aObj[j] {
			return aObj[i] < aObj[j]
		}
		ri, rj := relNames[aRel[i]], relNames[aRel[j]]
		if ri != rj {
			return ri < rj
		}
		return aSub[i] < aSub[j]
	})

	fw.add(secStoreIDs, leInstanceIDs(ids))
	fw.add(secStoreConcepts, fw.leRefs(concepts))
	fw.add(secStoreNames, fw.leRefs(names))
	fw.add(secStoreLexKeys, fw.leRefs(lexKeys))
	fw.add(secStoreLexOff, leInt32s(lexOff))
	fw.add(secStoreLexIDs, leInstanceIDs(lexIDs))
	fw.add(secStoreConKeys, fw.leRefs(conKeys))
	fw.add(secStoreConOff, leInt32s(conOff))
	fw.add(secStoreConIDs, leInstanceIDs(conIDs))
	fw.add(secStoreRelNames, fw.leRefs(relNames))
	fw.add(secStoreASub, leInstanceIDs(aSub))
	fw.add(secStoreARel, leInt32s(aRel))
	fw.add(secStoreAObj, leInstanceIDs(aObj))
	fw.add(secStorePerm, leInt32s(perm))
}

func flatMappingSections(fw *flatWriter, ing *core.Ingestion) {
	inst, con := ing.MappingPairs()
	flagged := ing.FlaggedIDs()
	iOff := make([]int32, len(flagged)+1)
	var iPool []kb.InstanceID
	for i, cid := range flagged {
		iPool = append(iPool, ing.InstancesForConcept(cid)...)
		iOff[i+1] = int32(len(iPool))
	}
	fw.add(secMapInst, leInstanceIDs(inst))
	fw.add(secMapCon, leConceptIDs(con))
	fw.add(secMapFlag, leConceptIDs(flagged))
	fw.add(secMapIOff, leInt32s(iOff))
	fw.add(secMapIPool, leInstanceIDs(iPool))
}

// flatFrequencySections emits the per-label spans plus the precomputed
// aggregate. The aggregate is accumulated in the exact order
// core.RestoreFrequencyTable uses (labels ascending, ids ascending within
// each label), so the stored float sums are bit-identical to the ones a
// heap restore would compute.
func flatFrequencySections(fw *flatWriter, meta *flatMeta, ft *core.FrequencyTable) {
	snap := ft.Snapshot()
	meta.freqRoot = snap.Root
	meta.freqSmooth = snap.Smooth

	labels := make([]string, len(snap.Labels))
	off := make([]int32, len(snap.Labels)+1)
	var ids []eks.ConceptID
	var vals []float64
	agg := make(map[eks.ConceptID]float64)
	for li, ls := range snap.Labels {
		labels[li] = ls.Label
		ids = append(ids, ls.IDs...)
		vals = append(vals, ls.Values...)
		off[li+1] = int32(len(ids))
		for i, id := range ls.IDs {
			agg[id] += ls.Values[i]
		}
	}
	aggIDs := make([]eks.ConceptID, 0, len(agg))
	for id := range agg {
		aggIDs = append(aggIDs, id)
	}
	sort.Slice(aggIDs, func(i, j int) bool { return aggIDs[i] < aggIDs[j] })
	aggVals := make([]float64, len(aggIDs))
	for i, id := range aggIDs {
		aggVals[i] = agg[id]
	}

	fw.add(secFreqLabels, fw.leRefs(labels))
	fw.add(secFreqOff, leInt32s(off))
	fw.add(secFreqIDs, leConceptIDs(ids))
	fw.add(secFreqVals, leFloat64s(vals))
	fw.add(secFreqAggIDs, leConceptIDs(aggIDs))
	fw.add(secFreqAggVals, leFloat64s(aggVals))
}

func flatMaterializedSections(fw *flatWriter, meta *flatMeta, m *core.Materialized) {
	snap := m.Snapshot()
	meta.matRadius = uint32(snap.Relax.Radius)
	meta.matMax = uint32(snap.Relax.MaxRadius)
	if snap.Relax.DynamicRadius {
		meta.matBits |= matBitDynamicRadius
	}
	if snap.Relax.IncludeSelf {
		meta.matBits |= matBitIncludeSelf
	}

	n := len(snap.Entries)
	concepts := make([]eks.ConceptID, n)
	ctxs := make([]string, n)
	flags := make([]int32, n)
	cntOff := make([]int32, n+1)
	var counts []int32
	candOff := make([]int32, n+1)
	var cands []core.MatCand
	for i, e := range snap.Entries {
		concepts[i] = e.Concept
		ctxs[i] = e.Ctx
		if e.Complete {
			flags[i] = 1
		}
		counts = append(counts, e.Counts...)
		cntOff[i+1] = int32(len(counts))
		for _, c := range e.Cands {
			cands = append(cands, core.MatCand{Concept: c.Concept, Score: c.Score, Hops: int32(c.Hops)})
		}
		candOff[i+1] = int32(len(cands))
	}

	fw.add(secMatCon, leConceptIDs(concepts))
	fw.add(secMatCtx, fw.leRefs(ctxs))
	fw.add(secMatFlags, leInt32s(flags))
	fw.add(secMatCntOff, leInt32s(cntOff))
	fw.add(secMatCnt, leInt32s(counts))
	fw.add(secMatCandOff, leInt32s(candOff))
	fw.add(secMatCands, leMatCands(cands))
}

// flatSourceSection emits the secondary named sources as one JSON-encoded
// section (see secSources). Deterministic: sources serialize in mount order
// and json.Marshal over the slice-and-scalar sourceDump is canonical.
func flatSourceSection(fw *flatWriter, ing *core.Ingestion) error {
	dumps := make([]sourceDump, 0, len(ing.Sources))
	for _, src := range ing.Sources {
		d, err := buildSourceDump(src)
		if err != nil {
			return err
		}
		dumps = append(dumps, d)
	}
	payload, err := json.Marshal(dumps)
	if err != nil {
		return fmt.Errorf("persist: encoding source section: %w", err)
	}
	fw.add(secSources, payload)
	return nil
}

func flatCandidateSections(fw *flatWriter, meta *flatMeta, x *core.CandidateIndex) {
	snap := x.Snapshot()
	meta.cidxRadius = uint32(snap.Radius)
	meta.cidxSkipped = int64(x.Skipped())

	n := len(snap.Lists)
	concepts := make([]eks.ConceptID, n)
	off := make([]int32, n+1)
	var posts []core.Posting
	var lcs []eks.ConceptID
	for i, ls := range snap.Lists {
		concepts[i] = ls.Concept
		for _, ps := range ls.Postings {
			p := core.Posting{
				Concept: ps.Concept,
				Hops:    int32(ps.Hops),
				Gen:     int32(ps.Gen),
				Spec:    int32(ps.Spec),
			}
			if len(ps.LCS) > 0 {
				p.LCSLo = int32(len(lcs))
				lcs = append(lcs, ps.LCS...)
				p.LCSHi = int32(len(lcs))
			}
			posts = append(posts, p)
		}
		off[i+1] = int32(len(posts))
	}

	fw.add(secCidxCon, leConceptIDs(concepts))
	fw.add(secCidxOff, leInt32s(off))
	fw.add(secCidxPosts, lePostings(posts))
	fw.add(secCidxLCS, leConceptIDs(lcs))
}
