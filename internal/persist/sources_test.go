package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"medrelax/internal/core"
	"medrelax/internal/match"
	"medrelax/internal/medkb"
	"medrelax/internal/synthkb"
)

// decodeBundleForTest / reencodeBundleForTest open a saved v1 document for
// deliberate mutation and re-stamp its checksum, so only restore-time
// validation can catch the damage.
func decodeBundleForTest(raw []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, err
	}
	return &b, nil
}

func reencodeBundleForTest(t *testing.T, b *Bundle) []byte {
	t.Helper()
	b.CRC32 = 0
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	b.CRC32 = crc32.ChecksumIEEE(raw)
	raw, err = json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// buildFederatedIngestion produces an ingestion with a mounted secondary
// source: the variant vocabulary derived from the same small world
// buildIngestion uses, ingested over the same KB. testing.TB so the fuzz
// harness can share it.
func buildFederatedIngestion(t testing.TB) *core.Ingestion {
	t.Helper()
	world, err := synthkb.Generate(synthkb.Config{Seed: 31, ConditionsPerPair: 2})
	if err != nil {
		t.Fatal(err)
	}
	med, err := medkb.Generate(world, medkb.Config{Seed: 32, Drugs: 25})
	if err != nil {
		t.Fatal(err)
	}
	corp := medkb.BuildCorpus(world, med, medkb.CorpusConfig{Seed: 33})
	ing, err := core.Ingest(med.Ontology, med.Store, world.Graph, corp, exactMapper{world.Graph}, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vg, err := synthkb.GenerateVariant(world)
	if err != nil {
		t.Fatal(err)
	}
	vmapper := match.NewCombined(match.NewExact(vg), match.NewEdit(vg, 0))
	ving, err := core.Ingest(med.Ontology, med.Store, vg, corp, vmapper, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ving.FlaggedCount() == 0 {
		t.Fatal("variant ingestion flagged nothing; the federated fixture cannot answer")
	}
	ing.Sources = []core.NamedSource{{Name: "variant", Ing: ving}}
	return ing
}

// assertSourcesRestored checks the secondary came back whole.
func assertSourcesRestored(t *testing.T, want, got *core.Ingestion) {
	t.Helper()
	if len(got.Sources) != len(want.Sources) {
		t.Fatalf("restored %d sources, want %d", len(got.Sources), len(want.Sources))
	}
	for i, src := range want.Sources {
		r := got.Sources[i]
		if r.Name != src.Name {
			t.Errorf("source %d name %q, want %q", i, r.Name, src.Name)
		}
		if r.Ing.Graph.Len() != src.Ing.Graph.Len() || r.Ing.Graph.EdgeCount() != src.Ing.Graph.EdgeCount() {
			t.Errorf("source %q graph: %d/%d vs %d/%d", src.Name,
				r.Ing.Graph.Len(), r.Ing.Graph.EdgeCount(), src.Ing.Graph.Len(), src.Ing.Graph.EdgeCount())
		}
		if r.Ing.MappingCount() != src.Ing.MappingCount() || r.Ing.FlaggedCount() != src.Ing.FlaggedCount() {
			t.Errorf("source %q mappings/flags differ", src.Name)
		}
		if r.Ing.ShortcutsAdded != src.Ing.ShortcutsAdded {
			t.Errorf("source %q shortcutsAdded: %d vs %d", src.Name, r.Ing.ShortcutsAdded, src.Ing.ShortcutsAdded)
		}
		// The secondary shares the primary's store rather than carrying a copy.
		if r.Ing.Store != got.Store {
			t.Errorf("source %q does not share the primary's store", src.Name)
		}
	}
	if err := ValidateForServing(got); err != nil {
		t.Errorf("ValidateForServing on a federated bundle: %v", err)
	}
}

func TestJSONSourcesRoundTrip(t *testing.T) {
	ing := buildFederatedIngestion(t)
	var buf bytes.Buffer
	if err := Save(&buf, ing); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertSourcesRestored(t, ing, restored)

	// Determinism with sources present.
	var again bytes.Buffer
	if err := Save(&again, ing); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("federated JSON serialization is not byte-deterministic")
	}
}

// A classic single-source bundle must not mention the sources field at all —
// v1 bytes written by this version stay identical to earlier versions.
func TestJSONSingleSourceOmitsSourcesField(t *testing.T) {
	ing := buildIngestion(t)
	var buf bytes.Buffer
	if err := Save(&buf, ing); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"sources"`)) {
		t.Error("single-source v1 bundle serializes a sources field")
	}
}

// The fixed binary formats predate federation; saving a multi-source
// ingestion through them must refuse rather than silently drop the
// secondary.
func TestBinaryRefusesSources(t *testing.T) {
	ing := buildFederatedIngestion(t)
	var buf bytes.Buffer
	err := SaveBinary(&buf, ing)
	if err == nil {
		t.Fatal("SaveBinary accepted a multi-source ingestion")
	}
	if buf.Len() != 0 {
		t.Error("refused save still wrote bytes")
	}
}

func TestFlatSourcesRoundTrip(t *testing.T) {
	ing := buildFederatedIngestion(t)
	restored, err := OpenFlat(writeFlatFile(t, ing))
	if err != nil {
		t.Fatal(err)
	}
	assertSourcesRestored(t, ing, restored)
	assertSameRelaxations(t, ing, restored)

	// Re-save of a restored federated bundle is byte-stable.
	if !bytes.Equal(saveFlatBytes(t, ing), saveFlatBytes(t, restored)) {
		t.Error("flat re-save of a federated bundle is not byte-stable")
	}
}

// A single-source flat bundle carries neither the sources section nor the
// meta flag.
func TestFlatSingleSourceOmitsSourcesSection(t *testing.T) {
	ing := buildIngestion(t)
	data := saveFlatBytes(t, ing)
	if _, _, ok := findFlatSection(data, secSources); ok {
		t.Error("single-source flat bundle carries a sources section")
	}
	restored, err := OpenFlat(writeFlatFile(t, ing))
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.Sources) != 0 {
		t.Errorf("single-source flat bundle restored %d phantom sources", len(restored.Sources))
	}
}

// findFlatSection locates a section's offset and length in a flat image.
func findFlatSection(d []byte, kind uint32) (off, length uint64, ok bool) {
	nSec := int(binary.LittleEndian.Uint32(d[8:]))
	dirOff := binary.LittleEndian.Uint64(d[16:])
	for i := 0; i < nSec; i++ {
		e := d[dirOff+uint64(i)*flatDirEntrySize:]
		if binary.LittleEndian.Uint32(e) == kind {
			return binary.LittleEndian.Uint64(e[8:]), binary.LittleEndian.Uint64(e[16:]), true
		}
	}
	return 0, 0, false
}

// restampMeta rewrites the meta section's CRC (in the directory) and the
// directory CRC after a deliberate meta mutation, so only semantic
// validation can catch it.
func restampMeta(d []byte) {
	nSec := int(binary.LittleEndian.Uint32(d[8:]))
	dirOff := binary.LittleEndian.Uint64(d[16:])
	for i := 0; i < nSec; i++ {
		e := d[dirOff+uint64(i)*flatDirEntrySize:]
		if binary.LittleEndian.Uint32(e) == secMeta {
			so := binary.LittleEndian.Uint64(e[8:])
			sl := binary.LittleEndian.Uint64(e[16:])
			patchDirEntry(d, i, 24, func(f []byte) {
				binary.LittleEndian.PutUint32(f, sectionCRC(d[so:so+sl]))
			})
		}
	}
}

// TestFlatSourcesCorruption extends the corruption table to the federated
// section: every tear, flip, and flag/section inconsistency must surface as
// ErrCorruptBundle, never as a silently single-source world.
func TestFlatSourcesCorruption(t *testing.T) {
	ing := buildFederatedIngestion(t)
	pristine := saveFlatBytes(t, ing)
	if _, _, ok := findFlatSection(pristine, secSources); !ok {
		t.Fatal("federated flat bundle lacks a sources section")
	}

	metaFlagsOff := func(d []byte) uint64 {
		off, _, ok := findFlatSection(d, secMeta)
		if !ok {
			t.Fatal("no meta section")
		}
		return off + 32
	}

	cases := []struct {
		name   string
		mutate func(d []byte) []byte
	}{
		{"sources payload bit flip", func(d []byte) []byte {
			off, length, _ := findFlatSection(d, secSources)
			d[off+length/2] ^= 0x20
			return d
		}},
		{"sources payload first byte flip", func(d []byte) []byte {
			off, _, _ := findFlatSection(d, secSources)
			d[off] ^= 0xFF
			return d
		}},
		{"sources section truncated via directory", func(d []byte) []byte {
			nSec := int(binary.LittleEndian.Uint32(d[8:]))
			dirOff := binary.LittleEndian.Uint64(d[16:])
			for i := 0; i < nSec; i++ {
				e := d[dirOff+uint64(i)*flatDirEntrySize:]
				if binary.LittleEndian.Uint32(e) == secSources {
					patchDirEntry(d, i, 16, func(f []byte) {
						l := binary.LittleEndian.Uint64(f)
						binary.LittleEndian.PutUint64(f, l/2)
					})
				}
			}
			return d
		}},
		{"sources section present but flag cleared", func(d []byte) []byte {
			off := metaFlagsOff(d)
			flags := binary.LittleEndian.Uint32(d[off:])
			binary.LittleEndian.PutUint32(d[off:], flags&^metaHasSources)
			restampMeta(d)
			return d
		}},
		{"flag set but sources section missing", func(d []byte) []byte {
			nSec := int(binary.LittleEndian.Uint32(d[8:]))
			dirOff := binary.LittleEndian.Uint64(d[16:])
			for i := 0; i < nSec; i++ {
				e := d[dirOff+uint64(i)*flatDirEntrySize:]
				if binary.LittleEndian.Uint32(e) == secSources {
					patchDirEntry(d, i, 0, func(f []byte) {
						binary.LittleEndian.PutUint32(f, 9999)
					})
				}
			}
			return d
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), pristine...))
			buf := alignedBytes(len(data))
			copy(buf, data)
			_, err := openFlatBytes(buf, &mapRef{size: int64(len(buf))})
			if err == nil {
				t.Fatal("corrupted federated bundle opened without error")
			}
			if !errors.Is(err, ErrCorruptBundle) {
				t.Errorf("corruption error is not ErrCorruptBundle: %v", err)
			}
		})
	}
}

// Restore-time source validation: a decodable bundle whose source payload is
// semantically broken (dangling mapping, duplicate name, the reserved
// primary name) must be rejected.
func TestJSONSourcesValidation(t *testing.T) {
	ing := buildFederatedIngestion(t)

	mutate := func(t *testing.T, f func(*Bundle)) error {
		t.Helper()
		var buf bytes.Buffer
		if err := Save(&buf, ing); err != nil {
			t.Fatal(err)
		}
		b, err := decodeBundleForTest(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		f(b)
		raw := reencodeBundleForTest(t, b)
		_, err = Load(bytes.NewReader(raw))
		return err
	}

	cases := []struct {
		name string
		f    func(*Bundle)
	}{
		{"empty source name", func(b *Bundle) { b.Sources[0].Name = "" }},
		{"reserved primary name", func(b *Bundle) { b.Sources[0].Name = core.PrimarySourceName }},
		{"duplicate source names", func(b *Bundle) { b.Sources = append(b.Sources, b.Sources[0]) }},
		{"dangling source mapping", func(b *Bundle) { b.Sources[0].Mappings[0].Concept = 1 << 40 }},
		{"source root outside graph", func(b *Bundle) { b.Sources[0].EKSRoot = 1 << 40 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := mutate(t, tc.f)
			if err == nil {
				t.Fatal("broken source payload loaded without error")
			}
			if !errors.Is(err, ErrCorruptBundle) {
				t.Errorf("error is not ErrCorruptBundle: %v", err)
			}
		})
	}
}

func TestInspectFileFormats(t *testing.T) {
	ing := buildIngestion(t)
	fed := buildFederatedIngestion(t)
	dir := t.TempDir()

	write := func(name string, save func(*bytes.Buffer) error) string {
		t.Helper()
		var buf bytes.Buffer
		if err := save(&buf); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	jsonPath := write("b.json", func(b *bytes.Buffer) error { return Save(b, fed) })
	binPath := write("b.bin", func(b *bytes.Buffer) error { return SaveBinary(b, ing) })
	flatPath := write("b.flat", func(b *bytes.Buffer) error { return SaveFlat(b, fed) })

	cases := []struct {
		path        string
		format      string
		version     int
		minSections int
		sources     []string
	}{
		{jsonPath, "json v1", 1, 1, []string{"variant"}},
		{binPath, "binary v2", 2, 1, nil},
		{flatPath, "flat v4", 4, 10, []string{"variant"}},
	}
	for _, tc := range cases {
		info, err := InspectFile(tc.path)
		if err != nil {
			t.Fatalf("InspectFile(%s): %v", tc.path, err)
		}
		if info.Format != tc.format || info.Version != tc.version {
			t.Errorf("%s: format %q v%d, want %q v%d", tc.path, info.Format, info.Version, tc.format, tc.version)
		}
		if !info.CRCOK {
			t.Errorf("%s: pristine bundle reports failed checksums", tc.path)
		}
		if len(info.Sections) < tc.minSections {
			t.Errorf("%s: %d sections, want at least %d", tc.path, len(info.Sections), tc.minSections)
		}
		for _, s := range info.Sections {
			if !s.CRCOK {
				t.Errorf("%s: section %s reports a failed checksum on a pristine bundle", tc.path, s.Name)
			}
		}
		if len(info.Sources) != len(tc.sources) {
			t.Errorf("%s: sources %v, want %v", tc.path, info.Sources, tc.sources)
		} else {
			for i := range tc.sources {
				if info.Sources[i] != tc.sources[i] {
					t.Errorf("%s: sources %v, want %v", tc.path, info.Sources, tc.sources)
				}
			}
		}
	}
}

// Inspection treats corruption as the finding, not an error — a bit-flipped
// bundle still inspects, with CRCOK false (and the damaged section
// identified for v4).
func TestInspectFileCorruptionIsAFinding(t *testing.T) {
	fed := buildFederatedIngestion(t)
	data := saveFlatBytes(t, fed)
	off, length, ok := findFlatSection(data, secSources)
	if !ok {
		t.Fatal("no sources section")
	}
	data[off+length/2] ^= 0x01
	path := filepath.Join(t.TempDir(), "damaged.flat")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := InspectFile(path)
	if err != nil {
		t.Fatalf("InspectFile on a damaged bundle must still report: %v", err)
	}
	if info.CRCOK {
		t.Error("damaged bundle reports checksums ok")
	}
	damaged := 0
	for _, s := range info.Sections {
		if !s.CRCOK {
			damaged++
			if s.Kind != secSources {
				t.Errorf("damage attributed to section %s, want sources", s.Name)
			}
		}
	}
	if damaged != 1 {
		t.Errorf("%d sections report damage, want exactly 1", damaged)
	}
}

func TestInspectFileUnknownFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "noise")
	if err := os.WriteFile(path, []byte("\x00\x01\x02 not a bundle"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := InspectFile(path); err == nil {
		t.Fatal("unidentifiable file inspected without error")
	}
	if _, err := InspectFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file inspected without error")
	}
}
