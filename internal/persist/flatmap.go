package persist

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
)

// mapRef is the core.SnapshotBacking for a flat bundle: it reports how the
// bytes are resident and, for real memory mappings, owns the mapping's
// lifetime. The Ingestion holds the mapRef; the mapping is released either
// explicitly via Close (a drained snapshot being retired — replica
// restarts must not wait on GC timing) or by the finalizer backstop once
// the Ingestion and every view into the mapping are unreachable.
type mapRef struct {
	size   int64
	mapped bool

	mu   sync.Mutex
	data []byte // the live mapping; nil for heap-backed refs and after release
}

// Mapped implements core.SnapshotBacking.
func (h *mapRef) Mapped() bool { return h.mapped }

// SizeBytes implements core.SnapshotBacking.
func (h *mapRef) SizeBytes() int64 { return h.size }

// Close unmaps the bundle now instead of at GC time. Idempotent. The
// caller owns the safety argument: every view into the mapping must be
// drained first — reading a flat snapshot after Close faults.
func (h *mapRef) Close() error {
	h.release()
	// The finalizer only exists to unmap; once that's done, keeping it
	// would just delay reclamation of the ref itself.
	runtime.SetFinalizer(h, nil)
	return nil
}

// release unmaps the bundle. Called by Close, the finalizer, or eagerly
// when opening fails after the map succeeded.
func (h *mapRef) release() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.mapped && h.data != nil {
		_ = munmapBytes(h.data)
		h.data = nil
	}
}

// mapBundle opens path for zero-copy reading: a read-only memory mapping
// where the platform provides one, otherwise one aligned heap buffer
// holding the whole file. Either way the returned bytes are 8-byte aligned
// and immutable, and the mapRef describes their residency.
func mapBundle(path string) ([]byte, *mapRef, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("bundle of %d bytes exceeds the address space", size)
	}
	if size > 0 {
		if data, err := mmapFile(f, int(size)); err == nil {
			h := &mapRef{size: size, mapped: true, data: data}
			runtime.SetFinalizer(h, (*mapRef).release)
			return data, h, nil
		}
		// Mapping unavailable (platform or filesystem): fall through to the
		// read-file path, which serves the same bytes from the heap.
	}
	buf := alignedBytes(int(size))
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, nil, err
	}
	return buf, &mapRef{size: size}, nil
}
