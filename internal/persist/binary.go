package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"medrelax/internal/core"
	"medrelax/internal/eks"
	"medrelax/internal/kb"
	"medrelax/internal/ontology"
)

// Binary bundle (v2) layout. Everything after the fixed header is a single
// length-prefixed payload protected by a CRC-32 checksum:
//
//	magic   "MRXB"                      4 bytes
//	version 2                           1 byte
//	crc32   IEEE(payload)               4 bytes, little-endian
//	length  uvarint(len(payload))
//	payload
//
// The payload opens with a deduplicated string table (uvarint count, then
// per string uvarint length + raw bytes); every string elsewhere is a
// uvarint index into it. Sections follow in fixed order — ontology
// concepts, ontology relationships, KB instances, KB assertions, EKS
// concepts, EKS edges, EKS root, mappings, frequency table, shortcut count
// — each a uvarint element count followed by its elements. Identifier
// sequences sorted ascending (instance IDs, concept IDs, edge sources,
// frequency IDs) are delta-encoded as uvarints with two's-complement
// wraparound, so they stay one or two bytes each regardless of the
// SCTID-style magnitude of the raw IDs; isolated IDs use signed varints.
// Floats are IEEE-754 bits, little-endian. Decoding validates the
// checksum, the declared length, every string reference, and that the
// payload is consumed exactly — a truncated, corrupted or trailing-garbage
// bundle fails loudly.

// binaryMagic marks a v2 bundle. Load sniffs it to pick the decoder.
const binaryMagic = "MRXB"

// SaveBinary writes the ingestion as a binary (v2) bundle.
func SaveBinary(w io.Writer, ing *core.Ingestion) error {
	b, err := buildBundle(ing)
	if err != nil {
		return err
	}
	payload := encodeBinary(b)
	head := make([]byte, 0, len(binaryMagic)+1+4+binary.MaxVarintLen64)
	head = append(head, binaryMagic...)
	head = append(head, VersionBinary)
	head = binary.LittleEndian.AppendUint32(head, crc32.ChecksumIEEE(payload))
	head = binary.AppendUvarint(head, uint64(len(payload)))
	if _, err := w.Write(head); err != nil {
		return fmt.Errorf("persist: writing binary header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("persist: writing binary payload: %w", err)
	}
	return nil
}

// binWriter accumulates the payload and interns strings.
type binWriter struct {
	body    []byte
	strings []string
	index   map[string]uint64
}

func (w *binWriter) ref(s string) uint64 {
	if i, ok := w.index[s]; ok {
		return i
	}
	i := uint64(len(w.strings))
	w.strings = append(w.strings, s)
	w.index[s] = i
	return i
}

func (w *binWriter) uvarint(v uint64) { w.body = binary.AppendUvarint(w.body, v) }
func (w *binWriter) varint(v int64)   { w.body = binary.AppendVarint(w.body, v) }
func (w *binWriter) str(s string)     { w.uvarint(w.ref(s)) }
func (w *binWriter) float64(v float64) {
	w.body = binary.LittleEndian.AppendUint64(w.body, math.Float64bits(v))
}

// delta emits cur relative to *prev as a wraparound uvarint and advances
// *prev. Ascending sequences cost one or two bytes per element.
func (w *binWriter) delta(cur int64, prev *int64) {
	w.uvarint(uint64(cur - *prev))
	*prev = cur
}

func encodeBinary(b *Bundle) []byte {
	w := &binWriter{index: map[string]uint64{}}

	w.uvarint(uint64(len(b.OntologyConcepts)))
	for _, c := range b.OntologyConcepts {
		w.str(c.Name)
		w.str(c.Parent)
	}
	w.uvarint(uint64(len(b.OntologyRelationships)))
	for _, r := range b.OntologyRelationships {
		w.str(r.Name)
		w.str(r.Domain)
		w.str(r.Range)
	}
	w.uvarint(uint64(len(b.Instances)))
	prev := int64(0)
	for _, inst := range b.Instances {
		w.delta(int64(inst.ID), &prev)
		w.str(inst.Concept)
		w.str(inst.Name)
	}
	w.uvarint(uint64(len(b.Assertions)))
	prev = 0
	for _, a := range b.Assertions {
		w.delta(int64(a.Subject), &prev)
		w.str(a.Relationship)
		w.varint(int64(a.Object))
	}
	w.uvarint(uint64(len(b.EKSConcepts)))
	prev = 0
	for _, c := range b.EKSConcepts {
		w.delta(int64(c.ID), &prev)
		w.str(c.Name)
		w.uvarint(uint64(len(c.Synonyms)))
		for _, s := range c.Synonyms {
			w.str(s)
		}
	}
	w.uvarint(uint64(len(b.EKSEdges)))
	prev = 0
	for _, e := range b.EKSEdges {
		w.delta(int64(e.From), &prev)
		w.varint(int64(e.To))
		bit := uint64(0)
		if e.Shortcut {
			bit = 1
		}
		w.uvarint(uint64(e.Dist)<<1 | bit)
	}
	w.varint(int64(b.EKSRoot))
	w.uvarint(uint64(len(b.Mappings)))
	prev = 0
	for _, m := range b.Mappings {
		w.delta(int64(m.Instance), &prev)
		w.varint(int64(m.Concept))
	}
	w.uvarint(uint64(len(b.Frequencies.Labels)))
	for _, ls := range b.Frequencies.Labels {
		w.str(ls.Label)
		w.uvarint(uint64(len(ls.IDs)))
		prev = 0
		for _, id := range ls.IDs {
			w.delta(int64(id), &prev)
		}
		for _, v := range ls.Values {
			w.float64(v)
		}
	}
	w.varint(int64(b.Frequencies.Root))
	w.float64(b.Frequencies.Smooth)
	w.uvarint(uint64(b.Shortcuts))

	// The string table heads the payload so the decoder resolves references
	// in one pass.
	table := binary.AppendUvarint(nil, uint64(len(w.strings)))
	for _, s := range w.strings {
		table = binary.AppendUvarint(table, uint64(len(s)))
		table = append(table, s...)
	}
	return append(table, w.body...)
}

// binReader walks the payload with strict bounds checks; the first error
// sticks and poisons every later read, so decode logic stays linear.
type binReader struct {
	buf     []byte
	off     int
	strings []string
	err     error
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = corruptf("binary v2", format, args...)
	}
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// count reads an element count and sanity-bounds it against the smallest
// possible per-element footprint, so a corrupted length cannot drive a
// huge allocation.
func (r *binReader) count(minBytesPer int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if minBytesPer < 1 {
		minBytesPer = 1
	}
	if v > uint64(len(r.buf)-r.off)/uint64(minBytesPer)+1 {
		r.fail("implausible element count %d at offset %d", v, r.off)
		return 0
	}
	return int(v)
}

func (r *binReader) str() string {
	i := r.uvarint()
	if r.err != nil {
		return ""
	}
	if i >= uint64(len(r.strings)) {
		r.fail("string reference %d out of range (table has %d)", i, len(r.strings))
		return ""
	}
	return r.strings[i]
}

func (r *binReader) float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail("truncated float at offset %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

func (r *binReader) delta(prev *int64) int64 {
	*prev += int64(r.uvarint())
	return *prev
}

// decodeBinary reads a v2 stream (positioned at the magic) into a Bundle.
func decodeBinary(rd io.Reader) (*Bundle, error) {
	br := bufio.NewReader(rd)
	head := make([]byte, len(binaryMagic)+1+4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", corruptf("binary v2", "truncated header"), err)
	}
	if string(head[:len(binaryMagic)]) != binaryMagic {
		return nil, corruptf("binary v2", "bad magic")
	}
	if v := head[len(binaryMagic)]; v != VersionBinary {
		return nil, corruptf("binary v2", "bundle version %d, want %d", v, VersionBinary)
	}
	wantCRC := binary.LittleEndian.Uint32(head[len(binaryMagic)+1:])
	length, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", corruptf("binary v2", "reading payload length"), err)
	}
	const maxPayload = 1 << 32 // 4 GiB: far above any real bundle, stops absurd allocations
	if length > maxPayload {
		return nil, corruptf("binary v2", "implausible payload length %d", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("%w: %v", corruptf("binary v2", "truncated payload (want %d bytes)", length), err)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, corruptf("binary v2", "checksum mismatch (stored %08x, computed %08x)", wantCRC, got)
	}

	r := &binReader{buf: payload}
	nStr := r.count(1)
	r.strings = make([]string, 0, nStr)
	for i := 0; i < nStr && r.err == nil; i++ {
		n := r.uvarint()
		if r.err != nil {
			break
		}
		if uint64(len(r.buf)-r.off) < n {
			r.fail("truncated string %d (want %d bytes)", i, n)
			break
		}
		r.strings = append(r.strings, string(r.buf[r.off:r.off+int(n)]))
		r.off += int(n)
	}

	b := &Bundle{Version: Version}
	n := r.count(2)
	for i := 0; i < n && r.err == nil; i++ {
		b.OntologyConcepts = append(b.OntologyConcepts, ontology.Concept{Name: r.str(), Parent: r.str()})
	}
	n = r.count(3)
	for i := 0; i < n && r.err == nil; i++ {
		b.OntologyRelationships = append(b.OntologyRelationships, ontology.Relationship{Name: r.str(), Domain: r.str(), Range: r.str()})
	}
	n = r.count(3)
	prev := int64(0)
	for i := 0; i < n && r.err == nil; i++ {
		id := kb.InstanceID(r.delta(&prev))
		b.Instances = append(b.Instances, kb.Instance{ID: id, Concept: r.str(), Name: r.str()})
	}
	n = r.count(3)
	prev = 0
	for i := 0; i < n && r.err == nil; i++ {
		sub := kb.InstanceID(r.delta(&prev))
		rel := r.str()
		obj := kb.InstanceID(r.varint())
		b.Assertions = append(b.Assertions, kb.Assertion{Subject: sub, Relationship: rel, Object: obj})
	}
	n = r.count(3)
	prev = 0
	for i := 0; i < n && r.err == nil; i++ {
		c := eks.Concept{ID: eks.ConceptID(r.delta(&prev)), Name: r.str()}
		syn := r.count(1)
		for j := 0; j < syn && r.err == nil; j++ {
			c.Synonyms = append(c.Synonyms, r.str())
		}
		b.EKSConcepts = append(b.EKSConcepts, c)
	}
	n = r.count(3)
	prev = 0
	for i := 0; i < n && r.err == nil; i++ {
		from := eks.ConceptID(r.delta(&prev))
		to := eks.ConceptID(r.varint())
		packed := r.uvarint()
		b.EKSEdges = append(b.EKSEdges, edgeDump{From: from, To: to, Dist: int(packed >> 1), Shortcut: packed&1 == 1})
	}
	b.EKSRoot = eks.ConceptID(r.varint())
	n = r.count(2)
	prev = 0
	for i := 0; i < n && r.err == nil; i++ {
		inst := kb.InstanceID(r.delta(&prev))
		b.Mappings = append(b.Mappings, mappingDump{Instance: inst, Concept: eks.ConceptID(r.varint())})
	}
	n = r.count(2)
	for i := 0; i < n && r.err == nil; i++ {
		ls := core.FrequencyLabelSnapshot{Label: r.str()}
		m := r.count(9) // one delta byte + 8 float bytes per entry, minimum
		prev = 0
		for j := 0; j < m && r.err == nil; j++ {
			ls.IDs = append(ls.IDs, eks.ConceptID(r.delta(&prev)))
		}
		for j := 0; j < m && r.err == nil; j++ {
			ls.Values = append(ls.Values, r.float64())
		}
		b.Frequencies.Labels = append(b.Frequencies.Labels, ls)
	}
	b.Frequencies.Root = eks.ConceptID(r.varint())
	b.Frequencies.Smooth = r.float64()
	b.Shortcuts = int(r.uvarint())

	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.buf) {
		return nil, corruptf("binary v2", "%d trailing bytes after sections", len(r.buf)-r.off)
	}
	return b, nil
}
