package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"medrelax/internal/core"
	"medrelax/internal/eks"
	"medrelax/internal/kb"
	"medrelax/internal/ontology"
)

// Binary bundle (v2/v3) layout. Everything after the fixed header is a
// single length-prefixed payload protected by a CRC-32 checksum:
//
//	magic   "MRXB"                      4 bytes
//	version 2 or 3                      1 byte
//	crc32   IEEE(payload)               4 bytes, little-endian
//	length  uvarint(len(payload))
//	payload
//
// The payload opens with a deduplicated string table (uvarint count, then
// per string uvarint length + raw bytes); every string elsewhere is a
// uvarint index into it. Sections follow in fixed order — ontology
// concepts, ontology relationships, KB instances, KB assertions, EKS
// concepts, EKS edges, EKS root, mappings, frequency table, shortcut count
// — each a uvarint element count followed by its elements. Identifier
// sequences sorted ascending (instance IDs, concept IDs, edge sources,
// frequency IDs) are delta-encoded as uvarints with two's-complement
// wraparound, so they stay one or two bytes each regardless of the
// SCTID-style magnitude of the raw IDs; isolated IDs use signed varints.
// Floats are IEEE-754 bits, little-endian. Decoding validates the
// checksum, the declared length, every string reference, and that the
// payload is consumed exactly — a truncated, corrupted or trailing-garbage
// bundle fails loudly.
//
// Version 3 appends two presence-flagged sections after the shortcut
// count — the materialized top-k store and the posting-list candidate
// index (see core.MaterializedSnapshot / core.CandidateIndexSnapshot).
// SaveBinary only emits version 3 when at least one section is present,
// so acceleration-free bundles stay byte-identical to v2 and older
// readers keep loading them; the decoder accepts both versions.

// binaryMagic marks a binary bundle. Load sniffs it to pick the decoder.
const binaryMagic = "MRXB"

// versionBinaryAccel is the binary version carrying the optional offline
// acceleration sections.
const versionBinaryAccel = 3

// SaveBinary writes the ingestion as a binary bundle — version 2, or
// version 3 when the ingestion carries offline accelerations. Multi-source
// ingestions are refused: the binary layout has no source sections, so
// silently dropping the secondaries would save a bundle that loads as a
// different (smaller) world. Use Save (v1) or SaveFlat (v4) instead.
func SaveBinary(w io.Writer, ing *core.Ingestion) error {
	if len(ing.Sources) > 0 {
		return fmt.Errorf("persist: binary (v2/v3) bundles cannot carry secondary sources (%d mounted); save as JSON v1 or flat v4", len(ing.Sources))
	}
	b, err := buildBundle(ing)
	if err != nil {
		return err
	}
	if _, err := w.Write(encodeBinaryStream(b)); err != nil {
		return fmt.Errorf("persist: writing binary bundle: %w", err)
	}
	return nil
}

// encodeBinaryStream frames the payload with the version-aware header:
// version 3 only when an acceleration section is present, so
// acceleration-free bundles remain readable by pre-v3 code.
func encodeBinaryStream(b *Bundle) []byte {
	version := byte(VersionBinary)
	if b.Materialized != nil || b.Candidates != nil {
		version = versionBinaryAccel
	}
	payload := encodeBinary(b)
	out := make([]byte, 0, len(binaryMagic)+1+4+binary.MaxVarintLen64+len(payload))
	out = append(out, binaryMagic...)
	out = append(out, version)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	out = binary.AppendUvarint(out, uint64(len(payload)))
	return append(out, payload...)
}

// binWriter accumulates the payload and interns strings.
type binWriter struct {
	body    []byte
	strings []string
	index   map[string]uint64
}

func (w *binWriter) ref(s string) uint64 {
	if i, ok := w.index[s]; ok {
		return i
	}
	i := uint64(len(w.strings))
	w.strings = append(w.strings, s)
	w.index[s] = i
	return i
}

func (w *binWriter) uvarint(v uint64) { w.body = binary.AppendUvarint(w.body, v) }
func (w *binWriter) varint(v int64)   { w.body = binary.AppendVarint(w.body, v) }
func (w *binWriter) str(s string)     { w.uvarint(w.ref(s)) }
func (w *binWriter) float64(v float64) {
	w.body = binary.LittleEndian.AppendUint64(w.body, math.Float64bits(v))
}

// delta emits cur relative to *prev as a wraparound uvarint and advances
// *prev. Ascending sequences cost one or two bytes per element.
func (w *binWriter) delta(cur int64, prev *int64) {
	w.uvarint(uint64(cur - *prev))
	*prev = cur
}

func encodeBinary(b *Bundle) []byte {
	w := &binWriter{index: map[string]uint64{}}

	w.uvarint(uint64(len(b.OntologyConcepts)))
	for _, c := range b.OntologyConcepts {
		w.str(c.Name)
		w.str(c.Parent)
	}
	w.uvarint(uint64(len(b.OntologyRelationships)))
	for _, r := range b.OntologyRelationships {
		w.str(r.Name)
		w.str(r.Domain)
		w.str(r.Range)
	}
	w.uvarint(uint64(len(b.Instances)))
	prev := int64(0)
	for _, inst := range b.Instances {
		w.delta(int64(inst.ID), &prev)
		w.str(inst.Concept)
		w.str(inst.Name)
	}
	w.uvarint(uint64(len(b.Assertions)))
	prev = 0
	for _, a := range b.Assertions {
		w.delta(int64(a.Subject), &prev)
		w.str(a.Relationship)
		w.varint(int64(a.Object))
	}
	w.uvarint(uint64(len(b.EKSConcepts)))
	prev = 0
	for _, c := range b.EKSConcepts {
		w.delta(int64(c.ID), &prev)
		w.str(c.Name)
		w.uvarint(uint64(len(c.Synonyms)))
		for _, s := range c.Synonyms {
			w.str(s)
		}
	}
	w.uvarint(uint64(len(b.EKSEdges)))
	prev = 0
	for _, e := range b.EKSEdges {
		w.delta(int64(e.From), &prev)
		w.varint(int64(e.To))
		bit := uint64(0)
		if e.Shortcut {
			bit = 1
		}
		w.uvarint(uint64(e.Dist)<<1 | bit)
	}
	w.varint(int64(b.EKSRoot))
	w.uvarint(uint64(len(b.Mappings)))
	prev = 0
	for _, m := range b.Mappings {
		w.delta(int64(m.Instance), &prev)
		w.varint(int64(m.Concept))
	}
	w.uvarint(uint64(len(b.Frequencies.Labels)))
	for _, ls := range b.Frequencies.Labels {
		w.str(ls.Label)
		w.uvarint(uint64(len(ls.IDs)))
		prev = 0
		for _, id := range ls.IDs {
			w.delta(int64(id), &prev)
		}
		for _, v := range ls.Values {
			w.float64(v)
		}
	}
	w.varint(int64(b.Frequencies.Root))
	w.float64(b.Frequencies.Smooth)
	w.uvarint(uint64(b.Shortcuts))

	// v3 acceleration sections, each behind a presence flag. Omitted
	// entirely when neither is present, keeping the v2 byte stream intact.
	if b.Materialized != nil || b.Candidates != nil {
		if m := b.Materialized; m != nil {
			w.uvarint(1)
			w.uvarint(uint64(m.Relax.Radius))
			w.uvarint(uint64(m.Relax.MaxRadius))
			bits := uint64(0)
			if m.Relax.DynamicRadius {
				bits |= 1
			}
			if m.Relax.IncludeSelf {
				bits |= 2
			}
			w.uvarint(bits)
			w.uvarint(uint64(len(m.Entries)))
			prevConcept := int64(0)
			for _, e := range m.Entries {
				// Entries are sorted by (concept, ctx): concepts are
				// non-decreasing, so the delta stays tiny.
				w.delta(int64(e.Concept), &prevConcept)
				w.str(e.Ctx)
				complete := uint64(0)
				if e.Complete {
					complete = 1
				}
				w.uvarint(complete)
				w.uvarint(uint64(len(e.Counts)))
				for _, c := range e.Counts {
					w.uvarint(uint64(c))
				}
				w.uvarint(uint64(len(e.Cands)))
				for _, c := range e.Cands {
					w.varint(int64(c.Concept))
					w.float64(c.Score)
					w.uvarint(uint64(c.Hops))
				}
			}
		} else {
			w.uvarint(0)
		}
		if x := b.Candidates; x != nil {
			w.uvarint(1)
			w.uvarint(uint64(x.Radius))
			w.uvarint(uint64(len(x.Lists)))
			prevConcept := int64(0)
			for _, ls := range x.Lists {
				w.delta(int64(ls.Concept), &prevConcept)
				w.uvarint(uint64(len(ls.Postings)))
				for _, p := range ls.Postings {
					w.varint(int64(p.Concept))
					w.uvarint(uint64(p.Hops))
					w.uvarint(uint64(p.Gen))
					w.uvarint(uint64(p.Spec))
					w.uvarint(uint64(len(p.LCS)))
					prevLCS := int64(0)
					for _, id := range p.LCS {
						w.delta(int64(id), &prevLCS)
					}
				}
			}
		} else {
			w.uvarint(0)
		}
	}

	// The string table heads the payload so the decoder resolves references
	// in one pass.
	table := binary.AppendUvarint(nil, uint64(len(w.strings)))
	for _, s := range w.strings {
		table = binary.AppendUvarint(table, uint64(len(s)))
		table = append(table, s...)
	}
	return append(table, w.body...)
}

// binReader walks the payload with strict bounds checks; the first error
// sticks and poisons every later read, so decode logic stays linear.
type binReader struct {
	buf     []byte
	off     int
	strings []string
	err     error
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = corruptf("binary v2", format, args...)
	}
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// count reads an element count and sanity-bounds it against the smallest
// possible per-element footprint, so a corrupted length cannot drive a
// huge allocation.
func (r *binReader) count(minBytesPer int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if minBytesPer < 1 {
		minBytesPer = 1
	}
	if v > uint64(len(r.buf)-r.off)/uint64(minBytesPer)+1 {
		r.fail("implausible element count %d at offset %d", v, r.off)
		return 0
	}
	return int(v)
}

func (r *binReader) str() string {
	i := r.uvarint()
	if r.err != nil {
		return ""
	}
	if i >= uint64(len(r.strings)) {
		r.fail("string reference %d out of range (table has %d)", i, len(r.strings))
		return ""
	}
	return r.strings[i]
}

func (r *binReader) float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail("truncated float at offset %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

func (r *binReader) delta(prev *int64) int64 {
	*prev += int64(r.uvarint())
	return *prev
}

// decodeBinary reads a v2 stream (positioned at the magic) into a Bundle.
func decodeBinary(rd io.Reader) (*Bundle, error) {
	br := bufio.NewReader(rd)
	head := make([]byte, len(binaryMagic)+1+4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", corruptf("binary v2", "truncated header"), err)
	}
	if string(head[:len(binaryMagic)]) != binaryMagic {
		return nil, corruptf("binary v2", "bad magic")
	}
	version := head[len(binaryMagic)]
	if version != VersionBinary && version != versionBinaryAccel {
		return nil, corruptf("binary v2", "bundle version %d, want %d or %d", version, VersionBinary, versionBinaryAccel)
	}
	wantCRC := binary.LittleEndian.Uint32(head[len(binaryMagic)+1:])
	length, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", corruptf("binary v2", "reading payload length"), err)
	}
	const maxPayload = 1 << 32 // 4 GiB: far above any real bundle, stops absurd allocations
	if length > maxPayload {
		return nil, corruptf("binary v2", "implausible payload length %d", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("%w: %v", corruptf("binary v2", "truncated payload (want %d bytes)", length), err)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, corruptf("binary v2", "checksum mismatch (stored %08x, computed %08x)", wantCRC, got)
	}

	r := &binReader{buf: payload}
	nStr := r.count(1)
	r.strings = make([]string, 0, nStr)
	for i := 0; i < nStr && r.err == nil; i++ {
		n := r.uvarint()
		if r.err != nil {
			break
		}
		if uint64(len(r.buf)-r.off) < n {
			r.fail("truncated string %d (want %d bytes)", i, n)
			break
		}
		r.strings = append(r.strings, string(r.buf[r.off:r.off+int(n)]))
		r.off += int(n)
	}

	b := &Bundle{Version: Version}
	n := r.count(2)
	for i := 0; i < n && r.err == nil; i++ {
		b.OntologyConcepts = append(b.OntologyConcepts, ontology.Concept{Name: r.str(), Parent: r.str()})
	}
	n = r.count(3)
	for i := 0; i < n && r.err == nil; i++ {
		b.OntologyRelationships = append(b.OntologyRelationships, ontology.Relationship{Name: r.str(), Domain: r.str(), Range: r.str()})
	}
	n = r.count(3)
	prev := int64(0)
	for i := 0; i < n && r.err == nil; i++ {
		id := kb.InstanceID(r.delta(&prev))
		b.Instances = append(b.Instances, kb.Instance{ID: id, Concept: r.str(), Name: r.str()})
	}
	n = r.count(3)
	prev = 0
	for i := 0; i < n && r.err == nil; i++ {
		sub := kb.InstanceID(r.delta(&prev))
		rel := r.str()
		obj := kb.InstanceID(r.varint())
		b.Assertions = append(b.Assertions, kb.Assertion{Subject: sub, Relationship: rel, Object: obj})
	}
	n = r.count(3)
	prev = 0
	for i := 0; i < n && r.err == nil; i++ {
		c := eks.Concept{ID: eks.ConceptID(r.delta(&prev)), Name: r.str()}
		syn := r.count(1)
		for j := 0; j < syn && r.err == nil; j++ {
			c.Synonyms = append(c.Synonyms, r.str())
		}
		b.EKSConcepts = append(b.EKSConcepts, c)
	}
	n = r.count(3)
	prev = 0
	for i := 0; i < n && r.err == nil; i++ {
		from := eks.ConceptID(r.delta(&prev))
		to := eks.ConceptID(r.varint())
		packed := r.uvarint()
		b.EKSEdges = append(b.EKSEdges, edgeDump{From: from, To: to, Dist: int(packed >> 1), Shortcut: packed&1 == 1})
	}
	b.EKSRoot = eks.ConceptID(r.varint())
	n = r.count(2)
	prev = 0
	for i := 0; i < n && r.err == nil; i++ {
		inst := kb.InstanceID(r.delta(&prev))
		b.Mappings = append(b.Mappings, mappingDump{Instance: inst, Concept: eks.ConceptID(r.varint())})
	}
	n = r.count(2)
	for i := 0; i < n && r.err == nil; i++ {
		ls := core.FrequencyLabelSnapshot{Label: r.str()}
		m := r.count(9) // one delta byte + 8 float bytes per entry, minimum
		prev = 0
		for j := 0; j < m && r.err == nil; j++ {
			ls.IDs = append(ls.IDs, eks.ConceptID(r.delta(&prev)))
		}
		for j := 0; j < m && r.err == nil; j++ {
			ls.Values = append(ls.Values, r.float64())
		}
		b.Frequencies.Labels = append(b.Frequencies.Labels, ls)
	}
	b.Frequencies.Root = eks.ConceptID(r.varint())
	b.Frequencies.Smooth = r.float64()
	b.Shortcuts = int(r.uvarint())

	if version >= versionBinaryAccel {
		if r.uvarint() == 1 && r.err == nil {
			m := &core.MaterializedSnapshot{}
			m.Relax.Radius = int(r.uvarint())
			m.Relax.MaxRadius = int(r.uvarint())
			bits := r.uvarint()
			m.Relax.DynamicRadius = bits&1 != 0
			m.Relax.IncludeSelf = bits&2 != 0
			nE := r.count(4)
			prev = 0
			for i := 0; i < nE && r.err == nil; i++ {
				e := core.MaterializedEntrySnapshot{
					Concept:  eks.ConceptID(r.delta(&prev)),
					Ctx:      r.str(),
					Complete: r.uvarint() == 1,
				}
				nC := r.count(1)
				for j := 0; j < nC && r.err == nil; j++ {
					e.Counts = append(e.Counts, int32(r.uvarint()))
				}
				nCand := r.count(10) // id + 8 score bytes + hops, minimum
				for j := 0; j < nCand && r.err == nil; j++ {
					e.Cands = append(e.Cands, core.MaterializedCandidate{
						Concept: eks.ConceptID(r.varint()),
						Score:   r.float64(),
						Hops:    int(r.uvarint()),
					})
				}
				m.Entries = append(m.Entries, e)
			}
			b.Materialized = m
		}
		if r.uvarint() == 1 && r.err == nil {
			x := &core.CandidateIndexSnapshot{Radius: int(r.uvarint())}
			nL := r.count(2)
			prev = 0
			for i := 0; i < nL && r.err == nil; i++ {
				ls := core.CandidateListSnapshot{Concept: eks.ConceptID(r.delta(&prev))}
				nP := r.count(5)
				for j := 0; j < nP && r.err == nil; j++ {
					p := core.PostingSnapshot{
						Concept: eks.ConceptID(r.varint()),
						Hops:    int(r.uvarint()),
						Gen:     int(r.uvarint()),
						Spec:    int(r.uvarint()),
					}
					nLCS := r.count(1)
					prevLCS := int64(0)
					for l := 0; l < nLCS && r.err == nil; l++ {
						p.LCS = append(p.LCS, eks.ConceptID(r.delta(&prevLCS)))
					}
					ls.Postings = append(ls.Postings, p)
				}
				x.Lists = append(x.Lists, ls)
			}
			b.Candidates = x
		}
	}

	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.buf) {
		return nil, corruptf("binary v2", "%d trailing bytes after sections", len(r.buf)-r.off)
	}
	return b, nil
}
