package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"unsafe"

	"medrelax/internal/core"
	"medrelax/internal/eks"
	"medrelax/internal/fault"
	"medrelax/internal/kb"
	"medrelax/internal/ontology"
)

// OpenFlat opens a flat (v4) bundle from disk zero-copy: the file is
// memory-mapped (where the platform supports it; otherwise read into one
// aligned buffer) and every column of the returned ingestion aliases that
// memory. The mapping stays valid for the lifetime of the returned
// Ingestion — its Backing field pins it — and is released by the runtime
// once the Ingestion becomes unreachable. Views handed out by the
// ingestion (instance spans, posting lists, ...) must not outlive it.
func OpenFlat(path string) (*core.Ingestion, error) {
	if err := fault.At("persist.open").Inject(); err != nil {
		return nil, fmt.Errorf("persist: opening bundle %q: %w", path, err)
	}
	if err := fault.At("persist.read").Inject(); err != nil {
		return nil, fmt.Errorf("persist: reading bundle %q: %w", path, err)
	}
	data, backing, err := mapBundle(path)
	if err != nil {
		return nil, fmt.Errorf("persist: opening bundle: %w", err)
	}
	ing, err := openFlatBytes(data, backing)
	if err != nil {
		backing.release()
		return nil, fmt.Errorf("bundle %q: %w", path, err)
	}
	return ing, nil
}

// alignedBytes allocates an 8-byte-aligned buffer of n bytes, so the heap
// fallback satisfies the same alignment contract a page-aligned mapping
// does.
func alignedBytes(n int) []byte {
	if n == 0 {
		return nil
	}
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(words))), n)
}

// flatDecoder resolves directory sections and the string table.
type flatDecoder struct {
	secs   map[uint32][]byte
	blob   []byte
	strOff []uint32
}

// openFlatBytes validates a flat bundle held in memory and assembles the
// ingestion over it. data must be 8-byte aligned (a page-aligned mapping or
// alignedBytes buffer); backing is attached to the result to pin the
// memory's lifetime.
func openFlatBytes(data []byte, backing core.SnapshotBacking) (*core.Ingestion, error) {
	if len(data) < flatHeaderSize {
		return nil, corruptf("flat v4", "truncated header (%d bytes)", len(data))
	}
	if string(data[:len(flatMagic)]) != flatMagic {
		return nil, corruptf("flat v4", "bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != VersionFlat {
		return nil, corruptf("flat v4", "bundle version %d, want %d", v, VersionFlat)
	}
	nSec := binary.LittleEndian.Uint32(data[8:])
	dirCRC := binary.LittleEndian.Uint32(data[12:])
	dirOff := binary.LittleEndian.Uint64(data[16:])
	fileSize := binary.LittleEndian.Uint64(data[24:])
	if fileSize != uint64(len(data)) {
		return nil, corruptf("flat v4", "header claims %d bytes, file has %d", fileSize, len(data))
	}
	if nSec == 0 || nSec > flatMaxSections {
		return nil, corruptf("flat v4", "implausible section count %d", nSec)
	}
	dirLen := uint64(nSec) * flatDirEntrySize
	if dirOff < flatHeaderSize || dirOff%8 != 0 || dirOff > fileSize || dirLen > fileSize-dirOff {
		return nil, corruptf("flat v4", "directory [%d,+%d) outside file of %d bytes", dirOff, dirLen, fileSize)
	}
	dir := data[dirOff : dirOff+dirLen]
	if got := sectionCRC(dir); got != dirCRC {
		return nil, corruptf("flat v4", "directory checksum mismatch (stored %08x, computed %08x)", dirCRC, got)
	}

	secs := make(map[uint32][]byte, nSec)
	for i := uint64(0); i < uint64(nSec); i++ {
		e := dir[i*flatDirEntrySize:]
		kind := binary.LittleEndian.Uint32(e[0:])
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		crc := binary.LittleEndian.Uint32(e[24:])
		if off < flatHeaderSize || off%8 != 0 || off > uint64(len(data)) || length > uint64(len(data))-off || off+length > dirOff {
			return nil, corruptf("flat v4", "section %d at [%d,+%d) outside the section area", kind, off, length)
		}
		if _, dup := secs[kind]; dup {
			return nil, corruptf("flat v4", "duplicate section kind %d", kind)
		}
		payload := data[off : off+length]
		if got := sectionCRC(payload); got != crc {
			return nil, corruptf("flat v4", "section %d checksum mismatch (stored %08x, computed %08x)", kind, crc, got)
		}
		secs[kind] = payload
	}

	d := &flatDecoder{secs: secs}
	ing, err := d.restoreFlat(backing)
	if err != nil {
		return nil, err
	}
	return ing, nil
}

// sec returns a required section's payload.
func (d *flatDecoder) sec(kind uint32, what string) ([]byte, error) {
	b, ok := d.secs[kind]
	if !ok {
		return nil, corruptf("flat v4", "missing %s section (kind %d)", what, kind)
	}
	return b, nil
}

// initStrings decodes the interned string table.
func (d *flatDecoder) initStrings() error {
	blob, err := d.sec(secStr, "string blob")
	if err != nil {
		return err
	}
	offB, err := d.sec(secStrOff, "string offsets")
	if err != nil {
		return err
	}
	offs, err := viewUint32s(offB, "string offsets")
	if err != nil {
		return err
	}
	if len(offs) == 0 {
		return corruptf("flat v4", "empty string offset table")
	}
	if offs[0] != 0 || int(offs[len(offs)-1]) != len(blob) {
		return corruptf("flat v4", "string offsets do not span the blob")
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			return corruptf("flat v4", "string offsets decrease at %d", i)
		}
	}
	d.blob, d.strOff = blob, offs
	return nil
}

// strings decodes one string-reference column into a []string whose
// entries alias the blob — string bytes are never copied.
func (d *flatDecoder) strings(kind uint32, what string) ([]string, error) {
	b, err := d.sec(kind, what)
	if err != nil {
		return nil, err
	}
	refs, err := viewUint32s(b, what)
	if err != nil {
		return nil, err
	}
	nStr := uint32(len(d.strOff) - 1)
	out := make([]string, len(refs))
	for i, r := range refs {
		if r >= nStr {
			return nil, corruptf("flat v4", "%s string reference %d out of range (table has %d)", what, r, nStr)
		}
		lo, hi := d.strOff[r], d.strOff[r+1]
		if hi > lo {
			out[i] = unsafe.String(&d.blob[lo], int(hi-lo))
		}
	}
	return out, nil
}

func (d *flatDecoder) conceptIDs(kind uint32, what string) ([]eks.ConceptID, error) {
	b, err := d.sec(kind, what)
	if err != nil {
		return nil, err
	}
	return viewConceptIDs(b, what)
}

func (d *flatDecoder) instanceIDs(kind uint32, what string) ([]kb.InstanceID, error) {
	b, err := d.sec(kind, what)
	if err != nil {
		return nil, err
	}
	return viewInstanceIDs(b, what)
}

func (d *flatDecoder) int32s(kind uint32, what string) ([]int32, error) {
	b, err := d.sec(kind, what)
	if err != nil {
		return nil, err
	}
	return viewInt32s(b, what)
}

func (d *flatDecoder) float64s(kind uint32, what string) ([]float64, error) {
	b, err := d.sec(kind, what)
	if err != nil {
		return nil, err
	}
	return viewFloat64s(b, what)
}

// restoreFlat assembles the components over the decoded sections. Structural
// validation lives in the component constructors; any failure there marks
// the bundle corrupt.
func (d *flatDecoder) restoreFlat(backing core.SnapshotBacking) (*core.Ingestion, error) {
	metaB, err := d.sec(secMeta, "meta")
	if err != nil {
		return nil, err
	}
	meta, err := decodeFlatMeta(metaB)
	if err != nil {
		return nil, err
	}
	if err := d.initStrings(); err != nil {
		return nil, err
	}

	onto, err := d.restoreOntology()
	if err != nil {
		return nil, err
	}
	g, err := d.restoreGraph(meta.eksRoot)
	if err != nil {
		return nil, err
	}
	store, err := d.restoreStore(onto)
	if err != nil {
		return nil, err
	}
	ft, err := d.restoreFrequencies(meta)
	if err != nil {
		return nil, err
	}

	maps, err := d.mappingData()
	if err != nil {
		return nil, err
	}
	ing, err := core.NewFlatIngestion(onto.Contexts(), g, store, onto, ft, int(meta.shortcuts), maps)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", corruptf("flat v4", "restore failed"), err)
	}

	if meta.flags&metaHasMaterialized != 0 {
		m, err := d.restoreMaterialized(meta)
		if err != nil {
			return nil, err
		}
		ing.Materialized = m
	} else if _, present := d.secs[secMatCon]; present {
		return nil, corruptf("flat v4", "materialized sections present but meta flag unset")
	}
	if meta.flags&metaHasCandidates != 0 {
		x, err := d.restoreCandidates(meta)
		if err != nil {
			return nil, err
		}
		ing.Candidates = x
	} else if _, present := d.secs[secCidxCon]; present {
		return nil, corruptf("flat v4", "candidate index sections present but meta flag unset")
	}
	if meta.flags&metaHasSources != 0 {
		if err := d.restoreSourcesSection(ing); err != nil {
			return nil, err
		}
	} else if _, present := d.secs[secSources]; present {
		return nil, corruptf("flat v4", "source section present but meta flag unset")
	}

	ing.Backing = backing
	return ing, nil
}

// restoreSourcesSection decodes the JSON-encoded secondary sources (see
// secSources) and mounts them on the already-assembled primary ingestion.
// The secondaries restore onto the heap — only the primary's columns are
// zero-copy.
func (d *flatDecoder) restoreSourcesSection(ing *core.Ingestion) error {
	payload, err := d.sec(secSources, "sources")
	if err != nil {
		return err
	}
	var dumps []sourceDump
	if err := json.Unmarshal(payload, &dumps); err != nil {
		return corruptf("flat v4", "source section decode failed: %v", err)
	}
	if len(dumps) == 0 {
		return corruptf("flat v4", "source section is empty but meta flag set")
	}
	if err := restoreSources(dumps, ing); err != nil {
		return fmt.Errorf("%w: %v", corruptf("flat v4", "restore failed"), err)
	}
	return nil
}

// restoreOntology rebuilds the (small) domain ontology on the heap — it is
// a handful of concepts and relationships, not worth a flat backing.
func (d *flatDecoder) restoreOntology() (*ontology.Ontology, error) {
	conRefs, err := d.strings(secOntoConcepts, "ontology concepts")
	if err != nil {
		return nil, err
	}
	if len(conRefs)%2 != 0 {
		return nil, corruptf("flat v4", "ontology concept section has %d refs, want pairs", len(conRefs))
	}
	relRefs, err := d.strings(secOntoRels, "ontology relationships")
	if err != nil {
		return nil, err
	}
	if len(relRefs)%3 != 0 {
		return nil, corruptf("flat v4", "ontology relationship section has %d refs, want triples", len(relRefs))
	}
	concepts := make([]ontology.Concept, 0, len(conRefs)/2)
	for i := 0; i < len(conRefs); i += 2 {
		concepts = append(concepts, ontology.Concept{Name: conRefs[i], Parent: conRefs[i+1]})
	}
	rels := make([]ontology.Relationship, 0, len(relRefs)/3)
	for i := 0; i < len(relRefs); i += 3 {
		rels = append(rels, ontology.Relationship{Name: relRefs[i], Domain: relRefs[i+1], Range: relRefs[i+2]})
	}
	onto, err := restoreOntology(concepts, rels)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", corruptf("flat v4", "restore failed"), err)
	}
	return onto, nil
}

func (d *flatDecoder) restoreGraph(root eks.ConceptID) (*eks.Graph, error) {
	var gd eks.FlatGraphData
	var err error
	gd.Root = root
	if gd.IDs, err = d.conceptIDs(secGraphIDs, "graph ids"); err != nil {
		return nil, err
	}
	if gd.Names, err = d.strings(secGraphNames, "graph names"); err != nil {
		return nil, err
	}
	if gd.SynOff, err = d.int32s(secGraphSynOff, "graph synonym offsets"); err != nil {
		return nil, err
	}
	if gd.Syns, err = d.strings(secGraphSyns, "graph synonyms"); err != nil {
		return nil, err
	}
	if gd.UpOff, err = d.int32s(secGraphUpOff, "graph up offsets"); err != nil {
		return nil, err
	}
	if gd.UpTo, err = d.int32s(secGraphUpTo, "graph up targets"); err != nil {
		return nil, err
	}
	if gd.UpDist, err = d.int32s(secGraphUpDist, "graph up distances"); err != nil {
		return nil, err
	}
	if gd.UpNativeEnd, err = d.int32s(secGraphUpNEnd, "graph up boundaries"); err != nil {
		return nil, err
	}
	if gd.DownOff, err = d.int32s(secGraphDownOff, "graph down offsets"); err != nil {
		return nil, err
	}
	if gd.DownTo, err = d.int32s(secGraphDownTo, "graph down targets"); err != nil {
		return nil, err
	}
	if gd.DownDist, err = d.int32s(secGraphDownDist, "graph down distances"); err != nil {
		return nil, err
	}
	if gd.DownNativeEnd, err = d.int32s(secGraphDownNEnd, "graph down boundaries"); err != nil {
		return nil, err
	}
	if gd.NameKeys, err = d.strings(secGraphNameKeys, "graph name keys"); err != nil {
		return nil, err
	}
	if gd.KeyOff, err = d.int32s(secGraphKeyOff, "graph key offsets"); err != nil {
		return nil, err
	}
	if gd.KeyIDs, err = d.conceptIDs(secGraphKeyIDs, "graph key ids"); err != nil {
		return nil, err
	}
	g, err := eks.NewFlatGraph(gd)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", corruptf("flat v4", "restore failed"), err)
	}
	return g, nil
}

func (d *flatDecoder) restoreStore(onto *ontology.Ontology) (*kb.Store, error) {
	var sd kb.FlatStoreData
	var err error
	if sd.IDs, err = d.instanceIDs(secStoreIDs, "store ids"); err != nil {
		return nil, err
	}
	if sd.Concepts, err = d.strings(secStoreConcepts, "store concepts"); err != nil {
		return nil, err
	}
	if sd.Names, err = d.strings(secStoreNames, "store names"); err != nil {
		return nil, err
	}
	if sd.LexKeys, err = d.strings(secStoreLexKeys, "store lexicon keys"); err != nil {
		return nil, err
	}
	if sd.LexOff, err = d.int32s(secStoreLexOff, "store lexicon offsets"); err != nil {
		return nil, err
	}
	if sd.LexIDs, err = d.instanceIDs(secStoreLexIDs, "store lexicon ids"); err != nil {
		return nil, err
	}
	if sd.ConceptKeys, err = d.strings(secStoreConKeys, "store concept keys"); err != nil {
		return nil, err
	}
	if sd.ConceptOff, err = d.int32s(secStoreConOff, "store concept offsets"); err != nil {
		return nil, err
	}
	if sd.ConceptIDs, err = d.instanceIDs(secStoreConIDs, "store concept ids"); err != nil {
		return nil, err
	}
	if sd.RelNames, err = d.strings(secStoreRelNames, "store relationship names"); err != nil {
		return nil, err
	}
	if sd.ASub, err = d.instanceIDs(secStoreASub, "store assertion subjects"); err != nil {
		return nil, err
	}
	if sd.ARel, err = d.int32s(secStoreARel, "store assertion relationships"); err != nil {
		return nil, err
	}
	if sd.AObj, err = d.instanceIDs(secStoreAObj, "store assertion objects"); err != nil {
		return nil, err
	}
	if sd.ByObjPerm, err = d.int32s(secStorePerm, "store assertion permutation"); err != nil {
		return nil, err
	}
	store, err := kb.NewFlatStore(onto, sd)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", corruptf("flat v4", "restore failed"), err)
	}
	return store, nil
}

func (d *flatDecoder) restoreFrequencies(meta flatMeta) (*core.FrequencyTable, error) {
	fd := core.FlatFrequencyData{Root: meta.freqRoot, Smoothing: meta.freqSmooth}
	var err error
	if fd.Labels, err = d.strings(secFreqLabels, "frequency labels"); err != nil {
		return nil, err
	}
	if fd.Off, err = d.int32s(secFreqOff, "frequency offsets"); err != nil {
		return nil, err
	}
	if fd.IDs, err = d.conceptIDs(secFreqIDs, "frequency ids"); err != nil {
		return nil, err
	}
	if fd.Vals, err = d.float64s(secFreqVals, "frequency values"); err != nil {
		return nil, err
	}
	if fd.AggIDs, err = d.conceptIDs(secFreqAggIDs, "frequency aggregate ids"); err != nil {
		return nil, err
	}
	if fd.AggVals, err = d.float64s(secFreqAggVals, "frequency aggregate values"); err != nil {
		return nil, err
	}
	ft, err := core.OpenFlatFrequencyTable(fd)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", corruptf("flat v4", "restore failed"), err)
	}
	return ft, nil
}

func (d *flatDecoder) mappingData() (core.FlatMappingsData, error) {
	var md core.FlatMappingsData
	var err error
	if md.Instances, err = d.instanceIDs(secMapInst, "mapping instances"); err != nil {
		return md, err
	}
	if md.Concepts, err = d.conceptIDs(secMapCon, "mapping concepts"); err != nil {
		return md, err
	}
	if md.Flagged, err = d.conceptIDs(secMapFlag, "flagged concepts"); err != nil {
		return md, err
	}
	if md.InstOff, err = d.int32s(secMapIOff, "mapping instance offsets"); err != nil {
		return md, err
	}
	if md.InstPool, err = d.instanceIDs(secMapIPool, "mapping instance pool"); err != nil {
		return md, err
	}
	return md, nil
}

func (d *flatDecoder) restoreMaterialized(meta flatMeta) (*core.Materialized, error) {
	md := core.FlatMaterializedData{
		Relax: core.RelaxOptions{
			Radius:        int(meta.matRadius),
			MaxRadius:     int(meta.matMax),
			DynamicRadius: meta.matBits&matBitDynamicRadius != 0,
			IncludeSelf:   meta.matBits&matBitIncludeSelf != 0,
		},
	}
	var err error
	if md.Concepts, err = d.conceptIDs(secMatCon, "materialized concepts"); err != nil {
		return nil, err
	}
	if md.Ctxs, err = d.strings(secMatCtx, "materialized contexts"); err != nil {
		return nil, err
	}
	if md.Complete, err = d.int32s(secMatFlags, "materialized flags"); err != nil {
		return nil, err
	}
	if md.CountOff, err = d.int32s(secMatCntOff, "materialized count offsets"); err != nil {
		return nil, err
	}
	if md.Counts, err = d.int32s(secMatCnt, "materialized counts"); err != nil {
		return nil, err
	}
	if md.CandOff, err = d.int32s(secMatCandOff, "materialized candidate offsets"); err != nil {
		return nil, err
	}
	candB, err := d.sec(secMatCands, "materialized candidates")
	if err != nil {
		return nil, err
	}
	if md.Cands, err = viewMatCands(candB, "materialized candidates"); err != nil {
		return nil, err
	}
	m, err := core.OpenFlatMaterialized(md)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", corruptf("flat v4", "restore failed"), err)
	}
	return m, nil
}

func (d *flatDecoder) restoreCandidates(meta flatMeta) (*core.CandidateIndex, error) {
	cd := core.FlatCandidateIndexData{
		Radius:  int(meta.cidxRadius),
		Skipped: int(meta.cidxSkipped),
	}
	var err error
	if cd.Concepts, err = d.conceptIDs(secCidxCon, "candidate index concepts"); err != nil {
		return nil, err
	}
	if cd.Off, err = d.int32s(secCidxOff, "candidate index offsets"); err != nil {
		return nil, err
	}
	postB, err := d.sec(secCidxPosts, "candidate index postings")
	if err != nil {
		return nil, err
	}
	if cd.Posts, err = viewPostings(postB, "candidate index postings"); err != nil {
		return nil, err
	}
	if cd.LCS, err = d.conceptIDs(secCidxLCS, "candidate index LCS pool"); err != nil {
		return nil, err
	}
	x, err := core.OpenFlatCandidateIndex(cd)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", corruptf("flat v4", "restore failed"), err)
	}
	return x, nil
}
