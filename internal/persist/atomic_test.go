package persist

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"medrelax/internal/fault"
)

// armFaults installs a fault registry for the duration of one test.
func armFaults(t *testing.T, spec string) {
	t.Helper()
	reg, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	fault.SetDefault(reg)
	t.Cleanup(func() { fault.SetDefault(nil) })
}

func TestSaveFileAtomicRoundTrip(t *testing.T) {
	ing := buildIngestion(t)
	for _, format := range []Format{FormatBinary, FormatJSON} {
		path := filepath.Join(t.TempDir(), "bundle")
		if err := SaveFileAtomic(path, ing, format); err != nil {
			t.Fatalf("format %d: %v", format, err)
		}
		restored, err := LoadFile(path)
		if err != nil {
			t.Fatalf("format %d: %v", format, err)
		}
		if restored.Graph.Len() != ing.Graph.Len() {
			t.Errorf("format %d: graph len = %d, want %d", format, restored.Graph.Len(), ing.Graph.Len())
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Mode().Perm() != 0o644 {
			t.Errorf("format %d: bundle mode = %v, want 0644", format, fi.Mode().Perm())
		}
	}
}

// TestSaveFileAtomicNeverPublishesPartial injects a failure at every
// stage of the publish pipeline — torn write, failed fsync, failed
// rename — and asserts the atomicity contract each time: no file appears
// at the target path and no temp file survives.
func TestSaveFileAtomicNeverPublishesPartial(t *testing.T) {
	ing := buildIngestion(t)
	cases := []struct {
		name string
		spec string
	}{
		{"torn write", "persist.write:torn,bytes=1024,count=1"},
		{"torn write at zero", "persist.write:torn,bytes=0,count=1"},
		{"fsync failure", "persist.fsync:error,count=1"},
		{"rename failure", "persist.rename:error,count=1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			armFaults(t, tc.spec)
			dir := t.TempDir()
			path := filepath.Join(dir, "bundle.bin")
			if err := SaveFileAtomic(path, ing, FormatBinary); err == nil {
				t.Fatal("save succeeded through an injected fault")
			}
			if _, err := os.Stat(path); !errors.Is(err, fs.ErrNotExist) {
				t.Errorf("partial bundle visible at target path (stat err %v)", err)
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 0 {
				t.Errorf("temp litter after failed save: %v", entries)
			}
		})
	}
}

// TestSaveFileAtomicKeepsPreviousBundle proves a failed re-publish over
// an existing bundle leaves the old one byte-identical and loadable —
// the crash-safety property hot reload depends on.
func TestSaveFileAtomicKeepsPreviousBundle(t *testing.T) {
	ing := buildIngestion(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "bundle.bin")
	if err := SaveFileAtomic(path, ing, FormatBinary); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	armFaults(t, "persist.write:torn,bytes=512,count=1")
	if err := SaveFileAtomic(path, ing, FormatBinary); err == nil {
		t.Fatal("save succeeded through a torn writer")
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("previous bundle gone after failed save: %v", err)
	}
	if string(before) != string(after) {
		t.Error("previous bundle modified by a failed save")
	}
	if _, err := LoadFile(path); err != nil {
		t.Errorf("previous bundle unloadable after failed save: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory not clean after failed save: %v", entries)
	}
}

// TestLoadFaultSites proves the read-side fault hooks fire: an armed
// persist.open fails LoadFile before any I/O, and an armed persist.read
// fails Load itself.
func TestLoadFaultSites(t *testing.T) {
	ing := buildIngestion(t)
	path := filepath.Join(t.TempDir(), "bundle.bin")
	if err := SaveFileAtomic(path, ing, FormatBinary); err != nil {
		t.Fatal(err)
	}

	armFaults(t, "persist.open:error,count=1")
	if _, err := LoadFile(path); !errors.Is(err, fault.ErrInjected) {
		t.Errorf("persist.open fault not surfaced: %v", err)
	}
	// The count is exhausted: the next load succeeds.
	if _, err := LoadFile(path); err != nil {
		t.Errorf("load after fault exhaustion: %v", err)
	}

	armFaults(t, "persist.read:error,count=1")
	if _, err := LoadFile(path); !errors.Is(err, fault.ErrInjected) {
		t.Errorf("persist.read fault not surfaced: %v", err)
	}
}
