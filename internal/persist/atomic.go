package persist

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"medrelax/internal/core"
	"medrelax/internal/fault"
)

// Format selects the on-disk encoding for SaveFileAtomic.
type Format int

const (
	// FormatBinary is the compact v2 encoding (SaveBinary).
	FormatBinary Format = iota
	// FormatJSON is the inspectable v1 encoding (Save).
	FormatJSON
	// FormatFlat is the zero-copy v4 encoding (SaveFlat).
	FormatFlat
)

// ParseFormat maps the CLI spelling ("binary", "json", or "flat") to a
// Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "binary":
		return FormatBinary, nil
	case "json":
		return FormatJSON, nil
	case "flat":
		return FormatFlat, nil
	}
	return 0, fmt.Errorf("persist: unknown bundle format %q (want binary, json, or flat)", s)
}

// SaveFileAtomic writes the ingestion to path crash-safely: the bundle is
// written to a temporary file in the same directory, flushed and fsynced,
// and only then renamed over path (followed by a directory fsync so the
// rename itself is durable). A crash — or an injected fault — at any
// point leaves either the previous bundle or no file at path, never a
// torn one; the temporary file is removed on every failure path. Combined
// with Load's checksums this is the full crash-safety story: writers
// can't publish a partial bundle, and readers reject one anyway if the
// storage layer tears it.
//
// Fault sites: "persist.write" (torn writes into the temp file),
// "persist.fsync" (flush/fsync failure), "persist.rename" (failure at the
// publish step).
func SaveFileAtomic(path string, ing *core.Ingestion, format Format) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".bundle-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: creating temp bundle: %w", err)
	}
	tmpName := tmp.Name()
	committed := false
	defer func() {
		if !committed {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()

	var w io.Writer = fault.At("persist.write").WrapWriter(tmp)
	bw := bufio.NewWriterSize(w, 1<<20)
	switch format {
	case FormatBinary:
		err = SaveBinary(bw, ing)
	case FormatJSON:
		err = Save(bw, ing)
	case FormatFlat:
		err = SaveFlat(bw, ing)
	default:
		err = fmt.Errorf("persist: unknown format %d", format)
	}
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		return fmt.Errorf("persist: writing bundle to %q: %w", tmpName, err)
	}
	if err := fault.At("persist.fsync").Inject(); err != nil {
		return fmt.Errorf("persist: fsync %q: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("persist: fsync %q: %w", tmpName, err)
	}
	// Temp files are 0600; bundles are world-readable like os.Create's.
	if err := tmp.Chmod(0o644); err != nil {
		return fmt.Errorf("persist: chmod %q: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: closing %q: %w", tmpName, err)
	}
	if err := fault.At("persist.rename").Inject(); err != nil {
		return fmt.Errorf("persist: renaming %q to %q: %w", tmpName, path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("persist: renaming %q to %q: %w", tmpName, path, err)
	}
	committed = true
	// Fsync the directory so the rename survives a crash. Failure here is
	// reported (the caller may retry) but the visible file is already
	// complete and valid either way.
	if d, derr := os.Open(dir); derr == nil {
		serr := d.Sync()
		d.Close()
		if serr != nil {
			return fmt.Errorf("persist: fsync directory %q: %w", dir, serr)
		}
	}
	return nil
}
