package persist

import (
	"bytes"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"medrelax/internal/core"
	"medrelax/internal/corpus"
	"medrelax/internal/eks"
	"medrelax/internal/kb"
	"medrelax/internal/medkb"
	"medrelax/internal/ontology"
	"medrelax/internal/synthkb"
)

// buildIngestion produces a realistic ingestion over a small synthetic
// world. testing.TB so the fuzz harness can share it.
func buildIngestion(t testing.TB) *core.Ingestion {
	t.Helper()
	world, err := synthkb.Generate(synthkb.Config{Seed: 31, ConditionsPerPair: 2})
	if err != nil {
		t.Fatal(err)
	}
	med, err := medkb.Generate(world, medkb.Config{Seed: 32, Drugs: 25})
	if err != nil {
		t.Fatal(err)
	}
	corp := medkb.BuildCorpus(world, med, medkb.CorpusConfig{Seed: 33})
	ing, err := core.Ingest(med.Ontology, med.Store, world.Graph, corp, exactMapper{world.Graph}, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ing
}

type exactMapper struct{ g *eks.Graph }

func (m exactMapper) Name() string { return "EXACT" }
func (m exactMapper) Map(name string) (eks.ConceptID, bool) {
	ids := m.g.LookupName(name)
	if len(ids) == 0 {
		return 0, false
	}
	return ids[0], true
}

func TestRoundTrip(t *testing.T) {
	ing := buildIngestion(t)
	var buf bytes.Buffer
	if err := Save(&buf, ing); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Structural equality.
	if restored.Graph.Len() != ing.Graph.Len() || restored.Graph.EdgeCount() != ing.Graph.EdgeCount() {
		t.Errorf("graph: %d/%d vs %d/%d", restored.Graph.Len(), restored.Graph.EdgeCount(), ing.Graph.Len(), ing.Graph.EdgeCount())
	}
	if restored.Graph.ShortcutCount() != ing.Graph.ShortcutCount() {
		t.Errorf("shortcuts: %d vs %d", restored.Graph.ShortcutCount(), ing.Graph.ShortcutCount())
	}
	if restored.Store.Len() != ing.Store.Len() {
		t.Errorf("instances: %d vs %d", restored.Store.Len(), ing.Store.Len())
	}
	if len(restored.Mappings) != len(ing.Mappings) || len(restored.Flagged) != len(ing.Flagged) {
		t.Errorf("mappings/flags differ")
	}
	if len(restored.Contexts) != len(ing.Contexts) {
		t.Errorf("contexts: %d vs %d", len(restored.Contexts), len(ing.Contexts))
	}
	if restored.ShortcutsAdded != ing.ShortcutsAdded {
		t.Errorf("shortcutsAdded: %d vs %d", restored.ShortcutsAdded, ing.ShortcutsAdded)
	}

	// Behavioural equality: identical relaxation results on both sides.
	ctx := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	simA := core.NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	simB := core.NewSimilarity(restored.Graph, restored.Frequencies, restored.Ontology)
	relA := core.NewRelaxer(ing, simA, exactMapper{ing.Graph}, core.RelaxOptions{Radius: 3})
	relB := core.NewRelaxer(restored, simB, exactMapper{restored.Graph}, core.RelaxOptions{Radius: 3})
	checked := 0
	for q := range ing.Flagged {
		if checked == 25 {
			break
		}
		checked++
		a := relA.RelaxConcept(q, ctx, 0)
		b := relB.RelaxConcept(q, ctx, 0)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", q, len(a), len(b))
		}
		for i := range a {
			if a[i].Concept != b[i].Concept || a[i].Score != b[i].Score {
				t.Fatalf("query %d rank %d: %+v vs %+v", q, i, a[i], b[i])
			}
		}
	}
}

func TestRoundTripDeterministicBytes(t *testing.T) {
	ing := buildIngestion(t)
	var a, b bytes.Buffer
	if err := Save(&a, ing); err != nil {
		t.Fatal(err)
	}
	if err := Save(&b, ing); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("serialization is not byte-deterministic")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"not json":    "hello",
		"wrong shape": `{"version": 1, "eksEdges": "nope"}`,
	}
	for name, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Load must fail", name)
		}
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("wrong version must fail")
	}
}

func TestLoadRejectsDanglingMapping(t *testing.T) {
	ing := buildIngestion(t)
	var buf bytes.Buffer
	if err := Save(&buf, ing); err != nil {
		t.Fatal(err)
	}
	// Point one mapping at a concept the graph does not contain, then
	// re-checksum: the corruption must be caught by restore-time
	// validation, not the CRC.
	var b Bundle
	if err := json.Unmarshal(buf.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if len(b.Mappings) == 0 {
		t.Fatal("bundle has no mappings")
	}
	b.Mappings[0].Concept = 1 << 40
	b.CRC32 = 0
	raw, err := json.Marshal(&b)
	if err != nil {
		t.Fatal(err)
	}
	b.CRC32 = crc32.ChecksumIEEE(raw)
	raw, err = json.Marshal(&b)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Load(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("dangling mapping must fail")
	}
	if !errors.Is(err, ErrCorruptBundle) {
		t.Errorf("dangling mapping error is not ErrCorruptBundle: %v", err)
	}
}

func TestFrequencySnapshotRoundTrip(t *testing.T) {
	ing := buildIngestion(t)
	snap := ing.Frequencies.Snapshot()
	restored, err := core.RestoreFrequencyTable(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, ls := range snap.Labels {
		for i, id := range ls.IDs {
			if got := restored.Raw(id, ls.Label); got != ls.Values[i] {
				t.Fatalf("raw(%d, %s) = %v, want %v", id, ls.Label, got, ls.Values[i])
			}
		}
	}
	// Aggregate is rebuilt.
	for _, ls := range snap.Labels {
		for _, id := range ls.IDs {
			if restored.RawAggregate(id) != ing.Frequencies.RawAggregate(id) {
				t.Fatalf("aggregate mismatch for %d", id)
			}
		}
	}
	// Malformed snapshot rejected.
	bad := core.FrequencySnapshot{Labels: []core.FrequencyLabelSnapshot{{Label: "x", IDs: []eks.ConceptID{1}, Values: nil}}}
	if _, err := core.RestoreFrequencyTable(bad); err == nil {
		t.Error("mismatched snapshot must fail")
	}
	_ = kb.InstanceID(0)
	_ = corpus.Document{}
}

func TestLoadFileRoundTrip(t *testing.T) {
	ing := buildIngestion(t)
	path := filepath.Join(t.TempDir(), "bundle.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveBinary(f, ing); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Graph.Len() != ing.Graph.Len() {
		t.Errorf("graph len = %d, want %d", restored.Graph.Len(), ing.Graph.Len())
	}
	if err := ValidateForServing(restored); err != nil {
		t.Errorf("ValidateForServing on a real bundle: %v", err)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.bin")); err == nil {
		t.Fatal("missing file loaded without error")
	}
}

func TestValidateForServingRejects(t *testing.T) {
	ing := buildIngestion(t)
	if err := ValidateForServing(nil); err == nil {
		t.Error("nil ingestion validated")
	}
	cases := []struct {
		name   string
		mutate func(*core.Ingestion)
	}{
		{"no flagged concepts", func(i *core.Ingestion) { i.Flagged = map[eks.ConceptID]bool{} }},
		{"nil frequencies", func(i *core.Ingestion) { i.Frequencies = nil }},
		{"flagged without instances", func(i *core.Ingestion) {
			i.InstancesFor = map[eks.ConceptID][]kb.InstanceID{}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Shallow copy: each case replaces a map/pointer field
			// wholesale, never mutating the shared originals.
			cp := *ing
			tc.mutate(&cp)
			if err := ValidateForServing(&cp); err == nil {
				t.Fatalf("%s validated", tc.name)
			}
		})
	}
	if err := ValidateForServing(ing); err != nil {
		t.Errorf("pristine ingestion rejected: %v", err)
	}
}
