package persist

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

// encodeBoth returns the same ingestion in both on-disk formats, the raw
// material for torn-write simulations.
func encodeBoth(t *testing.T) (jsonBundle, binBundle []byte) {
	t.Helper()
	ing := buildIngestion(t)
	var jb, bb bytes.Buffer
	if err := Save(&jb, ing); err != nil {
		t.Fatal(err)
	}
	if err := SaveBinary(&bb, ing); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), bb.Bytes()
}

// TestLoadRejectsTornBundles simulates every tear and bit-flip class a
// crashed or lying storage layer can produce, in both formats, and
// demands a typed ErrCorruptBundle for each: a torn bundle must never
// load as a smaller-but-plausible world.
func TestLoadRejectsTornBundles(t *testing.T) {
	jsonBundle, binBundle := encodeBoth(t)

	flip := func(src []byte, off int) []byte {
		b := append([]byte(nil), src...)
		b[off] ^= 0x40
		return b
	}
	cases := []struct {
		name string
		data []byte
	}{
		// Binary v2: tears at the header, mid-payload, and one byte
		// short; flips in the header's length field and in the payload.
		// (Bytes appended beyond the declared payload length are not a
		// tear — the frame is complete and checksummed — so they are
		// deliberately absent here; see binary_test.go.)
		{"bin/truncated header", binBundle[:8]},
		{"bin/truncated quarter", binBundle[:len(binBundle)/4]},
		{"bin/truncated half", binBundle[:len(binBundle)/2]},
		{"bin/truncated one byte short", binBundle[:len(binBundle)-1]},
		{"bin/bitflip header length", flip(binBundle, 9)},
		{"bin/bitflip payload early", flip(binBundle, 32)},
		{"bin/bitflip payload middle", flip(binBundle, len(binBundle)/2)},
		{"bin/bitflip last byte", flip(binBundle, len(binBundle)-1)},

		// JSON v1: tears that still decode are caught by the embedded
		// CRC; tears that break the syntax by the decoder. Cutting the
		// closing brace breaks decoding; flipping a digit inside a value
		// leaves a parseable document whose checksum no longer matches.
		{"json/truncated quarter", jsonBundle[:len(jsonBundle)/4]},
		{"json/truncated half", jsonBundle[:len(jsonBundle)/2]},
		{"json/truncated before closing brace", jsonBundle[:len(jsonBundle)-2]},
		{"json/bitflip payload middle", flip(jsonBundle, len(jsonBundle)/2)},

		{"empty", nil},
		{"garbage", []byte("this is not a bundle\n")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ing, err := Load(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatalf("corrupt bundle loaded: %d concepts", ing.Graph.Len())
			}
			if !errors.Is(err, ErrCorruptBundle) {
				t.Errorf("error is not ErrCorruptBundle: %v", err)
			}
		})
	}
}

// TestLoadFileErrorTyping pins the contract reload handling depends on:
// a corrupt file is ErrCorruptBundle (with the path in the message), a
// missing file is fs.ErrNotExist, and the two never overlap.
func TestLoadFileErrorTyping(t *testing.T) {
	dir := t.TempDir()

	corrupt := filepath.Join(dir, "corrupt.bin")
	if err := os.WriteFile(corrupt, []byte("not a bundle"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFile(corrupt)
	if !errors.Is(err, ErrCorruptBundle) {
		t.Errorf("corrupt file: got %v, want ErrCorruptBundle", err)
	}
	if errors.Is(err, fs.ErrNotExist) {
		t.Errorf("corrupt file reported as missing: %v", err)
	}
	if err != nil && !bytes.Contains([]byte(err.Error()), []byte(corrupt)) {
		t.Errorf("corrupt-file error does not name the path: %v", err)
	}

	empty := filepath.Join(dir, "empty.bin")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(empty); !errors.Is(err, ErrCorruptBundle) {
		t.Errorf("empty file: got %v, want ErrCorruptBundle", err)
	}

	_, err = LoadFile(filepath.Join(dir, "missing.bin"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing file: got %v, want fs.ErrNotExist", err)
	}
	if errors.Is(err, ErrCorruptBundle) {
		t.Errorf("missing file reported as corrupt: %v", err)
	}
}
