package persist

import (
	"bytes"
	"testing"
)

// FuzzLoadBundle throws arbitrary bytes at the bundle decoder. The
// decoder's contract under fuzzing is: never panic, never hang, and when
// it does accept an input, the result must survive serving validation or
// be rejected by it — no third outcome. Seeds cover both real formats
// plus the torn variants the crash-safety layer defends against.
func FuzzLoadBundle(f *testing.F) {
	ing := buildIngestion(f)
	var jb, bb bytes.Buffer
	if err := Save(&jb, ing); err != nil {
		f.Fatal(err)
	}
	if err := SaveBinary(&bb, ing); err != nil {
		f.Fatal(err)
	}
	f.Add(jb.Bytes())
	f.Add(bb.Bytes())
	f.Add(jb.Bytes()[:len(jb.Bytes())/2])
	f.Add(bb.Bytes()[:len(bb.Bytes())/2])
	f.Add(bb.Bytes()[:16])
	f.Add([]byte("MRXB"))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte{})

	// v3 seeds: bundles carrying the acceleration sections, whole and torn.
	accel := buildAccelIngestion(f)
	var ja, ba bytes.Buffer
	if err := Save(&ja, accel); err != nil {
		f.Fatal(err)
	}
	if err := SaveBinary(&ba, accel); err != nil {
		f.Fatal(err)
	}
	f.Add(ja.Bytes())
	f.Add(ba.Bytes())
	f.Add(ba.Bytes()[:len(ba.Bytes())*3/4])

	f.Fuzz(func(t *testing.T, data []byte) {
		restored, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input: the decoder vouched for it, so it must be
		// internally consistent enough for ValidateForServing to give a
		// deterministic verdict (either way) without panicking.
		_ = ValidateForServing(restored)
	})
}
