package persist

import (
	"bytes"
	"testing"
)

// FuzzLoadBundle throws arbitrary bytes at the bundle decoder. The
// decoder's contract under fuzzing is: never panic, never hang, and when
// it does accept an input, the result must survive serving validation or
// be rejected by it — no third outcome. Seeds cover both real formats
// plus the torn variants the crash-safety layer defends against.
func FuzzLoadBundle(f *testing.F) {
	ing := buildIngestion(f)
	var jb, bb bytes.Buffer
	if err := Save(&jb, ing); err != nil {
		f.Fatal(err)
	}
	if err := SaveBinary(&bb, ing); err != nil {
		f.Fatal(err)
	}
	f.Add(jb.Bytes())
	f.Add(bb.Bytes())
	f.Add(jb.Bytes()[:len(jb.Bytes())/2])
	f.Add(bb.Bytes()[:len(bb.Bytes())/2])
	f.Add(bb.Bytes()[:16])
	f.Add([]byte("MRXB"))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte{})

	// v3 seeds: bundles carrying the acceleration sections, whole and torn.
	// The small accel build keeps seeds (and their escaped corpus-file
	// encodings) far below the fuzzer's 100MB shared-memory cap.
	accel := buildSmallAccelIngestion(f)
	var ja, ba bytes.Buffer
	if err := Save(&ja, accel); err != nil {
		f.Fatal(err)
	}
	if err := SaveBinary(&ba, accel); err != nil {
		f.Fatal(err)
	}
	f.Add(ja.Bytes())
	f.Add(ba.Bytes())
	f.Add(ba.Bytes()[:len(ba.Bytes())*3/4])

	// v4 seeds: flat bundles reach Load through the magic sniff. Flat
	// encodes accelerations fixed-width, so seeds use the small accel
	// build — full-fat fixtures overflow the fuzzer's shared memory.
	smallAccel := buildSmallAccelIngestion(f)
	var fb, fa bytes.Buffer
	if err := SaveFlat(&fb, ing); err != nil {
		f.Fatal(err)
	}
	if err := SaveFlat(&fa, smallAccel); err != nil {
		f.Fatal(err)
	}
	f.Add(fb.Bytes())
	f.Add(fa.Bytes())
	f.Add(fa.Bytes()[:len(fa.Bytes())/2])
	f.Add([]byte("MRXF"))

	// Multi-source seeds: federated bundles carrying the named-source
	// section (flat) and field (JSON), whole and torn, so mutations explore
	// the source-restore path too.
	fed := buildFederatedIngestion(f)
	var jf, ff bytes.Buffer
	if err := Save(&jf, fed); err != nil {
		f.Fatal(err)
	}
	if err := SaveFlat(&ff, fed); err != nil {
		f.Fatal(err)
	}
	f.Add(jf.Bytes())
	f.Add(ff.Bytes())
	f.Add(jf.Bytes()[:len(jf.Bytes())*3/4])
	f.Add(ff.Bytes()[:len(ff.Bytes())*3/4])

	f.Fuzz(func(t *testing.T, data []byte) {
		restored, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input: the decoder vouched for it, so it must be
		// internally consistent enough for ValidateForServing to give a
		// deterministic verdict (either way) without panicking.
		_ = ValidateForServing(restored)
	})
}

// FuzzOpenFlat aims arbitrary bytes straight at the flat (v4) decoder —
// the zero-copy path has to survive hostile directories, misaligned and
// overlapping sections, and bad per-section checksums without panicking
// or reading out of bounds. Seeds cover whole and torn real bundles plus
// directory-level mutations the corruption tests exercise deliberately.
func FuzzOpenFlat(f *testing.F) {
	ing := buildIngestion(f)
	accel := buildSmallAccelIngestion(f)
	var plain, withAccel bytes.Buffer
	if err := SaveFlat(&plain, ing); err != nil {
		f.Fatal(err)
	}
	if err := SaveFlat(&withAccel, accel); err != nil {
		f.Fatal(err)
	}
	fed := buildFederatedIngestion(f)
	var withSources bytes.Buffer
	if err := SaveFlat(&withSources, fed); err != nil {
		f.Fatal(err)
	}
	f.Add(plain.Bytes())
	f.Add(withAccel.Bytes())
	f.Add(withSources.Bytes())
	f.Add(plain.Bytes()[:len(plain.Bytes())/2])
	f.Add(withSources.Bytes()[:len(withSources.Bytes())/2])
	f.Add(withAccel.Bytes()[:flatHeaderSize])
	f.Add([]byte("MRXF"))
	f.Add([]byte{})

	// A structurally valid header pointing its directory at garbage.
	hostile := append([]byte(nil), plain.Bytes()...)
	hostile[flatHeaderSize+1] ^= 0xFF // flip a section byte under a stale CRC
	f.Add(hostile)
	misdir := append([]byte(nil), plain.Bytes()...)
	misdir[16] ^= 0x04 // nudge dirOff off alignment
	f.Add(misdir)

	f.Fuzz(func(t *testing.T, data []byte) {
		// openFlatBytes requires aligned input, which mapBundle guarantees
		// in production; the fuzzer supplies arbitrary slices.
		buf := alignedBytes(len(data))
		copy(buf, data)
		restored, err := openFlatBytes(buf, &mapRef{size: int64(len(buf))})
		if err != nil {
			return
		}
		_ = ValidateForServing(restored)
	})
}
