package persist

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"unsafe"

	"medrelax/internal/core"
	"medrelax/internal/eks"
	"medrelax/internal/kb"
)

// Flat bundle (v4) layout — a zero-copy snapshot. Where v2/v3 encode one
// varint-packed payload that must be decoded record by record into heap
// structures, v4 lays the ingestion out as the flat arrays the read path
// wants to traverse: CSR adjacency, sorted ID columns, posting and
// candidate records in their in-memory fixed-width form. A reader maps the
// file and serves queries directly from the mapping — opening a bundle
// costs a directory walk plus one CRC pass, not a rebuild.
//
//	header      32 bytes (see below)
//	sections    each 8-byte aligned, zero-padded between
//	directory   sectionCount × 32-byte entries, 8-byte aligned
//
// Header:
//
//	magic        "MRXF"          4 bytes
//	version      4               uint32
//	sectionCount                 uint32
//	dirCRC       IEEE(directory) uint32
//	dirOff                       uint64
//	fileSize                     uint64
//
// Directory entry: kind uint32, reserved uint32, off uint64, len uint64,
// crc uint32 (IEEE over the unpadded payload), pad uint32. Every multi-byte
// value in the file is little-endian and every section starts 8-byte
// aligned, so on little-endian hosts numeric sections are reinterpreted in
// place ([]byte → []int64/[]float64/...) without copying; big-endian hosts
// fall back to a copying decode of the same bytes.
//
// Strings are interned once: section strBlob holds the concatenated UTF-8
// bytes, strOff the nStr+1 offsets into it, and every string-valued column
// elsewhere is a []uint32 of indexes into that table. The reader builds
// []string headers pointing into the blob (one allocation per column), so
// no string bytes are copied.
//
// Integrity: a torn or bit-flipped file fails the directory or a section
// CRC and is rejected with ErrCorruptBundle before any structural
// validation runs; the component constructors (eks.NewFlatGraph,
// kb.NewFlatStore, core.NewFlatIngestion, ...) then re-validate the
// structural invariants, so a hostile bundle that passes its checksums
// still cannot produce out-of-bounds traversals.

// flatMagic marks a flat (v4) bundle. LoadFile sniffs it to route the path
// to the memory-mapping opener instead of the streaming decoder.
const flatMagic = "MRXF"

// VersionFlat is the flat bundle format version.
const VersionFlat = 4

const (
	flatHeaderSize   = 32
	flatDirEntrySize = 32
	flatMetaSize     = 64
	// flatMaxSections bounds the section count read from a header so a
	// corrupted count cannot drive a huge allocation.
	flatMaxSections = 1 << 12
)

// Section kinds. The numeric gaps group sections by subsystem; the writer
// emits them in ascending kind order and the reader addresses them through
// the directory, so the gaps cost nothing.
const (
	secMeta   uint32 = 1
	secStrOff uint32 = 2 // []uint32, nStr+1 offsets into strBlob
	secStr    uint32 = 3 // concatenated string bytes

	secGraphIDs      uint32 = 10 // []eks.ConceptID, ascending
	secGraphNames    uint32 = 11 // []uint32 string refs, one per concept
	secGraphSynOff   uint32 = 12 // []int32 CSR into graphSyns
	secGraphSyns     uint32 = 13 // []uint32 string refs
	secGraphUpOff    uint32 = 14 // []int32 CSR
	secGraphUpTo     uint32 = 15 // []int32 dense node targets
	secGraphUpDist   uint32 = 16 // []int32
	secGraphUpNEnd   uint32 = 17 // []int32, absolute native/shortcut boundaries
	secGraphDownOff  uint32 = 18
	secGraphDownTo   uint32 = 19
	secGraphDownDist uint32 = 20
	secGraphDownNEnd uint32 = 21
	secGraphNameKeys uint32 = 22 // []uint32 string refs, sorted unique keys
	secGraphKeyOff   uint32 = 23 // []int32 CSR into graphKeyIDs
	secGraphKeyIDs   uint32 = 24 // []eks.ConceptID

	secOntoConcepts uint32 = 30 // []uint32 string refs, (name, parent) pairs
	secOntoRels     uint32 = 31 // []uint32 string refs, (name, domain, range) triples

	secStoreIDs      uint32 = 40 // []kb.InstanceID, ascending
	secStoreConcepts uint32 = 41 // []uint32 string refs, one per instance
	secStoreNames    uint32 = 42 // []uint32 string refs, one per instance
	secStoreLexKeys  uint32 = 43 // []uint32 string refs, sorted unique
	secStoreLexOff   uint32 = 44 // []int32 CSR into storeLexIDs
	secStoreLexIDs   uint32 = 45 // []kb.InstanceID
	secStoreConKeys  uint32 = 46 // []uint32 string refs, sorted unique
	secStoreConOff   uint32 = 47 // []int32 CSR into storeConIDs
	secStoreConIDs   uint32 = 48 // []kb.InstanceID
	secStoreRelNames uint32 = 49 // []uint32 string refs, sorted unique
	secStoreASub     uint32 = 50 // []kb.InstanceID, assertion subjects
	secStoreARel     uint32 = 51 // []int32 indexes into storeRelNames
	secStoreAObj     uint32 = 52 // []kb.InstanceID, assertion objects
	secStorePerm     uint32 = 53 // []int32, by-object permutation

	secMapInst  uint32 = 60 // []kb.InstanceID, ascending mapped instances
	secMapCon   uint32 = 61 // []eks.ConceptID, parallel mapped concepts
	secMapFlag  uint32 = 62 // []eks.ConceptID, ascending flagged set
	secMapIOff  uint32 = 63 // []int32 CSR into mapIPool
	secMapIPool uint32 = 64 // []kb.InstanceID

	secFreqLabels  uint32 = 70 // []uint32 string refs, ascending labels
	secFreqOff     uint32 = 71 // []int32 CSR into freqIDs/freqVals
	secFreqIDs     uint32 = 72 // []eks.ConceptID, ascending per label
	secFreqVals    uint32 = 73 // []float64
	secFreqAggIDs  uint32 = 74 // []eks.ConceptID, ascending
	secFreqAggVals uint32 = 75 // []float64

	secMatCon     uint32 = 80 // []eks.ConceptID, (concept, ctx)-sorted entries
	secMatCtx     uint32 = 81 // []uint32 string refs, parallel context keys
	secMatFlags   uint32 = 82 // []int32, 1 = complete
	secMatCntOff  uint32 = 83 // []int32 CSR into matCnt
	secMatCnt     uint32 = 84 // []int32
	secMatCandOff uint32 = 85 // []int32 CSR into matCands
	secMatCands   uint32 = 86 // []core.MatCand, 24-byte records

	secCidxCon   uint32 = 90 // []eks.ConceptID, ascending indexed concepts
	secCidxOff   uint32 = 91 // []int32 CSR into cidxPosts
	secCidxPosts uint32 = 92 // []core.Posting, 32-byte records
	secCidxLCS   uint32 = 93 // []eks.ConceptID, shared LCS pool

	// secSources holds the secondary named sources of a federated bundle as
	// the canonical JSON encoding of []sourceDump. Secondaries are small
	// auxiliary vocabularies, so they ride as one self-contained section and
	// restore onto the heap — the zero-copy columns stay a primary-only
	// optimization. Readers that predate the kind tolerate it (unknown
	// sections are skipped), but metaHasSources makes the load refuse to
	// silently serve a smaller world: flag and section must agree.
	secSources uint32 = 100
)

// META flag bits.
const (
	metaHasMaterialized = 1 << 0
	metaHasCandidates   = 1 << 1
	metaHasSources      = 1 << 2
	matBitDynamicRadius = 1 << 0
	matBitIncludeSelf   = 1 << 1
)

// flatMeta is the decoded META section: the scalars that do not fit a
// column. Serialized as flatMetaSize little-endian bytes.
type flatMeta struct {
	eksRoot     eks.ConceptID
	shortcuts   int64
	freqRoot    eks.ConceptID
	freqSmooth  float64
	flags       uint32
	matRadius   uint32
	matMax      uint32
	matBits     uint32
	cidxRadius  uint32
	cidxSkipped int64
}

func (m *flatMeta) encode() []byte {
	b := make([]byte, flatMetaSize)
	binary.LittleEndian.PutUint64(b[0:], uint64(m.eksRoot))
	binary.LittleEndian.PutUint64(b[8:], uint64(m.shortcuts))
	binary.LittleEndian.PutUint64(b[16:], uint64(m.freqRoot))
	binary.LittleEndian.PutUint64(b[24:], math.Float64bits(m.freqSmooth))
	binary.LittleEndian.PutUint32(b[32:], m.flags)
	binary.LittleEndian.PutUint32(b[36:], m.matRadius)
	binary.LittleEndian.PutUint32(b[40:], m.matMax)
	binary.LittleEndian.PutUint32(b[44:], m.matBits)
	binary.LittleEndian.PutUint32(b[48:], m.cidxRadius)
	// b[52:56] is padding.
	binary.LittleEndian.PutUint64(b[56:], uint64(m.cidxSkipped))
	return b
}

func decodeFlatMeta(b []byte) (flatMeta, error) {
	if len(b) != flatMetaSize {
		return flatMeta{}, corruptf("flat v4", "meta section is %d bytes, want %d", len(b), flatMetaSize)
	}
	return flatMeta{
		eksRoot:     eks.ConceptID(binary.LittleEndian.Uint64(b[0:])),
		shortcuts:   int64(binary.LittleEndian.Uint64(b[8:])),
		freqRoot:    eks.ConceptID(binary.LittleEndian.Uint64(b[16:])),
		freqSmooth:  math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
		flags:       binary.LittleEndian.Uint32(b[32:]),
		matRadius:   binary.LittleEndian.Uint32(b[36:]),
		matMax:      binary.LittleEndian.Uint32(b[40:]),
		matBits:     binary.LittleEndian.Uint32(b[44:]),
		cidxRadius:  binary.LittleEndian.Uint32(b[48:]),
		cidxSkipped: int64(binary.LittleEndian.Uint64(b[56:])),
	}, nil
}

// hostLE reports whether this host is little-endian — the fast path where
// numeric sections are reinterpreted in place instead of copied.
var hostLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Compile-time size pins: the record sections are viewed in place as these
// structs, so their sizes are part of the wire format. A field change that
// alters a size fails the build here instead of corrupting bundles.
var (
	_ = [1]struct{}{}[unsafe.Sizeof(core.MatCand{})-24]
	_ = [1]struct{}{}[unsafe.Sizeof(core.Posting{})-32]
	_ = [1]struct{}{}[unsafe.Sizeof(eks.ConceptID(0))-8]
	_ = [1]struct{}{}[unsafe.Sizeof(kb.InstanceID(0))-8]
)

// viewConceptIDs reinterprets (or, off the fast path, decodes) a section as
// concept IDs.
func viewConceptIDs(b []byte, what string) ([]eks.ConceptID, error) {
	if len(b)%8 != 0 {
		return nil, corruptf("flat v4", "%s section length %d not a multiple of 8", what, len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	if hostLE {
		return unsafe.Slice((*eks.ConceptID)(unsafe.Pointer(unsafe.SliceData(b))), n), nil
	}
	out := make([]eks.ConceptID, n)
	for i := range out {
		out[i] = eks.ConceptID(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// viewInstanceIDs reinterprets a section as instance IDs.
func viewInstanceIDs(b []byte, what string) ([]kb.InstanceID, error) {
	if len(b)%8 != 0 {
		return nil, corruptf("flat v4", "%s section length %d not a multiple of 8", what, len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	if hostLE {
		return unsafe.Slice((*kb.InstanceID)(unsafe.Pointer(unsafe.SliceData(b))), n), nil
	}
	out := make([]kb.InstanceID, n)
	for i := range out {
		out[i] = kb.InstanceID(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// viewInt32s reinterprets a section as []int32.
func viewInt32s(b []byte, what string) ([]int32, error) {
	if len(b)%4 != 0 {
		return nil, corruptf("flat v4", "%s section length %d not a multiple of 4", what, len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return nil, nil
	}
	if hostLE {
		return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(b))), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

// viewUint32s reinterprets a section as []uint32.
func viewUint32s(b []byte, what string) ([]uint32, error) {
	if len(b)%4 != 0 {
		return nil, corruptf("flat v4", "%s section length %d not a multiple of 4", what, len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return nil, nil
	}
	if hostLE {
		return unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(b))), n), nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out, nil
}

// viewFloat64s reinterprets a section as []float64.
func viewFloat64s(b []byte, what string) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, corruptf("flat v4", "%s section length %d not a multiple of 8", what, len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	if hostLE {
		return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(b))), n), nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// viewMatCands reinterprets a section as materialized candidate records.
func viewMatCands(b []byte, what string) ([]core.MatCand, error) {
	const rec = 24
	if len(b)%rec != 0 {
		return nil, corruptf("flat v4", "%s section length %d not a multiple of %d", what, len(b), rec)
	}
	n := len(b) / rec
	if n == 0 {
		return nil, nil
	}
	if hostLE {
		return unsafe.Slice((*core.MatCand)(unsafe.Pointer(unsafe.SliceData(b))), n), nil
	}
	out := make([]core.MatCand, n)
	for i := range out {
		r := b[rec*i:]
		out[i] = core.MatCand{
			Concept: eks.ConceptID(binary.LittleEndian.Uint64(r[0:])),
			Score:   math.Float64frombits(binary.LittleEndian.Uint64(r[8:])),
			Hops:    int32(binary.LittleEndian.Uint32(r[16:])),
			Rsv:     int32(binary.LittleEndian.Uint32(r[20:])),
		}
	}
	return out, nil
}

// viewPostings reinterprets a section as candidate-index posting records.
func viewPostings(b []byte, what string) ([]core.Posting, error) {
	const rec = 32
	if len(b)%rec != 0 {
		return nil, corruptf("flat v4", "%s section length %d not a multiple of %d", what, len(b), rec)
	}
	n := len(b) / rec
	if n == 0 {
		return nil, nil
	}
	if hostLE {
		return unsafe.Slice((*core.Posting)(unsafe.Pointer(unsafe.SliceData(b))), n), nil
	}
	out := make([]core.Posting, n)
	for i := range out {
		r := b[rec*i:]
		out[i] = core.Posting{
			Concept: eks.ConceptID(binary.LittleEndian.Uint64(r[0:])),
			Hops:    int32(binary.LittleEndian.Uint32(r[8:])),
			Gen:     int32(binary.LittleEndian.Uint32(r[12:])),
			Spec:    int32(binary.LittleEndian.Uint32(r[16:])),
			LCSLo:   int32(binary.LittleEndian.Uint32(r[20:])),
			LCSHi:   int32(binary.LittleEndian.Uint32(r[24:])),
			Rsv:     int32(binary.LittleEndian.Uint32(r[28:])),
		}
	}
	return out, nil
}

// sectionCRC is the per-section checksum. Same polynomial as v1/v2 so the
// whole persistence layer shares one failure vocabulary.
func sectionCRC(payload []byte) uint32 { return crc32.ChecksumIEEE(payload) }
