package kb

import (
	"testing"

	"medrelax/internal/ontology"
)

// fixture builds a tiny MED-like KB:
//
//	amoxicillin -treat-> ind1 -hasFinding-> fever
//	amoxicillin -treat-> ind2 -hasFinding-> bronchitis
//	ibuprofen   -treat-> ind3 -hasFinding-> fever
//	ibuprofen   -cause-> risk1 -hasFinding-> renal impairment
func fixture(t *testing.T) *Store {
	t.Helper()
	o := ontology.New()
	for _, c := range []ontology.Concept{
		{Name: "Drug"}, {Name: "Indication"}, {Name: "Risk"}, {Name: "Finding"},
	} {
		if err := o.AddConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []ontology.Relationship{
		{Name: "treat", Domain: "Drug", Range: "Indication"},
		{Name: "cause", Domain: "Drug", Range: "Risk"},
		{Name: "hasFinding", Domain: "Indication", Range: "Finding"},
		{Name: "hasFinding", Domain: "Risk", Range: "Finding"},
	} {
		if err := o.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	s := NewStore(o)
	instances := []Instance{
		{ID: 1, Concept: "Drug", Name: "amoxicillin"},
		{ID: 2, Concept: "Drug", Name: "ibuprofen"},
		{ID: 3, Concept: "Indication", Name: "ind1"},
		{ID: 4, Concept: "Indication", Name: "ind2"},
		{ID: 5, Concept: "Indication", Name: "ind3"},
		{ID: 6, Concept: "Risk", Name: "risk1"},
		{ID: 7, Concept: "Finding", Name: "fever"},
		{ID: 8, Concept: "Finding", Name: "bronchitis"},
		{ID: 9, Concept: "Finding", Name: "renal impairment"},
	}
	for _, inst := range instances {
		if err := s.AddInstance(inst); err != nil {
			t.Fatal(err)
		}
	}
	assertions := []Assertion{
		{Subject: 1, Relationship: "treat", Object: 3},
		{Subject: 1, Relationship: "treat", Object: 4},
		{Subject: 2, Relationship: "treat", Object: 5},
		{Subject: 2, Relationship: "cause", Object: 6},
		{Subject: 3, Relationship: "hasFinding", Object: 7},
		{Subject: 4, Relationship: "hasFinding", Object: 8},
		{Subject: 5, Relationship: "hasFinding", Object: 7},
		{Subject: 6, Relationship: "hasFinding", Object: 9},
	}
	for _, a := range assertions {
		if err := s.AddAssertion(a); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestAddInstanceErrors(t *testing.T) {
	o := ontology.New()
	if err := o.AddConcept(ontology.Concept{Name: "Drug"}); err != nil {
		t.Fatal(err)
	}
	s := NewStore(o)
	if err := s.AddInstance(Instance{ID: 1, Concept: "Drug", Name: ""}); err == nil {
		t.Error("empty name must be rejected")
	}
	if err := s.AddInstance(Instance{ID: 1, Concept: "Nope", Name: "x"}); err == nil {
		t.Error("unknown concept must be rejected")
	}
	if err := s.AddInstance(Instance{ID: 1, Concept: "Drug", Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddInstance(Instance{ID: 1, Concept: "Drug", Name: "y"}); err == nil {
		t.Error("duplicate id must be rejected")
	}
}

func TestAddAssertionValidation(t *testing.T) {
	s := fixture(t)
	// Unknown endpoints.
	if err := s.AddAssertion(Assertion{Subject: 99, Relationship: "treat", Object: 3}); err == nil {
		t.Error("unknown subject must be rejected")
	}
	if err := s.AddAssertion(Assertion{Subject: 1, Relationship: "treat", Object: 99}); err == nil {
		t.Error("unknown object must be rejected")
	}
	// Domain/range violation: Drug -treat-> Finding is not declared.
	if err := s.AddAssertion(Assertion{Subject: 1, Relationship: "treat", Object: 7}); err == nil {
		t.Error("range violation must be rejected")
	}
	// Unknown relationship.
	if err := s.AddAssertion(Assertion{Subject: 1, Relationship: "nope", Object: 3}); err == nil {
		t.Error("unknown relationship must be rejected")
	}
}

func TestLookupName(t *testing.T) {
	s := fixture(t)
	ids := s.LookupName("  Renal   Impairment ")
	if len(ids) != 1 || ids[0] != 9 {
		t.Errorf("LookupName = %v, want [9]", ids)
	}
	if got := s.LookupName("pertussis"); len(got) != 0 {
		t.Errorf("LookupName(pertussis) = %v", got)
	}
}

func TestInstancesOf(t *testing.T) {
	s := fixture(t)
	drugs := s.InstancesOf("Drug")
	if len(drugs) != 2 || drugs[0] != 1 || drugs[1] != 2 {
		t.Errorf("InstancesOf(Drug) = %v", drugs)
	}
	if len(s.InstancesOf("Risk")) != 1 {
		t.Error("InstancesOf(Risk) wrong")
	}
	if s.Len() != 9 {
		t.Errorf("Len = %d, want 9", s.Len())
	}
}

func TestSubjectsObjects(t *testing.T) {
	s := fixture(t)
	// Which indications have finding fever (7)?
	subs := s.Subjects("hasFinding", 7)
	if len(subs) != 2 || subs[0] != 3 || subs[1] != 5 {
		t.Errorf("Subjects(hasFinding, fever) = %v", subs)
	}
	// Objects of amoxicillin's treat.
	objs := s.Objects("treat", 1)
	if len(objs) != 2 || objs[0] != 3 || objs[1] != 4 {
		t.Errorf("Objects(treat, amoxicillin) = %v", objs)
	}
	// Relationship filter applies.
	if len(s.Subjects("cause", 7)) != 0 {
		t.Error("cause has no edge into fever")
	}
}

func TestPathQuery(t *testing.T) {
	s := fixture(t)
	// Which drugs treat fever: Drug -treat-> Indication -hasFinding-> fever.
	drugs := s.PathQuery([]string{"treat", "hasFinding"}, 7)
	if len(drugs) != 2 || drugs[0] != 1 || drugs[1] != 2 {
		t.Errorf("drugs treating fever = %v, want [1 2]", drugs)
	}
	// Which drugs cause renal impairment.
	drugs = s.PathQuery([]string{"cause", "hasFinding"}, 9)
	if len(drugs) != 1 || drugs[0] != 2 {
		t.Errorf("drugs causing renal impairment = %v, want [2]", drugs)
	}
	// No drug causes fever.
	if got := s.PathQuery([]string{"cause", "hasFinding"}, 7); len(got) != 0 {
		t.Errorf("drugs causing fever = %v, want none", got)
	}
	// Empty chain returns the terminal itself.
	if got := s.PathQuery(nil, 7); len(got) != 1 || got[0] != 7 {
		t.Errorf("empty chain = %v", got)
	}
}

func TestAnswerContext(t *testing.T) {
	s := fixture(t)
	ctx := ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	got := s.AnswerContext(ctx, 7)
	if len(got) != 2 {
		t.Errorf("AnswerContext = %v", got)
	}
}

func TestAllInstancesSorted(t *testing.T) {
	s := fixture(t)
	all := s.AllInstances()
	if len(all) != 9 {
		t.Fatalf("AllInstances len = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatal("AllInstances not sorted")
		}
	}
}

func TestLexiconKeys(t *testing.T) {
	s := fixture(t)
	keys := s.LexiconKeys()
	if len(keys) != 9 {
		t.Errorf("LexiconKeys len = %d, want 9", len(keys))
	}
	ids := s.IDsForLexiconKey("fever")
	if len(ids) != 1 || ids[0] != 7 {
		t.Errorf("IDsForLexiconKey(fever) = %v", ids)
	}
}
