// Package kb implements the instance store (ABox) of the medical knowledge
// base: concept-typed instances, a normalized-name lexicon, and relationship
// assertions between instances that query answering runs over.
//
// The store corresponds to the "Instances (data)" box of the paper's
// Figure 3: instances such as "fever" or "renal impairment" typed by domain
// ontology concepts such as "Finding", plus edges such as
// (amoxicillin) -treat-> (bronchitis indication) -hasFinding-> (bronchitis).
package kb

import (
	"fmt"
	"sort"

	"medrelax/internal/ontology"
	"medrelax/internal/stringutil"
)

// InstanceID identifies an instance in the store.
type InstanceID int64

// Instance is a data value of the KB: a surface name typed by a domain
// ontology concept.
type Instance struct {
	ID      InstanceID
	Concept string
	Name    string
}

// Assertion is a relationship edge between two instances, e.g.
// (drug:amoxicillin) -treat-> (indication:I-17).
type Assertion struct {
	Subject      InstanceID
	Relationship string
	Object       InstanceID
}

// Store is a mutable instance store bound to a domain ontology. The zero
// value is not usable; call NewStore.
type Store struct {
	onto      *ontology.Ontology
	instances map[InstanceID]Instance
	byConcept map[string][]InstanceID
	lexicon   map[string][]InstanceID // normalized name -> ids
	// assertion indexes
	bySubject map[InstanceID][]Assertion
	byObject  map[InstanceID][]Assertion
	count     int

	// flat, when set, backs the store with read-only flat-bundle sections
	// (usually a memory mapping) instead of the maps above; see
	// NewFlatStore. Mutating methods fail on a flat store.
	flat *flatStore
}

// errFlatMutate is returned by every mutating method on a flat-backed store.
var errFlatMutate = fmt.Errorf("kb: store is a read-only flat snapshot view")

// NewStore returns an empty store validating instance types and assertion
// relationships against onto.
func NewStore(onto *ontology.Ontology) *Store {
	return NewStoreSized(onto, 0)
}

// NewStoreSized returns an empty store with capacity hints for n
// instances, so bulk loads avoid rehashing while they insert.
func NewStoreSized(onto *ontology.Ontology, n int) *Store {
	return &Store{
		onto:      onto,
		instances: make(map[InstanceID]Instance, n),
		byConcept: make(map[string][]InstanceID),
		lexicon:   make(map[string][]InstanceID, n),
		bySubject: make(map[InstanceID][]Assertion, n),
		byObject:  make(map[InstanceID][]Assertion, n),
	}
}

// Ontology returns the domain ontology this store is bound to.
func (s *Store) Ontology() *ontology.Ontology { return s.onto }

// AddInstance inserts an instance; its concept must exist in the ontology.
func (s *Store) AddInstance(inst Instance) error {
	if s.flat != nil {
		return errFlatMutate
	}
	if inst.Name == "" {
		return fmt.Errorf("kb: instance %d has empty name", inst.ID)
	}
	if !s.onto.HasConcept(inst.Concept) {
		return fmt.Errorf("kb: instance %d has unknown concept %q", inst.ID, inst.Concept)
	}
	if _, ok := s.instances[inst.ID]; ok {
		return fmt.Errorf("kb: duplicate instance id %d", inst.ID)
	}
	s.instances[inst.ID] = inst
	s.byConcept[inst.Concept] = append(s.byConcept[inst.Concept], inst.ID)
	key := stringutil.Normalize(inst.Name)
	if key != "" {
		s.lexicon[key] = append(s.lexicon[key], inst.ID)
	}
	s.count++
	return nil
}

// AddAssertion inserts a relationship edge. Both endpoints must exist, and
// the relationship must be declared in the ontology with compatible
// domain/range for the endpoint concepts.
func (s *Store) AddAssertion(a Assertion) error {
	if s.flat != nil {
		return errFlatMutate
	}
	sub, ok := s.instances[a.Subject]
	if !ok {
		return fmt.Errorf("kb: assertion subject %d not found", a.Subject)
	}
	obj, ok := s.instances[a.Object]
	if !ok {
		return fmt.Errorf("kb: assertion object %d not found", a.Object)
	}
	compatible := false
	for _, r := range s.onto.RelationshipsNamed(a.Relationship) {
		if s.onto.IsSubConceptOf(sub.Concept, r.Domain) && s.onto.IsSubConceptOf(obj.Concept, r.Range) {
			compatible = true
			break
		}
	}
	if !compatible {
		return fmt.Errorf("kb: assertion %s(%s,%s) violates ontology domain/range",
			a.Relationship, sub.Concept, obj.Concept)
	}
	s.bySubject[a.Subject] = append(s.bySubject[a.Subject], a)
	s.byObject[a.Object] = append(s.byObject[a.Object], a)
	return nil
}

// Instance returns the instance with the given ID.
func (s *Store) Instance(id InstanceID) (Instance, bool) {
	if s.flat != nil {
		return s.flat.instance(id)
	}
	inst, ok := s.instances[id]
	return inst, ok
}

// Len returns the number of instances.
func (s *Store) Len() int { return s.count }

// InstancesOf returns the IDs of all instances of the exact concept,
// sorted.
func (s *Store) InstancesOf(concept string) []InstanceID {
	if s.flat != nil {
		// Stored ascending per concept, so the span only needs copying.
		span := keySpan(s.flat.conKeys, s.flat.conOff, s.flat.conIDs, concept)
		out := make([]InstanceID, len(span))
		copy(out, span)
		return out
	}
	ids := s.byConcept[concept]
	out := make([]InstanceID, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllInstances returns every instance, sorted by ID.
func (s *Store) AllInstances() []Instance {
	if s.flat != nil {
		return s.flat.allInstances()
	}
	out := make([]Instance, 0, len(s.instances))
	for _, inst := range s.instances {
		out = append(out, inst)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LookupName returns the instances whose name normalizes to the same form
// as name, sorted by ID.
func (s *Store) LookupName(name string) []InstanceID {
	if s.flat != nil {
		return s.flat.lookupName(name)
	}
	ids := s.lexicon[stringutil.Normalize(name)]
	out := make([]InstanceID, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LexiconKeys returns every normalized instance name. Order unspecified.
func (s *Store) LexiconKeys() []string {
	if s.flat != nil {
		keys := make([]string, len(s.flat.lexKeys))
		copy(keys, s.flat.lexKeys)
		return keys
	}
	keys := make([]string, 0, len(s.lexicon))
	for k := range s.lexicon {
		keys = append(keys, k)
	}
	return keys
}

// IDsForLexiconKey returns instance IDs indexed under an already-normalized
// key.
func (s *Store) IDsForLexiconKey(key string) []InstanceID {
	if s.flat != nil {
		span := keySpan(s.flat.lexKeys, s.flat.lexOff, s.flat.lexIDs, key)
		out := make([]InstanceID, len(span))
		copy(out, span)
		return out
	}
	ids := s.lexicon[key]
	out := make([]InstanceID, len(ids))
	copy(out, ids)
	return out
}

// AllAssertions returns every assertion, sorted by (subject, relationship,
// object) for determinism.
func (s *Store) AllAssertions() []Assertion {
	if s.flat != nil {
		return s.flat.allAssertions()
	}
	var out []Assertion
	for _, as := range s.bySubject {
		out = append(out, as...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Relationship != b.Relationship {
			return a.Relationship < b.Relationship
		}
		return a.Object < b.Object
	})
	return out
}

// Subjects returns the subjects of all assertions with the given
// relationship whose object is obj, sorted. This answers queries such as
// "which indications have finding F".
func (s *Store) Subjects(relationship string, obj InstanceID) []InstanceID {
	if s.flat != nil {
		return s.flat.subjects(relationship, obj)
	}
	var out []InstanceID
	for _, a := range s.byObject[obj] {
		if a.Relationship == relationship {
			out = append(out, a.Subject)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Objects returns the objects of all assertions with the given relationship
// whose subject is sub, sorted.
func (s *Store) Objects(relationship string, sub InstanceID) []InstanceID {
	if s.flat != nil {
		return s.flat.objects(relationship, sub)
	}
	var out []InstanceID
	for _, a := range s.bySubject[sub] {
		if a.Relationship == relationship {
			out = append(out, a.Object)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PathQuery walks a chain of relationships backwards from a terminal
// instance: given relationships [r1, r2] and instance x, it returns all
// subjects s such that s -r1-> m -r2-> x for some m. This implements the
// Drug-treat-Indication-hasFinding-Finding style query shapes of the
// paper's examples ("which drugs treat fever": walk hasFinding then treat
// backwards from the finding instance).
func (s *Store) PathQuery(relationships []string, terminal InstanceID) []InstanceID {
	frontier := map[InstanceID]bool{terminal: true}
	for i := len(relationships) - 1; i >= 0; i-- {
		rel := relationships[i]
		next := map[InstanceID]bool{}
		for id := range frontier {
			for _, sub := range s.Subjects(rel, id) {
				next[sub] = true
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	out := make([]InstanceID, 0, len(frontier))
	for id := range frontier {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AnswerContext answers a query in a given context for a terminal instance:
// it finds the instances of the context's domain concept connected to the
// terminal through the context relationship, then — when the context's
// domain is itself the range of further relationships (e.g. Indication is
// the range of Drug-treat-Indication) — the caller can walk further with
// PathQuery. AnswerContext itself performs the single hop of the context.
func (s *Store) AnswerContext(ctx ontology.Context, terminal InstanceID) []InstanceID {
	return s.Subjects(ctx.Relationship, terminal)
}
