package kb

import (
	"fmt"
	"sort"

	"medrelax/internal/ontology"
	"medrelax/internal/stringutil"
)

// flatStore is a read-only store backing built from the flat (v4) bundle
// sections. Instances live in parallel ascending-ID slices, the lexicon and
// by-concept indexes are sorted-key CSR spans, and assertions are three
// parallel columns sorted by (subject, relationship, object) with a stored
// permutation providing the by-object order — so the whole ABox is served
// by binary search over slices that usually alias a memory mapping.
type flatStore struct {
	ids      []InstanceID // ascending
	concepts []string     // one per instance
	names    []string     // one per instance

	lexKeys []string // sorted normalized names
	lexOff  []int32  // len(lexKeys)+1, CSR into lexIDs
	lexIDs  []InstanceID

	conKeys []string     // sorted concept names that have instances
	conOff  []int32      // len(conKeys)+1, CSR into conIDs
	conIDs  []InstanceID // ascending within each concept span

	relNames  []string     // distinct relationship names
	aSub      []InstanceID // assertion columns, sorted by (sub, rel name, obj)
	aRel      []int32      // index into relNames
	aObj      []InstanceID
	byObjPerm []int32 // assertion order sorted by (obj, rel name, sub)
}

// FlatStoreData carries the decoded flat-bundle sections into NewFlatStore.
// Slices may alias a memory mapping; the store never mutates them.
type FlatStoreData struct {
	IDs      []InstanceID // ascending
	Concepts []string
	Names    []string

	LexKeys []string // sorted ascending, unique
	LexOff  []int32  // len(LexKeys)+1
	LexIDs  []InstanceID

	ConceptKeys []string // sorted ascending, unique
	ConceptOff  []int32  // len(ConceptKeys)+1
	ConceptIDs  []InstanceID

	RelNames  []string
	ASub      []InstanceID // sorted by (ASub, RelNames[ARel], AObj)
	ARel      []int32
	AObj      []InstanceID
	ByObjPerm []int32 // permutation of [0,len(ASub)) in (obj, rel, sub) order
}

// NewFlatStore wraps flat-bundle sections in a read-only *Store bound to
// onto. It re-validates the invariants AddInstance/AddAssertion enforce
// piecewise — known concepts, ontology-compatible assertions, sorted
// columns, a genuine by-object permutation — so a corrupted bundle is
// rejected rather than served. Mutating methods on the returned store fail.
func NewFlatStore(onto *ontology.Ontology, d FlatStoreData) (*Store, error) {
	n := len(d.IDs)
	if len(d.Concepts) != n || len(d.Names) != n {
		return nil, fmt.Errorf("kb: flat store: %d ids, %d concepts, %d names", n, len(d.Concepts), len(d.Names))
	}
	for i := 0; i < n; i++ {
		if i > 0 && d.IDs[i] <= d.IDs[i-1] {
			return nil, fmt.Errorf("kb: flat store: instance ids not strictly ascending at %d", i)
		}
		if d.Names[i] == "" {
			return nil, fmt.Errorf("kb: instance %d has empty name", d.IDs[i])
		}
		if !onto.HasConcept(d.Concepts[i]) {
			return nil, fmt.Errorf("kb: instance %d has unknown concept %q", d.IDs[i], d.Concepts[i])
		}
	}
	f := &flatStore{
		ids: d.IDs, concepts: d.Concepts, names: d.Names,
		lexKeys: d.LexKeys, lexOff: d.LexOff, lexIDs: d.LexIDs,
		conKeys: d.ConceptKeys, conOff: d.ConceptOff, conIDs: d.ConceptIDs,
		relNames: d.RelNames, aSub: d.ASub, aRel: d.ARel, aObj: d.AObj,
		byObjPerm: d.ByObjPerm,
	}
	if err := f.checkIndex("lexicon", d.LexKeys, d.LexOff, d.LexIDs); err != nil {
		return nil, err
	}
	if err := f.checkIndex("by-concept", d.ConceptKeys, d.ConceptOff, d.ConceptIDs); err != nil {
		return nil, err
	}
	if err := f.checkAssertions(onto); err != nil {
		return nil, err
	}
	return &Store{onto: onto, flat: f, count: n}, nil
}

// checkIndex validates one sorted-key CSR index: ascending unique keys,
// monotonic offsets bounded by the ID pool, and IDs that exist.
func (f *flatStore) checkIndex(what string, keys []string, off []int32, pool []InstanceID) error {
	if len(off) != len(keys)+1 {
		return fmt.Errorf("kb: flat store: %s offsets have length %d, want %d", what, len(off), len(keys)+1)
	}
	if len(off) > 0 && (off[0] != 0 || int(off[len(off)-1]) != len(pool)) {
		return fmt.Errorf("kb: flat store: %s offsets do not span the id pool", what)
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("kb: flat store: %s offsets decrease at %d", what, i)
		}
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return fmt.Errorf("kb: flat store: %s keys not strictly ascending at %d", what, i)
		}
	}
	for _, id := range pool {
		if _, ok := f.instance(id); !ok {
			return fmt.Errorf("kb: flat store: %s references unknown instance %d", what, id)
		}
	}
	return nil
}

// checkAssertions validates the assertion columns: equal lengths, known
// endpoints and relationship indexes, ontology domain/range compatibility,
// (sub, rel, obj) sort order, and that byObjPerm is a permutation in
// (obj, rel, sub) order.
func (f *flatStore) checkAssertions(onto *ontology.Ontology) error {
	a := len(f.aSub)
	if len(f.aRel) != a || len(f.aObj) != a || len(f.byObjPerm) != a {
		return fmt.Errorf("kb: flat store: assertion columns disagree: %d/%d/%d/%d",
			a, len(f.aRel), len(f.aObj), len(f.byObjPerm))
	}
	// Compatibility is per (relationship, subject concept, object concept);
	// memoizing on the relationship index keeps this O(A) map lookups.
	type pair struct {
		rel      int32
		sub, obj string
	}
	okCache := make(map[pair]bool)
	for i := 0; i < a; i++ {
		if f.aRel[i] < 0 || int(f.aRel[i]) >= len(f.relNames) {
			return fmt.Errorf("kb: flat store: assertion %d has relationship index %d of %d", i, f.aRel[i], len(f.relNames))
		}
		sub, ok := f.instance(f.aSub[i])
		if !ok {
			return fmt.Errorf("kb: assertion subject %d not found", f.aSub[i])
		}
		obj, ok := f.instance(f.aObj[i])
		if !ok {
			return fmt.Errorf("kb: assertion object %d not found", f.aObj[i])
		}
		p := pair{rel: f.aRel[i], sub: sub.Concept, obj: obj.Concept}
		compatible, seen := okCache[p]
		if !seen {
			rel := f.relNames[f.aRel[i]]
			for _, r := range onto.RelationshipsNamed(rel) {
				if onto.IsSubConceptOf(sub.Concept, r.Domain) && onto.IsSubConceptOf(obj.Concept, r.Range) {
					compatible = true
					break
				}
			}
			okCache[p] = compatible
		}
		if !compatible {
			return fmt.Errorf("kb: assertion %s(%s,%s) violates ontology domain/range",
				f.relNames[f.aRel[i]], sub.Concept, obj.Concept)
		}
		if i > 0 && f.assertLess(i, i-1) {
			return fmt.Errorf("kb: flat store: assertions not sorted at %d", i)
		}
	}
	seenPerm := make([]bool, a)
	for i, p := range f.byObjPerm {
		if p < 0 || int(p) >= a || seenPerm[p] {
			return fmt.Errorf("kb: flat store: by-object permutation invalid at %d", i)
		}
		seenPerm[p] = true
		if i > 0 && f.objLess(p, f.byObjPerm[i-1]) {
			return fmt.Errorf("kb: flat store: by-object permutation not sorted at %d", i)
		}
	}
	return nil
}

// assertLess orders assertion rows by (subject, relationship name, object).
func (f *flatStore) assertLess(i, j int) bool {
	if f.aSub[i] != f.aSub[j] {
		return f.aSub[i] < f.aSub[j]
	}
	ri, rj := f.relNames[f.aRel[i]], f.relNames[f.aRel[j]]
	if ri != rj {
		return ri < rj
	}
	return f.aObj[i] < f.aObj[j]
}

// objLess orders assertion rows by (object, relationship name, subject).
func (f *flatStore) objLess(i, j int32) bool {
	if f.aObj[i] != f.aObj[j] {
		return f.aObj[i] < f.aObj[j]
	}
	ri, rj := f.relNames[f.aRel[i]], f.relNames[f.aRel[j]]
	if ri != rj {
		return ri < rj
	}
	return f.aSub[i] < f.aSub[j]
}

// pos maps an InstanceID to its slice position by binary search.
func (f *flatStore) pos(id InstanceID) (int, bool) {
	lo, hi := 0, len(f.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(f.ids) && f.ids[lo] == id {
		return lo, true
	}
	return 0, false
}

func (f *flatStore) instance(id InstanceID) (Instance, bool) {
	i, ok := f.pos(id)
	if !ok {
		return Instance{}, false
	}
	return Instance{ID: id, Concept: f.concepts[i], Name: f.names[i]}, true
}

// keySpan binary-searches a sorted key index and returns its ID span.
func keySpan(keys []string, off []int32, pool []InstanceID, key string) []InstanceID {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(keys) || keys[lo] != key {
		return nil
	}
	return pool[off[lo]:off[lo+1]]
}

func (f *flatStore) allInstances() []Instance {
	out := make([]Instance, len(f.ids))
	for i, id := range f.ids {
		out[i] = Instance{ID: id, Concept: f.concepts[i], Name: f.names[i]}
	}
	return out
}

func (f *flatStore) allAssertions() []Assertion {
	out := make([]Assertion, len(f.aSub))
	for i := range f.aSub {
		out[i] = Assertion{Subject: f.aSub[i], Relationship: f.relNames[f.aRel[i]], Object: f.aObj[i]}
	}
	return out
}

// subjects collects the subjects of rel-assertions on obj from the
// by-object permutation span; within one object the permutation is ordered
// by (rel, sub), so the filtered output is already sorted.
func (f *flatStore) subjects(rel string, obj InstanceID) []InstanceID {
	lo := sort.Search(len(f.byObjPerm), func(i int) bool { return f.aObj[f.byObjPerm[i]] >= obj })
	var out []InstanceID
	for ; lo < len(f.byObjPerm); lo++ {
		p := f.byObjPerm[lo]
		if f.aObj[p] != obj {
			break
		}
		if f.relNames[f.aRel[p]] == rel {
			out = append(out, f.aSub[p])
		}
	}
	return out
}

// objects collects the objects of rel-assertions from sub's column span;
// within one subject the columns are ordered by (rel, obj).
func (f *flatStore) objects(rel string, sub InstanceID) []InstanceID {
	lo := sort.Search(len(f.aSub), func(i int) bool { return f.aSub[i] >= sub })
	var out []InstanceID
	for ; lo < len(f.aSub); lo++ {
		if f.aSub[lo] != sub {
			break
		}
		if f.relNames[f.aRel[lo]] == rel {
			out = append(out, f.aObj[lo])
		}
	}
	return out
}

func (f *flatStore) lookupName(name string) []InstanceID {
	span := keySpan(f.lexKeys, f.lexOff, f.lexIDs, stringutil.Normalize(name))
	out := make([]InstanceID, len(span))
	copy(out, span)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
