// Package retry is the one client-side answer to admission control,
// shared by every HTTP client in the system (cmd/loadgen, cmd/chaos, the
// kbrouter replica client): capped exponential backoff with deterministic
// jitter that never sleeps less than the server's Retry-After hint. The
// serving layer promises well-formed shed signals (429/503 + Retry-After);
// this package is the matching promise that clients back off instead of
// hammering.
package retry

import (
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Policy is a capped jittered exponential backoff. MaxRetries 0 disables
// retrying; the zero value of the other fields falls back to Default's.
type Policy struct {
	// MaxRetries bounds the retries spent per request (attempts - 1).
	MaxRetries int
	// Base is the exponential step for attempt 0; it doubles per attempt.
	Base time.Duration
	// Cap bounds the exponential step (before the Retry-After floor).
	Cap time.Duration
}

// Default is the policy loadgen has always shipped: two retries, 50ms
// base, 2s cap — enough to ride out a shed burst without turning a dead
// server into a minutes-long stall.
func Default() Policy {
	return Policy{MaxRetries: 2, Base: 50 * time.Millisecond, Cap: 2 * time.Second}
}

// Wait computes the sleep before retry number attempt (0-based): half the
// capped exponential step plus jitter up to the other half, raised to the
// server's Retry-After hint when that is longer. A nil rng draws jitter
// from the global locked source (safe for concurrent callers); passing a
// seeded rng makes the schedule deterministic, the way the benchmark and
// chaos harnesses want it.
func (p Policy) Wait(attempt int, retryAfter time.Duration, rng *rand.Rand) time.Duration {
	base, cap := p.Base, p.Cap
	if base <= 0 {
		base = Default().Base
	}
	if cap <= 0 {
		cap = Default().Cap
	}
	d := base << attempt
	if d > cap || d <= 0 {
		d = cap
	}
	jitter := int64(d / 2)
	var j time.Duration
	if jitter > 0 {
		if rng != nil {
			j = time.Duration(rng.Int63n(jitter + 1))
		} else {
			j = time.Duration(rand.Int63n(jitter + 1))
		}
	}
	w := d/2 + j
	if retryAfter > w {
		w = retryAfter
	}
	return w
}

// RetryableStatus says whether a response status is worth retrying: the
// two explicit back-off-and-retry signals the serving layer emits (shed
// and transient-fault).
func RetryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// maxAfter caps the hint a server can impose through Retry-After. It
// bounds both forms: a huge-but-valid delay-seconds value would overflow
// time.Duration's int64 nanoseconds when multiplied out, and a far-future
// HTTP-date would stall a client for days on one header.
const maxAfter = 24 * time.Hour

// After reads a Retry-After header in either RFC 9110 form —
// delay-seconds ("120") or an absolute HTTP-date ("Wed, 21 Oct 2026
// 07:28:00 GMT") — returning how long the server asked the client to
// wait, capped at 24h. Absent, malformed, negative, and already-elapsed
// values are all 0: the client falls back to its own backoff schedule
// rather than guessing at the server's intent.
func After(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		if secs > int(maxAfter/time.Second) {
			return maxAfter
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		d := time.Until(at)
		if d < 0 {
			return 0
		}
		if d > maxAfter {
			return maxAfter
		}
		return d
	}
	return 0
}
