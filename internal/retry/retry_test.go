package retry

import (
	"math/rand"
	"net/http"
	"testing"
	"time"
)

func TestWaitBounds(t *testing.T) {
	p := Policy{MaxRetries: 5, Base: 50 * time.Millisecond, Cap: 2 * time.Second}
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 12; attempt++ {
		step := p.Base << attempt
		if step > p.Cap || step <= 0 {
			step = p.Cap
		}
		for i := 0; i < 200; i++ {
			w := p.Wait(attempt, 0, rng)
			if w < step/2 || w > step {
				t.Fatalf("attempt %d: wait %v outside [%v, %v]", attempt, w, step/2, step)
			}
		}
	}
}

func TestWaitIsCapped(t *testing.T) {
	p := Policy{MaxRetries: 10, Base: time.Second, Cap: 4 * time.Second}
	rng := rand.New(rand.NewSource(2))
	// Far past the cap — including shift overflow territory.
	for _, attempt := range []int{5, 30, 62, 63, 64, 100} {
		w := p.Wait(attempt, 0, rng)
		if w > p.Cap {
			t.Errorf("attempt %d: wait %v exceeds cap %v", attempt, w, p.Cap)
		}
		if w < p.Cap/2 {
			t.Errorf("attempt %d: wait %v below half-cap %v", attempt, w, p.Cap/2)
		}
	}
}

func TestWaitHonorsRetryAfter(t *testing.T) {
	p := Policy{MaxRetries: 2, Base: 10 * time.Millisecond, Cap: 100 * time.Millisecond}
	rng := rand.New(rand.NewSource(3))
	// A hint longer than the whole step must win.
	if w := p.Wait(0, 3*time.Second, rng); w != 3*time.Second {
		t.Errorf("wait %v, want the 3s Retry-After floor", w)
	}
	// A shorter hint must not shrink the backoff.
	if w := p.Wait(3, time.Microsecond, rng); w < 40*time.Millisecond {
		t.Errorf("wait %v collapsed below the exponential schedule", w)
	}
}

func TestWaitDeterministicForSeed(t *testing.T) {
	p := Default()
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for attempt := 0; attempt < 8; attempt++ {
		if wa, wb := p.Wait(attempt, 0, a), p.Wait(attempt, 0, b); wa != wb {
			t.Fatalf("attempt %d: %v vs %v from identical seeds", attempt, wa, wb)
		}
	}
}

func TestWaitZeroValueFallsBack(t *testing.T) {
	var p Policy // zero Base/Cap must not panic or return 0 forever
	w := p.Wait(0, 0, rand.New(rand.NewSource(4)))
	def := Default()
	if w < def.Base/2 || w > def.Cap {
		t.Errorf("zero-value wait %v outside default envelope [%v, %v]", w, def.Base/2, def.Cap)
	}
	// nil rng draws from the global source without panicking.
	if w := p.Wait(1, 0, nil); w <= 0 {
		t.Errorf("nil-rng wait %v, want > 0", w)
	}
}

func TestRetryableStatus(t *testing.T) {
	for code, want := range map[int]bool{
		http.StatusOK:                  false,
		http.StatusBadRequest:          false,
		http.StatusNotFound:            false,
		http.StatusTooManyRequests:     true,
		http.StatusInternalServerError: false,
		http.StatusBadGateway:          false,
		http.StatusServiceUnavailable:  true,
		http.StatusGatewayTimeout:      false,
	} {
		if got := RetryableStatus(code); got != want {
			t.Errorf("RetryableStatus(%d) = %v, want %v", code, got, want)
		}
	}
}

func TestAfter(t *testing.T) {
	for _, tc := range []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"soon", 0},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0}, // HTTP-date in the past: already elapsed
		// Overflow guards: int64-max seconds would wrap when multiplied to
		// nanoseconds, and a value past int range fails to parse entirely
		// (and is no valid HTTP-date either).
		{"9223372036854775807", 24 * time.Hour},
		{"99999999999999999999", 0},
		{"9999999", 24 * time.Hour}, // valid but huge delay-seconds: capped
	} {
		h := http.Header{}
		if tc.header != "" {
			h.Set("Retry-After", tc.header)
		}
		if got := After(h); got != tc.want {
			t.Errorf("After(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

func TestAfterHTTPDate(t *testing.T) {
	h := http.Header{}

	// A future HTTP-date yields roughly the time until it.
	h.Set("Retry-After", time.Now().Add(90*time.Second).UTC().Format(http.TimeFormat))
	if got := After(h); got < 85*time.Second || got > 91*time.Second {
		t.Errorf("future HTTP-date: After = %v, want ~90s", got)
	}

	// A far-future date is capped, not honored literally.
	h.Set("Retry-After", time.Now().Add(1000*time.Hour).UTC().Format(http.TimeFormat))
	if got := After(h); got != 24*time.Hour {
		t.Errorf("far-future HTTP-date: After = %v, want the 24h cap", got)
	}

	// RFC 850 and asctime forms parse too (http.ParseTime tries all three
	// standard layouts).
	h.Set("Retry-After", "Sunday, 06-Nov-94 08:49:37 GMT")
	if got := After(h); got != 0 {
		t.Errorf("past RFC-850 date: After = %v, want 0", got)
	}
}
