package match

import (
	"fmt"
	"sync"
	"testing"

	"medrelax/internal/eks"
)

// TestCombinedConcurrentMap hammers one shared Combined mapper — the exact
// composition the parallel offline phase and the server share — from many
// goroutines under the race detector, pinning the Mapper concurrency
// contract: read-only after construction, identical answers under
// contention.
func TestCombinedConcurrentMap(t *testing.T) {
	g := lexGraph(t)
	enc := trainEncoder(t, g)
	m := NewCombined(NewExact(g), NewEdit(g, 0), NewEmbedding(g, enc, 0), NewLookupService(g))

	// Query mix: exact hits, synonym hits, typos (edit path), phrases
	// (embedding/lookup path), and misses.
	queries := []string{
		"fever", "pyrexia", "feverr", "headache", "cephalalgia",
		"kidney disease", "nephropath", "whooping cough", "bronchitis",
		"pertussis", "no such concept at all", "",
	}
	type answer struct {
		id eks.ConceptID
		ok bool
	}
	want := make([]answer, len(queries))
	for i, q := range queries {
		want[i].id, want[i].ok = m.Map(q)
	}

	const goroutines = 16
	const iters = 200
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qi := (i + w) % len(queries)
				id, ok := m.Map(queries[qi])
				if id != want[qi].id || ok != want[qi].ok {
					select {
					case errs <- fmt.Errorf("goroutine %d: Map(%q) = %d,%v want %d,%v", w, queries[qi], id, ok, want[qi].id, want[qi].ok):
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
