package match

import (
	"testing"

	"medrelax/internal/eks"
)

func TestLookupServiceSearch(t *testing.T) {
	g := lexGraph(t)
	s := NewLookupService(g)

	// Exact phrase ranks first with the top score.
	hits := s.Search("kidney disease", 5)
	if len(hits) == 0 || hits[0].Concept != 4 {
		t.Fatalf("hits = %+v", hits)
	}
	if hits[0].Score <= hits[len(hits)-1].Score && len(hits) > 1 {
		t.Error("hits not ranked")
	}

	// Word-order tolerance: Jaccard matching ignores order.
	hits = s.Search("disease kidney", 3)
	if len(hits) == 0 || hits[0].Concept != 4 {
		t.Errorf("reordered query hits = %+v", hits)
	}

	// Synonyms are searchable.
	hits = s.Search("whooping cough", 3)
	if len(hits) == 0 || hits[0].Concept != 6 {
		t.Errorf("synonym hits = %+v", hits)
	}

	// Prefix search supports incremental typing.
	hits = s.Search("bronchi", 3)
	found := false
	for _, h := range hits {
		if h.Concept == 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("prefix search missed bronchitis: %+v", hits)
	}

	// Empty and degenerate queries.
	if got := s.Search("", 5); got != nil {
		t.Errorf("empty query hits = %+v", got)
	}
	if got := s.Search("fever", 0); got != nil {
		t.Errorf("limit 0 hits = %+v", got)
	}
	if got := s.Search("zzqx", 5); len(got) != 0 {
		t.Errorf("gibberish hits = %+v", got)
	}
}

func TestLookupServiceDeduplicatesConcepts(t *testing.T) {
	g := lexGraph(t)
	s := NewLookupService(g)
	// "pertussis" and its synonym "whooping cough" are the same concept:
	// one hit, not two.
	hits := s.Search("pertussis cough", 10)
	count := 0
	for _, h := range hits {
		if h.Concept == 6 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("concept 6 appears %d times: %+v", count, hits)
	}
}

func TestLookupServiceAsMapper(t *testing.T) {
	g := lexGraph(t)
	s := NewLookupService(g)
	if s.Name() != "LOOKUP" {
		t.Error("name")
	}
	cases := []struct {
		in   string
		want eks.ConceptID
		ok   bool
	}{
		{"fever", 2, true},
		{"disease kidney", 4, true}, // word order
		{"whooping cough", 6, true}, // synonym
		{"completely unrelated gibberish", 0, false},
	}
	for _, c := range cases {
		id, ok := s.Map(c.in)
		if ok != c.ok || (ok && id != c.want) {
			t.Errorf("Map(%q) = %d,%v want %d,%v", c.in, id, ok, c.want, c.ok)
		}
	}
	// Threshold applies.
	s.MinScore = 0.999
	if _, ok := s.Map("disease kidney"); ok {
		t.Error("near-exact must fail under a 0.999 threshold")
	}
	if _, ok := s.Map("kidney disease"); !ok {
		t.Error("exact phrase must clear any threshold below 1")
	}
}

func TestLookupServicePopularityTieBreak(t *testing.T) {
	// Two concepts share a token; the one with more descendants ranks
	// higher on an ambiguous single-token query.
	g := eks.New()
	for _, c := range []eks.Concept{
		{ID: 1, Name: "root"},
		{ID: 10, Name: "chronic pain"},
		{ID: 20, Name: "acute pain"},
		{ID: 30, Name: "chronic pain stage 1"},
	} {
		if err := g.AddConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	_ = g.AddSubsumption(10, 1)
	_ = g.AddSubsumption(20, 1)
	_ = g.AddSubsumption(30, 10)
	_ = g.SetRoot(1)
	s := NewLookupService(g)
	hits := s.Search("pain", 2)
	if len(hits) < 2 {
		t.Fatalf("hits = %+v", hits)
	}
	if hits[0].Concept != 10 {
		t.Errorf("popular concept must rank first: %+v", hits)
	}
}
