package match

import (
	"sort"
	"strings"

	"medrelax/internal/eks"
	"medrelax/internal/stringutil"
)

// LookupService is the "more sophisticated lookup service" the paper notes
// several knowledge sources offer (Section 3: SNOMED CT's browser,
// DrugBank, DBpedia Lookup): a ranked, typo- and word-order-tolerant name
// search over the external knowledge source, usable both as a Mapper and
// as an interactive search backend.
//
// The implementation is an inverted token index with a blended score:
// exact-phrase and synonym hits dominate, then token-overlap (Jaccard)
// with a prefix bonus for the kind of incremental lookups a browser makes,
// and finally a small popularity prior (descendant count) as a tie-breaker
// the way public lookup services rank head entities first.
type LookupService struct {
	graph *eks.Graph
	// byToken maps a token to the normalized name keys containing it.
	byToken map[string][]string
	// keyIDs resolves a name key to its (sorted) concept IDs.
	keyIDs map[string][]eks.ConceptID
	// popularity is a per-concept prior in [0, 1].
	popularity map[eks.ConceptID]float64
	// MinScore is the acceptance threshold for Map. Default 0.5.
	MinScore float64
}

// LookupHit is one ranked search result.
type LookupHit struct {
	Concept eks.ConceptID
	Name    string // the matched surface form (preferred name or synonym)
	Score   float64
}

// NewLookupService indexes the graph's full lexicon.
func NewLookupService(g *eks.Graph) *LookupService {
	s := &LookupService{
		graph:      g,
		byToken:    map[string][]string{},
		keyIDs:     map[string][]eks.ConceptID{},
		popularity: map[eks.ConceptID]float64{},
		MinScore:   0.5,
	}
	keys := g.NameKeys()
	sort.Strings(keys)
	for _, key := range keys {
		ids := g.IDsForNameKey(key)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		s.keyIDs[key] = ids
		seen := map[string]bool{}
		for _, tok := range stringutil.Tokenize(key) {
			if !seen[tok] {
				seen[tok] = true
				s.byToken[tok] = append(s.byToken[tok], key)
			}
		}
	}
	// Popularity prior: log-ish scaling of descendant counts.
	maxDesc := 1
	descs := map[eks.ConceptID]int{}
	for _, id := range g.ConceptIDs() {
		d := g.DescendantCount(id)
		descs[id] = d
		if d > maxDesc {
			maxDesc = d
		}
	}
	for id, d := range descs {
		s.popularity[id] = float64(d) / float64(maxDesc)
	}
	return s
}

// Search returns up to limit ranked hits for a free-text query. An empty
// query returns nil.
func (s *LookupService) Search(query string, limit int) []LookupHit {
	norm := stringutil.Normalize(query)
	if norm == "" || limit <= 0 {
		return nil
	}
	qTokens := stringutil.Tokenize(norm)

	// Candidate keys: any key sharing a token, or containing a token that
	// starts with a query token (prefix search).
	candidates := map[string]bool{}
	for _, qt := range qTokens {
		for _, key := range s.byToken[qt] {
			candidates[key] = true
		}
		// Prefix expansion for the last token (incremental typing).
		if qt == qTokens[len(qTokens)-1] && len(qt) >= 3 {
			for tok, keys := range s.byToken {
				if strings.HasPrefix(tok, qt) {
					for _, key := range keys {
						candidates[key] = true
					}
				}
			}
		}
	}

	var hits []LookupHit
	for key := range candidates {
		score := s.score(norm, qTokens, key)
		if score <= 0 {
			continue
		}
		for _, id := range s.keyIDs[key] {
			hits = append(hits, LookupHit{Concept: id, Name: key, Score: score + 0.05*s.popularity[id]})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		if hits[i].Concept != hits[j].Concept {
			return hits[i].Concept < hits[j].Concept
		}
		return hits[i].Name < hits[j].Name
	})
	// Deduplicate by concept, keeping the best-scoring surface form.
	seen := map[eks.ConceptID]bool{}
	out := make([]LookupHit, 0, limit)
	for _, h := range hits {
		if seen[h.Concept] {
			continue
		}
		seen[h.Concept] = true
		out = append(out, h)
		if len(out) == limit {
			break
		}
	}
	return out
}

// score blends exactness, token overlap and prefix affinity into [0, ~1].
func (s *LookupService) score(norm string, qTokens []string, key string) float64 {
	if key == norm {
		return 1
	}
	jac := stringutil.TokenJaccard(norm, key)
	score := 0.8 * jac
	// Prefix bonus: the key's last token extends the query's last token.
	kTokens := stringutil.Tokenize(key)
	if len(qTokens) > 0 && len(kTokens) > 0 {
		lastQ := qTokens[len(qTokens)-1]
		for _, kt := range kTokens {
			if kt != lastQ && strings.HasPrefix(kt, lastQ) {
				score += 0.15
				break
			}
		}
	}
	if score > 0.99 {
		score = 0.99 // only the exact phrase reaches 1
	}
	return score
}

// Name implements Mapper.
func (s *LookupService) Name() string { return "LOOKUP" }

// Map implements Mapper: the best hit wins when it clears MinScore.
func (s *LookupService) Map(name string) (eks.ConceptID, bool) {
	hits := s.Search(name, 1)
	if len(hits) == 0 || hits[0].Score < s.MinScore {
		return 0, false
	}
	return hits[0].Concept, true
}
