// Package match implements the pluggable instance-to-concept mapping
// methods of the paper (Sections 3, 5.1, 7.2): exact string matching
// (EXACT), approximate string matching under an edit-distance threshold
// (EDIT, τ=2 in the paper's experiments), and embedding-based matching
// (EMBEDDING) using SIF phrase vectors.
//
// The same Mapper is used in both phases: offline, to map every KB
// instance to an external concept (Algorithm 1, line 8), and online, to
// map the incoming query term (Algorithm 2, line 1).
package match

import (
	"sort"

	"medrelax/internal/eks"
	"medrelax/internal/embedding"
	"medrelax/internal/stringutil"
)

// Mapper maps a surface form to an external concept of a fixed graph.
//
// Concurrency contract: Map must be safe for concurrent use once the
// mapper is constructed, as long as the underlying graph is not mutated —
// the parallel offline phase (core.Ingest) hammers one shared Mapper from
// many goroutines, and the server resolves query terms concurrently. All
// mappers in this package satisfy the contract by being strictly read-only
// after construction: they hold no per-call caches or scratch state, every
// Map call allocates its own temporaries. Custom implementations must
// follow the same rule (or lock internally).
type Mapper interface {
	// Map returns the external concept the surface form corresponds to.
	// ok is false when no sufficiently similar concept exists. Map must be
	// deterministic: the same name always yields the same concept.
	Map(name string) (eks.ConceptID, bool)
	// Name identifies the method, e.g. "EXACT".
	Name() string
}

// Exact matches surface forms whose normalized form equals a concept's
// preferred name or synonym. Ambiguous names resolve to the smallest ID
// for determinism.
type Exact struct {
	graph *eks.Graph
}

// NewExact returns an exact matcher over g.
func NewExact(g *eks.Graph) *Exact { return &Exact{graph: g} }

// Name implements Mapper.
func (m *Exact) Name() string { return "EXACT" }

// Map implements Mapper.
func (m *Exact) Map(name string) (eks.ConceptID, bool) {
	ids := m.graph.LookupName(name)
	if len(ids) == 0 {
		return 0, false
	}
	return ids[0], true
}

// Edit matches under a Levenshtein threshold: it first tries an exact
// match, then scans the lexicon for the closest name within the threshold.
// Among equally close names the smallest concept ID wins.
type Edit struct {
	graph     *eks.Graph
	threshold int
	keys      []string // sorted normalized lexicon, cached at construction
}

// DefaultEditThreshold is the τ=2 used in the paper's experiments.
const DefaultEditThreshold = 2

// NewEdit returns an edit-distance matcher over g with the given threshold
// (DefaultEditThreshold when <= 0).
func NewEdit(g *eks.Graph, threshold int) *Edit {
	if threshold <= 0 {
		threshold = DefaultEditThreshold
	}
	keys := g.NameKeys()
	sort.Strings(keys)
	return &Edit{graph: g, threshold: threshold, keys: keys}
}

// Name implements Mapper.
func (m *Edit) Name() string { return "EDIT" }

// Map implements Mapper.
func (m *Edit) Map(name string) (eks.ConceptID, bool) {
	if id, ok := (&Exact{graph: m.graph}).Map(name); ok {
		return id, ok
	}
	norm := stringutil.Normalize(name)
	if norm == "" {
		return 0, false
	}
	bestDist := m.threshold + 1
	var bestID eks.ConceptID
	found := false
	for _, key := range m.keys {
		// Cheap length filter before the banded DP.
		if abs(len(key)-len(norm)) > m.threshold {
			continue
		}
		if !stringutil.LevenshteinWithin(norm, key, bestDist-1) {
			continue
		}
		d := stringutil.Levenshtein(norm, key)
		ids := m.graph.IDsForNameKey(key)
		if len(ids) == 0 {
			continue
		}
		id := minID(ids)
		if d < bestDist || (d == bestDist && id < bestID) {
			bestDist = d
			bestID = id
			found = true
		}
	}
	return bestID, found
}

// Embedding matches by cosine similarity of SIF phrase vectors: exact match
// first, then nearest neighbour over the embedded lexicon, accepted when
// the cosine reaches the threshold.
type Embedding struct {
	graph     *eks.Graph
	encoder   *embedding.SIFEncoder
	index     *embedding.Index
	byKey     map[string]eks.ConceptID
	threshold float64
}

// DefaultEmbeddingThreshold is the acceptance cosine for embedding matches.
// High enough that generic boilerplate phrasings ("presentation consistent
// with ...") do not coast to a match on a single shared token.
const DefaultEmbeddingThreshold = 0.76

// NewEmbedding returns an embedding matcher over g. enc encodes tokenized
// phrases; threshold <= 0 selects DefaultEmbeddingThreshold.
func NewEmbedding(g *eks.Graph, enc *embedding.SIFEncoder, threshold float64) *Embedding {
	if threshold <= 0 {
		threshold = DefaultEmbeddingThreshold
	}
	m := &Embedding{
		graph:     g,
		encoder:   enc,
		byKey:     make(map[string]eks.ConceptID),
		threshold: threshold,
	}
	keys := g.NameKeys()
	sort.Strings(keys)
	// Probe the encoder's dimension with the first non-zero encoding.
	dim := 0
	encoded := make(map[string]embedding.Vector, len(keys))
	for _, key := range keys {
		v := enc.Encode(stringutil.Tokenize(key))
		encoded[key] = v
		if dim == 0 && len(v) > 0 {
			dim = len(v)
		}
	}
	m.index = embedding.NewIndex(dim)
	for _, key := range keys {
		ids := g.IDsForNameKey(key)
		if len(ids) == 0 {
			continue
		}
		m.byKey[key] = minID(ids)
		m.index.Add(key, encoded[key])
	}
	return m
}

// Name implements Mapper.
func (m *Embedding) Name() string { return "EMBEDDING" }

// Map implements Mapper.
func (m *Embedding) Map(name string) (eks.ConceptID, bool) {
	if id, ok := (&Exact{graph: m.graph}).Map(name); ok {
		return id, ok
	}
	q := m.encoder.Encode(stringutil.Tokenize(name))
	hit, ok := m.index.Best(q)
	if !ok || hit.Cosine < m.threshold {
		return 0, false
	}
	return m.byKey[hit.Key], true
}

// Combined tries a sequence of mappers in order and returns the first
// match. The paper's online phase resolves a query term whose name "either
// matches with the exact query term, or is very similar in terms of either
// edit distance or word embeddings" — i.e. exact, then EDIT, then
// EMBEDDING, which is the composition NewCombined(exact, edit, embedding).
type Combined struct {
	mappers []Mapper
}

// NewCombined chains mappers; at least one is required.
func NewCombined(mappers ...Mapper) *Combined {
	return &Combined{mappers: mappers}
}

// Name implements Mapper.
func (m *Combined) Name() string { return "COMBINED" }

// Map implements Mapper.
func (m *Combined) Map(name string) (eks.ConceptID, bool) {
	for _, mp := range m.mappers {
		if id, ok := mp.Map(name); ok {
			return id, ok
		}
	}
	return 0, false
}

func minID(ids []eks.ConceptID) eks.ConceptID {
	best := ids[0]
	for _, id := range ids[1:] {
		if id < best {
			best = id
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
