package match

import (
	"testing"

	"medrelax/internal/eks"
	"medrelax/internal/embedding"
	"medrelax/internal/stringutil"
)

// lexGraph builds a small EKS with names that exercise all three matchers.
func lexGraph(t *testing.T) *eks.Graph {
	t.Helper()
	g := eks.New()
	concepts := []eks.Concept{
		{ID: 1, Name: "clinical finding"},
		{ID: 2, Name: "fever", Synonyms: []string{"pyrexia"}},
		{ID: 3, Name: "headache", Synonyms: []string{"cephalalgia"}},
		{ID: 4, Name: "kidney disease", Synonyms: []string{"nephropathy"}},
		{ID: 5, Name: "bronchitis"},
		{ID: 6, Name: "pertussis", Synonyms: []string{"whooping cough"}},
	}
	for _, c := range concepts {
		if err := g.AddConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []eks.ConceptID{2, 3, 4, 5, 6} {
		if err := g.AddSubsumption(id, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetRoot(1); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExact(t *testing.T) {
	g := lexGraph(t)
	m := NewExact(g)
	if m.Name() != "EXACT" {
		t.Error("name")
	}
	id, ok := m.Map("Fever")
	if !ok || id != 2 {
		t.Errorf("Map(Fever) = %d,%v", id, ok)
	}
	// Synonyms match too.
	id, ok = m.Map("pyrexia")
	if !ok || id != 2 {
		t.Errorf("Map(pyrexia) = %d,%v", id, ok)
	}
	if _, ok := m.Map("feverr"); ok {
		t.Error("typo must not exact-match")
	}
	if _, ok := m.Map(""); ok {
		t.Error("empty must not match")
	}
}

func TestEdit(t *testing.T) {
	g := lexGraph(t)
	m := NewEdit(g, 0) // default τ=2
	if m.Name() != "EDIT" {
		t.Error("name")
	}
	cases := []struct {
		in   string
		want eks.ConceptID
		ok   bool
	}{
		{"fever", 2, true},       // exact
		{"feverr", 2, true},      // distance 1
		{"bronchittis", 5, true}, // distance 1
		{"pertusis", 6, true},    // distance 1
		{"hedache", 3, true},     // distance 1 (headache)
		{"kidny diseas", 4, true},
		{"completely unrelated phrase", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		id, ok := m.Map(c.in)
		if ok != c.ok || (ok && id != c.want) {
			t.Errorf("Map(%q) = %d,%v want %d,%v", c.in, id, ok, c.want, c.ok)
		}
	}
}

func TestEditPrefersCloserMatch(t *testing.T) {
	g := eks.New()
	for _, c := range []eks.Concept{
		{ID: 1, Name: "root"},
		{ID: 10, Name: "cold"},
		{ID: 20, Name: "colds"},
	} {
		if err := g.AddConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	_ = g.AddSubsumption(10, 1)
	_ = g.AddSubsumption(20, 1)
	_ = g.SetRoot(1)
	m := NewEdit(g, 2)
	// "coldz" is distance 1 from both "cold" and "colds": smaller ID wins.
	id, ok := m.Map("coldz")
	if !ok || id != 10 {
		t.Errorf("Map(coldz) = %d,%v, want 10,true", id, ok)
	}
}

// trainEncoder trains a tiny embedding model over a corpus where medical
// synonyms share contexts.
func trainEncoder(t *testing.T, g *eks.Graph) *embedding.SIFEncoder {
	t.Helper()
	var streams [][]string
	template := [][]string{
		{"patient", "presents", "with", "%s", "and", "requires", "treatment"},
		{"the", "doctor", "noted", "%s", "in", "the", "chart", "today"},
		{"symptoms", "of", "%s", "resolved", "after", "therapy"},
		{"chronic", "%s", "was", "managed", "with", "medication"},
	}
	// "renal disease" should embed near "kidney disease" because they share
	// contexts and the token "disease".
	terms := []string{"fever", "headache", "kidney disease", "renal disease",
		"bronchitis", "pertussis", "whooping cough"}
	for _, term := range terms {
		toks := stringutil.Tokenize(term)
		for _, tmpl := range template {
			var s []string
			for _, w := range tmpl {
				if w == "%s" {
					s = append(s, toks...)
				} else {
					s = append(s, w)
				}
			}
			for rep := 0; rep < 5; rep++ {
				streams = append(streams, s)
			}
		}
	}
	model, err := embedding.Train(streams, embedding.Config{Dim: 24, Window: 3, MinCount: 2, Iterations: 40, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var refs [][]string
	for _, key := range g.NameKeys() {
		refs = append(refs, stringutil.Tokenize(key))
	}
	return embedding.NewSIFEncoder(model, 0, refs)
}

func TestEmbedding(t *testing.T) {
	g := lexGraph(t)
	enc := trainEncoder(t, g)
	m := NewEmbedding(g, enc, 0.5)
	if m.Name() != "EMBEDDING" {
		t.Error("name")
	}
	// Exact still matches first.
	id, ok := m.Map("fever")
	if !ok || id != 2 {
		t.Errorf("Map(fever) = %d,%v", id, ok)
	}
	// Paraphrase: "renal disease" ≈ "kidney disease" via shared contexts.
	id, ok = m.Map("renal disease")
	if !ok || id != 4 {
		t.Errorf("Map(renal disease) = %d,%v, want 4,true", id, ok)
	}
	// Fully OOV gibberish must not match.
	if _, ok := m.Map("zzqx vlarp"); ok {
		t.Error("gibberish must not match")
	}
}

func TestEmbeddingThresholdRejects(t *testing.T) {
	g := lexGraph(t)
	enc := trainEncoder(t, g)
	// With an impossible threshold nothing non-exact matches.
	m := NewEmbedding(g, enc, 1.1)
	if _, ok := m.Map("renal disease"); ok {
		t.Error("threshold 1.1 must reject approximate matches")
	}
	if _, ok := m.Map("fever"); !ok {
		t.Error("exact match must bypass the threshold")
	}
}

func TestMapperInterfaceCompliance(t *testing.T) {
	g := lexGraph(t)
	enc := trainEncoder(t, g)
	mappers := []Mapper{NewExact(g), NewEdit(g, 2), NewEmbedding(g, enc, 0)}
	for _, m := range mappers {
		if m.Name() == "" {
			t.Error("mapper must have a name")
		}
		if id, ok := m.Map("fever"); !ok || id != 2 {
			t.Errorf("%s failed the exact case", m.Name())
		}
	}
}

func TestCombined(t *testing.T) {
	g := lexGraph(t)
	enc := trainEncoder(t, g)
	m := NewCombined(NewExact(g), NewEdit(g, 2), NewEmbedding(g, enc, 0.5))
	if m.Name() != "COMBINED" {
		t.Error("name")
	}
	cases := []struct {
		in   string
		want eks.ConceptID
		ok   bool
	}{
		{"fever", 2, true},         // exact
		{"pertusis", 6, true},      // edit
		{"renal disease", 4, true}, // embedding
		{"zzqx vlarp", 0, false},   // nothing
	}
	for _, c := range cases {
		id, ok := m.Map(c.in)
		if ok != c.ok || (ok && id != c.want) {
			t.Errorf("Combined.Map(%q) = %d,%v want %d,%v", c.in, id, ok, c.want, c.ok)
		}
	}
	// Order matters: an exact-only chain cannot do what the full chain does.
	short := NewCombined(NewExact(g))
	if _, ok := short.Map("pertusis"); ok {
		t.Error("exact-only chain must miss typos")
	}
}
