package medkb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"medrelax/internal/eks"
	"medrelax/internal/kb"
	"medrelax/internal/ontology"
	"medrelax/internal/stringutil"
	"medrelax/internal/synthkb"
)

// VariationClass labels how a finding instance's surface name relates to
// its gold external concept. The classes drive the Table 1 experiment.
type VariationClass int

// Variation classes.
const (
	// ClassExact: the instance name is the concept's preferred name or a
	// registered synonym; exact matching suffices.
	ClassExact VariationClass = iota
	// ClassTypo: the name carries 1–2 character edits; approximate string
	// matching (τ=2) suffices.
	ClassTypo
	// ClassParaphrase: the name is a latent surface variant (lexical
	// substitution); only embedding matching can recover it.
	ClassParaphrase
	// ClassNovel: the name is phrased so differently that no mapper is
	// expected to recover it; it bounds recall for every method.
	ClassNovel
)

// String renders the class for reports.
func (c VariationClass) String() string {
	switch c {
	case ClassExact:
		return "exact"
	case ClassTypo:
		return "typo"
	case ClassParaphrase:
		return "paraphrase"
	case ClassNovel:
		return "novel"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Config controls MED generation.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Drugs is the number of drug monograph entries. Default 220.
	Drugs int
	// FindingCoverage is the fraction of the world's finding concepts that
	// get a KB instance. Default 0.55.
	FindingCoverage float64
	// Variation class probabilities; they must sum to <= 1 with the
	// remainder going to ClassExact. Defaults reproduce the Table 1 bands:
	// typo 0.05, paraphrase 0.09, novel 0.03 (=> exact 0.83).
	TypoProb, ParaphraseProb, NovelProb float64
	// IndicationsPerDrug and RisksPerDrug bound the per-drug finding links.
	IndicationsPerDrug, RisksPerDrug int
	// TreatedShare and CausedShare are the target fractions of covered
	// findings that end up with indication/risk data: after the per-drug
	// sampling, findings still lacking data are attached to random drugs
	// until the shares are met. Defaults 0.75 and 0.75. The gap between
	// these shares and 1.0 is what context-aware ranking exploits: a
	// relaxation into a finding no drug treats cannot answer a treatment
	// query.
	TreatedShare, CausedShare float64
}

func (c Config) withDefaults() Config {
	if c.Drugs <= 0 {
		c.Drugs = 220
	}
	if c.FindingCoverage <= 0 {
		c.FindingCoverage = 0.55
	}
	if c.TypoProb <= 0 {
		c.TypoProb = 0.05
	}
	if c.ParaphraseProb <= 0 {
		c.ParaphraseProb = 0.09
	}
	if c.NovelProb <= 0 {
		c.NovelProb = 0.03
	}
	if c.IndicationsPerDrug <= 0 {
		c.IndicationsPerDrug = 5
	}
	if c.RisksPerDrug <= 0 {
		c.RisksPerDrug = 4
	}
	if c.TreatedShare <= 0 {
		c.TreatedShare = 0.75
	}
	if c.CausedShare <= 0 {
		c.CausedShare = 0.75
	}
	return c
}

// MED is the generated knowledge base with its ground truth.
type MED struct {
	Ontology *ontology.Ontology
	Store    *kb.Store
	// Gold maps each finding instance to the external concept it truly
	// denotes — the generator's ground truth for Table 1.
	Gold map[kb.InstanceID]eks.ConceptID
	// Class is the variation class of each finding instance's name.
	Class map[kb.InstanceID]VariationClass
	// FindingInstance maps a covered external concept to its KB finding
	// instance.
	FindingInstance map[eks.ConceptID]kb.InstanceID
	// Treated marks external concepts with indication data (some drug
	// treats them); Caused marks those with risk data.
	Treated map[eks.ConceptID]bool
	Caused  map[eks.ConceptID]bool
	// Popularity is the Zipf weight of each covered concept, shared by the
	// drug-link sampler and the corpus generator so that corpus frequency
	// correlates with how much the KB knows about a finding.
	Popularity map[eks.ConceptID]float64
	// DrugNames lists generated drug instance names in ID order.
	DrugNames []string
}

// Generate builds a MED over a synthkb world.
func Generate(world *synthkb.World, cfg Config) (*MED, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	onto, err := BuildOntology()
	if err != nil {
		return nil, err
	}
	store := kb.NewStore(onto)
	med := &MED{
		Ontology:        onto,
		Store:           store,
		Gold:            map[kb.InstanceID]eks.ConceptID{},
		Class:           map[kb.InstanceID]VariationClass{},
		FindingInstance: map[eks.ConceptID]kb.InstanceID{},
		Treated:         map[eks.ConceptID]bool{},
		Caused:          map[eks.ConceptID]bool{},
		Popularity:      map[eks.ConceptID]float64{},
	}

	// 1. Choose covered findings and assign Zipf popularity.
	covered := sampleFindings(rng, world.Findings, cfg.FindingCoverage)
	for rank, id := range covered {
		med.Popularity[id] = 1 / math.Pow(float64(rank+1), 0.7)
	}

	nextID := kb.InstanceID(1)
	newInstance := func(concept, name string) (kb.InstanceID, error) {
		id := nextID
		nextID++
		if err := store.AddInstance(kb.Instance{ID: id, Concept: concept, Name: name}); err != nil {
			return 0, err
		}
		return id, nil
	}

	// 2. Finding instances with variation-classed names.
	for _, cid := range covered {
		concept, _ := world.Graph.Concept(cid)
		name, class := varyName(rng, cfg, world, cid, concept)
		iid, err := newInstance(ConceptFinding, name)
		if err != nil {
			return nil, err
		}
		med.Gold[iid] = cid
		med.Class[iid] = class
		med.FindingInstance[cid] = iid
	}

	// 3. Drugs with indications and risks. Each drug specializes in one or
	// two body systems, which keeps its findings clinically coherent.
	popList := make([]eks.ConceptID, len(covered))
	copy(popList, covered)
	for d := 0; d < cfg.Drugs; d++ {
		drugName := drugName(rng, d)
		med.DrugNames = append(med.DrugNames, drugName)
		drugID, err := newInstance(ConceptDrug, drugName)
		if err != nil {
			return nil, err
		}
		systems := pickSystems(rng, world, covered)
		indications := samplePopular(rng, popList, med.Popularity, cfg.IndicationsPerDrug, func(id eks.ConceptID) bool {
			return systems[world.Attrs[id].System]
		})
		for _, find := range indications {
			indID, err := newInstance(ConceptIndication, drugName+" indication: "+nameOf(world, find))
			if err != nil {
				return nil, err
			}
			if err := store.AddAssertion(kb.Assertion{Subject: drugID, Relationship: "treat", Object: indID}); err != nil {
				return nil, err
			}
			if err := store.AddAssertion(kb.Assertion{Subject: indID, Relationship: "hasFinding", Object: med.FindingInstance[find]}); err != nil {
				return nil, err
			}
			med.Treated[find] = true
		}
		risks := samplePopular(rng, popList, med.Popularity, cfg.RisksPerDrug, func(id eks.ConceptID) bool {
			// Adverse effects cluster by the drug's systems too; keeping the
			// monograph anatomically coherent is also what real compendia
			// look like.
			return systems[world.Attrs[id].System]
		})
		for _, find := range risks {
			riskID, err := newInstance(ConceptAdverseEffect, drugName+" adverse effect: "+nameOf(world, find))
			if err != nil {
				return nil, err
			}
			if err := store.AddAssertion(kb.Assertion{Subject: drugID, Relationship: "cause", Object: riskID}); err != nil {
				return nil, err
			}
			if err := store.AddAssertion(kb.Assertion{Subject: riskID, Relationship: "hasFinding", Object: med.FindingInstance[find]}); err != nil {
				return nil, err
			}
			med.Caused[find] = true
		}
		if err := addAncillaryData(rng, store, newInstance, drugID, drugName); err != nil {
			return nil, err
		}
	}

	// 4. Coverage boost: attach still-uncovered findings to random drugs
	// until the target treated/caused shares are met.
	drugInstances := store.InstancesOf(ConceptDrug)
	attach := func(find eks.ConceptID, treated bool) error {
		drugID := drugInstances[rng.Intn(len(drugInstances))]
		drug, _ := store.Instance(drugID)
		if treated {
			indID, err := newInstance(ConceptIndication, drug.Name+" indication: "+nameOf(world, find))
			if err != nil {
				return err
			}
			if err := store.AddAssertion(kb.Assertion{Subject: drugID, Relationship: "treat", Object: indID}); err != nil {
				return err
			}
			if err := store.AddAssertion(kb.Assertion{Subject: indID, Relationship: "hasFinding", Object: med.FindingInstance[find]}); err != nil {
				return err
			}
			med.Treated[find] = true
			return nil
		}
		riskID, err := newInstance(ConceptAdverseEffect, drug.Name+" adverse effect: "+nameOf(world, find))
		if err != nil {
			return err
		}
		if err := store.AddAssertion(kb.Assertion{Subject: drugID, Relationship: "cause", Object: riskID}); err != nil {
			return err
		}
		if err := store.AddAssertion(kb.Assertion{Subject: riskID, Relationship: "hasFinding", Object: med.FindingInstance[find]}); err != nil {
			return err
		}
		med.Caused[find] = true
		return nil
	}
	for _, find := range covered {
		if !med.Treated[find] && rng.Float64() < cfg.TreatedShare {
			if err := attach(find, true); err != nil {
				return nil, err
			}
		}
		if !med.Caused[find] && rng.Float64() < cfg.CausedShare {
			if err := attach(find, false); err != nil {
				return nil, err
			}
		}
	}

	// 5. Drug-drug interactions across the whole formulary.
	if err := AddDrugInteractions(rng, store, cfg.Drugs/2); err != nil {
		return nil, err
	}
	return med, nil
}

// sampleFindings picks a deterministic fraction of the findings, shuffled
// by the rng so coverage is not biased toward generation order.
func sampleFindings(rng *rand.Rand, findings []eks.ConceptID, coverage float64) []eks.ConceptID {
	n := int(float64(len(findings)) * coverage)
	if n < 1 {
		n = 1
	}
	if n > len(findings) {
		n = len(findings)
	}
	perm := rng.Perm(len(findings))
	out := make([]eks.ConceptID, 0, n)
	for _, i := range perm[:n] {
		out = append(out, findings[i])
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Shuffle once more for popularity-rank assignment.
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// varyName produces the instance's surface name and its variation class.
// Classes that cannot apply (no latent variant for paraphrase) degrade to
// exact, keeping the generator total and the class labels truthful.
func varyName(rng *rand.Rand, cfg Config, world *synthkb.World, cid eks.ConceptID, concept eks.Concept) (string, VariationClass) {
	r := rng.Float64()
	switch {
	case r < cfg.NovelProb:
		return novelName(concept.Name), ClassNovel
	case r < cfg.NovelProb+cfg.ParaphraseProb:
		if variants := world.Latent[cid]; len(variants) > 0 {
			return variants[rng.Intn(len(variants))], ClassParaphrase
		}
		if alt, ok := paraphraseByLexicon(concept.Name); ok {
			return alt, ClassParaphrase
		}
		return concept.Name, ClassExact
	case r < cfg.NovelProb+cfg.ParaphraseProb+cfg.TypoProb:
		if typo, ok := introduceTypo(rng, concept.Name); ok {
			return typo, ClassTypo
		}
		return concept.Name, ClassExact
	default:
		// Occasionally use a registered synonym — still exact-matchable.
		if len(concept.Synonyms) > 0 && rng.Float64() < 0.2 {
			return concept.Synonyms[rng.Intn(len(concept.Synonyms))], ClassExact
		}
		return concept.Name, ClassExact
	}
}

// paraLexicon are token substitutions available to the paraphrase class
// when a concept has no latent variant. They mirror common clinical
// re-phrasings and also appear in monograph text, so embeddings can learn
// them.
var paraLexicon = map[string]string{
	"infection":     "infectious process",
	"inflammation":  "inflammatory condition",
	"pain":          "discomfort",
	"injury":        "trauma",
	"obstruction":   "blockage",
	"insufficiency": "failure",
	"hemorrhage":    "bleeding",
	"degeneration":  "deterioration",
}

func paraphraseByLexicon(name string) (string, bool) {
	toks := stringutil.Tokenize(name)
	for i, tok := range toks {
		if alt, ok := paraLexicon[tok]; ok {
			out := append(append([]string{}, toks[:i]...), alt)
			out = append(out, toks[i+1:]...)
			return strings.Join(out, " "), true
		}
	}
	return "", false
}

// introduceTypo applies 1–2 random character edits to letter positions; it
// reports false for names too short to corrupt safely or when the edits
// normalize back to the original (e.g. whitespace-only damage).
func introduceTypo(rng *rand.Rand, name string) (string, bool) {
	orig := []rune(name)
	if len(orig) < 6 {
		return "", false
	}
	for attempt := 0; attempt < 8; attempt++ {
		runes := append([]rune(nil), orig...)
		edits := 1 + rng.Intn(2)
		for e := 0; e < edits; e++ {
			pos := letterPos(rng, runes)
			if pos < 0 {
				break
			}
			switch rng.Intn(3) {
			case 0: // deletion
				runes = append(runes[:pos], runes[pos+1:]...)
			case 1: // duplication
				runes = append(runes[:pos+1], runes[pos:]...)
			default: // substitution
				runes[pos] = 'a' + rune(rng.Intn(26))
			}
		}
		typo := string(runes)
		if stringutil.Normalize(typo) != stringutil.Normalize(name) {
			return typo, true
		}
	}
	return "", false
}

// letterPos picks a random interior letter index, or -1 when none exists.
func letterPos(rng *rand.Rand, runes []rune) int {
	for attempt := 0; attempt < 16; attempt++ {
		pos := 1 + rng.Intn(len(runes)-2)
		r := runes[pos]
		if r >= 'a' && r <= 'z' {
			return pos
		}
	}
	return -1
}

// novelName rephrases beyond any matcher's reach by wrapping the head noun
// in boilerplate that shares no rare tokens with the original.
func novelName(name string) string {
	toks := stringutil.Tokenize(name)
	head := toks[len(toks)-1]
	return "presentation consistent with unspecified " + head + " of uncertain etiology"
}

func nameOf(world *synthkb.World, id eks.ConceptID) string {
	c, _ := world.Graph.Concept(id)
	return c.Name
}

// pickSystems selects the body system a drug specializes in.
func pickSystems(rng *rand.Rand, world *synthkb.World, covered []eks.ConceptID) map[string]bool {
	seen := map[string]bool{}
	var systems []string
	for _, id := range covered {
		s := world.Attrs[id].System
		if s != "" && !seen[s] {
			seen[s] = true
			systems = append(systems, s)
		}
	}
	sort.Strings(systems)
	out := map[string]bool{}
	if len(systems) > 0 {
		// One specialty system per drug: keeps each monograph anatomically
		// coherent, which both mirrors real compendia and gives the
		// distributional embeddings a clean system signal.
		out[systems[rng.Intn(len(systems))]] = true
	}
	return out
}

// samplePopular draws up to n distinct concepts weighted by popularity,
// restricted by the filter.
func samplePopular(rng *rand.Rand, ids []eks.ConceptID, pop map[eks.ConceptID]float64, n int, filter func(eks.ConceptID) bool) []eks.ConceptID {
	var candidates []eks.ConceptID
	total := 0.0
	for _, id := range ids {
		if filter(id) {
			candidates = append(candidates, id)
			total += pop[id]
		}
	}
	if len(candidates) == 0 || total == 0 {
		return nil
	}
	count := 1 + rng.Intn(n)
	chosen := map[eks.ConceptID]bool{}
	var out []eks.ConceptID
	for attempts := 0; len(out) < count && attempts < 20*count; attempts++ {
		r := rng.Float64() * total
		acc := 0.0
		for _, id := range candidates {
			acc += pop[id]
			if acc >= r {
				if !chosen[id] {
					chosen[id] = true
					out = append(out, id)
				}
				break
			}
		}
	}
	return out
}

// drugName fabricates a pronounceable drug name, deterministic per index
// plus rng state.
func drugName(rng *rand.Rand, index int) string {
	prefixes := []string{"ald", "bex", "cor", "dal", "evo", "fin", "gal", "hyd", "ixa", "jul", "kel", "lor", "mav", "nex", "oxi", "pra", "quil", "rez", "sol", "tev", "umb", "vax", "wil", "xan", "yel", "zol"}
	middles := []string{"a", "e", "i", "o", "u", "ora", "ine", "ax", "ide"}
	suffixes := []string{"mab", "nib", "pril", "sartan", "statin", "cillin", "micin", "zole", "pine", "olol", "afil", "gliptin"}
	return prefixes[index%len(prefixes)] + middles[rng.Intn(len(middles))] + suffixes[rng.Intn(len(suffixes))] + fmt.Sprintf("-%d", index)
}
