package medkb

import (
	"fmt"
	"math/rand"

	"medrelax/internal/kb"
)

// addAncillaryData fills out a drug's monograph-shaped record beyond
// findings: dosage (with route, form, strength), brand, class membership,
// pharmacokinetics, toxicology with overdose and antidote, interactions,
// monitoring, guideline and education entries. MED's value — and the
// reason the paper's conversational flows keep drilling down after a
// relaxation — is exactly this depth of per-drug structure; generating it
// also exercises most of the ontology's 58 relationships.
func addAncillaryData(rng *rand.Rand, store *kb.Store, newInstance func(concept, name string) (kb.InstanceID, error), drugID kb.InstanceID, drugName string) error {
	add := func(concept, name, rel string, subject kb.InstanceID) (kb.InstanceID, error) {
		id, err := newInstance(concept, name)
		if err != nil {
			return 0, err
		}
		if err := store.AddAssertion(kb.Assertion{Subject: subject, Relationship: rel, Object: id}); err != nil {
			return 0, err
		}
		return id, nil
	}

	// Dosage with route, form and strength.
	dosID, err := add("Dosage", drugName+" standard dosage", "hasDosage", drugID)
	if err != nil {
		return err
	}
	routes := []string{"oral", "intravenous", "topical", "subcutaneous", "inhaled"}
	forms := []string{"tablet", "capsule", "solution", "suspension", "cream"}
	if _, err := add("Route", drugName+" route: "+routes[rng.Intn(len(routes))], "hasRoute", dosID); err != nil {
		return err
	}
	if _, err := add("Form", drugName+" form: "+forms[rng.Intn(len(forms))], "hasForm", dosID); err != nil {
		return err
	}
	if _, err := add("Strength", fmt.Sprintf("%s strength: %d mg", drugName, 25*(1+rng.Intn(20))), "hasStrength", dosID); err != nil {
		return err
	}

	// Identity: brand, class, manufacturer, approval, schedule.
	if rng.Float64() < 0.7 {
		if _, err := add("Brand", brandName(rng, drugName), "hasBrand", drugID); err != nil {
			return err
		}
	}
	classes := []string{"analgesic class", "antibiotic class", "antihypertensive class", "anticoagulant class", "corticosteroid class"}
	if _, err := add("DrugClass", drugName+" class: "+classes[rng.Intn(len(classes))], "belongsTo", drugID); err != nil {
		return err
	}
	makers := []string{"Helix Pharma", "Noventis", "Corvalen Labs", "Meridian Biologics"}
	if _, err := add("Manufacturer", drugName+" by "+makers[rng.Intn(len(makers))], "manufacturedBy", drugID); err != nil {
		return err
	}
	if _, err := add("ApprovalStatus", drugName+" approval: marketed", "hasApprovalStatus", drugID); err != nil {
		return err
	}

	// Pharmacokinetics chain.
	pkID, err := add("Pharmacokinetics", drugName+" pharmacokinetics", "hasPharmacokinetics", drugID)
	if err != nil {
		return err
	}
	if _, err := add("HalfLife", fmt.Sprintf("%s half-life: %d hours", drugName, 1+rng.Intn(36)), "hasHalfLife", pkID); err != nil {
		return err
	}
	if _, err := add("Metabolism", drugName+" metabolism: hepatic", "hasMetabolism", pkID); err != nil {
		return err
	}
	if _, err := add("Excretion", drugName+" excretion: renal", "hasExcretion", pkID); err != nil {
		return err
	}

	// Toxicology with overdose and antidote.
	if rng.Float64() < 0.5 {
		toxID, err := add("Toxicology", drugName+" toxicology", "hasToxicology", drugID)
		if err != nil {
			return err
		}
		odID, err := add("Overdose", drugName+" overdose profile", "hasOverdose", toxID)
		if err != nil {
			return err
		}
		if _, err := add("Antidote", drugName+" antidote: supportive care", "treatedBy", odID); err != nil {
			return err
		}
	}

	// Monitoring with a lab test.
	if rng.Float64() < 0.4 {
		monID, err := add("Monitoring", drugName+" monitoring plan", "requiresMonitoring", drugID)
		if err != nil {
			return err
		}
		labs := []string{"serum creatinine", "liver panel", "complete blood count", "inr"}
		if _, err := add("LabTest", drugName+" lab: "+labs[rng.Intn(len(labs))], "monitors", monID); err != nil {
			return err
		}
	}

	// Guidance and education.
	if rng.Float64() < 0.3 {
		gID, err := add("Guideline", drugName+" clinical guideline", "recommendedBy", drugID)
		if err != nil {
			return err
		}
		if _, err := add("Evidence", drugName+" evidence: randomized trial", "hasEvidence", gID); err != nil {
			return err
		}
	}
	if _, err := add("Education", drugName+" patient education sheet", "hasEducation", drugID); err != nil {
		return err
	}
	return nil
}

// AddDrugInteractions links random drug pairs through DrugInteraction
// instances; called once after all drugs exist.
func AddDrugInteractions(rng *rand.Rand, store *kb.Store, pairs int) error {
	drugs := store.InstancesOf(ConceptDrug)
	if len(drugs) < 2 {
		return nil
	}
	nextID := maxInstanceID(store) + 1
	for i := 0; i < pairs; i++ {
		a := drugs[rng.Intn(len(drugs))]
		b := drugs[rng.Intn(len(drugs))]
		if a == b {
			continue
		}
		instA, _ := store.Instance(a)
		instB, _ := store.Instance(b)
		id := nextID
		nextID++
		if err := store.AddInstance(kb.Instance{ID: id, Concept: "DrugInteraction",
			Name: instA.Name + " interaction with " + instB.Name}); err != nil {
			return err
		}
		if err := store.AddAssertion(kb.Assertion{Subject: a, Relationship: "hasInteraction", Object: id}); err != nil {
			return err
		}
		if err := store.AddAssertion(kb.Assertion{Subject: id, Relationship: "interactsWithDrug", Object: b}); err != nil {
			return err
		}
	}
	return nil
}

func maxInstanceID(store *kb.Store) kb.InstanceID {
	var max kb.InstanceID
	for _, inst := range store.AllInstances() {
		if inst.ID > max {
			max = inst.ID
		}
	}
	return max
}

func brandName(rng *rand.Rand, drugName string) string {
	suffixes := []string{"ex", "or", "ium", "alis", "eva", "onix"}
	base := drugName
	if len(base) > 5 {
		base = base[:5]
	}
	return drugName + " brand: " + base + suffixes[rng.Intn(len(suffixes))]
}
