package medkb

import (
	"fmt"
	"math/rand"
	"strings"

	"medrelax/internal/corpus"
	"medrelax/internal/eks"
	"medrelax/internal/synthkb"
)

// CorpusConfig controls monograph corpus generation.
type CorpusConfig struct {
	// Seed drives all randomness.
	Seed int64
	// MentionScale multiplies per-finding mention counts. Default 12.
	MentionScale float64
	// LatentMentionProb is the probability a mention uses a latent surface
	// variant instead of the preferred name — this is what lets the
	// embedding model learn that "renal disease" means "kidney disease".
	// Default 0.2.
	LatentMentionProb float64
	// SynonymMentionProb is the probability a mention uses a registered
	// synonym. Default 0.15.
	SynonymMentionProb float64
}

func (c CorpusConfig) withDefaults() CorpusConfig {
	if c.MentionScale <= 0 {
		c.MentionScale = 12
	}
	if c.LatentMentionProb <= 0 {
		c.LatentMentionProb = 0.2
	}
	if c.SynonymMentionProb <= 0 {
		c.SynonymMentionProb = 0.15
	}
	return c
}

var indicationTemplates = []string{
	"%s is indicated for the treatment of %s in adult patients.",
	"clinical trials demonstrated efficacy of %s against %s.",
	"patients presenting with %s responded to therapy with %s.",
	"%s provides symptomatic relief of %s.",
	"use %s for the management of %s when first line therapy fails.",
}

var riskTemplates = []string{
	"cases of %s have been reported during treatment with %s.",
	"%s may occur in patients receiving %s.",
	"monitor for signs of %s while administering %s.",
	"treatment with %s was associated with %s in postmarketing surveillance.",
	"discontinue %s if %s develops.",
}

var generalBoilerplate = []string{
	"store at controlled room temperature away from moisture and heat.",
	"the pharmacokinetic profile shows linear absorption after oral administration.",
	"dose adjustment may be required in patients with reduced clearance.",
	"advise patients to read the medication guide before starting therapy.",
	"the mechanism of action involves selective receptor binding.",
}

// BuildCorpus generates one monograph document per drug in the MED. Each
// monograph has an Indications section (labeled with the
// Indication-hasFinding-Finding context), an Adverse Reactions section
// (Risk-hasFinding-Finding), and a general unlabeled section. Mention
// counts scale with finding popularity, reproducing the skew the paper
// notes ("asthma is mentioned in 54 drug descriptions ... lung cancer has
// only a handful").
func BuildCorpus(world *synthkb.World, med *MED, cfg CorpusConfig) *corpus.Corpus {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var docs []corpus.Document
	drugIDs := med.Store.InstancesOf(ConceptDrug)
	for _, drugID := range drugIDs {
		drug, _ := med.Store.Instance(drugID)
		var indSentences, riskSentences []string

		for _, indID := range med.Store.Objects("treat", drugID) {
			for _, findInstID := range med.Store.Objects("hasFinding", indID) {
				cid, ok := med.Gold[findInstID]
				if !ok {
					continue
				}
				mentions := mentionCount(rng, med.Popularity[cid], cfg.MentionScale)
				for m := 0; m < mentions; m++ {
					surface := surfaceForm(rng, world, cid, cfg)
					tmpl := indicationTemplates[rng.Intn(len(indicationTemplates))]
					indSentences = append(indSentences, fmt.Sprintf(tmpl, drug.Name, systemHint(rng, world, cid, surface)))
				}
			}
		}
		for _, riskID := range med.Store.Objects("cause", drugID) {
			for _, findInstID := range med.Store.Objects("hasFinding", riskID) {
				cid, ok := med.Gold[findInstID]
				if !ok {
					continue
				}
				// Risk sections are wordy: adverse events are re-listed under
				// warnings, precautions and postmarketing experience. The
				// classic side-effect vocabulary — findings that are adverse
				// events but not treatment targets — dominates this text, the
				// way nausea or dizziness blanket real monographs. Context-
				// blind frequency ranking finds these attractive; only the
				// per-context frequencies can tell they never appear as
				// indications.
				scale := 1.5 * cfg.MentionScale
				if !med.Treated[cid] {
					scale *= 3
				}
				mentions := 1 + mentionCount(rng, med.Popularity[cid], scale)
				for m := 0; m < mentions; m++ {
					surface := surfaceForm(rng, world, cid, cfg)
					tmpl := riskTemplates[rng.Intn(len(riskTemplates))]
					riskSentences = append(riskSentences, fmt.Sprintf(tmpl, systemHint(rng, world, cid, surface), drug.Name))
				}
			}
		}
		general := []string{
			generalBoilerplate[rng.Intn(len(generalBoilerplate))],
			generalBoilerplate[rng.Intn(len(generalBoilerplate))],
		}
		docs = append(docs, corpus.Document{
			ID:    fmt.Sprintf("monograph-%d", drugID),
			Title: drug.Name,
			Sections: []corpus.Section{
				{Label: CtxIndicationFinding, Text: strings.Join(indSentences, " ")},
				{Label: CtxRiskFinding, Text: strings.Join(riskSentences, " ")},
				{Label: "", Text: strings.Join(general, " ")},
			},
		})
	}
	return corpus.New(docs)
}

// mentionCount converts a popularity weight into a per-document mention
// count: popular findings are mentioned several times, rare ones once.
func mentionCount(rng *rand.Rand, popularity, scale float64) int {
	n := int(popularity*scale) + 1
	if rng.Float64() < 0.3 {
		n++
	}
	return n
}

// systemHint sometimes extends a finding mention with its body system
// ("sinus obstruction of the respiratory system") the way real monographs
// anchor conditions anatomically. The extra co-occurrence between organ
// tokens and their system adjective is what lets distributional embeddings
// cluster terminology by body system.
func systemHint(rng *rand.Rand, world *synthkb.World, cid eks.ConceptID, surface string) string {
	sys := world.Attrs[cid].System
	if sys == "" {
		return surface
	}
	switch r := rng.Float64(); {
	case r < 0.35:
		return surface + " of the " + sys + " system"
	case r < 0.7:
		return sys + " conditions such as " + surface
	default:
		return surface
	}
}

// surfaceForm picks how a concept is mentioned: preferred name, registered
// synonym, or latent variant. Using the paraphrase lexicon in running text
// also exposes those substitutions to the embedding model.
func surfaceForm(rng *rand.Rand, world *synthkb.World, cid eks.ConceptID, cfg CorpusConfig) string {
	c, _ := world.Graph.Concept(cid)
	r := rng.Float64()
	if latent := world.Latent[cid]; len(latent) > 0 && r < cfg.LatentMentionProb {
		return latent[rng.Intn(len(latent))]
	}
	if len(c.Synonyms) > 0 && r < cfg.LatentMentionProb+cfg.SynonymMentionProb {
		return c.Synonyms[rng.Intn(len(c.Synonyms))]
	}
	if alt, ok := paraphraseByLexicon(c.Name); ok && rng.Float64() < 0.12 {
		return alt
	}
	return c.Name
}

// generalTopics seed the out-of-domain corpus for the pre-trained
// embedding baseline: everyday topics whose vocabulary barely overlaps
// clinical terminology, reproducing the paper's observation that a model
// trained on a different corpus leaves many medical words out of
// vocabulary.
var generalTopics = [][]string{
	{"the", "market", "closed", "higher", "after", "strong", "earnings", "reports", "from", "technology", "companies"},
	{"the", "team", "won", "the", "championship", "after", "a", "dramatic", "overtime", "victory", "on", "sunday"},
	{"heavy", "rain", "is", "expected", "across", "the", "region", "with", "flooding", "possible", "in", "low", "areas"},
	{"the", "recipe", "calls", "for", "fresh", "basil", "tomatoes", "olive", "oil", "and", "a", "pinch", "of", "salt"},
	{"lawmakers", "debated", "the", "new", "infrastructure", "bill", "late", "into", "the", "evening", "session"},
	{"the", "museum", "opened", "a", "new", "exhibition", "of", "modern", "sculpture", "this", "weekend"},
	{"researchers", "announced", "progress", "on", "battery", "technology", "for", "electric", "vehicles"},
	{"the", "airline", "added", "new", "routes", "to", "coastal", "cities", "for", "the", "summer", "season"},
	// A thin medical sliver so the pre-trained model is not entirely void of
	// clinical words — mirrors general corpora that mention common terms.
	{"doctors", "recommend", "rest", "and", "fluids", "for", "patients", "with", "fever", "or", "headache"},
	{"regular", "exercise", "reduces", "the", "risk", "of", "heart", "disease", "and", "diabetes"},
}

// BuildPretrainCorpus generates the corpus standing in for the paper's
// pre-trained biomedical embeddings (reference [32]): a *different* medical
// corpus over the same terminology space, with only partial coverage —
// "the model was trained on a different medical corpus and many of the
// words contained in SNOMED CT are out of its vocabulary". It mentions a
// seeded fraction of the world's finding names in generic clinical
// sentences, never uses MED's latent paraphrase variants, and mixes in
// general-English filler so the distributional space is dominated by
// non-clinical contexts.
func BuildPretrainCorpus(world *synthkb.World, seed int64, coverage float64) *corpus.Corpus {
	if coverage <= 0 {
		coverage = 0.4
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(world.Findings))
	n := int(float64(len(world.Findings)) * coverage)
	templates := []string{
		"a retrospective cohort study of %s outcomes across three centers.",
		"the differential diagnosis included %s among other conditions.",
		"guidelines recommend early evaluation of suspected %s.",
		"incidence of %s varied by age group in the registry.",
	}
	var docs []corpus.Document
	var sentences []string
	flush := func() {
		if len(sentences) == 0 {
			return
		}
		docs = append(docs, corpus.Document{
			ID:       fmt.Sprintf("pretrain-%d", len(docs)),
			Sections: []corpus.Section{{Label: "", Text: strings.Join(sentences, " ")}},
		})
		sentences = nil
	}
	for i := 0; i < n; i++ {
		c, _ := world.Graph.Concept(world.Findings[perm[i]])
		mentions := 1 + rng.Intn(3)
		for m := 0; m < mentions; m++ {
			tmpl := templates[rng.Intn(len(templates))]
			sentences = append(sentences, fmt.Sprintf(tmpl, c.Name))
			// General-English filler dominates the space.
			topic := generalTopics[rng.Intn(len(generalTopics))]
			sentences = append(sentences, strings.Join(topic, " ")+".")
		}
		if len(sentences) >= 20 {
			flush()
		}
	}
	flush()
	return corpus.New(docs)
}

// BuildGeneralCorpus generates a purely out-of-domain corpus for ablations
// and tests.
func BuildGeneralCorpus(seed int64, docs int) *corpus.Corpus {
	rng := rand.New(rand.NewSource(seed))
	if docs <= 0 {
		docs = 200
	}
	out := make([]corpus.Document, 0, docs)
	for i := 0; i < docs; i++ {
		var sentences []string
		for s := 0; s < 4+rng.Intn(5); s++ {
			topic := generalTopics[rng.Intn(len(generalTopics))]
			sentences = append(sentences, strings.Join(topic, " ")+".")
		}
		out = append(out, corpus.Document{
			ID:       fmt.Sprintf("general-%d", i),
			Title:    fmt.Sprintf("article %d", i),
			Sections: []corpus.Section{{Label: "", Text: strings.Join(sentences, " ")}},
		})
	}
	return corpus.New(out)
}
