// Package medkb generates a synthetic MED — the proprietary medical
// knowledge base the paper evaluates on (medication, disease and toxicology
// information; 43 ontology concepts, 58 relationships, curated from a drug
// monograph corpus). See DESIGN.md for the substitution rationale.
//
// The package provides the domain ontology at the paper's stated scale, a
// deterministic instance generator whose finding instances carry
// surface-form variation classes (exact / typo / paraphrase / novel) with
// known gold mappings into a synthkb world, and a monograph corpus whose
// sections are labeled with query contexts.
package medkb

import (
	"fmt"

	"medrelax/internal/ontology"
)

// Core concept names referenced throughout the system.
const (
	ConceptDrug          = "Drug"
	ConceptIndication    = "Indication"
	ConceptRisk          = "Risk"
	ConceptFinding       = "Finding"
	ConceptAdverseEffect = "AdverseEffect"
)

// Context strings for the two finding contexts of Figure 1.
const (
	CtxIndicationFinding = "Indication-hasFinding-Finding"
	CtxRiskFinding       = "Risk-hasFinding-Finding"
)

// conceptDefs lists MED's 43 ontology concepts. Parents must precede
// children.
var conceptDefs = []ontology.Concept{
	{Name: "Drug"},
	{Name: "DrugClass"},
	{Name: "Brand"},
	{Name: "Ingredient"},
	{Name: "Dosage"},
	{Name: "Route"},
	{Name: "Form"},
	{Name: "Strength"},
	{Name: "Indication"},
	{Name: "OffLabelUse"},
	{Name: "Risk"},
	{Name: "BlackBoxWarning", Parent: "Risk"},
	{Name: "AdverseEffect", Parent: "Risk"},
	{Name: "ContraIndication", Parent: "Risk"},
	{Name: "Warning"},
	{Name: "Precaution"},
	{Name: "Finding"},
	{Name: "Disease", Parent: "Finding"},
	{Name: "Symptom", Parent: "Finding"},
	{Name: "Interaction"},
	{Name: "DrugInteraction", Parent: "Interaction"},
	{Name: "FoodInteraction", Parent: "Interaction"},
	{Name: "LabTest"},
	{Name: "Monitoring"},
	{Name: "Population"},
	{Name: "PediatricUse", Parent: "Population"},
	{Name: "GeriatricUse", Parent: "Population"},
	{Name: "PregnancyUse", Parent: "Population"},
	{Name: "Toxicology"},
	{Name: "Overdose"},
	{Name: "Antidote"},
	{Name: "MechanismOfAction"},
	{Name: "Pharmacokinetics"},
	{Name: "HalfLife"},
	{Name: "Metabolism"},
	{Name: "Excretion"},
	{Name: "Manufacturer"},
	{Name: "ApprovalStatus"},
	{Name: "Schedule"},
	{Name: "Guideline"},
	{Name: "Evidence"},
	{Name: "Education"},
	{Name: "Allergy"},
}

// relationshipDefs lists MED's 58 relationships, including the four of the
// paper's Figure 1 (treat, cause, and the two hasFinding contexts).
var relationshipDefs = []ontology.Relationship{
	// Figure 1 core.
	{Name: "treat", Domain: "Drug", Range: "Indication"},
	{Name: "cause", Domain: "Drug", Range: "Risk"},
	{Name: "hasFinding", Domain: "Indication", Range: "Finding"},
	{Name: "hasFinding", Domain: "Risk", Range: "Finding"},
	// Drug identity and composition.
	{Name: "belongsTo", Domain: "Drug", Range: "DrugClass"},
	{Name: "hasBrand", Domain: "Drug", Range: "Brand"},
	{Name: "hasIngredient", Domain: "Drug", Range: "Ingredient"},
	{Name: "manufacturedBy", Domain: "Drug", Range: "Manufacturer"},
	{Name: "hasApprovalStatus", Domain: "Drug", Range: "ApprovalStatus"},
	{Name: "hasSchedule", Domain: "Drug", Range: "Schedule"},
	// Dosing.
	{Name: "hasDosage", Domain: "Drug", Range: "Dosage"},
	{Name: "hasRoute", Domain: "Dosage", Range: "Route"},
	{Name: "hasForm", Domain: "Dosage", Range: "Form"},
	{Name: "hasStrength", Domain: "Dosage", Range: "Strength"},
	{Name: "dosageFor", Domain: "Dosage", Range: "Indication"},
	{Name: "dosageForPopulation", Domain: "Dosage", Range: "Population"},
	// Uses.
	{Name: "hasOffLabelUse", Domain: "Drug", Range: "OffLabelUse"},
	{Name: "hasFinding", Domain: "OffLabelUse", Range: "Finding"},
	{Name: "treatedIn", Domain: "Indication", Range: "Population"},
	{Name: "supportedBy", Domain: "Indication", Range: "Evidence"},
	// Safety.
	{Name: "hasWarning", Domain: "Drug", Range: "Warning"},
	{Name: "hasPrecaution", Domain: "Drug", Range: "Precaution"},
	{Name: "hasFinding", Domain: "Warning", Range: "Finding"},
	{Name: "hasFinding", Domain: "Precaution", Range: "Finding"},
	{Name: "appliesTo", Domain: "Warning", Range: "Population"},
	{Name: "appliesTo", Domain: "Precaution", Range: "Population"},
	{Name: "causesAllergy", Domain: "Drug", Range: "Allergy"},
	{Name: "hasFinding", Domain: "Allergy", Range: "Finding"},
	// Interactions.
	{Name: "hasInteraction", Domain: "Drug", Range: "Interaction"},
	{Name: "interactsWithDrug", Domain: "DrugInteraction", Range: "Drug"},
	{Name: "raisesRisk", Domain: "Interaction", Range: "Risk"},
	{Name: "documentedBy", Domain: "Interaction", Range: "Evidence"},
	// Monitoring and labs.
	{Name: "requiresMonitoring", Domain: "Drug", Range: "Monitoring"},
	{Name: "monitors", Domain: "Monitoring", Range: "LabTest"},
	{Name: "monitorsFinding", Domain: "Monitoring", Range: "Finding"},
	{Name: "affectsLabTest", Domain: "Drug", Range: "LabTest"},
	{Name: "indicatedBy", Domain: "Finding", Range: "LabTest"},
	// Toxicology.
	{Name: "hasToxicology", Domain: "Drug", Range: "Toxicology"},
	{Name: "hasOverdose", Domain: "Toxicology", Range: "Overdose"},
	{Name: "treatedBy", Domain: "Overdose", Range: "Antidote"},
	{Name: "hasFinding", Domain: "Overdose", Range: "Finding"},
	{Name: "antidoteDrug", Domain: "Antidote", Range: "Drug"},
	// Pharmacology.
	{Name: "hasMechanism", Domain: "Drug", Range: "MechanismOfAction"},
	{Name: "hasPharmacokinetics", Domain: "Drug", Range: "Pharmacokinetics"},
	{Name: "hasHalfLife", Domain: "Pharmacokinetics", Range: "HalfLife"},
	{Name: "hasMetabolism", Domain: "Pharmacokinetics", Range: "Metabolism"},
	{Name: "hasExcretion", Domain: "Pharmacokinetics", Range: "Excretion"},
	{Name: "affectsMetabolismOf", Domain: "Drug", Range: "Drug"},
	// Guidance and education.
	{Name: "recommendedBy", Domain: "Drug", Range: "Guideline"},
	{Name: "hasEvidence", Domain: "Guideline", Range: "Evidence"},
	{Name: "hasEducation", Domain: "Drug", Range: "Education"},
	{Name: "educatesAbout", Domain: "Education", Range: "Finding"},
	{Name: "guidelineFor", Domain: "Guideline", Range: "Indication"},
	// Findings structure.
	{Name: "associatedWith", Domain: "Finding", Range: "Finding"},
	{Name: "presentsAs", Domain: "Disease", Range: "Symptom"},
	{Name: "contraindicatedWith", Domain: "ContraIndication", Range: "Drug"},
	{Name: "classTreats", Domain: "DrugClass", Range: "Indication"},
	{Name: "populationRisk", Domain: "Population", Range: "Risk"},
}

// BuildOntology assembles the MED domain ontology: exactly 43 concepts and
// 58 relationships, matching the paper's Section 7.1.
func BuildOntology() (*ontology.Ontology, error) {
	o := ontology.New()
	for _, c := range conceptDefs {
		if err := o.AddConcept(c); err != nil {
			return nil, fmt.Errorf("medkb: %w", err)
		}
	}
	for _, r := range relationshipDefs {
		if err := o.AddRelationship(r); err != nil {
			return nil, fmt.Errorf("medkb: %w", err)
		}
	}
	if got := o.ConceptCount(); got != 43 {
		return nil, fmt.Errorf("medkb: ontology has %d concepts, want 43", got)
	}
	if got := o.RelationshipCount(); got != 58 {
		return nil, fmt.Errorf("medkb: ontology has %d relationships, want 58", got)
	}
	return o, nil
}
