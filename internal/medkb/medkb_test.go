package medkb

import (
	"math/rand"
	"testing"

	"medrelax/internal/stringutil"
	"medrelax/internal/synthkb"
)

func world(t *testing.T) *synthkb.World {
	t.Helper()
	w, err := synthkb.Generate(synthkb.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildOntologyScale(t *testing.T) {
	o, err := BuildOntology()
	if err != nil {
		t.Fatal(err)
	}
	if o.ConceptCount() != 43 {
		t.Errorf("concepts = %d, want 43 (paper Section 7.1)", o.ConceptCount())
	}
	if o.RelationshipCount() != 58 {
		t.Errorf("relationships = %d, want 58 (paper Section 7.1)", o.RelationshipCount())
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	// The Figure 1 contexts exist.
	found := map[string]bool{}
	for _, c := range o.Contexts() {
		found[c.String()] = true
	}
	for _, want := range []string{
		"Drug-treat-Indication", "Drug-cause-Risk",
		CtxIndicationFinding, CtxRiskFinding,
	} {
		if !found[want] {
			t.Errorf("missing context %s", want)
		}
	}
}

func TestGenerateMED(t *testing.T) {
	w := world(t)
	med, err := Generate(w, Config{Seed: 2, Drugs: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(med.DrugNames) != 40 {
		t.Errorf("drugs = %d", len(med.DrugNames))
	}
	if len(med.Gold) < 100 {
		t.Errorf("covered findings = %d, suspiciously few", len(med.Gold))
	}
	// Gold mappings point at finding concepts of the world.
	for iid, cid := range med.Gold {
		if w.Attrs[cid].Kind != synthkb.KindFinding {
			t.Fatalf("gold of instance %d is not a finding: %d", iid, cid)
		}
		inst, ok := med.Store.Instance(iid)
		if !ok || inst.Concept != ConceptFinding {
			t.Fatalf("gold instance %d missing or mistyped", iid)
		}
	}
	// Treated/Caused are subsets of covered concepts.
	for cid := range med.Treated {
		if _, ok := med.FindingInstance[cid]; !ok {
			t.Fatalf("treated concept %d not covered", cid)
		}
	}
	if len(med.Treated) == 0 || len(med.Caused) == 0 {
		t.Error("no treated or caused findings generated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w := world(t)
	m1, err := Generate(w, Config{Seed: 5, Drugs: 20})
	if err != nil {
		t.Fatal(err)
	}
	w2 := world(t)
	m2, err := Generate(w2, Config{Seed: 5, Drugs: 20})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Store.Len() != m2.Store.Len() {
		t.Fatalf("sizes differ: %d vs %d", m1.Store.Len(), m2.Store.Len())
	}
	for _, inst := range m1.Store.AllInstances() {
		other, ok := m2.Store.Instance(inst.ID)
		if !ok || other.Name != inst.Name {
			t.Fatalf("instance %d differs: %q vs %q", inst.ID, inst.Name, other.Name)
		}
	}
}

func TestVariationClassDistribution(t *testing.T) {
	w := world(t)
	med, err := Generate(w, Config{Seed: 2, Drugs: 10, FindingCoverage: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[VariationClass]int{}
	for _, c := range med.Class {
		counts[c]++
	}
	total := len(med.Class)
	if total == 0 {
		t.Fatal("no classified instances")
	}
	exact := float64(counts[ClassExact]) / float64(total)
	if exact < 0.70 || exact > 0.95 {
		t.Errorf("exact fraction = %v, want ~0.83 band", exact)
	}
	for _, cls := range []VariationClass{ClassTypo, ClassParaphrase, ClassNovel} {
		if counts[cls] == 0 {
			t.Errorf("no instances of class %s", cls)
		}
	}
	// Class name rendering.
	if ClassExact.String() != "exact" || ClassTypo.String() != "typo" ||
		ClassParaphrase.String() != "paraphrase" || ClassNovel.String() != "novel" {
		t.Error("class names wrong")
	}
	if VariationClass(42).String() == "" {
		t.Error("unknown class must still render")
	}
}

func TestVariationClassesMatchable(t *testing.T) {
	w := world(t)
	med, err := Generate(w, Config{Seed: 2, Drugs: 10, FindingCoverage: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for iid, cls := range med.Class {
		inst, _ := med.Store.Instance(iid)
		gold := med.Gold[iid]
		exactHits := w.Graph.LookupName(inst.Name)
		isExactHit := false
		for _, h := range exactHits {
			if h == gold {
				isExactHit = true
			}
		}
		switch cls {
		case ClassExact:
			if !isExactHit {
				t.Errorf("exact instance %q does not exact-match its gold %d", inst.Name, gold)
			}
		case ClassTypo:
			if isExactHit {
				t.Errorf("typo instance %q exact-matches — not a typo", inst.Name)
			}
			goldName, _ := w.Graph.Concept(gold)
			if stringutil.Levenshtein(stringutil.Normalize(inst.Name), stringutil.Normalize(goldName.Name)) > 2 {
				t.Errorf("typo instance %q is more than 2 edits from %q", inst.Name, goldName.Name)
			}
		case ClassParaphrase, ClassNovel:
			if isExactHit {
				t.Errorf("%s instance %q exact-matches its gold", cls, inst.Name)
			}
		}
	}
}

func TestBuildCorpus(t *testing.T) {
	w := world(t)
	med, err := Generate(w, Config{Seed: 2, Drugs: 30})
	if err != nil {
		t.Fatal(err)
	}
	c := BuildCorpus(w, med, CorpusConfig{Seed: 3})
	if c.DocCount() != 30 {
		t.Errorf("documents = %d, want one per drug", c.DocCount())
	}
	labels := c.Labels()
	if len(labels) != 2 {
		t.Fatalf("labels = %v", labels)
	}
	// Popular treated findings are actually mentioned under the indication
	// label.
	var names []string
	for cid := range med.Treated {
		concept, _ := w.Graph.Concept(cid)
		names = append(names, concept.Name)
	}
	stats := c.CountPhrases(names)
	mentioned := 0
	for _, st := range stats {
		if st.TF[CtxIndicationFinding] > 0 {
			mentioned++
		}
	}
	if mentioned < len(names)/2 {
		t.Errorf("only %d/%d treated findings mentioned under the indication label", mentioned, len(names))
	}
	if c.TokenCount() < 2000 {
		t.Errorf("corpus suspiciously small: %d tokens", c.TokenCount())
	}
}

func TestBuildCorpusDeterministic(t *testing.T) {
	w := world(t)
	med, err := Generate(w, Config{Seed: 2, Drugs: 10})
	if err != nil {
		t.Fatal(err)
	}
	c1 := BuildCorpus(w, med, CorpusConfig{Seed: 3})
	c2 := BuildCorpus(w, med, CorpusConfig{Seed: 3})
	if c1.TokenCount() != c2.TokenCount() {
		t.Error("corpus generation not deterministic")
	}
}

func TestBuildGeneralCorpus(t *testing.T) {
	g := BuildGeneralCorpus(9, 50)
	if g.DocCount() != 50 {
		t.Errorf("documents = %d", g.DocCount())
	}
	if len(g.Labels()) != 0 {
		t.Error("general corpus must be unlabeled")
	}
	// Medical coverage is thin: most curated finding names are absent.
	stats := g.CountPhrases([]string{"pneumonia", "thrombocytopenia", "pyelectasia", "urticaria", "fever"})
	absent := 0
	for name, st := range stats {
		if st.TotalTF == 0 {
			absent++
		} else if name != "fever" && name != "headache" {
			t.Logf("unexpected medical mention %q in general corpus", name)
		}
	}
	if absent < 3 {
		t.Errorf("general corpus mentions too many medical terms (%d absent)", absent)
	}
	if BuildGeneralCorpus(9, 0).DocCount() != 200 {
		t.Error("default doc count must apply")
	}
}

func TestParaphraseByLexicon(t *testing.T) {
	if got, ok := paraphraseByLexicon("lung infection"); !ok || got != "lung infectious process" {
		t.Errorf("paraphraseByLexicon = %q,%v", got, ok)
	}
	if _, ok := paraphraseByLexicon("pneumonia"); ok {
		t.Error("no substitutable token must report false")
	}
}

func TestIntroduceTypoBounds(t *testing.T) {
	w := world(t)
	_ = w
	if _, ok := introduceTypo(newRand(1), "abc"); ok {
		t.Error("short names must be left alone")
	}
	for i := int64(0); i < 50; i++ {
		typo, ok := introduceTypo(newRand(i), "bronchitis of the lung")
		if !ok {
			t.Fatal("typo must apply to long names")
		}
		d := stringutil.Levenshtein(typo, "bronchitis of the lung")
		if d < 1 || d > 2 {
			t.Errorf("typo distance = %d for %q", d, typo)
		}
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestAncillaryDataBreadth(t *testing.T) {
	w := world(t)
	med, err := Generate(w, Config{Seed: 6, Drugs: 30})
	if err != nil {
		t.Fatal(err)
	}
	// Every drug carries a dosage chain, identity data and education.
	for _, concept := range []string{
		"Dosage", "Route", "Form", "Strength", "DrugClass", "Manufacturer",
		"ApprovalStatus", "Pharmacokinetics", "HalfLife", "Metabolism",
		"Excretion", "Education",
	} {
		if n := len(med.Store.InstancesOf(concept)); n < 30 {
			t.Errorf("%s instances = %d, want >= 30 (one per drug)", concept, n)
		}
	}
	// Probabilistic sections appear for a fraction of drugs.
	for _, concept := range []string{"Brand", "Toxicology", "Overdose", "Antidote", "Monitoring", "LabTest", "Guideline", "Evidence", "DrugInteraction"} {
		if n := len(med.Store.InstancesOf(concept)); n == 0 {
			t.Errorf("no %s instances generated", concept)
		}
	}
	// The dosage chain is navigable.
	drug := med.Store.InstancesOf(ConceptDrug)[0]
	dosages := med.Store.Objects("hasDosage", drug)
	if len(dosages) != 1 {
		t.Fatalf("dosages = %d", len(dosages))
	}
	if len(med.Store.Objects("hasRoute", dosages[0])) != 1 {
		t.Error("dosage missing route")
	}
	// Interactions connect two distinct drugs.
	for _, iid := range med.Store.InstancesOf("DrugInteraction") {
		subs := med.Store.Subjects("hasInteraction", iid)
		objs := med.Store.Objects("interactsWithDrug", iid)
		if len(subs) != 1 || len(objs) != 1 || subs[0] == objs[0] {
			t.Fatalf("interaction %d malformed: subjects %v objects %v", iid, subs, objs)
		}
	}
}
