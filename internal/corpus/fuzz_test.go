package corpus

import (
	"strings"
	"testing"
)

func FuzzCountPhrases(f *testing.F) {
	f.Add("bronchitis and pain in throat", "pain in throat", "pain")
	f.Add("", "", "")
	f.Add("a a a a a", "a", "a a")
	f.Fuzz(func(t *testing.T, text, p1, p2 string) {
		if len(text) > 2048 || len(p1) > 64 || len(p2) > 64 {
			return
		}
		c := New([]Document{{ID: "d", Sections: []Section{{Label: "L", Text: text}}}})
		stats := c.CountPhrases([]string{p1, p2})
		total := 0
		for key, st := range stats {
			if st.TotalTF < 0 || st.DF < 0 || st.DF > 1 {
				t.Fatalf("stats out of range for %q: %+v", key, st)
			}
			labelSum := 0
			for _, n := range st.TF {
				labelSum += n
			}
			if labelSum != st.TotalTF {
				t.Fatalf("per-label sum %d != total %d for %q", labelSum, st.TotalTF, key)
			}
			total += st.TotalTF
		}
		// Greedy non-overlapping matches can never exceed the token count.
		if total > c.TokenCount() {
			t.Fatalf("matched %d phrases in %d tokens", total, c.TokenCount())
		}
	})
}

func FuzzWordFrequencies(f *testing.F) {
	f.Add("one two two three three three")
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 2048 {
			return
		}
		c := New([]Document{{ID: "d", Sections: []Section{{Text: text}}}})
		sum := 0.0
		for w, fr := range c.WordFrequencies() {
			if fr <= 0 || fr > 1 {
				t.Fatalf("frequency of %q = %v", w, fr)
			}
			sum += fr
		}
		if c.TokenCount() > 0 && (sum < 0.999 || sum > 1.001) {
			t.Fatalf("frequencies sum to %v", sum)
		}
		_ = strings.TrimSpace(text)
	})
}
