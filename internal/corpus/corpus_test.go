package corpus

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

func testCorpus() *Corpus {
	return New([]Document{
		{
			ID:    "d1",
			Title: "Amoxicillin",
			Sections: []Section{
				{Label: "Indication-hasFinding-Finding",
					Text: "Indicated for bronchitis and pain in throat. Bronchitis responds well."},
				{Label: "Risk-hasFinding-Finding",
					Text: "May cause headache or renal impairment."},
			},
		},
		{
			ID:    "d2",
			Title: "Ibuprofen",
			Sections: []Section{
				{Label: "Indication-hasFinding-Finding",
					Text: "Treats headache, craniofacial pain, and fever."},
				{Label: "Risk-hasFinding-Finding",
					Text: "Risk of renal impairment with prolonged use. Renal impairment is dose dependent."},
				{Label: "", Text: "General notes mention fever once."},
			},
		},
	})
}

func TestCountPhrasesPerLabel(t *testing.T) {
	c := testCorpus()
	stats := c.CountPhrases([]string{
		"bronchitis", "headache", "renal impairment", "fever", "pain in throat",
		"craniofacial pain", "pertussis",
	})

	br := stats["bronchitis"]
	if br.TF["Indication-hasFinding-Finding"] != 2 || br.TotalTF != 2 || br.DF != 1 {
		t.Errorf("bronchitis stats = %+v", br)
	}
	ri := stats["renal impairment"]
	if ri.TF["Risk-hasFinding-Finding"] != 3 || ri.TotalTF != 3 || ri.DF != 2 {
		t.Errorf("renal impairment stats = %+v", ri)
	}
	hd := stats["headache"]
	if hd.TotalTF != 2 || hd.DF != 2 {
		t.Errorf("headache stats = %+v", hd)
	}
	if hd.TF["Indication-hasFinding-Finding"] != 1 || hd.TF["Risk-hasFinding-Finding"] != 1 {
		t.Errorf("headache per-label stats = %+v", hd.TF)
	}
	fv := stats["fever"]
	if fv.TotalTF != 2 || fv.TF[""] != 1 {
		t.Errorf("fever stats = %+v", fv)
	}
	if st := stats["pertussis"]; st.TotalTF != 0 || st.DF != 0 {
		t.Errorf("pertussis must have zero stats, got %+v", st)
	}
}

func TestLongestMatchWins(t *testing.T) {
	c := New([]Document{{ID: "d", Sections: []Section{
		{Label: "x", Text: "pain in throat but also pain elsewhere"},
	}}})
	stats := c.CountPhrases([]string{"pain", "pain in throat"})
	if got := stats["pain in throat"].TotalTF; got != 1 {
		t.Errorf("pain in throat TF = %d, want 1", got)
	}
	// "pain" inside "pain in throat" must not be double counted; the
	// standalone "pain" later in the sentence is counted.
	if got := stats["pain"].TotalTF; got != 1 {
		t.Errorf("pain TF = %d, want 1", got)
	}
}

func TestPhraseNormalizationInKeys(t *testing.T) {
	c := New([]Document{{ID: "d", Sections: []Section{
		{Label: "", Text: "Chronic Kidney Disease is noted."},
	}}})
	stats := c.CountPhrases([]string{"  Chronic   kidney DISEASE "})
	st, ok := stats["chronic kidney disease"]
	if !ok || st.TotalTF != 1 {
		t.Errorf("normalized key lookup failed: %+v", stats)
	}
}

func TestCountPhrasesEmpty(t *testing.T) {
	c := testCorpus()
	if got := c.CountPhrases(nil); len(got) != 0 {
		t.Errorf("no phrases must give empty stats, got %v", got)
	}
	if got := c.CountPhrases([]string{"", "  "}); len(got) != 0 {
		t.Errorf("blank phrases must be dropped, got %v", got)
	}
}

func TestIDF(t *testing.T) {
	// Rare term gets higher weight than common term.
	if IDF(1, 100) <= IDF(50, 100) {
		t.Error("IDF must decrease with df")
	}
	// Term in every document still positive.
	if IDF(100, 100) <= 0 {
		t.Error("IDF must stay positive")
	}
	// df=0 well defined.
	if math.IsInf(IDF(0, 100), 0) || math.IsNaN(IDF(0, 100)) {
		t.Error("IDF(0, n) must be finite")
	}
}

func TestWordFrequencies(t *testing.T) {
	c := testCorpus()
	freqs := c.WordFrequencies()
	sum := 0.0
	for _, f := range freqs {
		if f <= 0 || f > 1 {
			t.Fatalf("frequency out of range: %v", f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("frequencies sum to %v, want 1", sum)
	}
	if freqs["renal"] <= freqs["bronchitis"] {
		t.Error("renal occurs more often than bronchitis")
	}
}

func TestWordFrequenciesEmptyCorpus(t *testing.T) {
	c := New(nil)
	if got := c.WordFrequencies(); len(got) != 0 {
		t.Errorf("empty corpus must give empty frequencies, got %v", got)
	}
	if c.DocCount() != 0 || c.TokenCount() != 0 {
		t.Error("empty corpus counts must be zero")
	}
}

func TestLabelsAndStreams(t *testing.T) {
	c := testCorpus()
	labels := c.Labels()
	if len(labels) != 2 {
		t.Errorf("Labels = %v", labels)
	}
	streams := c.TokenStreams()
	if len(streams) != 5 {
		t.Errorf("TokenStreams count = %d, want 5", len(streams))
	}
	if c.TokenCount() < 30 {
		t.Errorf("TokenCount = %d suspiciously small", c.TokenCount())
	}
	if c.DocCount() != 2 || len(c.Documents()) != 2 {
		t.Error("document counts wrong")
	}
}

func TestCountPhrasesNShardEquivalence(t *testing.T) {
	// A corpus with many documents, repeated phrases and cross-label
	// mentions: the sharded scan must agree with the serial scan exactly,
	// for any worker count including more workers than documents.
	var docs []Document
	for i := 0; i < 23; i++ {
		docs = append(docs, Document{
			ID: fmt.Sprintf("d%d", i),
			Sections: []Section{
				{Label: "A", Text: "fever and severe headache with fever again"},
				{Label: "B", Text: "headache headache sore throat"},
				{Label: "", Text: "sore throat fever"},
			},
		})
	}
	c := New(docs)
	phrases := []string{"fever", "headache", "sore throat", "severe headache", "absent phrase"}
	want := c.CountPhrases(phrases)
	for _, workers := range []int{2, 3, 7, 16, 64} {
		got := c.CountPhrasesN(phrases, workers)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: sharded stats differ from serial", workers)
		}
	}
}
