// Package corpus models the document corpus a medical knowledge base is
// curated from (Section 5.1 of the paper): a set of documents — in MED's
// case, drug monographs — whose sections carry context labels such as
// "Indication-hasFinding-Finding" (an *Indications* section) or
// "Risk-hasFinding-Finding" (an *Adverse Reactions* section).
//
// The package supplies the statistics the relaxation core needs: per-context
// term frequencies for multi-word concept names, document frequencies for
// the tf-idf adjustment, and raw token streams for embedding training.
package corpus

import (
	"math"
	"strings"
	"sync"

	"medrelax/internal/stringutil"
)

// Section is a contiguous piece of document text carrying a context label.
// An empty Label means general, context-free text.
type Section struct {
	Label string
	Text  string
}

// Document is a corpus document, e.g. one drug monograph.
type Document struct {
	ID       string
	Title    string
	Sections []Section
}

// Corpus is an immutable collection of documents with tokenization cached.
type Corpus struct {
	docs []Document
	// tokenized[i][j] is the token stream of section j of document i.
	tokenized [][][]string
}

// New builds a corpus over the given documents, tokenizing each section
// once.
func New(docs []Document) *Corpus {
	c := &Corpus{docs: docs, tokenized: make([][][]string, len(docs))}
	for i, d := range docs {
		c.tokenized[i] = make([][]string, len(d.Sections))
		for j, s := range d.Sections {
			c.tokenized[i][j] = stringutil.Tokenize(s.Text)
		}
	}
	return c
}

// DocCount returns the number of documents.
func (c *Corpus) DocCount() int { return len(c.docs) }

// Documents returns the underlying documents. Callers must not mutate the
// result.
func (c *Corpus) Documents() []Document { return c.docs }

// TokenStreams returns one token stream per section across all documents,
// in document order. Embedding training treats each stream as one text.
func (c *Corpus) TokenStreams() [][]string {
	var out [][]string
	for _, doc := range c.tokenized {
		for _, sec := range doc {
			if len(sec) > 0 {
				out = append(out, sec)
			}
		}
	}
	return out
}

// TokenCount returns the total number of tokens in the corpus.
func (c *Corpus) TokenCount() int {
	n := 0
	for _, doc := range c.tokenized {
		for _, sec := range doc {
			n += len(sec)
		}
	}
	return n
}

// TermStats aggregates the occurrence statistics of one phrase.
type TermStats struct {
	// TF maps a section label to the number of occurrences of the phrase
	// inside sections with that label, across the whole corpus.
	TF map[string]int
	// TotalTF is the number of occurrences regardless of label.
	TotalTF int
	// DF is the number of distinct documents containing the phrase.
	DF int
}

// phraseSet indexes a set of normalized multi-word phrases for greedy
// longest-match scanning.
type phraseSet struct {
	phrases  map[string]bool // full phrases, joined by spaces
	prefixes map[string]bool // all proper prefixes, joined by spaces
	maxLen   int             // longest phrase, in tokens
}

func newPhraseSet(phrases []string) *phraseSet {
	ps := &phraseSet{phrases: make(map[string]bool), prefixes: make(map[string]bool)}
	for _, p := range phrases {
		toks := stringutil.Tokenize(p)
		if len(toks) == 0 {
			continue
		}
		ps.phrases[strings.Join(toks, " ")] = true
		if len(toks) > ps.maxLen {
			ps.maxLen = len(toks)
		}
		for i := 1; i < len(toks); i++ {
			ps.prefixes[strings.Join(toks[:i], " ")] = true
		}
	}
	return ps
}

// CountPhrases scans the corpus for every phrase and returns per-phrase
// statistics, keyed by the phrase's normalized form. Matching is greedy
// longest-match over token windows: overlapping shorter phrases inside a
// longer matched phrase are not counted, mirroring how an annotator counts
// concept mentions.
func (c *Corpus) CountPhrases(phrases []string) map[string]TermStats {
	return c.CountPhrasesN(phrases, 1)
}

// CountPhrasesN is CountPhrases sharded over workers goroutines: the
// documents are partitioned into contiguous ranges, each range is scanned
// independently against the shared (read-only) phrase index, and the
// per-shard statistics are merged. All statistics are integer sums over
// disjoint document sets — TF and TotalTF sum occurrences, DF counts
// distinct documents, each of which lives in exactly one shard — so the
// result is identical to the serial scan for any worker count. workers <= 1
// runs the serial scan.
func (c *Corpus) CountPhrasesN(phrases []string, workers int) map[string]TermStats {
	ps := newPhraseSet(phrases)
	out := make(map[string]TermStats, len(ps.phrases))
	for p := range ps.phrases {
		out[p] = TermStats{TF: make(map[string]int)}
	}
	if ps.maxLen == 0 {
		return out
	}
	if workers > len(c.docs) {
		workers = len(c.docs)
	}
	if workers <= 1 {
		c.countRange(ps, 0, len(c.docs), out)
		return out
	}
	shards := make([]map[string]TermStats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(c.docs) / workers
		hi := (w + 1) * len(c.docs) / workers
		shard := make(map[string]TermStats)
		shards[w] = shard
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.countRange(ps, lo, hi, shard)
		}()
	}
	wg.Wait()
	for _, shard := range shards {
		for p, st := range shard {
			agg := out[p]
			agg.TotalTF += st.TotalTF
			agg.DF += st.DF
			for label, tf := range st.TF {
				agg.TF[label] += tf
			}
			out[p] = agg
		}
	}
	return out
}

// countRange scans documents [lo, hi) and accumulates statistics into out.
// Shard maps start empty, so the zero TermStats gets its TF map on first
// touch.
func (c *Corpus) countRange(ps *phraseSet, lo, hi int, out map[string]TermStats) {
	for di := lo; di < hi; di++ {
		doc := c.tokenized[di]
		seenInDoc := map[string]bool{}
		for si, toks := range doc {
			label := c.docs[di].Sections[si].Label
			for i := 0; i < len(toks); {
				match, matchLen := ps.longestMatchAt(toks, i)
				if matchLen == 0 {
					i++
					continue
				}
				st := out[match]
				if st.TF == nil {
					st.TF = make(map[string]int)
				}
				st.TF[label]++
				st.TotalTF++
				if !seenInDoc[match] {
					seenInDoc[match] = true
					st.DF++
				}
				out[match] = st
				i += matchLen
			}
		}
	}
}

// longestMatchAt returns the longest phrase starting at toks[i], and its
// token length, or ("", 0).
func (ps *phraseSet) longestMatchAt(toks []string, i int) (string, int) {
	var b strings.Builder
	bestLen := 0
	best := ""
	limit := i + ps.maxLen
	if limit > len(toks) {
		limit = len(toks)
	}
	for j := i; j < limit; j++ {
		if j > i {
			b.WriteByte(' ')
		}
		b.WriteString(toks[j])
		cur := b.String()
		if ps.phrases[cur] {
			best = cur
			bestLen = j - i + 1
		}
		if !ps.prefixes[cur] && !ps.phrases[cur] {
			break
		}
	}
	return best, bestLen
}

// IDF returns the inverse document frequency for a term with document
// frequency df over a corpus of n documents, using the smoothed form
// log((1+n)/(1+df)) + 1 so that terms present in every document still get
// positive weight and unseen terms do not divide by zero.
func IDF(df, n int) float64 {
	return math.Log(float64(1+n)/float64(1+df)) + 1
}

// WordFrequencies returns the relative frequency of every token in the
// corpus, for use by SIF-weighted phrase embeddings. Frequencies sum to 1
// over the vocabulary (when the corpus is non-empty).
func (c *Corpus) WordFrequencies() map[string]float64 {
	counts := make(map[string]int)
	total := 0
	for _, doc := range c.tokenized {
		for _, sec := range doc {
			for _, tok := range sec {
				counts[tok]++
				total++
			}
		}
	}
	out := make(map[string]float64, len(counts))
	if total == 0 {
		return out
	}
	for tok, n := range counts {
		out[tok] = float64(n) / float64(total)
	}
	return out
}

// Labels returns the distinct section labels present in the corpus,
// excluding the empty general label.
func (c *Corpus) Labels() []string {
	seen := map[string]bool{}
	var out []string
	for _, d := range c.docs {
		for _, s := range d.Sections {
			if s.Label != "" && !seen[s.Label] {
				seen[s.Label] = true
				out = append(out, s.Label)
			}
		}
	}
	return out
}
