package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"medrelax/internal/retry"
)

// fakeReplica is a minimal kbserver stand-in: /healthz, /relax echoing
// which replica answered, and /relax/batch answering positionally in the
// server's wire shape.
type fakeReplica struct {
	name string
	srv  *httptest.Server

	mu     sync.Mutex
	relax  func(w http.ResponseWriter, r *http.Request) bool // optional intercept
	served atomic.Int64
}

func newFakeReplica(t *testing.T, name string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{name: name}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"status":"ok"}`+"\n")
	})
	mux.HandleFunc("GET /relax", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		hook := f.relax
		f.mu.Unlock()
		if hook != nil && hook(w, r) {
			return
		}
		f.served.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"replica":%q,"term":%q}`+"\n", f.name, r.URL.Query().Get("term"))
	})
	mux.HandleFunc("POST /relax/batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Queries []struct {
				Term string `json:"term"`
			} `json:"queries"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f.served.Add(int64(len(req.Queries)))
		type item struct {
			Status int `json:"status"`
			Body   any `json:"body"`
		}
		items := make([]item, len(req.Queries))
		for i, q := range req.Queries {
			items[i] = item{Status: 200, Body: map[string]string{"replica": f.name, "term": q.Term}}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"items": items})
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeReplica) addr() string { return strings.TrimPrefix(f.srv.URL, "http://") }

// testRouter builds a router over the fakes with fast, probe-free
// defaults; tests tweak the returned options via the build function.
func testRouter(t *testing.T, fakes []*fakeReplica, tune func(*Options)) *Router {
	t.Helper()
	opts := DefaultOptions()
	opts.ProbeInterval = 0 // passive-only: tests control failure marking
	opts.Retry = retry.Policy{MaxRetries: 2, Base: time.Millisecond, Cap: 5 * time.Millisecond}
	for _, f := range fakes {
		opts.Replicas = append(opts.Replicas, f.addr())
	}
	if tune != nil {
		tune(&opts)
	}
	rt := New(opts)
	t.Cleanup(rt.Stop)
	rt.Start()
	return rt
}

func get(t *testing.T, h http.Handler, path string) (*http.Response, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	resp := rec.Result()
	body, _ := io.ReadAll(resp.Body)
	return resp, body
}

func post(t *testing.T, h http.Handler, path, body string) (*http.Response, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	resp := rec.Result()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

// TestProxyRoutesByTerm pins routing determinism end to end: one term
// always lands on one replica, and the response body is the replica's
// bytes untouched.
func TestProxyRoutesByTerm(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")}
	rt := testRouter(t, fakes, nil)
	h := rt.Handler()
	for _, term := range []string{"fever", "cough", "rash", "nausea"} {
		var first []byte
		for i := 0; i < 5; i++ {
			resp, body := get(t, h, "/relax?term="+term)
			if resp.StatusCode != 200 {
				t.Fatalf("term %q: status %d: %s", term, resp.StatusCode, body)
			}
			if first == nil {
				first = body
				continue
			}
			if !bytes.Equal(body, first) {
				t.Fatalf("term %q: routing flapped: %s vs %s", term, first, body)
			}
		}
	}
}

// TestProxyMissingTerm mirrors the replica's 400 contract without a hop.
func TestProxyMissingTerm(t *testing.T) {
	rt := testRouter(t, []*fakeReplica{newFakeReplica(t, "a")}, nil)
	resp, body := get(t, rt.Handler(), "/relax")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if want := `{"error":"missing term parameter"}` + "\n"; string(body) != want {
		t.Fatalf("body %q, want %q", body, want)
	}
	if served := rt.Registry(); served == nil {
		t.Fatal("registry missing")
	}
}

// TestFailoverOnDeadReplica kills one replica and requires its keys to be
// answered by survivors, with the dead replica marked unhealthy by the
// passive path.
func TestFailoverOnDeadReplica(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")}
	rt := testRouter(t, fakes, func(o *Options) { o.FailAfter = 1 })
	h := rt.Handler()
	// Find a term owned by fakes[0] then kill it.
	victim := fakes[0]
	var term string
	for i := 0; ; i++ {
		term = fmt.Sprintf("probe-%d", i)
		if rt.Ring().Owner(routingKey("", term)) == victim.addr() {
			break
		}
	}
	victim.srv.Close()
	for i := 0; i < 5; i++ {
		resp, body := get(t, h, "/relax?term="+term)
		if resp.StatusCode != 200 {
			t.Fatalf("request %d after kill: status %d: %s", i, resp.StatusCode, body)
		}
		var got struct{ Replica string }
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.Replica == victim.name {
			t.Fatalf("request %d answered by dead replica", i)
		}
	}
	if rt.ReplicaHealthy(victim.addr()) {
		t.Error("dead replica still marked healthy after transport failures")
	}
}

// TestRetryOnShedStatus pins the backoff path: a replica that sheds once
// (503 + Retry-After) is retried per the policy and the client sees the
// eventual success, not the shed.
func TestRetryOnShedStatus(t *testing.T) {
	fake := newFakeReplica(t, "a")
	var failures atomic.Int64
	fake.relax = func(w http.ResponseWriter, _ *http.Request) bool {
		if failures.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"error":"transient"}`+"\n")
			return true
		}
		return false
	}
	rt := testRouter(t, []*fakeReplica{fake}, nil)
	resp, body := get(t, rt.Handler(), "/relax?term=fever")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d after retryable shed: %s", resp.StatusCode, body)
	}
	if n := failures.Load(); n != 2 {
		t.Fatalf("replica saw %d attempts, want 2 (original + one retry)", n)
	}
	// A shed replica is alive, not dead: health must be untouched.
	if !rt.ReplicaHealthy(fake.addr()) {
		t.Error("replica marked unhealthy by a shed response")
	}
}

// TestAdmissionShedsBeforeReplica holds the router at its concurrency cap
// and requires the overflow request to get 429 + Retry-After without the
// replica ever seeing it.
func TestAdmissionShedsBeforeReplica(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	fake := newFakeReplica(t, "a")
	fake.relax = func(w http.ResponseWriter, r *http.Request) bool {
		entered <- struct{}{}
		<-release
		return false
	}
	rt := testRouter(t, []*fakeReplica{fake}, func(o *Options) { o.MaxConcurrent = 1 })
	h := rt.Handler()
	done := make(chan struct{})
	go func() {
		defer close(done)
		get(t, h, "/relax?term=held")
	}()
	<-entered // the slot is occupied inside the replica
	before := fake.served.Load()
	resp, body := get(t, h, "/relax?term=shed-me")
	close(release)
	<-done
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if fake.served.Load() != before+1 { // only the held request lands
		t.Error("shed request reached the replica")
	}
}

// TestScatterMergesPositionally fans a batch across three replicas and
// requires item i of the response to answer query i, regardless of which
// shard served it.
func TestScatterMergesPositionally(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")}
	rt := testRouter(t, fakes, nil)
	terms := make([]string, 40)
	queries := make([]map[string]any, len(terms))
	for i := range terms {
		terms[i] = fmt.Sprintf("term-%d", i)
		queries[i] = map[string]any{"term": terms[i], "k": 5}
	}
	body, _ := json.Marshal(map[string]any{"queries": queries})
	resp, respBody := post(t, rt.Handler(), "/relax/batch", string(body))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, respBody)
	}
	var got struct {
		Items []struct {
			Status int `json:"status"`
			Body   struct {
				Replica string `json:"replica"`
				Term    string `json:"term"`
			} `json:"body"`
		} `json:"items"`
	}
	if err := json.Unmarshal(respBody, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != len(terms) {
		t.Fatalf("%d items, want %d", len(got.Items), len(terms))
	}
	replicasSeen := map[string]bool{}
	for i, it := range got.Items {
		if it.Status != 200 {
			t.Fatalf("item %d: status %d", i, it.Status)
		}
		if it.Body.Term != terms[i] {
			t.Fatalf("item %d answers term %q, want %q — positional merge broken", i, it.Body.Term, terms[i])
		}
		replicasSeen[it.Body.Replica] = true
	}
	if len(replicasSeen) < 2 {
		t.Errorf("batch of %d terms touched %d replicas; scatter is not spreading", len(terms), len(replicasSeen))
	}
}

// TestScatterShardFailureIsolated kills one replica: its items come back
// as per-item 503s while other shards' answers are untouched.
func TestScatterShardFailureIsolated(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")}
	rt := testRouter(t, fakes, func(o *Options) {
		o.Retry.MaxRetries = 0 // fail fast; this test wants the failure shape
	})
	victim := fakes[1]
	victim.srv.Close()
	terms := make([]string, 30)
	queries := make([]map[string]any, len(terms))
	for i := range terms {
		terms[i] = fmt.Sprintf("term-%d", i)
		queries[i] = map[string]any{"term": terms[i]}
	}
	body, _ := json.Marshal(map[string]any{"queries": queries})
	resp, respBody := post(t, rt.Handler(), "/relax/batch", string(body))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, respBody)
	}
	var got struct {
		Items []struct {
			Status int             `json:"status"`
			Body   json.RawMessage `json:"body"`
		} `json:"items"`
	}
	if err := json.Unmarshal(respBody, &got); err != nil {
		t.Fatal(err)
	}
	ok, failed := 0, 0
	for i, it := range got.Items {
		switch it.Status {
		case 200:
			ok++
		case http.StatusServiceUnavailable:
			failed++
		default:
			t.Fatalf("item %d: unexpected status %d", i, it.Status)
		}
	}
	if ok == 0 {
		t.Error("no items survived one shard failure")
	}
	if failed == 0 {
		t.Error("expected the dead shard's items to fail as 503s")
	}
}

// TestBatchValidationMirrorsReplica pins the router-level 400/413 bodies
// to the exact bytes a single replica produces.
func TestBatchValidationMirrorsReplica(t *testing.T) {
	rt := testRouter(t, []*fakeReplica{newFakeReplica(t, "a")}, nil)
	h := rt.Handler()

	resp, body := post(t, h, "/relax/batch", `{"queries":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", resp.StatusCode)
	}
	if want := `{"error":"queries must be a non-empty array"}` + "\n"; string(body) != want {
		t.Fatalf("empty batch body %q, want %q", body, want)
	}

	var sb strings.Builder
	sb.WriteString(`{"queries":[`)
	for i := 0; i < 257; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"term":"t%d"}`, i)
	}
	sb.WriteString(`]}`)
	resp, body = post(t, h, "/relax/batch", sb.String())
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize batch: status %d", resp.StatusCode)
	}
	if want := `{"error":"batch of 257 exceeds limit of 256"}` + "\n"; string(body) != want {
		t.Fatalf("oversize batch body %q, want %q", body, want)
	}
}

// TestHealthzReportsReplicaCounts checks the router's own liveness shape.
func TestHealthzReportsReplicaCounts(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, "a"), newFakeReplica(t, "b")}
	rt := testRouter(t, fakes, nil)
	resp, body := get(t, rt.Handler(), "/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got struct {
		Status          string `json:"status"`
		ReplicasHealthy int    `json:"replicasHealthy"`
		ReplicasTotal   int    `json:"replicasTotal"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Status != "ok" || got.ReplicasHealthy != 2 || got.ReplicasTotal != 2 {
		t.Fatalf("healthz = %+v", got)
	}
}

// TestActiveProbeRecoversReplica marks a replica down, then lets the
// active prober observe it healthy again and requires traffic to return.
func TestActiveProbeRecoversReplica(t *testing.T) {
	fake := newFakeReplica(t, "a")
	rt := testRouter(t, []*fakeReplica{fake}, func(o *Options) {
		o.ProbeInterval = 5 * time.Millisecond
		o.FailAfter = 1
	})
	rt.health.ReportFailure(fake.addr())
	if rt.ReplicaHealthy(fake.addr()) {
		t.Fatal("replica should be down after forced failure")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if rt.ReplicaHealthy(fake.addr()) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("active probe never restored the healthy replica")
}

// TestMetricsExposeRouterSeries scrapes /metrics and requires the
// router-labelled families to be present after traffic.
func TestMetricsExposeRouterSeries(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, "a"), newFakeReplica(t, "b")}
	rt := testRouter(t, fakes, nil)
	h := rt.Handler()
	get(t, h, "/relax?term=fever")
	body, _ := json.Marshal(map[string]any{"queries": []map[string]any{{"term": "x"}, {"term": "y"}}})
	post(t, h, "/relax/batch", string(body))
	_, scrape := get(t, h, "/metrics")
	for _, want := range []string{
		"kbrouter_http_requests_total",
		"kbrouter_replica_requests_total",
		"kbrouter_replica_inflight",
		"kbrouter_replica_healthy",
		"kbrouter_scatter_shards_bucket",
		"kbrouter_http_request_seconds_bucket",
	} {
		if !strings.Contains(string(scrape), want) {
			t.Errorf("metrics scrape missing %s", want)
		}
	}
}
