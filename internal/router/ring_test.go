package router

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("tenant%d\x1fterm-%d", i%7, i)
	}
	return keys
}

// TestRingPlacementDeterministic pins the property every router instance
// depends on: placement is a function of the replica SET, not the order
// it was configured in, so independent routers agree on ownership.
func TestRingPlacementDeterministic(t *testing.T) {
	a := NewRing(64, []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080"})
	b := NewRing(64, []string{"10.0.0.3:8080", "10.0.0.1:8080", "10.0.0.2:8080"})
	for _, key := range testKeys(2000) {
		if oa, ob := a.Owner(key), b.Owner(key); oa != ob {
			t.Fatalf("key %q: owner %q vs %q from reordered replica lists", key, oa, ob)
		}
	}
	// And stable across repeated queries of one ring.
	for _, key := range testKeys(100) {
		if first, second := a.Owner(key), a.Owner(key); first != second {
			t.Fatalf("key %q: owner changed between calls: %q then %q", key, first, second)
		}
	}
}

// TestRingMinimalMovementOnAdd is consistent hashing's defining property:
// adding one replica moves only the keys that land on its vnodes — every
// moved key moves TO the newcomer, and the moved fraction is near 1/new-N,
// nowhere near the full reshuffle a modulo scheme would cause.
func TestRingMinimalMovementOnAdd(t *testing.T) {
	replicas := []string{"r1:8080", "r2:8080", "r3:8080"}
	r := NewRing(128, replicas)
	keys := testKeys(20000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	r.Add("r4:8080")
	moved := 0
	for _, k := range keys {
		after := r.Owner(k)
		if after == before[k] {
			continue
		}
		moved++
		if after != "r4:8080" {
			t.Fatalf("key %q moved %q→%q, not to the added replica", k, before[k], after)
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("add moved %.1f%% of keys; want near 1/4 (balanced minimal movement)", 100*frac)
	}
}

// TestRingMinimalMovementOnRemove is the mirror property: removing a
// replica moves exactly its own keys, and everything else stays put.
func TestRingMinimalMovementOnRemove(t *testing.T) {
	r := NewRing(128, []string{"r1:8080", "r2:8080", "r3:8080", "r4:8080"})
	keys := testKeys(20000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	r.Remove("r2:8080")
	for _, k := range keys {
		after := r.Owner(k)
		if before[k] == "r2:8080" {
			if after == "r2:8080" {
				t.Fatalf("key %q still owned by removed replica", k)
			}
			continue
		}
		if after != before[k] {
			t.Fatalf("key %q moved %q→%q though its owner was not removed", k, before[k], after)
		}
	}
}

// TestRingVNodeDistribution bounds placement skew: with enough virtual
// nodes every replica's share of a large keyspace sits close to fair.
func TestRingVNodeDistribution(t *testing.T) {
	replicas := []string{"r1:8080", "r2:8080", "r3:8080", "r4:8080", "r5:8080"}
	r := NewRing(DefaultVNodes, replicas)
	counts := map[string]int{}
	keys := testKeys(50000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := float64(len(keys)) / float64(len(replicas))
	for _, rep := range replicas {
		share := float64(counts[rep]) / fair
		if share < 0.5 || share > 1.6 {
			t.Errorf("replica %s owns %.2fx its fair share (%d keys); vnode balancing is off",
				rep, share, counts[rep])
		}
	}
}

// TestRingOwnersFallbackOrder pins the failover contract: Owners returns
// distinct replicas, the primary first, capped at the replica count, and
// the order itself is deterministic.
func TestRingOwnersFallbackOrder(t *testing.T) {
	replicas := []string{"r1:8080", "r2:8080", "r3:8080"}
	r := NewRing(64, replicas)
	for _, key := range testKeys(500) {
		owners := r.Owners(key, 10)
		if len(owners) != len(replicas) {
			t.Fatalf("key %q: %d owners, want all %d replicas", key, len(owners), len(replicas))
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("key %q: Owners[0]=%q but Owner=%q", key, owners[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %q: duplicate owner %q", key, o)
			}
			seen[o] = true
		}
		again := r.Owners(key, 10)
		for i := range owners {
			if owners[i] != again[i] {
				t.Fatalf("key %q: fallback order changed between calls", key)
			}
		}
	}
	if got := NewRing(64, nil).Owner("anything"); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
}
