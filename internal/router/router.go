package router

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"medrelax/internal/retry"
	"medrelax/internal/serving"
	"medrelax/internal/serving/metrics"
	"medrelax/internal/trace"
)

// Options configures a Router.
type Options struct {
	// Replicas are the kbserver backends as host:port addresses.
	Replicas []string
	// VNodes is the virtual nodes per replica on the placement ring
	// (<= 0 uses DefaultVNodes).
	VNodes int
	// ProbeInterval is the active health probe period; <= 0 disables
	// active probing (passive failure marking still applies).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each health probe.
	ProbeTimeout time.Duration
	// FailAfter is the consecutive failures before a replica is marked
	// down (default 3).
	FailAfter int
	// MaxConcurrent caps concurrently proxied requests; beyond it the
	// router sheds with 429 before touching a replica. <= 0 is unlimited.
	MaxConcurrent int
	// RetryAfter is the hint attached to shed responses (default 1s).
	RetryAfter time.Duration
	// Retry is the backoff policy for replica failures — the same shape
	// loadgen uses against the server, applied router→replica.
	Retry retry.Policy
	// ShardTimeout bounds each scatter-gather shard request (default 5s).
	ShardTimeout time.Duration
	// Client is the HTTP client for replica traffic (default: pooled
	// transport with generous idle connections per replica).
	Client *http.Client
	// Tracer samples and records distributed traces; nil disables
	// tracing entirely (the untraced path costs nothing either way).
	Tracer *trace.Tracer
}

// DefaultOptions are production-shaped defaults for everything but the
// replica list.
func DefaultOptions() Options {
	return Options{
		VNodes:        DefaultVNodes,
		ProbeInterval: 500 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		FailAfter:     3,
		MaxConcurrent: 256,
		RetryAfter:    time.Second,
		Retry:         retry.Policy{MaxRetries: 2, Base: 25 * time.Millisecond, Cap: 500 * time.Millisecond},
		ShardTimeout:  5 * time.Second,
	}
}

// Router fronts a set of kbserver replicas: consistent-hash placement,
// health-aware failover, scatter-gather batching, and its own admission
// control so overload sheds at the edge instead of burning replica slots.
type Router struct {
	opts    Options
	ring    *Ring
	health  *health
	client  *http.Client
	limiter *serving.Limiter
	reg     *metrics.Registry
	tracer  *trace.Tracer

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a Router over opts.Replicas. Call Start to begin active
// health probing and Stop on shutdown.
func New(opts Options) *Router {
	def := DefaultOptions()
	if opts.FailAfter <= 0 {
		opts.FailAfter = def.FailAfter
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = def.RetryAfter
	}
	if opts.ShardTimeout <= 0 {
		opts.ShardTimeout = def.ShardTimeout
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = def.ProbeTimeout
	}
	if opts.Retry == (retry.Policy{}) {
		opts.Retry = def.Retry
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	reg := metrics.NewRegistry()
	opts.Tracer.BindMetrics(reg, "kbrouter")
	rt := &Router{
		opts:    opts,
		ring:    NewRing(opts.VNodes, opts.Replicas),
		client:  client,
		limiter: serving.NewLimiter(opts.MaxConcurrent),
		reg:     reg,
		tracer:  opts.Tracer,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	rt.health = newHealth(rt.ring.Replicas(), opts.FailAfter, opts.ProbeInterval, opts.ProbeTimeout, client, reg)
	return rt
}

// Start launches the active health prober.
func (rt *Router) Start() { rt.health.Start() }

// Stop shuts down the prober.
func (rt *Router) Stop() { rt.health.Stop() }

// Registry exposes the router's metrics registry (for tests and embedded
// harnesses; HTTP scraping goes through GET /metrics).
func (rt *Router) Registry() *metrics.Registry { return rt.reg }

// Ring exposes the placement ring (read-only use in tests/harnesses).
func (rt *Router) Ring() *Ring { return rt.ring }

// Health reports whether a replica is currently routable.
func (rt *Router) ReplicaHealthy(replica string) bool { return rt.health.Healthy(replica) }

// keySep joins tenant and term into one routing key without colliding
// with either's character set.
const keySep = "\x1f"

// routingKey places a query: tenant plus normalized term, so one term's
// repeat traffic lands on one replica and its result cache.
func routingKey(tenant, term string) string {
	return tenant + keySep + strings.ToLower(strings.TrimSpace(term))
}

// tenantOf extracts the tenant a request addresses: a /t/{name}/ path
// prefix wins, then the X-Medrelax-Tenant header, else "".
func tenantOf(r *http.Request) string {
	if rest, ok := strings.CutPrefix(r.URL.Path, "/t/"); ok {
		if name, _, ok := strings.Cut(rest, "/"); ok {
			return name
		}
	}
	return r.Header.Get(serving.TenantHeader)
}

// apiPath strips a /t/{name} prefix, returning the replica-side endpoint
// used for routing decisions ("/relax", "/relax/batch", ...). The full
// original path is still what gets proxied.
func apiPath(path string) string {
	if rest, ok := strings.CutPrefix(path, "/t/"); ok {
		if _, sub, ok := strings.Cut(rest, "/"); ok {
			return "/" + sub
		}
	}
	return path
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /stats", rt.handleStats)
	mux.Handle("GET /debug/traces", rt.tracer.Recorder())
	mux.HandleFunc("POST /admin/reload", rt.handleReloadAll)
	mux.Handle("/", rt.instrument(http.HandlerFunc(rt.route)))
	return mux
}

// route dispatches proxied endpoints by their replica-side path.
func (rt *Router) route(w http.ResponseWriter, r *http.Request) {
	switch apiPath(r.URL.Path) {
	case "/relax":
		rt.handleRelax(w, r)
	case "/relax/batch":
		rt.handleBatch(w, r)
	case "/chat":
		rt.handleChat(w, r)
	case "/terms":
		rt.handleTerms(w, r)
	default:
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown endpoint"})
	}
}

// trackedEndpoints bounds the endpoint label cardinality, mirroring the
// serving layer's discipline.
var trackedEndpoints = []string{"/relax", "/relax/batch", "/chat", "/terms"}

// instrument applies router admission and per-endpoint accounting. The
// concurrency cap sheds BEFORE any replica connection is made: an
// overloaded cluster answers cheap 429s at the edge instead of queueing
// on a busy shard.
func (rt *Router) instrument(next http.Handler) http.Handler {
	inflight := rt.reg.Gauge("kbrouter_http_inflight", "requests currently being routed", "")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		endpoint := apiPath(r.URL.Path)
		if !tracked(endpoint) {
			endpoint = "other"
		}
		epLabel := metrics.Label("endpoint", endpoint)
		inflight.Inc()
		defer inflight.Dec()

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		ctx, root := rt.tracer.StartRequest(r.Context(), r.Header, "router "+endpoint)
		if root != nil {
			if tn := tenantOf(r); tn != "" {
				root.SetTag("tenant", tn)
			}
			r = r.WithContext(ctx)
			defer func() {
				root.SetTag("status", strconv.Itoa(rec.status))
				root.End()
			}()
		}

		if endpoint == "/relax" || endpoint == "/relax/batch" || endpoint == "/chat" {
			adm := root.StartChild("router.admission")
			if !rt.limiter.TryAcquire() {
				adm.SetTag("outcome", "shed")
				adm.End()
				rt.shed(rec, endpoint)
				return
			}
			adm.SetTag("outcome", "admitted")
			adm.End()
			defer rt.limiter.Release()
		}

		start := time.Now()
		next.ServeHTTP(rec, r)
		rt.reg.Histogram("kbrouter_http_request_seconds", "router request latency by endpoint", epLabel).
			Observe(time.Since(start).Seconds())
		rt.reg.Counter("kbrouter_http_requests_total", "router requests by endpoint and status code",
			epLabel+",code=\""+strconv.Itoa(rec.status)+"\"").Inc()
	})
}

func tracked(path string) bool {
	for _, ep := range trackedEndpoints {
		if path == ep {
			return true
		}
	}
	return false
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// shed rejects with 429 + Retry-After before consuming any replica
// capacity — the same contract the serving layer's admission uses, so one
// client backoff policy covers both tiers.
func (rt *Router) shed(w http.ResponseWriter, endpoint string) {
	w.Header().Set("Retry-After", strconv.Itoa(int((rt.opts.RetryAfter+time.Second-1)/time.Second)))
	writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "server overloaded: over concurrency limit"})
	rt.reg.Counter("kbrouter_http_shed_total", "requests shed by router admission control",
		metrics.Label("endpoint", endpoint)).Inc()
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	healthy, total := rt.health.HealthyCount()
	status := http.StatusOK
	if healthy == 0 {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"status":          map[bool]string{true: "ok", false: "degraded"}[healthy > 0],
		"replicasHealthy": healthy,
		"replicasTotal":   total,
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := rt.reg.WritePrometheus(w); err != nil {
		log.Printf("router: writing metrics: %v", err)
	}
}

func (rt *Router) handleStats(w http.ResponseWriter, _ *http.Request) {
	replicas := rt.ring.Replicas()
	states := make(map[string]bool, len(replicas))
	for _, rep := range replicas {
		states[rep] = rt.health.Healthy(rep)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"role":     "router",
		"replicas": states,
		"vnodes":   rt.opts.VNodes,
	})
}

// handleReloadAll fans POST /admin/reload to every replica so a bundle
// swap hits the whole cluster in one call.
func (rt *Router) handleReloadAll(w http.ResponseWriter, r *http.Request) {
	replicas := rt.ring.Replicas()
	results := make(map[string]string, len(replicas))
	var mu sync.Mutex
	var wg sync.WaitGroup
	failures := 0
	for _, rep := range replicas {
		wg.Add(1)
		go func(rep string) {
			defer wg.Done()
			status, _, _, err := rt.send(r.Context(), rep, http.MethodPost, "/admin/reload", nil, nil)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				results[rep] = "unreachable: " + err.Error()
				failures++
			case status != http.StatusOK:
				results[rep] = "status " + strconv.Itoa(status)
				failures++
			default:
				results[rep] = "reloaded"
			}
		}(rep)
	}
	wg.Wait()
	status := http.StatusOK
	if failures > 0 {
		status = http.StatusBadGateway
	}
	writeJSON(w, status, map[string]any{"replicas": results})
}

// handleRelax proxies GET /relax to the replica owning tenant+term,
// failing over around unhealthy replicas with the shared backoff policy.
// The owning replica's response is copied verbatim — status, content
// type, and body bytes — so routing is invisible to the byte-identity
// contract.
func (rt *Router) handleRelax(w http.ResponseWriter, r *http.Request) {
	term := r.URL.Query().Get("term")
	if term == "" {
		// The router needs the term to place the request; answer exactly as
		// the replica would without spending a hop.
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing term parameter"})
		return
	}
	key := routingKey(tenantOf(r), term)
	status, header, body, err := rt.forward(r, key)
	if err != nil {
		writeUnavailable(w, err)
		return
	}
	copyResponse(w, status, header, body)
}

// handleChat pins a conversation to one replica by hashing its session id
// — dialogue state lives server-side, so affinity is correctness, not
// just cache friendliness.
func (rt *Router) handleChat(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "reading request body: " + err.Error()})
		return
	}
	var probe struct {
		Session string `json:"session"`
	}
	// A malformed body still forwards: the replica owns the error shape.
	_ = json.Unmarshal(body, &probe)
	r.Body = io.NopCloser(bytes.NewReader(body))
	key := routingKey(tenantOf(r), "chat"+keySep+probe.Session)
	status, header, respBody, err := rt.forward(r, key)
	if err != nil {
		writeUnavailable(w, err)
		return
	}
	copyResponse(w, status, header, respBody)
}

// handleTerms proxies to any healthy replica: every replica holds the full
// bundle, so term enumeration is placement-free.
func (rt *Router) handleTerms(w http.ResponseWriter, r *http.Request) {
	status, header, body, err := rt.forward(r, "terms")
	if err != nil {
		writeUnavailable(w, err)
		return
	}
	copyResponse(w, status, header, body)
}

// candidates returns the replica try-order for key: healthy owners in ring
// order first, then unhealthy ones as a last resort — a fully-down
// cluster still gets attempted rather than synthesizing failure.
func (rt *Router) candidates(key string) []string {
	owners := rt.ring.Owners(key, len(rt.ring.Replicas()))
	healthy := make([]string, 0, len(owners))
	down := make([]string, 0, len(owners))
	for _, rep := range owners {
		if rt.health.Healthy(rep) {
			healthy = append(healthy, rep)
		} else {
			down = append(down, rep)
		}
	}
	return append(healthy, down...)
}

// forward proxies one request to the replica owning key, buffering the
// body so retries can replay it.
func (rt *Router) forward(r *http.Request, key string) (int, http.Header, []byte, error) {
	var body []byte
	if r.Body != nil && r.Method != http.MethodGet {
		var err error
		if body, err = io.ReadAll(r.Body); err != nil {
			return 0, nil, nil, err
		}
	}
	return rt.forwardReq(r.Context(), r.Method, r.URL.RequestURI(), r.Header, body, key)
}

// forwardReq sends one request to the replica owning key, retrying on
// transport failure and shed/transient statuses per the backoff policy.
// Transport errors advance to the next candidate immediately (and count
// against the failing replica's health); 429/503 wait out the backoff
// first, honoring Retry-After. Whatever response ends the loop is
// returned verbatim.
func (rt *Router) forwardReq(ctx context.Context, method, uri string, header http.Header, body []byte, key string) (int, http.Header, []byte, error) {
	cands := rt.candidates(key)
	if len(cands) == 0 {
		return 0, nil, nil, errNoReplicas
	}
	pol := rt.opts.Retry
	parent := trace.FromContext(ctx)
	var lastErr error
	for attempt := 0; ; attempt++ {
		rep := cands[attempt%len(cands)]
		// Each try gets its own span so a failover walk shows up as a chain
		// of attempts, each tagged with the replica it hit and how it ended.
		sctx := ctx
		var att *trace.Span
		if parent != nil {
			att = parent.StartChild("router.attempt")
			att.SetTag("replica", rep)
			sctx = trace.ContextWithSpan(ctx, att)
		}
		status, respHeader, respBody, err := rt.send(sctx, rep, method, uri, header, body)
		if err != nil {
			if att != nil {
				att.SetTag("outcome", "transport_error")
				att.End()
			}
			rt.health.ReportFailure(rep)
			rt.reg.Counter("kbrouter_replica_errors_total", "transport-level replica failures",
				metrics.Label("replica", rep)).Inc()
			lastErr = err
			if attempt >= pol.MaxRetries {
				return 0, nil, nil, lastErr
			}
			rt.countRetry(rep)
			if len(cands) == 1 {
				time.Sleep(rt.wait(pol, attempt, 0))
			}
			continue
		}
		rt.health.ReportSuccess(rep)
		// Replica-side spans ride back on the response header; merging them
		// here is what makes one router trace span both processes.
		parent.AdoptEncoded(respHeader.Get(trace.SpansHeader))
		if retry.RetryableStatus(status) && attempt < pol.MaxRetries {
			if att != nil {
				att.SetTag("outcome", "retry_status")
				att.SetTag("status", strconv.Itoa(status))
				att.End()
			}
			rt.countRetry(rep)
			time.Sleep(rt.wait(pol, attempt, retry.After(respHeader)))
			continue
		}
		if att != nil {
			att.SetTag("outcome", "ok")
			att.SetTag("status", strconv.Itoa(status))
			att.End()
		}
		return status, respHeader, respBody, nil
	}
}

func (rt *Router) countRetry(replica string) {
	rt.reg.Counter("kbrouter_replica_retries_total", "proxy retries by replica",
		metrics.Label("replica", replica)).Inc()
}

// wait serializes rng access around the shared policy's jitter draw.
func (rt *Router) wait(pol retry.Policy, attempt int, retryAfter time.Duration) time.Duration {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return pol.Wait(attempt, retryAfter, rt.rng)
}

// send issues one request to one replica, accounting inflight, and returns
// the full response.
func (rt *Router) send(ctx context.Context, replica, method, pathAndQuery string, header http.Header, body []byte) (int, http.Header, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, "http://"+replica+pathAndQuery, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	copyHeader(req.Header, header)
	// Re-parent the outbound hop under the current attempt span (overrides
	// any client-supplied traceparent copied above).
	trace.Inject(ctx, req.Header)
	inflight := rt.reg.Gauge("kbrouter_replica_inflight", "requests in flight per replica",
		metrics.Label("replica", replica))
	inflight.Inc()
	defer inflight.Dec()
	rt.reg.Counter("kbrouter_replica_requests_total", "requests sent per replica",
		metrics.Label("replica", replica)).Inc()
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

// hopByHop are the connection-scoped headers a proxy must not forward.
var hopByHop = map[string]bool{
	"Connection":        true,
	"Keep-Alive":        true,
	"Transfer-Encoding": true,
	"Upgrade":           true,
	"Proxy-Connection":  true,
	"Te":                true,
	"Trailer":           true,
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// copyResponse relays a replica response verbatim: the exact body bytes
// plus the headers that carry contract (content type and retry hints).
func copyResponse(w http.ResponseWriter, status int, header http.Header, body []byte) {
	if ct := header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(status)
	w.Write(body)
}

func writeUnavailable(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "no replica available: " + err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("router: encoding response: %v", err)
	}
}
