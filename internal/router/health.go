package router

import (
	"context"
	"net/http"
	"sync"
	"time"

	"medrelax/internal/serving/metrics"
)

// replicaState is one replica's health record. Healthy flips to false
// after failAfter consecutive failures (probe or live-request transport
// errors) and back to true on the first success — recovery should be
// fast, suspicion should take evidence.
type replicaState struct {
	healthy  bool
	failures int
}

// health tracks replica liveness from two signals: an active prober
// (periodic GET /healthz with a short timeout) and passive reports from
// the proxy path (a transport error to a replica is as good as a failed
// probe — better, it is free). Both feed the same consecutive-failure
// counter so a replica cannot look healthy to the prober while timing out
// real requests.
type health struct {
	failAfter int
	interval  time.Duration
	timeout   time.Duration
	client    *http.Client
	reg       *metrics.Registry

	mu    sync.RWMutex
	state map[string]*replicaState

	stop chan struct{}
	done chan struct{}
}

func newHealth(replicas []string, failAfter int, interval, timeout time.Duration, client *http.Client, reg *metrics.Registry) *health {
	if failAfter <= 0 {
		failAfter = 3
	}
	h := &health{
		failAfter: failAfter,
		interval:  interval,
		timeout:   timeout,
		client:    client,
		reg:       reg,
		state:     make(map[string]*replicaState, len(replicas)),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, rep := range replicas {
		// Start healthy: a cold router should route immediately and let the
		// first failures demote, not black-hole traffic until the first
		// probe round completes.
		h.state[rep] = &replicaState{healthy: true}
		h.gauge(rep).Set(1)
	}
	return h
}

func (h *health) gauge(replica string) *metrics.Gauge {
	return h.reg.Gauge("kbrouter_replica_healthy",
		"1 when the replica is accepting traffic, 0 when marked down",
		metrics.Label("replica", replica))
}

// Healthy reports whether replica is currently accepting traffic.
// Unknown replicas are unhealthy.
func (h *health) Healthy(replica string) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s, ok := h.state[replica]
	return ok && s.healthy
}

// HealthyCount returns (healthy, total).
func (h *health) HealthyCount() (int, int) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	n := 0
	for _, s := range h.state {
		if s.healthy {
			n++
		}
	}
	return n, len(h.state)
}

// ReportSuccess resets the failure count and restores the replica on the
// first good signal after a bad stretch.
func (h *health) ReportSuccess(replica string) {
	h.mu.Lock()
	s, ok := h.state[replica]
	if !ok {
		h.mu.Unlock()
		return
	}
	s.failures = 0
	recovered := !s.healthy
	s.healthy = true
	h.mu.Unlock()
	if recovered {
		h.transition(replica, "healthy")
	}
}

// ReportFailure counts one failed probe or transport error; the replica is
// marked down once failures reach the threshold.
func (h *health) ReportFailure(replica string) {
	h.mu.Lock()
	s, ok := h.state[replica]
	if !ok {
		h.mu.Unlock()
		return
	}
	s.failures++
	demoted := s.healthy && s.failures >= h.failAfter
	if demoted {
		s.healthy = false
	}
	h.mu.Unlock()
	if demoted {
		h.transition(replica, "unhealthy")
	}
}

func (h *health) transition(replica, to string) {
	h.reg.Counter("kbrouter_health_transitions_total",
		"replica health state changes by direction",
		metrics.Label("replica", replica)+","+metrics.Label("to", to)).Inc()
	if to == "healthy" {
		h.gauge(replica).Set(1)
	} else {
		h.gauge(replica).Set(0)
	}
}

// Start launches the active prober; Stop shuts it down and waits.
func (h *health) Start() {
	go h.probeLoop()
}

func (h *health) Stop() {
	close(h.stop)
	<-h.done
}

func (h *health) probeLoop() {
	defer close(h.done)
	if h.interval <= 0 {
		return
	}
	ticker := time.NewTicker(h.interval)
	defer ticker.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-ticker.C:
			h.probeAll()
		}
	}
}

func (h *health) probeAll() {
	h.mu.RLock()
	replicas := make([]string, 0, len(h.state))
	for rep := range h.state {
		replicas = append(replicas, rep)
	}
	h.mu.RUnlock()
	var wg sync.WaitGroup
	for _, rep := range replicas {
		wg.Add(1)
		go func(rep string) {
			defer wg.Done()
			h.probe(rep)
		}(rep)
	}
	wg.Wait()
}

func (h *health) probe(replica string) {
	ctx, cancel := context.WithTimeout(context.Background(), h.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+replica+"/healthz", nil)
	if err != nil {
		h.ReportFailure(replica)
		return
	}
	resp, err := h.client.Do(req)
	if err != nil {
		h.ReportFailure(replica)
		return
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		h.ReportSuccess(replica)
	} else {
		h.ReportFailure(replica)
	}
}
