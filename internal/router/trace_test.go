package router

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"medrelax/internal/trace"
)

const testTraceparent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
const testTraceID = "0af7651916cd43dd8448eb211c80319c"

// traceFake wraps a fakeReplica's /relax with a replica-side tracer, the
// way a real kbserver would behave: join the incoming trace context,
// record a kernel span, and back-haul it on the response header.
func traceFake(f *fakeReplica, tracer *trace.Tracer) {
	f.relax = func(w http.ResponseWriter, r *http.Request) bool {
		_, sp := tracer.StartRequest(r.Context(), r.Header, "server /relax")
		k := sp.StartChild("relax.kernel")
		k.SetTag("path", "live_path")
		k.End()
		if enc := sp.EncodeFinished(); enc != "" {
			w.Header().Set(trace.SpansHeader, enc)
		}
		sp.End()
		return false // fall through to the default echo response
	}
}

// TestTracePropagationSurvivesFailover kills the replica owning a term
// and requires the client's trace context to arrive intact at the
// surviving replica, with the failover walk visible as attempt spans in
// one router trace.
func TestTracePropagationSurvivesFailover(t *testing.T) {
	rec := trace.NewRecorder(16, 4)
	fakes := []*fakeReplica{newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")}
	replicaTracer := trace.NewTracer("kbserver", 0, nil)
	for _, f := range fakes {
		traceFake(f, replicaTracer)
	}
	rt := testRouter(t, fakes, func(o *Options) {
		o.FailAfter = 1
		o.Tracer = trace.NewTracer("kbrouter", 0, rec)
	})
	h := rt.Handler()

	victim := fakes[0]
	var term string
	for i := 0; ; i++ {
		term = "probe-" + strings.Repeat("x", i%3) + string(rune('a'+i%26))
		if rt.Ring().Owner(routingKey("", term)) == victim.addr() {
			break
		}
		if i > 10000 {
			t.Fatal("no term owned by victim replica")
		}
	}
	victim.srv.Close()

	reqRec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/relax?term="+term, nil)
	req.Header.Set(trace.TraceparentHeader, testTraceparent)
	h.ServeHTTP(reqRec, req)
	if reqRec.Code != 200 {
		t.Fatalf("status %d after failover: %s", reqRec.Code, reqRec.Body.String())
	}
	// The backhaul header is router-internal; it must never leak to the
	// client through the proxy's response copy.
	if reqRec.Header().Get(trace.SpansHeader) != "" {
		t.Error("span backhaul header leaked through the router to the client")
	}

	traces, _ := rec.Snapshot(false)
	if len(traces) != 1 {
		t.Fatalf("router recorded %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.TraceID != testTraceID {
		t.Fatalf("router trace id %s, want the client-minted %s", tr.TraceID, testTraceID)
	}

	var attempts, kernels int
	outcomes := map[string]int{}
	services := map[string]bool{}
	for _, s := range tr.Spans {
		services[s.Service] = true
		switch s.Name {
		case "router.attempt":
			attempts++
			outcomes[s.Tag("outcome")]++
			if s.Tag("replica") == "" {
				t.Error("attempt span missing replica tag")
			}
		case "relax.kernel":
			kernels++
			if s.Tag("path") != "live_path" {
				t.Errorf("kernel span path %q, want live_path", s.Tag("path"))
			}
		}
	}
	if attempts < 2 {
		t.Fatalf("trace shows %d attempts, want >= 2 (failed + failover)", attempts)
	}
	if outcomes["transport_error"] < 1 || outcomes["ok"] != 1 {
		t.Fatalf("attempt outcomes %v, want >=1 transport_error and exactly 1 ok", outcomes)
	}
	if kernels != 1 {
		t.Fatalf("trace shows %d replica kernel spans, want 1 (adopted via backhaul)", kernels)
	}
	if !services["kbrouter"] || !services["kbserver"] {
		t.Fatalf("trace services %v, want both kbrouter and kbserver", services)
	}
}

// TestScatterBatchTraceCoversShards drives a traced /relax/batch across
// three replicas and requires one trace holding the admission span, a
// shard span per replica touched, and the adopted replica spans — the
// in-process version of CI's trace-smoke assertion.
func TestScatterBatchTraceCoversShards(t *testing.T) {
	rec := trace.NewRecorder(16, 4)
	fakes := []*fakeReplica{newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")}
	rt := testRouter(t, fakes, func(o *Options) {
		o.Tracer = trace.NewTracer("kbrouter", 0, rec)
	})
	h := rt.Handler()

	body := `{"queries":[{"term":"fever"},{"term":"cough"},{"term":"rash"},{"term":"nausea"},{"term":"chills"},{"term":"ache"}]}`
	reqRec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/relax/batch", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.TraceparentHeader, testTraceparent)
	h.ServeHTTP(reqRec, req)
	if reqRec.Code != 200 {
		t.Fatalf("batch status %d: %s", reqRec.Code, reqRec.Body.String())
	}
	var resp struct {
		Items []json.RawMessage `json:"items"`
	}
	if err := json.Unmarshal(reqRec.Body.Bytes(), &resp); err != nil || len(resp.Items) != 6 {
		t.Fatalf("batch response malformed (%v): %s", err, reqRec.Body.String())
	}

	traces, _ := rec.Snapshot(false)
	if len(traces) != 1 {
		t.Fatalf("router recorded %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.TraceID != testTraceID {
		t.Fatalf("trace id %s, want %s", tr.TraceID, testTraceID)
	}
	var admission, shards int
	shardReplicas := map[string]bool{}
	for _, s := range tr.Spans {
		switch s.Name {
		case "router.admission":
			admission++
			if s.Tag("outcome") != "admitted" {
				t.Errorf("admission outcome %q, want admitted", s.Tag("outcome"))
			}
		case "router.shard":
			shards++
			shardReplicas[s.Tag("replica")] = true
			if s.Tag("outcome") != "ok" {
				t.Errorf("shard outcome %q, want ok", s.Tag("outcome"))
			}
		}
	}
	if admission != 1 {
		t.Fatalf("trace shows %d admission spans, want 1", admission)
	}
	if shards < 1 || shards != len(shardReplicas) {
		t.Fatalf("trace shows %d shard spans over %d replicas, want one span per distinct replica",
			shards, len(shardReplicas))
	}
	if tr.Root != "router /relax/batch" {
		t.Fatalf("root span %q, want router /relax/batch", tr.Root)
	}
}

// TestUntracedRequestRecordsNothing pins the sampling contract: with
// self-sampling disabled and no client traceparent, no trace is recorded
// and no trace headers travel.
func TestUntracedRequestRecordsNothing(t *testing.T) {
	rec := trace.NewRecorder(16, 4)
	fake := newFakeReplica(t, "a")
	var sawTraceparent bool
	fake.relax = func(_ http.ResponseWriter, r *http.Request) bool {
		if r.Header.Get(trace.TraceparentHeader) != "" {
			sawTraceparent = true
		}
		return false
	}
	rt := testRouter(t, []*fakeReplica{fake}, func(o *Options) {
		o.Tracer = trace.NewTracer("kbrouter", 0, rec)
	})
	resp, body := get(t, rt.Handler(), "/relax?term=fever")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if _, total := rec.Snapshot(false); total != 0 {
		t.Fatalf("untraced request recorded %d traces", total)
	}
	if sawTraceparent {
		t.Error("untraced request carried a traceparent header to the replica")
	}
}
