// Package router is the distributed serving tier: a shard router that
// fronts N kbserver replicas. Placement is a consistent-hash ring over
// replica addresses (virtual nodes for balance, deterministic rebalancing
// when the set changes); /relax proxies to the owning replica, and
// /relax/batch scatter-gathers a batch across shards and merges positional
// outcomes byte-identical to a single-replica run. On the engine.Registry
// seam a shard is just a remote registry — the router never looks inside a
// bundle, it only decides which replica owns a routing key.
package router

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// ringPoint is one virtual node: a position on the hash circle owned by a
// replica.
type ringPoint struct {
	hash    uint64
	replica string
}

// Ring is a consistent-hash ring with virtual nodes. Placement depends
// only on the replica set and vnode count — never on insertion order — so
// every router instance computes identical ownership, and adding or
// removing one replica moves only the keys that land on its vnodes
// (~1/N of the keyspace), not a full reshuffle.
type Ring struct {
	vnodes int

	mu       sync.RWMutex
	points   []ringPoint // sorted by hash
	replicas []string    // sorted, deduplicated
}

// DefaultVNodes balances placement to within a few percent across
// realistic replica counts without making ring rebuilds noticeable.
const DefaultVNodes = 128

// NewRing builds a ring with the given virtual nodes per replica
// (<= 0 uses DefaultVNodes) over an initial replica set.
func NewRing(vnodes int, replicas []string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes}
	r.Set(replicas)
	return r
}

// keyHash is FNV-1a 64 run through a splitmix64-style finisher. FNV alone
// clusters on short, similar strings (vnode labels differ by a digit or
// two), which shows up directly as ownership skew; the finisher's
// avalanche spreads those neighbors across the whole circle.
func keyHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Set replaces the replica set, rebuilding the ring deterministically.
func (r *Ring) Set(replicas []string) {
	seen := make(map[string]bool, len(replicas))
	names := make([]string, 0, len(replicas))
	for _, rep := range replicas {
		if rep == "" || seen[rep] {
			continue
		}
		seen[rep] = true
		names = append(names, rep)
	}
	sort.Strings(names)
	points := make([]ringPoint, 0, len(names)*r.vnodes)
	for _, rep := range names {
		for i := 0; i < r.vnodes; i++ {
			points = append(points, ringPoint{keyHash(rep + "#" + strconv.Itoa(i)), rep})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// Hash ties (vanishingly rare) break by name so placement stays
		// deterministic across instances.
		return points[i].replica < points[j].replica
	})
	r.mu.Lock()
	r.points, r.replicas = points, names
	r.mu.Unlock()
}

// Add inserts one replica; a no-op if already present.
func (r *Ring) Add(replica string) {
	r.mu.RLock()
	cur := append([]string(nil), r.replicas...)
	r.mu.RUnlock()
	r.Set(append(cur, replica))
}

// Remove drops one replica; a no-op if absent.
func (r *Ring) Remove(replica string) {
	r.mu.RLock()
	cur := make([]string, 0, len(r.replicas))
	for _, rep := range r.replicas {
		if rep != replica {
			cur = append(cur, rep)
		}
	}
	r.mu.RUnlock()
	r.Set(cur)
}

// Replicas returns the current replica set, sorted.
func (r *Ring) Replicas() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.replicas...)
}

// Owner returns the replica owning key: the first vnode clockwise from the
// key's hash. Empty string on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct replicas in fallback order: the owner
// first, then each further replica in the order its first vnode appears
// clockwise. Every router instance computes the same order, so failover
// placement is as deterministic as primary placement.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.replicas) {
		n = len(r.replicas)
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.replica] {
			continue
		}
		seen[p.replica] = true
		owners = append(owners, p.replica)
	}
	return owners
}
