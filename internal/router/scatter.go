package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"medrelax/internal/server"
	"medrelax/internal/trace"
)

var errNoReplicas = errors.New("replica set is empty")

// scatterShardBuckets sizes the fan-out histogram: how many shards one
// batch touched.
var scatterShardBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}

// scatterItemBuckets sizes the per-shard sub-batch histogram.
var scatterItemBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// shardItem mirrors server.BatchItemResponse on the decode side: the raw
// body bytes survive untouched from replica to client, which is what
// makes the merged response byte-identical to a single-replica run.
type shardItem struct {
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body"`
}

// handleBatch is the scatter-gather path: split a ≤MaxBatchItems batch
// across shards by tenant/term ownership, fan out concurrently with
// per-shard deadlines, and merge positional outcomes. Request-level
// validation runs here, mirroring the replica's contract exactly, so a
// malformed batch fails identically whether it meets one replica or the
// router.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	// Typed decode first: it enforces the same shape the replica would,
	// producing the same 400 text for the same bytes.
	var typed server.BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&typed); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid JSON: " + err.Error()})
		return
	}
	if len(typed.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "queries must be a non-empty array"})
		return
	}
	if len(typed.Queries) > server.MaxBatchItems {
		writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{
			"error": fmt.Sprintf("batch of %d exceeds limit of %d", len(typed.Queries), server.MaxBatchItems)})
		return
	}

	tenant := tenantOf(r)
	// Group item positions by owning replica. Ring order plus health-aware
	// fallback means a down shard's items flow to the next owner rather
	// than failing.
	type shard struct {
		indices []int
		items   []server.BatchItem
	}
	shards := map[string]*shard{}
	for i, q := range typed.Queries {
		cands := rt.candidates(routingKey(tenant, q.Term))
		if len(cands) == 0 {
			writeUnavailable(w, errNoReplicas)
			return
		}
		rep := cands[0]
		s := shards[rep]
		if s == nil {
			s = &shard{}
			shards[rep] = s
		}
		s.indices = append(s.indices, i)
		s.items = append(s.items, q)
	}
	rt.reg.HistogramWith("kbrouter_scatter_shards", "shards touched per batch", "", scatterShardBuckets).
		Observe(float64(len(shards)))

	// Fan out with a per-shard deadline; merged item responses land at
	// their original positions.
	items := make([]shardItem, len(typed.Queries))
	// Deterministic shard order keeps retries and metrics stable in tests.
	order := make([]string, 0, len(shards))
	for rep := range shards {
		order = append(order, rep)
	}
	sort.Strings(order)
	var wg sync.WaitGroup
	for _, rep := range order {
		s := shards[rep]
		rt.reg.HistogramWith("kbrouter_scatter_items", "sub-batch size per shard request", "", scatterItemBuckets).
			Observe(float64(len(s.items)))
		wg.Add(1)
		go func(rep string, s *shard) {
			defer wg.Done()
			rt.scatterOne(r, rep, s.indices, s.items, items)
		}(rep, s)
	}
	wg.Wait()

	resp := make([]server.BatchItemResponse, len(items))
	for i, it := range items {
		resp[i] = server.BatchItemResponse{Status: it.Status, Body: it.Body}
	}
	writeJSON(w, http.StatusOK, map[string]any{"items": resp})
}

// scatterOne sends one shard's sub-batch and writes its outcomes into the
// positional result slice. A shard that stays unreachable (or sheds past
// the retry budget) resolves to per-item 503s — the batch never fails
// wholesale because one replica did.
func (rt *Router) scatterOne(r *http.Request, rep string, indices []int, subItems []server.BatchItem, out []shardItem) {
	ctx, cancel := context.WithTimeout(r.Context(), rt.opts.ShardTimeout)
	defer cancel()
	outcome := "ok"
	if parent := trace.FromContext(ctx); parent != nil {
		sp := parent.StartChild("router.shard")
		sp.SetTag("replica", rep)
		sp.SetTag("items", strconv.Itoa(len(subItems)))
		ctx = trace.ContextWithSpan(ctx, sp)
		defer func() {
			sp.SetTag("outcome", outcome)
			sp.End()
		}()
	}
	body, err := json.Marshal(server.BatchRequest{Queries: subItems})
	if err != nil {
		outcome = "encode_error"
		rt.failShard(out, indices, "encoding sub-batch: "+err.Error())
		return
	}
	// The shard key routes retries back through the same candidate chain
	// the items were placed with.
	key := routingKey(tenantOf(r), subItems[0].Term)
	status, _, respBody, err := rt.forwardReq(ctx, http.MethodPost, r.URL.RequestURI(), r.Header, body, key)
	if err != nil {
		outcome = "unreachable"
		rt.failShard(out, indices, "replica unreachable: "+err.Error())
		return
	}
	if status != http.StatusOK {
		outcome = "bad_status"
		rt.failShard(out, indices, fmt.Sprintf("replica answered status %d", status))
		return
	}
	var shardResp struct {
		Items []shardItem `json:"items"`
	}
	if err := json.Unmarshal(respBody, &shardResp); err != nil || len(shardResp.Items) != len(indices) {
		outcome = "malformed_response"
		rt.failShard(out, indices, "malformed shard response")
		return
	}
	for j, idx := range indices {
		out[idx] = shardResp.Items[j]
	}
}

// failShard marks every item of a failed shard as a retryable 503 — the
// shed shape clients already know how to back off from.
func (rt *Router) failShard(out []shardItem, indices []int, reason string) {
	rt.reg.Counter("kbrouter_scatter_shard_failures_total", "scatter shard requests that failed wholesale", "").Inc()
	body, _ := json.Marshal(map[string]string{"error": "shard unavailable: " + reason})
	for _, idx := range indices {
		out[idx] = shardItem{Status: http.StatusServiceUnavailable, Body: body}
	}
}
