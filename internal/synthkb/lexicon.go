// Package synthkb generates a synthetic, SNOMED-CT-like external knowledge
// source, standing in for the licensed SNOMED CT the paper uses (see
// DESIGN.md, substitution table).
//
// The generator is deterministic for a fixed seed and produces the
// structural properties the relaxation algorithms depend on: a rooted
// multi-parent DAG with deep clinical-finding hierarchies, synonym
// variation, latent (unregistered) surface variants for the embedding
// matcher to discover, and planted sibling-antonym pairs such as
// hyperthermia/hypothermia — the paper's "psychogenic fever" example,
// where a near neighbour in the taxonomy is clinically opposite.
//
// Alongside the graph, the generator exposes per-concept ground-truth
// attributes (body system, condition type, severity depth, polarity) from
// which the evaluation oracle derives relevance judgments.
package synthkb

// bodySystem describes one organ system with the organ nouns and
// adjective/noun synonym pairs used to assemble condition names.
type bodySystem struct {
	Name string
	// Organs are the site nouns conditions attach to.
	Organs []string
	// Adjective is the system-level adjective ("respiratory").
	Adjective string
	// SynonymPairs maps a token to an interchangeable token
	// ("renal" -> "kidney"); used both for registered synonyms and for
	// latent variants.
	SynonymPairs map[string]string
}

var bodySystems = []bodySystem{
	{
		Name: "respiratory", Adjective: "respiratory",
		Organs:       []string{"lung", "bronchus", "trachea", "pleura", "larynx", "sinus", "airway"},
		SynonymPairs: map[string]string{"lung": "pulmonary", "bronchus": "bronchial"},
	},
	{
		Name: "cardiovascular", Adjective: "cardiovascular",
		Organs:       []string{"heart", "aorta", "artery", "vein", "myocardium", "pericardium", "valve"},
		SynonymPairs: map[string]string{"heart": "cardiac", "myocardium": "myocardial"},
	},
	{
		Name: "renal", Adjective: "renal",
		Organs:       []string{"kidney", "ureter", "bladder", "urethra", "glomerulus", "nephron"},
		SynonymPairs: map[string]string{"kidney": "renal", "bladder": "vesical"},
	},
	{
		Name: "neurological", Adjective: "neurological",
		Organs:       []string{"brain", "spinal cord", "nerve", "meninges", "cerebellum", "cortex"},
		SynonymPairs: map[string]string{"brain": "cerebral", "nerve": "neural"},
	},
	{
		Name: "gastrointestinal", Adjective: "gastrointestinal",
		Organs:       []string{"stomach", "liver", "pancreas", "colon", "esophagus", "intestine", "gallbladder"},
		SynonymPairs: map[string]string{"stomach": "gastric", "liver": "hepatic", "colon": "colonic"},
	},
	{
		Name: "dermatological", Adjective: "dermatological",
		Organs:       []string{"skin", "dermis", "epidermis", "hair follicle", "nail", "sweat gland"},
		SynonymPairs: map[string]string{"skin": "cutaneous", "dermis": "dermal"},
	},
	{
		Name: "musculoskeletal", Adjective: "musculoskeletal",
		Organs:       []string{"bone", "joint", "muscle", "tendon", "ligament", "cartilage", "vertebra"},
		SynonymPairs: map[string]string{"bone": "osseous", "joint": "articular", "muscle": "muscular"},
	},
	{
		Name: "endocrine", Adjective: "endocrine",
		Organs:       []string{"thyroid", "adrenal gland", "pituitary", "pancreatic islet", "parathyroid"},
		SynonymPairs: map[string]string{"thyroid": "thyroidal"},
	},
	{
		Name: "hematologic", Adjective: "hematologic",
		Organs:       []string{"blood", "bone marrow", "platelet", "erythrocyte", "leukocyte", "plasma"},
		SynonymPairs: map[string]string{"blood": "hematic", "erythrocyte": "red cell"},
	},
	{
		Name: "ophthalmic", Adjective: "ophthalmic",
		Organs:       []string{"eye", "retina", "cornea", "lens", "optic nerve", "conjunctiva"},
		SynonymPairs: map[string]string{"eye": "ocular", "retina": "retinal"},
	},
	{
		Name: "otolaryngologic", Adjective: "otolaryngologic",
		Organs:       []string{"ear", "middle ear", "eardrum", "cochlea", "tonsil", "vocal cord"},
		SynonymPairs: map[string]string{"ear": "auricular", "eardrum": "tympanic membrane"},
	},
	{
		Name: "immunologic", Adjective: "immunologic",
		Organs:       []string{"lymph node", "spleen", "thymus", "antibody", "immune system"},
		SynonymPairs: map[string]string{"lymph node": "lymphatic gland", "spleen": "splenic tissue"},
	},
}

// conditionType is a pathological process with the noun used in assembled
// names and a relatedness ring: types listed in Related are clinically
// adjacent (an infection relates to inflammation, not to a neoplasm).
type conditionType struct {
	Name    string
	Noun    string
	Related []string
}

var conditionTypes = []conditionType{
	{Name: "infection", Noun: "infection", Related: []string{"inflammation", "abscess"}},
	{Name: "inflammation", Noun: "inflammation", Related: []string{"infection", "pain"}},
	{Name: "neoplasm", Noun: "neoplasm", Related: []string{"cyst"}},
	{Name: "pain", Noun: "pain", Related: []string{"inflammation", "injury"}},
	{Name: "injury", Noun: "injury", Related: []string{"pain", "hemorrhage"}},
	{Name: "obstruction", Noun: "obstruction", Related: []string{"stenosis"}},
	{Name: "insufficiency", Noun: "insufficiency", Related: []string{"degeneration"}},
	{Name: "degeneration", Noun: "degeneration", Related: []string{"insufficiency"}},
	{Name: "hemorrhage", Noun: "hemorrhage", Related: []string{"injury"}},
	{Name: "stenosis", Noun: "stenosis", Related: []string{"obstruction"}},
	{Name: "abscess", Noun: "abscess", Related: []string{"infection"}},
	{Name: "cyst", Noun: "cyst", Related: []string{"neoplasm"}},
}

// RelatedTypes reports whether two condition types are clinically adjacent
// in the generator's ground truth: identical types are always related, and
// otherwise the relation follows the Related ring of the type lexicon
// (symmetrically). The evaluation oracle uses this to judge relevance.
func RelatedTypes(a, b string) bool {
	if a == b {
		return true
	}
	for _, ct := range conditionTypes {
		if ct.Name == a {
			for _, r := range ct.Related {
				if r == b {
					return true
				}
			}
		}
		if ct.Name == b {
			for _, r := range ct.Related {
				if r == a {
					return true
				}
			}
		}
	}
	return false
}

// severityModifiers produce modified children of a base condition.
var severityModifiers = []string{"acute", "chronic", "severe", "mild", "recurrent"}

// stageModifiers produce a second modification level for chronic conditions.
var stageModifiers = []string{"stage 1", "stage 2", "stage 3"}

// antonymStem plants a hyper/hypo sibling pair under a system's disorder
// node. The two concepts are near neighbours in the taxonomy but
// clinically opposite; the oracle treats cross-polarity pairs as
// irrelevant, reproducing the paper's hyperpyrexia/hypothermia example.
type antonymStem struct {
	Stem    string
	System  string
	Synonym map[int]string // optional synonyms per polarity: +1 / -1
}

var antonymStems = []antonymStem{
	{Stem: "thermia", System: "neurological", Synonym: map[int]string{+1: "hyperpyrexia", -1: "low body temperature"}},
	{Stem: "tension", System: "cardiovascular", Synonym: map[int]string{+1: "high blood pressure", -1: "low blood pressure"}},
	{Stem: "glycemia", System: "endocrine", Synonym: map[int]string{+1: "high blood sugar", -1: "low blood sugar"}},
	{Stem: "kalemia", System: "renal"},
	{Stem: "natremia", System: "renal"},
	{Stem: "thyroidism", System: "endocrine"},
	{Stem: "calcemia", System: "endocrine"},
	{Stem: "volemia", System: "hematologic"},
}

// curatedFindings are hand-picked real condition names that anchor the
// synthetic hierarchy to the paper's running examples; they are attached
// under the matching (system, type) node.
type curatedFinding struct {
	Name     string
	System   string
	Type     string
	Synonyms []string
	// Latent variants: surface forms NOT registered as synonyms; the
	// embedding matcher has to discover them from corpus context.
	Latent []string
}

var curatedFindings = []curatedFinding{
	{Name: "pneumonia", System: "respiratory", Type: "infection", Synonyms: []string{"lung infection"}},
	{Name: "bronchitis", System: "respiratory", Type: "inflammation"},
	{Name: "pertussis", System: "respiratory", Type: "infection", Synonyms: []string{"whooping cough"}},
	{Name: "asthma", System: "respiratory", Type: "obstruction", Latent: []string{"reactive airway disease"}},
	{Name: "headache", System: "neurological", Type: "pain", Synonyms: []string{"cephalalgia"}, Latent: []string{"head pain"}},
	{Name: "migraine", System: "neurological", Type: "pain"},
	{Name: "fever", System: "neurological", Type: "inflammation", Synonyms: []string{"pyrexia"}, Latent: []string{"elevated temperature"}},
	{Name: "kidney disease", System: "renal", Type: "degeneration", Synonyms: []string{"nephropathy"}, Latent: []string{"renal disease"}},
	{Name: "renal impairment", System: "renal", Type: "insufficiency", Latent: []string{"kidney impairment"}},
	{Name: "pyelectasia", System: "renal", Type: "obstruction"},
	{Name: "hepatitis", System: "gastrointestinal", Type: "inflammation", Synonyms: []string{"liver inflammation"}},
	{Name: "gastritis", System: "gastrointestinal", Type: "inflammation", Latent: []string{"stomach inflammation"}},
	{Name: "myocardial infarction", System: "cardiovascular", Type: "injury", Synonyms: []string{"heart attack"}},
	{Name: "arrhythmia", System: "cardiovascular", Type: "degeneration", Latent: []string{"irregular heartbeat"}},
	{Name: "anemia", System: "hematologic", Type: "insufficiency", Latent: []string{"low red cell count"}},
	{Name: "thrombocytopenia", System: "hematologic", Type: "insufficiency", Synonyms: []string{"low platelet count"}},
	{Name: "dermatitis", System: "dermatological", Type: "inflammation", Synonyms: []string{"skin inflammation"}},
	{Name: "urticaria", System: "dermatological", Type: "inflammation", Synonyms: []string{"hives"}},
	{Name: "arthritis", System: "musculoskeletal", Type: "inflammation", Latent: []string{"joint inflammation"}},
	{Name: "osteoporosis", System: "musculoskeletal", Type: "degeneration"},
	{Name: "conjunctivitis", System: "ophthalmic", Type: "inflammation", Synonyms: []string{"pink eye"}},
	{Name: "glaucoma", System: "ophthalmic", Type: "degeneration"},
	{Name: "diabetes", System: "endocrine", Type: "insufficiency", Latent: []string{"diabetes mellitus"}},
	{Name: "pancreatitis", System: "gastrointestinal", Type: "inflammation"},
	{Name: "otitis media", System: "otolaryngologic", Type: "infection", Synonyms: []string{"middle ear infection"}, Latent: []string{"ear infection"}},
	{Name: "tonsillitis", System: "otolaryngologic", Type: "inflammation"},
	{Name: "tinnitus", System: "otolaryngologic", Type: "degeneration", Latent: []string{"ringing in the ears"}},
	{Name: "lymphadenopathy", System: "immunologic", Type: "inflammation", Synonyms: []string{"swollen lymph nodes"}},
	{Name: "anaphylaxis", System: "immunologic", Type: "injury", Latent: []string{"severe allergic reaction"}},
	{Name: "stroke", System: "neurological", Type: "injury", Synonyms: []string{"cerebrovascular accident"}, Latent: []string{"brain attack"}},
	{Name: "epilepsy", System: "neurological", Type: "degeneration", Synonyms: []string{"seizure disorder"}},
	{Name: "cystitis", System: "renal", Type: "infection", Synonyms: []string{"bladder infection"}, Latent: []string{"urinary tract infection"}},
	{Name: "eczema", System: "dermatological", Type: "inflammation", Synonyms: []string{"atopic dermatitis"}},
	{Name: "psoriasis", System: "dermatological", Type: "degeneration"},
	{Name: "gout", System: "musculoskeletal", Type: "inflammation", Latent: []string{"uric acid arthritis"}},
	{Name: "leukemia", System: "hematologic", Type: "neoplasm", Latent: []string{"blood cancer"}},
	{Name: "angina", System: "cardiovascular", Type: "pain", Synonyms: []string{"chest pain"}},
	{Name: "atherosclerosis", System: "cardiovascular", Type: "obstruction", Latent: []string{"hardening of the arteries"}},
}

// drugClasses seed a small pharmaceutical hierarchy so that drug terms can
// be mapped into the EKS as well.
var drugClasses = []struct {
	Name    string
	Members []string
}{
	{Name: "antibiotic agent", Members: []string{"amoxicillin", "azithromycin", "ciprofloxacin", "doxycycline", "cephalexin"}},
	{Name: "analgesic agent", Members: []string{"ibuprofen", "acetaminophen", "naproxen", "aspirin", "celecoxib"}},
	{Name: "antihypertensive agent", Members: []string{"lisinopril", "amlodipine", "losartan", "metoprolol", "hydrochlorothiazide"}},
	{Name: "antidiabetic agent", Members: []string{"metformin", "glipizide", "insulin glargine", "sitagliptin"}},
	{Name: "anticoagulant agent", Members: []string{"warfarin", "heparin", "apixaban", "rivaroxaban"}},
	{Name: "corticosteroid agent", Members: []string{"prednisone", "dexamethasone", "hydrocortisone", "budesonide"}},
}
