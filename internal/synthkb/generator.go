package synthkb

import (
	"fmt"
	"math/rand"
	"strings"

	"medrelax/internal/eks"
	"medrelax/internal/stringutil"
)

// Kind classifies a generated concept.
type Kind int

// Concept kinds.
const (
	KindStructural Kind = iota // root, top-level axes, grouping nodes
	KindFinding                // clinical finding usable as a KB finding
	KindDrug                   // pharmaceutical product
)

// Attr is the latent ground truth of a generated concept: the evaluation
// oracle judges relevance from these attributes, never from the graph the
// methods see.
type Attr struct {
	Kind     Kind
	System   string // body system, for findings
	Type     string // condition type, for findings
	Organ    string // anatomical site, for templated findings ("" when n/a)
	Severity int    // modifier depth: 0 base, 1 modified, 2 staged
	Polarity int    // 0 neutral, +1/-1 for antonym pairs
}

// Config controls the generator.
type Config struct {
	// Seed drives all randomness; the same seed yields the same world.
	Seed int64
	// ConditionsPerPair is how many templated base conditions are created
	// per (system, type) pair, beyond the curated findings. Default 2.
	ConditionsPerPair int
	// ModifierProb is the probability that a base condition receives each
	// severity modifier child. Default 0.75.
	ModifierProb float64
	// StageProb is the probability that a chronic condition receives stage
	// children. Default 0.6.
	StageProb float64
	// RegisterSynonymProb is the probability that a generated surface
	// variant is registered as an official synonym; otherwise it stays
	// latent (only discoverable through corpus context). Default 0.6.
	RegisterSynonymProb float64
}

func (c Config) withDefaults() Config {
	if c.ConditionsPerPair <= 0 {
		c.ConditionsPerPair = 2
	}
	if c.ModifierProb <= 0 {
		c.ModifierProb = 0.75
	}
	if c.StageProb <= 0 {
		c.StageProb = 0.6
	}
	if c.RegisterSynonymProb <= 0 {
		c.RegisterSynonymProb = 0.6
	}
	return c
}

// World is a generated external knowledge source plus its ground truth.
type World struct {
	Graph *eks.Graph
	// Attrs is the latent attribute of every concept.
	Attrs map[eks.ConceptID]Attr
	// Findings lists every finding concept (curated + templated + antonyms
	// + modified), sorted by ID.
	Findings []eks.ConceptID
	// Drugs lists every drug concept, sorted by ID.
	Drugs []eks.ConceptID
	// Latent maps a concept to surface variants that are NOT registered as
	// synonyms in the graph; the medkb generator uses them to create
	// paraphrase-named instances.
	Latent map[eks.ConceptID][]string
	// AntonymOf links each planted antonym concept to its opposite.
	AntonymOf map[eks.ConceptID]eks.ConceptID
	// Root is the top concept.
	Root eks.ConceptID
}

// builder accumulates state during generation.
type builder struct {
	cfg       Config
	rng       *rand.Rand
	g         *eks.Graph
	world     *World
	nextID    eks.ConceptID
	usedNames map[string]bool
}

// Generate builds a synthetic SNOMED-like world.
func Generate(cfg Config) (*World, error) {
	cfg = cfg.withDefaults()
	b := &builder{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		g:         eks.New(),
		nextID:    1000,
		usedNames: map[string]bool{},
	}
	b.world = &World{
		Graph:     b.g,
		Attrs:     map[eks.ConceptID]Attr{},
		Latent:    map[eks.ConceptID][]string{},
		AntonymOf: map[eks.ConceptID]eks.ConceptID{},
	}

	root, err := b.addConcept("SNOMED-like concept", Attr{Kind: KindStructural}, nil)
	if err != nil {
		return nil, err
	}
	b.world.Root = root
	if err := b.g.SetRoot(root); err != nil {
		return nil, err
	}

	finding, err := b.addConcept("clinical finding", Attr{Kind: KindStructural}, []eks.ConceptID{root})
	if err != nil {
		return nil, err
	}
	product, err := b.addConcept("pharmaceutical product", Attr{Kind: KindStructural}, []eks.ConceptID{root})
	if err != nil {
		return nil, err
	}
	// A couple of extra top-level axes for realism; nothing hangs off them.
	for _, axis := range []string{"body structure", "procedure", "observable entity"} {
		if _, err := b.addConcept(axis, Attr{Kind: KindStructural}, []eks.ConceptID{root}); err != nil {
			return nil, err
		}
	}

	if err := b.buildFindings(finding); err != nil {
		return nil, err
	}
	if err := b.buildDrugs(product); err != nil {
		return nil, err
	}
	if err := b.g.Validate(); err != nil {
		return nil, fmt.Errorf("synthkb: generated graph invalid: %w", err)
	}
	return b.world, nil
}

// addConcept inserts a concept with a fresh ID under the given parents.
// Name collisions are rejected by returning 0 without error, signalling the
// caller to skip — collisions would make gold mappings ambiguous.
func (b *builder) addConcept(name string, attr Attr, parents []eks.ConceptID) (eks.ConceptID, error) {
	key := stringutil.Normalize(name)
	if key == "" || b.usedNames[key] {
		return 0, nil
	}
	b.usedNames[key] = true
	id := b.nextID
	b.nextID++
	if err := b.g.AddConcept(eks.Concept{ID: id, Name: name}); err != nil {
		return 0, err
	}
	for _, p := range parents {
		if err := b.g.AddSubsumption(id, p); err != nil {
			return 0, err
		}
	}
	b.world.Attrs[id] = attr
	if attr.Kind == KindFinding {
		b.world.Findings = append(b.world.Findings, id)
	}
	if attr.Kind == KindDrug {
		b.world.Drugs = append(b.world.Drugs, id)
	}
	return id, nil
}

// addSynonymOrLatent attaches a surface variant to a concept: registered as
// a graph synonym with probability RegisterSynonymProb, kept latent
// otherwise.
func (b *builder) addSynonymOrLatent(id eks.ConceptID, variant string) {
	key := stringutil.Normalize(variant)
	if key == "" || b.usedNames[key] {
		return
	}
	if b.rng.Float64() < b.cfg.RegisterSynonymProb {
		b.usedNames[key] = true
		b.registerSynonym(id, variant)
	} else {
		b.world.Latent[id] = append(b.world.Latent[id], variant)
	}
}

// registerSynonym re-adds the concept's synonym through the graph's name
// index. The eks API takes synonyms at AddConcept time; since generation
// discovers variants later, we use the exported index through a rebuild of
// the concept — not available — so the graph gains synonyms via a small
// helper there. See eks.AddSynonym.
func (b *builder) registerSynonym(id eks.ConceptID, variant string) {
	b.g.AddSynonym(id, variant)
}

func (b *builder) buildFindings(findingRoot eks.ConceptID) error {
	// System disorder nodes.
	systemNode := map[string]eks.ConceptID{}
	for _, bs := range bodySystems {
		id, err := b.addConcept("disorder of "+bs.Name+" system", Attr{Kind: KindStructural, System: bs.Name}, []eks.ConceptID{findingRoot})
		if err != nil {
			return err
		}
		systemNode[bs.Name] = id
	}
	// (system, type) nodes. SNOMED's finding hierarchy is primarily
	// site-organized; condition-type grouping happens within a body system,
	// so the pair node's parent is the system node.
	pairNode := map[string]eks.ConceptID{}
	for _, bs := range bodySystems {
		for _, ct := range conditionTypes {
			name := bs.Adjective + " " + ct.Noun + " disorder"
			id, err := b.addConcept(name,
				Attr{Kind: KindStructural, System: bs.Name, Type: ct.Name},
				[]eks.ConceptID{systemNode[bs.Name]})
			if err != nil {
				return err
			}
			pairNode[bs.Name+"|"+ct.Name] = id
		}
	}

	// Curated findings.
	for _, cf := range curatedFindings {
		parent, ok := pairNode[cf.System+"|"+cf.Type]
		if !ok {
			return fmt.Errorf("synthkb: curated finding %q references unknown pair %s/%s", cf.Name, cf.System, cf.Type)
		}
		id, err := b.addConcept(cf.Name, Attr{Kind: KindFinding, System: cf.System, Type: cf.Type}, []eks.ConceptID{parent})
		if err != nil {
			return err
		}
		if id == 0 {
			continue
		}
		for _, syn := range cf.Synonyms {
			key := stringutil.Normalize(syn)
			if !b.usedNames[key] {
				b.usedNames[key] = true
				b.registerSynonym(id, syn)
			}
		}
		b.world.Latent[id] = append(b.world.Latent[id], cf.Latent...)
		if err := b.addModifiedChildren(id, cf.Name, Attr{Kind: KindFinding, System: cf.System, Type: cf.Type}); err != nil {
			return err
		}
	}

	// Templated conditions per (system, type). Most of them get a
	// second parent — the same system's pair node of a clinically related
	// type (e.g. a bronchial infection is also an inflammatory disorder) —
	// giving the DAG SNOMED-like multi-parenthood without collapsing
	// cross-system distances.
	for _, bs := range bodySystems {
		for _, ct := range conditionTypes {
			parent := pairNode[bs.Name+"|"+ct.Name]
			organs := b.pickOrgans(bs, b.cfg.ConditionsPerPair)
			for _, organ := range organs {
				name := organ + " " + ct.Noun
				attr := Attr{Kind: KindFinding, System: bs.Name, Type: ct.Name, Organ: organ}
				parents := []eks.ConceptID{parent}
				if len(ct.Related) > 0 && b.rng.Float64() < 0.7 {
					rel := ct.Related[b.rng.Intn(len(ct.Related))]
					if second, ok := pairNode[bs.Name+"|"+rel]; ok {
						parents = append(parents, second)
					}
				}
				id, err := b.addConcept(name, attr, parents)
				if err != nil {
					return err
				}
				if id == 0 {
					continue
				}
				// Surface variant from the system's synonym lexicon.
				if alt, ok := bs.SynonymPairs[organ]; ok {
					b.addSynonymOrLatent(id, alt+" "+ct.Noun)
				}
				if err := b.addModifiedChildren(id, name, attr); err != nil {
					return err
				}
			}
		}
	}

	// Antonym pairs under their system's disorder node.
	for _, as := range antonymStems {
		parent, ok := systemNode[as.System]
		if !ok {
			return fmt.Errorf("synthkb: antonym stem %q references unknown system %s", as.Stem, as.System)
		}
		hi, err := b.addConcept("hyper"+as.Stem, Attr{Kind: KindFinding, System: as.System, Type: "imbalance", Organ: as.Stem, Polarity: +1}, []eks.ConceptID{parent})
		if err != nil {
			return err
		}
		lo, err := b.addConcept("hypo"+as.Stem, Attr{Kind: KindFinding, System: as.System, Type: "imbalance", Organ: as.Stem, Polarity: -1}, []eks.ConceptID{parent})
		if err != nil {
			return err
		}
		if hi == 0 || lo == 0 {
			continue
		}
		b.world.AntonymOf[hi] = lo
		b.world.AntonymOf[lo] = hi
		// Fixed polarity order: map iteration would randomize rng draws.
		if syn, ok := as.Synonym[+1]; ok {
			b.addSynonymOrLatent(hi, syn)
		}
		if syn, ok := as.Synonym[-1]; ok {
			b.addSynonymOrLatent(lo, syn)
		}
	}
	return nil
}

// pickOrgans returns n organs of the system, cycling deterministically when
// n exceeds the lexicon.
func (b *builder) pickOrgans(bs bodySystem, n int) []string {
	out := make([]string, 0, n)
	perm := b.rng.Perm(len(bs.Organs))
	for i := 0; i < n && i < len(bs.Organs); i++ {
		out = append(out, bs.Organs[perm[i]])
	}
	return out
}

// addModifiedChildren hangs severity-modified children (and stage
// grandchildren under chronic) off a base condition.
func (b *builder) addModifiedChildren(base eks.ConceptID, baseName string, attr Attr) error {
	for _, mod := range severityModifiers {
		if b.rng.Float64() >= b.cfg.ModifierProb {
			continue
		}
		childAttr := attr
		childAttr.Severity = 1
		name := mod + " " + baseName
		id, err := b.addConcept(name, childAttr, []eks.ConceptID{base})
		if err != nil {
			return err
		}
		if id == 0 || mod != "chronic" {
			continue
		}
		if b.rng.Float64() >= b.cfg.StageProb {
			continue
		}
		for _, stage := range stageModifiers {
			stageAttr := attr
			stageAttr.Severity = 2
			if _, err := b.addConcept(name+" "+stage, stageAttr, []eks.ConceptID{id}); err != nil {
				return err
			}
		}
	}
	return nil
}

func (b *builder) buildDrugs(productRoot eks.ConceptID) error {
	for _, dc := range drugClasses {
		classID, err := b.addConcept(dc.Name, Attr{Kind: KindStructural}, []eks.ConceptID{productRoot})
		if err != nil {
			return err
		}
		for _, member := range dc.Members {
			if _, err := b.addConcept(member, Attr{Kind: KindDrug}, []eks.ConceptID{classID}); err != nil {
				return err
			}
		}
	}
	return nil
}

// FindingByName returns the finding concept whose preferred name matches,
// for tests and examples.
func (w *World) FindingByName(name string) (eks.ConceptID, bool) {
	ids := w.Graph.LookupName(name)
	for _, id := range ids {
		if w.Attrs[id].Kind == KindFinding {
			return id, true
		}
	}
	return 0, false
}

// SystemOf is a convenience accessor for a concept's latent body system.
func (w *World) SystemOf(id eks.ConceptID) string { return w.Attrs[id].System }

// Describe renders a one-line description of a concept for logs and
// examples.
func (w *World) Describe(id eks.ConceptID) string {
	c, ok := w.Graph.Concept(id)
	if !ok {
		return fmt.Sprintf("unknown concept %d", id)
	}
	attr := w.Attrs[id]
	parts := []string{c.Name}
	if attr.System != "" {
		parts = append(parts, "system="+attr.System)
	}
	if attr.Type != "" {
		parts = append(parts, "type="+attr.Type)
	}
	return strings.Join(parts, " ")
}
