package synthkb

import (
	"medrelax/internal/eks"
)

// This file provides hand-coded fixtures reproducing the exact snippets the
// paper draws in its figures, so the reproduction can be checked against
// the paper's own numbers (see EXPERIMENTS.md, "Figures").

// Figure 4 concept IDs: the SNOMED CT snippet with per-context frequencies.
const (
	Fig4Root             eks.ConceptID = 1 // clinical finding (stand-in root)
	Fig4PainHeadNeck     eks.ConceptID = 2 // pain of head and neck region
	Fig4CraniofacialPain eks.ConceptID = 3 // craniofacial pain
	Fig4PainInThroat     eks.ConceptID = 4 // pain in throat
	Fig4Headache         eks.ConceptID = 5 // headache
	Fig4FrequentHeadache eks.ConceptID = 6 // frequent headache
)

// Figure-4 context labels.
const (
	Fig4CtxIndication = "Indication-hasFinding-Finding"
	Fig4CtxRisk       = "Risk-hasFinding-Finding"
)

// Figure4Fixture returns the Figure 4 graph together with the direct
// per-context mention counts that make the propagated frequencies match the
// figure: "pain of head and neck region" totals 19164 (= 18878 + 283 + 3)
// in the Indication context and 1656 in the Risk context, and "craniofacial
// pain" is the frequency of itself together with that of "headache".
func Figure4Fixture() (*eks.Graph, map[string]map[eks.ConceptID]float64) {
	g := eks.New()
	must := func(err error) {
		if err != nil {
			panic("synthkb: figure 4 fixture: " + err.Error())
		}
	}
	concepts := []eks.Concept{
		{ID: Fig4Root, Name: "clinical finding"},
		{ID: Fig4PainHeadNeck, Name: "pain of head and neck region"},
		{ID: Fig4CraniofacialPain, Name: "craniofacial pain"},
		{ID: Fig4PainInThroat, Name: "pain in throat", Synonyms: []string{"sore throat"}},
		{ID: Fig4Headache, Name: "headache"},
		{ID: Fig4FrequentHeadache, Name: "frequent headache"},
	}
	for _, c := range concepts {
		must(g.AddConcept(c))
	}
	must(g.AddSubsumption(Fig4PainHeadNeck, Fig4Root))
	must(g.AddSubsumption(Fig4CraniofacialPain, Fig4PainHeadNeck))
	must(g.AddSubsumption(Fig4PainInThroat, Fig4PainHeadNeck))
	must(g.AddSubsumption(Fig4Headache, Fig4CraniofacialPain))
	must(g.AddSubsumption(Fig4FrequentHeadache, Fig4Headache))
	must(g.SetRoot(Fig4Root))

	// Direct counts per the figure. Propagation gives:
	//   headache            = 18000 + 878 (frequent headache)   = 18878
	//   craniofacial pain   = 0 + 18878                         = 18878
	//   pain of head & neck = 3 + 18878 + 283                   = 19164
	// and in the Risk context:
	//   headache = 1400 + 100 = 1500; craniofacial pain = 1500;
	//   pain of head & neck = 6 + 1500 + 150 = 1656.
	direct := map[string]map[eks.ConceptID]float64{
		Fig4CtxIndication: {
			Fig4Headache:         18000,
			Fig4FrequentHeadache: 878,
			Fig4PainInThroat:     283,
			Fig4PainHeadNeck:     3,
		},
		Fig4CtxRisk: {
			Fig4Headache:         1400,
			Fig4FrequentHeadache: 100,
			Fig4PainInThroat:     150,
			Fig4PainHeadNeck:     6,
		},
	}
	return g, direct
}

// Figure 5 concept IDs: the external knowledge source customization
// example — "chronic kidney disease stage 1 due to hypertension" is 3 hops
// from "kidney disease", which has a corresponding KB instance; ingestion
// adds a dashed shortcut edge carrying the original distance.
const (
	Fig5Root        eks.ConceptID = 1 // clinical finding
	Fig5Kidney      eks.ConceptID = 2 // kidney disease        [in KB]
	Fig5CKD         eks.ConceptID = 3 // chronic kidney disease
	Fig5CKDStage1   eks.ConceptID = 4 // chronic kidney disease stage 1
	Fig5CKDStage1HT eks.ConceptID = 5 // ... stage 1 due to hypertension
)

// Figure5Fixture returns the Figure 5 chain.
func Figure5Fixture() *eks.Graph {
	g := eks.New()
	must := func(err error) {
		if err != nil {
			panic("synthkb: figure 5 fixture: " + err.Error())
		}
	}
	concepts := []eks.Concept{
		{ID: Fig5Root, Name: "clinical finding"},
		{ID: Fig5Kidney, Name: "kidney disease", Synonyms: []string{"nephropathy"}},
		{ID: Fig5CKD, Name: "chronic kidney disease"},
		{ID: Fig5CKDStage1, Name: "chronic kidney disease stage 1"},
		{ID: Fig5CKDStage1HT, Name: "chronic kidney disease stage 1 due to hypertension"},
	}
	for _, c := range concepts {
		must(g.AddConcept(c))
	}
	must(g.AddSubsumption(Fig5Kidney, Fig5Root))
	must(g.AddSubsumption(Fig5CKD, Fig5Kidney))
	must(g.AddSubsumption(Fig5CKDStage1, Fig5CKD))
	must(g.AddSubsumption(Fig5CKDStage1HT, Fig5CKDStage1))
	must(g.SetRoot(Fig5Root))
	return g
}

// Figure 6 concept IDs: the directional path penalty example — pneumonia
// and lower respiratory tract infection are 4 hops apart; starting from
// pneumonia the first 3 hops are generalizations, starting from LRTI only
// the first hop is.
const (
	Fig6Root        eks.ConceptID = 1 // disorder of lower respiratory tract
	Fig6LowerInfl   eks.ConceptID = 2 // inflammation of lower respiratory tract
	Fig6Pneumonitis eks.ConceptID = 3 // pneumonitis
	Fig6Pneumonia   eks.ConceptID = 4 // pneumonia
	Fig6LRTI        eks.ConceptID = 5 // lower respiratory tract infection
)

// Figure6Fixture returns the Figure 6 snippet.
func Figure6Fixture() *eks.Graph {
	g := eks.New()
	must := func(err error) {
		if err != nil {
			panic("synthkb: figure 6 fixture: " + err.Error())
		}
	}
	concepts := []eks.Concept{
		{ID: Fig6Root, Name: "disorder of lower respiratory tract"},
		{ID: Fig6LowerInfl, Name: "inflammation of lower respiratory tract"},
		{ID: Fig6Pneumonitis, Name: "pneumonitis"},
		{ID: Fig6Pneumonia, Name: "pneumonia"},
		{ID: Fig6LRTI, Name: "lower respiratory tract infection"},
	}
	for _, c := range concepts {
		must(g.AddConcept(c))
	}
	must(g.AddSubsumption(Fig6LowerInfl, Fig6Root))
	must(g.AddSubsumption(Fig6Pneumonitis, Fig6LowerInfl))
	must(g.AddSubsumption(Fig6Pneumonia, Fig6Pneumonitis))
	must(g.AddSubsumption(Fig6LRTI, Fig6Root))
	must(g.SetRoot(Fig6Root))
	return g
}
