package synthkb_test

import (
	"math"
	"testing"

	"medrelax/internal/core"
	"medrelax/internal/eks"
	"medrelax/internal/ontology"
	"medrelax/internal/synthkb"
)

func TestGenerateValidWorld(t *testing.T) {
	w, err := synthkb.Generate(synthkb.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Graph.Len() < 500 {
		t.Errorf("world too small: %d concepts", w.Graph.Len())
	}
	if len(w.Findings) < 300 {
		t.Errorf("too few findings: %d", len(w.Findings))
	}
	if len(w.Drugs) < 20 {
		t.Errorf("too few drugs: %d", len(w.Drugs))
	}
	// Every finding has attributes with a system.
	for _, id := range w.Findings {
		attr := w.Attrs[id]
		if attr.Kind != synthkb.KindFinding || attr.System == "" {
			t.Fatalf("finding %d has bad attributes %+v", id, attr)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w1, err := synthkb.Generate(synthkb.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := synthkb.Generate(synthkb.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if w1.Graph.Len() != w2.Graph.Len() || w1.Graph.EdgeCount() != w2.Graph.EdgeCount() {
		t.Fatal("same seed must reproduce the same world")
	}
	ids1, ids2 := w1.Graph.ConceptIDs(), w2.Graph.ConceptIDs()
	for i := range ids1 {
		c1, _ := w1.Graph.Concept(ids1[i])
		c2, _ := w2.Graph.Concept(ids2[i])
		if c1.Name != c2.Name {
			t.Fatalf("concept %d name differs: %q vs %q", ids1[i], c1.Name, c2.Name)
		}
	}
	// Different seeds differ (at least in latent assignment or sizes).
	w3, err := synthkb.Generate(synthkb.Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if w3.Graph.Len() == w1.Graph.Len() && w3.Graph.EdgeCount() == w1.Graph.EdgeCount() {
		same := 0
		for id, v := range w1.Latent {
			if len(w3.Latent[id]) == len(v) {
				same++
			}
		}
		if same == len(w1.Latent) {
			t.Log("worlds with different seeds look identical — suspicious but not fatal")
		}
	}
}

func TestGenerateCuratedAndAntonyms(t *testing.T) {
	w, err := synthkb.Generate(synthkb.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"pneumonia", "headache", "kidney disease", "fever", "pyelectasia"} {
		if _, ok := w.FindingByName(name); !ok {
			t.Errorf("curated finding %q missing", name)
		}
	}
	// Synonym lookup works for registered synonyms.
	if ids := w.Graph.LookupName("whooping cough"); len(ids) == 0 {
		t.Error("registered synonym 'whooping cough' not indexed")
	}
	// Antonym pairs are mutual and have opposite polarity.
	if len(w.AntonymOf) == 0 {
		t.Fatal("no antonym pairs planted")
	}
	for a, b := range w.AntonymOf {
		if w.AntonymOf[b] != a {
			t.Errorf("antonym link not mutual: %d <-> %d", a, b)
		}
		if w.Attrs[a].Polarity*w.Attrs[b].Polarity != -1 {
			t.Errorf("antonyms %d,%d must have opposite polarity", a, b)
		}
		// Antonyms are close in the graph (shared parent => distance 2).
		if d, ok := w.Graph.SemanticDistance(a, b); !ok || d > 2 {
			t.Errorf("antonyms %d,%d at distance %d, want <= 2", a, b, d)
		}
	}
}

func TestGenerateLatentVariants(t *testing.T) {
	w, err := synthkb.Generate(synthkb.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Latent) == 0 {
		t.Fatal("no latent variants generated")
	}
	// Latent variants must not be resolvable by exact lookup.
	for id, variants := range w.Latent {
		for _, v := range variants {
			for _, hit := range w.Graph.LookupName(v) {
				if hit == id {
					t.Errorf("latent variant %q of %d is exact-resolvable", v, id)
				}
			}
		}
	}
}

func TestGenerateScalesUp(t *testing.T) {
	small, err := synthkb.Generate(synthkb.Config{Seed: 5, ConditionsPerPair: 2})
	if err != nil {
		t.Fatal(err)
	}
	big, err := synthkb.Generate(synthkb.Config{Seed: 5, ConditionsPerPair: 6})
	if err != nil {
		t.Fatal(err)
	}
	if big.Graph.Len() <= small.Graph.Len() {
		t.Errorf("ConditionsPerPair must scale the world: %d vs %d", big.Graph.Len(), small.Graph.Len())
	}
}

func TestGenerateMultiParent(t *testing.T) {
	w, err := synthkb.Generate(synthkb.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for _, id := range w.Graph.ConceptIDs() {
		if len(w.Graph.Parents(id)) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("world has no multi-parent concepts; SNOMED-like DAGs need them")
	}
}

func TestDescribe(t *testing.T) {
	w, err := synthkb.Generate(synthkb.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := w.FindingByName("pneumonia")
	desc := w.Describe(id)
	if desc == "" || w.Describe(999999999) == "" {
		t.Error("Describe must always return text")
	}
	if w.SystemOf(id) != "respiratory" {
		t.Errorf("SystemOf(pneumonia) = %q", w.SystemOf(id))
	}
}

// TestFigure4Frequencies reproduces the numbers printed in the paper's
// Figure 4: the propagated frequency of "pain of head and neck region" is
// 19164 (= 18878 + 283 + 3) in the Indication context and 1656 in the Risk
// context, and "craniofacial pain" equals headache's 18878.
func TestFigure4Frequencies(t *testing.T) {
	g, direct := synthkb.Figure4Fixture()
	ft, err := core.BuildFrequencyTableFromDirectCounts(g, direct, core.FrequencyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	check := func(id eks.ConceptID, label string, want float64) {
		t.Helper()
		if got := ft.Raw(id, label); got != want {
			c, _ := g.Concept(id)
			t.Errorf("freq(%s, %s) = %v, want %v", c.Name, label, got, want)
		}
	}
	check(synthkb.Fig4Headache, synthkb.Fig4CtxIndication, 18878)
	check(synthkb.Fig4CraniofacialPain, synthkb.Fig4CtxIndication, 18878)
	check(synthkb.Fig4PainInThroat, synthkb.Fig4CtxIndication, 283)
	check(synthkb.Fig4PainHeadNeck, synthkb.Fig4CtxIndication, 19164)
	check(synthkb.Fig4PainHeadNeck, synthkb.Fig4CtxRisk, 1656)
	// Root normalizes to 1 in each context.
	o := ontology.New()
	if got := ft.NormalizedForContext(synthkb.Fig4Root, nil, o); math.Abs(got-1) > 1e-12 {
		t.Errorf("root normalized = %v", got)
	}
}

// TestFigure5Shortcut reproduces Figure 5: after customization the
// 3-hop-distant "chronic kidney disease stage 1 due to hypertension"
// becomes a one-hop neighbour of "kidney disease" while the semantic
// distance stays 3.
func TestFigure5Shortcut(t *testing.T) {
	g := synthkb.Figure5Fixture()
	if d, ok := g.SemanticDistance(synthkb.Fig5CKDStage1HT, synthkb.Fig5Kidney); !ok || d != 3 {
		t.Fatalf("pre-customization distance = %d, want 3", d)
	}
	// kidney disease is the concept with a KB instance: simulate the
	// customization rule for the pair.
	if err := g.AddShortcutEdge(synthkb.Fig5CKDStage1HT, synthkb.Fig5Kidney, 3); err != nil {
		t.Fatal(err)
	}
	oneHop := false
	for _, nb := range g.NeighborsWithinHops(synthkb.Fig5Kidney, 1) {
		if nb.ID == synthkb.Fig5CKDStage1HT {
			oneHop = true
		}
	}
	if !oneHop {
		t.Error("shortcut must make the pair one-hop neighbours")
	}
	if d, _ := g.SemanticDistance(synthkb.Fig5CKDStage1HT, synthkb.Fig5Kidney); d != 3 {
		t.Errorf("post-customization semantic distance = %d, want 3", d)
	}
}

// TestFigure6PathPenalties reproduces Figure 6 / Example 4: the path from
// pneumonia to LRTI has 4 hops with 3 leading generalizations and weight
// 0.9^6; the reverse path has 1 leading generalization and weight 0.9^3.
func TestFigure6PathPenalties(t *testing.T) {
	g := synthkb.Figure6Fixture()
	w := core.DefaultPathWeights()

	p1, ok := g.ShortestSemanticPath(synthkb.Fig6Pneumonia, synthkb.Fig6LRTI)
	if !ok || p1.Len() != 4 {
		t.Fatalf("pneumonia->LRTI path = %+v, want 4 hops", p1)
	}
	if p1.Generalizations() != 3 {
		t.Fatalf("pneumonia->LRTI generalizations = %d, want 3", p1.Generalizations())
	}
	if got, want := w.PathWeight(p1), math.Pow(0.9, 6); math.Abs(got-want) > 1e-12 {
		t.Errorf("path1 weight = %v, want %v", got, want)
	}

	p2, ok := g.ShortestSemanticPath(synthkb.Fig6LRTI, synthkb.Fig6Pneumonia)
	if !ok || p2.Len() != 4 || p2.Generalizations() != 1 {
		t.Fatalf("LRTI->pneumonia path = %+v, want 4 hops with 1 generalization", p2)
	}
	if got, want := w.PathWeight(p2), math.Pow(0.9, 3); math.Abs(got-want) > 1e-12 {
		t.Errorf("path2 weight = %v, want %v", got, want)
	}
}

func TestGenerateNewSystemsPresent(t *testing.T) {
	w, err := synthkb.Generate(synthkb.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	systems := map[string]bool{}
	for _, id := range w.Findings {
		systems[w.Attrs[id].System] = true
	}
	for _, want := range []string{"otolaryngologic", "immunologic", "respiratory", "cardiovascular"} {
		if !systems[want] {
			t.Errorf("no findings for body system %q", want)
		}
	}
	for _, name := range []string{"otitis media", "lymphadenopathy", "stroke", "angina"} {
		if _, ok := w.FindingByName(name); !ok {
			t.Errorf("curated finding %q missing", name)
		}
	}
}

func TestGenerateScaleLargeWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("large world generation")
	}
	w, err := synthkb.Generate(synthkb.Config{Seed: 77, ConditionsPerPair: 6})
	if err != nil {
		t.Fatal(err)
	}
	if w.Graph.Len() < 3000 {
		t.Errorf("large world only %d concepts", w.Graph.Len())
	}
	if err := w.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	// Topological order and LCS remain well-behaved at scale.
	order, err := w.Graph.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != w.Graph.Len() {
		t.Error("topological order incomplete")
	}
	a, b := w.Findings[10], w.Findings[len(w.Findings)-10]
	if _, ok := w.Graph.LCS(a, b); !ok {
		t.Error("LCS missing on rooted large world")
	}
}
