package synthkb

import (
	"fmt"
	"slices"

	"medrelax/internal/eks"
	"medrelax/internal/stringutil"
)

// GenerateVariant derives a second, deliberately different external
// knowledge source from a generated world: a small vocabulary whose
// concepts are named by the world's LATENT surface variants — exactly the
// paraphrases the primary graph does not know (they were withheld from its
// synonym index, see addSynonymOrLatent). Mounted next to the primary as a
// named source, it resolves out-of-vocabulary query terms the primary's
// mappers cannot place, which is the federation coverage experiment: two
// ontologies over one KB with complementary naming.
//
// The shape is a shallow taxonomy: a root, one spine node per body system
// that contributed latent variants, and one leaf per primary concept with
// latent variants — first variant as the preferred name, the rest as
// synonyms. IDs start at 500000 so they never collide with the primary's
// (which start at 1000) in logs or debugging, though the graphs share no ID
// space. Deterministic: concepts are laid out in primary-ID order.
func GenerateVariant(w *World) (*eks.Graph, error) {
	if w == nil || len(w.Latent) == 0 {
		return nil, fmt.Errorf("synthkb: world has no latent variants to build a variant vocabulary from")
	}
	g := eks.New()
	next := eks.ConceptID(500000)
	add := func(name string, synonyms []string, parents ...eks.ConceptID) (eks.ConceptID, error) {
		id := next
		next++
		if err := g.AddConcept(eks.Concept{ID: id, Name: name, Synonyms: synonyms}); err != nil {
			return 0, err
		}
		for _, p := range parents {
			if err := g.AddSubsumption(id, p); err != nil {
				return 0, err
			}
		}
		return id, nil
	}

	root, err := add("variant vocabulary root", nil)
	if err != nil {
		return nil, err
	}
	if err := g.SetRoot(root); err != nil {
		return nil, err
	}

	// Primary concepts with latent variants, in ID order for determinism.
	ids := make([]eks.ConceptID, 0, len(w.Latent))
	for id := range w.Latent {
		ids = append(ids, id)
	}
	slices.Sort(ids)

	// One spine node per contributing body system, created in first-seen
	// (ID) order.
	spine := map[string]eks.ConceptID{}
	spineFor := func(system string) (eks.ConceptID, error) {
		if system == "" {
			return root, nil
		}
		if id, ok := spine[system]; ok {
			return id, nil
		}
		id, err := add(system+" variant terms", nil, root)
		if err != nil {
			return 0, err
		}
		spine[system] = id
		return id, nil
	}

	used := map[string]bool{}
	leaves := 0
	for _, pid := range ids {
		variants := w.Latent[pid]
		// The preferred name is the first variant whose normalized form is
		// unused; later ones become synonyms (skipping collisions, which
		// would make lookup ambiguous within this small vocabulary).
		var name string
		var syns []string
		for _, v := range variants {
			key := stringutil.Normalize(v)
			if key == "" || used[key] {
				continue
			}
			used[key] = true
			if name == "" {
				name = v
			} else {
				syns = append(syns, v)
			}
		}
		if name == "" {
			continue
		}
		parent, err := spineFor(w.Attrs[pid].System)
		if err != nil {
			return nil, err
		}
		if _, err := add(name, syns, parent); err != nil {
			return nil, err
		}
		leaves++
	}
	if leaves == 0 {
		return nil, fmt.Errorf("synthkb: every latent variant collided; no variant concepts built")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("synthkb: variant vocabulary invalid: %w", err)
	}
	return g, nil
}
