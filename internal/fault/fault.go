// Package fault is a zero-dependency, deterministic fault-injection
// framework. Production code declares named injection sites on the paths
// that can actually fail in deployment — bundle reads and writes, fsync,
// rename, backend computation — and stays at zero overhead until a
// registry arms a site: a disabled site is a nil pointer and every method
// is nil-receiver safe.
//
// Faults are configured by a compact spec, one entry per site, separated
// by semicolons:
//
//	persist.read:error,rate=0.5,seed=7
//	persist.write:torn,bytes=512,count=1
//	backend.relax:latency,delay=25ms,rate=0.2
//	backend.relax:error,after=100,count=10
//
// Each entry is "site:kind[,key=value...]". Kinds:
//
//   - error    Inject returns an *Error (which reports Transient() == true,
//     so the serving layer maps it to 503 + Retry-After, not 500).
//   - latency  Inject sleeps for delay before returning nil.
//   - torn     WrapWriter cuts the stream after bytes written bytes and
//     fails every later write — a torn/partial write.
//
// Keys: rate (fire probability per check, default 1), seed (per-site RNG
// seed, default derived from the site name), count (max fires, default
// unlimited), after (checks that pass before the site arms, default 0),
// delay (latency duration), bytes (torn cut point), msg (error text).
//
// The same seed yields the same fire pattern for the same sequence of
// checks, so a chaos run is replayable. The registry is installed
// process-wide with SetDefault (or from the MEDRELAX_FAULTS environment
// variable via FromEnv); call sites use fault.At("site").
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar names the environment variable FromEnv reads the spec from.
const EnvVar = "MEDRELAX_FAULTS"

// ErrInjected is the sentinel every injected error wraps; code that must
// distinguish injected faults from organic failures checks
// errors.Is(err, fault.ErrInjected).
var ErrInjected = errors.New("injected fault")

// Error is the concrete injected error. It reports itself transient so
// generic admission layers (which must not import this package's concept
// of "injected") can classify it via the Transient() interface.
type Error struct {
	// Site is the injection-site name that fired.
	Site string
	// Msg is the optional configured message.
	Msg string
}

func (e *Error) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("fault: site %q: %s", e.Site, e.Msg)
	}
	return fmt.Sprintf("fault: injected error at site %q", e.Site)
}

// Unwrap lets errors.Is(err, ErrInjected) identify injected faults.
func (e *Error) Unwrap() error { return ErrInjected }

// Transient reports that the failure is expected to clear on retry.
func (e *Error) Transient() bool { return true }

// Kind is the failure mode of one site.
type Kind int

const (
	// KindError makes Inject return an *Error when the site fires.
	KindError Kind = iota
	// KindLatency makes Inject sleep for the configured delay.
	KindLatency
	// KindTorn makes WrapWriter cut the stream after N bytes.
	KindTorn
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	case KindTorn:
		return "torn"
	}
	return "unknown"
}

// Site is one armed injection point. The zero of *Site (nil) is a
// disabled site: every method no-ops.
type Site struct {
	name  string
	kind  Kind
	rate  float64
	after int64
	count int64 // remaining fires; negative = unlimited
	delay time.Duration
	bytes int64
	msg   string

	mu  sync.Mutex
	rng *rand.Rand

	checks atomic.Int64
	fires  atomic.Int64
}

// fire decides deterministically whether this check trips the site.
func (s *Site) fire() bool {
	n := s.checks.Add(1)
	if n <= s.after {
		return false
	}
	s.mu.Lock()
	hit := s.rate >= 1 || s.rng.Float64() < s.rate
	if hit {
		if s.count == 0 {
			hit = false
		} else if s.count > 0 {
			s.count--
		}
	}
	s.mu.Unlock()
	if hit {
		s.fires.Add(1)
	}
	return hit
}

// Inject applies the site's fault for one operation: for KindLatency it
// sleeps and returns nil; for KindError it returns an *Error; KindTorn
// sites never fire here (they act through WrapWriter). Nil-safe.
func (s *Site) Inject() error {
	if s == nil || !s.fire() {
		return nil
	}
	switch s.kind {
	case KindLatency:
		time.Sleep(s.delay)
		return nil
	case KindError:
		return &Error{Site: s.name, Msg: s.msg}
	}
	return nil
}

// WrapWriter returns w unless this is an armed torn-write site, in which
// case the returned writer passes the first `bytes` bytes through and
// fails every write after the cut — the torn write a crash mid-flush
// leaves behind. Nil-safe.
func (s *Site) WrapWriter(w io.Writer) io.Writer {
	if s == nil || s.kind != KindTorn || !s.fire() {
		return w
	}
	return &tornWriter{w: w, left: s.bytes, site: s.name}
}

// Checks is how many times the site was consulted. Nil-safe.
func (s *Site) Checks() int64 {
	if s == nil {
		return 0
	}
	return s.checks.Load()
}

// Fires is how many times the site tripped. Nil-safe.
func (s *Site) Fires() int64 {
	if s == nil {
		return 0
	}
	return s.fires.Load()
}

type tornWriter struct {
	w    io.Writer
	left int64
	site string
}

func (t *tornWriter) Write(p []byte) (int, error) {
	if t.left <= 0 {
		return 0, &Error{Site: t.site, Msg: "torn write"}
	}
	if int64(len(p)) <= t.left {
		n, err := t.w.Write(p)
		t.left -= int64(n)
		return n, err
	}
	n, err := t.w.Write(p[:t.left])
	t.left -= int64(n)
	if err != nil {
		return n, err
	}
	return n, &Error{Site: t.site, Msg: "torn write"}
}

// Registry maps site names to armed sites. A nil *Registry is valid and
// always returns disabled (nil) sites.
type Registry struct {
	sites map[string]*Site
}

// Site looks up a site by name; nil (disabled) when the registry is nil
// or the site is not armed.
func (r *Registry) Site(name string) *Site {
	if r == nil {
		return nil
	}
	return r.sites[name]
}

// SiteStats is a point-in-time snapshot of one site's activity.
type SiteStats struct {
	Kind   string `json:"kind"`
	Checks int64  `json:"checks"`
	Fires  int64  `json:"fires"`
}

// Snapshot reports every armed site's check/fire counters, keyed by site
// name — the chaos harness embeds it in its run report.
func (r *Registry) Snapshot() map[string]SiteStats {
	if r == nil {
		return nil
	}
	out := make(map[string]SiteStats, len(r.sites))
	for name, s := range r.sites {
		out[name] = SiteStats{Kind: s.kind.String(), Checks: s.Checks(), Fires: s.Fires()}
	}
	return out
}

// Names lists the armed sites in sorted order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.sites))
	for n := range r.sites {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Parse builds a registry from a spec (see the package comment for the
// grammar). An empty spec yields a nil registry — everything disabled.
func Parse(spec string) (*Registry, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	r := &Registry{sites: map[string]*Site{}}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, err := parseEntry(entry)
		if err != nil {
			return nil, err
		}
		if _, dup := r.sites[site.name]; dup {
			return nil, fmt.Errorf("fault: duplicate site %q in spec", site.name)
		}
		r.sites[site.name] = site
	}
	if len(r.sites) == 0 {
		return nil, nil
	}
	return r, nil
}

func parseEntry(entry string) (*Site, error) {
	name, rest, ok := strings.Cut(entry, ":")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return nil, fmt.Errorf("fault: entry %q: want site:kind[,key=value...]", entry)
	}
	parts := strings.Split(rest, ",")
	s := &Site{name: name, rate: 1, count: -1}
	switch strings.TrimSpace(parts[0]) {
	case "error":
		s.kind = KindError
	case "latency":
		s.kind = KindLatency
		s.delay = 10 * time.Millisecond
	case "torn":
		s.kind = KindTorn
	default:
		return nil, fmt.Errorf("fault: site %q: unknown kind %q", name, parts[0])
	}
	seeded := false
	for _, kv := range parts[1:] {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("fault: site %q: malformed option %q", name, kv)
		}
		var err error
		switch key {
		case "rate":
			s.rate, err = strconv.ParseFloat(val, 64)
			if err == nil && (s.rate < 0 || s.rate > 1) {
				err = fmt.Errorf("rate %v outside [0,1]", s.rate)
			}
		case "seed":
			var seed int64
			seed, err = strconv.ParseInt(val, 10, 64)
			s.rng = rand.New(rand.NewSource(seed))
			seeded = true
		case "count":
			s.count, err = strconv.ParseInt(val, 10, 64)
		case "after":
			s.after, err = strconv.ParseInt(val, 10, 64)
		case "delay":
			s.delay, err = time.ParseDuration(val)
		case "bytes":
			s.bytes, err = strconv.ParseInt(val, 10, 64)
		case "msg":
			s.msg = val
		default:
			err = fmt.Errorf("unknown option %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: site %q: option %q: %v", name, kv, err)
		}
	}
	if !seeded {
		// Derive a stable per-site seed so unseeded specs are still
		// deterministic run to run.
		h := fnv.New64a()
		h.Write([]byte(name))
		s.rng = rand.New(rand.NewSource(int64(h.Sum64())))
	}
	return s, nil
}

// defaultReg is the process-wide registry consulted by fault.At.
var defaultReg atomic.Pointer[Registry]

// SetDefault installs (or, with nil, clears) the process-wide registry.
func SetDefault(r *Registry) { defaultReg.Store(r) }

// Default returns the process-wide registry (possibly nil).
func Default() *Registry { return defaultReg.Load() }

// At returns the named site from the process-wide registry; nil when no
// registry is installed or the site is not armed. The fast path for a
// fault-free process is one atomic load and a nil map lookup.
func At(name string) *Site { return defaultReg.Load().Site(name) }

// FromEnv parses MEDRELAX_FAULTS and installs the result as the default
// registry. Unset or empty leaves injection disabled.
func FromEnv() (*Registry, error) {
	r, err := Parse(os.Getenv(EnvVar))
	if err != nil {
		return nil, err
	}
	SetDefault(r)
	return r, nil
}
