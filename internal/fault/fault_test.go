package fault

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func TestParseAndInjectError(t *testing.T) {
	r, err := Parse("persist.read:error,rate=1,count=2,msg=boom")
	if err != nil {
		t.Fatal(err)
	}
	s := r.Site("persist.read")
	if s == nil {
		t.Fatal("site not armed")
	}
	for i := 0; i < 2; i++ {
		err := s.Inject()
		if err == nil {
			t.Fatalf("check %d: want injected error", i)
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("injected error does not wrap ErrInjected: %v", err)
		}
		var fe *Error
		if !errors.As(err, &fe) || !fe.Transient() {
			t.Fatalf("injected error not transient: %v", err)
		}
	}
	// count=2 exhausted: the site never fires again.
	for i := 0; i < 10; i++ {
		if err := s.Inject(); err != nil {
			t.Fatalf("fire after count exhausted: %v", err)
		}
	}
	if got := s.Fires(); got != 2 {
		t.Fatalf("fires = %d, want 2", got)
	}
}

func TestAfterDelaysArming(t *testing.T) {
	r, err := Parse("x:error,after=3")
	if err != nil {
		t.Fatal(err)
	}
	s := r.Site("x")
	for i := 0; i < 3; i++ {
		if err := s.Inject(); err != nil {
			t.Fatalf("check %d fired before after=3", i)
		}
	}
	if err := s.Inject(); err == nil {
		t.Fatal("check 4 should fire")
	}
}

func TestRateIsDeterministicPerSeed(t *testing.T) {
	pattern := func() []bool {
		r, err := Parse("x:error,rate=0.5,seed=42")
		if err != nil {
			t.Fatal(err)
		}
		s := r.Site("x")
		out := make([]bool, 64)
		for i := range out {
			out[i] = s.Inject() != nil
		}
		return out
	}
	a := pattern()
	c := pattern()
	fired := 0
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("fire pattern diverged at check %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("rate=0.5 fired %d/%d times — not probabilistic", fired, len(a))
	}
}

func TestLatencyInjection(t *testing.T) {
	r, err := Parse("x:latency,delay=30ms,rate=1")
	if err != nil {
		t.Fatal(err)
	}
	s := r.Site("x")
	start := time.Now()
	if err := s.Inject(); err != nil {
		t.Fatalf("latency site returned error: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("latency site slept %v, want >= 30ms", d)
	}
}

func TestTornWriter(t *testing.T) {
	r, err := Parse("w:torn,bytes=5")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := r.Site("w").WrapWriter(&buf)
	n, err := w.Write([]byte("hello world"))
	if n != 5 {
		t.Fatalf("torn writer passed %d bytes, want 5", n)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write error = %v, want ErrInjected", err)
	}
	if buf.String() != "hello" {
		t.Fatalf("buffer = %q, want %q", buf.String(), "hello")
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after cut = %v, want ErrInjected", err)
	}
}

func TestNilSafety(t *testing.T) {
	var s *Site
	if err := s.Inject(); err != nil {
		t.Fatal("nil site injected")
	}
	var buf bytes.Buffer
	if w := s.WrapWriter(&buf); w != io.Writer(&buf) {
		t.Fatal("nil site wrapped the writer")
	}
	var r *Registry
	if r.Site("x") != nil {
		t.Fatal("nil registry returned a site")
	}
	if r.Snapshot() != nil || r.Names() != nil {
		t.Fatal("nil registry returned stats")
	}
	SetDefault(nil)
	if At("anything") != nil {
		t.Fatal("At with no default registry returned a site")
	}
}

func TestDefaultRegistryAt(t *testing.T) {
	r, err := Parse("a.b:error")
	if err != nil {
		t.Fatal(err)
	}
	SetDefault(r)
	defer SetDefault(nil)
	if At("a.b") == nil {
		t.Fatal("At did not find armed site")
	}
	if At("other") != nil {
		t.Fatal("At returned an unarmed site")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, spec := range []string{
		"nosite",
		"x:explode",
		"x:error,rate=2",
		"x:error,rate=abc",
		"x:error,bogus=1",
		"x:error;x:latency",
		"x:latency,delay=notaduration",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestParseEmptyDisables(t *testing.T) {
	for _, spec := range []string{"", "  ", ";;"} {
		r, err := Parse(spec)
		if err != nil || r != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", spec, r, err)
		}
	}
}

func TestSnapshotCounts(t *testing.T) {
	r, err := Parse("x:error,rate=1,count=1")
	if err != nil {
		t.Fatal(err)
	}
	s := r.Site("x")
	s.Inject()
	s.Inject()
	snap := r.Snapshot()
	if st := snap["x"]; st.Checks != 2 || st.Fires != 1 || st.Kind != "error" {
		t.Fatalf("snapshot = %+v", st)
	}
}
