package embedding

// SIFEncoder embeds phrases with the smooth inverse frequency scheme of
// Arora, Liang & Ma ("A Simple but Tough-to-Beat Baseline for Sentence
// Embeddings", ICLR 2017 — the paper's reference [3]): each word vector is
// weighted by a/(a + p(w)) where p(w) is the word's corpus frequency, the
// weighted vectors are averaged, and the projection onto the common
// component (the first principal direction of a reference phrase set) is
// removed.
type SIFEncoder struct {
	model *Model
	a     float64
	// common is the estimated first principal direction (unit norm), or nil
	// when no reference set was supplied or estimation degenerated.
	common Vector
}

// DefaultSIFWeight is the smoothing constant a of the SIF weighting; 1e-3
// is the value recommended by Arora et al.
const DefaultSIFWeight = 1e-3

// NewSIFEncoder builds an encoder over a trained model. referencePhrases,
// when non-empty, is a set of tokenized phrases (typically the concept
// names the encoder will be used on) from which the common component is
// estimated; pass nil to skip common-component removal.
func NewSIFEncoder(model *Model, a float64, referencePhrases [][]string) *SIFEncoder {
	if a <= 0 {
		a = DefaultSIFWeight
	}
	e := &SIFEncoder{model: model, a: a}
	if len(referencePhrases) > 0 {
		e.common = e.estimateCommonComponent(referencePhrases)
	}
	return e
}

// weightedAverage computes the SIF-weighted mean of the in-vocabulary word
// vectors of tokens.
func (e *SIFEncoder) weightedAverage(tokens []string) Vector {
	out := make(Vector, e.model.Dim())
	n := 0
	for _, tok := range tokens {
		v, ok := e.model.Word(tok)
		if !ok {
			continue
		}
		w := e.a / (e.a + e.model.WordFrequency(tok))
		out.AddScaled(w, v)
		n++
	}
	if n > 0 {
		out.Scale(1 / float64(n))
	}
	return out
}

// estimateCommonComponent runs power iteration on the covariance of the
// reference phrase embeddings to find their first principal direction.
func (e *SIFEncoder) estimateCommonComponent(phrases [][]string) Vector {
	embs := make([]Vector, 0, len(phrases))
	for _, p := range phrases {
		v := e.weightedAverage(p)
		if !v.IsZero() {
			embs = append(embs, v)
		}
	}
	if len(embs) < 2 {
		return nil
	}
	dim := e.model.Dim()
	// Deterministic start: the mean of the embeddings.
	u := make(Vector, dim)
	for _, v := range embs {
		u.Add(v)
	}
	if u.IsZero() {
		u[0] = 1
	}
	normalize(u)
	for it := 0; it < 50; it++ {
		next := make(Vector, dim)
		for _, v := range embs {
			next.AddScaled(v.Dot(u), v)
		}
		if next.IsZero() {
			return nil
		}
		normalize(next)
		u = next
	}
	return u
}

func normalize(v Vector) {
	n := v.Norm()
	if n > 0 {
		v.Scale(1 / n)
	}
}

// Encode embeds a tokenized phrase: SIF-weighted average minus its
// projection on the common component. The zero vector marks fully
// out-of-vocabulary phrases.
func (e *SIFEncoder) Encode(tokens []string) Vector {
	v := e.weightedAverage(tokens)
	if e.common != nil && !v.IsZero() {
		v.AddScaled(-v.Dot(e.common), e.common)
	}
	return v
}
