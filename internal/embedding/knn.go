package embedding

import "sort"

// Index is a brute-force nearest-neighbour index over named vectors, used
// to match surface forms against a lexicon of concept-name embeddings.
// For the lexicon sizes in scope (10³–10⁵ names) exact scan is both simple
// and fast enough; the interface would admit an ANN structure if needed.
type Index struct {
	keys    []string
	vectors []Vector
	dim     int
}

// NewIndex returns an empty index for vectors of the given dimension.
func NewIndex(dim int) *Index { return &Index{dim: dim} }

// Add inserts a named vector. Zero vectors are skipped: they carry no
// information and would match nothing under cosine anyway.
func (ix *Index) Add(key string, v Vector) {
	if len(v) != ix.dim || v.IsZero() {
		return
	}
	ix.keys = append(ix.keys, key)
	ix.vectors = append(ix.vectors, v)
}

// Len returns the number of indexed vectors.
func (ix *Index) Len() int { return len(ix.keys) }

// Hit is one nearest-neighbour result.
type Hit struct {
	Key    string
	Cosine float64
}

// Nearest returns the k indexed entries most cosine-similar to q, best
// first. Ties break by key for determinism. A zero query returns nil.
func (ix *Index) Nearest(q Vector, k int) []Hit {
	if k <= 0 || q.IsZero() || len(ix.keys) == 0 {
		return nil
	}
	hits := make([]Hit, 0, len(ix.keys))
	for i, v := range ix.vectors {
		hits = append(hits, Hit{Key: ix.keys[i], Cosine: Cosine(q, v)})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Cosine != hits[j].Cosine {
			return hits[i].Cosine > hits[j].Cosine
		}
		return hits[i].Key < hits[j].Key
	})
	if k > len(hits) {
		k = len(hits)
	}
	return hits[:k]
}

// Best returns the single nearest entry and its cosine, or ok=false for a
// zero query or empty index.
func (ix *Index) Best(q Vector) (Hit, bool) {
	hs := ix.Nearest(q, 1)
	if len(hs) == 0 {
		return Hit{}, false
	}
	return hs[0], true
}
