package embedding

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestVectorOps(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{4, 5, 6}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := (Vector{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	c := a.Clone()
	c.Add(b)
	if c[0] != 5 || a[0] != 1 {
		t.Error("Add must mutate clone only")
	}
	c.Scale(2)
	if c[0] != 10 {
		t.Error("Scale wrong")
	}
	d := Vector{0, 0}
	if !d.IsZero() {
		t.Error("IsZero wrong")
	}
	d.AddScaled(3, Vector{1, 1})
	if d[0] != 3 || d[1] != 3 {
		t.Error("AddScaled wrong")
	}
}

func TestVectorDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot with mismatched dims must panic")
		}
	}()
	_ = Vector{1}.Dot(Vector{1, 2})
}

func TestCosine(t *testing.T) {
	if got := Cosine(Vector{1, 0}, Vector{1, 0}); got != 1 {
		t.Errorf("cos(same) = %v", got)
	}
	if got := Cosine(Vector{1, 0}, Vector{0, 1}); got != 0 {
		t.Errorf("cos(orth) = %v", got)
	}
	if got := Cosine(Vector{1, 0}, Vector{-1, 0}); got != -1 {
		t.Errorf("cos(opposite) = %v", got)
	}
	if got := Cosine(Vector{0, 0}, Vector{1, 0}); got != 0 {
		t.Errorf("cos(zero, x) = %v, want 0", got)
	}
}

func TestCosineProperties(t *testing.T) {
	f := func(xs, ys [4]float64) bool {
		a := Vector(xs[:])
		b := Vector(ys[:])
		for _, v := range append(a.Clone(), b...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				return true // dot product would overflow; out of scope
			}
		}
		c := Cosine(a, b)
		return c >= -1 && c <= 1 && Cosine(b, a) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopEigenKnownMatrix(t *testing.T) {
	// Symmetric matrix with eigenvalues 5, 2 (basis e1+e2, e1-e2):
	// [[3.5, 1.5], [1.5, 3.5]]
	m := newSparseMatrix(2)
	m.add(0, 0, 3.5)
	m.add(0, 1, 1.5)
	m.add(1, 0, 1.5)
	m.add(1, 1, 3.5)
	vals, vecs := m.topEigen(2, 100, 1)
	if len(vals) != 2 {
		t.Fatalf("got %d eigenpairs", len(vals))
	}
	if math.Abs(vals[0]-5) > 1e-6 || math.Abs(vals[1]-2) > 1e-6 {
		t.Errorf("eigenvalues = %v, want [5 2]", vals)
	}
	// First eigenvector proportional to (1,1)/sqrt2.
	if math.Abs(math.Abs(vecs[0][0])-1/math.Sqrt2) > 1e-6 {
		t.Errorf("eigenvector = %v", vecs[0])
	}
	if m.nnz() != 4 {
		t.Errorf("nnz = %d", m.nnz())
	}
}

func TestTopEigenDegenerateRequests(t *testing.T) {
	m := newSparseMatrix(3)
	m.add(0, 0, 1)
	vals, vecs := m.topEigen(0, 10, 1)
	if vals != nil || vecs != nil {
		t.Error("k=0 must return nil")
	}
	vals, _ = m.topEigen(10, 10, 1)
	if len(vals) != 3 {
		t.Errorf("k clamped to n: got %d", len(vals))
	}
}

// trainToy builds a tiny corpus where "cat" and "dog" share contexts and
// "bond" lives in a different topic.
func trainToy(t *testing.T) *Model {
	t.Helper()
	var streams [][]string
	animalCtx := [][]string{
		{"the", "%s", "sat", "on", "the", "mat", "quietly"},
		{"a", "small", "%s", "chased", "the", "ball", "outside"},
		{"my", "%s", "ate", "the", "food", "in", "the", "bowl"},
		{"the", "%s", "slept", "near", "the", "warm", "fire"},
	}
	for _, animal := range []string{"cat", "dog"} {
		for _, tmpl := range animalCtx {
			s := make([]string, len(tmpl))
			for i, w := range tmpl {
				if w == "%s" {
					s[i] = animal
				} else {
					s[i] = w
				}
			}
			for rep := 0; rep < 4; rep++ {
				streams = append(streams, s)
			}
		}
	}
	finCtx := [][]string{
		{"the", "bond", "yield", "rose", "sharply", "in", "trading"},
		{"investors", "sold", "the", "bond", "after", "the", "report"},
		{"a", "corporate", "bond", "pays", "a", "fixed", "coupon"},
		{"the", "bond", "market", "closed", "lower", "on", "friday"},
	}
	for _, s := range finCtx {
		for rep := 0; rep < 4; rep++ {
			streams = append(streams, s)
		}
	}
	model, err := Train(streams, Config{Dim: 16, Window: 3, MinCount: 2, Iterations: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func TestTrainDistributionalSimilarity(t *testing.T) {
	model := trainToy(t)
	cat, ok := model.Word("cat")
	if !ok {
		t.Fatal("cat OOV")
	}
	dog, _ := model.Word("dog")
	bond, ok := model.Word("bond")
	if !ok {
		t.Fatal("bond OOV")
	}
	simAnimals := Cosine(cat, dog)
	simCross := Cosine(cat, bond)
	if simAnimals <= simCross {
		t.Errorf("cos(cat,dog)=%v must exceed cos(cat,bond)=%v", simAnimals, simCross)
	}
}

func TestTrainDeterministic(t *testing.T) {
	m1 := trainToy(t)
	m2 := trainToy(t)
	v1, _ := m1.Word("cat")
	v2, _ := m2.Word("cat")
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("training is not deterministic for a fixed seed")
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Config{}); err == nil {
		t.Error("empty corpus must fail")
	}
	// All words below min count.
	if _, err := Train([][]string{{"a", "b", "c"}}, Config{MinCount: 5}); err == nil {
		t.Error("vocabulary below min count must fail")
	}
	// Vocabulary exists but streams are single tokens: no co-occurrence.
	if _, err := Train([][]string{{"a"}, {"a"}, {"b"}, {"b"}}, Config{MinCount: 2}); err == nil {
		t.Error("no co-occurrences must fail")
	}
}

func TestModelAccessors(t *testing.T) {
	model := trainToy(t)
	if model.Dim() != 16 {
		t.Errorf("Dim = %d", model.Dim())
	}
	if !model.Contains("cat") || model.Contains("zebra") {
		t.Error("Contains wrong")
	}
	if _, ok := model.Word("zebra"); ok {
		t.Error("OOV lookup must fail")
	}
	if model.WordFrequency("the") <= model.WordFrequency("coupon") {
		t.Error("frequency of 'the' must exceed 'coupon'")
	}
	if model.WordFrequency("zebra") != 0 {
		t.Error("OOV frequency must be 0")
	}
	if model.VocabSize() != len(model.Words()) {
		t.Error("VocabSize mismatch")
	}
	for i := 1; i < len(model.Words()); i++ {
		if model.Words()[i-1] >= model.Words()[i] {
			t.Fatal("Words not sorted")
		}
	}
}

func TestAveragePhrase(t *testing.T) {
	model := trainToy(t)
	v := model.AveragePhrase([]string{"cat", "dog"})
	if v.IsZero() {
		t.Fatal("phrase embedding must be nonzero")
	}
	cat, _ := model.Word("cat")
	dog, _ := model.Word("dog")
	want := cat.Clone()
	want.Add(dog)
	want.Scale(0.5)
	for i := range v {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Fatal("average phrase must be the mean of word vectors")
		}
	}
	// OOV-only phrase is the zero vector.
	if !model.AveragePhrase([]string{"zebra", "unicorn"}).IsZero() {
		t.Error("fully OOV phrase must embed to zero")
	}
	// Partial OOV: average over in-vocab words only.
	v2 := model.AveragePhrase([]string{"cat", "zebra"})
	for i := range v2 {
		if math.Abs(v2[i]-cat[i]) > 1e-12 {
			t.Fatal("partial OOV must average in-vocab words only")
		}
	}
}

func TestSIFEncoder(t *testing.T) {
	model := trainToy(t)
	refs := [][]string{{"cat"}, {"dog"}, {"bond"}, {"mat"}, {"yield"}}
	enc := NewSIFEncoder(model, 0, refs)
	v := enc.Encode([]string{"cat", "mat"})
	if v.IsZero() {
		t.Fatal("SIF embedding must be nonzero")
	}
	if !enc.Encode([]string{"zebra"}).IsZero() {
		t.Error("OOV phrase must encode to zero")
	}
	// Determinism.
	v2 := enc.Encode([]string{"cat", "mat"})
	for i := range v {
		if v[i] != v2[i] {
			t.Fatal("SIF encoding not deterministic")
		}
	}
	// SIF downweights frequent words: the embedding of {"the","bond"} should
	// be dominated by "bond", i.e. closer to bond than to the.
	vb := enc.Encode([]string{"the", "bond"})
	bond, _ := model.Word("bond")
	the, _ := model.Word("the")
	if Cosine(vb, bond) <= Cosine(vb, the) {
		t.Error("SIF must downweight the frequent word")
	}
}

func TestSIFEncoderNoReference(t *testing.T) {
	model := trainToy(t)
	enc := NewSIFEncoder(model, DefaultSIFWeight, nil)
	if enc.common != nil {
		t.Error("no reference set must skip common component")
	}
	if enc.Encode([]string{"cat"}).IsZero() {
		t.Error("encoding must still work without common component")
	}
}

func TestSIFCommonComponentRemoved(t *testing.T) {
	model := trainToy(t)
	refs := [][]string{{"cat"}, {"dog"}, {"bond"}, {"mat"}, {"yield"}, {"food"}}
	enc := NewSIFEncoder(model, 0, refs)
	if enc.common == nil {
		t.Fatal("common component not estimated")
	}
	// Encodings must be (numerically) orthogonal to the common direction.
	for _, p := range refs {
		v := enc.Encode(p)
		if v.IsZero() {
			continue
		}
		proj := math.Abs(v.Dot(enc.common)) / v.Norm()
		if proj > 1e-9 {
			t.Errorf("phrase %v retains common component: %v", p, proj)
		}
	}
}

func TestIndex(t *testing.T) {
	ix := NewIndex(2)
	ix.Add("x", Vector{1, 0})
	ix.Add("y", Vector{0, 1})
	ix.Add("xy", Vector{1, 1})
	ix.Add("zero", Vector{0, 0}) // skipped
	if ix.Len() != 3 {
		t.Errorf("Len = %d, want 3", ix.Len())
	}
	hits := ix.Nearest(Vector{1, 0.1}, 2)
	if len(hits) != 2 || hits[0].Key != "x" {
		t.Errorf("Nearest = %+v", hits)
	}
	if hits[0].Cosine < hits[1].Cosine {
		t.Error("hits not sorted")
	}
	best, ok := ix.Best(Vector{0, 2})
	if !ok || best.Key != "y" {
		t.Errorf("Best = %+v", best)
	}
	if got := ix.Nearest(Vector{0, 0}, 3); got != nil {
		t.Error("zero query must return nil")
	}
	if got := ix.Nearest(Vector{1, 0}, 0); got != nil {
		t.Error("k=0 must return nil")
	}
	if _, ok := NewIndex(2).Best(Vector{1, 0}); ok {
		t.Error("empty index must report no best")
	}
	// k larger than index size clamps.
	if got := ix.Nearest(Vector{1, 0}, 10); len(got) != 3 {
		t.Errorf("clamped k = %d", len(got))
	}
}

func TestIndexTieBreakDeterministic(t *testing.T) {
	ix := NewIndex(2)
	ix.Add("b", Vector{2, 0})
	ix.Add("a", Vector{1, 0}) // same direction, same cosine
	hits := ix.Nearest(Vector{1, 0}, 2)
	if hits[0].Key != "a" || hits[1].Key != "b" {
		t.Errorf("tie break not by key: %+v", hits)
	}
}

func TestOrthonormalizeDegenerate(t *testing.T) {
	// Two identical rows: the second collapses and must be re-seeded.
	q := [][]float64{{1, 0, 0}, {1, 0, 0}}
	orthonormalize(q)
	if math.Abs(dot(q[0], q[1])) > 1e-9 {
		t.Error("rows not orthogonal after degenerate input")
	}
	for _, row := range q {
		if math.Abs(norm(row)-1) > 1e-9 {
			t.Error("rows not unit norm")
		}
	}
}

func TestTrainScalesToModerateCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping moderate-corpus training in -short mode")
	}
	rng := rand.New(rand.NewSource(5))
	vocab := make([]string, 200)
	for i := range vocab {
		vocab[i] = "w" + strings.Repeat("x", i%3) + string(rune('a'+i%26)) + string(rune('0'+i%10))
	}
	var streams [][]string
	for s := 0; s < 300; s++ {
		n := 5 + rng.Intn(20)
		stream := make([]string, n)
		for i := range stream {
			stream[i] = vocab[rng.Intn(len(vocab))]
		}
		streams = append(streams, stream)
	}
	model, err := Train(streams, Config{Dim: 32, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if model.VocabSize() < 100 {
		t.Errorf("vocab size = %d", model.VocabSize())
	}
}
