package embedding

import (
	"math"
	"math/rand"
)

// sparseMatrix is a square symmetric matrix in compressed row form, used
// for the PPMI matrix. Only explicitly stored entries are nonzero.
type sparseMatrix struct {
	n    int
	rows [][]sparseEntry
}

type sparseEntry struct {
	col int
	val float64
}

func newSparseMatrix(n int) *sparseMatrix {
	return &sparseMatrix{n: n, rows: make([][]sparseEntry, n)}
}

// add appends an entry; callers must not add the same (row, col) twice.
func (m *sparseMatrix) add(row, col int, val float64) {
	m.rows[row] = append(m.rows[row], sparseEntry{col: col, val: val})
}

// nnz returns the number of stored entries.
func (m *sparseMatrix) nnz() int {
	n := 0
	for _, r := range m.rows {
		n += len(r)
	}
	return n
}

// mulVec computes dst = M·src. dst must have length n.
func (m *sparseMatrix) mulVec(dst, src []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for i, row := range m.rows {
		s := 0.0
		for _, e := range row {
			s += e.val * src[e.col]
		}
		dst[i] = s
	}
}

// topEigen computes the k eigenpairs of the symmetric matrix m with the
// largest absolute eigenvalues, using blocked subspace (orthogonal)
// iteration with Gram–Schmidt re-orthogonalization. It returns the
// eigenvalues and, per eigenpair, the eigenvector of length n.
//
// The method is deterministic for a fixed seed. iters controls convergence;
// for embedding purposes tens of iterations suffice — downstream quality
// depends on the subspace, not on exact eigenvalues.
func (m *sparseMatrix) topEigen(k, iters int, seed int64) (vals []float64, vecs [][]float64) {
	if k > m.n {
		k = m.n
	}
	if k <= 0 {
		return nil, nil
	}
	rng := rand.New(rand.NewSource(seed))
	// Initialize a random orthonormal block Q (n x k).
	q := make([][]float64, k)
	for j := range q {
		q[j] = make([]float64, m.n)
		for i := range q[j] {
			q[j][i] = rng.NormFloat64()
		}
	}
	orthonormalize(q)
	tmp := make([][]float64, k)
	for j := range tmp {
		tmp[j] = make([]float64, m.n)
	}
	for it := 0; it < iters; it++ {
		for j := range q {
			m.mulVec(tmp[j], q[j])
		}
		q, tmp = tmp, q
		orthonormalize(q)
	}
	// Rayleigh quotients give the eigenvalue estimates.
	vals = make([]float64, k)
	buf := make([]float64, m.n)
	for j := range q {
		m.mulVec(buf, q[j])
		vals[j] = dot(buf, q[j])
	}
	// Sort by |eigenvalue| descending for a stable contract.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if math.Abs(vals[order[j]]) > math.Abs(vals[order[i]]) {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	sortedVals := make([]float64, k)
	sortedVecs := make([][]float64, k)
	for i, o := range order {
		sortedVals[i] = vals[o]
		sortedVecs[i] = q[o]
	}
	return sortedVals, sortedVecs
}

// orthonormalize applies modified Gram–Schmidt to the row block q in place.
// Rows that collapse to (near) zero are re-randomized deterministically
// from their index to keep the block full rank.
func orthonormalize(q [][]float64) {
	for j := range q {
		for p := 0; p < j; p++ {
			proj := dot(q[j], q[p])
			for i := range q[j] {
				q[j][i] -= proj * q[p][i]
			}
		}
		n := norm(q[j])
		if n < 1e-12 {
			// Deterministic fallback basis vector.
			for i := range q[j] {
				q[j][i] = 0
			}
			q[j][j%len(q[j])] = 1
			// Re-orthogonalize against previous rows.
			for p := 0; p < j; p++ {
				proj := dot(q[j], q[p])
				for i := range q[j] {
					q[j][i] -= proj * q[p][i]
				}
			}
			n = norm(q[j])
			if n < 1e-12 {
				continue
			}
		}
		inv := 1 / n
		for i := range q[j] {
			q[j][i] *= inv
		}
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }
