package embedding

import (
	"fmt"
	"sort"

	"math"
)

// Config controls embedding training.
type Config struct {
	// Dim is the embedding dimensionality. Default 96.
	Dim int
	// Window is the symmetric co-occurrence window half-width. Default 4.
	Window int
	// MinCount drops words occurring fewer times than this. Default 2.
	MinCount int
	// Iterations is the number of subspace-iteration rounds. Default 30.
	Iterations int
	// Seed makes training deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Dim <= 0 {
		c.Dim = 96
	}
	if c.Window <= 0 {
		c.Window = 4
	}
	if c.MinCount <= 0 {
		c.MinCount = 2
	}
	if c.Iterations <= 0 {
		c.Iterations = 30
	}
	return c
}

// Model holds trained word vectors.
type Model struct {
	dim     int
	vocab   map[string]int
	words   []string
	vectors []Vector
	// freq is the corpus relative frequency per vocabulary word, kept for
	// SIF weighting.
	freq []float64
}

// Train builds a model from token streams (each stream is one section or
// sentence of the corpus): it counts windowed co-occurrences, reweights
// them by PPMI, and factorizes the PPMI matrix spectrally. An error is
// returned when the corpus has no word above MinCount.
func Train(streams [][]string, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()

	// Pass 1: vocabulary.
	counts := map[string]int{}
	total := 0
	for _, s := range streams {
		for _, tok := range s {
			counts[tok]++
			total++
		}
	}
	var words []string
	for w, c := range counts {
		if c >= cfg.MinCount {
			words = append(words, w)
		}
	}
	if len(words) == 0 {
		return nil, fmt.Errorf("embedding: empty vocabulary (corpus of %d tokens, min count %d)", total, cfg.MinCount)
	}
	sort.Strings(words)
	vocab := make(map[string]int, len(words))
	for i, w := range words {
		vocab[w] = i
	}

	// Pass 2: windowed co-occurrence counts (symmetric).
	cooc := make([]map[int]float64, len(words))
	for i := range cooc {
		cooc[i] = map[int]float64{}
	}
	for _, s := range streams {
		idx := make([]int, len(s))
		for i, tok := range s {
			if wi, ok := vocab[tok]; ok {
				idx[i] = wi
			} else {
				idx[i] = -1
			}
		}
		for i, wi := range idx {
			if wi < 0 {
				continue
			}
			lo := i - cfg.Window
			if lo < 0 {
				lo = 0
			}
			for j := lo; j < i; j++ {
				wj := idx[j]
				if wj < 0 {
					continue
				}
				// Distance-discounted count, as in GloVe.
				w := 1.0 / float64(i-j)
				cooc[wi][wj] += w
				cooc[wj][wi] += w
			}
		}
	}

	// PPMI reweighting. Sums run in sorted column order so floating-point
	// accumulation — and therefore the trained model — is deterministic.
	sortedCols := make([][]int, len(words))
	for i, row := range cooc {
		cols := make([]int, 0, len(row))
		for j := range row {
			cols = append(cols, j)
		}
		sort.Ints(cols)
		sortedCols[i] = cols
	}
	rowSums := make([]float64, len(words))
	grand := 0.0
	for i, cols := range sortedCols {
		for _, j := range cols {
			rowSums[i] += cooc[i][j]
			grand += cooc[i][j]
		}
	}
	if grand == 0 {
		return nil, fmt.Errorf("embedding: no co-occurrences (streams too short for window %d)", cfg.Window)
	}
	mat := newSparseMatrix(len(words))
	for i, row := range cooc {
		for _, j := range sortedCols[i] {
			v := row[j]
			pmi := math.Log(v * grand / (rowSums[i] * rowSums[j]))
			if pmi > 0 {
				mat.add(i, j, pmi)
			}
		}
	}

	// Spectral factorization: embedding of word i is
	// [ sqrt(|λ_j|) · q_j[i] ]_j over the top-k eigenpairs.
	vals, vecs := mat.topEigen(cfg.Dim, cfg.Iterations, cfg.Seed)
	dim := len(vals)
	vectors := make([]Vector, len(words))
	for i := range vectors {
		v := make(Vector, dim)
		for j := range vals {
			v[j] = math.Sqrt(math.Abs(vals[j])) * vecs[j][i]
		}
		vectors[i] = v
	}

	freq := make([]float64, len(words))
	for i, w := range words {
		freq[i] = float64(counts[w]) / float64(total)
	}
	return &Model{dim: dim, vocab: vocab, words: words, vectors: vectors, freq: freq}, nil
}

// Dim returns the embedding dimensionality.
func (m *Model) Dim() int { return m.dim }

// VocabSize returns the vocabulary size.
func (m *Model) VocabSize() int { return len(m.words) }

// Contains reports whether the word is in vocabulary.
func (m *Model) Contains(word string) bool {
	_, ok := m.vocab[word]
	return ok
}

// Word returns the vector for a word. ok is false for out-of-vocabulary
// words.
func (m *Model) Word(word string) (Vector, bool) {
	i, ok := m.vocab[word]
	if !ok {
		return nil, false
	}
	return m.vectors[i], true
}

// WordFrequency returns the training-corpus relative frequency of word, or
// 0 when out of vocabulary.
func (m *Model) WordFrequency(word string) float64 {
	i, ok := m.vocab[word]
	if !ok {
		return 0
	}
	return m.freq[i]
}

// Words returns the vocabulary in sorted order. Callers must not mutate
// the result.
func (m *Model) Words() []string { return m.words }

// AveragePhrase embeds a tokenized phrase as the unweighted mean of its
// in-vocabulary word vectors — the scheme the paper uses for the
// pre-trained baseline ("we used the average [of] its words' embeddings").
// The zero vector is returned when every token is out of vocabulary.
func (m *Model) AveragePhrase(tokens []string) Vector {
	out := make(Vector, m.dim)
	n := 0
	for _, tok := range tokens {
		if v, ok := m.Word(tok); ok {
			out.Add(v)
			n++
		}
	}
	if n > 0 {
		out.Scale(1 / float64(n))
	}
	return out
}
