// Package embedding provides from-scratch distributional word embeddings
// and phrase encodings used by the EMBEDDING mapping method and the
// embedding baselines of the paper (Section 7.2).
//
// The pipeline is classical count-based distributional semantics: windowed
// co-occurrence counts over a token corpus, positive pointwise mutual
// information (PPMI) reweighting, and a truncated spectral factorization,
// yielding dense word vectors comparable in behaviour to word2vec-family
// models (Levy & Goldberg showed SGNS implicitly factorizes shifted PMI).
// Phrase embeddings use the SIF scheme of Arora et al. — the paper's
// reference [3] — frequency-weighted averaging followed by removal of the
// common component.
package embedding

import (
	"fmt"
	"math"
)

// Vector is a dense embedding vector.
type Vector []float64

// Dot returns the inner product of a and b. It panics if lengths differ,
// since mixing vectors from different models is a programming error.
func (a Vector) Dot(b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("embedding: dimension mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean norm.
func (a Vector) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// IsZero reports whether every component is zero.
func (a Vector) IsZero() bool {
	for _, v := range a {
		if v != 0 {
			return false
		}
	}
	return true
}

// Clone returns a copy of a.
func (a Vector) Clone() Vector {
	out := make(Vector, len(a))
	copy(out, a)
	return out
}

// Add accumulates b into a in place.
func (a Vector) Add(b Vector) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("embedding: dimension mismatch %d vs %d", len(a), len(b)))
	}
	for i := range a {
		a[i] += b[i]
	}
}

// AddScaled accumulates s*b into a in place.
func (a Vector) AddScaled(s float64, b Vector) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("embedding: dimension mismatch %d vs %d", len(a), len(b)))
	}
	for i := range a {
		a[i] += s * b[i]
	}
}

// Scale multiplies a by s in place.
func (a Vector) Scale(s float64) {
	for i := range a {
		a[i] *= s
	}
}

// Cosine returns the cosine similarity of a and b in [-1, 1]. Zero vectors
// have similarity 0 with everything, which is the conservative choice for
// out-of-vocabulary terms.
func Cosine(a, b Vector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	c := a.Dot(b) / (na * nb)
	// Clamp floating-point excursions.
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return c
}
